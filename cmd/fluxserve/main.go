// Command fluxserve hosts the tracking pipeline as a resident multi-tenant
// streaming service (internal/serve): many independent tenant fields over
// one shared sniffer vantage, each with its own tracker, bounded ingestion
// queue, and stepping goroutine, plus checkpoint/restore for crash recovery
// and tenant migration.
//
// Usage:
//
//	fluxserve -addr :8080
//	fluxserve -addr 127.0.0.1:8080 -nodes 900 -sniff 0.1 -seed 1
//
// See the "Serving" section of README.md for a curl walkthrough.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fluxtrack/internal/core"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/obs"
	"fluxtrack/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fluxserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fluxserve", flag.ContinueOnError)
	var (
		addr   = fs.String("addr", "127.0.0.1:8080", "listen address")
		nodes  = fs.Int("nodes", 900, "sensor node count")
		side   = fs.Float64("field", 30, "square field side length")
		radius = fs.Float64("radius", 2.4, "radio range")
		sniff  = fs.Float64("sniff", 0.1, "fraction of nodes the vantage monitors")
		seed   = fs.Uint64("seed", 1, "deployment + vantage seed")
		maxTen = fs.Int("tenants", 64, "maximum resident tenants")
		queue  = fs.Int("queue", 64, "default per-tenant ingestion queue depth")
		traceN = fs.Int("trace", 4096, "step-trace ring capacity (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tr *obs.Trace
	if *traceN > 0 {
		tr = obs.NewTrace(*traceN)
	}
	srv, err := serve.New(serve.Config{
		Scenario: core.ScenarioConfig{
			Field:  geom.Square(*side),
			Nodes:  *nodes,
			Radius: *radius,
		},
		SnifferFraction: *sniff,
		Seed:            *seed,
		MaxTenants:      *maxTen,
		DefaultQueue:    *queue,
		Trace:           tr,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}

	// One machine-readable line on startup: clients need the sensor count
	// to size their readings vectors.
	json.NewEncoder(os.Stdout).Encode(map[string]any{
		"listening": ln.Addr().String(),
		"sensors":   srv.Sensors(),
		"nodes":     *nodes,
		"seed":      *seed,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
