// Command fluxbench regenerates the paper's evaluation tables. By default
// it runs every experiment at full (paper-faithful) effort; use -quick for
// a fast pass and -exp to select a single experiment.
//
// Usage:
//
//	fluxbench                 # run everything, full effort
//	fluxbench -quick          # run everything, reduced effort
//	fluxbench -exp fig6a      # run one experiment
//	fluxbench -list           # list experiment ids
//	fluxbench -trials 5       # override the trial count
//	fluxbench -workers 4      # bound the trial-level parallelism
//	fluxbench -json out.json  # also write a machine-readable benchmark report
//
// Degraded sensing (see internal/fault; figRobust sweeps these built-in):
//
//	fluxbench -exp fig7 -dropout 0.2            # 20% of sensors fail permanently
//	fluxbench -exp fig8a -loss 0.3 -delay 0.2   # lossy + delayed reports
//
// Byzantine sensors and robust defenses (see fault.Adversary and
// fit.RobustConfig; figByzantine sweeps the cross product built-in):
//
//	fluxbench -exp fig7 -liars 0.1               # 10% of sensors lie (inflate/deflate/replay mix)
//	fluxbench -exp fig7 -liars 0.1 -robust huber # same attack, Huber-IRLS defended fit
//	fluxbench -quick -robust both                # LOSO + Huber defense on clean data (cost check)
//
// Observability (see internal/obs; enabling it never changes a table):
//
//	fluxbench -quick -metrics                    # print merged work counters + latency histograms
//	fluxbench -quick -metricsout metrics.json    # write the counter snapshot as JSON
//	fluxbench -quick -exp fig7 -trace out.jsonl  # one JSON span per tracker round
//	fluxbench report metrics.json                # render a saved snapshot (or a -json report)
//
// Coarse-to-fine search (see internal/fingerprint; shortlists candidates
// before the exact NLS ranking — faster, slightly approximate unless
// -coarsek covers every candidate):
//
//	fluxbench -quick -coarse                     # default shortlist (TopK 64, grid 24)
//	fluxbench -quick -coarse -coarsek 32         # tighter shortlist
//	fluxbench -quick -coarse -coarsegrid 48      # finer fingerprint grid
//
// Profiling and report comparison:
//
//	fluxbench -quick -cpuprofile cpu.out    # pprof CPU profile of the run
//	fluxbench -quick -memprofile mem.out    # heap profile at exit
//	fluxbench compare old.json new.json     # speedup table between two -json reports
//	fluxbench compare -maxregress 2.0 old.json new.json  # exit 1 if new total > 2x old
//
// Field sharding (see internal/shard; tiles the field into an RxC grid of
// independent trackers with cross-tile handoff — a 1x1 grid is byte-identical
// to the unsharded tracker):
//
//	fluxbench -quick -shards 2x2 -halo 2         # run the suite through a 2x2 tile grid
//	fluxbench shardbench                         # step throughput vs tile grid (1x1 vs 2x2)
//	fluxbench shardbench -grids 1x1,2x2,4x2 -trackn 10000 -json shard.json
//	fluxbench -quick -shardbench -json out.json  # embed the sweep in the main report
//
// Scale sweeps (the 90/10 hot-corner regime; see DESIGN.md §6.7):
//
//	fluxbench shardbench -users 1000,20000 -grids 8x8 -skew 0.9 -activeset 16
//	fluxbench shardbench -users 20000 -grids 8x8 -skew 0.9 -activeset 16 -naive
//	fluxbench shardbench -users 5000 -grids 4x4 -capacity 500 -metrics
//
// -naive replays the same world through the pre-scale baseline (static
// contiguous tile scheduling, dense per-tile result arrays); the users/sec
// ratio against the default LPT + sparse path is the scale-out speedup.
// -capacity bounds per-tile admission (spills stay deterministic), and
// -metrics prints the shard.* instrument snapshot, including per-tile
// gauges, at exit. Entries report p50/p95 step latency, max/mean tile-load
// imbalance, and retained bytes/user.
//
// Tracker latency:
//
//	fluxbench latency                        # Step wall-time p50/p95 vs worker count
//	fluxbench latency -workers 1,8 -json latency.json
//	fluxbench latency -shards 1x1,2x2        # per-tile queue/step breakdown per grid
//
// Tables are byte-identical for every -workers value (see internal/exp),
// and so is tracker output (see internal/smc): -workers trades wall time
// only, never results. The same holds with -metrics and -trace on: the
// instruments are write-only, and the counter totals themselves are
// worker-count-invariant (only the latency histograms vary run to run).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"fluxtrack/internal/exp"
	"fluxtrack/internal/fault"
	"fluxtrack/internal/fingerprint"
	"fluxtrack/internal/fit"
	"fluxtrack/internal/obs"
	"fluxtrack/internal/plot"
	"fluxtrack/internal/shard"
)

// benchReport is the schema written by -json: enough configuration to
// reproduce the run plus per-experiment wall time and the rendered rows.
type benchReport struct {
	Config       string            `json:"config"` // "default" or "quick"
	Seed         uint64            `json:"seed"`
	Trials       int               `json:"trials"`
	Samples      int               `json:"samples"`
	TrackN       int               `json:"track_n"`
	Rounds       int               `json:"rounds"`
	Workers      int               `json:"workers"`               // 0 = GOMAXPROCS
	CoarseTopK   int               `json:"coarse_topk,omitempty"` // 0 = exact search
	CoarseGrid   int               `json:"coarse_grid,omitempty"`
	Shards       string            `json:"shards,omitempty"` // RxC tile grid, "" = unsharded
	Halo         float64           `json:"halo,omitempty"`   // tile halo width for Shards
	Liars        float64           `json:"liars,omitempty"`  // Byzantine sensor fraction, 0 = all honest
	Robust       string            `json:"robust,omitempty"` // robust-fit defense mode, "" = off
	GOMAXPROCS   int               `json:"gomaxprocs"`
	GoVersion    string            `json:"go_version"`
	Experiments  []benchExperiment `json:"experiments"`
	TotalSeconds float64           `json:"total_seconds"`
	// Metrics is the merged observability snapshot of the whole run, present
	// only when -metrics or -metricsout was given (see internal/obs).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// ShardThroughput is the tile-grid throughput sweep, present only when
	// -shardbench was given (see fluxbench shardbench).
	ShardThroughput *shardThroughputReport `json:"shard_throughput,omitempty"`
}

type benchExperiment struct {
	ID      string     `json:"id"`
	Seconds float64    `json:"seconds"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fluxbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "compare" {
		return runCompare(args[1:])
	}
	if len(args) > 0 && args[0] == "latency" {
		return runLatency(args[1:])
	}
	if len(args) > 0 && args[0] == "shardbench" {
		return runShardBench(args[1:])
	}
	if len(args) > 0 && args[0] == "serve" {
		return runServe(args[1:])
	}
	if len(args) > 0 && args[0] == "report" {
		return runReport(args[1:])
	}
	fs := flag.NewFlagSet("fluxbench", flag.ContinueOnError)
	var (
		quick   = fs.Bool("quick", false, "use the reduced-effort configuration")
		expID   = fs.String("exp", "", "run only the experiment with this id")
		list    = fs.Bool("list", false, "list experiment ids and exit")
		trials  = fs.Int("trials", 0, "override the trial count")
		seed    = fs.Uint64("seed", 0, "override the base seed")
		samples = fs.Int("samples", 0, "override the localization candidate count")
		trackN  = fs.Int("trackn", 0, "override the SMC prediction sample count")
		rounds  = fs.Int("rounds", 0, "override the tracking round count")
		workers = fs.Int("workers", 0, "worker count for trials, NLS search, and tracker steps (0 = one per CPU, 1 = sequential)")
		coarse  = fs.Bool("coarse", false, "shortlist tracking candidates through the coarse-to-fine fingerprint search")
		coarseK = fs.Int("coarsek", 0, "coarse shortlist size per user (0 = default 64; implies -coarse)")
		coarseG = fs.Int("coarsegrid", 0, "fingerprint grid resolution per axis (0 = default 24; implies -coarse)")
		jsonOut = fs.String("json", "", "write a JSON benchmark report to this file")
		dropout = fs.Float64("dropout", 0, "fraction of sensors that fail permanently (tracking experiments)")
		loss    = fs.Float64("loss", 0, "per-round probability a report is lost")
		delayP  = fs.Float64("delay", 0, "per-round probability a report is delayed")
		delayR  = fs.Int("delayrounds", 0, "rounds a delayed report is late (0 = default 2)")
		stuck   = fs.Float64("stuck", 0, "fraction of sensors with frozen readings")
		liars   = fs.Float64("liars", 0, "fraction of Byzantine sensors (half inflate, a quarter deflate, a quarter replay)")
		robust  = fs.String("robust", "", "robust-fit defense: off, huber, loso, or both")
		chart   = fs.Bool("chart", false, "render an ASCII bar chart per table column")
		cpuProf = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf = fs.String("memprofile", "", "write a pprof heap profile to this file at exit")
		shards  = fs.String("shards", "", "track through a RxC tile grid (internal/shard), e.g. 2x2; empty = unsharded")
		halo    = fs.Float64("halo", 0, "tile halo width for -shards: sensors within this margin report to both neighbors")
		shardBn = fs.Bool("shardbench", false, "append the shard throughput sweep (fluxbench shardbench defaults) to the run and the -json report")
		metrics = fs.Bool("metrics", false, "collect work counters and latency histograms; print the merged snapshot at exit")
		metOut  = fs.String("metricsout", "", "write the metrics snapshot as JSON to this file (implies collection)")
		trOut   = fs.String("trace", "", "write one JSON span per tracker round to this file (JSON lines)")
		trCap   = fs.Int("tracecap", 0, "trace ring capacity in spans; oldest spans are overwritten (0 = default 4096)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fluxbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "fluxbench: memprofile:", err)
			}
		}()
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Note)
		}
		return nil
	}

	cfg := exp.DefaultConfig()
	if *quick {
		cfg = exp.QuickConfig()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *samples > 0 {
		cfg.Samples = *samples
	}
	if *trackN > 0 {
		cfg.TrackN = *trackN
	}
	if *rounds > 0 {
		cfg.Rounds = *rounds
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	cfg.Fault = fault.Config{
		DropoutFrac: *dropout, LossProb: *loss,
		DelayProb: *delayP, DelayRounds: *delayR, StuckFrac: *stuck,
	}
	if err := cfg.Fault.Validate(); err != nil {
		return err
	}
	cfg.Adversary = exp.LiarMix(*liars)
	if err := cfg.Adversary.Validate(); err != nil {
		return err
	}
	robustMode, err := fit.ParseRobustMode(*robust)
	if err != nil {
		return err
	}
	cfg.Robust = fit.RobustConfig{Mode: robustMode}
	if *coarse || *coarseK > 0 || *coarseG > 0 {
		cfg.Coarse = fingerprint.CoarseConfig{Enabled: true, TopK: *coarseK, GridRes: *coarseG}.WithDefaults()
		// One cache for the whole run: trials of a cell and tiles of a
		// sharded field share identical (model, bounds, sensors) layouts only
		// within a trial, but repeated cells re-derive identical worlds from
		// the same seeds, so memoizing across the run removes those rebuilds
		// without changing any table (see fingerprint.Cache).
		cfg.DBCache = fingerprint.NewCache(0)
	}
	if *shards != "" {
		grid, err := shard.ParseGrid(*shards)
		if err != nil {
			return err
		}
		grid.Halo = *halo
		cfg.Shards = grid
	}
	var met *obs.Metrics
	if *metrics || *metOut != "" {
		met = obs.New(0)
		cfg.Metrics = met
	}
	var trace *obs.Trace
	if *trOut != "" {
		trace = obs.NewTrace(*trCap)
		cfg.Trace = trace
	}

	experiments := exp.All()
	if *expID != "" {
		e, err := exp.ByID(*expID)
		if err != nil {
			return err
		}
		experiments = []exp.Experiment{e}
	}

	report := benchReport{
		Config:     "default",
		Seed:       cfg.Seed,
		Trials:     cfg.Trials,
		Samples:    cfg.Samples,
		TrackN:     cfg.TrackN,
		Rounds:     cfg.Rounds,
		Workers:    cfg.Workers,
		CoarseTopK: cfg.Coarse.TopK,
		CoarseGrid: cfg.Coarse.GridRes,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Halo:       cfg.Shards.Halo,
		Liars:      *liars,
		GoVersion:  runtime.Version(),
	}
	if robustMode != fit.RobustOff {
		report.Robust = robustMode.String()
	}
	if *quick {
		report.Config = "quick"
	}
	if cfg.Shards.Tiles() > 0 {
		report.Shards = cfg.Shards.String()
	}

	allStart := time.Now()
	for _, e := range experiments {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		secs := time.Since(start).Seconds()
		fmt.Print(table.Render())
		if *chart {
			fmt.Print(renderCharts(table))
		}
		fmt.Printf("   (%s in %.1fs)\n\n", e.ID, secs)
		report.Experiments = append(report.Experiments, benchExperiment{
			ID: e.ID, Seconds: secs, Columns: table.Columns, Rows: table.Rows,
		})
	}
	report.TotalSeconds = time.Since(allStart).Seconds()

	if *shardBn {
		fmt.Println("== shard throughput (fluxbench shardbench)")
		sweep, err := runShardSweep(defaultShardBenchOpts())
		if err != nil {
			return fmt.Errorf("shardbench: %w", err)
		}
		report.ShardThroughput = &sweep
		fmt.Println()
	}

	if met != nil {
		snap := met.Snapshot()
		report.Metrics = &snap
		if *metrics {
			fmt.Println("== metrics")
			fmt.Print(snap.Format())
			fmt.Println()
		}
		if *metOut != "" {
			f, err := os.Create(*metOut)
			if err != nil {
				return err
			}
			if err := snap.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote metrics snapshot to %s\n", *metOut)
		}
	}
	if trace != nil {
		spans := trace.Snapshot()
		f, err := os.Create(*trOut)
		if err != nil {
			return err
		}
		if err := obs.WriteJSONL(f, spans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d spans (of %d recorded) to %s\n", len(spans), trace.Total(), *trOut)
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote benchmark report to %s\n", *jsonOut)
	}
	return nil
}

// runReport renders a saved metrics snapshot as the human-readable table of
// obs.Snapshot.Format. It accepts either a bare snapshot file (written by
// -metricsout) or a full -json benchmark report that embeds one.
func runReport(args []string) error {
	fs := flag.NewFlagSet("fluxbench report", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: fluxbench report metrics.json (got %d args)", fs.NArg())
	}
	path := fs.Arg(0)
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep struct {
		Metrics *obs.Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal(buf, &rep); err == nil && rep.Metrics != nil && !rep.Metrics.Empty() {
		fmt.Print(rep.Metrics.Format())
		return nil
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(buf, &snap); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if snap.Empty() {
		return fmt.Errorf("%s: no metrics found (run fluxbench with -metrics, -metricsout, or -json)", path)
	}
	fmt.Print(snap.Format())
	return nil
}

// runCompare diffs two -json benchmark reports: per-experiment wall time in
// the old and new run plus the speedup ratio, then the totals. Experiments
// present in only one report are listed but not ratioed. With -maxregress R
// the command exits nonzero when the new matched total exceeds R times the
// old one — the CI performance gate.
func runCompare(args []string) error {
	fs := flag.NewFlagSet("fluxbench compare", flag.ContinueOnError)
	maxRegress := fs.Float64("maxregress", 0, "fail when new total wall time exceeds this multiple of the old total (0 = report only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: fluxbench compare [-maxregress R] old.json new.json (got %d args)", fs.NArg())
	}
	oldRep, err := loadReport(fs.Arg(0))
	if err != nil {
		return err
	}
	newRep, err := loadReport(fs.Arg(1))
	if err != nil {
		return err
	}
	text, oldTotal, newTotal := compareReports(oldRep, newRep, fs.Arg(0), fs.Arg(1))
	fmt.Print(text)
	if *maxRegress > 0 && oldTotal > 0 && newTotal > *maxRegress*oldTotal {
		return fmt.Errorf("regression: new matched total %.2fs exceeds %.2fx old total %.2fs (limit %.2fx)",
			newTotal, newTotal/oldTotal, oldTotal, *maxRegress)
	}
	return nil
}

func loadReport(path string) (benchReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return benchReport{}, err
	}
	var r benchReport
	if err := json.Unmarshal(buf, &r); err != nil {
		return benchReport{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func compareReports(oldRep, newRep benchReport, oldPath, newPath string) (text string, oldTotal, newTotal float64) {
	var b strings.Builder
	fmt.Fprintf(&b, "old: %s (config=%s trials=%d workers=%d %s)\n",
		oldPath, oldRep.Config, oldRep.Trials, oldRep.Workers, oldRep.GoVersion)
	fmt.Fprintf(&b, "new: %s (config=%s trials=%d workers=%d %s)\n",
		newPath, newRep.Config, newRep.Trials, newRep.Workers, newRep.GoVersion)
	if oldRep.Config != newRep.Config || oldRep.Trials != newRep.Trials ||
		oldRep.Samples != newRep.Samples || oldRep.Seed != newRep.Seed {
		b.WriteString("warning: run configurations differ; ratios compare unlike work\n")
	}
	b.WriteString("\n")

	oldSecs := make(map[string]float64, len(oldRep.Experiments))
	for _, e := range oldRep.Experiments {
		oldSecs[e.ID] = e.Seconds
	}
	fmt.Fprintf(&b, "%-20s %10s %10s %9s\n", "experiment", "old s", "new s", "speedup")
	matched := make(map[string]bool, len(newRep.Experiments))
	for _, e := range newRep.Experiments {
		prev, ok := oldSecs[e.ID]
		if !ok {
			fmt.Fprintf(&b, "%-20s %10s %10.2f %9s  (new only)\n", e.ID, "-", e.Seconds, "-")
			continue
		}
		matched[e.ID] = true
		oldTotal += prev
		newTotal += e.Seconds
		ratio := "-"
		if e.Seconds > 0 {
			ratio = fmt.Sprintf("%.2fx", prev/e.Seconds)
		}
		fmt.Fprintf(&b, "%-20s %10.2f %10.2f %9s\n", e.ID, prev, e.Seconds, ratio)
	}
	for _, e := range oldRep.Experiments {
		if !matched[e.ID] {
			fmt.Fprintf(&b, "%-20s %10.2f %10s %9s  (old only)\n", e.ID, e.Seconds, "-", "-")
		}
	}
	ratio := "-"
	if newTotal > 0 {
		ratio = fmt.Sprintf("%.2fx", oldTotal/newTotal)
	}
	fmt.Fprintf(&b, "%-20s %10.2f %10.2f %9s\n", "total (matched)", oldTotal, newTotal, ratio)
	return b.String(), oldTotal, newTotal
}

// renderCharts draws one bar chart per fully numeric table column, keyed by
// the first column's labels.
func renderCharts(t exp.Table) string {
	if len(t.Rows) == 0 || len(t.Columns) < 2 {
		return ""
	}
	var b strings.Builder
	for col := 1; col < len(t.Columns); col++ {
		labels := make([]string, 0, len(t.Rows))
		values := make([]float64, 0, len(t.Rows))
		numeric := true
		for _, row := range t.Rows {
			if col >= len(row) {
				numeric = false
				break
			}
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "%"), 64)
			if err != nil {
				numeric = false
				break
			}
			labels = append(labels, row[0])
			values = append(values, v)
		}
		if !numeric || len(values) < 2 {
			continue
		}
		chart, err := plot.Bars(labels, values, 40)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "\n   %s:\n", t.Columns[col])
		for _, line := range strings.Split(strings.TrimRight(chart, "\n"), "\n") {
			fmt.Fprintf(&b, "   %s\n", line)
		}
	}
	return b.String()
}
