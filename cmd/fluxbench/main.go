// Command fluxbench regenerates the paper's evaluation tables. By default
// it runs every experiment at full (paper-faithful) effort; use -quick for
// a fast pass and -exp to select a single experiment.
//
// Usage:
//
//	fluxbench                 # run everything, full effort
//	fluxbench -quick          # run everything, reduced effort
//	fluxbench -exp fig6a      # run one experiment
//	fluxbench -list           # list experiment ids
//	fluxbench -trials 5       # override the trial count
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"fluxtrack/internal/exp"
	"fluxtrack/internal/plot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fluxbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fluxbench", flag.ContinueOnError)
	var (
		quick   = fs.Bool("quick", false, "use the reduced-effort configuration")
		expID   = fs.String("exp", "", "run only the experiment with this id")
		list    = fs.Bool("list", false, "list experiment ids and exit")
		trials  = fs.Int("trials", 0, "override the trial count")
		seed    = fs.Uint64("seed", 0, "override the base seed")
		samples = fs.Int("samples", 0, "override the localization candidate count")
		trackN  = fs.Int("trackn", 0, "override the SMC prediction sample count")
		rounds  = fs.Int("rounds", 0, "override the tracking round count")
		chart   = fs.Bool("chart", false, "render an ASCII bar chart per table column")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Note)
		}
		return nil
	}

	cfg := exp.DefaultConfig()
	if *quick {
		cfg = exp.QuickConfig()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *samples > 0 {
		cfg.Samples = *samples
	}
	if *trackN > 0 {
		cfg.TrackN = *trackN
	}
	if *rounds > 0 {
		cfg.Rounds = *rounds
	}

	experiments := exp.All()
	if *expID != "" {
		e, err := exp.ByID(*expID)
		if err != nil {
			return err
		}
		experiments = []exp.Experiment{e}
	}

	for _, e := range experiments {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Print(table.Render())
		if *chart {
			fmt.Print(renderCharts(table))
		}
		fmt.Printf("   (%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	return nil
}

// renderCharts draws one bar chart per fully numeric table column, keyed by
// the first column's labels.
func renderCharts(t exp.Table) string {
	if len(t.Rows) == 0 || len(t.Columns) < 2 {
		return ""
	}
	var b strings.Builder
	for col := 1; col < len(t.Columns); col++ {
		labels := make([]string, 0, len(t.Rows))
		values := make([]float64, 0, len(t.Rows))
		numeric := true
		for _, row := range t.Rows {
			if col >= len(row) {
				numeric = false
				break
			}
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "%"), 64)
			if err != nil {
				numeric = false
				break
			}
			labels = append(labels, row[0])
			values = append(values, v)
		}
		if !numeric || len(values) < 2 {
			continue
		}
		chart, err := plot.Bars(labels, values, 40)
		if err != nil {
			continue
		}
		fmt.Fprintf(&b, "\n   %s:\n", t.Columns[col])
		for _, line := range strings.Split(strings.TrimRight(chart, "\n"), "\n") {
			fmt.Fprintf(&b, "   %s\n", line)
		}
	}
	return b.String()
}
