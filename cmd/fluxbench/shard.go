package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"fluxtrack/internal/core"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mobility"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/shard"
	"fluxtrack/internal/stats"
	"fluxtrack/internal/traffic"
)

// shardThroughputReport is the schema written by `fluxbench shardbench
// -json` (and embedded in the main report under "shard_throughput" by
// -shardbench): tracker-step throughput for the same world tracked through
// increasingly sharded tile grids. The gain is algorithmic, not parallel —
// each tile fits only its own sensors against its own users, so the
// per-candidate Gram work shrinks with the tile — and therefore shows up
// even at -workers 1 on a single-core machine.
type shardThroughputReport struct {
	Users      int                    `json:"users"`
	TrackN     int                    `json:"track_n"`
	Samples    int                    `json:"sample_nodes"`
	Rounds     int                    `json:"rounds"`
	Repeats    int                    `json:"repeats"`
	Halo       float64                `json:"halo"`
	Workers    int                    `json:"workers"`
	Seed       uint64                 `json:"seed"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	GoVersion  string                 `json:"go_version"`
	Entries    []shardThroughputEntry `json:"entries"`
}

type shardThroughputEntry struct {
	Grid        string  `json:"grid"`
	Tiles       int     `json:"tiles"`
	Steps       int     `json:"steps"`
	MeanMs      float64 `json:"mean_ms"`
	P95ms       float64 `json:"p95_ms"`
	StepsPerSec float64 `json:"steps_per_sec"`
	UsersPerSec float64 `json:"users_per_sec"`
	Handoffs    int     `json:"handoffs"`
	Speedup     float64 `json:"speedup_vs_first"` // first-grid mean / this mean
}

// shardBenchOpts parameterizes one throughput sweep.
type shardBenchOpts struct {
	users   int
	trackN  int
	samples int
	rounds  int
	repeats int
	halo    float64
	workers int
	seed    uint64
	grids   []shard.Grid
}

func defaultShardBenchOpts() shardBenchOpts {
	return shardBenchOpts{
		users: 4, trackN: 10000, samples: 90, rounds: 6, repeats: 2,
		halo: 2, workers: 1, seed: 1,
		grids: []shard.Grid{{Rows: 1, Cols: 1}, {Rows: 2, Cols: 2}},
	}
}

// runShardBench is the `fluxbench shardbench` subcommand.
func runShardBench(args []string) error {
	fs := flag.NewFlagSet("fluxbench shardbench", flag.ContinueOnError)
	d := defaultShardBenchOpts()
	var (
		users   = fs.Int("users", d.users, "number of tracked users (one per quadrant orbit)")
		trackN  = fs.Int("trackn", d.trackN, "SMC prediction samples per user per round")
		samples = fs.Int("samples", d.samples, "number of sniffed nodes")
		rounds  = fs.Int("rounds", d.rounds, "observation rounds per repeat")
		repeats = fs.Int("repeats", d.repeats, "fresh-tracker repeats per grid")
		halo    = fs.Float64("halo", d.halo, "tile halo width shared by every sharded grid")
		workers = fs.Int("workers", d.workers, "worker count for tile fan-out and tile steps (1 isolates the algorithmic gain)")
		seed    = fs.Uint64("seed", d.seed, "base seed for scenario, trajectories, and trackers")
		list    = fs.String("grids", "1x1,2x2", "comma-separated RxC tile grids")
		jsonOut = fs.String("json", "", "write a JSON throughput report to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	grids, err := parseGridList(*list)
	if err != nil {
		return err
	}
	opts := shardBenchOpts{
		users: *users, trackN: *trackN, samples: *samples, rounds: *rounds,
		repeats: *repeats, halo: *halo, workers: *workers, seed: *seed, grids: grids,
	}
	report, err := runShardSweep(opts)
	if err != nil {
		return err
	}
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote shard throughput report to %s\n", *jsonOut)
	}
	return nil
}

// parseGridList parses "1x1,2x2,4x2" into tile grids.
func parseGridList(s string) ([]shard.Grid, error) {
	parts := strings.Split(s, ",")
	out := make([]shard.Grid, 0, len(parts))
	for _, p := range parts {
		g, err := shard.ParseGrid(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("shardbench: %w", err)
		}
		out = append(out, g)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("shardbench: empty -grids list")
	}
	return out, nil
}

// shardBenchTrajectories lays the users on gentle linear orbits, one per
// field quadrant (cycling with a small offset past four), so every grid in
// the sweep tracks identical motion and a 2×2 split keeps roughly one user
// per tile — the work-reduction regime sharding targets.
func shardBenchTrajectories(field geom.Rect, users int) []mobility.Trajectory {
	w, h := field.Width(), field.Height()
	at := func(fx, fy, vx, vy float64) mobility.Linear {
		return mobility.Linear{
			Start: geom.Pt(field.Min.X+fx*w, field.Min.Y+fy*h),
			V:     geom.Vec{DX: vx, DY: vy},
		}
	}
	base := []mobility.Linear{
		at(0.23, 0.23, 0.017*w, 0.013*h),
		at(0.77, 0.27, -0.013*w, 0.017*h),
		at(0.27, 0.73, 0.017*w, -0.013*h),
		at(0.73, 0.77, -0.017*w, -0.017*h),
	}
	out := make([]mobility.Trajectory, users)
	for i := range out {
		tr := base[i%len(base)]
		off := 0.023 * float64(i/len(base))
		tr.Start = geom.Pt(tr.Start.X+off*w, tr.Start.Y+off*h)
		out[i] = tr
	}
	return out
}

// runShardSweep measures Field.Step wall time for each tile grid over one
// precomputed observation stream. Every grid replays the same stream from
// the same seed; only the tiling differs.
func runShardSweep(opts shardBenchOpts) (shardThroughputReport, error) {
	src := rng.New(opts.seed)
	sc, err := core.NewScenario(core.ScenarioConfig{}, src)
	if err != nil {
		return shardThroughputReport{}, err
	}
	sniffer, err := sc.NewSnifferCount(opts.samples, src)
	if err != nil {
		return shardThroughputReport{}, err
	}
	trajs := shardBenchTrajectories(sc.Field(), opts.users)
	stretches := make([]float64, opts.users)
	starts := make([]geom.Point, opts.users)
	for i := range stretches {
		stretches[i] = src.Uniform(1, 3)
		starts[i] = sc.Field().Clamp(trajs[i].At(0))
	}
	obs := make([][]float64, opts.rounds)
	for r := range obs {
		t := float64(r + 1)
		us := make([]traffic.User, opts.users)
		for i, tr := range trajs {
			us[i] = traffic.User{Pos: sc.Field().Clamp(tr.At(t)), Stretch: stretches[i], Active: true}
		}
		o, err := sniffer.Observe(us, 0, src)
		if err != nil {
			return shardThroughputReport{}, err
		}
		obs[r] = o
	}
	trackerSeed := src.Uint64()

	report := shardThroughputReport{
		Users: opts.users, TrackN: opts.trackN, Samples: opts.samples,
		Rounds: opts.rounds, Repeats: opts.repeats, Halo: opts.halo,
		Workers: opts.workers, Seed: opts.seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}

	var firstMean float64
	fmt.Printf("%6s %6s %7s %10s %10s %11s %12s %9s %9s\n",
		"grid", "tiles", "steps", "mean ms", "p95 ms", "steps/sec", "users/sec", "handoffs", "speedup")
	for gi, g := range opts.grids {
		grid := g
		grid.Halo = opts.halo
		durations := make([]float64, 0, opts.rounds*opts.repeats)
		handoffs := 0
		for rep := 0; rep < opts.repeats; rep++ {
			field, err := sniffer.NewShardedTracker(opts.users, core.TrackerConfig{
				N: opts.trackN, M: 10, VMax: 5,
				Shards: grid, InitialPositions: starts, Workers: opts.workers,
			}, trackerSeed)
			if err != nil {
				return shardThroughputReport{}, err
			}
			for r, o := range obs {
				t0 := time.Now()
				if _, err := field.Step(float64(r+1), o); err != nil {
					return shardThroughputReport{}, err
				}
				durations = append(durations, time.Since(t0).Seconds()*1e3)
			}
			handoffs = field.Handoffs()
		}
		sort.Float64s(durations)
		entry := shardThroughputEntry{
			Grid:     grid.String(),
			Tiles:    grid.Tiles(),
			Steps:    len(durations),
			MeanMs:   stats.Mean(durations),
			P95ms:    stats.Percentile(durations, 95),
			Handoffs: handoffs,
		}
		if entry.MeanMs > 0 {
			entry.StepsPerSec = 1e3 / entry.MeanMs
			entry.UsersPerSec = float64(opts.users) * 1e3 / entry.MeanMs
		}
		if gi == 0 {
			firstMean = entry.MeanMs
		}
		if entry.MeanMs > 0 {
			entry.Speedup = firstMean / entry.MeanMs
		}
		report.Entries = append(report.Entries, entry)
		fmt.Printf("%6s %6d %7d %10.2f %10.2f %11.2f %12.2f %9d %8.2fx\n",
			entry.Grid, entry.Tiles, entry.Steps, entry.MeanMs, entry.P95ms,
			entry.StepsPerSec, entry.UsersPerSec, entry.Handoffs, entry.Speedup)
	}
	return report, nil
}
