package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"fluxtrack/internal/core"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mobility"
	"fluxtrack/internal/obs"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/shard"
	"fluxtrack/internal/stats"
	"fluxtrack/internal/traffic"
)

// shardThroughputReport is the schema written by `fluxbench shardbench
// -json` (and embedded in the main report under "shard_throughput" by
// -shardbench): tracker-step throughput for the same worlds tracked through
// a users × grid × workers sweep. The single-worker gain is algorithmic, not
// parallel — each tile fits only its own sensors against its own users, and
// the sparse result path touches only owned users — and therefore shows up
// even at -workers 1 on a single-core machine.
type shardThroughputReport struct {
	TrackN    int     `json:"track_n"`
	Samples   int     `json:"sample_nodes"`
	Rounds    int     `json:"rounds"`
	Repeats   int     `json:"repeats"`
	Halo      float64 `json:"halo"`
	Seed      uint64  `json:"seed"`
	Skew      float64 `json:"skew,omitempty"`
	ActiveSet int     `json:"active_set,omitempty"`
	Capacity  int     `json:"tile_capacity,omitempty"`
	// Sched is the scheduling/result-shape mode of every entry: "lpt" (the
	// scale path) or "naive" (-naive: static contiguous scheduling plus
	// dense per-tile result arrays — the pre-scale baseline).
	Sched      string                 `json:"sched"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	GoVersion  string                 `json:"go_version"`
	Entries    []shardThroughputEntry `json:"entries"`
}

type shardThroughputEntry struct {
	Users       int     `json:"users"`
	Grid        string  `json:"grid"`
	Tiles       int     `json:"tiles"`
	Workers     int     `json:"workers"`
	Steps       int     `json:"steps"`
	MeanMs      float64 `json:"mean_ms"`
	P50ms       float64 `json:"p50_ms"`
	P95ms       float64 `json:"p95_ms"`
	StepsPerSec float64 `json:"steps_per_sec"`
	UsersPerSec float64 `json:"users_per_sec"`
	Handoffs    int     `json:"handoffs"`
	Spills      int     `json:"spills,omitempty"`
	// ImbalanceMax/ImbalanceMean report the final round's tile-load shape
	// (largest owned-user count per tile vs users/tiles); both are
	// deterministic (see shard.Field.Imbalance).
	ImbalanceMax  int     `json:"imbalance_max"`
	ImbalanceMean float64 `json:"imbalance_mean"`
	// BytesPerUser is the live heap the sharded tracker retains per tracked
	// user after the measured rounds (post-GC delta against the
	// pre-construction heap) — the pooled-memory figure of the scale work.
	BytesPerUser float64 `json:"bytes_per_user"`
	Speedup      float64 `json:"speedup_vs_first"` // same users+workers, first grid's mean / this mean
}

// shardBenchOpts parameterizes one throughput sweep.
type shardBenchOpts struct {
	users     []int
	trackN    int
	samples   int
	rounds    int
	repeats   int
	halo      float64
	workers   []int
	seed      uint64
	grids     []shard.Grid
	skew      float64
	activeSet int
	capacity  int
	naive     bool
	metrics   bool
}

func defaultShardBenchOpts() shardBenchOpts {
	return shardBenchOpts{
		users: []int{4}, trackN: 10000, samples: 90, rounds: 6, repeats: 2,
		halo: 2, workers: []int{1}, seed: 1,
		grids: []shard.Grid{{Rows: 1, Cols: 1}, {Rows: 2, Cols: 2}},
	}
}

// runShardBench is the `fluxbench shardbench` subcommand.
func runShardBench(args []string) error {
	fs := flag.NewFlagSet("fluxbench shardbench", flag.ContinueOnError)
	d := defaultShardBenchOpts()
	var (
		users     = fs.String("users", "4", "comma-separated tracked-population sizes to sweep")
		trackN    = fs.Int("trackn", d.trackN, "SMC prediction samples per user per round")
		samples   = fs.Int("samples", d.samples, "number of sniffed nodes")
		rounds    = fs.Int("rounds", d.rounds, "observation rounds per repeat")
		repeats   = fs.Int("repeats", d.repeats, "fresh-tracker repeats per entry")
		halo      = fs.Float64("halo", d.halo, "tile halo width shared by every sharded grid")
		workers   = fs.String("workers", "1", "comma-separated tile fan-out worker counts (0 = GOMAXPROCS; 1 isolates the algorithmic gain)")
		seed      = fs.Uint64("seed", d.seed, "base seed for scenario, trajectories, and trackers")
		list      = fs.String("grids", "1x1,2x2", "comma-separated RxC tile grids")
		skew      = fs.Float64("skew", 0, "fraction of users clustered in one hot corner (0.9 = the 90/10 scale-out regime; 0 = quadrant orbits)")
		activeSet = fs.Int("activeset", 0, "per-tile cap on users searched per round (0 = search everyone; large populations need a cap)")
		capacity  = fs.Int("capacity", 0, "per-tile user capacity with deterministic admission and spills (0 = unlimited)")
		naive     = fs.Bool("naive", false, "run the pre-scale baseline: static contiguous scheduling + dense per-tile results")
		metrics   = fs.Bool("metrics", false, "collect shard.* and per-tile instruments; print the merged snapshot at exit")
		jsonOut   = fs.String("json", "", "write a JSON throughput report to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	grids, err := parseGridList(*list)
	if err != nil {
		return err
	}
	userCounts, err := parseIntList(*users, "shardbench: -users")
	if err != nil {
		return err
	}
	workerCounts, err := parseWorkerList(*workers)
	if err != nil {
		return err
	}
	opts := shardBenchOpts{
		users: userCounts, trackN: *trackN, samples: *samples, rounds: *rounds,
		repeats: *repeats, halo: *halo, workers: workerCounts, seed: *seed, grids: grids,
		skew: *skew, activeSet: *activeSet, capacity: *capacity, naive: *naive,
		metrics: *metrics,
	}
	if opts.skew < 0 || opts.skew > 1 {
		return fmt.Errorf("shardbench: -skew %v outside [0, 1]", opts.skew)
	}
	report, err := runShardSweep(opts)
	if err != nil {
		return err
	}
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote shard throughput report to %s\n", *jsonOut)
	}
	return nil
}

// parseGridList parses "1x1,2x2,4x2" into tile grids.
func parseGridList(s string) ([]shard.Grid, error) {
	parts := strings.Split(s, ",")
	out := make([]shard.Grid, 0, len(parts))
	for _, p := range parts {
		g, err := shard.ParseGrid(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("shardbench: %w", err)
		}
		out = append(out, g)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("shardbench: empty -grids list")
	}
	return out, nil
}

// parseIntList parses "100,1000,10000" into positive ints.
func parseIntList(s, what string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("%s entry %q is not a positive integer", what, p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s list is empty", what)
	}
	return out, nil
}

// shardBenchTrajectories lays the users out for the sweep. With skew zero
// they ride gentle linear orbits, one per field quadrant (cycling with a
// small offset past four), so every grid tracks identical motion and a 2×2
// split keeps roughly one user per tile. With skew s, the first s·users are
// instead packed into a slowly drifting cluster at the low corner — the hot
// tile of the 90/10 scale-out regime — and only the remainder orbit.
func shardBenchTrajectories(field geom.Rect, users int, skew float64) []mobility.Trajectory {
	w, h := field.Width(), field.Height()
	at := func(fx, fy, vx, vy float64) mobility.Linear {
		return mobility.Linear{
			Start: geom.Pt(field.Min.X+fx*w, field.Min.Y+fy*h),
			V:     geom.Vec{DX: vx, DY: vy},
		}
	}
	base := []mobility.Linear{
		at(0.23, 0.23, 0.017*w, 0.013*h),
		at(0.77, 0.27, -0.013*w, 0.017*h),
		at(0.27, 0.73, 0.017*w, -0.013*h),
		at(0.73, 0.77, -0.017*w, -0.017*h),
	}
	hot := int(skew * float64(users))
	out := make([]mobility.Trajectory, users)
	for i := range out {
		if i < hot {
			// Pack the hot cluster into a ~0.06-wide corner patch, creeping
			// toward the field center so seam handoffs still occur at fine
			// grids. Deterministic spread: position keyed by index only.
			fx := 0.03 + 0.06*float64(i%97)/97
			fy := 0.03 + 0.06*float64((i*31)%89)/89
			out[i] = at(fx, fy, 0.004*w, 0.004*h)
			continue
		}
		tr := base[i%len(base)]
		off := 0.023 * float64((i-hot)/len(base))
		tr.Start = geom.Pt(tr.Start.X+off*w, tr.Start.Y+off*h)
		out[i] = tr
	}
	return out
}

// runShardSweep measures Field.Step wall time for each (users, grid,
// workers) cell over one precomputed observation stream per population.
// Every cell replays the same stream from the same seed; only the tiling and
// scheduling differ.
func runShardSweep(opts shardBenchOpts) (shardThroughputReport, error) {
	report := shardThroughputReport{
		TrackN: opts.trackN, Samples: opts.samples,
		Rounds: opts.rounds, Repeats: opts.repeats, Halo: opts.halo,
		Seed: opts.seed, Skew: opts.skew,
		ActiveSet: opts.activeSet, Capacity: opts.capacity,
		Sched:      "lpt",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	if opts.naive {
		report.Sched = "naive"
	}
	var met *obs.Metrics
	if opts.metrics {
		met = obs.New(0)
	}

	fmt.Printf("%8s %6s %6s %3s %7s %9s %9s %9s %11s %8s %7s %9s %10s %9s\n",
		"users", "grid", "tiles", "wk", "steps", "p50 ms", "p95 ms", "mean ms",
		"users/sec", "handoff", "spills", "imbal", "bytes/usr", "speedup")
	for _, users := range opts.users {
		// One world per population: scenario, trajectories, and the full
		// observation stream, shared by every (grid, workers) cell.
		src := rng.New(opts.seed)
		sc, err := core.NewScenario(core.ScenarioConfig{}, src)
		if err != nil {
			return shardThroughputReport{}, err
		}
		sniffer, err := sc.NewSnifferCount(opts.samples, src)
		if err != nil {
			return shardThroughputReport{}, err
		}
		trajs := shardBenchTrajectories(sc.Field(), users, opts.skew)
		stretches := make([]float64, users)
		starts := make([]geom.Point, users)
		for i := range stretches {
			stretches[i] = src.Uniform(1, 3)
			starts[i] = sc.Field().Clamp(trajs[i].At(0))
		}
		observations := make([][]float64, opts.rounds)
		us := make([]traffic.User, users)
		for r := range observations {
			t := float64(r + 1)
			for i, tr := range trajs {
				us[i] = traffic.User{Pos: sc.Field().Clamp(tr.At(t)), Stretch: stretches[i], Active: true}
			}
			o, err := sniffer.Observe(us, 0, src)
			if err != nil {
				return shardThroughputReport{}, err
			}
			observations[r] = o
		}
		trackerSeed := src.Uint64()

		firstMean := make(map[int]float64) // workers -> first grid's mean
		for _, g := range opts.grids {
			grid := g
			grid.Halo = opts.halo
			for _, workers := range opts.workers {
				cfg := core.TrackerConfig{
					N: opts.trackN, M: 10, VMax: 5,
					ActiveSetLimit: opts.activeSet,
					Shards:         grid, InitialPositions: starts, Workers: workers,
					TileCapacity: opts.capacity,
					Metrics:      met,
				}
				if opts.naive {
					cfg.Sched = shard.SchedStatic
					cfg.DenseResults = true
				}
				if met != nil {
					cfg.PerTileMetrics = true
				}
				durations := make([]float64, 0, opts.rounds*opts.repeats)
				handoffs, spills := 0, 0
				var imbMax int
				var imbMean, bytesPerUser float64
				for rep := 0; rep < opts.repeats; rep++ {
					runtime.GC()
					var m0 runtime.MemStats
					runtime.ReadMemStats(&m0)
					field, err := sniffer.NewShardedTracker(users, cfg, trackerSeed)
					if err != nil {
						return shardThroughputReport{}, err
					}
					for r, o := range observations {
						t0 := time.Now()
						if _, err := field.Step(float64(r+1), o); err != nil {
							return shardThroughputReport{}, err
						}
						durations = append(durations, time.Since(t0).Seconds()*1e3)
					}
					handoffs, spills = field.Handoffs(), field.Spills()
					imbMax, imbMean = field.Imbalance()
					runtime.GC()
					var m1 runtime.MemStats
					runtime.ReadMemStats(&m1)
					if m1.HeapAlloc > m0.HeapAlloc {
						bytesPerUser = float64(m1.HeapAlloc-m0.HeapAlloc) / float64(users)
					}
					runtime.KeepAlive(field)
				}
				sort.Float64s(durations)
				entry := shardThroughputEntry{
					Users:         users,
					Grid:          grid.String(),
					Tiles:         grid.Tiles(),
					Workers:       workers,
					Steps:         len(durations),
					MeanMs:        stats.Mean(durations),
					P50ms:         stats.Percentile(durations, 50),
					P95ms:         stats.Percentile(durations, 95),
					Handoffs:      handoffs,
					Spills:        spills,
					ImbalanceMax:  imbMax,
					ImbalanceMean: imbMean,
					BytesPerUser:  bytesPerUser,
				}
				if entry.MeanMs > 0 {
					entry.StepsPerSec = 1e3 / entry.MeanMs
					entry.UsersPerSec = float64(users) * 1e3 / entry.MeanMs
				}
				if _, ok := firstMean[workers]; !ok {
					firstMean[workers] = entry.MeanMs
				}
				if entry.MeanMs > 0 {
					entry.Speedup = firstMean[workers] / entry.MeanMs
				}
				report.Entries = append(report.Entries, entry)
				fmt.Printf("%8d %6s %6d %3d %7d %9.2f %9.2f %9.2f %11.1f %8d %7d %4d/%4.1f %10.0f %8.2fx\n",
					entry.Users, entry.Grid, entry.Tiles, entry.Workers, entry.Steps,
					entry.P50ms, entry.P95ms, entry.MeanMs, entry.UsersPerSec,
					entry.Handoffs, entry.Spills, entry.ImbalanceMax, entry.ImbalanceMean,
					entry.BytesPerUser, entry.Speedup)
			}
		}
	}
	if met != nil {
		fmt.Println("== metrics")
		fmt.Print(met.Snapshot().Format())
	}
	return report, nil
}
