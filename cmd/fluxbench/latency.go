package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"fluxtrack/internal/core"
	"fluxtrack/internal/fingerprint"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mobility"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/smc"
	"fluxtrack/internal/stats"
	"fluxtrack/internal/traffic"
)

// latencyReport is the schema written by `fluxbench latency -json`: the
// per-Step wall-time distribution of the SMC tracker at each worker count,
// over an identical precomputed observation stream.
type latencyReport struct {
	Users      int            `json:"users"`
	TrackN     int            `json:"track_n"`
	Samples    int            `json:"sample_nodes"`
	Rounds     int            `json:"rounds"`
	Repeats    int            `json:"repeats"`
	Seed       uint64         `json:"seed"`
	CoarseTopK int            `json:"coarse_topk,omitempty"`
	CoarseGrid int            `json:"coarse_grid,omitempty"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	GoVersion  string         `json:"go_version"`
	Entries    []latencyEntry `json:"entries"`
}

type latencyEntry struct {
	Workers int     `json:"workers"`
	Steps   int     `json:"steps"`
	P50ms   float64 `json:"p50_ms"`
	P95ms   float64 `json:"p95_ms"`
	MeanMs  float64 `json:"mean_ms"`
	TotalS  float64 `json:"total_seconds"`
	Speedup float64 `json:"speedup_vs_serial"` // serial mean / this mean
}

// runLatency benchmarks Tracker.Step wall time against the worker count.
// Every worker count replays the same observation stream through a fresh
// tracker built from the same seed, so the runs do identical numerical work
// (the worker-invariance tests prove identical output); only the intra-step
// scheduling differs.
func runLatency(args []string) error {
	fs := flag.NewFlagSet("fluxbench latency", flag.ContinueOnError)
	var (
		users   = fs.Int("users", 3, "number of tracked users")
		trackN  = fs.Int("trackn", 1000, "SMC prediction samples per user per round")
		samples = fs.Int("samples", 90, "number of sniffed nodes")
		rounds  = fs.Int("rounds", 10, "observation rounds per repeat")
		repeats = fs.Int("repeats", 3, "fresh-tracker repeats per worker count")
		seed    = fs.Uint64("seed", 1, "base seed for scenario, walks, and tracker")
		list    = fs.String("workers", "1,2,4,8", "comma-separated worker counts (0 = GOMAXPROCS)")
		jsonOut = fs.String("json", "", "write a JSON latency report to this file")
		coarse  = fs.Bool("coarse", false, "shortlist candidates through the coarse-to-fine fingerprint search")
		coarseK = fs.Int("coarsek", 0, "coarse shortlist size per user (0 = default 64; implies -coarse)")
		coarseG = fs.Int("coarsegrid", 0, "fingerprint grid resolution per axis (0 = default 24; implies -coarse)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	workerCounts, err := parseWorkerList(*list)
	if err != nil {
		return err
	}

	// Build the world once: scenario, sniffer, random walks, and the full
	// observation stream. Precomputing the observations keeps traffic
	// simulation out of the timed region — only Tracker.Step is measured.
	src := rng.New(*seed)
	sc, err := core.NewScenario(core.ScenarioConfig{}, src)
	if err != nil {
		return err
	}
	sniffer, err := sc.NewSnifferCount(*samples, src)
	if err != nil {
		return err
	}
	walks := make([]mobility.Trajectory, *users)
	stretches := make([]float64, *users)
	for i := range walks {
		w, err := mobility.NewRandomWalk(sc.Field(), src.InRect(sc.Field()), 4, *rounds+1, src)
		if err != nil {
			return err
		}
		walks[i] = w
		stretches[i] = src.Uniform(1, 3)
	}
	obs := make([][]float64, *rounds)
	for r := range obs {
		t := float64(r + 1)
		us := make([]traffic.User, *users)
		for i, w := range walks {
			us[i] = traffic.User{Pos: sc.Field().Clamp(w.At(t)), Stretch: stretches[i], Active: true}
		}
		o, err := sniffer.Observe(us, 0, src)
		if err != nil {
			return err
		}
		obs[r] = o
	}

	report := latencyReport{
		Users: *users, TrackN: *trackN, Samples: *samples,
		Rounds: *rounds, Repeats: *repeats, Seed: *seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	var ccfg fingerprint.CoarseConfig
	if *coarse || *coarseK > 0 || *coarseG > 0 {
		ccfg = fingerprint.CoarseConfig{Enabled: true, TopK: *coarseK, GridRes: *coarseG}.WithDefaults()
		report.CoarseTopK = ccfg.TopK
		report.CoarseGrid = ccfg.GridRes
	}

	newTracker := func(workers int) (*smc.Tracker, error) {
		return sniffer.NewTracker(*users, core.TrackerConfig{
			N: *trackN, M: 10, VMax: 5, Workers: workers, Coarse: ccfg,
		}, *seed+101)
	}

	var serialMean float64
	var refMean geom.Point // final first-user estimate at the first worker count
	fmt.Printf("%8s %10s %10s %10s %10s %9s\n",
		"workers", "steps", "p50 ms", "p95 ms", "mean ms", "speedup")
	for wi, workers := range workerCounts {
		durations := make([]float64, 0, *rounds**repeats)
		var last smc.StepResult
		start := time.Now()
		for rep := 0; rep < *repeats; rep++ {
			tr, err := newTracker(workers)
			if err != nil {
				return err
			}
			for r, o := range obs {
				t0 := time.Now()
				res, err := tr.Step(float64(r+1), o)
				if err != nil {
					return err
				}
				durations = append(durations, time.Since(t0).Seconds()*1e3)
				last = res
			}
		}
		total := time.Since(start).Seconds()

		// Cheap cross-check of the worker-invariance contract on top of the
		// unit tests: the final estimate must not depend on the worker count.
		if wi == 0 {
			refMean = last.Estimates[0].Mean
		} else if last.Estimates[0].Mean != refMean {
			return fmt.Errorf("latency: workers=%d diverged from workers=%d output",
				workers, workerCounts[0])
		}

		sort.Float64s(durations)
		entry := latencyEntry{
			Workers: workers,
			Steps:   len(durations),
			P50ms:   stats.Percentile(durations, 50),
			P95ms:   stats.Percentile(durations, 95),
			MeanMs:  stats.Mean(durations),
			TotalS:  total,
		}
		if wi == 0 {
			serialMean = entry.MeanMs
		}
		if entry.MeanMs > 0 {
			entry.Speedup = serialMean / entry.MeanMs
		}
		report.Entries = append(report.Entries, entry)
		fmt.Printf("%8d %10d %10.2f %10.2f %10.2f %8.2fx\n",
			workers, entry.Steps, entry.P50ms, entry.P95ms, entry.MeanMs, entry.Speedup)
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote latency report to %s\n", *jsonOut)
	}
	return nil
}

// parseWorkerList parses "1,2,4,8" into worker counts.
func parseWorkerList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("latency: bad -workers entry %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("latency: empty -workers list")
	}
	return out, nil
}
