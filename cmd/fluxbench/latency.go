package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"fluxtrack/internal/core"
	"fluxtrack/internal/exp"
	"fluxtrack/internal/fingerprint"
	"fluxtrack/internal/fit"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mobility"
	"fluxtrack/internal/obs"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/stats"
	"fluxtrack/internal/traffic"
)

// latencyReport is the schema written by `fluxbench latency -json`: the
// per-Step wall-time distribution of the tracker at each (tile grid, worker
// count) pair, over an identical precomputed observation stream. Every run
// goes through the sharded coordinator — a 1x1 grid is byte-identical to the
// plain tracker — so each entry also carries the per-shard queue/step
// breakdown recorded by the coordinator's tile spans.
type latencyReport struct {
	Users      int            `json:"users"`
	TrackN     int            `json:"track_n"`
	Samples    int            `json:"sample_nodes"`
	Rounds     int            `json:"rounds"`
	Repeats    int            `json:"repeats"`
	Seed       uint64         `json:"seed"`
	Halo       float64        `json:"halo,omitempty"`
	CoarseTopK int            `json:"coarse_topk,omitempty"`
	CoarseGrid int            `json:"coarse_grid,omitempty"`
	Liars      float64        `json:"liars,omitempty"`  // Byzantine sensor fraction, 0 = all honest
	Robust     string         `json:"robust,omitempty"` // robust-fit defense mode, "" = off
	GOMAXPROCS int            `json:"gomaxprocs"`
	GoVersion  string         `json:"go_version"`
	Entries    []latencyEntry `json:"entries"`
}

type latencyEntry struct {
	Shards  string  `json:"shards"`
	Rows    int     `json:"grid_rows"`
	Cols    int     `json:"grid_cols"`
	Tiles   int     `json:"tiles"`
	Workers int     `json:"workers"`
	Steps   int     `json:"steps"`
	P50ms   float64 `json:"p50_ms"`
	P95ms   float64 `json:"p95_ms"`
	MeanMs  float64 `json:"mean_ms"`
	TotalS  float64 `json:"total_seconds"`
	Speedup float64 `json:"speedup_vs_serial"` // same-grid serial mean / this mean
	// UsersPerSec is tracked users divided by the mean step time — the
	// throughput figure the shard sweep (fluxbench shardbench) reports.
	UsersPerSec float64 `json:"users_per_sec"`
	// ImbalanceMax/ImbalanceMean report the final round's tile-load shape:
	// the largest per-tile owned-user count against the users/tiles ideal.
	ImbalanceMax  int     `json:"imbalance_max"`
	ImbalanceMean float64 `json:"imbalance_mean"`
	// PerShard breaks the step down by tile: how long each tile's
	// observations queued before its step ran (dispatch to tile-step start)
	// and how long the tile's own step took.
	PerShard []shardLatency `json:"per_shard,omitempty"`
}

// shardLatency is one tile's latency distribution within an entry.
type shardLatency struct {
	Tile       int     `json:"tile"`
	Steps      int     `json:"steps"`
	QueueP50ms float64 `json:"queue_p50_ms"`
	QueueP95ms float64 `json:"queue_p95_ms"`
	StepP50ms  float64 `json:"step_p50_ms"`
	StepP95ms  float64 `json:"step_p95_ms"`
}

// runLatency benchmarks tracker-step wall time against the worker count and
// the tile grid. Every (grid, workers) pair replays the same observation
// stream through a fresh tracker built from the same seed, so runs of one
// grid do identical numerical work (the worker-invariance tests prove
// identical output); only the scheduling differs. Different grids do
// different work — that's the sharding trade the shards column exposes.
func runLatency(args []string) error {
	fs := flag.NewFlagSet("fluxbench latency", flag.ContinueOnError)
	var (
		users   = fs.Int("users", 3, "number of tracked users")
		trackN  = fs.Int("trackn", 1000, "SMC prediction samples per user per round")
		samples = fs.Int("samples", 90, "number of sniffed nodes")
		rounds  = fs.Int("rounds", 10, "observation rounds per repeat")
		repeats = fs.Int("repeats", 3, "fresh-tracker repeats per entry")
		seed    = fs.Uint64("seed", 1, "base seed for scenario, walks, and tracker")
		list    = fs.String("workers", "1,2,4,8", "comma-separated worker counts (0 = GOMAXPROCS)")
		gridsFl = fs.String("shards", "1x1", "comma-separated RxC tile grids (1x1 = the unsharded tracker, byte for byte)")
		halo    = fs.Float64("halo", 0, "tile halo width shared by every sharded grid")
		jsonOut = fs.String("json", "", "write a JSON latency report to this file")
		coarse  = fs.Bool("coarse", false, "shortlist candidates through the coarse-to-fine fingerprint search")
		coarseK = fs.Int("coarsek", 0, "coarse shortlist size per user (0 = default 64; implies -coarse)")
		coarseG = fs.Int("coarsegrid", 0, "fingerprint grid resolution per axis (0 = default 24; implies -coarse)")
		liars   = fs.Float64("liars", 0, "fraction of Byzantine sensors (half inflate, a quarter deflate, a quarter replay)")
		robust  = fs.String("robust", "", "robust-fit defense: off, huber, loso, or both")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	robustMode, err := fit.ParseRobustMode(*robust)
	if err != nil {
		return err
	}
	advCfg := exp.LiarMix(*liars)
	if err := advCfg.Validate(); err != nil {
		return err
	}
	workerCounts, err := parseWorkerList(*list)
	if err != nil {
		return err
	}
	grids, err := parseGridList(*gridsFl)
	if err != nil {
		return err
	}

	// Build the world once: scenario, sniffer, random walks, and the full
	// observation stream. Precomputing the observations keeps traffic
	// simulation out of the timed region — only the tracker step is measured.
	src := rng.New(*seed)
	sc, err := core.NewScenario(core.ScenarioConfig{}, src)
	if err != nil {
		return err
	}
	sniffer, err := sc.NewSnifferCount(*samples, src)
	if err != nil {
		return err
	}
	walks := make([]mobility.Trajectory, *users)
	stretches := make([]float64, *users)
	starts := make([]geom.Point, *users)
	for i := range walks {
		w, err := mobility.NewRandomWalk(sc.Field(), src.InRect(sc.Field()), 4, *rounds+1, src)
		if err != nil {
			return err
		}
		walks[i] = w
		stretches[i] = src.Uniform(1, 3)
		starts[i] = sc.Field().Clamp(w.At(0))
	}
	observations := make([][]float64, *rounds)
	for r := range observations {
		t := float64(r + 1)
		us := make([]traffic.User, *users)
		for i, w := range walks {
			us[i] = traffic.User{Pos: sc.Field().Clamp(w.At(t)), Stretch: stretches[i], Active: true}
		}
		o, err := sniffer.Observe(us, 0, src)
		if err != nil {
			return err
		}
		observations[r] = o
	}
	// Tamper the precomputed stream once, outside the timed region: the
	// adversary's cost is the attacker's problem; what the entries measure is
	// what the *defense* adds to the tracker step.
	if *liars > 0 {
		adv, err := sniffer.NewAdversary(advCfg, src.Uint64())
		if err != nil {
			return err
		}
		for r, o := range observations {
			tampered, err := adv.Apply(o)
			if err != nil {
				return err
			}
			observations[r] = tampered
		}
	}

	report := latencyReport{
		Users: *users, TrackN: *trackN, Samples: *samples,
		Rounds: *rounds, Repeats: *repeats, Seed: *seed, Halo: *halo,
		Liars:      *liars,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	if robustMode != fit.RobustOff {
		report.Robust = robustMode.String()
	}
	var ccfg fingerprint.CoarseConfig
	var cache *fingerprint.Cache
	if *coarse || *coarseK > 0 || *coarseG > 0 {
		ccfg = fingerprint.CoarseConfig{Enabled: true, TopK: *coarseK, GridRes: *coarseG}.WithDefaults()
		report.CoarseTopK = ccfg.TopK
		report.CoarseGrid = ccfg.GridRes
		// Every repeat and every (grid, workers) pair rebuilds identical
		// fingerprint databases; one shared cache builds each exactly once.
		cache = fingerprint.NewCache(0)
	}

	fmt.Printf("%6s %8s %10s %10s %10s %10s %9s\n",
		"shards", "workers", "steps", "p50 ms", "p95 ms", "mean ms", "speedup")
	for _, g := range grids {
		grid := g
		grid.Halo = *halo
		// The coordinator writes one tile-scoped span per stepped tile per
		// round, and the tile trackers add their own plain spans (Tile -1):
		// size the ring to hold both for a whole entry.
		spanCap := *repeats * *rounds * grid.Tiles() * 2
		var serialMean float64
		var refMean geom.Point // final first-user estimate at the first worker count
		for wi, workers := range workerCounts {
			trace := obs.NewTrace(spanCap + 16)
			durations := make([]float64, 0, *rounds**repeats)
			var last geom.Point
			var imbMax int
			var imbMean float64
			start := time.Now()
			for rep := 0; rep < *repeats; rep++ {
				field, err := sniffer.NewShardedTracker(*users, core.TrackerConfig{
					N: *trackN, M: 10, VMax: 5, Workers: workers,
					Search: fit.Options{Robust: fit.RobustConfig{Mode: robustMode}},
					Coarse: ccfg, DBCache: cache,
					Shards: grid, InitialPositions: starts, Trace: trace,
				}, *seed+101)
				if err != nil {
					return err
				}
				for r, o := range observations {
					t0 := time.Now()
					res, err := field.Step(float64(r+1), o)
					if err != nil {
						return err
					}
					durations = append(durations, time.Since(t0).Seconds()*1e3)
					last = res.Estimates[0].Mean
				}
				imbMax, imbMean = field.Imbalance()
			}
			total := time.Since(start).Seconds()

			// Cheap cross-check of the worker-invariance contract on top of
			// the unit tests: within one grid, the final estimate must not
			// depend on the worker count.
			if wi == 0 {
				refMean = last
			} else if last != refMean {
				return fmt.Errorf("latency: shards=%s workers=%d diverged from workers=%d output",
					grid, workers, workerCounts[0])
			}

			sort.Float64s(durations)
			entry := latencyEntry{
				Shards:        grid.String(),
				Rows:          grid.Rows,
				Cols:          grid.Cols,
				Tiles:         grid.Tiles(),
				Workers:       workers,
				Steps:         len(durations),
				P50ms:         stats.Percentile(durations, 50),
				P95ms:         stats.Percentile(durations, 95),
				MeanMs:        stats.Mean(durations),
				TotalS:        total,
				ImbalanceMax:  imbMax,
				ImbalanceMean: imbMean,
				PerShard:      perShardLatency(trace.Snapshot(), grid.Tiles()),
			}
			if wi == 0 {
				serialMean = entry.MeanMs
			}
			if entry.MeanMs > 0 {
				entry.Speedup = serialMean / entry.MeanMs
				entry.UsersPerSec = float64(*users) * 1e3 / entry.MeanMs
			}
			report.Entries = append(report.Entries, entry)
			fmt.Printf("%6s %8d %10d %10.2f %10.2f %10.2f %8.2fx\n",
				entry.Shards, workers, entry.Steps, entry.P50ms, entry.P95ms, entry.MeanMs, entry.Speedup)
			if grid.Tiles() > 1 {
				for _, sl := range entry.PerShard {
					fmt.Printf("%6s   tile %-2d %8d  queue p50/p95 %7.2f/%7.2f ms  step p50/p95 %7.2f/%7.2f ms\n",
						"", sl.Tile, sl.Steps, sl.QueueP50ms, sl.QueueP95ms, sl.StepP50ms, sl.StepP95ms)
				}
			}
		}
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote latency report to %s\n", *jsonOut)
	}
	return nil
}

// perShardLatency reduces the coordinator's tile-scoped spans (Span.Tile >=
// 0; the tile trackers' own spans carry Tile -1 and are skipped) into one
// queue/step distribution per tile.
func perShardLatency(spans []obs.Span, tiles int) []shardLatency {
	queue := make([][]float64, tiles)
	step := make([][]float64, tiles)
	for _, s := range spans {
		if s.Tile < 0 || s.Tile >= tiles {
			continue
		}
		queue[s.Tile] = append(queue[s.Tile], float64(s.QueueNs)/1e6)
		step[s.Tile] = append(step[s.Tile], float64(s.WallNs)/1e6)
	}
	out := make([]shardLatency, 0, tiles)
	for tile := 0; tile < tiles; tile++ {
		if len(step[tile]) == 0 {
			continue
		}
		sort.Float64s(queue[tile])
		sort.Float64s(step[tile])
		out = append(out, shardLatency{
			Tile:       tile,
			Steps:      len(step[tile]),
			QueueP50ms: stats.Percentile(queue[tile], 50),
			QueueP95ms: stats.Percentile(queue[tile], 95),
			StepP50ms:  stats.Percentile(step[tile], 50),
			StepP95ms:  stats.Percentile(step[tile], 95),
		})
	}
	return out
}

// parseWorkerList parses "1,2,4,8" into worker counts.
func parseWorkerList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("latency: bad -workers entry %q", p)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("latency: empty -workers list")
	}
	return out, nil
}
