package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fluxtrack/internal/exp"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list failed: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nope"}); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag must error")
	}
}

func TestRenderCharts(t *testing.T) {
	table := exp.Table{
		ID:      "demo",
		Columns: []string{"cell", "err", "note"},
		Rows: [][]string{
			{"a", "1.5", "x"},
			{"b", "3.0", "y"},
		},
	}
	out := renderCharts(table)
	if !strings.Contains(out, "err:") {
		t.Errorf("numeric column not charted: %q", out)
	}
	if strings.Contains(out, "note:") {
		t.Errorf("non-numeric column charted: %q", out)
	}
	if !strings.Contains(out, "####") {
		t.Errorf("no bars rendered: %q", out)
	}
	// Percent-suffixed labels in data cells parse as numbers.
	pct := exp.Table{
		Columns: []string{"pct", "v"},
		Rows:    [][]string{{"40%", "10%"}, {"20%", "20%"}},
	}
	if out := renderCharts(pct); !strings.Contains(out, "v:") {
		t.Errorf("percent cells not parsed: %q", out)
	}
	// Degenerate tables chart nothing.
	if out := renderCharts(exp.Table{Columns: []string{"only"}}); out != "" {
		t.Errorf("single-column table charted: %q", out)
	}
}

func TestRunSingleQuickExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment skipped in -short mode")
	}
	if err := run([]string{"-quick", "-trials", "1", "-exp", "ablation-search"}); err != nil {
		t.Fatalf("quick single experiment failed: %v", err)
	}
}

func TestRunJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{
		"-quick", "-trials", "1", "-workers", "2",
		"-exp", "ablation-smoothing", "-json", out,
	}); err != nil {
		t.Fatalf("json report run failed: %v", err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Config != "quick" || report.Trials != 1 || report.Workers != 2 {
		t.Errorf("report config fields wrong: %+v", report)
	}
	if len(report.Experiments) != 1 || report.Experiments[0].ID != "ablation-smoothing" {
		t.Fatalf("report experiments wrong: %+v", report.Experiments)
	}
	e := report.Experiments[0]
	if len(e.Rows) == 0 || len(e.Columns) == 0 || e.Seconds < 0 {
		t.Errorf("experiment entry incomplete: %+v", e)
	}
	if report.TotalSeconds < e.Seconds {
		t.Errorf("total %v < experiment time %v", report.TotalSeconds, e.Seconds)
	}
}
