package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fluxtrack/internal/exp"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list failed: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nope"}); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag must error")
	}
}

func TestRenderCharts(t *testing.T) {
	table := exp.Table{
		ID:      "demo",
		Columns: []string{"cell", "err", "note"},
		Rows: [][]string{
			{"a", "1.5", "x"},
			{"b", "3.0", "y"},
		},
	}
	out := renderCharts(table)
	if !strings.Contains(out, "err:") {
		t.Errorf("numeric column not charted: %q", out)
	}
	if strings.Contains(out, "note:") {
		t.Errorf("non-numeric column charted: %q", out)
	}
	if !strings.Contains(out, "####") {
		t.Errorf("no bars rendered: %q", out)
	}
	// Percent-suffixed labels in data cells parse as numbers.
	pct := exp.Table{
		Columns: []string{"pct", "v"},
		Rows:    [][]string{{"40%", "10%"}, {"20%", "20%"}},
	}
	if out := renderCharts(pct); !strings.Contains(out, "v:") {
		t.Errorf("percent cells not parsed: %q", out)
	}
	// Degenerate tables chart nothing.
	if out := renderCharts(exp.Table{Columns: []string{"only"}}); out != "" {
		t.Errorf("single-column table charted: %q", out)
	}
}

func TestRunSingleQuickExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment skipped in -short mode")
	}
	if err := run([]string{"-quick", "-trials", "1", "-exp", "ablation-search"}); err != nil {
		t.Fatalf("quick single experiment failed: %v", err)
	}
}

func TestRunJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{
		"-quick", "-trials", "1", "-workers", "2",
		"-exp", "ablation-smoothing", "-json", out,
	}); err != nil {
		t.Fatalf("json report run failed: %v", err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Config != "quick" || report.Trials != 1 || report.Workers != 2 {
		t.Errorf("report config fields wrong: %+v", report)
	}
	if len(report.Experiments) != 1 || report.Experiments[0].ID != "ablation-smoothing" {
		t.Fatalf("report experiments wrong: %+v", report.Experiments)
	}
	e := report.Experiments[0]
	if len(e.Rows) == 0 || len(e.Columns) == 0 || e.Seconds < 0 {
		t.Errorf("experiment entry incomplete: %+v", e)
	}
	if report.TotalSeconds < e.Seconds {
		t.Errorf("total %v < experiment time %v", report.TotalSeconds, e.Seconds)
	}
}

func writeReport(t *testing.T, path string, r benchReport) {
	t.Helper()
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompareReports(t *testing.T) {
	oldRep := benchReport{
		Config: "quick", Trials: 1, Workers: 1,
		Experiments: []benchExperiment{
			{ID: "fig5", Seconds: 10},
			{ID: "fig7", Seconds: 20},
			{ID: "gone", Seconds: 5},
		},
	}
	newRep := benchReport{
		Config: "quick", Trials: 1, Workers: 1,
		Experiments: []benchExperiment{
			{ID: "fig5", Seconds: 2},
			{ID: "fig7", Seconds: 4},
			{ID: "fresh", Seconds: 1},
		},
	}
	out, oldTotal, newTotal := compareReports(oldRep, newRep, "a.json", "b.json")
	for _, want := range []string{
		"fig5", "5.00x", "fig7", "total (matched)",
		"gone", "(old only)", "fresh", "(new only)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "warning") {
		t.Errorf("matching configs must not warn:\n%s", out)
	}
	// Matched totals exclude the one-sided experiments.
	if oldTotal != 30 || newTotal != 6 {
		t.Errorf("matched totals = %v, %v, want 30, 6", oldTotal, newTotal)
	}
	// Mismatched configurations must warn.
	newRep.Trials = 9
	if out, _, _ := compareReports(oldRep, newRep, "a", "b"); !strings.Contains(out, "warning") {
		t.Errorf("mismatched configs must warn:\n%s", out)
	}
}

func TestRunCompareSubcommand(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	rep := benchReport{Config: "quick", Experiments: []benchExperiment{{ID: "fig5", Seconds: 3}}}
	writeReport(t, oldPath, rep)
	rep.Experiments[0].Seconds = 1
	writeReport(t, newPath, rep)
	if err := run([]string{"compare", oldPath, newPath}); err != nil {
		t.Fatalf("compare subcommand failed: %v", err)
	}
	if err := run([]string{"compare", oldPath}); err == nil {
		t.Error("compare with one report must error")
	}
	if err := run([]string{"compare", oldPath, filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("compare with a missing report must error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"compare", oldPath, bad}); err == nil {
		t.Error("compare with malformed JSON must error")
	}
	// -maxregress: the new run (1s vs 3s old) is a speedup, so generous and
	// tight limits both pass; swapping the operands makes a 3x slowdown that
	// must fail a 2x limit but pass a 4x one.
	if err := run([]string{"compare", "-maxregress", "1.5", oldPath, newPath}); err != nil {
		t.Errorf("faster run must pass -maxregress: %v", err)
	}
	if err := run([]string{"compare", "-maxregress", "2", newPath, oldPath}); err == nil {
		t.Error("3x slowdown must fail -maxregress 2")
	}
	if err := run([]string{"compare", "-maxregress", "4", newPath, oldPath}); err != nil {
		t.Errorf("3x slowdown must pass -maxregress 4: %v", err)
	}
}

func TestRunLatencySubcommand(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end latency run skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "latency.json")
	if err := run([]string{
		"latency", "-users", "2", "-trackn", "60", "-samples", "40",
		"-rounds", "2", "-repeats", "1", "-workers", "1,2",
		"-coarse", "-coarsek", "16", "-coarsegrid", "8", "-json", out,
	}); err != nil {
		t.Fatalf("latency subcommand failed: %v", err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report latencyReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("latency report is not valid JSON: %v", err)
	}
	if report.CoarseTopK != 16 || report.CoarseGrid != 8 {
		t.Errorf("coarse fields not recorded: %+v", report)
	}
	if len(report.Entries) != 2 || report.Entries[0].Steps != 2 {
		t.Errorf("latency entries wrong: %+v", report.Entries)
	}
	if err := run([]string{"latency", "-workers", "1,x"}); err == nil {
		t.Error("bad -workers list must error")
	}
}

func TestRunWithProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end experiment skipped in -short mode")
	}
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	if err := run([]string{
		"-quick", "-trials", "1", "-exp", "ablation-search",
		"-cpuprofile", cpu, "-memprofile", mem,
	}); err != nil {
		t.Fatalf("profiled run failed: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestRunShardBenchSubcommand(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end shard sweep skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "shard.json")
	if err := run([]string{
		"shardbench", "-users", "3,6", "-trackn", "60", "-samples", "40",
		"-rounds", "2", "-repeats", "1", "-grids", "1x1,2x2",
		"-skew", "0.5", "-activeset", "4", "-json", out,
	}); err != nil {
		t.Fatalf("shardbench subcommand failed: %v", err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report shardThroughputReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("shard report is not valid JSON: %v", err)
	}
	if report.Sched != "lpt" || report.Skew != 0.5 {
		t.Errorf("report header wrong: %+v", report)
	}
	if len(report.Entries) != 4 { // 2 populations x 2 grids x 1 worker count
		t.Fatalf("got %d entries, want 4: %+v", len(report.Entries), report.Entries)
	}
	for _, e := range report.Entries {
		if e.Steps != 2 || e.ImbalanceMean <= 0 || e.Speedup <= 0 {
			t.Errorf("entry malformed: %+v", e)
		}
	}
	// The first grid of each (users, workers) pair anchors its own speedup.
	if report.Entries[0].Speedup != 1 || report.Entries[2].Speedup != 1 {
		t.Errorf("first-grid speedup anchors wrong: %+v", report.Entries)
	}
	// CI greps this key out of the raw JSON; keep it stable.
	if !strings.Contains(string(buf), `"speedup_vs_first"`) {
		t.Error("report lost the speedup_vs_first key")
	}
	if err := run([]string{"shardbench", "-users", "0"}); err == nil {
		t.Error("non-positive -users must error")
	}
	if err := run([]string{"shardbench", "-skew", "1.5"}); err == nil {
		t.Error("out-of-range -skew must error")
	}
}

func TestRunShardBenchNaiveMatchesDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end shard sweep skipped in -short mode")
	}
	// -naive changes scheduling and result shape only; both modes must do the
	// same tracking work on the same stream (the shard tests prove the output
	// is byte-identical — here we just check the sweep accepts the flag and
	// reports the mode).
	out := filepath.Join(t.TempDir(), "naive.json")
	if err := run([]string{
		"shardbench", "-users", "4", "-trackn", "60", "-samples", "40",
		"-rounds", "2", "-repeats", "1", "-grids", "2x2", "-naive",
		"-metrics", "-json", out,
	}); err != nil {
		t.Fatalf("naive shardbench failed: %v", err)
	}
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report shardThroughputReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatal(err)
	}
	if report.Sched != "naive" {
		t.Errorf("sched = %q, want naive", report.Sched)
	}
}
