package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"fluxtrack/internal/mobility"
	"fluxtrack/internal/obs"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/serve"
	"fluxtrack/internal/traffic"
)

// serveReport is the schema written by `fluxbench serve -json`: the
// tracker-step latency distribution of the resident service (internal/serve)
// at each tenant count, driven over loopback HTTP, against optional p50/p95
// step SLOs. A violated SLO makes the command exit non-zero — the CI shape
// of a latency regression gate.
type serveReport struct {
	Users      int     `json:"users"`
	TrackN     int     `json:"track_n"`
	Sensors    int     `json:"sensors"`
	Rounds     int     `json:"rounds"`
	Seed       uint64  `json:"seed"`
	Queue      int     `json:"queue"`
	SLOP50ms   float64 `json:"slo_p50_ms,omitempty"`
	SLOP95ms   float64 `json:"slo_p95_ms,omitempty"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	GoVersion  string  `json:"go_version"`

	Entries []serveEntry `json:"entries"`
}

type serveEntry struct {
	Tenants int `json:"tenants"`
	// Steps is the total tracker rounds stepped across all tenants.
	Steps      uint64  `json:"steps"`
	StepP50ms  float64 `json:"step_p50_ms"`
	StepP95ms  float64 `json:"step_p95_ms"`
	StepMeanMs float64 `json:"step_mean_ms"`
	HTTPP50ms  float64 `json:"http_p50_ms"`
	HTTPP95ms  float64 `json:"http_p95_ms"`
	// Rejected counts 429 backpressure rejections (each retried by the
	// driver, so every round still lands exactly once).
	Rejected uint64  `json:"rejected"`
	TotalS   float64 `json:"total_seconds"`
	SLOPass  bool    `json:"slo_pass"`
}

// runServe benchmarks the resident service end to end: a fresh server and
// registry per tenant count, T tenants streaming one precomputed
// observation set concurrently over loopback HTTP, step latency read from
// the serve.step.ms histogram.
func runServe(args []string) error {
	fs := flag.NewFlagSet("fluxbench serve", flag.ContinueOnError)
	var (
		users   = fs.Int("users", 20, "tracked users per tenant")
		trackN  = fs.Int("trackn", 200, "SMC prediction samples per user")
		trackM  = fs.Int("trackm", 10, "representatives kept per user")
		sensors = fs.Int("sensors", 90, "monitored sensor count")
		rounds  = fs.Int("rounds", 12, "observation rounds per tenant")
		seed    = fs.Uint64("seed", 1, "base seed")
		queue   = fs.Int("queue", 16, "per-tenant ingestion queue depth")
		tenants = fs.String("tenants", "1,2,4", "comma-separated tenant counts to sweep")
		shards  = fs.String("shards", "", "per-tenant tile grid RxC (empty = plain tracker)")
		halo    = fs.Float64("halo", 2, "tile halo width when -shards is set")
		sloP50  = fs.Float64("slo-p50", 0, "fail if any entry's step p50 exceeds this (ms, 0 = no SLO)")
		sloP95  = fs.Float64("slo-p95", 0, "fail if any entry's step p95 exceeds this (ms, 0 = no SLO)")
		jsonOut = fs.String("json", "", "write the report as JSON to this file (- for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tenantCounts, err := parseWorkerList(*tenants)
	if err != nil {
		return err
	}

	report := serveReport{
		Users: *users, TrackN: *trackN, Rounds: *rounds, Seed: *seed, Queue: *queue,
		SLOP50ms: *sloP50, SLOP95ms: *sloP95,
		GOMAXPROCS: runtime.GOMAXPROCS(0), GoVersion: runtime.Version(),
	}

	violated := false
	for _, tc := range tenantCounts {
		entry, sensorsSeen, err := serveTrial(serveTrialConfig{
			tenants: tc, users: *users, trackN: *trackN, trackM: *trackM,
			sensors: *sensors, rounds: *rounds, seed: *seed, queue: *queue,
			shards: *shards, halo: *halo,
		})
		if err != nil {
			return err
		}
		report.Sensors = sensorsSeen
		entry.SLOPass = (*sloP50 <= 0 || entry.StepP50ms <= *sloP50) &&
			(*sloP95 <= 0 || entry.StepP95ms <= *sloP95)
		if !entry.SLOPass {
			violated = true
		}
		report.Entries = append(report.Entries, entry)
		fmt.Printf("tenants=%-3d steps=%-5d step p50=%.3gms p95=%.3gms mean=%.3gms  http p50=%.3gms  429s=%d  %.2fs%s\n",
			entry.Tenants, entry.Steps, entry.StepP50ms, entry.StepP95ms, entry.StepMeanMs,
			entry.HTTPP50ms, entry.Rejected, entry.TotalS, sloTag(entry.SLOPass, *sloP50, *sloP95))
	}

	if *jsonOut != "" {
		if err := writeServeReport(report, *jsonOut); err != nil {
			return err
		}
	}
	if violated {
		return fmt.Errorf("step latency SLO violated (p50 <= %gms, p95 <= %gms)", *sloP50, *sloP95)
	}
	return nil
}

func sloTag(pass bool, p50, p95 float64) string {
	if p50 <= 0 && p95 <= 0 {
		return ""
	}
	if pass {
		return "  [slo ok]"
	}
	return "  [SLO VIOLATED]"
}

func writeServeReport(report serveReport, path string) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

type serveTrialConfig struct {
	tenants, users, trackN, trackM, sensors, rounds, queue int
	seed                                                   uint64
	shards                                                 string
	halo                                                   float64
}

func serveTrial(cfg serveTrialConfig) (serveEntry, int, error) {
	metrics := obs.New(0)
	srv, err := serve.New(serve.Config{
		Seed:            cfg.seed,
		SnifferFraction: float64(cfg.sensors) / 900,
		DefaultQueue:    cfg.queue,
		MaxTenants:      cfg.tenants,
		Metrics:         metrics,
	})
	if err != nil {
		return serveEntry{}, 0, err
	}
	defer srv.Close()

	// Precompute one observation stream against the server's vantage; every
	// tenant replays it, so the steady-state load is tenant-count × stream.
	stream, err := serveStream(srv, cfg.users, cfg.rounds, cfg.seed+1)
	if err != nil {
		return serveEntry{}, 0, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return serveEntry{}, 0, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	for i := 0; i < cfg.tenants; i++ {
		body, _ := json.Marshal(serve.TenantConfig{
			Users: cfg.users, Seed: cfg.seed + uint64(i),
			Samples: cfg.trackN, TrackM: cfg.trackM,
			Shards: cfg.shards, Halo: cfg.halo, Queue: cfg.queue,
		})
		resp, err := http.Post(fmt.Sprintf("%s/v1/tenant/t%d", base, i), "application/json", bytes.NewReader(body))
		if err != nil {
			return serveEntry{}, 0, err
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return serveEntry{}, 0, fmt.Errorf("create tenant %d: %d %s", i, resp.StatusCode, msg)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.tenants)
	for i := 0; i < cfg.tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- driveTenant(base, fmt.Sprintf("t%d", i), stream, cfg.rounds)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return serveEntry{}, 0, err
		}
	}
	total := time.Since(start).Seconds()

	entry := serveEntry{Tenants: cfg.tenants, TotalS: total}
	snap := metrics.Snapshot()
	for _, h := range snap.Histograms {
		switch h.Name {
		case "serve.step.ms":
			entry.StepP50ms = h.Quantile(0.50)
			entry.StepP95ms = h.Quantile(0.95)
			entry.StepMeanMs = h.Mean()
		case "serve.http.ms":
			entry.HTTPP50ms = h.Quantile(0.50)
			entry.HTTPP95ms = h.Quantile(0.95)
		}
	}
	for _, c := range snap.Counters {
		switch c.Name {
		case "serve.rounds.stepped":
			entry.Steps = c.Value
		case "serve.observe.rejected":
			entry.Rejected = c.Value
		}
	}
	return entry, srv.Sensors(), nil
}

// serveStream synthesizes one multi-round observation set against the
// server's sniffer: random-walking users, noiseless measurement.
func serveStream(srv *serve.Server, users, rounds int, seed uint64) ([]serve.Observation, error) {
	src := rng.New(seed)
	sc := srv.Scenario()
	trajs := make([]mobility.Trajectory, users)
	for i := range trajs {
		w, err := mobility.NewRandomWalk(sc.Field(), src.InRect(sc.Field()), 3, rounds+1, src)
		if err != nil {
			return nil, err
		}
		trajs[i] = w
	}
	stretches := make([]float64, users)
	for i := range stretches {
		stretches[i] = src.Uniform(1, 3)
	}
	var out []serve.Observation
	for r := 0; r < rounds; r++ {
		t := float64(r + 1)
		us := make([]traffic.User, users)
		for i := range us {
			us[i] = traffic.User{Pos: sc.Field().Clamp(trajs[i].At(t)), Stretch: stretches[i], Active: true}
		}
		readings, err := srv.Sniffer().Observe(us, 0, src)
		if err != nil {
			return nil, err
		}
		out = append(out, serve.Observation{T: t, Readings: readings})
	}
	return out, nil
}

// driveTenant streams every round into one tenant (retrying 429s) and
// blocks until the tenant has stepped them all.
func driveTenant(base, id string, stream []serve.Observation, rounds int) error {
	client := &http.Client{Timeout: 30 * time.Second}
	for _, o := range stream {
		body, err := json.Marshal(o)
		if err != nil {
			return err
		}
		for {
			resp, err := client.Post(base+"/v1/tenant/"+id+"/observe", "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			msg, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted {
				break
			}
			if resp.StatusCode != http.StatusTooManyRequests {
				return fmt.Errorf("observe %s: %d %s", id, resp.StatusCode, msg)
			}
			time.Sleep(time.Millisecond)
		}
	}
	deadline := time.Now().Add(5 * time.Minute)
	for {
		resp, err := client.Get(base + "/v1/tenant/" + id + "/estimate")
		if err != nil {
			return err
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("estimate %s: %d %s", id, resp.StatusCode, msg)
		}
		var est serve.EstimateResponse
		if err := json.Unmarshal(msg, &est); err != nil {
			return err
		}
		if est.StepError != "" {
			return fmt.Errorf("tenant %s: step error %s", id, est.StepError)
		}
		if est.Rounds >= rounds && est.Pending == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("tenant %s stuck at %d/%d rounds", id, est.Rounds, rounds)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
