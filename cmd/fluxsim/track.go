package main

import (
	"fmt"

	"fluxtrack/internal/core"
	"fluxtrack/internal/fingerprint"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mobility"
	"fluxtrack/internal/obs"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/shard"
	"fluxtrack/internal/traffic"
)

// runShardDemo tracks the users through a tiled multi-shard field
// (internal/shard), printing the tile layout, each round's per-user estimate
// with its owning tile, and every cross-tile handoff as it happens. The
// users walk on speed-bounded random walks from their sniffed positions, so
// handoffs occur naturally whenever a walk crosses a seam.
func runShardDemo(sc *core.Scenario, sniffer *core.Sniffer, userSet []traffic.User,
	grid shard.Grid, rounds, trackN, workers int, ccfg fingerprint.CoarseConfig,
	met *obs.Metrics, src *rng.Source) error {
	k := len(userSet)
	walks := make([]mobility.Trajectory, k)
	starts := make([]geom.Point, k)
	stretches := make([]float64, k)
	for i, u := range userSet {
		w, err := mobility.NewRandomWalk(sc.Field(), u.Pos, 2, rounds+1, src)
		if err != nil {
			return err
		}
		walks[i] = w
		starts[i] = u.Pos
		stretches[i] = u.Stretch
	}
	field, err := sniffer.NewShardedTracker(k, core.TrackerConfig{
		N: trackN, M: 10, VMax: 5, Workers: workers, Coarse: ccfg,
		Shards: grid, InitialPositions: starts, Metrics: met,
	}, src.Uint64())
	if err != nil {
		return err
	}

	fmt.Printf("\nfield sharding: %s tiles (halo %g), tracking %d users for %d rounds\n",
		grid, grid.Halo, k, rounds)
	for i := 0; i < field.NumTiles(); i++ {
		ti := field.Tile(i)
		fmt.Printf("  tile %d: rect (%.1f,%.1f)-(%.1f,%.1f)  bounds (%.1f,%.1f)-(%.1f,%.1f)  %d sensors  sink node %d\n",
			ti.Index, ti.Rect.Min.X, ti.Rect.Min.Y, ti.Rect.Max.X, ti.Rect.Max.Y,
			ti.Bounds.Min.X, ti.Bounds.Min.Y, ti.Bounds.Max.X, ti.Bounds.Max.Y,
			ti.Sensors, ti.Sink)
	}

	owners := make([]int, k)
	for j := range owners {
		owners[j] = field.Owner(j)
	}
	for round := 1; round <= rounds; round++ {
		t := float64(round)
		truths := make([]traffic.User, k)
		for i, w := range walks {
			truths[i] = traffic.User{Pos: sc.Field().Clamp(w.At(t)), Stretch: stretches[i], Active: true}
		}
		o, err := sniffer.Observe(truths, 0, src)
		if err != nil {
			return err
		}
		res, err := field.Step(t, o)
		if err != nil {
			return err
		}
		fmt.Printf("  round %d:\n", round)
		for j, est := range res.Estimates {
			fmt.Printf("    user %d: est (%5.1f,%5.1f)  true (%5.1f,%5.1f)  err %5.2f  tile %d\n",
				j+1, est.Mean.X, est.Mean.Y, truths[j].Pos.X, truths[j].Pos.Y,
				est.Mean.Dist(truths[j].Pos), field.Owner(j))
		}
		for j := range owners {
			if now := field.Owner(j); now != owners[j] {
				fmt.Printf("    handoff: user %d migrated tile %d -> tile %d\n", j+1, owners[j], now)
				owners[j] = now
			}
		}
	}
	solves, _ := field.WorkTotals()
	fmt.Printf("  total: %d rounds, %d handoffs, %d NNLS solves across %d tiles\n",
		field.Steps(), field.Handoffs(), solves, field.NumTiles())
	return nil
}
