// Command fluxsim runs a single fingerprinting scenario and renders the
// network flux as an ASCII heat map (the qualitative view of the paper's
// Figure 1), alongside the attack's localization output.
//
// Usage:
//
//	fluxsim -users 3 -pct 10 -seed 7
//	fluxsim -users 2 -deploy random -noise 0.1
//	fluxsim -users 3 -workers 4   # parallel candidate scoring, same output
//	fluxsim -users 2 -dropout 0.2 -loss 0.1   # localize from a degraded sniff
//	fluxsim -users 2 -liars 0.1               # 10% of sniffed sensors lie
//	fluxsim -users 2 -liars 0.1 -robust huber # same attack, robust-fit defense
//	fluxsim -users 3 -metrics     # print the run's work counters at exit
//	fluxsim -users 3 -coarse -coarsek 64      # coarse-to-fine candidate shortlist
//	fluxsim -users 4 -shards 2x2 -halo 2      # tiled tracking demo with handoff log
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fluxtrack/internal/core"
	"fluxtrack/internal/deploy"
	"fluxtrack/internal/exp"
	"fluxtrack/internal/fault"
	"fluxtrack/internal/fingerprint"
	"fluxtrack/internal/fit"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/obs"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/shard"
	"fluxtrack/internal/traffic"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fluxsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fluxsim", flag.ContinueOnError)
	var (
		users   = fs.Int("users", 3, "number of mobile users")
		pct     = fs.Float64("pct", 10, "percentage of nodes the adversary sniffs")
		nodes   = fs.Int("nodes", 900, "sensor node count")
		deployK = fs.String("deploy", "grid", "deployment: grid or random")
		noise   = fs.Float64("noise", 0, "multiplicative measurement noise sigma")
		seed    = fs.Uint64("seed", 1, "random seed")
		samples = fs.Int("samples", 2000, "candidate positions per user")
		workers = fs.Int("workers", 1, "NLS search worker count (0 = one per CPU)")
		dropout = fs.Float64("dropout", 0, "fraction of sniffed sensors that fail permanently")
		loss    = fs.Float64("loss", 0, "probability each report is lost this round")
		stuck   = fs.Float64("stuck", 0, "fraction of sniffed sensors with frozen readings")
		liars   = fs.Float64("liars", 0, "fraction of Byzantine sensors (half inflate, a quarter deflate, a quarter replay)")
		robust  = fs.String("robust", "", "robust-fit defense: off, huber, loso, or both")
		metrics = fs.Bool("metrics", false, "collect work counters (traffic, fault, NLS search) and print the snapshot at exit")
		coarse  = fs.Bool("coarse", false, "shortlist candidates through the coarse-to-fine fingerprint search")
		coarseK = fs.Int("coarsek", 0, "coarse shortlist size per user (0 = default 64; implies -coarse)")
		coarseG = fs.Int("coarsegrid", 0, "fingerprint grid resolution per axis (0 = default 24; implies -coarse)")
		shards  = fs.String("shards", "", "also run the tiled tracking demo over a RxC tile grid (internal/shard), e.g. 2x2")
		halo    = fs.Float64("halo", 0, "tile halo width for -shards: sensors within this margin report to both neighbors")
		rounds  = fs.Int("rounds", 8, "tracking rounds for the -shards demo")
		trackN  = fs.Int("trackn", 1000, "SMC prediction samples per user per round in the -shards demo")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *users <= 0 {
		return fmt.Errorf("need at least one user, got %d", *users)
	}

	kind := deploy.PerturbedGrid
	switch *deployK {
	case "grid":
	case "random":
		kind = deploy.UniformRandom
	default:
		return fmt.Errorf("unknown deployment %q (want grid or random)", *deployK)
	}

	src := rng.New(*seed)
	sc, err := core.NewScenario(core.ScenarioConfig{Nodes: *nodes, Deployment: kind}, src)
	if err != nil {
		return err
	}
	var met *obs.Metrics
	if *metrics {
		met = obs.New(0)
		sc.SetMetrics(met)
	}
	userSet := traffic.RandomUsers(sc.Field(), *users, 1, 3, src)
	flux, err := sc.GroundFlux(userSet)
	if err != nil {
		return err
	}

	fmt.Printf("scenario: %d nodes (%s), avg degree %.1f, %d users, sniffing %.0f%% of nodes\n\n",
		sc.Network().Len(), kind, sc.Network().AvgDegree(), *users, *pct)
	fmt.Println("network flux pattern (paper Fig 1b; X marks true user positions):")
	fmt.Print(renderFlux(sc, flux, userSet))

	sniffer, err := sc.NewSniffer(*pct/100, src)
	if err != nil {
		return err
	}
	faultCfg := fault.Config{DropoutFrac: *dropout, LossProb: *loss, StuckFrac: *stuck}
	if err := faultCfg.Validate(); err != nil {
		return err
	}
	robustMode, err := fit.ParseRobustMode(*robust)
	if err != nil {
		return err
	}
	opts := fit.Options{Samples: *samples, TopM: 10, Workers: *workers, Metrics: met,
		Robust: fit.RobustConfig{Mode: robustMode}}
	var ccfg fingerprint.CoarseConfig
	if *coarse || *coarseK > 0 || *coarseG > 0 {
		ccfg = fingerprint.CoarseConfig{Enabled: true, TopK: *coarseK, GridRes: *coarseG}.WithDefaults()
		db, err := sniffer.NewFingerprintDB(ccfg, *workers, met)
		if err != nil {
			return err
		}
		opts.Coarse = &fit.Coarse{DB: db, TopK: ccfg.TopK}
		fmt.Printf("\ncoarse search: %d fingerprint cells (grid %d), shortlist %d of %d candidates per user\n",
			db.Cells(), db.Res(), ccfg.TopK, *samples)
	}
	readings, err := sniffer.Observe(userSet, *noise, src)
	if err != nil {
		return err
	}
	if *liars > 0 {
		advCfg := exp.LiarMix(*liars)
		adv, err := sniffer.NewAdversary(advCfg, src.Uint64())
		if err != nil {
			return err
		}
		adv.SetMetrics(met)
		readings, err = adv.Apply(readings)
		if err != nil {
			return err
		}
		fmt.Printf("\nbyzantine: %d of %d sniffed sensors compromised (defense: %s)\n",
			adv.NumCompromised(), len(readings), robustMode)
	}
	var res fit.Result
	if faultCfg.Enabled() {
		inj, err := sniffer.NewFaultInjector(faultCfg, src.Uint64())
		if err != nil {
			return err
		}
		inj.SetMetrics(met)
		deg, err := inj.Apply(readings)
		if err != nil {
			return err
		}
		fmt.Printf("\ndegraded sniff: %d of %d reports delivered\n", deg.Delivered(), inj.NumSensors())
		res, err = sniffer.LocalizeMasked(deg, *users, opts, src)
		if err != nil {
			return err
		}
	} else {
		prob, err := sniffer.Problem(readings)
		if err != nil {
			return err
		}
		res, err = fit.Localize(prob, *users, opts, src)
		if err != nil {
			return err
		}
	}

	fmt.Println("\nNLS localization from sparse flux samples:")
	best := res.Best[0]
	for j, pos := range best.Positions {
		fmt.Printf("  estimate %d: %v  (fitted stretch factor %.2f)\n", j+1, pos, best.Stretches[j])
	}
	fmt.Println("  true positions:")
	for j, u := range userSet {
		fmt.Printf("  user %d: %v  (stretch %.2f)\n", j+1, u.Pos, u.Stretch)
	}
	errs := matchErrors(best.Positions, userSet)
	var mean float64
	for _, e := range errs {
		mean += e
	}
	mean /= float64(len(errs))
	fmt.Printf("  mean matched error: %.2f (%.1f%% of field diameter)\n",
		mean, 100*mean/sc.Field().Diameter())
	if *shards != "" {
		grid, err := shard.ParseGrid(*shards)
		if err != nil {
			return err
		}
		grid.Halo = *halo
		if err := runShardDemo(sc, sniffer, userSet, grid, *rounds, *trackN, *workers, ccfg, met, src); err != nil {
			return err
		}
	}
	if met != nil {
		fmt.Println("\nmetrics:")
		fmt.Print(met.Snapshot().Format())
	}
	return nil
}

// renderFlux draws the per-node flux on a character grid, brighter glyph =
// more traffic.
func renderFlux(sc *core.Scenario, flux []float64, users []traffic.User) string {
	const w, h = 60, 30
	glyphs := []byte(" .:-=+*#%@")
	grid := make([][]float64, h)
	counts := make([][]int, h)
	for y := range grid {
		grid[y] = make([]float64, w)
		counts[y] = make([]int, w)
	}
	field := sc.Field()
	var maxCell float64
	net := sc.Network()
	for i := 0; i < net.Len(); i++ {
		p := net.Pos(i)
		x := int(float64(w) * (p.X - field.Min.X) / field.Width())
		y := int(float64(h) * (p.Y - field.Min.Y) / field.Height())
		if x >= w {
			x = w - 1
		}
		if y >= h {
			y = h - 1
		}
		grid[y][x] += flux[i]
		counts[y][x]++
	}
	for y := range grid {
		for x := range grid[y] {
			if counts[y][x] > 0 {
				grid[y][x] /= float64(counts[y][x])
				if grid[y][x] > maxCell {
					maxCell = grid[y][x]
				}
			}
		}
	}
	var b strings.Builder
	for y := h - 1; y >= 0; y-- {
		for x := 0; x < w; x++ {
			ch := byte(' ')
			if counts[y][x] > 0 && maxCell > 0 {
				idx := int(float64(len(glyphs)-1) * grid[y][x] / maxCell)
				ch = glyphs[idx]
			}
			b.WriteByte(ch)
		}
		b.WriteByte('\n')
	}
	// Overlay true user positions.
	out := []byte(b.String())
	for _, u := range users {
		x := int(float64(w) * (u.Pos.X - field.Min.X) / field.Width())
		y := int(float64(h) * (u.Pos.Y - field.Min.Y) / field.Height())
		if x >= w {
			x = w - 1
		}
		if y >= h {
			y = h - 1
		}
		row := h - 1 - y
		out[row*(w+1)+x] = 'X'
	}
	return string(out)
}

// matchErrors pairs estimates with their nearest unmatched true users.
func matchErrors(estimates []geom.Point, users []traffic.User) []float64 {
	used := make([]bool, len(users))
	var out []float64
	for _, est := range estimates {
		best, bestD := -1, 0.0
		for j, u := range users {
			if used[j] {
				continue
			}
			d := est.Dist(u.Pos)
			if best < 0 || d < bestD {
				best, bestD = j, d
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		out = append(out, bestD)
	}
	return out
}
