package main

import (
	"strings"
	"testing"

	"fluxtrack/internal/core"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/traffic"
)

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-users", "0"}); err == nil {
		t.Error("zero users must error")
	}
	if err := run([]string{"-deploy", "hexagonal"}); err == nil {
		t.Error("unknown deployment must error")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag must error")
	}
}

func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end scenario skipped in -short mode")
	}
	if err := run([]string{"-users", "1", "-samples", "500", "-nodes", "400"}); err != nil {
		t.Fatalf("fluxsim run failed: %v", err)
	}
	if err := run([]string{
		"-users", "1", "-samples", "500", "-nodes", "400",
		"-coarse", "-coarsek", "64", "-coarsegrid", "16",
	}); err != nil {
		t.Fatalf("fluxsim coarse run failed: %v", err)
	}
}

func TestMatchErrorsHelper(t *testing.T) {
	users := []traffic.User{
		{Pos: geom.Pt(0, 0)}, {Pos: geom.Pt(10, 10)},
	}
	errs := matchErrors([]geom.Point{geom.Pt(9, 9), geom.Pt(1, 1)}, users)
	if len(errs) != 2 {
		t.Fatalf("got %d errors, want 2", len(errs))
	}
	for _, e := range errs {
		if e > 1.5 {
			t.Errorf("matching error %v too large", e)
		}
	}
}

func TestRenderFluxShape(t *testing.T) {
	// renderFlux must yield h lines of w runes with user markers placed.
	sc := mustScenario(t)
	users := []traffic.User{{Pos: geom.Pt(15, 15), Stretch: 2, Active: true}}
	flux, err := sc.GroundFlux(users)
	if err != nil {
		t.Fatal(err)
	}
	out := renderFlux(sc, flux, users)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 30 {
		t.Fatalf("rendered %d lines, want 30", len(lines))
	}
	for i, line := range lines {
		if len(line) != 60 {
			t.Fatalf("line %d has width %d, want 60", i, len(line))
		}
	}
	if !strings.Contains(out, "X") {
		t.Error("user marker X missing from rendering")
	}
}

// mustScenario builds a small scenario for rendering tests.
func mustScenario(t *testing.T) *core.Scenario {
	t.Helper()
	sc, err := core.NewScenario(core.ScenarioConfig{Nodes: 400}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}
