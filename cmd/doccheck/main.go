// Command doccheck enforces the repository's documentation floor: every Go
// package under the given roots must carry a package comment (a doc comment
// on its package clause, per go/doc conventions). CI runs it over internal/
// and cmd/ and fails the build when a package is undocumented, so the godoc
// coverage established by the documentation pass cannot silently erode.
//
// Usage:
//
//	doccheck [-min n] root [root...]
//
// Each root is walked recursively; testdata and hidden directories are
// skipped, as are test-only packages (*_test). -min sets the minimum
// comment length in characters (default 1: any comment passes; raise it to
// outlaw stub comments). Exit status is 1 when any package fails, with one
// line per offender.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	minLen := flag.Int("min", 1, "minimum package comment length in characters")
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck [-min n] root [root...]")
		os.Exit(2)
	}
	var bad []string
	for _, root := range roots {
		offenders, err := check(root, *minLen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		bad = append(bad, offenders...)
	}
	for _, b := range bad {
		fmt.Println(b)
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented package(s)\n", len(bad))
		os.Exit(1)
	}
}

// check walks root and returns one "dir: package p has no package comment"
// line per offending package, sorted by directory.
func check(root string, minLen int) ([]string, error) {
	var bad []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return fs.SkipDir
		}
		pkgs, err := parseDir(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for pkgName, docLen := range pkgs {
			if docLen < minLen {
				bad = append(bad, fmt.Sprintf("%s: package %s has no package comment", path, pkgName))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(bad)
	return bad, nil
}

// parseDir parses just the package clauses (and their doc comments) of the
// Go files directly in dir and returns, per non-test package, the length of
// the longest package comment found across its files. Directories with no
// Go files yield an empty map.
func parseDir(dir string) (map[string]int, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkgs := make(map[string]int)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return nil, err
		}
		name := f.Name.Name
		if strings.HasSuffix(name, "_test") {
			continue
		}
		docLen := 0
		if f.Doc != nil {
			docLen = len(strings.TrimSpace(f.Doc.Text()))
		}
		if cur, ok := pkgs[name]; !ok || docLen > cur {
			pkgs[name] = docLen
		}
	}
	return pkgs, nil
}
