package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoPackagesDocumented is the lint itself in test form: every package
// under internal/ and cmd/, plus the root package, must carry a package
// comment. Failing here means a new package landed without one.
func TestRepoPackagesDocumented(t *testing.T) {
	root := repoRoot(t)
	for _, dir := range []string{".", "internal", "cmd"} {
		offenders, err := check(filepath.Join(root, dir), 1)
		if err != nil {
			t.Fatalf("check(%s): %v", dir, err)
		}
		for _, o := range offenders {
			t.Error(o)
		}
	}
}

// TestCheckFlagsUndocumentedPackage pins the detector on a synthetic
// undocumented package, and its acceptance of a documented one.
func TestCheckFlagsUndocumentedPackage(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("good/good.go", "// Package good is documented.\npackage good\n")
	write("bad/bad.go", "package bad\n")
	write("bad/other.go", "package bad\n")
	write("bad/testdata/skip/skip.go", "package skip\n") // testdata must be ignored
	write("bad/bad_test.go", "package bad\n")            // test files must not satisfy the check

	offenders, err := check(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 1 {
		t.Fatalf("want exactly the bad package flagged, got %q", offenders)
	}
	if !strings.Contains(offenders[0], "package bad") {
		t.Fatalf("offender line %q does not name package bad", offenders[0])
	}

	// A stub comment passes at -min 1 but fails a raised floor.
	write("stub/stub.go", "// Package stub.\npackage stub\n")
	offenders, err = check(filepath.Join(dir, "stub"), 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 1 {
		t.Fatalf("min-length floor not enforced, got %q", offenders)
	}
}

// repoRoot walks upward from the working directory to the module root (the
// directory holding go.mod).
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
