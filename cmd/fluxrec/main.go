// Command fluxrec records sniffer observation streams and replays the
// attack offline — the adversary's real workflow: capture traffic-volume
// readings in the field now, fingerprint the users later.
//
// Usage:
//
//	fluxrec record -users 2 -rounds 12 -pct 10 -out obs.jsonl -truth truth.jsonl
//	fluxrec attack -in obs.jsonl -users 2 [-truth truth.jsonl]
//
// The observation format is documented in internal/obslog; recordings from
// real deployments can be replayed through `fluxrec attack` unchanged.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"fluxtrack/internal/core"
	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mobility"
	"fluxtrack/internal/obslog"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/smc"
	"fluxtrack/internal/traffic"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fluxrec:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: fluxrec record|attack [flags]")
	}
	switch args[0] {
	case "record":
		return record(args[1:])
	case "attack":
		return attack(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want record or attack)", args[0])
	}
}

// truthEntry is one line of the ground-truth side file.
type truthEntry struct {
	Time      float64      `json:"time"`
	Positions []geom.Point `json:"positions"`
}

func record(args []string) error {
	fs := flag.NewFlagSet("fluxrec record", flag.ContinueOnError)
	var (
		users  = fs.Int("users", 2, "number of mobile users")
		rounds = fs.Int("rounds", 12, "observation rounds")
		pct    = fs.Float64("pct", 10, "percentage of nodes sniffed")
		noise  = fs.Float64("noise", 0, "multiplicative measurement noise sigma")
		seed   = fs.Uint64("seed", 1, "random seed")
		out    = fs.String("out", "", "observation output file (required)")
		truth  = fs.String("truth", "", "optional ground-truth output file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("record: -out is required")
	}
	if *users <= 0 || *rounds <= 0 {
		return fmt.Errorf("record: users and rounds must be positive")
	}

	src := rng.New(*seed)
	sc, err := core.NewScenario(core.ScenarioConfig{}, src)
	if err != nil {
		return err
	}
	sniffer, err := sc.NewSniffer(*pct/100, src)
	if err != nil {
		return err
	}

	walks := make([]mobility.Trajectory, *users)
	stretches := make([]float64, *users)
	for i := range walks {
		w, err := mobility.NewRandomWalk(sc.Field(), src.InRect(sc.Field()), 4, *rounds+1, src)
		if err != nil {
			return err
		}
		walks[i] = w
		stretches[i] = src.Uniform(1, 3)
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := obslog.NewWriter(f, obslog.Header{
		Field:     sc.Field(),
		Points:    sniffer.Points(),
		HopLength: sc.Calibration().HopLength,
		Comment:   fmt.Sprintf("fluxrec simulation: %d users, %.0f%% sniffed, seed %d", *users, *pct, *seed),
	})
	if err != nil {
		return err
	}

	var truthW io.WriteCloser
	var truthEnc *json.Encoder
	if *truth != "" {
		truthW, err = os.Create(*truth)
		if err != nil {
			return err
		}
		defer truthW.Close()
		truthEnc = json.NewEncoder(truthW)
	}

	for round := 1; round <= *rounds; round++ {
		t := float64(round)
		positions := make([]geom.Point, *users)
		us := make([]traffic.User, *users)
		for i := range walks {
			positions[i] = walks[i].At(t)
			us[i] = traffic.User{Pos: positions[i], Stretch: stretches[i], Active: true}
		}
		obs, err := sniffer.Observe(us, *noise, src)
		if err != nil {
			return err
		}
		if err := w.Append(obslog.Entry{Time: t, Readings: obs}); err != nil {
			return err
		}
		if truthEnc != nil {
			if err := truthEnc.Encode(truthEntry{Time: t, Positions: positions}); err != nil {
				return err
			}
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("recorded %d rounds x %d readings to %s\n", *rounds, len(sniffer.Points()), *out)
	return nil
}

func attack(args []string) error {
	fs := flag.NewFlagSet("fluxrec attack", flag.ContinueOnError)
	var (
		in    = fs.String("in", "", "observation input file (required)")
		users = fs.Int("users", 2, "number of users to track")
		truth = fs.String("truth", "", "optional ground-truth file for scoring")
		n     = fs.Int("n", 500, "SMC prediction samples per user")
		m     = fs.Int("m", 10, "SMC kept representatives")
		vmax  = fs.Float64("vmax", 5, "assumed maximum user speed")
		seed  = fs.Uint64("seed", 7, "attack random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("attack: -in is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	header, entries, err := obslog.Read(f)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("attack: recording has no observations")
	}

	truths, err := loadTruth(*truth)
	if err != nil {
		return err
	}

	model, err := fluxmodel.New(header.Field, header.HopLength/2)
	if err != nil {
		return err
	}
	tracker, err := smc.New(smc.Config{
		Model:        model,
		SamplePoints: header.Points,
		NumUsers:     *users,
		N:            *n,
		M:            *m,
		VMax:         *vmax,
	}, *seed)
	if err != nil {
		return err
	}

	fmt.Printf("replaying %d observations (%d readings each) against %d users\n",
		len(entries), len(header.Points), *users)
	for _, e := range entries {
		res, err := tracker.Step(e.Time, e.Readings)
		if err != nil {
			return err
		}
		line := fmt.Sprintf("t=%5.1f:", e.Time)
		ests := make([]geom.Point, 0, len(res.Estimates))
		for _, est := range res.Estimates {
			line += fmt.Sprintf(" %v", est.Mean)
			ests = append(ests, est.Mean)
		}
		if tr, ok := truths[e.Time]; ok {
			line += fmt.Sprintf("  | matched err %.2f", matchedMean(ests, tr))
		}
		fmt.Println(line)
	}
	return nil
}

// loadTruth reads the optional ground-truth side file into a time index.
func loadTruth(path string) (map[float64][]geom.Point, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	out := make(map[float64][]geom.Point)
	for {
		var e truthEntry
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("truth file: %w", err)
		}
		out[e.Time] = e.Positions
	}
	return out, nil
}

// matchedMean pairs estimates greedily with the nearest unmatched truths.
func matchedMean(ests, truths []geom.Point) float64 {
	used := make([]bool, len(truths))
	var sum float64
	var n int
	for _, est := range ests {
		best, bestD := -1, 0.0
		for j, tr := range truths {
			if used[j] {
				continue
			}
			d := est.Dist(tr)
			if best < 0 || d < bestD {
				best, bestD = j, d
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		sum += bestD
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
