package main

import (
	"os"
	"path/filepath"
	"testing"

	"fluxtrack/internal/geom"
)

func TestRunUsage(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args must error")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand must error")
	}
}

func TestRecordValidation(t *testing.T) {
	if err := record([]string{}); err == nil {
		t.Error("missing -out must error")
	}
	if err := record([]string{"-out", "/tmp/x.jsonl", "-users", "0"}); err == nil {
		t.Error("zero users must error")
	}
	if err := record([]string{"-bogus"}); err == nil {
		t.Error("bad flag must error")
	}
}

func TestAttackValidation(t *testing.T) {
	if err := attack([]string{}); err == nil {
		t.Error("missing -in must error")
	}
	if err := attack([]string{"-in", "/nonexistent/file"}); err == nil {
		t.Error("missing file must error")
	}
}

func TestRecordAttackEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end record/attack skipped in -short mode")
	}
	dir := t.TempDir()
	obs := filepath.Join(dir, "obs.jsonl")
	truth := filepath.Join(dir, "truth.jsonl")

	if err := record([]string{
		"-out", obs, "-truth", truth,
		"-users", "1", "-rounds", "6", "-pct", "10", "-seed", "3",
	}); err != nil {
		t.Fatalf("record: %v", err)
	}
	if info, err := os.Stat(obs); err != nil || info.Size() == 0 {
		t.Fatalf("observation file missing or empty: %v", err)
	}
	if err := attack([]string{
		"-in", obs, "-truth", truth, "-users", "1", "-n", "200",
	}); err != nil {
		t.Fatalf("attack: %v", err)
	}
}

func TestLoadTruthMissing(t *testing.T) {
	if m, err := loadTruth(""); err != nil || m != nil {
		t.Errorf("empty path: %v, %v", m, err)
	}
	if _, err := loadTruth("/nonexistent/truth.jsonl"); err == nil {
		t.Error("missing truth file must error")
	}
}

func TestMatchedMean(t *testing.T) {
	ests := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 10)}
	truths := []geom.Point{geom.Pt(9, 9), geom.Pt(1, 1)}
	got := matchedMean(ests, truths)
	want := (geom.Pt(0, 0).Dist(geom.Pt(1, 1)) + geom.Pt(10, 10).Dist(geom.Pt(9, 9))) / 2
	if got != want {
		t.Errorf("matchedMean = %v, want %v", got, want)
	}
	if matchedMean(ests, nil) != 0 {
		t.Error("no truths must give 0")
	}
}
