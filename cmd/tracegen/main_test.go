package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunGenerate(t *testing.T) {
	// Redirect stdout to a file so the trace can be round-tripped through
	// the -summarize path.
	dir := t.TempDir()
	path := filepath.Join(dir, "campus.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = f
	err = run([]string{"-users", "3", "-duration", "20000", "-aps", "30"})
	os.Stdout = old
	if cerr := f.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatalf("generate failed: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("generated trace is empty")
	}
	if err := run([]string{"-summarize", path}); err != nil {
		t.Fatalf("summarize failed: %v", err)
	}
}

func TestRunSummarizeMissingFile(t *testing.T) {
	if err := run([]string{"-summarize", "/nonexistent/file.trace"}); err == nil {
		t.Error("missing file must error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag must error")
	}
}
