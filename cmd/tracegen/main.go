// Command tracegen generates synthetic campus AP-association traces in the
// repository's syslog-like format (see internal/trace), or summarizes an
// existing trace file. The synthetic traces substitute for the Dartmouth
// Campus data set in the trace-driven experiment.
//
// Usage:
//
//	tracegen -users 20 -duration 400000 > campus.trace
//	tracegen -summarize campus.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		users     = fs.Int("users", 20, "number of mobile users")
		duration  = fs.Float64("duration", 400000, "trace duration in seconds")
		aps       = fs.Int("aps", 500, "number of campus APs")
		seed      = fs.Uint64("seed", 1, "random seed")
		summarize = fs.String("summarize", "", "summarize an existing trace file instead of generating")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *summarize != "" {
		return summary(*summarize)
	}

	src := rng.New(*seed)
	campus, err := trace.GenerateCampus(geom.Square(1000), *aps, src)
	if err != nil {
		return err
	}
	records, err := trace.Generate(campus, trace.GenConfig{
		NumUsers: *users,
		Duration: *duration,
	}, src)
	if err != nil {
		return err
	}
	fmt.Printf("# synthetic campus trace: %d users, %d APs, %.0fs\n", *users, *aps, *duration)
	fmt.Printf("# format: <time_seconds>\\t<user>\\t<ap>\n")
	return trace.Write(os.Stdout, records)
}

func summary(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	records, err := trace.Parse(f)
	if err != nil {
		return err
	}
	if len(records) == 0 {
		fmt.Println("empty trace")
		return nil
	}
	perUser := map[string]int{}
	apSet := map[string]bool{}
	minT, maxT := records[0].Time, records[0].Time
	for _, r := range records {
		perUser[r.User]++
		apSet[r.AP] = true
		if r.Time < minT {
			minT = r.Time
		}
		if r.Time > maxT {
			maxT = r.Time
		}
	}
	users := make([]string, 0, len(perUser))
	for u := range perUser {
		users = append(users, u)
	}
	sort.Strings(users)
	fmt.Printf("records: %d   users: %d   APs: %d   span: %.0fs - %.0fs\n",
		len(records), len(perUser), len(apSet), minT, maxT)
	for _, u := range users {
		fmt.Printf("  %-12s %6d associations\n", u, perUser[u])
	}
	return nil
}
