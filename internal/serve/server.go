package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sync"
	"time"

	"fluxtrack/internal/core"
	"fluxtrack/internal/fingerprint"
	"fluxtrack/internal/fit"
	"fluxtrack/internal/obs"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/shard"
	"fluxtrack/internal/smc"
)

// Config configures a resident tracking server. All tenants share one
// deployed scenario and one sniffer vantage (the world is a property of the
// installation, not of a tenant); each tenant owns an independent tracker,
// queue, and stepping goroutine.
type Config struct {
	// Scenario describes the deployed sensor network; the zero value is the
	// paper's standard 900-node 30x30 setup.
	Scenario core.ScenarioConfig
	// SnifferFraction is the fraction of nodes the adversary monitors; zero
	// means 0.1 (the paper's 10% operating point).
	SnifferFraction float64
	// Seed fixes the deployment and the sniffer's node pick. Two servers
	// built from the same Config are observation-compatible: readings
	// generated against one are valid against the other.
	Seed uint64
	// MaxTenants caps concurrently resident tenants; zero means 64.
	MaxTenants int
	// DefaultQueue is the per-tenant ingestion queue depth when the tenant
	// config leaves it zero; zero means 64.
	DefaultQueue int
	// Metrics receives the serve.* instruments plus every tenant tracker's
	// smc.*/shard.*/fit.* counters; nil builds a private registry (exposed
	// at /metrics either way).
	Metrics *obs.Metrics
	// Trace, when non-nil, receives one obs.Span per stepped tracker round
	// across all tenants.
	Trace *obs.Trace
}

// TenantConfig is the JSON body of a tenant-creation request. Zero values
// take the tracker defaults (core.TrackerConfig).
type TenantConfig struct {
	Users          int     `json:"users"`
	Seed           uint64  `json:"seed"`
	Samples        int     `json:"samples"`          // per-user sample count N
	TrackM         int     `json:"track_m"`          // representatives kept M
	VMax           float64 `json:"vmax"`             // per-round speed bound
	Workers        int     `json:"workers"`          // intra-round parallelism
	Shards         string  `json:"shards"`           // "RxC" tile grid; "" = plain tracker
	Halo           float64 `json:"halo"`             // sharded tile halo width
	ActiveSetLimit int     `json:"active_set_limit"` // §5.C active-set cap
	TileCapacity   int     `json:"tile_capacity"`    // sharded per-tile admission cap
	Queue          int     `json:"queue"`            // ingestion queue depth
	// Robust arms the robust-fit defense against Byzantine sensor reports
	// for every round this tenant steps: "off" (or ""), "huber", "loso", or
	// "both" (fit.ParseRobustMode). Defended tenants pay a second search
	// pass per round but tolerate tampered readings (see fit.RobustConfig).
	Robust string `json:"robust"`
}

// Observation is the JSON body of an observe request: one measurement
// round. Present/Age express fault-degraded delivery (internal/fault);
// leaving Present null means every sensor delivered a fresh report.
type Observation struct {
	// T is the observation timestamp; zero or negative means "next round"
	// (the tenant's step count + 1).
	T        float64   `json:"t"`
	Readings []float64 `json:"readings"`
	Present  []bool    `json:"present,omitempty"`
	Age      []int     `json:"age,omitempty"`
}

// UserEstimate is one user's row in an estimate response.
type UserEstimate struct {
	User    int     `json:"user"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	Active  bool    `json:"active"`
	Stretch float64 `json:"stretch"`
}

// EstimateResponse is the JSON body of an estimate reply: the tenant's most
// recent completed round.
type EstimateResponse struct {
	Tenant    string         `json:"tenant"`
	Rounds    int            `json:"rounds"`
	Time      float64        `json:"t"`
	Objective float64        `json:"objective"`
	Users     []UserEstimate `json:"users"`
	Pending   int            `json:"pending"` // observations queued, not yet stepped
	Solves    uint64         `json:"solves"`  // cumulative NNLS solves
	Iters     uint64         `json:"iters"`   // cumulative NNLS iterations
	StepError string         `json:"step_error,omitempty"`
}

var tenantIDPattern = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_.-]{0,63}$`)

// op is one unit of tenant-queue work: an observation round to step, or a
// control closure (checkpoint, restore) that must serialize against
// stepping. Observations are enqueued non-blocking — a full queue is the
// backpressure signal (429) — while control ops wait for space.
type op struct {
	t        float64
	readings []float64
	present  []bool
	age      []int
	ctrl     func()
}

// tenant is one resident tracked field: a tracker, its bounded ingestion
// queue, and the goroutine that drains it. All tracker access happens on
// that goroutine; handlers communicate through the queue and the snapshot
// mutex only.
type tenant struct {
	id      string
	tracker core.StepTracker
	queue   chan op
	stop    chan struct{} // closed by delete: worker exits
	done    chan struct{} // closed by worker on exit

	mu      sync.Mutex
	last    smc.StepResult
	rounds  int
	stepErr error
	pending int // queued observations not yet stepped
	// solves/iters cache WorkTotals as of the last completed round:
	// WorkTotals reads the searchers' scratch counters, which is only safe
	// on the stepping goroutine, so handlers read this snapshot instead.
	solves, iters uint64
}

// Server hosts many independent tenant fields over one shared vantage.
type Server struct {
	cfg     Config
	sc      *core.Scenario
	sniffer *core.Sniffer
	sensors int
	metrics *obs.Metrics
	trace   *obs.Trace
	cache   *fingerprint.Cache

	mu      sync.Mutex
	tenants map[string]*tenant

	reqs      *obs.Counter
	rejected  *obs.Counter
	stepped   *obs.Counter
	stepErrs  *obs.Counter
	ckptSaves *obs.Counter
	ckptLoads *obs.Counter
	stepMs    *obs.Histogram
	httpMs    *obs.Histogram
}

// New deploys the shared scenario and returns a serving core with no
// tenants. The caller mounts Handler on an http.Server.
func New(cfg Config) (*Server, error) {
	if cfg.SnifferFraction == 0 {
		cfg.SnifferFraction = 0.1
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 64
	}
	if cfg.DefaultQueue <= 0 {
		cfg.DefaultQueue = 64
	}
	m := cfg.Metrics
	if m == nil {
		m = obs.New(0)
	}
	src := rng.New(cfg.Seed)
	sc, err := core.NewScenario(cfg.Scenario, src)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	sniffer, err := sc.NewSniffer(cfg.SnifferFraction, src)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	return &Server{
		cfg:       cfg,
		sc:        sc,
		sniffer:   sniffer,
		sensors:   len(sniffer.Points()),
		metrics:   m,
		trace:     cfg.Trace,
		cache:     fingerprint.NewCache(0),
		tenants:   make(map[string]*tenant),
		reqs:      m.Counter("serve.http.requests"),
		rejected:  m.Counter("serve.observe.rejected"),
		stepped:   m.Counter("serve.rounds.stepped"),
		stepErrs:  m.Counter("serve.step.errors"),
		ckptSaves: m.Counter("serve.checkpoint.saves"),
		ckptLoads: m.Counter("serve.checkpoint.restores"),
		stepMs:    m.Histogram("serve.step.ms", obs.DurationBucketsMs),
		httpMs:    m.Histogram("serve.http.ms", obs.DurationBucketsMs),
	}, nil
}

// Scenario returns the shared deployment (test and benchmark drivers build
// observation streams against it).
func (s *Server) Scenario() *core.Scenario { return s.sc }

// Sniffer returns the shared vantage.
func (s *Server) Sniffer() *core.Sniffer { return s.sniffer }

// Sensors returns the monitored-node count — the required length of every
// observation's readings vector.
func (s *Server) Sensors() int { return s.sensors }

// Metrics returns the registry the server reports into.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Close tears down every tenant, waiting for their stepping goroutines.
func (s *Server) Close() {
	s.mu.Lock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, tn := range s.tenants {
		tenants = append(tenants, tn)
	}
	s.tenants = make(map[string]*tenant)
	s.mu.Unlock()
	for _, tn := range tenants {
		close(tn.stop)
		<-tn.done
	}
}

// Handler mounts the service API:
//
//	POST   /v1/tenant/{id}            create a tenant (TenantConfig JSON)
//	DELETE /v1/tenant/{id}            tear a tenant down
//	POST   /v1/tenant/{id}/observe    enqueue one round (Observation JSON);
//	                                  202 accepted, 429 + Retry-After when
//	                                  the ingestion queue is full
//	GET    /v1/tenant/{id}/estimate   latest completed round's estimates
//	POST   /v1/tenant/{id}/checkpoint serialize tenant state (binary blob)
//	POST   /v1/tenant/{id}/restore    restore a previously saved blob
//	GET    /metrics                   obs registry snapshot (JSON)
//	GET    /healthz                   liveness + tenant count
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenant/{id}", s.instrument(s.handleCreate))
	mux.HandleFunc("DELETE /v1/tenant/{id}", s.instrument(s.handleDelete))
	mux.HandleFunc("POST /v1/tenant/{id}/observe", s.instrument(s.handleObserve))
	mux.HandleFunc("GET /v1/tenant/{id}/estimate", s.instrument(s.handleEstimate))
	mux.HandleFunc("POST /v1/tenant/{id}/checkpoint", s.instrument(s.handleCheckpoint))
	mux.HandleFunc("POST /v1/tenant/{id}/restore", s.instrument(s.handleRestore))
	mux.HandleFunc("GET /metrics", s.instrument(s.handleMetrics))
	mux.HandleFunc("GET /healthz", s.instrument(s.handleHealthz))
	return mux
}

func (s *Server) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.reqs.Inc(0)
		h(w, r)
		s.httpMs.Observe(0, float64(time.Since(start).Microseconds())/1000)
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *tenant {
	id := r.PathValue("id")
	s.mu.Lock()
	tn := s.tenants[id]
	s.mu.Unlock()
	if tn == nil {
		httpError(w, http.StatusNotFound, "no tenant %q", id)
	}
	return tn
}

// trackerFor builds the tracker a TenantConfig asks for. The fingerprint DB
// cache is shared across tenants: databases depend only on the (shared)
// vantage and the coarse parameters, never on tenant state.
func (s *Server) trackerFor(cfg TenantConfig) (core.StepTracker, error) {
	if cfg.Users <= 0 {
		return nil, errors.New("users must be >= 1")
	}
	robustMode, err := fit.ParseRobustMode(cfg.Robust)
	if err != nil {
		return nil, err
	}
	tc := core.TrackerConfig{
		N: cfg.Samples, M: cfg.TrackM, VMax: cfg.VMax,
		ActiveSetLimit: cfg.ActiveSetLimit,
		TileCapacity:   cfg.TileCapacity,
		Workers:        cfg.Workers,
		Search:         fit.Options{Robust: fit.RobustConfig{Mode: robustMode}},
		DBCache:        s.cache,
		Metrics:        s.metrics,
		Trace:          s.trace,
	}
	if cfg.Shards != "" {
		var rows, cols int
		if n, err := fmt.Sscanf(cfg.Shards, "%dx%d", &rows, &cols); n != 2 || err != nil {
			return nil, fmt.Errorf("shards %q is not RxC", cfg.Shards)
		}
		if rows < 1 || cols < 1 {
			return nil, fmt.Errorf("shards %q names an empty grid", cfg.Shards)
		}
		tc.Shards = shard.Grid{Rows: rows, Cols: cols, Halo: cfg.Halo}
	}
	return s.sniffer.NewStepTracker(cfg.Users, tc, cfg.Seed)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !tenantIDPattern.MatchString(id) {
		httpError(w, http.StatusBadRequest, "tenant id %q is invalid", id)
		return
	}
	var cfg TenantConfig
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&cfg); err != nil {
		httpError(w, http.StatusBadRequest, "bad tenant config: %v", err)
		return
	}
	tracker, err := s.trackerFor(cfg)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad tenant config: %v", err)
		return
	}
	depth := cfg.Queue
	if depth <= 0 {
		depth = s.cfg.DefaultQueue
	}
	tn := &tenant{
		id:      id,
		tracker: tracker,
		queue:   make(chan op, depth),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	s.mu.Lock()
	if _, dup := s.tenants[id]; dup {
		s.mu.Unlock()
		httpError(w, http.StatusConflict, "tenant %q already exists", id)
		return
	}
	if len(s.tenants) >= s.cfg.MaxTenants {
		s.mu.Unlock()
		httpError(w, http.StatusTooManyRequests, "tenant limit %d reached", s.cfg.MaxTenants)
		return
	}
	s.tenants[id] = tn
	s.mu.Unlock()
	go s.runTenant(tn)
	writeJSON(w, http.StatusCreated, map[string]any{
		"tenant": id, "users": cfg.Users, "sensors": s.sensors, "queue": depth,
	})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	tn := s.tenants[id]
	delete(s.tenants, id)
	s.mu.Unlock()
	if tn == nil {
		httpError(w, http.StatusNotFound, "no tenant %q", id)
		return
	}
	close(tn.stop)
	<-tn.done
	w.WriteHeader(http.StatusNoContent)
}

// runTenant is the tenant's stepping goroutine: the only code path that
// touches the tracker after creation. It drains the queue in arrival order,
// so the observation stream's ordering — and therefore the tracker's
// byte-exact determinism contract — survives concurrent HTTP ingestion.
func (s *Server) runTenant(tn *tenant) {
	defer close(tn.done)
	for {
		select {
		case <-tn.stop:
			return
		case o := <-tn.queue:
			if o.ctrl != nil {
				o.ctrl()
				continue
			}
			s.stepOne(tn, o)
		}
	}
}

func (s *Server) stepOne(tn *tenant, o op) {
	t := o.t
	if t <= 0 {
		t = float64(tn.tracker.Steps() + 1)
	}
	start := time.Now()
	var res smc.StepResult
	var err error
	if o.present == nil {
		res, err = tn.tracker.Step(t, o.readings)
	} else {
		res, err = tn.tracker.StepMasked(t, o.readings, o.present, o.age)
	}
	s.stepMs.Observe(0, float64(time.Since(start).Microseconds())/1000)
	solves, iters := tn.tracker.WorkTotals()
	tn.mu.Lock()
	tn.pending--
	tn.solves, tn.iters = solves, iters
	if err != nil {
		tn.stepErr = err
	} else {
		tn.last = res
		tn.rounds = tn.tracker.Steps()
		tn.stepErr = nil
	}
	tn.mu.Unlock()
	if err != nil {
		s.stepErrs.Inc(0)
	} else {
		s.stepped.Inc(0)
	}
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	tn := s.lookup(w, r)
	if tn == nil {
		return
	}
	var o Observation
	if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&o); err != nil {
		httpError(w, http.StatusBadRequest, "bad observation: %v", err)
		return
	}
	if len(o.Readings) != s.sensors {
		httpError(w, http.StatusBadRequest, "observation has %d readings, vantage has %d sensors",
			len(o.Readings), s.sensors)
		return
	}
	if o.Present != nil && (len(o.Present) != s.sensors || (o.Age != nil && len(o.Age) != s.sensors)) {
		httpError(w, http.StatusBadRequest, "present/age masks must match %d sensors", s.sensors)
		return
	}
	// Non-blocking enqueue: a full queue IS the backpressure signal. The
	// client retries after draining; nothing is silently dropped or
	// reordered.
	tn.mu.Lock()
	tn.pending++
	tn.mu.Unlock()
	select {
	case tn.queue <- op{t: o.T, readings: o.Readings, present: o.Present, age: o.Age}:
		writeJSON(w, http.StatusAccepted, map[string]any{"tenant": tn.id, "queued": true})
	default:
		tn.mu.Lock()
		tn.pending--
		tn.mu.Unlock()
		s.rejected.Inc(0)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "tenant %q ingestion queue is full", tn.id)
	}
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	tn := s.lookup(w, r)
	if tn == nil {
		return
	}
	tn.mu.Lock()
	res, rounds, pending, stepErr := tn.last, tn.rounds, tn.pending, tn.stepErr
	solves, iters := tn.solves, tn.iters
	tn.mu.Unlock()
	resp := EstimateResponse{
		Tenant: tn.id, Rounds: rounds, Time: res.Time,
		Objective: res.Objective, Pending: pending,
		Solves: solves, Iters: iters,
	}
	if stepErr != nil {
		resp.StepError = stepErr.Error()
	}
	for j, est := range res.Estimates {
		resp.Users = append(resp.Users, UserEstimate{
			User: j, X: est.Mean.X, Y: est.Mean.Y,
			Active: est.Active, Stretch: est.Stretch,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// ctrl runs fn on the tenant's stepping goroutine and waits for it,
// serializing against in-flight rounds. Unlike observations, control ops
// block for queue space — saving a checkpoint under load waits rather than
// failing. Returns false if the tenant shut down first.
func (tn *tenant) ctrl(fn func()) bool {
	ran := make(chan struct{})
	wrapped := op{ctrl: func() { fn(); close(ran) }}
	select {
	case tn.queue <- wrapped:
	case <-tn.done:
		return false
	}
	select {
	case <-ran:
		return true
	case <-tn.done:
		return false
	}
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	tn := s.lookup(w, r)
	if tn == nil {
		return
	}
	var blob []byte
	var err error
	ok := tn.ctrl(func() {
		var c Checkpoint
		if c, err = Capture(tn.tracker); err == nil {
			blob, err = Encode(c)
		}
	})
	if !ok {
		httpError(w, http.StatusGone, "tenant %q shut down", tn.id)
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	s.ckptSaves.Inc(0)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Fluxtrack-Checkpoint-Version", fmt.Sprint(Version))
	w.WriteHeader(http.StatusOK)
	w.Write(blob)
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	tn := s.lookup(w, r)
	if tn == nil {
		return
	}
	blob, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	// Decode outside the stepping goroutine: malformed blobs are rejected
	// without ever pausing ingestion.
	c, err := Decode(blob)
	if err != nil {
		httpError(w, http.StatusBadRequest, "restore: %v", err)
		return
	}
	var restoreErr error
	ok := tn.ctrl(func() {
		restoreErr = c.RestoreInto(tn.tracker)
		if restoreErr == nil {
			// The restored state is the tenant's new present: reset the
			// round snapshot so stale estimates don't outlive the restore.
			tn.mu.Lock()
			tn.last = smc.StepResult{}
			tn.rounds = tn.tracker.Steps()
			tn.stepErr = nil
			tn.mu.Unlock()
		}
	})
	if !ok {
		httpError(w, http.StatusGone, "tenant %q shut down", tn.id)
		return
	}
	if restoreErr != nil {
		httpError(w, http.StatusConflict, "restore: %v", restoreErr)
		return
	}
	s.ckptLoads.Inc(0)
	writeJSON(w, http.StatusOK, map[string]any{"tenant": tn.id, "rounds": tn.tracker.Steps()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	s.metrics.Snapshot().WriteJSON(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.tenants)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "tenants": n, "sensors": s.sensors})
}
