package serve

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/smc"
)

// typedDecodeError reports whether err is one of the codec's sentinel
// failures — the only errors Decode is allowed to return.
func typedDecodeError(err error) bool {
	return errors.Is(err, ErrBadMagic) || errors.Is(err, ErrVersion) ||
		errors.Is(err, ErrTruncated) || errors.Is(err, ErrChecksum) ||
		errors.Is(err, ErrMalformed)
}

// FuzzCheckpointDecode throws arbitrary bytes at the decoder. The contract:
// no panic ever; rejection always carries a typed sentinel; and anything
// accepted must be canonical — re-encoding the decoded state reproduces the
// input byte for byte (so there is exactly one wire form per state, which
// is what lets the golden-blob gate pin the format).
func FuzzCheckpointDecode(f *testing.F) {
	tr := synthTrackerState()
	fd := synthFieldState()
	if blob, err := Encode(Checkpoint{SMC: &tr}); err == nil {
		f.Add(blob)
		f.Add(blob[:len(blob)/2])
		mut := append([]byte(nil), blob...)
		mut[len(mut)/2] ^= 0x40
		f.Add(mut)
	}
	if blob, err := Encode(Checkpoint{Field: &fd}); err == nil {
		f.Add(blob)
		f.Add(blob[:7])
	}
	f.Add([]byte("FXCP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			if !typedDecodeError(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if (c.SMC == nil) == (c.Field == nil) {
			t.Fatal("accepted checkpoint does not carry exactly one state")
		}
		again, err := Encode(c)
		if err != nil {
			t.Fatalf("accepted checkpoint fails to re-encode: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatal("accepted blob is not canonical: re-encode differs")
		}
	})
}

// FuzzCheckpointRoundTrip synthesizes tracker states from fuzzed scalars
// and pins encode → decode → re-encode exactness: the decoded state is
// DeepEqual to the original and the second encoding is byte-identical.
// Float bit patterns pass through verbatim (including NaN payloads and
// signed zeros), so the fuzzer explores the full float64 space.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(3), 0.5, 1.25, uint8(2), false)
	f.Add(uint64(0), uint64(0), math.Inf(1), -0.0, uint8(0), true)
	f.Add(^uint64(0), uint64(1<<40), math.NaN(), 1e-300, uint8(7), true)
	f.Fuzz(func(t *testing.T, seed, cursor uint64, w0, x0 float64, n uint8, spare bool) {
		users := int(n%5) + 1
		samples := int(n % 4)
		uc := smc.UserCheckpoint{
			User: 0,
			RNG:  rng.State{Cursor: cursor, Spare: w0, HasSpare: spare},
		}
		for i := 0; i < samples; i++ {
			uc.Snapshot.Samples = append(uc.Snapshot.Samples, geom.Pt(x0*float64(i+1), w0))
			uc.Snapshot.Weights = append(uc.Snapshot.Weights, w0+float64(i))
		}
		uc.Snapshot.Initialized = samples > 0
		uc.Snapshot.LastUpdate = x0
		st := smc.TrackerState{Seed: seed, NumUsers: users, Steps: int(n), Users: []smc.UserCheckpoint{uc}}
		c := Checkpoint{SMC: &st}
		blob, err := Encode(c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(blob)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if !stateBitsEqual(got.SMC, &st) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got.SMC, &st)
		}
		again, err := Encode(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, blob) {
			t.Fatal("re-encode is not byte-identical")
		}
	})
}

// stateBitsEqual is DeepEqual modulo NaN: floats compare by bit pattern, so
// NaN-carrying states (which the codec must preserve exactly) still match.
func stateBitsEqual(a, b *smc.TrackerState) bool {
	return reflect.DeepEqual(bitsView(*a), bitsView(*b))
}

// bitsView maps every float in the state to its IEEE bit pattern.
type bitsTracker struct {
	Seed            uint64
	NumUsers, Steps int
	Users           []bitsUser
}

type bitsUser struct {
	User        int
	Cursor      uint64
	Spare       uint64
	HasSpare    bool
	Samples     [][2]uint64
	Weights     []uint64
	LastUpdate  uint64
	Initialized bool
	Velocity    [2]uint64
	HasVelocity bool
	PrevMean    [2]uint64
	HasPrevMean bool
}

func bitsView(st smc.TrackerState) bitsTracker {
	out := bitsTracker{Seed: st.Seed, NumUsers: st.NumUsers, Steps: st.Steps}
	b := math.Float64bits
	for _, uc := range st.Users {
		s := uc.Snapshot
		bu := bitsUser{
			User: uc.User, Cursor: uc.RNG.Cursor, Spare: b(uc.RNG.Spare), HasSpare: uc.RNG.HasSpare,
			LastUpdate: b(s.LastUpdate), Initialized: s.Initialized,
			Velocity: [2]uint64{b(s.Velocity.DX), b(s.Velocity.DY)}, HasVelocity: s.HasVelocity,
			PrevMean: [2]uint64{b(s.PrevMean.X), b(s.PrevMean.Y)}, HasPrevMean: s.HasPrevMean,
		}
		for _, p := range s.Samples {
			bu.Samples = append(bu.Samples, [2]uint64{b(p.X), b(p.Y)})
		}
		for _, w := range s.Weights {
			bu.Weights = append(bu.Weights, b(w))
		}
		out.Users = append(out.Users, bu)
	}
	return out
}
