package serve

import (
	"sync"
	"testing"

	"fluxtrack/internal/core"
	"fluxtrack/internal/fault"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mobility"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/smc"
	"fluxtrack/internal/traffic"
)

// The serve test world: one modest deployment shared by the whole package
// (calibration is the expensive part), with precomputed clean and
// fault-degraded observation streams so every test replays the exact same
// measurements.
const (
	testUsers   = 3
	testRounds  = 8
	testSensors = 60
	worldSeed   = 33
)

type testWorldT struct {
	sc      *core.Scenario
	sniffer *core.Sniffer
	clean   [][]float64
	deg     []fault.Observation
	initial []geom.Point // round-1 truth, seeds sharded tile ownership
}

var (
	worldOnce sync.Once
	worldVal  *testWorldT
	worldErr  error
)

func testWorld(t *testing.T) *testWorldT {
	t.Helper()
	worldOnce.Do(func() { worldVal, worldErr = buildTestWorld() })
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return worldVal
}

func buildTestWorld() (*testWorldT, error) {
	src := rng.New(worldSeed)
	sc, err := core.NewScenario(core.ScenarioConfig{Nodes: 400}, src)
	if err != nil {
		return nil, err
	}
	sniffer, err := sc.NewSnifferCount(testSensors, src)
	if err != nil {
		return nil, err
	}
	return buildTestWorldFor(sc, sniffer)
}

// buildTestWorldFor generates the deterministic stream set against an
// existing vantage (the HTTP tests reuse their server's own sniffer so
// readings vectors match its sensor count).
func buildTestWorldFor(sc *core.Scenario, sniffer *core.Sniffer) (*testWorldT, error) {
	src := rng.New(worldSeed + 100)
	trajs := make([]mobility.Trajectory, testUsers)
	for i := range trajs {
		w, err := mobility.NewRandomWalk(sc.Field(), src.InRect(sc.Field()), 3, testRounds+1, src)
		if err != nil {
			return nil, err
		}
		trajs[i] = w
	}
	stretches := make([]float64, testUsers)
	for i := range stretches {
		stretches[i] = src.Uniform(1, 3)
	}
	inj, err := sniffer.NewFaultInjector(fault.Config{
		LossProb: 0.2, DelayProb: 0.2, DelayRounds: 2,
	}, worldSeed+1)
	if err != nil {
		return nil, err
	}
	w := &testWorldT{sc: sc, sniffer: sniffer}
	for r := 0; r < testRounds; r++ {
		tm := float64(r + 1)
		us := make([]traffic.User, testUsers)
		truth := make([]geom.Point, testUsers)
		for i := range us {
			truth[i] = sc.Field().Clamp(trajs[i].At(tm))
			us[i] = traffic.User{Pos: truth[i], Stretch: stretches[i], Active: true}
		}
		if r == 0 {
			w.initial = truth
		}
		readings, err := sniffer.Observe(us, 0, src)
		if err != nil {
			return nil, err
		}
		w.clean = append(w.clean, readings)
		deg, err := inj.Apply(readings)
		if err != nil {
			return nil, err
		}
		w.deg = append(w.deg, deg)
	}
	return w, nil
}

// runRounds replays rounds [from, to) of the world's stream — degraded when
// masked — through the tracker and returns the per-round results.
func runRounds(t *testing.T, tr core.StepTracker, w *testWorldT, masked bool, from, to int) []smc.StepResult {
	t.Helper()
	var out []smc.StepResult
	for r := from; r < to; r++ {
		tm := float64(r + 1)
		var res smc.StepResult
		var err error
		if masked {
			d := w.deg[r]
			res, err = tr.StepMasked(tm, d.Readings, d.Present, d.Age)
		} else {
			res, err = tr.Step(tm, w.clean[r])
		}
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		out = append(out, res)
	}
	return out
}
