package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fluxtrack/internal/core"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/shard"
	"fluxtrack/internal/smc"
)

var update = flag.Bool("update", false, "rewrite golden checkpoint blobs")

// synthTrackerState is a hand-built tracker state exercising every field of
// the SMC payload: a materialized user mid-track, a touched-but-reset user
// (advanced RNG, uninitialized snapshot — the shape a migrated-away user
// leaves behind), and absent slots.
func synthTrackerState() smc.TrackerState {
	return smc.TrackerState{
		Seed:     0xfeedface,
		NumUsers: 5,
		Steps:    7,
		Users: []smc.UserCheckpoint{
			{
				User: 1,
				RNG:  rng.State{Cursor: 0x1234_5678_9abc_def0, Spare: -0.625, HasSpare: true},
				Snapshot: smc.UserSnapshot{
					Samples:     []geom.Point{geom.Pt(1.5, 2.25), geom.Pt(-3, 4.125)},
					Weights:     []float64{0.75, 0.25},
					LastUpdate:  6,
					Initialized: true,
					Velocity:    geom.Vec{DX: 0.5, DY: -1.25},
					HasVelocity: true,
					PrevMean:    geom.Pt(2, 3),
					HasPrevMean: true,
				},
			},
			{User: 4, RNG: rng.State{Cursor: 99}},
		},
	}
}

func synthFieldState() shard.FieldState {
	mk := func(seed uint64, user int, cursor uint64) smc.TrackerState {
		return smc.TrackerState{
			Seed: seed, NumUsers: 2, Steps: 3,
			Users: []smc.UserCheckpoint{{
				User: user,
				RNG:  rng.State{Cursor: cursor},
				Snapshot: smc.UserSnapshot{
					Samples:     []geom.Point{geom.Pt(7, 8)},
					Weights:     []float64{1},
					LastUpdate:  3,
					Initialized: true,
				},
			}},
		}
	}
	return shard.FieldState{
		Seed: 0xabad1dea, NumUsers: 2, Tiles: 2,
		Steps: 3, Handoffs: 4, Spills: 1, LastMax: 2, LastMean: 1.5,
		Owner: []int{0, 1},
		LastEst: []smc.Estimate{
			{
				Mean: geom.Pt(5, 6), Best: geom.Pt(5.5, 6.5),
				Samples: []geom.Point{geom.Pt(5, 6)}, Weights: []float64{1},
				Active: true, Stretch: 1.75,
			},
			{}, // a user with no estimate yet: all-zero, nil slices
		},
		Trackers: []smc.TrackerState{mk(11, 0, 42), mk(12, 1, 43)},
	}
}

// TestCodecRoundTrip pins the codec's canonical-encoding contract on
// synthesized states: encode → decode reproduces the state exactly (nil
// slices stay nil), and re-encoding the decoded state reproduces the bytes.
func TestCodecRoundTrip(t *testing.T) {
	tr := synthTrackerState()
	fd := synthFieldState()
	for _, tc := range []struct {
		name string
		c    Checkpoint
	}{
		{"smc", Checkpoint{SMC: &tr}},
		{"field", Checkpoint{Field: &fd}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			blob, err := Encode(tc.c)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Decode(blob)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.c) {
				t.Fatalf("decode mismatch:\n got %+v\nwant %+v", got, tc.c)
			}
			again, err := Encode(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again, blob) {
				t.Fatal("re-encode is not byte-identical")
			}
		})
	}
	if _, err := Encode(Checkpoint{}); err == nil {
		t.Error("empty checkpoint encoded")
	}
	if _, err := Encode(Checkpoint{SMC: &tr, Field: &fd}); err == nil {
		t.Error("double-state checkpoint encoded")
	}
}

// TestCodecRejectsCorruption drives the decoder through exhaustive
// single-bit flips and every truncation of a valid blob: each must fail
// with one of the typed sentinel errors, never succeed and never panic.
func TestCodecRejectsCorruption(t *testing.T) {
	st := synthTrackerState()
	blob, err := Encode(Checkpoint{SMC: &st})
	if err != nil {
		t.Fatal(err)
	}
	typed := func(err error) bool {
		return errors.Is(err, ErrBadMagic) || errors.Is(err, ErrVersion) ||
			errors.Is(err, ErrTruncated) || errors.Is(err, ErrChecksum) ||
			errors.Is(err, ErrMalformed)
	}
	for i := range blob {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), blob...)
			mut[i] ^= 1 << bit
			if _, err := Decode(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", i, bit)
			} else if !typed(err) {
				t.Fatalf("bit flip at byte %d bit %d: untyped error %v", i, bit, err)
			}
		}
	}
	for n := 0; n < len(blob); n++ {
		if _, err := Decode(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		} else if !typed(err) {
			t.Fatalf("truncation to %d bytes: untyped error %v", n, err)
		}
	}
	if _, err := Decode(append(append([]byte(nil), blob...), 0)); !errors.Is(err, ErrChecksum) {
		t.Errorf("appended byte: got %v, want ErrChecksum", err)
	}

	// Version skew with a recomputed checksum must fail on the version, not
	// the checksum.
	skew := append([]byte(nil), blob...)
	skew[4], skew[5] = 0xff, 0xff
	if _, err := Decode(reseal(skew)); !errors.Is(err, ErrVersion) {
		t.Errorf("version skew: got %v, want ErrVersion", err)
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 'X'
	if _, err := Decode(reseal(bad)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("magic: got %v, want ErrBadMagic", err)
	}
	kind := append([]byte(nil), blob...)
	kind[6] = 9
	if _, err := Decode(reseal(kind)); !errors.Is(err, ErrMalformed) {
		t.Errorf("unknown kind: got %v, want ErrMalformed", err)
	}
}

// reseal recomputes a mutated blob's CRC trailer so the payload check under
// test is reached.
func reseal(blob []byte) []byte {
	out := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(out[len(out)-4:], crc32.ChecksumIEEE(out[:len(out)-4]))
	return out
}

// TestCrashRestartResumesByteIdentically is the tentpole correctness proof:
// a tracker run N rounds straight through equals one run k rounds,
// checkpointed through the wire codec (Capture → Encode → Decode →
// RestoreInto), "crashed", rebuilt from config, restored, and run to N —
// result for result under DeepEqual. Pinned for the plain tracker on clean
// and fault-degraded streams and for a 2×2 sharded field mid-handoff, each
// at two worker counts (the restore path must not reintroduce a
// worker-count dependence).
func TestCrashRestartResumesByteIdentically(t *testing.T) {
	const k = 4
	w := testWorld(t)
	base := core.TrackerConfig{N: 120, M: 5, VMax: 5}
	sharded := base
	sharded.Shards = shard.Grid{Rows: 2, Cols: 2, Halo: 2}
	sharded.InitialPositions = w.initial
	cases := []struct {
		name   string
		cfg    core.TrackerConfig
		masked bool
	}{
		{"plain-clean", base, false},
		{"plain-masked", base, true},
		{"sharded-masked", sharded, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			build := func(workers int) core.StepTracker {
				cfg := tc.cfg
				cfg.Workers = workers
				tr, err := w.sniffer.NewStepTracker(testUsers, cfg, 99)
				if err != nil {
					t.Fatal(err)
				}
				return tr
			}
			ref := build(1)
			want := runRounds(t, ref, w, tc.masked, 0, testRounds)
			for _, workers := range []int{1, 3} {
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					orig := build(workers)
					head := runRounds(t, orig, w, tc.masked, 0, k)
					ck, err := Capture(orig)
					if err != nil {
						t.Fatal(err)
					}
					blob, err := Encode(ck)
					if err != nil {
						t.Fatal(err)
					}
					// The crash: orig is abandoned; everything the resumed
					// process knows crosses through blob.
					decoded, err := Decode(blob)
					if err != nil {
						t.Fatal(err)
					}
					fresh := build(workers)
					if err := decoded.RestoreInto(fresh); err != nil {
						t.Fatal(err)
					}
					if got := fresh.Steps(); got != k {
						t.Fatalf("restored Steps() = %d, want %d", got, k)
					}
					tail := runRounds(t, fresh, w, tc.masked, k, testRounds)
					got := append(append([]smc.StepResult(nil), head...), tail...)
					if !reflect.DeepEqual(got, want) {
						t.Fatal("restored run diverged from the uninterrupted run")
					}
				})
			}
		})
	}
}

// TestRestoreShapeMismatch pins the cross-shape rejections: a sharded blob
// cannot restore into a plain tracker and vice versa.
func TestRestoreShapeMismatch(t *testing.T) {
	w := testWorld(t)
	plain, err := w.sniffer.NewStepTracker(testUsers, core.TrackerConfig{N: 60, M: 5}, 99)
	if err != nil {
		t.Fatal(err)
	}
	field, err := w.sniffer.NewStepTracker(testUsers, core.TrackerConfig{
		N: 60, M: 5, Shards: shard.Grid{Rows: 2, Cols: 2, Halo: 2},
	}, 99)
	if err != nil {
		t.Fatal(err)
	}
	ckPlain, err := Capture(plain)
	if err != nil {
		t.Fatal(err)
	}
	ckField, err := Capture(field)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckPlain.RestoreInto(field); err == nil {
		t.Error("plain checkpoint restored into a sharded field")
	}
	if err := ckField.RestoreInto(plain); err == nil {
		t.Error("sharded checkpoint restored into a plain tracker")
	}
}

// TestCheckpointGoldenCompat is the format-compatibility gate: the v1 blobs
// under testdata/ must decode into exactly the synthesized states, forever.
// A change that alters the wire layout fails here and requires a version
// bump plus a new golden (go test ./internal/serve -run Golden -update).
func TestCheckpointGoldenCompat(t *testing.T) {
	tr := synthTrackerState()
	fd := synthFieldState()
	for _, tc := range []struct {
		file string
		c    Checkpoint
	}{
		{"checkpoint_v1_smc.golden", Checkpoint{SMC: &tr}},
		{"checkpoint_v1_field.golden", Checkpoint{Field: &fd}},
	} {
		t.Run(tc.file, func(t *testing.T) {
			path := filepath.Join("testdata", tc.file)
			if *update {
				blob, err := Encode(tc.c)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, blob, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update after a deliberate format change)", err)
			}
			got, err := Decode(blob)
			if err != nil {
				t.Fatalf("golden blob no longer decodes: %v", err)
			}
			if !reflect.DeepEqual(got, tc.c) {
				t.Fatal("golden blob decodes to a different state: wire format drifted without a version bump")
			}
			again, err := Encode(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again, blob) {
				t.Fatal("current encoder no longer reproduces the golden bytes")
			}
		})
	}
}
