// Package serve hosts the tracking pipeline as a resident multi-tenant
// streaming service: each tenant owns a tracker (plain smc.Tracker or
// sharded shard.Field) fed by a bounded ingestion queue with explicit
// backpressure, stepped by a dedicated goroutine, and observable through
// the internal/obs registry. This file is the tenant state checkpoint
// codec: a versioned, checksummed binary encoding of the tracker state
// surfaces (smc.TrackerState, shard.FieldState) so a process restart or a
// tenant migration resumes mid-track byte-identically.
//
// Wire format (all integers little-endian):
//
//	[0:4)   magic "FXCP"
//	[4:6)   format version (currently 1)
//	[6]     kind: 1 = plain SMC tracker, 2 = sharded field
//	[7:n-4) payload (kind-specific, see encode{Tracker,Field}State)
//	[n-4:n) IEEE CRC-32 over bytes [0, n-4)
//
// Versioning rules (DESIGN.md §6.8): the version covers the entire payload
// layout — any field added, removed, or reordered bumps it. A decoder only
// accepts versions it was built to read and must keep reading every version
// it ever shipped (the golden-blob compatibility gate in CI enforces that
// v1 blobs restore forever). Corrupt input of any shape — truncated,
// bit-flipped, version-skewed, oversized counts — yields a typed error,
// never a panic and never a silently wrong state: the trailing CRC rejects
// every mutation, and the fuzz battery (fuzz_test.go) hammers the parser
// with hostile bytes.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"fluxtrack/internal/core"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/shard"
	"fluxtrack/internal/smc"
)

// Version is the current checkpoint format version.
const Version = 1

// checkpointMagic brands every checkpoint blob.
var checkpointMagic = [4]byte{'F', 'X', 'C', 'P'}

const (
	kindSMC   = 1 // payload is one smc.TrackerState
	kindShard = 2 // payload is one shard.FieldState
)

// Typed decode failures; test with errors.Is. Every error a decoder can
// return wraps exactly one of these.
var (
	// ErrBadMagic: the blob does not start with the checkpoint magic.
	ErrBadMagic = errors.New("serve: checkpoint: bad magic")
	// ErrVersion: the format version is not one this decoder reads.
	ErrVersion = errors.New("serve: checkpoint: unsupported version")
	// ErrTruncated: the blob ends before its structure does.
	ErrTruncated = errors.New("serve: checkpoint: truncated")
	// ErrChecksum: the trailing CRC-32 does not match the content.
	ErrChecksum = errors.New("serve: checkpoint: checksum mismatch")
	// ErrMalformed: framing and checksum pass but the payload violates a
	// structural invariant (impossible counts, trailing garbage, unknown
	// kind). A well-formed encoder never produces this.
	ErrMalformed = errors.New("serve: checkpoint: malformed")
)

// Checkpoint is a decoded tenant state: exactly one of the two fields is
// set, mirroring the two tracker shapes a tenant can host.
type Checkpoint struct {
	SMC   *smc.TrackerState
	Field *shard.FieldState
}

// Capture exports the resumable state of a StepTracker into a Checkpoint.
// It never mutates the tracker.
func Capture(st core.StepTracker) (Checkpoint, error) {
	switch tr := st.(type) {
	case *smc.Tracker:
		s := tr.ExportState()
		return Checkpoint{SMC: &s}, nil
	case *shard.Field:
		s := tr.ExportState()
		return Checkpoint{Field: &s}, nil
	default:
		return Checkpoint{}, fmt.Errorf("serve: cannot checkpoint tracker type %T", st)
	}
}

// RestoreInto replays the checkpoint into a tracker of the matching shape,
// built from the same configuration and seed the state was exported under.
func (c Checkpoint) RestoreInto(st core.StepTracker) error {
	switch tr := st.(type) {
	case *smc.Tracker:
		if c.SMC == nil {
			return fmt.Errorf("%w: sharded checkpoint restored into a plain tracker", ErrMalformed)
		}
		return tr.RestoreState(*c.SMC)
	case *shard.Field:
		if c.Field == nil {
			return fmt.Errorf("%w: plain checkpoint restored into a sharded field", ErrMalformed)
		}
		return tr.RestoreState(*c.Field)
	default:
		return fmt.Errorf("serve: cannot restore into tracker type %T", st)
	}
}

// Encode serializes the checkpoint into the versioned binary format. The
// encoding is canonical: equal states produce identical bytes, and every
// blob Decode accepts re-encodes to exactly itself (the fuzz round-trip
// target pins this).
func Encode(c Checkpoint) ([]byte, error) {
	if (c.SMC == nil) == (c.Field == nil) {
		return nil, errors.New("serve: checkpoint must carry exactly one tracker state")
	}
	var e encoder
	e.buf = append(e.buf, checkpointMagic[:]...)
	e.u16(Version)
	if c.SMC != nil {
		e.u8(kindSMC)
		e.trackerState(*c.SMC)
	} else {
		e.u8(kindShard)
		e.fieldState(*c.Field)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(e.buf))
	return append(e.buf, crc[:]...), nil
}

// Decode parses a checkpoint blob, rejecting every malformed input with a
// typed error. It never panics on hostile bytes.
func Decode(data []byte) (Checkpoint, error) {
	const overhead = 4 + 2 + 1 + 4 // magic + version + kind + crc
	if len(data) < overhead {
		return Checkpoint{}, fmt.Errorf("%w: %d bytes is below the %d-byte envelope", ErrTruncated, len(data), overhead)
	}
	if [4]byte(data[:4]) != checkpointMagic {
		return Checkpoint{}, fmt.Errorf("%w: got % x", ErrBadMagic, data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != Version {
		return Checkpoint{}, fmt.Errorf("%w: blob is v%d, decoder reads v%d", ErrVersion, v, Version)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return Checkpoint{}, fmt.Errorf("%w: computed %#x, stored %#x", ErrChecksum, got, want)
	}
	d := decoder{buf: body[7:]}
	kind := body[6]
	var c Checkpoint
	switch kind {
	case kindSMC:
		st, err := d.trackerState()
		if err != nil {
			return Checkpoint{}, err
		}
		c.SMC = &st
	case kindShard:
		st, err := d.fieldState()
		if err != nil {
			return Checkpoint{}, err
		}
		c.Field = &st
	default:
		return Checkpoint{}, fmt.Errorf("%w: unknown kind %d", ErrMalformed, kind)
	}
	if len(d.buf) != d.pos {
		return Checkpoint{}, fmt.Errorf("%w: %d trailing payload bytes", ErrMalformed, len(d.buf)-d.pos)
	}
	return c, nil
}

// ---- encoder ----

type encoder struct{ buf []byte }

func (e *encoder) u8(v uint8)    { e.buf = append(e.buf, v) }
func (e *encoder) u16(v uint16)  { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32)  { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *encoder) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) point(p geom.Point) { e.f64(p.X); e.f64(p.Y) }

func (e *encoder) points(ps []geom.Point) {
	e.u32(uint32(len(ps)))
	for _, p := range ps {
		e.point(p)
	}
}

func (e *encoder) floats(fs []float64) {
	e.u32(uint32(len(fs)))
	for _, f := range fs {
		e.f64(f)
	}
}

func (e *encoder) trackerState(st smc.TrackerState) {
	e.u64(st.Seed)
	e.u64(uint64(st.NumUsers))
	e.u64(uint64(st.Steps))
	e.u32(uint32(len(st.Users)))
	for _, uc := range st.Users {
		e.u32(uint32(uc.User))
		e.u64(uc.RNG.Cursor)
		e.f64(uc.RNG.Spare)
		e.boolean(uc.RNG.HasSpare)
		s := uc.Snapshot
		e.boolean(s.Initialized)
		e.f64(s.LastUpdate)
		e.f64(s.Velocity.DX)
		e.f64(s.Velocity.DY)
		e.boolean(s.HasVelocity)
		e.point(s.PrevMean)
		e.boolean(s.HasPrevMean)
		e.points(s.Samples)
		e.floats(s.Weights)
	}
}

func (e *encoder) estimate(est smc.Estimate) {
	e.point(est.Mean)
	e.point(est.Best)
	e.f64(est.Stretch)
	e.boolean(est.Active)
	e.points(est.Samples)
	e.floats(est.Weights)
}

func (e *encoder) fieldState(st shard.FieldState) {
	e.u64(st.Seed)
	e.u64(uint64(st.NumUsers))
	e.u32(uint32(st.Tiles))
	e.u64(uint64(st.Steps))
	e.u64(uint64(st.Handoffs))
	e.u64(uint64(st.Spills))
	e.u64(uint64(st.LastMax))
	e.f64(st.LastMean)
	for _, o := range st.Owner {
		e.u32(uint32(o))
	}
	for _, est := range st.LastEst {
		e.estimate(est)
	}
	for _, ts := range st.Trackers {
		e.trackerState(ts)
	}
}

// ---- decoder ----

// decoder reads the payload with strict bounds checks: every primitive read
// verifies the remaining length, and every element count is validated
// against the bytes that could possibly back it before any slice is
// allocated, so hostile counts can neither panic nor balloon memory.
type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) remaining() int { return len(d.buf) - d.pos }

func (d *decoder) need(n int) error {
	if d.remaining() < n {
		return fmt.Errorf("%w: payload needs %d more bytes, has %d", ErrTruncated, n, d.remaining())
	}
	return nil
}

func (d *decoder) u8() (uint8, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	v := d.buf[d.pos]
	d.pos++
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return v, nil
}

func (d *decoder) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

func (d *decoder) boolean() (bool, error) {
	v, err := d.u8()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("%w: boolean byte %d", ErrMalformed, v)
}

// nonNegInt decodes a u64 that must fit a non-negative int.
func (d *decoder) nonNegInt(what string) (int, error) {
	v, err := d.u64()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt64/2 {
		return 0, fmt.Errorf("%w: %s %d is implausible", ErrMalformed, what, v)
	}
	return int(v), nil
}

// count decodes an element count and verifies the remaining payload can
// back it at elemSize bytes apiece.
func (d *decoder) count(what string, elemSize int) (int, error) {
	v, err := d.u32()
	if err != nil {
		return 0, err
	}
	n := int(v)
	if n > d.remaining()/elemSize {
		return 0, fmt.Errorf("%w: %s count %d, payload has %d bytes",
			ErrTruncated, what, n, d.remaining())
	}
	return n, nil
}

func (d *decoder) point() (geom.Point, error) {
	x, err := d.f64()
	if err != nil {
		return geom.Point{}, err
	}
	y, err := d.f64()
	return geom.Pt(x, y), err
}

func (d *decoder) pointSlice(what string) ([]geom.Point, error) {
	n, err := d.count(what, 16)
	if err != nil || n == 0 {
		return nil, err
	}
	out := make([]geom.Point, n)
	for i := range out {
		if out[i], err = d.point(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (d *decoder) floatSlice(what string) ([]float64, error) {
	n, err := d.count(what, 8)
	if err != nil || n == 0 {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		if out[i], err = d.f64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (d *decoder) trackerState() (smc.TrackerState, error) {
	var st smc.TrackerState
	var err error
	if st.Seed, err = d.u64(); err != nil {
		return st, err
	}
	if st.NumUsers, err = d.nonNegInt("user population"); err != nil {
		return st, err
	}
	if st.Steps, err = d.nonNegInt("step count"); err != nil {
		return st, err
	}
	// One user costs at least 47 payload bytes (index + RNG + flags +
	// bookkeeping + two empty slice counts).
	n, err := d.count("tracker users", 47)
	if err != nil {
		return st, err
	}
	if n > st.NumUsers {
		return st, fmt.Errorf("%w: %d user slots for a population of %d", ErrMalformed, n, st.NumUsers)
	}
	prev := -1
	for i := 0; i < n; i++ {
		var uc smc.UserCheckpoint
		u, err := d.u32()
		if err != nil {
			return st, err
		}
		uc.User = int(u)
		if uc.User <= prev || uc.User >= st.NumUsers {
			return st, fmt.Errorf("%w: user index %d after %d (population %d)", ErrMalformed, uc.User, prev, st.NumUsers)
		}
		prev = uc.User
		if uc.RNG.Cursor, err = d.u64(); err != nil {
			return st, err
		}
		if uc.RNG.Spare, err = d.f64(); err != nil {
			return st, err
		}
		if uc.RNG.HasSpare, err = d.boolean(); err != nil {
			return st, err
		}
		s := &uc.Snapshot
		if s.Initialized, err = d.boolean(); err != nil {
			return st, err
		}
		if s.LastUpdate, err = d.f64(); err != nil {
			return st, err
		}
		if s.Velocity.DX, err = d.f64(); err != nil {
			return st, err
		}
		if s.Velocity.DY, err = d.f64(); err != nil {
			return st, err
		}
		if s.HasVelocity, err = d.boolean(); err != nil {
			return st, err
		}
		if s.PrevMean, err = d.point(); err != nil {
			return st, err
		}
		if s.HasPrevMean, err = d.boolean(); err != nil {
			return st, err
		}
		if s.Samples, err = d.pointSlice("user samples"); err != nil {
			return st, err
		}
		if s.Weights, err = d.floatSlice("user weights"); err != nil {
			return st, err
		}
		if s.Initialized && (len(s.Samples) == 0 || len(s.Samples) != len(s.Weights)) {
			return st, fmt.Errorf("%w: initialized user %d with %d samples, %d weights",
				ErrMalformed, uc.User, len(s.Samples), len(s.Weights))
		}
		st.Users = append(st.Users, uc)
	}
	return st, nil
}

func (d *decoder) estimate() (smc.Estimate, error) {
	var est smc.Estimate
	var err error
	if est.Mean, err = d.point(); err != nil {
		return est, err
	}
	if est.Best, err = d.point(); err != nil {
		return est, err
	}
	if est.Stretch, err = d.f64(); err != nil {
		return est, err
	}
	if est.Active, err = d.boolean(); err != nil {
		return est, err
	}
	if est.Samples, err = d.pointSlice("estimate samples"); err != nil {
		return est, err
	}
	est.Weights, err = d.floatSlice("estimate weights")
	return est, err
}

func (d *decoder) fieldState() (shard.FieldState, error) {
	var st shard.FieldState
	var err error
	if st.Seed, err = d.u64(); err != nil {
		return st, err
	}
	if st.NumUsers, err = d.nonNegInt("field population"); err != nil {
		return st, err
	}
	tiles, err := d.u32()
	if err != nil {
		return st, err
	}
	st.Tiles = int(tiles)
	if st.Steps, err = d.nonNegInt("field steps"); err != nil {
		return st, err
	}
	if st.Handoffs, err = d.nonNegInt("handoffs"); err != nil {
		return st, err
	}
	if st.Spills, err = d.nonNegInt("spills"); err != nil {
		return st, err
	}
	if st.LastMax, err = d.nonNegInt("imbalance max"); err != nil {
		return st, err
	}
	if st.LastMean, err = d.f64(); err != nil {
		return st, err
	}
	// Owner table: NumUsers u32 entries. Divide rather than multiply so a
	// hostile population count cannot overflow the guard into an allocation.
	if st.NumUsers > d.remaining()/4 {
		return st, fmt.Errorf("%w: owner table of %d entries, payload has %d bytes",
			ErrTruncated, st.NumUsers, d.remaining())
	}
	st.Owner = make([]int, st.NumUsers)
	for j := range st.Owner {
		o, err := d.u32()
		if err != nil {
			return st, err
		}
		if int(o) >= st.Tiles {
			return st, fmt.Errorf("%w: owner[%d] = %d with %d tiles", ErrMalformed, j, o, st.Tiles)
		}
		st.Owner[j] = int(o)
	}
	st.LastEst = make([]smc.Estimate, 0, st.NumUsers)
	for j := 0; j < st.NumUsers; j++ {
		est, err := d.estimate()
		if err != nil {
			return st, err
		}
		st.LastEst = append(st.LastEst, est)
	}
	// One tile tracker costs at least 28 payload bytes (seed + population +
	// steps + empty user count).
	if st.Tiles > d.remaining()/28 {
		return st, fmt.Errorf("%w: %d tile trackers, payload has %d bytes",
			ErrTruncated, st.Tiles, d.remaining())
	}
	for i := 0; i < st.Tiles; i++ {
		ts, err := d.trackerState()
		if err != nil {
			return st, err
		}
		st.Trackers = append(st.Trackers, ts)
	}
	return st, nil
}
