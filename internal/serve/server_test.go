package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"fluxtrack/internal/core"
)

// startServer builds a serving core over a modest world plus an httptest
// front end. Every server built here shares Config (seed 77), so blobs and
// observation streams are portable across instances — exactly the
// crash-restart / migration situation the service exists for.
func startServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{
		Scenario:        core.ScenarioConfig{Nodes: 400},
		SnifferFraction: 0.1,
		Seed:            77,
		DefaultQueue:    16,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func createTenant(t *testing.T, base, id string, cfg TenantConfig) {
	t.Helper()
	resp, body := doJSON(t, http.MethodPost, base+"/v1/tenant/"+id, cfg)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %s: %d %s", id, resp.StatusCode, body)
	}
}

// observeAll streams the given rounds into a tenant, retrying on 429 — the
// client half of the backpressure protocol.
func observeAll(t *testing.T, base, id string, obs []Observation) {
	t.Helper()
	for i, o := range obs {
		for {
			resp, body := doJSON(t, http.MethodPost, base+"/v1/tenant/"+id+"/observe", o)
			if resp.StatusCode == http.StatusAccepted {
				break
			}
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("observe %s round %d: %d %s", id, i, resp.StatusCode, body)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("429 without Retry-After")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// waitRounds polls until the tenant has stepped through `rounds` rounds
// with an empty queue, returning the final estimate.
func waitRounds(t *testing.T, base, id string, rounds int) EstimateResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body := doJSON(t, http.MethodGet, base+"/v1/tenant/"+id+"/estimate", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate %s: %d %s", id, resp.StatusCode, body)
		}
		var est EstimateResponse
		if err := json.Unmarshal(body, &est); err != nil {
			t.Fatal(err)
		}
		if est.StepError != "" {
			t.Fatalf("tenant %s step error: %s", id, est.StepError)
		}
		if est.Rounds >= rounds && est.Pending == 0 {
			return est
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant %s stuck at %d/%d rounds (%d pending)", id, est.Rounds, rounds, est.Pending)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// cleanObservations converts the world's clean stream into request bodies.
func cleanObservations(w *testWorldT) []Observation {
	out := make([]Observation, len(w.clean))
	for r, readings := range w.clean {
		out[r] = Observation{T: float64(r + 1), Readings: readings}
	}
	return out
}

func maskedObservations(w *testWorldT) []Observation {
	out := make([]Observation, len(w.deg))
	for r, d := range w.deg {
		out[r] = Observation{T: float64(r + 1), Readings: d.Readings, Present: d.Present, Age: d.Age}
	}
	return out
}

var (
	serveWorldOnce sync.Once
	serveWorldVal  *testWorldT
	serveWorldErr  error
)

// serveWorld builds the observation streams against a server's own vantage.
// Every server in this file shares Config (seed 77), so one stream set
// serves them all and is generated once.
func serveWorld(t *testing.T, s *Server) *testWorldT {
	t.Helper()
	serveWorldOnce.Do(func() {
		serveWorldVal, serveWorldErr = buildTestWorldFor(s.Scenario(), s.Sniffer())
	})
	if serveWorldErr != nil {
		t.Fatal(serveWorldErr)
	}
	return serveWorldVal
}

// TestServeTwoTenantsIsolated is the e2e acceptance test: two tenants with
// different tracker shapes stream concurrently over HTTP, and each produces
// exactly the estimates it produces when running alone — per-tenant
// isolation down to the float bits. Run under -race in CI.
func TestServeTwoTenantsIsolated(t *testing.T) {
	cfgA := TenantConfig{Users: testUsers, Seed: 5, Samples: 120, TrackM: 5, VMax: 5}
	cfgB := TenantConfig{Users: testUsers, Seed: 9, Samples: 100, TrackM: 5, VMax: 5, Shards: "2x2", Halo: 2}

	// Solo baselines, each on its own server instance.
	soloSrv, soloHS := startServer(t)
	w := serveWorld(t, soloSrv)
	createTenant(t, soloHS.URL, "alpha", cfgA)
	createTenant(t, soloHS.URL, "beta", cfgB)
	observeAll(t, soloHS.URL, "alpha", cleanObservations(w))
	soloA := waitRounds(t, soloHS.URL, "alpha", testRounds)
	observeAll(t, soloHS.URL, "beta", maskedObservations(w))
	soloB := waitRounds(t, soloHS.URL, "beta", testRounds)
	if len(soloA.Users) != testUsers || len(soloB.Users) != testUsers {
		t.Fatalf("solo runs returned %d/%d user estimates", len(soloA.Users), len(soloB.Users))
	}

	// The same two tenants, driven concurrently against one server.
	_, hs := startServer(t)
	createTenant(t, hs.URL, "alpha", cfgA)
	createTenant(t, hs.URL, "beta", cfgB)
	done := make(chan struct{})
	go func() {
		defer close(done)
		observeAll(t, hs.URL, "beta", maskedObservations(w))
	}()
	observeAll(t, hs.URL, "alpha", cleanObservations(w))
	<-done
	concA := waitRounds(t, hs.URL, "alpha", testRounds)
	concB := waitRounds(t, hs.URL, "beta", testRounds)

	if !reflect.DeepEqual(concA.Users, soloA.Users) {
		t.Error("tenant alpha's estimates changed when beta shared the server")
	}
	if !reflect.DeepEqual(concB.Users, soloB.Users) {
		t.Error("tenant beta's estimates changed when alpha shared the server")
	}
	if concA.Solves != soloA.Solves || concA.Iters != soloA.Iters {
		t.Error("tenant alpha's work counters changed when beta shared the server")
	}
}

// TestServeBackpressureDeterministic pins the 429 contract without timing
// luck: a control op parks the stepping goroutine, so exactly Queue
// observations are accepted and the Queue+1-th is rejected with
// Retry-After.
func TestServeBackpressureDeterministic(t *testing.T) {
	const queueDepth = 3
	srv, hs := startServer(t)
	w := serveWorld(t, srv)
	createTenant(t, hs.URL, "bp", TenantConfig{
		Users: testUsers, Seed: 5, Samples: 60, TrackM: 5, Queue: queueDepth,
	})

	srv.mu.Lock()
	tn := srv.tenants["bp"]
	srv.mu.Unlock()
	if tn == nil {
		t.Fatal("tenant not registered")
	}
	entered := make(chan struct{})
	gate := make(chan struct{})
	tn.queue <- op{ctrl: func() { close(entered); <-gate }}
	<-entered // stepping goroutine is parked; queue is empty

	o := Observation{T: 1, Readings: w.clean[0]}
	for i := 0; i < queueDepth; i++ {
		resp, body := doJSON(t, http.MethodPost, hs.URL+"/v1/tenant/bp/observe", o)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("observe %d with free queue space: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, _ := doJSON(t, http.MethodPost, hs.URL+"/v1/tenant/bp/observe", o)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("observe into full queue: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}
	close(gate) // unpark; the queued rounds drain
	est := waitRounds(t, hs.URL, "bp", queueDepth)
	if est.Rounds != queueDepth {
		t.Fatalf("drained %d rounds, want %d", est.Rounds, queueDepth)
	}
	// After draining, ingestion accepts again.
	resp, body := doJSON(t, http.MethodPost, hs.URL+"/v1/tenant/bp/observe",
		Observation{T: 4, Readings: w.clean[3]})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("observe after drain: %d %s", resp.StatusCode, body)
	}
	waitRounds(t, hs.URL, "bp", queueDepth+1)
}

// TestServeCheckpointMigration moves a mid-track tenant across server
// processes through the HTTP checkpoint/restore pair and pins that the
// migrated tenant finishes with byte-identical estimates to an unmigrated
// control on the exact same stream.
func TestServeCheckpointMigration(t *testing.T) {
	const k = 4
	cfg := TenantConfig{Users: testUsers, Seed: 5, Samples: 120, TrackM: 5, VMax: 5, Shards: "2x2", Halo: 2}
	srvA, hsA := startServer(t)
	w := serveWorld(t, srvA)
	obs := maskedObservations(w)

	// Control: the full stream on one server.
	createTenant(t, hsA.URL, "control", cfg)
	observeAll(t, hsA.URL, "control", obs)
	want := waitRounds(t, hsA.URL, "control", testRounds)

	// Migrant: k rounds on server A, checkpoint over HTTP, restore into a
	// fresh tenant on server B, finish there.
	createTenant(t, hsA.URL, "migrant", cfg)
	observeAll(t, hsA.URL, "migrant", obs[:k])
	waitRounds(t, hsA.URL, "migrant", k)
	resp, blob := doJSON(t, http.MethodPost, hsA.URL+"/v1/tenant/migrant/checkpoint", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d %s", resp.StatusCode, blob)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("checkpoint content type %q", ct)
	}

	_, hsB := startServer(t)
	createTenant(t, hsB.URL, "migrant", cfg)
	req, err := http.NewRequest(http.MethodPost, hsB.URL+"/v1/tenant/migrant/restore", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	restoreResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(restoreResp.Body)
	restoreResp.Body.Close()
	if restoreResp.StatusCode != http.StatusOK {
		t.Fatalf("restore: %d %s", restoreResp.StatusCode, body)
	}
	observeAll(t, hsB.URL, "migrant", obs[k:])
	got := waitRounds(t, hsB.URL, "migrant", testRounds)

	if !reflect.DeepEqual(got.Users, want.Users) {
		t.Error("migrated tenant's estimates diverged from the unmigrated control")
	}
	if got.Rounds != want.Rounds || got.Time != want.Time || got.Objective != want.Objective {
		t.Errorf("migrated round state (%d, %v, %v) != control (%d, %v, %v)",
			got.Rounds, got.Time, got.Objective, want.Rounds, want.Time, want.Objective)
	}
}

// TestServeAPIErrors pins the API's failure surface.
func TestServeAPIErrors(t *testing.T) {
	srv, hs := startServer(t)
	w := serveWorld(t, srv)
	cfg := TenantConfig{Users: testUsers, Seed: 5, Samples: 60, TrackM: 5}
	createTenant(t, hs.URL, "a", cfg)

	check := func(name string, got *http.Response, want int) {
		t.Helper()
		if got.StatusCode != want {
			t.Errorf("%s: status %d, want %d", name, got.StatusCode, want)
		}
	}
	resp, _ := doJSON(t, http.MethodPost, hs.URL+"/v1/tenant/a", cfg)
	check("duplicate create", resp, http.StatusConflict)
	resp, _ = doJSON(t, http.MethodPost, hs.URL+"/v1/tenant/bad id!", cfg)
	check("invalid id", resp, http.StatusBadRequest)
	resp, _ = doJSON(t, http.MethodPost, hs.URL+"/v1/tenant/b", TenantConfig{Users: 0})
	check("zero users", resp, http.StatusBadRequest)
	resp, _ = doJSON(t, http.MethodPost, hs.URL+"/v1/tenant/b", TenantConfig{Users: 1, Shards: "2by2"})
	check("bad shards", resp, http.StatusBadRequest)
	resp, _ = doJSON(t, http.MethodGet, hs.URL+"/v1/tenant/nope/estimate", nil)
	check("unknown tenant", resp, http.StatusNotFound)
	resp, _ = doJSON(t, http.MethodPost, hs.URL+"/v1/tenant/a/observe",
		Observation{T: 1, Readings: []float64{1, 2, 3}})
	check("wrong readings length", resp, http.StatusBadRequest)

	// Corrupt blob → 400 before the stepping goroutine is ever involved.
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/tenant/a/restore", bytes.NewReader([]byte("garbage")))
	rr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	check("corrupt restore", rr, http.StatusBadRequest)

	// A valid blob from a mismatched tenant shape → 409.
	createTenant(t, hs.URL, "sharded", TenantConfig{Users: testUsers, Seed: 5, Samples: 60, TrackM: 5, Shards: "2x2"})
	observeAll(t, hs.URL, "a", []Observation{{T: 1, Readings: w.clean[0]}})
	waitRounds(t, hs.URL, "a", 1)
	resp, blob := doJSON(t, http.MethodPost, hs.URL+"/v1/tenant/a/checkpoint", nil)
	check("checkpoint", resp, http.StatusOK)
	req, _ = http.NewRequest(http.MethodPost, hs.URL+"/v1/tenant/sharded/restore", bytes.NewReader(blob))
	rr, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	check("shape-mismatched restore", rr, http.StatusConflict)

	// Delete then 404.
	resp, _ = doJSON(t, http.MethodDelete, hs.URL+"/v1/tenant/a", nil)
	check("delete", resp, http.StatusNoContent)
	resp, _ = doJSON(t, http.MethodGet, hs.URL+"/v1/tenant/a/estimate", nil)
	check("estimate after delete", resp, http.StatusNotFound)

	// Liveness + metrics endpoints stay up throughout.
	resp, body := doJSON(t, http.MethodGet, hs.URL+"/healthz", nil)
	check("healthz", resp, http.StatusOK)
	var hz map[string]any
	if err := json.Unmarshal(body, &hz); err != nil || hz["ok"] != true {
		t.Errorf("healthz body %s", body)
	}
	resp, body = doJSON(t, http.MethodGet, hs.URL+"/metrics", nil)
	check("metrics", resp, http.StatusOK)
	if !bytes.Contains(body, []byte("serve.rounds.stepped")) {
		t.Errorf("metrics snapshot missing serve counters: %s", body)
	}
}

// TestServeObserveAutoTimestamp: T <= 0 means "next round".
func TestServeObserveAutoTimestamp(t *testing.T) {
	srv, hs := startServer(t)
	w := serveWorld(t, srv)
	createTenant(t, hs.URL, "auto", TenantConfig{Users: testUsers, Seed: 5, Samples: 60, TrackM: 5})
	for r := 0; r < 2; r++ {
		observeAll(t, hs.URL, "auto", []Observation{{Readings: w.clean[r]}})
	}
	est := waitRounds(t, hs.URL, "auto", 2)
	if est.Time != 2 {
		t.Fatalf("auto timestamp produced t=%v after 2 rounds, want 2", est.Time)
	}
}
