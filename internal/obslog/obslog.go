// Package obslog serializes sniffer observation streams so the attack can
// run offline, decoupled from the simulator that produced the measurements
// — the workflow of a real adversary who records passively sniffed traffic
// volumes in the field and fingerprints the users later.
//
// The format is JSON Lines: the first line is a Header (field geometry,
// sniffer positions, model calibration), each following line one timed
// observation vector. The format is stable and documented so captures from
// real deployments can be replayed through the same pipeline.
package obslog

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"fluxtrack/internal/geom"
)

// Header describes a recording: everything the offline attack needs beyond
// the observations themselves.
type Header struct {
	// Field is the deployment region of the sensor network.
	Field geom.Rect `json:"field"`
	// Points are the sniffer positions, in reading order.
	Points []geom.Point `json:"points"`
	// HopLength is the calibrated average hop length r of the network, the
	// constant of the discrete flux model.
	HopLength float64 `json:"hopLength"`
	// Comment is free-form provenance (scenario, date, tool version).
	Comment string `json:"comment,omitempty"`
}

// Entry is one observation: flux readings aligned with Header.Points.
type Entry struct {
	Time     float64   `json:"time"`
	Readings []float64 `json:"readings"`
}

// Writer appends observations to a stream.
type Writer struct {
	enc       *json.Encoder
	bw        *bufio.Writer
	numPoints int
	wroteHdr  bool
}

// NewWriter returns a Writer that emits the header immediately.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if len(h.Points) == 0 {
		return nil, errors.New("obslog: header needs at least one sniffer point")
	}
	if h.HopLength <= 0 {
		return nil, fmt.Errorf("obslog: header hop length must be positive, got %v", h.HopLength)
	}
	bw := bufio.NewWriter(w)
	out := &Writer{enc: json.NewEncoder(bw), bw: bw, numPoints: len(h.Points)}
	if err := out.enc.Encode(h); err != nil {
		return nil, fmt.Errorf("obslog: write header: %w", err)
	}
	out.wroteHdr = true
	return out, nil
}

// Append writes one observation.
func (w *Writer) Append(e Entry) error {
	if len(e.Readings) != w.numPoints {
		return fmt.Errorf("obslog: entry has %d readings, want %d", len(e.Readings), w.numPoints)
	}
	if err := w.enc.Encode(e); err != nil {
		return fmt.Errorf("obslog: write entry: %w", err)
	}
	return nil
}

// Flush flushes buffered output; call it before closing the underlying
// file.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Read parses a complete recording.
func Read(r io.Reader) (Header, []Entry, error) {
	dec := json.NewDecoder(r)
	var h Header
	if err := dec.Decode(&h); err != nil {
		return Header{}, nil, fmt.Errorf("obslog: read header: %w", err)
	}
	if len(h.Points) == 0 {
		return Header{}, nil, errors.New("obslog: header has no sniffer points")
	}
	if h.HopLength <= 0 {
		return Header{}, nil, fmt.Errorf("obslog: header hop length %v invalid", h.HopLength)
	}
	var entries []Entry
	prev := -1.0
	for {
		var e Entry
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return Header{}, nil, fmt.Errorf("obslog: read entry %d: %w", len(entries), err)
		}
		if len(e.Readings) != len(h.Points) {
			return Header{}, nil, fmt.Errorf("obslog: entry %d has %d readings, want %d",
				len(entries), len(e.Readings), len(h.Points))
		}
		if e.Time <= prev {
			return Header{}, nil, fmt.Errorf("obslog: entry %d time %v not increasing (prev %v)",
				len(entries), e.Time, prev)
		}
		prev = e.Time
		entries = append(entries, e)
	}
	return h, entries, nil
}
