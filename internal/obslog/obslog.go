// Package obslog serializes sniffer observation streams so the attack can
// run offline, decoupled from the simulator that produced the measurements
// — the workflow of a real adversary who records passively sniffed traffic
// volumes in the field and fingerprints the users later.
//
// The format is JSON Lines: the first line is a Header (field geometry,
// sniffer positions, model calibration), each following line one timed
// observation vector. The format is stable and documented so captures from
// real deployments can be replayed through the same pipeline.
package obslog

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"fluxtrack/internal/geom"
)

// Header describes a recording: everything the offline attack needs beyond
// the observations themselves.
type Header struct {
	// Field is the deployment region of the sensor network.
	Field geom.Rect `json:"field"`
	// Points are the sniffer positions, in reading order.
	Points []geom.Point `json:"points"`
	// HopLength is the calibrated average hop length r of the network, the
	// constant of the discrete flux model.
	HopLength float64 `json:"hopLength"`
	// Comment is free-form provenance (scenario, date, tool version).
	Comment string `json:"comment,omitempty"`
}

// Entry is one observation: flux readings aligned with Header.Points.
type Entry struct {
	Time     float64   `json:"time"`
	Readings []float64 `json:"readings"`
}

// Writer appends observations to a stream.
type Writer struct {
	enc       *json.Encoder
	bw        *bufio.Writer
	numPoints int
	wroteHdr  bool
}

// NewWriter returns a Writer that emits the header immediately.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if len(h.Points) == 0 {
		return nil, errors.New("obslog: header needs at least one sniffer point")
	}
	if h.HopLength <= 0 {
		return nil, fmt.Errorf("obslog: header hop length must be positive, got %v", h.HopLength)
	}
	bw := bufio.NewWriter(w)
	out := &Writer{enc: json.NewEncoder(bw), bw: bw, numPoints: len(h.Points)}
	if err := out.enc.Encode(h); err != nil {
		return nil, fmt.Errorf("obslog: write header: %w", err)
	}
	out.wroteHdr = true
	return out, nil
}

// Append writes one observation.
func (w *Writer) Append(e Entry) error {
	if len(e.Readings) != w.numPoints {
		return fmt.Errorf("obslog: entry has %d readings, want %d", len(e.Readings), w.numPoints)
	}
	if err := w.enc.Encode(e); err != nil {
		return fmt.Errorf("obslog: write entry: %w", err)
	}
	return nil
}

// Flush flushes buffered output; call it before closing the underlying
// file.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Read parses a complete recording, requiring entry times to be strictly
// increasing — the format a well-behaved Writer produces.
func Read(r io.Reader) (Header, []Entry, error) {
	h, entries, err := read(r)
	if err != nil {
		return Header{}, nil, err
	}
	prev := -1.0
	for i, e := range entries {
		if e.Time <= prev {
			return Header{}, nil, fmt.Errorf("obslog: entry %d time %v not increasing (prev %v)",
				i, e.Time, prev)
		}
		prev = e.Time
	}
	return h, entries, nil
}

// ReadLenient parses a recording whose entries may be out of order or
// duplicated — the shape a capture takes when a lossy or delayed collection
// path reorders reports (§4.E asynchronous updating) or a collector retries
// an upload. Entries are restored to time order with a stable sort, and when
// several entries share one timestamp the last one in file order wins (it is
// the retransmission). Structural errors (bad JSON, misaligned reading
// vectors, invalid header) are still errors: leniency covers ordering, not
// corruption.
func ReadLenient(r io.Reader) (Header, []Entry, error) {
	h, entries, err := read(r)
	if err != nil {
		return Header{}, nil, err
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Time < entries[j].Time })
	// Last-wins dedup: stable sort preserved file order within equal times,
	// so the survivor of each run is the final occurrence.
	out := entries[:0]
	for i, e := range entries {
		if i+1 < len(entries) && entries[i+1].Time == e.Time {
			continue
		}
		out = append(out, e)
	}
	return h, out, nil
}

// read parses the header and raw entry stream without ordering checks.
func read(r io.Reader) (Header, []Entry, error) {
	dec := json.NewDecoder(r)
	var h Header
	if err := dec.Decode(&h); err != nil {
		return Header{}, nil, fmt.Errorf("obslog: read header: %w", err)
	}
	if len(h.Points) == 0 {
		return Header{}, nil, errors.New("obslog: header has no sniffer points")
	}
	if h.HopLength <= 0 {
		return Header{}, nil, fmt.Errorf("obslog: header hop length %v invalid", h.HopLength)
	}
	var entries []Entry
	for {
		var e Entry
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return Header{}, nil, fmt.Errorf("obslog: read entry %d: %w", len(entries), err)
		}
		if len(e.Readings) != len(h.Points) {
			return Header{}, nil, fmt.Errorf("obslog: entry %d has %d readings, want %d",
				len(entries), len(e.Readings), len(h.Points))
		}
		entries = append(entries, e)
	}
	return h, entries, nil
}
