package obslog

import (
	"strings"
	"testing"

	"fluxtrack/internal/geom"
)

func validHeader() Header {
	return Header{
		Field:     geom.Square(30),
		Points:    []geom.Point{geom.Pt(1, 2), geom.Pt(3, 4)},
		HopLength: 1.8,
		Comment:   "test recording",
	}
}

func TestRoundTrip(t *testing.T) {
	var sb strings.Builder
	w, err := NewWriter(&sb, validHeader())
	if err != nil {
		t.Fatal(err)
	}
	entries := []Entry{
		{Time: 1, Readings: []float64{10, 20}},
		{Time: 2.5, Readings: []float64{11, 19}},
	}
	for _, e := range entries {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	h, got, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if h.HopLength != 1.8 || len(h.Points) != 2 || h.Comment != "test recording" {
		t.Errorf("header mismatch: %+v", h)
	}
	if h.Field != geom.Square(30) {
		t.Errorf("field mismatch: %+v", h.Field)
	}
	if len(got) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i].Time != entries[i].Time {
			t.Errorf("entry %d time %v, want %v", i, got[i].Time, entries[i].Time)
		}
		for j := range entries[i].Readings {
			if got[i].Readings[j] != entries[i].Readings[j] {
				t.Errorf("entry %d reading %d mismatch", i, j)
			}
		}
	}
}

func TestNewWriterValidation(t *testing.T) {
	var sb strings.Builder
	if _, err := NewWriter(&sb, Header{HopLength: 1}); err == nil {
		t.Error("header without points must error")
	}
	if _, err := NewWriter(&sb, Header{Points: []geom.Point{{}}}); err == nil {
		t.Error("header without hop length must error")
	}
}

func TestAppendValidation(t *testing.T) {
	var sb strings.Builder
	w, err := NewWriter(&sb, validHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Entry{Time: 1, Readings: []float64{1}}); err == nil {
		t.Error("mismatched reading count must error")
	}
}

func TestReadErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"garbage header", "not json\n"},
		{"no points", `{"field":{"min":{"x":0,"y":0},"max":{"x":30,"y":30}},"points":[],"hopLength":1}` + "\n"},
		{"bad hop length", `{"field":{"min":{"x":0,"y":0},"max":{"x":30,"y":30}},"points":[{"x":1,"y":1}],"hopLength":0}` + "\n"},
		{"reading count mismatch", `{"field":{"min":{"x":0,"y":0},"max":{"x":30,"y":30}},"points":[{"x":1,"y":1}],"hopLength":1}
{"time":1,"readings":[1,2]}
`},
		{"non-increasing time", `{"field":{"min":{"x":0,"y":0},"max":{"x":30,"y":30}},"points":[{"x":1,"y":1}],"hopLength":1}
{"time":2,"readings":[1]}
{"time":2,"readings":[1]}
`},
		{"truncated entry", `{"field":{"min":{"x":0,"y":0},"max":{"x":30,"y":30}},"points":[{"x":1,"y":1}],"hopLength":1}
{"time":1,"readi`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := Read(strings.NewReader(tt.input)); err == nil {
				t.Error("Read accepted invalid input")
			}
		})
	}
}

func TestReadHeaderOnly(t *testing.T) {
	var sb strings.Builder
	w, err := NewWriter(&sb, validHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	h, entries, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 || len(h.Points) != 2 {
		t.Errorf("header-only recording: %d entries, %d points", len(entries), len(h.Points))
	}
}
