package obslog

import (
	"strings"
	"testing"
)

const lenientHeader = `{"field":{"min":{"x":0,"y":0},"max":{"x":30,"y":30}},"points":[{"x":1,"y":1}],"hopLength":1}` + "\n"

// TestReadLenientReordersEntries: a shuffled capture comes back time-sorted,
// while the strict Read rejects it.
func TestReadLenientReordersEntries(t *testing.T) {
	input := lenientHeader +
		`{"time":3,"readings":[30]}
{"time":1,"readings":[10]}
{"time":2,"readings":[20]}
`
	if _, _, err := Read(strings.NewReader(input)); err == nil {
		t.Fatal("strict Read accepted out-of-order capture")
	}
	_, entries, err := ReadLenient(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(entries))
	}
	for i, want := range []float64{1, 2, 3} {
		if entries[i].Time != want {
			t.Errorf("entry %d time %v, want %v", i, entries[i].Time, want)
		}
		if entries[i].Readings[0] != want*10 {
			t.Errorf("entry %d reading %v, want %v (payload moved with its timestamp)",
				i, entries[i].Readings[0], want*10)
		}
	}
}

// TestReadLenientDuplicateLastWins: duplicate round indices keep the last
// occurrence in file order — the retransmission supersedes the original —
// even when the duplicates are interleaved with other rounds.
func TestReadLenientDuplicateLastWins(t *testing.T) {
	input := lenientHeader +
		`{"time":1,"readings":[10]}
{"time":2,"readings":[999]}
{"time":3,"readings":[30]}
{"time":2,"readings":[20]}
{"time":2,"readings":[21]}
`
	_, entries, err := ReadLenient(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3 after dedup", len(entries))
	}
	want := map[float64]float64{1: 10, 2: 21, 3: 30}
	for _, e := range entries {
		if e.Readings[0] != want[e.Time] {
			t.Errorf("time %v kept reading %v, want %v", e.Time, e.Readings[0], want[e.Time])
		}
	}
}

// TestReadLenientMatchesReadOnCleanStream: on a well-formed strictly
// increasing capture the two readers agree exactly.
func TestReadLenientMatchesReadOnCleanStream(t *testing.T) {
	input := lenientHeader +
		`{"time":1,"readings":[10]}
{"time":2.5,"readings":[20]}
{"time":4,"readings":[30]}
`
	hs, strict, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	hl, lenient, err := ReadLenient(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if hs.HopLength != hl.HopLength || len(hs.Points) != len(hl.Points) {
		t.Errorf("headers diverge: %+v vs %+v", hs, hl)
	}
	if len(strict) != len(lenient) {
		t.Fatalf("%d strict vs %d lenient entries", len(strict), len(lenient))
	}
	for i := range strict {
		if strict[i].Time != lenient[i].Time || strict[i].Readings[0] != lenient[i].Readings[0] {
			t.Errorf("entry %d diverges: %+v vs %+v", i, strict[i], lenient[i])
		}
	}
}

// TestReadLenientStillRejectsCorruption: leniency covers ordering only —
// structural damage stays an error.
func TestReadLenientStillRejectsCorruption(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"garbage header", "not json\n"},
		{"reading count mismatch", lenientHeader + `{"time":1,"readings":[1,2]}` + "\n"},
		{"truncated entry", lenientHeader + `{"time":1,"readi`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := ReadLenient(strings.NewReader(tt.input)); err == nil {
				t.Error("ReadLenient accepted structurally invalid input")
			}
		})
	}
}
