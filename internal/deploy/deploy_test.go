package deploy

import (
	"testing"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

func TestGenerateValidation(t *testing.T) {
	src := rng.New(1)
	field := geom.Square(30)
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero nodes", Config{Field: field, N: 0, Kind: UniformRandom}},
		{"negative nodes", Config{Field: field, N: -3, Kind: PerturbedGrid}},
		{"unknown kind", Config{Field: field, N: 10, Kind: Kind(99)}},
		{"degenerate field", Config{Field: geom.Rect{}, N: 10, Kind: UniformRandom}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Generate(tt.cfg, src); err == nil {
				t.Error("Generate accepted invalid config")
			}
		})
	}
}

func TestUniformRandomInField(t *testing.T) {
	src := rng.New(2)
	field := geom.NewRect(geom.Pt(5, 5), geom.Pt(35, 20))
	pts, err := Generate(Config{Field: field, N: 500, Kind: UniformRandom}, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 500 {
		t.Fatalf("got %d points, want 500", len(pts))
	}
	for _, p := range pts {
		if !field.Contains(p) {
			t.Fatalf("point %v outside field %v", p, field)
		}
	}
}

func TestPerturbedGridCountAndContainment(t *testing.T) {
	src := rng.New(3)
	field := geom.Square(30)
	for _, n := range []int{1, 7, 100, 900, 901, 1800} {
		pts, err := Generate(Config{Field: field, N: n, Kind: PerturbedGrid}, src)
		if err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if len(pts) != n {
			t.Fatalf("N=%d: got %d points", n, len(pts))
		}
		for _, p := range pts {
			if !field.Contains(p) {
				t.Fatalf("N=%d: point %v outside field", n, p)
			}
		}
	}
}

func TestPerturbedGridIsSpatiallyUniform(t *testing.T) {
	// Each quadrant of the field should hold roughly a quarter of the nodes.
	src := rng.New(4)
	field := geom.Square(30)
	pts, err := Generate(Config{Field: field, N: 900, Kind: PerturbedGrid}, src)
	if err != nil {
		t.Fatal(err)
	}
	quad := [4]int{}
	for _, p := range pts {
		i := 0
		if p.X > 15 {
			i |= 1
		}
		if p.Y > 15 {
			i |= 2
		}
		quad[i]++
	}
	for i, c := range quad {
		if c < 180 || c > 270 {
			t.Errorf("quadrant %d has %d nodes, want ~225", i, c)
		}
	}
}

func TestPerturbedGridJitterClamped(t *testing.T) {
	src := rng.New(5)
	field := geom.Square(10)
	// Jitter of 5 must clamp to 0.5 and still keep points in-field.
	pts, err := Generate(Config{Field: field, N: 25, Kind: PerturbedGrid, Jitter: 5}, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if !field.Contains(p) {
			t.Fatalf("point %v escaped field with extreme jitter", p)
		}
	}
}

func TestPerturbedGridZeroJitterDefaults(t *testing.T) {
	// Jitter 0 means "default 0.4", so two seeds must differ (perturbation
	// actually happens).
	field := geom.Square(30)
	a, err := Generate(Config{Field: field, N: 100, Kind: PerturbedGrid}, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Field: field, N: 100, Kind: PerturbedGrid}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 5 {
		t.Errorf("%d/100 positions identical across seeds; perturbation missing?", same)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	field := geom.Square(30)
	for _, kind := range []Kind{PerturbedGrid, UniformRandom} {
		a, err := Generate(Config{Field: field, N: 200, Kind: kind}, rng.New(77))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(Config{Field: field, N: 200, Kind: kind}, rng.New(77))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: position %d differs across equal seeds", kind, i)
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if PerturbedGrid.String() != "perturbed-grid" {
		t.Errorf("PerturbedGrid.String() = %q", PerturbedGrid.String())
	}
	if UniformRandom.String() != "uniform-random" {
		t.Errorf("UniformRandom.String() = %q", UniformRandom.String())
	}
	if Kind(42).String() == "" {
		t.Error("unknown kind must still render")
	}
}
