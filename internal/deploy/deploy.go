// Package deploy generates sensor-node deployments over a rectangular field.
//
// The paper evaluates two layouts (§5.A, §5.C): "perturbed grids" — nodes on
// a regular grid, each jittered inside its cell, following Bruck, Gao and
// Jiang (MobiCom'05) — representing regular conditions, and purely uniform
// random placement representing high variability.
package deploy

import (
	"fmt"
	"math"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

// Kind identifies a deployment strategy.
type Kind int

const (
	// PerturbedGrid places one node per grid cell, jittered uniformly
	// within a fraction of the cell around the cell center.
	PerturbedGrid Kind = iota + 1
	// UniformRandom places nodes independently and uniformly in the field.
	UniformRandom
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case PerturbedGrid:
		return "perturbed-grid"
	case UniformRandom:
		return "uniform-random"
	default:
		return fmt.Sprintf("deploy.Kind(%d)", int(k))
	}
}

// Config describes a deployment request.
type Config struct {
	Field geom.Rect // the deployment region
	N     int       // number of nodes
	Kind  Kind      // layout strategy
	// Jitter is the perturbation amplitude for PerturbedGrid as a fraction
	// of the cell size, in [0, 0.5]. Zero means a default of 0.4 (strong
	// perturbation, as in the paper's perturbed grids); values are clamped.
	Jitter float64
}

// Generate places nodes according to cfg using the randomness of src.
// The returned positions always lie inside cfg.Field.
func Generate(cfg Config, src *rng.Source) ([]geom.Point, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("deploy: need positive node count, got %d", cfg.N)
	}
	if cfg.Field.Width() <= 0 || cfg.Field.Height() <= 0 {
		return nil, fmt.Errorf("deploy: degenerate field %v", cfg.Field)
	}
	switch cfg.Kind {
	case PerturbedGrid:
		return perturbedGrid(cfg, src), nil
	case UniformRandom:
		return uniformRandom(cfg, src), nil
	default:
		return nil, fmt.Errorf("deploy: unknown kind %v", cfg.Kind)
	}
}

func uniformRandom(cfg Config, src *rng.Source) []geom.Point {
	pts := make([]geom.Point, cfg.N)
	for i := range pts {
		pts[i] = src.InRect(cfg.Field)
	}
	return pts
}

// perturbedGrid chooses grid dimensions whose product covers N, assigns one
// node per cell in row-major order, and jitters each node around its cell
// center. When the grid has more cells than N, a random subset of cells is
// left empty so the density stays spatially uniform.
func perturbedGrid(cfg Config, src *rng.Source) []geom.Point {
	jitter := cfg.Jitter
	if jitter == 0 {
		jitter = 0.4
	}
	jitter = math.Min(0.5, math.Max(0, jitter))

	w, h := cfg.Field.Width(), cfg.Field.Height()
	// Pick cols/rows proportional to the aspect ratio.
	cols := int(math.Ceil(math.Sqrt(float64(cfg.N) * w / h)))
	if cols < 1 {
		cols = 1
	}
	rows := (cfg.N + cols - 1) / cols
	total := cols * rows

	// Which cells hold nodes: all of them when total == N, otherwise a
	// random subset of size N.
	occupied := make([]bool, total)
	if total == cfg.N {
		for i := range occupied {
			occupied[i] = true
		}
	} else {
		for _, idx := range src.SampleK(total, cfg.N) {
			occupied[idx] = true
		}
	}

	cw, ch := w/float64(cols), h/float64(rows)
	pts := make([]geom.Point, 0, cfg.N)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if !occupied[r*cols+c] {
				continue
			}
			cx := cfg.Field.Min.X + (float64(c)+0.5)*cw
			cy := cfg.Field.Min.Y + (float64(r)+0.5)*ch
			p := geom.Pt(
				cx+src.Uniform(-jitter, jitter)*cw,
				cy+src.Uniform(-jitter, jitter)*ch,
			)
			pts = append(pts, cfg.Field.Clamp(p))
		}
	}
	return pts
}
