// Package sim is a packet-level discrete-event simulator for the data
// collections the paper assumes (§3.A). Where internal/traffic computes the
// fluid per-node flux (stretch × subtree size), this package simulates the
// individual packet transmissions of each collection wave and lets a
// passive sniffer count the packets it physically overhears inside an
// observation window ΔT — the measurement process of the real attack.
//
// A collection wave flows leaf-to-root: nodes at the deepest hop ring
// transmit first, each ring's transmissions spread uniformly over one
// hop-latency slot with per-packet jitter. A node's packet count is
// ceil(relayed data units / packet capacity), so the fluid flux is
// recovered in expectation and the rounding, truncated-window, and
// neighborhood-aggregation effects of real sniffing all emerge naturally.
package sim

import (
	"fmt"
	"sort"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/network"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/routing"
)

// Config configures a Simulator.
type Config struct {
	Net *network.Network
	// PacketCapacity is the data units one packet carries (default 1).
	PacketCapacity float64
	// HopLatency is the time one hop ring needs to drain its packets
	// (default 0.05 time units); a wave over H hops lasts H*HopLatency.
	HopLatency float64
	// Aggregated switches to TAG-style in-network aggregation: every node
	// transmits exactly one (aggregate) packet per collection regardless
	// of its subtree, flattening the flux fingerprint. Exists for the
	// aggregation-defense experiment.
	Aggregated bool
}

// Packet is one recorded transmission.
type Packet struct {
	Time float64 // transmission time
	Node int32   // transmitting node
}

// Simulator schedules collection waves and records every transmission.
type Simulator struct {
	cfg   Config
	trees map[int]*routing.Tree
	// packets holds all recorded transmissions sorted by time once
	// finalized; appends mark the log dirty.
	packets []Packet
	sorted  bool
}

// New returns a Simulator over the network.
func New(cfg Config) (*Simulator, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("sim: nil network")
	}
	if cfg.PacketCapacity <= 0 {
		cfg.PacketCapacity = 1
	}
	if cfg.HopLatency <= 0 {
		cfg.HopLatency = 0.05
	}
	return &Simulator{cfg: cfg, trees: make(map[int]*routing.Tree)}, nil
}

// Collect schedules one data collection: a user at pos with the given
// traffic stretch initiates a wave at time t. Every transmission of the
// wave is recorded.
func (s *Simulator) Collect(pos geom.Point, stretch, t float64, src *rng.Source) error {
	if !s.cfg.Net.Field().Contains(pos) {
		return fmt.Errorf("sim: collection origin %v outside the field", pos)
	}
	if stretch <= 0 {
		return fmt.Errorf("sim: stretch must be positive, got %v", stretch)
	}
	sink := s.cfg.Net.Nearest(pos)
	tree, ok := s.trees[sink]
	if !ok {
		var err error
		tree, err = routing.Build(s.cfg.Net, sink)
		if err != nil {
			return fmt.Errorf("sim: tree: %w", err)
		}
		s.trees[sink] = tree
	}

	maxHop := 0
	for _, h := range tree.Hops {
		if h > maxHop {
			maxHop = h
		}
	}
	for i, h := range tree.Hops {
		if h < 0 {
			continue // unreachable node: no participation
		}
		n := s.packetCount(tree.SubtreeSize[i], stretch)
		// Ring h transmits in slot (maxHop - h): leaves first, sink's ring
		// last. Packets spread uniformly inside the slot.
		slotStart := t + float64(maxHop-h)*s.cfg.HopLatency
		for p := 0; p < n; p++ {
			s.packets = append(s.packets, Packet{
				Time: slotStart + src.Uniform(0, s.cfg.HopLatency),
				Node: int32(i),
			})
		}
	}
	s.sorted = false
	return nil
}

// packetCount returns how many packets a node with the given subtree size
// transmits for one collection.
func (s *Simulator) packetCount(subtree int, stretch float64) int {
	if subtree <= 0 {
		return 0
	}
	if s.cfg.Aggregated {
		return 1 // TAG-style: one aggregate packet regardless of subtree
	}
	units := stretch * float64(subtree)
	n := int(units / s.cfg.PacketCapacity)
	if float64(n)*s.cfg.PacketCapacity < units {
		n++
	}
	return n
}

// WaveDuration returns how long one full collection wave lasts on this
// network (worst case over cached trees; at least one Collect must have
// happened).
func (s *Simulator) WaveDuration() float64 {
	maxHop := 0
	for _, tree := range s.trees {
		for _, h := range tree.Hops {
			if h > maxHop {
				maxHop = h
			}
		}
	}
	return float64(maxHop+1) * s.cfg.HopLatency
}

// Packets returns all recorded transmissions sorted by time. The returned
// slice is shared; callers must not modify it.
func (s *Simulator) Packets() []Packet {
	s.finalize()
	return s.packets
}

func (s *Simulator) finalize() {
	if s.sorted {
		return
	}
	sort.Slice(s.packets, func(i, j int) bool { return s.packets[i].Time < s.packets[j].Time })
	s.sorted = true
}

// CountTransmissions returns how many packets node sent in [from, to).
func (s *Simulator) CountTransmissions(node int, from, to float64) int {
	s.finalize()
	count := 0
	for _, p := range s.packets {
		if p.Time >= to {
			break
		}
		if p.Time >= from && int(p.Node) == node {
			count++
		}
	}
	return count
}

// NodeCounts returns the per-node transmission counts in [from, to) as a
// flux-style vector.
func (s *Simulator) NodeCounts(from, to float64) []float64 {
	s.finalize()
	out := make([]float64, s.cfg.Net.Len())
	for _, p := range s.packets {
		if p.Time >= to {
			break
		}
		if p.Time >= from {
			out[p.Node]++
		}
	}
	return out
}

// Sniff returns, for each sniffer position, the number of packets overheard
// in [from, to): every transmission by a node within radio range of the
// sniffer position counts. This is the physically-grounded measurement of
// the attack — neighborhood aggregation is not a modeling choice here but a
// consequence of the shared wireless medium.
func (s *Simulator) Sniff(positions []geom.Point, from, to float64) []float64 {
	s.finalize()
	net := s.cfg.Net
	r2 := net.Radius() * net.Radius()

	// Precompute, per sniffer, the set of audible nodes.
	audible := make([][]int32, len(positions))
	for k, pos := range positions {
		for i := 0; i < net.Len(); i++ {
			if pos.Dist2(net.Pos(i)) <= r2 {
				audible[k] = append(audible[k], int32(i))
			}
		}
	}
	counts := s.NodeCounts(from, to)
	out := make([]float64, len(positions))
	for k := range positions {
		var sum float64
		for _, i := range audible[k] {
			sum += counts[i]
		}
		out[k] = sum
	}
	return out
}

// Reset drops every recorded packet while keeping the tree cache.
func (s *Simulator) Reset() {
	s.packets = s.packets[:0]
	s.sorted = true
}
