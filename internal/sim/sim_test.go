package sim

import (
	"math"
	"testing"

	"fluxtrack/internal/deploy"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/network"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/routing"
	"fluxtrack/internal/traffic"
)

func testNet(t testing.TB, n int, seed uint64) *network.Network {
	t.Helper()
	src := rng.New(seed)
	pts, err := deploy.Generate(deploy.Config{
		Field: geom.Square(30), N: n, Kind: deploy.PerturbedGrid,
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	net, err := network.New(geom.Square(30), pts, 2.4)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil network must error")
	}
	s, err := New(Config{Net: testNet(t, 100, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.PacketCapacity != 1 || s.cfg.HopLatency != 0.05 {
		t.Errorf("defaults not applied: %+v", s.cfg)
	}
}

func TestCollectValidation(t *testing.T) {
	s, err := New(Config{Net: testNet(t, 100, 2)})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	if err := s.Collect(geom.Pt(-5, 5), 1, 0, src); err == nil {
		t.Error("outside-field origin must error")
	}
	if err := s.Collect(geom.Pt(5, 5), 0, 0, src); err == nil {
		t.Error("zero stretch must error")
	}
}

// TestPacketCountsMatchFluidFlux checks the core correspondence: with unit
// packet capacity and integer stretch, per-node packet counts over a full
// wave equal the fluid flux exactly.
func TestPacketCountsMatchFluidFlux(t *testing.T) {
	net := testNet(t, 400, 4)
	s, err := New(Config{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	user := traffic.User{Pos: geom.Pt(14, 16), Stretch: 2, Active: true}
	if err := s.Collect(user.Pos, user.Stretch, 0, src); err != nil {
		t.Fatal(err)
	}
	fluid, err := traffic.NewSimulator(net).Flux([]traffic.User{user})
	if err != nil {
		t.Fatal(err)
	}
	counts := s.NodeCounts(0, s.WaveDuration()+1)
	for i := range fluid {
		if counts[i] != fluid[i] {
			t.Fatalf("node %d: packet count %v != fluid flux %v", i, counts[i], fluid[i])
		}
	}
}

// TestFractionalStretchRoundsUp checks ceil rounding for fractional loads.
func TestFractionalStretchRoundsUp(t *testing.T) {
	net := testNet(t, 200, 6)
	s, err := New(Config{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Collect(geom.Pt(15, 15), 1.5, 0, rng.New(7)); err != nil {
		t.Fatal(err)
	}
	counts := s.NodeCounts(0, s.WaveDuration()+1)
	tree, err := routing.Build(net, net.Nearest(geom.Pt(15, 15)))
	if err != nil {
		t.Fatal(err)
	}
	for i, sub := range tree.SubtreeSize {
		if sub == 0 {
			continue
		}
		want := math.Ceil(1.5 * float64(sub))
		if counts[i] != want {
			t.Fatalf("node %d (subtree %d): %v packets, want %v", i, sub, counts[i], want)
		}
	}
}

// TestWaveOrderingLeafToRoot verifies deeper rings transmit before the sink.
func TestWaveOrderingLeafToRoot(t *testing.T) {
	net := testNet(t, 300, 8)
	s, err := New(Config{Net: net, HopLatency: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	sinkPos := geom.Pt(15, 15)
	if err := s.Collect(sinkPos, 1, 0, rng.New(9)); err != nil {
		t.Fatal(err)
	}
	sink := net.Nearest(sinkPos)
	hops := net.HopsFrom(sink)
	// First transmission of the sink must come after the last transmission
	// of the deepest ring's earliest... simpler: every packet of a node at
	// hop h lies in slot (maxHop-h), so slot index recovered from time must
	// match.
	maxHop := 0
	for _, h := range hops {
		if h > maxHop {
			maxHop = h
		}
	}
	for _, p := range s.Packets() {
		h := hops[p.Node]
		if h < 0 {
			t.Fatalf("unreachable node %d transmitted", p.Node)
		}
		slot := int(p.Time / 0.1)
		if want := maxHop - h; slot != want {
			t.Fatalf("node %d at hop %d transmitted in slot %d, want %d", p.Node, h, slot, want)
		}
	}
}

// TestWindowTruncationLosesPackets verifies a window shorter than the wave
// captures strictly fewer packets.
func TestWindowTruncationLosesPackets(t *testing.T) {
	net := testNet(t, 300, 10)
	s, err := New(Config{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Collect(geom.Pt(10, 20), 2, 0, rng.New(11)); err != nil {
		t.Fatal(err)
	}
	full := sum(s.NodeCounts(0, s.WaveDuration()+1))
	half := sum(s.NodeCounts(0, s.WaveDuration()/2))
	if half >= full {
		t.Errorf("half window captured %v >= full %v", half, full)
	}
	if half == 0 {
		t.Error("half window captured nothing")
	}
}

// TestSniffCountsNeighborhood verifies a sniffer's count equals the sum of
// its audible nodes' transmissions.
func TestSniffCountsNeighborhood(t *testing.T) {
	net := testNet(t, 300, 12)
	s, err := New(Config{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Collect(geom.Pt(12, 12), 1, 0, rng.New(13)); err != nil {
		t.Fatal(err)
	}
	pos := geom.Pt(12, 12)
	got := s.Sniff([]geom.Point{pos}, 0, s.WaveDuration()+1)[0]
	counts := s.NodeCounts(0, s.WaveDuration()+1)
	var want float64
	for i := 0; i < net.Len(); i++ {
		if pos.Dist(net.Pos(i)) <= net.Radius() {
			want += counts[i]
		}
	}
	if got != want {
		t.Errorf("Sniff = %v, want %v", got, want)
	}
	if got == 0 {
		t.Error("sniffer near the sink heard nothing")
	}
}

// TestAggregatedFlattensFingerprint verifies TAG-style aggregation makes
// every participating node transmit exactly once, killing the flux peak.
func TestAggregatedFlattensFingerprint(t *testing.T) {
	net := testNet(t, 300, 14)
	s, err := New(Config{Net: net, Aggregated: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Collect(geom.Pt(15, 15), 3, 0, rng.New(15)); err != nil {
		t.Fatal(err)
	}
	counts := s.NodeCounts(0, s.WaveDuration()+1)
	for i, c := range counts {
		if c != 0 && c != 1 {
			t.Fatalf("aggregated node %d transmitted %v packets, want 0 or 1", i, c)
		}
	}
	_, peak := traffic.PeakNode(counts)
	if peak != 1 {
		t.Errorf("aggregated peak = %v, want 1", peak)
	}
}

// TestMultipleCollectionsAccumulate verifies overlapping waves sum.
func TestMultipleCollectionsAccumulate(t *testing.T) {
	net := testNet(t, 200, 16)
	s, err := New(Config{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(17)
	if err := s.Collect(geom.Pt(8, 8), 1, 0, src); err != nil {
		t.Fatal(err)
	}
	if err := s.Collect(geom.Pt(22, 22), 1, 0, src); err != nil {
		t.Fatal(err)
	}
	fluid, err := traffic.NewSimulator(net).Flux([]traffic.User{
		{Pos: geom.Pt(8, 8), Stretch: 1, Active: true},
		{Pos: geom.Pt(22, 22), Stretch: 1, Active: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := s.NodeCounts(0, s.WaveDuration()+1)
	for i := range fluid {
		if counts[i] != fluid[i] {
			t.Fatalf("node %d: %v packets, want %v", i, counts[i], fluid[i])
		}
	}
}

func TestReset(t *testing.T) {
	net := testNet(t, 100, 18)
	s, err := New(Config{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Collect(geom.Pt(15, 15), 1, 0, rng.New(19)); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if got := sum(s.NodeCounts(0, 1e9)); got != 0 {
		t.Errorf("after Reset counts = %v, want 0", got)
	}
	if len(s.trees) == 0 {
		t.Error("Reset dropped the tree cache")
	}
}

func TestCountTransmissions(t *testing.T) {
	net := testNet(t, 100, 20)
	s, err := New(Config{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	pos := geom.Pt(15, 15)
	if err := s.Collect(pos, 1, 0, rng.New(21)); err != nil {
		t.Fatal(err)
	}
	sink := net.Nearest(pos)
	got := s.CountTransmissions(sink, 0, s.WaveDuration()+1)
	tree, err := routing.Build(net, sink)
	if err != nil {
		t.Fatal(err)
	}
	if got != tree.SubtreeSize[sink] {
		t.Errorf("sink transmitted %d packets, want %d", got, tree.SubtreeSize[sink])
	}
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func BenchmarkCollect(b *testing.B) {
	net := testNet(b, 900, 22)
	s, err := New(Config{Net: net})
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(23)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Collect(geom.Pt(15, 15), 2, float64(i), src); err != nil {
			b.Fatal(err)
		}
		if i%10 == 9 {
			s.Reset() // keep memory bounded
		}
	}
}
