package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 7},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negatives", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); got != tt.want {
				t.Errorf("Mean = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if got := Min(nil); !math.IsInf(got, 1) {
		t.Errorf("Min(nil) = %v, want +Inf", got)
	}
	if got := Max(nil); !math.IsInf(got, -1) {
		t.Errorf("Max(nil) = %v, want -Inf", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Errorf("interpolated Percentile = %v, want 5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(raw []float64, p8 uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := float64(p8) / 255 * 100
		v := Percentile(xs, p)
		return v >= Min(xs) && v <= Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("unexpected summary: %+v", s)
	}
	if got := Summarize(nil); got != (Summary{}) {
		t.Errorf("Summarize(nil) = %+v, want zero", got)
	}
	if s.String() == "" {
		t.Error("Summary.String is empty")
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2, 2})
	// Distinct values 1, 2, 3 with cumulative probabilities 0.25, 0.75, 1.
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1}}
	if len(pts) != len(want) {
		t.Fatalf("CDF has %d points, want %d: %v", len(pts), len(want), pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("CDF[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
	if got := CDF(nil); got != nil {
		t.Errorf("CDF(nil) = %v, want nil", got)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		pts := CDF(xs)
		if len(xs) > 0 && (len(pts) == 0 || pts[len(pts)-1].P != 1) {
			return false
		}
		return sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].X < pts[j].X }) &&
			sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].P < pts[j].P })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CDFAt(xs, 2.5); got != 0.5 {
		t.Errorf("CDFAt(2.5) = %v, want 0.5", got)
	}
	if got := CDFAt(xs, 0); got != 0 {
		t.Errorf("CDFAt(0) = %v, want 0", got)
	}
	if got := CDFAt(xs, 4); got != 1 {
		t.Errorf("CDFAt(4) = %v, want 1", got)
	}
	if got := CDFAt(nil, 1); got != 0 {
		t.Errorf("CDFAt(nil) = %v, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	if h.Over != 2 {
		t.Errorf("Over = %d, want 2", h.Over)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d, want 5", h.Total())
	}
	wantCounts := []int{2, 1, 1, 0, 1}
	for i, c := range wantCounts {
		if h.Counts[i] != c {
			t.Errorf("Counts[%d] = %d, want %d", i, h.Counts[i], c)
		}
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins must error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("lo == hi must error")
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Errorf("RMSE identical = %v, want 0", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); got != math.Sqrt(12.5) {
		t.Errorf("RMSE = %v, want %v", got, math.Sqrt(12.5))
	}
	if got := RMSE(nil, nil); got != 0 {
		t.Errorf("RMSE(nil) = %v, want 0", got)
	}
}

func TestRMSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RMSE with mismatched lengths did not panic")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}
