// Package stats provides the summary statistics used by the evaluation
// harness: means, standard deviations, percentiles, empirical CDFs and
// fixed-width histograms. Every figure in the paper's evaluation section is
// ultimately a table of these quantities.
//
// Functions take plain []float64 and do not mutate their inputs (sorting
// copies first), so experiment code can summarize the same error series
// several ways. Percentile uses linear interpolation between order
// statistics; CDF returns the full empirical step function that Fig 3a's
// approximation-error curves are drawn from. Aggregation across parallel
// trials happens in index order upstream (internal/exp), so identical
// inputs reach this package regardless of worker count.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		m = math.Min(m, x)
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		m = math.Max(m, x)
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary captures the descriptive statistics of a sample.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stdDev"`
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	P90    float64 `json:"p90"`
	Max    float64 `json:"max"`
}

// Summarize computes the Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Median: Median(xs),
		P90:    Percentile(xs, 90),
		Max:    Max(xs),
	}
}

// String renders a compact one-line form of the summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g p90=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P90, s.Max)
}

// CDFPoint is one point of an empirical cumulative distribution function.
type CDFPoint struct {
	X float64 `json:"x"` // value
	P float64 `json:"p"` // fraction of the sample <= X
}

// CDF returns the empirical CDF of xs evaluated at each distinct sample
// value, in ascending order. The paper's Figure 3(a) is this object for the
// model approximation error rate.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, 0, len(s))
	n := float64(len(s))
	for i := 0; i < len(s); i++ {
		// Collapse runs of equal values to a single point at the run end.
		if i+1 < len(s) && s[i+1] == s[i] {
			continue
		}
		out = append(out, CDFPoint{X: s[i], P: float64(i+1) / n})
	}
	return out
}

// CDFAt returns the empirical probability that a sample value is <= x.
func CDFAt(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	count := 0
	for _, v := range xs {
		if v <= x {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// Histogram is a fixed-width histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Under and Over count samples outside [Lo, Hi).
	Under, Over int
}

// NewHistogram returns a histogram with the given bin count over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bins, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram needs lo < hi, got [%v, %v)", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		idx := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if idx == len(h.Counts) { // guard the x == Hi-epsilon rounding edge
			idx--
		}
		h.Counts[idx]++
	}
}

// Total returns the number of in-range samples recorded.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// RMSE returns the root-mean-square error between predicted and actual.
// It panics on length mismatch, which is always a programming error here.
func RMSE(predicted, actual []float64) float64 {
	if len(predicted) != len(actual) {
		panic("stats: RMSE length mismatch")
	}
	if len(predicted) == 0 {
		return 0
	}
	var s float64
	for i := range predicted {
		d := predicted[i] - actual[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(predicted)))
}
