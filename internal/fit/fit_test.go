package fit

import (
	"math"
	"testing"

	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

// modelProblem builds a synthetic Problem whose measurements come straight
// from the flux model for the given true sinks and stretch factors, so a
// perfect fit exists by construction.
func modelProblem(t testing.TB, sinks []geom.Point, cs []float64, nSamples int, seed uint64) (*Problem, []geom.Point) {
	t.Helper()
	m, err := fluxmodel.New(geom.Square(30), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(seed)
	pts := make([]geom.Point, nSamples)
	for i := range pts {
		pts[i] = src.InRect(m.Field())
	}
	measured, err := m.PredictFlux(sinks, cs, pts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(m, pts, measured)
	if err != nil {
		t.Fatal(err)
	}
	return p, pts
}

func TestNewProblemValidation(t *testing.T) {
	m, err := fluxmodel.New(geom.Square(30), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProblem(nil, []geom.Point{{}}, []float64{1}); err == nil {
		t.Error("nil model must error")
	}
	if _, err := NewProblem(m, nil, nil); err == nil {
		t.Error("empty points must error")
	}
	if _, err := NewProblem(m, []geom.Point{{}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestEvaluateTrueCompositionIsOptimal(t *testing.T) {
	sinks := []geom.Point{geom.Pt(10, 10), geom.Pt(22, 18)}
	cs := []float64{1.5, 2.5}
	p, _ := modelProblem(t, sinks, cs, 90, 1)

	ev, err := p.Evaluate(sinks)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Objective > 1e-6 {
		t.Errorf("objective at truth = %v, want ~0", ev.Objective)
	}
	for j := range cs {
		if math.Abs(ev.Stretches[j]-cs[j]) > 1e-6 {
			t.Errorf("stretch[%d] = %v, want %v", j, ev.Stretches[j], cs[j])
		}
	}
	// A perturbed composition must score strictly worse.
	worse, err := p.Evaluate([]geom.Point{geom.Pt(5, 25), geom.Pt(25, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if worse.Objective <= ev.Objective {
		t.Errorf("wrong composition objective %v <= true %v", worse.Objective, ev.Objective)
	}
}

func TestEvaluateEmptyPositions(t *testing.T) {
	p, _ := modelProblem(t, []geom.Point{geom.Pt(10, 10)}, []float64{1}, 20, 2)
	if _, err := p.Evaluate(nil); err == nil {
		t.Error("empty positions must error")
	}
}

func TestLocalizeSingleUser(t *testing.T) {
	truth := geom.Pt(14, 17)
	p, _ := modelProblem(t, []geom.Point{truth}, []float64{2}, 90, 3)
	res, err := Localize(p, 1, Options{Samples: 3000, TopM: 10}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Best) == 0 {
		t.Fatal("no results")
	}
	got := res.Best[0].Positions[0]
	if d := got.Dist(truth); d > 1.0 {
		t.Errorf("best position %v is %.2f from truth %v, want <= 1.0", got, d, truth)
	}
	// The mean of the top-M should also be close (majority aggregation).
	mean, ok := MeanPosition(res.PerUser[0])
	if !ok {
		t.Fatal("no per-user ranking")
	}
	if d := mean.Dist(truth); d > 1.5 {
		t.Errorf("mean top-M position %v is %.2f from truth, want <= 1.5", mean, d)
	}
}

func TestLocalizeTwoUsers(t *testing.T) {
	truths := []geom.Point{geom.Pt(8, 9), geom.Pt(23, 21)}
	p, _ := modelProblem(t, truths, []float64{1.5, 2.5}, 90, 5)
	res, err := Localize(p, 2, Options{Samples: 2500, TopM: 10}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best[0].Positions
	// Match each estimate to its nearest truth (identities are exchangeable).
	d1 := math.Min(best[0].Dist(truths[0]), best[0].Dist(truths[1]))
	d2 := math.Min(best[1].Dist(truths[0]), best[1].Dist(truths[1]))
	if d1 > 1.5 || d2 > 1.5 {
		t.Errorf("two-user localization errors %.2f, %.2f exceed 1.5 (positions %v)", d1, d2, best)
	}
}

func TestSearchCandidatesExhaustiveSmall(t *testing.T) {
	truths := []geom.Point{geom.Pt(10, 10), geom.Pt(20, 20)}
	p, _ := modelProblem(t, truths, []float64{2, 1}, 60, 7)
	// Candidate grids that include the truths.
	c1 := []geom.Point{geom.Pt(10, 10), geom.Pt(5, 5), geom.Pt(25, 25)}
	c2 := []geom.Point{geom.Pt(15, 15), geom.Pt(20, 20), geom.Pt(28, 3)}
	res, err := SearchCandidates(p, [][]geom.Point{c1, c2}, Options{TopM: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhaustive {
		t.Error("small instance must use exhaustive enumeration")
	}
	if res.Best[0].Positions[0] != truths[0] || res.Best[0].Positions[1] != truths[1] {
		t.Errorf("best composition = %v, want truths %v", res.Best[0].Positions, truths)
	}
	if res.Best[0].Objective > 1e-6 {
		t.Errorf("best objective = %v, want ~0", res.Best[0].Objective)
	}
	// Rankings are sorted ascending.
	for j, ranked := range res.PerUser {
		for i := 1; i < len(ranked); i++ {
			if ranked[i].Objective < ranked[i-1].Objective {
				t.Errorf("user %d ranking not sorted", j)
			}
		}
	}
}

func TestConditionalMatchesExhaustive(t *testing.T) {
	// Ablation A1's core claim: on instances small enough to enumerate, the
	// iterated conditional search finds the same best composition.
	truths := []geom.Point{geom.Pt(9, 12), geom.Pt(21, 19)}
	p, _ := modelProblem(t, truths, []float64{2, 2}, 60, 8)
	src := rng.New(9)
	c1 := make([]geom.Point, 12)
	c2 := make([]geom.Point, 12)
	for i := range c1 {
		c1[i] = src.InRect(p.Model().Field())
		c2[i] = src.InRect(p.Model().Field())
	}
	c1[7] = truths[0] // plant the truths among the candidates
	c2[3] = truths[1]

	exh, err := SearchCandidates(p, [][]geom.Point{c1, c2}, Options{TopM: 5, MaxExhaustive: 1000})
	if err != nil {
		t.Fatal(err)
	}
	cond, err := SearchCandidates(p, [][]geom.Point{c1, c2}, Options{TopM: 5, MaxExhaustive: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !exh.Exhaustive || cond.Exhaustive {
		t.Fatalf("search mode selection wrong: exh=%v cond=%v", exh.Exhaustive, cond.Exhaustive)
	}
	if math.Abs(exh.Best[0].Objective-cond.Best[0].Objective) > 1e-9 {
		t.Errorf("conditional best objective %v != exhaustive %v",
			cond.Best[0].Objective, exh.Best[0].Objective)
	}
}

func TestSearchCandidatesValidation(t *testing.T) {
	p, _ := modelProblem(t, []geom.Point{geom.Pt(10, 10)}, []float64{1}, 20, 10)
	if _, err := SearchCandidates(p, nil, Options{}); err == nil {
		t.Error("no users must error")
	}
	if _, err := SearchCandidates(p, [][]geom.Point{{}}, Options{}); err == nil {
		t.Error("empty candidate list must error")
	}
	if _, err := Localize(p, 0, Options{}, rng.New(1)); err == nil {
		t.Error("zero users must error")
	}
}

func TestStretchZeroDetectsIdleUser(t *testing.T) {
	// Fit two users when only one is active: the second fitted stretch must
	// collapse toward zero (the asynchronous-updating signal of §4.E).
	truth := geom.Pt(15, 15)
	p, _ := modelProblem(t, []geom.Point{truth}, []float64{2}, 90, 11)
	ev, err := p.Evaluate([]geom.Point{truth, geom.Pt(25, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Stretches[0] < 1.9 || ev.Stretches[0] > 2.1 {
		t.Errorf("active stretch = %v, want ~2", ev.Stretches[0])
	}
	if ev.Stretches[1] > 0.05 {
		t.Errorf("idle stretch = %v, want ~0", ev.Stretches[1])
	}
}

func TestMeanPosition(t *testing.T) {
	ranked := []RankedPosition{
		{Pos: geom.Pt(0, 0)}, {Pos: geom.Pt(2, 4)},
	}
	mean, ok := MeanPosition(ranked)
	if !ok || mean != geom.Pt(1, 2) {
		t.Errorf("MeanPosition = %v, %v; want (1,2), true", mean, ok)
	}
	if _, ok := MeanPosition(nil); ok {
		t.Error("MeanPosition(nil) must report not ok")
	}
}

func TestInsertTopM(t *testing.T) {
	var best []Eval
	for _, obj := range []float64{5, 3, 8, 1, 4} {
		best = insertTopM(best, Eval{Objective: obj}, 3)
	}
	want := []float64{1, 3, 4}
	if len(best) != 3 {
		t.Fatalf("len = %d, want 3", len(best))
	}
	for i, w := range want {
		if best[i].Objective != w {
			t.Errorf("best[%d] = %v, want %v", i, best[i].Objective, w)
		}
	}
}

func TestLocalizeLMSingleUser(t *testing.T) {
	// With enough restarts LM finds the single-user optimum on noiseless
	// model data; this is the baseline's best case.
	truth := geom.Pt(16, 13)
	p, _ := modelProblem(t, []geom.Point{truth}, []float64{2}, 90, 12)
	ev, err := LocalizeLM(p, 1, 40, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	// The paper argues this baseline is unreliable on rectangular fields
	// (piecewise-smooth objective), so only require it to clearly beat a
	// random guess (expected error ~11.7 for uniform guesses on a 30x30
	// field); the candidate search in TestLocalizeSingleUser is the one held
	// to sub-1.0 accuracy.
	if d := ev.Positions[0].Dist(truth); d > 5.0 {
		t.Errorf("LM baseline position error %.2f, want <= 5.0", d)
	}
}

func TestLocalizeLMValidation(t *testing.T) {
	p, _ := modelProblem(t, []geom.Point{geom.Pt(10, 10)}, []float64{1}, 20, 14)
	if _, err := LocalizeLM(p, 0, 5, rng.New(1)); err == nil {
		t.Error("zero users must error")
	}
}

func TestProblemAccessors(t *testing.T) {
	p, pts := modelProblem(t, []geom.Point{geom.Pt(10, 10)}, []float64{1}, 25, 15)
	if p.NumSamples() != 25 || len(pts) != 25 {
		t.Errorf("NumSamples = %d, want 25", p.NumSamples())
	}
	meas := p.Measured()
	meas[0] = -999
	if p.Measured()[0] == -999 {
		t.Error("Measured returned aliasing storage")
	}
	if p.Model() == nil {
		t.Error("Model returned nil")
	}
	if len(p.KernelColumn(geom.Pt(15, 15))) != 25 {
		t.Error("KernelColumn length mismatch")
	}
}

func BenchmarkEvaluate3Users90Samples(b *testing.B) {
	sinks := []geom.Point{geom.Pt(5, 5), geom.Pt(15, 20), geom.Pt(25, 10)}
	p, _ := modelProblem(b, sinks, []float64{1, 2, 3}, 90, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Evaluate(sinks); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalizeSingleUser(b *testing.B) {
	p, _ := modelProblem(b, []geom.Point{geom.Pt(14, 17)}, []float64{2}, 90, 17)
	src := rng.New(18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Localize(p, 1, Options{Samples: 500, TopM: 10}, src); err != nil {
			b.Fatal(err)
		}
	}
}
