package fit

import (
	"errors"
	"fmt"
	"math"

	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
)

// ErrAllMasked is returned by NewProblemMasked when the present mask leaves
// no samples at all: there is nothing to fit against. Callers tracking over
// a degraded observation stream (see internal/fault) test for it with
// errors.Is and skip the round instead of crashing or fitting garbage.
var ErrAllMasked = errors.New("fit: observation entirely masked")

// NewProblemMasked builds a Problem over only the samples whose present
// flag is set — the masked-column fit of a degraded sensing round. Sensors
// that failed, lost this round's report, or have nothing delivered simply
// drop out of the objective ‖W(F − F′)‖₂ instead of contributing bogus
// zeros. points, measured, and (when non-nil) weights must align with
// present; a nil present builds the full problem. It returns ErrAllMasked
// when no sample survives the mask.
func NewProblemMasked(model *fluxmodel.Model, points []geom.Point, measured, weights []float64, present []bool) (*Problem, error) {
	if present == nil {
		return NewProblemWeighted(model, points, measured, weights)
	}
	if len(present) != len(points) {
		return nil, fmt.Errorf("fit: %d points but %d present flags", len(points), len(present))
	}
	if len(points) != len(measured) {
		return nil, fmt.Errorf("fit: %d points but %d measurements", len(points), len(measured))
	}
	if weights != nil && len(weights) != len(points) {
		return nil, fmt.Errorf("fit: %d points but %d weights", len(points), len(weights))
	}
	kept := 0
	for _, p := range present {
		if p {
			kept++
		}
	}
	if kept == 0 {
		return nil, ErrAllMasked
	}
	cp := make([]geom.Point, 0, kept)
	cm := make([]float64, 0, kept)
	orig := make([]int, 0, kept)
	var cw []float64
	if weights != nil {
		cw = make([]float64, 0, kept)
	}
	for i, ok := range present {
		if !ok {
			continue
		}
		cp = append(cp, points[i])
		cm = append(cm, measured[i])
		orig = append(orig, i)
		if weights != nil {
			cw = append(cw, weights[i])
		}
	}
	p, err := NewProblemWeighted(model, cp, cm, cw)
	if err != nil {
		return nil, err
	}
	// Record the compaction so the coarse prestage can read full-layout
	// fingerprint columns through the mask (see Problem.origIdx).
	p.origIdx = orig
	p.fullSamples = len(present)
	return p, nil
}

// RelativeWeightsMasked is RelativeWeights computed over only the present
// samples: the soft constant q = 0.2·mean(F′) + 1 uses the mean of the
// delivered readings, so masked (undefined) entries cannot skew it. The
// returned slice is full-length and aligned with measured; masked slots get
// weight 1 (they are dropped by NewProblemMasked before ever entering an
// objective). A nil present falls back to RelativeWeights exactly.
func RelativeWeightsMasked(measured []float64, present []bool) []float64 {
	if present == nil {
		return RelativeWeights(measured)
	}
	var mean float64
	n := 0
	for i, f := range measured {
		if present[i] {
			mean += f
			n++
		}
	}
	if n > 0 {
		mean /= float64(n)
	}
	q := 0.2*mean + 1
	ws := make([]float64, len(measured))
	for i, f := range measured {
		if present[i] {
			ws[i] = 1 / (math.Max(f, 0) + q)
		} else {
			ws[i] = 1
		}
	}
	return ws
}
