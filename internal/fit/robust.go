// Robust fitting: consistency checks against lying sensors.
//
// The plain objective ‖W(F − F′)‖₂ trusts every reading equally (up to the
// relative weights), so one Byzantine sensor inflating its flux by 4× can
// drag the whole composition toward a phantom source. The defenses here
// re-derive per-sensor trust from the fit's own residuals:
//
// Both tests score relative residuals: the weighted residual r_i is divided
// by min(|wF′_i|, |wF̂_i|) + q — the smaller of reading and prediction, with
// q a fifth of the mean reading magnitude — because flux readings span orders
// of magnitude and an absolute-residual test would flag honest near-sink
// sensors while missing liars in the quiet part of the field. Taking the
// smaller magnitude keeps a liar from shrinking its own score: an inflator's
// huge claim and a deflator's tiny one are both scored against the honest
// side of the comparison. A relative scale below cleanScale counts as
// numerically clean — a fit that good has no outliers to rank, only float
// noise.
//
//   - Huber/IRLS (RobustHuber): fit once, measure each sensor's relative
//     residual r_i against the robust scale s = 1.4826·median|r| (the MAD
//     estimate of the residual spread), and down-weight sensors beyond the
//     Huber knee by k·s/|r_i| — the classical M-estimator weight. A few
//     iteratively-reweighted solves at fixed positions re-estimate the
//     stretches under the shrinking weights.
//
//   - Leave-one-sensor-out (RobustLOSO): for each sensor i, refit the
//     stretches with i excluded (a rank-1 downdate of the cached Gram
//     matrix, so n tiny k×k solves) and compare i's reading against the
//     prediction of the other n−1 sensors. A sensor whose LOSO residual
//     exceeds LOSOThreshold robust scales is flagged and down-weighted in
//     proportion t·s/|r| (floored at LOSODownWeight): unlike the plain Huber
//     test this cannot be bought off by a liar large enough to drag the
//     joint fit toward itself, because the liar never votes on its own
//     replacement fit — while the graded ramp keeps a borderline flag (which
//     may be an honest sensor near a source pass 1 mislocated) from erasing
//     real evidence.
//
//   - RobustBoth: LOSO flags first, then Huber reweights the survivors.
//
// Searcher.Search applies the configured mode as a two-pass search: a plain
// pass finds the best composition, the multipliers are derived from its
// residuals, and the search reruns on the reweighted problem. Every step is
// a serial, pure function of the problem and the pass-1 result — no draws,
// no data races — so robust searches preserve the byte-identical
// worker-invariance contract of internal/exp unchanged.

package fit

import (
	"fmt"
	"math"
	"sort"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/mat"
)

// RobustMode selects the consistency-check defense a search applies.
type RobustMode int

const (
	// RobustOff runs the plain search (the zero value).
	RobustOff RobustMode = iota
	// RobustHuber applies Huberized IRLS weights to every sensor.
	RobustHuber
	// RobustLOSO flags and down-weights sensors failing the
	// leave-one-sensor-out residual test.
	RobustLOSO
	// RobustBoth runs the LOSO test first, then Huber IRLS on the result.
	RobustBoth
)

// String returns the mode's flag-style name.
func (m RobustMode) String() string {
	switch m {
	case RobustOff:
		return "off"
	case RobustHuber:
		return "huber"
	case RobustLOSO:
		return "loso"
	case RobustBoth:
		return "both"
	}
	return fmt.Sprintf("RobustMode(%d)", int(m))
}

// ParseRobustMode maps a flag/JSON string onto a RobustMode. The empty
// string and "off" both disable the defense.
func ParseRobustMode(s string) (RobustMode, error) {
	switch s {
	case "", "off", "none":
		return RobustOff, nil
	case "huber":
		return RobustHuber, nil
	case "loso":
		return RobustLOSO, nil
	case "both":
		return RobustBoth, nil
	}
	return RobustOff, fmt.Errorf("fit: unknown robust mode %q (want off, huber, loso, or both)", s)
}

// RobustConfig tunes the robust-fitting defense. The zero value disables it;
// a config with only Mode set uses the standard constants.
type RobustConfig struct {
	// Mode selects the defense (off, huber, loso, both).
	Mode RobustMode
	// HuberK is the Huber knee in robust scales: residuals within K·scale
	// keep full weight, larger ones are down-weighted by K·scale/|r| (zero
	// means 1.5, the textbook constant for ~95% Gaussian efficiency).
	HuberK float64
	// IRLSIters is how many reweighted stretch refits the Huber pass runs
	// (zero means 3).
	IRLSIters int
	// LOSOThreshold flags a sensor whose leave-one-out residual exceeds this
	// many robust scales (zero means 4).
	LOSOThreshold float64
	// LOSODownWeight is the smallest weight multiplier a flagged sensor can
	// keep (zero means 0.05): flagged sensors are down-weighted by
	// LOSOThreshold·scale/|residual|, floored here — small enough to
	// neutralize an egregious liar, nonzero so the problem's positive-weight
	// invariant holds.
	LOSODownWeight float64
}

func (c RobustConfig) withDefaults() RobustConfig {
	if c.HuberK <= 0 {
		c.HuberK = 1.5
	}
	if c.IRLSIters <= 0 {
		c.IRLSIters = 3
	}
	if c.LOSOThreshold <= 0 {
		c.LOSOThreshold = 4
	}
	if c.LOSODownWeight <= 0 {
		c.LOSODownWeight = 0.05
	}
	return c
}

// Enabled reports whether the config names an active defense mode.
func (c RobustConfig) Enabled() bool { return c.Mode != RobustOff }

// RobustReport describes what a robust reweighting pass decided.
type RobustReport struct {
	// Flagged holds the sample indices (in the problem's own layout, i.e.
	// compacted indices for a masked problem) the LOSO test down-weighted,
	// ascending.
	Flagged []int
	// Scale is the robust residual scale (1.4826·MAD) of the final residual
	// pass; zero when the fit was too clean to estimate a spread.
	Scale float64
	// Iters is how many IRLS refits the Huber pass performed.
	Iters int
	// Adjusted reports whether any multiplier moved below 1 — when false the
	// reweighted problem would be identical and the caller can skip pass 2.
	Adjusted bool
}

// multFloor keeps every robust multiplier strictly positive and finite, so
// reweighted problems always satisfy NewProblemWeighted's invariants.
const multFloor = 1e-3

// cleanScale is the relative-residual robust scale below which a fit counts
// as numerically exact: residuals that small are float noise, and shrinking
// weights over noise would make robust searches disagree with plain ones on
// clean data for no reason.
const cleanScale = 1e-9

// robustScale returns the MAD-based robust scale 1.4826·median|r| over the
// finite residuals. Non-finite entries (hostile readings that survived into
// the objective) are ignored here and treated as infinitely suspect by the
// callers. Returns 0 when fewer than two finite residuals exist or the
// median is (numerically) zero.
func robustScale(resid, scratch []float64) float64 {
	abs := scratch[:0]
	for _, r := range resid {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			continue
		}
		abs = append(abs, math.Abs(r))
	}
	if len(abs) < 2 {
		return 0
	}
	sort.Float64s(abs)
	med := abs[len(abs)/2]
	if len(abs)%2 == 0 {
		med = (abs[len(abs)/2-1] + abs[len(abs)/2]) / 2
	}
	return 1.4826 * med
}

// RobustMultipliers derives per-sample weight multipliers from the residuals
// of a fitted composition ev (typically the best result of a plain search
// over p). The returned slice aligns with p's samples; every entry is in
// [multFloor, 1]. It is a pure, serial function of its inputs — equal
// problems and evals yield bit-identical multipliers at any worker count.
func (s *Searcher) RobustMultipliers(p *Problem, ev Eval, rc RobustConfig) ([]float64, RobustReport, error) {
	rc = rc.withDefaults()
	n := len(p.points)
	k := len(ev.Positions)
	var rep RobustReport
	mult := make([]float64, n)
	for i := range mult {
		mult[i] = 1
	}
	if !rc.Enabled() || k == 0 {
		return mult, rep, nil
	}

	// Weighted kernel columns a_j = W·g(pos_j) at the fitted positions, the
	// Gram matrix G = AᵀA and projection d = Aᵀ(W·F′) the refits reuse.
	aw := make([][]float64, k)
	for j, pos := range ev.Positions {
		col := p.KernelColumn(pos)
		if p.weights != nil {
			for i, w := range p.weights {
				col[i] *= w
			}
		}
		aw[j] = col
	}
	gram := make([]float64, k*k)
	d := make([]float64, k)
	for j := 0; j < k; j++ {
		d[j] = mat.Dot(aw[j], p.wb)
		for l := j; l < k; l++ {
			v := mat.Dot(aw[j], aw[l])
			gram[j*k+l] = v
			gram[l*k+j] = v
		}
	}

	var ws mat.NNLSWorkspace
	x := make([]float64, k)
	resid := make([]float64, n)
	scratch := make([]float64, n)
	// relResid studentizes a residual: the misfit is scored relative to the
	// SMALLER of the reading and the model prediction (plus a floor q tied to
	// the mean level). Dividing by the smaller magnitude means neither an
	// inflator (huge reading, honest prediction) nor a deflator (tiny
	// reading, honest prediction) can shrink its own score by controlling the
	// denominator, while honest near-sink sensors with large absolute — but
	// small relative — misfit are left alone. The floor q keeps float noise
	// on quiet-field sensors from amplifying into phantom outliers.
	var q float64
	{
		var mean float64
		cnt := 0
		for _, v := range p.wb {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			mean += math.Abs(v)
			cnt++
		}
		if cnt > 0 {
			mean /= float64(cnt)
		}
		q = 0.2*mean + 1e-12
	}
	relResid := func(meas, pred float64) float64 {
		den := math.Min(math.Abs(meas), math.Abs(pred)) + q
		if math.IsNaN(den) || math.IsInf(den, 0) {
			den = q
		}
		return (meas - pred) / den
	}
	// residAt computes the relative base-weighted residual
	// r_i = relResid(w_i F′_i, w_i Σ x_j g_j) of the stretch vector x. The
	// base weights (not the evolving multipliers) keep residuals comparable
	// across IRLS iterations.
	residAt := func(x []float64) {
		for i := range resid {
			pred := 0.0
			for j := 0; j < k; j++ {
				if x[j] != 0 {
					pred += x[j] * aw[j][i]
				}
			}
			resid[i] = relResid(p.wb[i], pred)
		}
	}

	if rc.Mode == RobustLOSO || rc.Mode == RobustBoth {
		// Leave-one-sensor-out: exclude sample i by a rank-1 downdate of
		// (G, d), refit, and score i against the others' prediction.
		gi := make([]float64, k*k)
		di := make([]float64, k)
		xi := make([]float64, k)
		loso := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				aji := aw[j][i]
				di[j] = d[j] - aji*p.wb[i]
				for l := 0; l < k; l++ {
					gi[j*k+l] = gram[j*k+l] - aji*aw[l][i]
				}
			}
			finite := true
			for j := 0; j < k && finite; j++ {
				if math.IsNaN(di[j]) || math.IsInf(di[j], 0) {
					finite = false
				}
			}
			if !finite {
				// A non-finite reading poisons every downdate except its
				// own; score it maximally suspect and move on.
				loso[i] = math.Inf(1)
				continue
			}
			mat.NNLSGramInto(gi, di, xi, &ws)
			pred := 0.0
			for j := 0; j < k; j++ {
				if xi[j] != 0 {
					pred += xi[j] * aw[j][i]
				}
			}
			loso[i] = relResid(p.wb[i], pred)
		}
		scale := robustScale(loso, scratch)
		rep.Scale = scale
		if scale > cleanScale {
			flagged := make([]int, 0, 4)
			for i, r := range loso {
				if math.IsNaN(r) {
					r = math.Inf(1)
				}
				if math.Abs(r) > rc.LOSOThreshold*scale {
					flagged = append(flagged, i)
				}
			}
			// Keep enough sensors for the composition fit to stay
			// overdetermined; a test that flags half the field is telling us
			// the scale estimate broke, not that half the field lies.
			if len(flagged) > 0 && n-len(flagged) >= k+1 && len(flagged) <= n/2 {
				for _, i := range flagged {
					// Graded down-weight t·s/|r|: a sensor just past the
					// threshold keeps most of its weight (a borderline flag
					// may be an honest sensor near a source the pass-1 fit
					// missed), while an egregious liar collapses to the
					// LOSODownWeight floor.
					r := math.Abs(loso[i])
					m := rc.LOSOThreshold * scale / r
					if math.IsNaN(m) || m < rc.LOSODownWeight {
						m = rc.LOSODownWeight
					}
					mult[i] = m
				}
				rep.Flagged = flagged
			}
		}
	}

	if rc.Mode == RobustHuber || rc.Mode == RobustBoth {
		// IRLS: refit the stretches under the current multipliers, rescore
		// residuals, tighten the Huber weights, repeat.
		gm := make([]float64, k*k)
		dm := make([]float64, k)
		// Huber may only lower a multiplier below what LOSO left — never undo
		// a flag — so snapshot the post-LOSO values as per-sensor caps.
		losoCap := append([]float64(nil), mult...)
		for it := 0; it < rc.IRLSIters; it++ {
			for j := 0; j < k; j++ {
				dm[j] = 0
				for l := j; l < k; l++ {
					gm[j*k+l] = 0
				}
			}
			for i := 0; i < n; i++ {
				m2 := mult[i] * mult[i]
				wb := p.wb[i]
				if math.IsNaN(wb) || math.IsInf(wb, 0) {
					continue // hostile reading: keep it out of the refit
				}
				for j := 0; j < k; j++ {
					aji := aw[j][i]
					dm[j] += m2 * aji * wb
					for l := j; l < k; l++ {
						gm[j*k+l] += m2 * aji * aw[l][i]
					}
				}
			}
			for j := 0; j < k; j++ {
				for l := j + 1; l < k; l++ {
					gm[l*k+j] = gm[j*k+l]
				}
			}
			mat.NNLSGramInto(gm, dm, x, &ws)
			rep.Iters++
			residAt(x)
			scale := robustScale(resid, scratch)
			rep.Scale = scale
			if scale <= cleanScale {
				break // fit too clean to rank outliers — nothing to shrink
			}
			knee := rc.HuberK * scale
			for i, r := range resid {
				h := 1.0
				ar := math.Abs(r)
				if !(ar <= knee) { // NaN lands here too
					h = knee / ar // Inf/NaN residuals collapse to the floor
					if math.IsNaN(h) || h < multFloor {
						h = multFloor
					}
				}
				mult[i] = math.Min(losoCap[i], h)
			}
		}
	}

	for i, m := range mult {
		if math.IsNaN(m) || m < multFloor {
			mult[i] = multFloor
		} else if m > 1 {
			mult[i] = 1
		}
		if mult[i] < 1 {
			rep.Adjusted = true
		}
	}
	return mult, rep, nil
}

// reweighted returns a copy of the problem with each sample's weight
// multiplied by mult, preserving the masked-layout bookkeeping so the coarse
// prestage still aligns with its full-layout fingerprint database.
func (p *Problem) reweighted(mult []float64) (*Problem, error) {
	if len(mult) != len(p.points) {
		return nil, fmt.Errorf("fit: %d samples but %d multipliers", len(p.points), len(mult))
	}
	w := make([]float64, len(p.points))
	for i := range w {
		base := 1.0
		if p.weights != nil {
			base = p.weights[i]
		}
		w[i] = base * mult[i]
	}
	p2, err := NewProblemWeighted(p.model, p.points, p.measured, w)
	if err != nil {
		return nil, err
	}
	p2.origIdx = p.origIdx
	p2.fullSamples = p.fullSamples
	return p2, nil
}

// searchRobust is the two-pass robust search: plain pass, residual-derived
// multipliers at its best composition, reweighted pass. When the
// multipliers come back all-ones the pass-1 result is returned untouched,
// so a robust search over clean data costs one residual analysis and
// changes nothing.
func (s *Searcher) searchRobust(p *Problem, candidates [][]geom.Point, opts Options) (Result, error) {
	inner := opts
	inner.Robust = RobustConfig{}
	res, err := s.Search(p, candidates, inner)
	if err != nil || len(res.Best) == 0 {
		return res, err
	}
	mult, rep, err := s.RobustMultipliers(p, res.Best[0], opts.Robust)
	if err != nil {
		return Result{}, err
	}
	if s.met.m != nil {
		s.met.robustPasses.Inc(0)
		s.met.robustFlagged.Add(0, uint64(len(rep.Flagged)))
	}
	if !rep.Adjusted {
		return res, nil
	}
	if s.met.m != nil {
		s.met.robustApplied.Inc(0)
	}
	p2, err := p.reweighted(mult)
	if err != nil {
		return Result{}, err
	}
	return s.Search(p2, candidates, inner)
}
