package fit

import (
	"fmt"
	"math"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/mat"
	"fluxtrack/internal/rng"
)

// LocalizeLM is the "traditional numerical technique" baseline the paper
// argues against (§4.A): it attacks the NLS objective directly with
// Levenberg-Marquardt over the 3K-dimensional parameter vector
// (x_1, y_1, c_1, ..., x_K, y_K, c_K), restarting from random initial
// guesses and keeping the best converged solution.
//
// Because the boundary-distance term l makes the objective only piecewise
// smooth on a rectangular field, LM frequently stalls in poor local minima;
// the ablation experiment A1 quantifies exactly that failure mode against
// the candidate-ranking search.
func LocalizeLM(p *Problem, numUsers, restarts int, src *rng.Source) (Eval, error) {
	if numUsers <= 0 {
		return Eval{}, fmt.Errorf("fit: numUsers must be positive, got %d", numUsers)
	}
	if restarts <= 0 {
		restarts = 10
	}
	field := p.model.Field()
	scale := stretchScale(p)

	best := Eval{Objective: math.Inf(1)}
	for attempt := 0; attempt < restarts; attempt++ {
		x0 := make([]float64, 3*numUsers)
		for j := 0; j < numUsers; j++ {
			pos := src.InRect(field)
			x0[3*j] = pos.X
			x0[3*j+1] = pos.Y
			x0[3*j+2] = src.Uniform(0.1, 2) * scale
		}
		res, err := mat.LevenbergMarquardt(p.lmResiduals(numUsers), x0, mat.NLSOptions{MaxIter: 200})
		if err != nil && res.X == nil {
			continue // this restart diverged outright; try another
		}
		ev := p.evalFromVector(res.X, numUsers)
		if ev.Objective < best.Objective {
			best = ev
		}
	}
	if math.IsInf(best.Objective, 1) {
		return Eval{}, fmt.Errorf("fit: all %d LM restarts failed", restarts)
	}
	return best, nil
}

// lmResiduals adapts the flux objective to the mat.Residualer interface.
// Positions are clamped into the field and stretches to non-negative values
// so LM cannot wander into regions where the model is undefined.
func (p *Problem) lmResiduals(numUsers int) mat.Residualer {
	return func(x []float64) []float64 {
		sinks, cs := unpackParams(x, numUsers, p.model.Field())
		pred, err := p.model.PredictFlux(sinks, cs, p.points)
		if err != nil {
			// Cannot happen: unpackParams always aligns the slices.
			pred = make([]float64, len(p.points))
		}
		res := mat.Sub(pred, p.measured)
		if p.weights != nil {
			for i, w := range p.weights {
				res[i] *= w
			}
		}
		return res
	}
}

func (p *Problem) evalFromVector(x []float64, numUsers int) Eval {
	sinks, cs := unpackParams(x, numUsers, p.model.Field())
	pred, _ := p.model.PredictFlux(sinks, cs, p.points)
	return Eval{
		Positions: sinks,
		Stretches: cs,
		Objective: mat.Norm2(mat.Sub(pred, p.measured)),
	}
}

func unpackParams(x []float64, numUsers int, field geom.Rect) ([]geom.Point, []float64) {
	sinks := make([]geom.Point, numUsers)
	cs := make([]float64, numUsers)
	for j := 0; j < numUsers; j++ {
		sinks[j] = field.Clamp(geom.Pt(x[3*j], x[3*j+1]))
		cs[j] = math.Max(0, x[3*j+2])
	}
	return sinks, cs
}

// stretchScale returns a crude magnitude estimate for initial stretch
// factors: the ratio of the mean measurement to the mean kernel value at
// the field center.
func stretchScale(p *Problem) float64 {
	center := p.model.Field().Center()
	col := p.KernelColumn(center)
	var meanK, meanF float64
	for i := range col {
		meanK += col[i]
		meanF += p.measured[i]
	}
	if meanK <= 0 {
		return 1
	}
	return math.Max(meanF/meanK, 1e-6)
}
