package fit

import (
	"testing"

	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

func cnlsSetup(t testing.TB, seed uint64) (*fluxmodel.Model, []geom.Point) {
	t.Helper()
	m, err := fluxmodel.New(geom.Square(30), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(seed)
	pts := make([]geom.Point, 90)
	for i := range pts {
		pts[i] = src.InRect(m.Field())
	}
	return m, pts
}

func cnlsObserve(t testing.TB, m *fluxmodel.Model, pts []geom.Point, sink geom.Point, c float64) []float64 {
	t.Helper()
	f, err := m.PredictFlux([]geom.Point{sink}, []float64{c}, pts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewCNLSTrackerValidation(t *testing.T) {
	m, pts := cnlsSetup(t, 1)
	if _, err := NewCNLSTracker(nil, pts, 5, 3); err == nil {
		t.Error("nil model must error")
	}
	if _, err := NewCNLSTracker(m, nil, 5, 3); err == nil {
		t.Error("no points must error")
	}
	if _, err := NewCNLSTracker(m, pts, 0, 3); err == nil {
		t.Error("zero vmax must error")
	}
	tr, err := NewCNLSTracker(m, pts, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Position() != m.Field().Center() {
		t.Errorf("unseeded Position = %v, want field center", tr.Position())
	}
}

func TestCNLSStepValidation(t *testing.T) {
	m, pts := cnlsSetup(t, 2)
	tr, err := NewCNLSTracker(m, pts, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(1, []float64{1}, rng.New(3)); err == nil {
		t.Error("observation length mismatch must error")
	}
}

func TestCNLSTracksWithOracleSeed(t *testing.T) {
	m, pts := cnlsSetup(t, 3)
	tr, err := NewCNLSTracker(m, pts, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	start := geom.Pt(8, 15)
	tr.Seed(start, 0)
	src := rng.New(4)
	var lastErr float64
	for step := 1; step <= 10; step++ {
		truth := geom.Pt(8+1.5*float64(step), 15)
		pos, err := tr.Step(float64(step), cnlsObserve(t, m, pts, truth, 2), src)
		if err != nil {
			t.Fatal(err)
		}
		lastErr = pos.Dist(truth)
	}
	if lastErr > 2.0 {
		t.Errorf("CNLS with oracle seed ended %.2f from truth, want <= 2.0", lastErr)
	}
}

func TestCNLSRespectsMotionConstraint(t *testing.T) {
	m, pts := cnlsSetup(t, 5)
	tr, err := NewCNLSTracker(m, pts, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr.Seed(geom.Pt(5, 5), 0)
	src := rng.New(6)
	// The observation places the user across the field; the constrained
	// step must not jump further than vmax * dt = 2.
	pos, err := tr.Step(1, cnlsObserve(t, m, pts, geom.Pt(25, 25), 2), src)
	if err != nil {
		t.Fatal(err)
	}
	if d := pos.Dist(geom.Pt(5, 5)); d > 2+1e-9 {
		t.Errorf("constrained step moved %.2f > vmax*dt = 2", d)
	}
}

func TestCNLSFirstStepUnconstrained(t *testing.T) {
	// Without a seed, the first step may roam the whole field and should
	// land reasonably near a strong source given enough restarts.
	m, pts := cnlsSetup(t, 7)
	tr, err := NewCNLSTracker(m, pts, 5, 12)
	if err != nil {
		t.Fatal(err)
	}
	truth := geom.Pt(20, 12)
	pos, err := tr.Step(1, cnlsObserve(t, m, pts, truth, 2), rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	// Multistart LM is unreliable (the point of the comparison); only
	// require it to beat the expected random-guess distance.
	if d := pos.Dist(truth); d > 12 {
		t.Errorf("unseeded CNLS landed %.2f away, want < 12 (random-guess ~11.7)", d)
	}
}
