package fit

import (
	"math"
	"testing"

	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mat"
	"fluxtrack/internal/rng"
)

// referenceEvaluate is the pre-Gram evaluation path, kept verbatim as the
// numerical reference: build the weighted n×k matrix, weight the
// measurement, run the QR-based Lawson-Hanson NNLS, and measure the
// residual norm. The production evaluator must reproduce its objectives and
// stretches to solver tolerance (the passive-set sub-solver changed from QR
// on the columns to Cholesky on the Gram matrix, so agreement is to
// floating-point conditioning, not bit-for-bit).
func referenceEvaluate(p *Problem, positions []geom.Point) (Eval, error) {
	cols := make([][]float64, len(positions))
	for j, pos := range positions {
		cols[j] = p.KernelColumn(pos)
	}
	n, k := len(p.points), len(positions)
	a := mat.NewDense(n, k)
	b := p.measured
	if p.weights != nil {
		b = make([]float64, n)
		for i, w := range p.weights {
			b[i] = w * p.measured[i]
		}
	}
	for j, col := range cols {
		for i, v := range col {
			if p.weights != nil {
				v *= p.weights[i]
			}
			a.Set(i, j, v)
		}
	}
	cs, err := mat.NNLS(a, b)
	if err != nil {
		return Eval{}, err
	}
	pred, err := a.MulVec(cs)
	if err != nil {
		return Eval{}, err
	}
	return Eval{
		Positions: append([]geom.Point(nil), positions...),
		Stretches: cs,
		Objective: mat.Norm2(mat.Sub(pred, b)),
	}, nil
}

// randomEquivProblem builds a problem with measurements generated from a
// random ground-truth composition plus noise, over random sample points.
func randomEquivProblem(t *testing.T, src *rng.Source, weighted bool) (*Problem, geom.Rect) {
	t.Helper()
	field := geom.Square(30)
	model, err := fluxmodel.New(field, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	n := 8 + src.IntN(25)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = src.InRect(field)
	}
	kTrue := 1 + src.IntN(3)
	measured := make([]float64, n)
	for u := 0; u < kTrue; u++ {
		sink := src.InRect(field)
		c := src.Uniform(0.5, 3)
		col := model.KernelVector(sink, pts)
		for i := range measured {
			measured[i] += c * col[i]
		}
	}
	for i := range measured {
		measured[i] *= 1 + 0.1*src.Norm()
		measured[i] = math.Max(measured[i], 0)
	}
	var weights []float64
	if weighted {
		weights = RelativeWeights(measured)
	}
	p, err := NewProblemWeighted(model, pts, measured, weights)
	if err != nil {
		t.Fatal(err)
	}
	return p, field
}

// TestGramEvaluatorMatchesReference: across randomized problems (k = 1..4,
// weighted and unweighted), the Gram-cached evaluator produces the same
// Objective and Stretches as the pre-PR-2 QR path.
func TestGramEvaluatorMatchesReference(t *testing.T) {
	src := rng.New(2024)
	for trial := 0; trial < 300; trial++ {
		weighted := trial%2 == 0
		p, field := randomEquivProblem(t, src, weighted)
		k := 1 + trial%4
		positions := make([]geom.Point, k)
		for j := range positions {
			positions[j] = src.InRect(field)
		}

		want, err := referenceEvaluate(p, positions)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		got, err := p.Evaluate(positions)
		if err != nil {
			t.Fatalf("trial %d: Evaluate: %v", trial, err)
		}

		scale := 1 + want.Objective
		if d := math.Abs(got.Objective - want.Objective); d > 1e-8*scale {
			t.Errorf("trial %d (k=%d weighted=%v): objective %v, reference %v (diff %v)",
				trial, k, weighted, got.Objective, want.Objective, d)
		}
		for j := range want.Stretches {
			if d := math.Abs(got.Stretches[j] - want.Stretches[j]); d > 1e-6*(1+math.Abs(want.Stretches[j])) {
				t.Errorf("trial %d (k=%d weighted=%v): stretch[%d] = %v, reference %v",
					trial, k, weighted, j, got.Stretches[j], want.Stretches[j])
			}
		}
	}
}

// TestGramEvaluatorDegenerateComposition: duplicated positions (identical
// columns, a singular Gram matrix) must stay finite and match the reference
// objective — the active-set solver drops the dependent column exactly like
// the QR path declared it singular.
func TestGramEvaluatorDegenerateComposition(t *testing.T) {
	src := rng.New(7)
	p, field := randomEquivProblem(t, src, false)
	pos := src.InRect(field)
	positions := []geom.Point{pos, pos, src.InRect(field)}
	want, err := referenceEvaluate(p, positions)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Evaluate(positions)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(got.Objective) || got.Objective < 0 {
		t.Fatalf("degenerate composition objective = %v", got.Objective)
	}
	if d := math.Abs(got.Objective - want.Objective); d > 1e-8*(1+want.Objective) {
		t.Errorf("degenerate composition: objective %v, reference %v", got.Objective, want.Objective)
	}
}

// TestGramEvaluatorDeterministic: evaluating the same composition twice —
// and through differently-warmed scratches — yields bit-identical results.
// This is the property the worker-invariance of the search rests on.
func TestGramEvaluatorDeterministic(t *testing.T) {
	src := rng.New(55)
	p, field := randomEquivProblem(t, src, true)
	positions := []geom.Point{src.InRect(field), src.InRect(field), src.InRect(field)}
	first, err := p.Evaluate(positions)
	if err != nil {
		t.Fatal(err)
	}
	// A searcher pre-warmed on a different composition must agree exactly.
	s := NewSearcher()
	if _, err := s.Evaluate(p, []geom.Point{src.InRect(field), src.InRect(field)}); err != nil {
		t.Fatal(err)
	}
	second, err := s.Evaluate(p, positions)
	if err != nil {
		t.Fatal(err)
	}
	if first.Objective != second.Objective {
		t.Errorf("objective not deterministic: %v vs %v", first.Objective, second.Objective)
	}
	for j := range first.Stretches {
		if first.Stretches[j] != second.Stretches[j] {
			t.Errorf("stretch[%d] not deterministic: %v vs %v", j, first.Stretches[j], second.Stretches[j])
		}
	}
}

// TestEvaluateScratchZeroAllocs is the tentpole's allocation guard: once a
// scratch is warm, the full evaluation path — slot updates with Gram row
// recomputation, the k×k NNLS, and the residual-based objective — performs
// zero heap allocations. The test alternates between two compositions so
// setCol really rewrites Gram rows instead of short-circuiting.
func TestEvaluateScratchZeroAllocs(t *testing.T) {
	src := rng.New(31)
	p, field := randomEquivProblem(t, src, true)
	n := len(p.points)
	const k = 3
	comps := make([][]candCol, 2)
	for c := range comps {
		comps[c] = make([]candCol, k)
		for j := range comps[c] {
			comps[c][j].wcol = make([]float64, n)
			p.fillCandCol(src.InRect(field), &comps[c][j])
		}
	}
	sc := &evalScratch{}
	sc.ensure(n, k)
	sc.setK(k)
	flip := 0
	allocs := testing.AllocsPerRun(200, func() {
		cc := comps[flip]
		flip = 1 - flip
		for j := range cc {
			sc.setCol(j, &cc[j])
		}
		if obj := sc.solve(p); math.IsNaN(obj) {
			t.Fatal("NaN objective")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state evaluation allocates %.1f times per composition, want 0", allocs)
	}
}

// BenchmarkCompositionEval measures the steady-state cost of one
// composition evaluation (k users, alternating compositions so one Gram
// row is recomputed per eval, like the exhaustive scan's innermost loop).
// -benchmem must report 0 allocs/op.
func BenchmarkCompositionEval(b *testing.B) {
	for _, k := range []int{1, 2, 3} {
		b.Run(map[int]string{1: "k=1", 2: "k=2", 3: "k=3"}[k], func(b *testing.B) {
			src := rng.New(77)
			field := geom.Square(30)
			model, err := fluxmodel.New(field, 0.7)
			if err != nil {
				b.Fatal(err)
			}
			n := 90
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = src.InRect(field)
			}
			measured := model.KernelVector(src.InRect(field), pts)
			p, err := NewProblemWeighted(model, pts, measured, RelativeWeights(measured))
			if err != nil {
				b.Fatal(err)
			}
			const pool = 64
			cands := make([]candCol, pool)
			for i := range cands {
				cands[i].wcol = make([]float64, n)
				p.fillCandCol(src.InRect(field), &cands[i])
			}
			sc := &evalScratch{}
			sc.ensure(n, k)
			sc.setK(k)
			for j := 0; j < k; j++ {
				sc.setCol(j, &cands[j])
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.setCol(k-1, &cands[i%pool])
				benchObj += sc.solve(p)
			}
		})
	}
}

// BenchmarkCompositionEvalReference is the pre-Gram path on the same
// workload, for before/after comparison in the benchmark logs.
func BenchmarkCompositionEvalReference(b *testing.B) {
	src := rng.New(77)
	field := geom.Square(30)
	model, err := fluxmodel.New(field, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	n := 90
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = src.InRect(field)
	}
	measured := model.KernelVector(src.InRect(field), pts)
	p, err := NewProblemWeighted(model, pts, measured, RelativeWeights(measured))
	if err != nil {
		b.Fatal(err)
	}
	const pool = 64
	positions := make([]geom.Point, pool)
	for i := range positions {
		positions[i] = src.InRect(field)
	}
	comp := make([]geom.Point, 3)
	comp[0], comp[1] = positions[0], positions[1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp[2] = positions[i%pool]
		ev, err := referenceEvaluate(p, comp)
		if err != nil {
			b.Fatal(err)
		}
		benchObj += ev.Objective
	}
}

var benchObj float64
