package fit

import (
	"reflect"
	"strings"
	"testing"

	"fluxtrack/internal/fingerprint"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/obs"
	"fluxtrack/internal/rng"
)

// Differential suite for the coarse-to-fine prestage: with K = full
// candidate count the shortlisted pipeline must reproduce the exact search
// byte for byte, and at realistic K the top-1 agreement with the exact
// search must stay above the pinned floor below.

// Pinned differential tolerances, measured on the checked-in seeds at the
// default grid resolution (24) and shortlist size (64 of 400 candidates):
// per-user top-1 agreement 39/40 = 0.975 and a worst-case best-objective
// ratio of 1.117 versus the exact search (K=96 and up measured 1.000 and
// 1.0 respectively). The floors below leave headroom for legitimate
// objective near-ties without letting a real prestage regression through.
const (
	coarseAgreeTopK     = 64
	coarseAgreeSamples  = 400
	coarseAgreeTrials   = 20
	coarseAgreeMinRate  = 0.90
	coarseAgreeGridRes  = 24
	coarseObjWorseLimit = 1.25 // coarse best objective ≤ 125% of exact
)

// randomCandidates draws per-user candidate lists uniformly over the field.
func randomCandidates(field geom.Rect, users, n int, src *rng.Source) [][]geom.Point {
	cands := make([][]geom.Point, users)
	for j := range cands {
		cands[j] = make([]geom.Point, n)
		for i := range cands[j] {
			cands[j][i] = src.InRect(field)
		}
	}
	return cands
}

func coarseDB(t *testing.T, p *Problem, pts []geom.Point, res int) *fingerprint.DB {
	t.Helper()
	db, err := fingerprint.NewDB(p.Model(), pts, fingerprint.CoarseConfig{GridRes: res}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestCoarseFullKByteIdentical is the core differential property: for
// randomized scenarios — plain, weighted, masked, exhaustive and
// conditional, serial and parallel — the coarse pipeline with TopK equal to
// (or exceeding) the candidate count returns a Result that is deeply equal
// to the exact search's, including every objective bit and every ranking
// index. The coarse path is exercised in full (cell scoring, quadtree
// probes, selection, remap), not short-circuited.
func TestCoarseFullKByteIdentical(t *testing.T) {
	type variant struct {
		name          string
		weighted      bool
		masked        bool
		maxExhaustive int // 0 keeps the default (exhaustive path)
		workers       int
		topKExtra     int // added to the candidate count
	}
	variants := []variant{
		{name: "plain"},
		{name: "weighted", weighted: true},
		{name: "masked", masked: true, weighted: true},
		{name: "conditional", maxExhaustive: 50},
		{name: "parallel", workers: 4},
		{name: "overshoot", topKExtra: 50, workers: 2},
	}
	for vi, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for trial := 0; trial < 4; trial++ {
				seed := uint64(100*vi + trial + 1)
				sinks := []geom.Point{geom.Pt(8, 11), geom.Pt(21, 19)}
				stretches := []float64{1.5, 2.2}
				base, pts := modelProblem(t, sinks, stretches, 60, seed)
				p := base
				if v.weighted || v.masked {
					measured := base.Measured()
					var present []bool
					if v.masked {
						present = make([]bool, len(pts))
						msrc := rng.New(seed ^ 0xdead)
						kept := 0
						for i := range present {
							present[i] = msrc.Float64() < 0.7
							if present[i] {
								kept++
							}
						}
						if kept == 0 {
							present[0] = true
						}
					}
					var weights []float64
					if v.weighted {
						weights = RelativeWeightsMasked(measured, present)
					}
					var err error
					p, err = NewProblemMasked(base.Model(), pts, measured, weights, present)
					if err != nil {
						t.Fatal(err)
					}
				}
				src := rng.New(seed ^ 0xc0ffee)
				cands := randomCandidates(base.Model().Field(), 2, 80, src)
				db := coarseDB(t, p, pts, 12)

				opts := Options{Seed: seed, Workers: v.workers, MaxExhaustive: v.maxExhaustive}
				exact, err := NewSearcher().Search(p, cands, opts)
				if err != nil {
					t.Fatal(err)
				}
				opts.Coarse = &Coarse{DB: db, TopK: len(cands[0]) + v.topKExtra}
				coarse, err := NewSearcher().Search(p, cands, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(exact, coarse) {
					t.Fatalf("trial %d: coarse K=full differs from exact:\nexact  %+v\ncoarse %+v",
						trial, exact, coarse)
				}
			}
		})
	}
}

// TestCoarseTop1Agreement measures the per-user top-1 agreement between the
// shortlisted search at the default realistic K and the exact search, and
// pins it against the checked-in floor. It also bounds how much worse the
// coarse best objective may be.
func TestCoarseTop1Agreement(t *testing.T) {
	if testing.Short() {
		t.Skip("differential agreement sweep")
	}
	agree, total := 0, 0
	for trial := 0; trial < coarseAgreeTrials; trial++ {
		seed := uint64(7000 + trial)
		sinks := []geom.Point{geom.Pt(6+float64(trial), 9), geom.Pt(24, 22-float64(trial)/2)}
		stretches := []float64{1.8, 2.4}
		p, pts := modelProblem(t, sinks, stretches, 60, seed)
		src := rng.New(seed ^ 0xabcd)
		cands := randomCandidates(p.Model().Field(), 2, coarseAgreeSamples, src)
		db := coarseDB(t, p, pts, coarseAgreeGridRes)

		opts := Options{Seed: seed}
		exact, err := NewSearcher().Search(p, cands, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Coarse = &Coarse{DB: db, TopK: coarseAgreeTopK}
		coarse, err := NewSearcher().Search(p, cands, opts)
		if err != nil {
			t.Fatal(err)
		}
		for j := range exact.PerUser {
			total++
			if exact.PerUser[j][0].Index == coarse.PerUser[j][0].Index {
				agree++
			}
		}
		if eb, cb := exact.Best[0].Objective, coarse.Best[0].Objective; cb > eb*coarseObjWorseLimit {
			t.Errorf("trial %d: coarse best objective %v exceeds %v×exact (%v)",
				trial, cb, coarseObjWorseLimit, eb)
		}
	}
	rate := float64(agree) / float64(total)
	t.Logf("top-1 agreement: %d/%d = %.3f (floor %.2f, K=%d of %d)",
		agree, total, rate, coarseAgreeMinRate, coarseAgreeTopK, coarseAgreeSamples)
	if rate < coarseAgreeMinRate {
		t.Fatalf("top-1 agreement %.3f below pinned floor %.2f", rate, coarseAgreeMinRate)
	}
}

// TestCoarseShortlistTieBreak pins the prestage's determinism on fully
// degenerate scores: a zero observation scores every cell 0, so the
// shortlist must be exactly the first TopK candidate indices in order.
func TestCoarseShortlistTieBreak(t *testing.T) {
	p, pts := modelProblem(t, []geom.Point{geom.Pt(15, 15)}, []float64{0}, 40, 3)
	src := rng.New(99)
	cands := randomCandidates(p.Model().Field(), 1, 50, src)
	db := coarseDB(t, p, pts, 8)
	s := NewSearcher()
	_, err := s.Search(p, cands, Options{Coarse: &Coarse{DB: db, TopK: 10}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if !reflect.DeepEqual(s.coarseIdx[0], want) {
		t.Fatalf("degenerate shortlist = %v, want %v", s.coarseIdx[0], want)
	}
}

// TestCoarseShortlistIsTopKByScore checks the selection invariant directly:
// every shortlisted candidate's cell score is at least as high as every
// excluded candidate's, and within equal scores the shortlist holds the
// lower indices.
func TestCoarseShortlistIsTopKByScore(t *testing.T) {
	sinks := []geom.Point{geom.Pt(12, 9)}
	p, pts := modelProblem(t, sinks, []float64{2}, 50, 11)
	src := rng.New(17)
	cands := randomCandidates(p.Model().Field(), 1, 120, src)
	db := coarseDB(t, p, pts, 10)
	s := NewSearcher()
	const topK = 24
	if _, err := s.Search(p, cands, Options{Coarse: &Coarse{DB: db, TopK: topK}}); err != nil {
		t.Fatal(err)
	}
	short := s.coarseIdx[0]
	if len(short) != topK {
		t.Fatalf("shortlist size %d, want %d", len(short), topK)
	}
	inShort := make(map[int]bool, topK)
	for _, i := range short {
		inShort[i] = true
	}
	score := func(i int) float64 { return p.scoreSignature(db.Column(db.CellOf(cands[0][i]))) }
	for i := range cands[0] {
		if inShort[i] {
			continue
		}
		for _, si := range short {
			ss, es := score(si), score(i)
			if ss < es || (ss == es && si > i) {
				t.Fatalf("excluded candidate %d (score %v) beats shortlisted %d (score %v)", i, es, si, ss)
			}
		}
	}
}

// TestCoarseDBMismatch: a database built over a different sample layout
// must be rejected, for both unmasked and masked problems.
func TestCoarseDBMismatch(t *testing.T) {
	p, pts := modelProblem(t, []geom.Point{geom.Pt(10, 10)}, []float64{1}, 30, 5)
	db, err := fingerprint.NewDB(p.Model(), pts[:20], fingerprint.CoarseConfig{GridRes: 6}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	cands := randomCandidates(p.Model().Field(), 1, 10, rng.New(1))
	_, err = NewSearcher().Search(p, cands, Options{Coarse: &Coarse{DB: db}})
	if err == nil || !strings.Contains(err.Error(), "sample points") {
		t.Fatalf("mismatched db accepted: %v", err)
	}
	if _, err := NewSearcher().Search(p, cands, Options{Coarse: &Coarse{}}); err == nil {
		t.Fatal("nil db accepted")
	}

	// Masked problems align through origIdx: a db over the FULL layout is
	// accepted even though the problem compacted its samples, and the
	// full-K result matches the exact search.
	present := make([]bool, len(pts))
	for i := range present {
		present[i] = i%3 != 0
	}
	mp, err := NewProblemMasked(p.Model(), pts, p.Measured(), nil, present)
	if err != nil {
		t.Fatal(err)
	}
	fullDB := coarseDB(t, p, pts, 6)
	exact, err := NewSearcher().Search(mp, cands, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := NewSearcher().Search(mp, cands, Options{Seed: 2, Coarse: &Coarse{DB: fullDB, TopK: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exact, coarse) {
		t.Fatal("masked coarse K=full differs from exact")
	}
	// And a db sized to the COMPACTED count must be rejected for the
	// masked problem: columns would misalign with the original layout.
	if _, err := NewSearcher().Search(mp, cands, Options{Coarse: &Coarse{DB: db}}); err == nil {
		t.Fatal("compact-sized db accepted for masked problem")
	}
}

// TestCoarseWorkerInvariance: the coarse pipeline at realistic K is
// byte-identical at any worker count, including the counter totals.
func TestCoarseWorkerInvariance(t *testing.T) {
	p, pts := modelProblem(t, []geom.Point{geom.Pt(9, 14), geom.Pt(23, 20)}, []float64{1.4, 2.1}, 60, 21)
	src := rng.New(77)
	cands := randomCandidates(p.Model().Field(), 2, 150, src)
	db := coarseDB(t, p, pts, 12)
	run := func(workers int) Result {
		res, err := NewSearcher().Search(p, cands, Options{
			Seed: 5, Workers: workers, Coarse: &Coarse{DB: db, TopK: 32},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(1)
	for _, w := range []int{2, 4, 8, 0} {
		if got := run(w); !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d: coarse result differs from serial", w)
		}
	}
}

// TestCoarseCounters pins the deterministic coarse work counters: probes
// equal the candidate total, shortlist and avoided partition it.
func TestCoarseCounters(t *testing.T) {
	p, pts := modelProblem(t, []geom.Point{geom.Pt(11, 11)}, []float64{2}, 40, 8)
	cands := randomCandidates(p.Model().Field(), 2, 100, rng.New(3))
	db := coarseDB(t, p, pts, 8)
	m := obs.New(1)
	_, err := NewSearcher().Search(p, cands, Options{
		Metrics: m, Coarse: &Coarse{DB: db, TopK: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		want uint64
	}{
		{"fit.coarse.knn_probes", 200},
		{"fit.coarse.shortlist", 60},
		{"fit.coarse.exact_avoided", 140},
		{"fit.search.columns", 60}, // only shortlisted columns are filled
	}
	for _, c := range checks {
		if got := m.Counter(c.name).Value(); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
}
