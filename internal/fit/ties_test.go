package fit

import (
	"reflect"
	"testing"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

// Index-ordered tie-break coverage for the candidate rankings: equal
// objectives — guaranteed here by duplicating candidate positions — must
// always surface in ascending candidate-index order, on the exhaustive
// path, the conditional path, and through the coarse prestage's remap.

// duplicatedCandidates builds a candidate list where every position appears
// twice: index i and i+n/2 hold the same point, so every objective is
// exactly tied with its twin.
func duplicatedCandidates(field geom.Rect, n int, src *rng.Source) []geom.Point {
	half := n / 2
	cands := make([]geom.Point, n)
	for i := 0; i < half; i++ {
		cands[i] = src.InRect(field)
		cands[i+half] = cands[i]
	}
	return cands
}

// assertTieOrder fails unless equal-objective runs in the ranking are in
// ascending index order.
func assertTieOrder(t *testing.T, ranked []RankedPosition) {
	t.Helper()
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Objective == ranked[i-1].Objective && ranked[i].Index < ranked[i-1].Index {
			t.Fatalf("tied objectives out of index order at %d: %+v before %+v",
				i, ranked[i-1], ranked[i])
		}
	}
}

// TestRankingTieBreakExhaustive: duplicated candidates on the exhaustive
// path rank (objective, index) ascending, identically at every worker count.
func TestRankingTieBreakExhaustive(t *testing.T) {
	p, _ := modelProblem(t, []geom.Point{geom.Pt(12, 14)}, []float64{2}, 50, 31)
	src := rng.New(41)
	cands := [][]geom.Point{duplicatedCandidates(p.Model().Field(), 40, src)}
	base, err := NewSearcher().Search(p, cands, Options{Workers: 1, TopM: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Exhaustive {
		t.Fatal("expected the exhaustive path")
	}
	assertTieOrder(t, base.PerUser[0])
	// Every candidate's twin must rank directly adjacent with the twin of
	// higher index second.
	for i := 1; i < len(base.PerUser[0]); i += 2 {
		a, b := base.PerUser[0][i-1], base.PerUser[0][i]
		if a.Pos != b.Pos || a.Index+20 != b.Index {
			t.Fatalf("twins not adjacent in rank: %+v then %+v", a, b)
		}
	}
	for _, w := range []int{2, 4, 0} {
		res, err := NewSearcher().Search(p, cands, Options{Workers: w, TopM: 40})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("workers=%d: tied ranking differs from serial", w)
		}
	}
}

// TestRankingTieBreakConditional: same property on the iterated conditional
// path (two users force joint compositions; MaxExhaustive pushed below the
// composition count).
func TestRankingTieBreakConditional(t *testing.T) {
	p, _ := modelProblem(t, []geom.Point{geom.Pt(8, 10), geom.Pt(22, 20)}, []float64{1.5, 2.5}, 50, 33)
	src := rng.New(43)
	field := p.Model().Field()
	cands := [][]geom.Point{
		duplicatedCandidates(field, 30, src),
		duplicatedCandidates(field, 30, src),
	}
	base, err := NewSearcher().Search(p, cands, Options{Workers: 1, TopM: 30, MaxExhaustive: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if base.Exhaustive {
		t.Fatal("expected the conditional path")
	}
	for j := range base.PerUser {
		assertTieOrder(t, base.PerUser[j])
	}
	for _, w := range []int{2, 4, 0} {
		res, err := NewSearcher().Search(p, cands, Options{Workers: w, TopM: 30, MaxExhaustive: 10, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("workers=%d: tied ranking differs from serial", w)
		}
	}
}

// TestRankingTieBreakCoarseRemap: through the coarse prestage the remapped
// original indices must preserve the tie order (remapping is monotone
// because shortlists are sorted ascending before the sub-search).
func TestRankingTieBreakCoarseRemap(t *testing.T) {
	p, pts := modelProblem(t, []geom.Point{geom.Pt(12, 14)}, []float64{2}, 50, 31)
	src := rng.New(41)
	cands := [][]geom.Point{duplicatedCandidates(p.Model().Field(), 40, src)}
	db := coarseDB(t, p, pts, 10)
	res, err := NewSearcher().Search(p, cands, Options{
		TopM: 20, Coarse: &Coarse{DB: db, TopK: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertTieOrder(t, res.PerUser[0])
	seen := make(map[int]bool)
	for _, r := range res.PerUser[0] {
		if r.Index < 0 || r.Index >= 40 {
			t.Fatalf("remapped index %d out of range", r.Index)
		}
		if seen[r.Index] {
			t.Fatalf("remapped index %d repeated", r.Index)
		}
		seen[r.Index] = true
		if cands[0][r.Index] != r.Pos {
			t.Fatalf("remapped index %d does not point at its position", r.Index)
		}
	}
}
