// Coarse-to-fine candidate search.
//
// The exact search (search.go) pays one kernel column plus its share of
// Gram/NNLS work for every candidate of every user — the candidates×sensors
// scaling wall of the paper's Algorithm 4.1. The coarse prestage here cuts
// the candidate set before that cost is paid: a fingerprint database
// (internal/fingerprint) holds the signature column of every grid cell, each
// cell is scored once per search against the observation with a matched
// filter, and only the TopK candidates per user whose containing cells score
// highest proceed to the exact evaluator.
//
// The cell score is the energy explained by the best non-negative
// single-user fit along the cell's signature, max(⟨Wg, WF′⟩, 0)²/‖Wg‖² —
// exactly the k=1 NNLS objective gap, so ranking cells by it is ranking
// them by how well a lone user at the cell center would explain the
// residual-free observation. It is deliberately single-user (joint effects
// are the fine stage's job) and deliberately cheap: one pass over the
// column, no solve.
//
// Determinism: cell scores are pure functions of (cell, observation) written
// into index-disjoint slots; candidate→cell assignment goes through the
// quadtree's (distance, id) tie-break; the shortlist selection orders by
// (score descending, candidate index ascending) and the surviving indices
// are re-sorted ascending before the exact sub-search, so the sub-search
// sees candidates in their original relative order. With TopK ≥ the
// candidate count the shortlist is the identity and the whole pipeline —
// scoring, selection, sub-search, index remap — reproduces the exact search
// byte for byte, which is what the differential suite in coarse_test.go
// pins.
package fit

import (
	"errors"
	"fmt"
	"sort"

	"fluxtrack/internal/fingerprint"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mat"
)

// Coarse configures the coarse-to-fine prestage of a search: candidates are
// shortlisted by the matched-filter score of their fingerprint cell before
// the exact Gram/NNLS ranking runs. The database must be built over the
// same model and full (unmasked) sample-point layout as the Problem;
// Searcher.Search rejects a mismatched sample count.
type Coarse struct {
	// DB is the fingerprint database (required).
	DB *fingerprint.DB
	// TopK is the shortlist size per user; <= 0 takes
	// fingerprint.DefaultTopK. TopK at or above a user's candidate count
	// keeps every candidate, degrading that user to the exact search.
	TopK int
}

// coarseMaxPasses caps the successive-cancellation passes of the cell
// scoring: one pass per user recovers each user's region in turn, but past
// a few users the residual is noise and further passes only cost time.
const coarseMaxPasses = 4

// scoreSignature returns the matched-filter score of one full-length
// fingerprint column against the problem's weighted observation:
// max(⟨wcol, wb⟩, 0)² / ⟨wcol, wcol⟩ with wcol the weighted column — the
// observation energy a lone non-negative user along this signature would
// explain. Masked problems read the column through origIdx so the compacted
// samples align with the database's build-time layout. Columns orthogonal
// to (or anti-correlated with) the observation score zero.
func (p *Problem) scoreSignature(col []float64) float64 {
	score, _ := p.scoreSignatureRHS(col, p.wb)
	return score
}

// scoreSignatureRHS is scoreSignature against an arbitrary weighted
// right-hand side (the observation itself, or a cancellation residual in
// the same compacted sample space). It also returns the fitted non-negative
// single-user coefficient x = max(proj, 0)/norm2, which subtractSignature
// uses to peel the signature off the residual.
func (p *Problem) scoreSignatureRHS(col, rhs []float64) (score, x float64) {
	var norm2, proj float64
	if p.origIdx == nil && p.weights == nil {
		for i, b := range rhs {
			v := col[i]
			norm2 += v * v
			proj += v * b
		}
	} else {
		for i := range p.points {
			src := i
			if p.origIdx != nil {
				src = p.origIdx[i]
			}
			v := col[src]
			if p.weights != nil {
				v *= p.weights[i]
			}
			norm2 += v * v
			proj += v * rhs[i]
		}
	}
	if norm2 == 0 || proj <= 0 {
		return 0, 0
	}
	return proj * proj / norm2, proj / norm2
}

// scoreColNorm is the clean-path scoreSignatureRHS: no weights, no mask,
// and the column's squared norm precomputed by the database. The projection
// accumulates in the same sequential order as the fused loop, so the score
// is bit-identical to the general path.
func scoreColNorm(col, rhs []float64, norm2 float64) (score, x float64) {
	proj := mat.Dot(col, rhs)
	if norm2 == 0 || proj <= 0 {
		return 0, 0
	}
	return proj * proj / norm2, proj / norm2
}

// subtractSignature subtracts x times the weighted column from rhs in
// place: the cancellation step between scoring passes.
func (p *Problem) subtractSignature(col []float64, x float64, rhs []float64) {
	if p.origIdx == nil && p.weights == nil {
		for i := range rhs {
			rhs[i] -= x * col[i]
		}
		return
	}
	for i := range rhs {
		src := i
		if p.origIdx != nil {
			src = p.origIdx[i]
		}
		v := col[src]
		if p.weights != nil {
			v *= p.weights[i]
		}
		rhs[i] -= x * v
	}
}

// scoreCells fills scores with the per-cell shortlist scores for up to
// `users` mobile users: a matched-filter pass over every cell, then — for
// multi-user problems — successive cancellation rounds that peel the
// best-scoring signature off the observation and re-score the residual.
// Each pass's scores are normalized to that pass's maximum before merging
// with a per-cell max: the strongest user's flux otherwise dominates every
// raw score and all users' shortlists crowd into its region, while after
// normalization each cancellation pass lifts its own user's region to the
// top of the ranking. Every pass is deterministic: per-cell scores are pure
// functions written into index-disjoint slots, and the peeled cell is the
// serial argmax with equal scores resolving to the lowest cell index.
func (s *Searcher) scoreCells(p *Problem, db *fingerprint.DB, users, workers int, scores []float64) error {
	cells := db.Cells()
	passes := min(users, coarseMaxPasses)
	rhs := growFloats(&s.coarseRHS, len(p.wb))
	copy(rhs, p.wb)
	pass := growFloats(&s.passScores, cells)
	for c := range scores {
		scores[c] = 0
	}
	// Unweighted, unmasked problems score against the raw columns, whose
	// squared norms the database caches at build time — that halves the
	// per-pass dot work without changing a bit (the norm and projection
	// accumulate independently either way).
	clean := p.origIdx == nil && p.weights == nil
	score := func(c int) (float64, float64) {
		if clean {
			return scoreColNorm(db.Column(c), rhs, db.ColumnNorm2(c))
		}
		return p.scoreSignatureRHS(db.Column(c), rhs)
	}
	for pi := 0; pi < passes; pi++ {
		if err := parallelFor(cells, workers, func(_, c int) error {
			sc, _ := score(c)
			pass[c] = sc
			return nil
		}); err != nil {
			return err
		}
		bestCell, bestScore := -1, 0.0
		for c, sc := range pass {
			if sc > bestScore {
				bestScore, bestCell = sc, c
			}
		}
		if bestCell < 0 {
			break // residual fully explained (or observation empty)
		}
		for c, sc := range pass {
			if norm := sc / bestScore; norm > scores[c] {
				scores[c] = norm
			}
		}
		if pi == passes-1 {
			break
		}
		_, x := score(bestCell)
		p.subtractSignature(db.Column(bestCell), x, rhs)
	}
	return nil
}

// searchCoarse runs the coarse-to-fine pipeline: score cells, shortlist
// TopK candidates per user, run the exact search on the shortlists, and
// remap the per-user ranking indices back to the caller's candidate lists.
func (s *Searcher) searchCoarse(p *Problem, candidates [][]geom.Point, opts Options) (Result, error) {
	db := opts.Coarse.DB
	if db == nil {
		return Result{}, errors.New("fit: coarse search without a fingerprint database")
	}
	if db.NumSamples() != p.fullSamples {
		return Result{}, fmt.Errorf("fit: fingerprint database built over %d sample points, problem observes %d",
			db.NumSamples(), p.fullSamples)
	}
	topK := opts.Coarse.TopK
	if topK <= 0 {
		topK = fingerprint.DefaultTopK
	}

	// Phase 1: score every cell against this observation (with successive
	// cancellation for multi-user problems; see scoreCells). The score map
	// is shared by all users and worker-count-invariant.
	cells := db.Cells()
	scores := growFloats(&s.cellScores, cells)
	if err := s.scoreCells(p, db, len(candidates), opts.Workers, scores); err != nil {
		return Result{}, err
	}

	// Phase 2: shortlist per user. Selection orders candidates by
	// (cell score descending, index ascending) — the index tie-break makes
	// equal-scoring candidates, including the all-tied degenerate
	// observation, shortlist identically on every run — then re-sorts the
	// survivors ascending so the sub-search sees them in original order.
	k := len(candidates)
	totalCands, totalShort := 0, 0
	for _, cs := range candidates {
		totalCands += len(cs)
		totalShort += min(topK, len(cs))
	}
	if cap(s.coarseArena) < totalShort {
		s.coarseArena = make([]geom.Point, totalShort)
		s.coarseIdxArena = make([]int, totalShort)
	}
	if cap(s.coarseCands) < k {
		s.coarseCands = make([][]geom.Point, k)
		s.coarseIdx = make([][]int, k)
	}
	s.coarseCands = s.coarseCands[:k]
	s.coarseIdx = s.coarseIdx[:k]
	off := 0
	for j, cs := range candidates {
		nc := len(cs)
		kk := min(topK, nc)
		// Candidate → containing cell → score. The quadtree probe is a pure
		// function of the candidate position.
		candScores := growFloats(&s.candScores, nc)
		if err := parallelFor(nc, opts.Workers, func(_, i int) error {
			candScores[i] = scores[db.CellOf(cs[i])]
			return nil
		}); err != nil {
			return Result{}, err
		}
		if cap(s.coarseOrder) < nc {
			s.coarseOrder = make([]int, nc)
		}
		ord := s.coarseOrder[:nc]
		for i := range ord {
			ord[i] = i
		}
		sort.Slice(ord, func(a, b int) bool {
			if candScores[ord[a]] != candScores[ord[b]] {
				return candScores[ord[a]] > candScores[ord[b]]
			}
			return ord[a] < ord[b]
		})
		sel := ord[:kk]
		sort.Ints(sel)
		short := s.coarseArena[off : off : off+kk]
		idx := s.coarseIdxArena[off : off : off+kk]
		for _, i := range sel {
			short = append(short, cs[i])
			idx = append(idx, i)
		}
		s.coarseCands[j] = short
		s.coarseIdx[j] = idx
		off += kk
	}
	if s.met.m != nil {
		s.met.knnProbes.Add(0, uint64(totalCands))
		s.met.shortlisted.Add(0, uint64(totalShort))
		s.met.exactAvoided.Add(0, uint64(totalCands-totalShort))
	}

	// Phase 3: exact search over the shortlists, then remap the per-user
	// ranking indices back into the caller's candidate lists (the SMC
	// update phase indexes prediction origins by them).
	if err := s.prepare(p, s.coarseCands, opts.Workers); err != nil {
		return Result{}, err
	}
	res, err := s.searchBody(p, s.coarseCands, opts)
	if err != nil {
		return Result{}, err
	}
	for j := range res.PerUser {
		idx := s.coarseIdx[j]
		for t := range res.PerUser[j] {
			res.PerUser[j][t].Index = idx[res.PerUser[j][t].Index]
		}
	}
	return res, nil
}
