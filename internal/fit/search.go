package fit

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/obs"
	"fluxtrack/internal/rng"
)

// Searcher owns every reusable buffer of the candidate-composition search:
// the per-candidate column caches (one arena for all weighted columns), one
// evalScratch per worker, and the ranking buffers of the conditional scan.
// A zero-effort NewSearcher is ready to use; the first search sizes the
// arenas and subsequent searches of similar shape reuse them, which is how
// the SMC tracker keeps its per-round filtering step allocation-flat: it
// holds one Searcher for its lifetime and runs every predict/filter round
// through it.
//
// A Searcher must not be used from multiple goroutines concurrently (it
// spawns and joins its own workers internally; see Options.Workers).
type Searcher struct {
	colArena []float64   // backing storage for every candidate's wcol
	cands    [][]candCol // per-user candidate caches, rebuilt per search
	scratch  []*evalScratch

	// Conditional-scan buffers, indexed by candidate.
	objs    []float64
	stretch []float64
	order   []int

	// Exhaustive-scan per-(worker, candidate) best objective/stretch pairs.
	bestArena []float64

	// One-shot Evaluate buffers.
	oneShot  []candCol
	oneArena []float64

	// Coarse-prestage buffers (see coarse.go): per-cell and per-candidate
	// matched-filter scores, the selection order, and the arena-backed
	// per-user shortlists with their original-index maps.
	cellScores     []float64
	passScores     []float64
	coarseRHS      []float64
	candScores     []float64
	coarseOrder    []int
	coarseArena    []geom.Point
	coarseIdxArena []int
	coarseCands    [][]geom.Point
	coarseIdx      [][]int

	// met holds the bound observability handles (see SetMetrics); the zero
	// value is the disabled instrument set, costing one nil branch per site.
	met searchMetrics
}

// NewSearcher returns an empty Searcher.
func NewSearcher() *Searcher { return &Searcher{} }

// searchMetrics caches the Searcher's counter handles so the hot paths
// never pay a registry lookup.
type searchMetrics struct {
	m       *obs.Metrics
	calls   *obs.Counter // fit.search.calls: Search/Evaluate invocations
	columns *obs.Counter // fit.search.columns: candidate kernel columns filled
	solves  *obs.Counter // fit.nnls.solves: composition NNLS solves
	iters   *obs.Counter // fit.nnls.iters: active-set NNLS iterations

	// Coarse-prestage counters, only advanced when Options.Coarse is set.
	knnProbes    *obs.Counter // fit.coarse.knn_probes: candidate→cell lookups
	shortlisted  *obs.Counter // fit.coarse.shortlist: candidates surviving the prestage
	exactAvoided *obs.Counter // fit.coarse.exact_avoided: candidates the exact stage skipped

	// Robust-defense counters, only advanced when Options.Robust is armed.
	robustPasses  *obs.Counter // fit.robust.passes: robust searches run
	robustApplied *obs.Counter // fit.robust.applied: searches that actually reweighted
	robustFlagged *obs.Counter // fit.robust.flagged: sensors LOSO down-weighted
}

// SetMetrics binds (or, with nil, unbinds) the Searcher's work counters.
// Search also binds lazily from Options.Metrics, but callers that go
// through Evaluate/EvaluateWorkers only (the SMC incumbent fit) must bind
// explicitly. Rebinding to the same registry is a no-op.
func (s *Searcher) SetMetrics(m *obs.Metrics) {
	if m == nil {
		s.met = searchMetrics{}
		return
	}
	if s.met.m == m {
		return
	}
	s.met = searchMetrics{
		m:             m,
		calls:         m.Counter("fit.search.calls"),
		columns:       m.Counter("fit.search.columns"),
		solves:        m.Counter("fit.nnls.solves"),
		iters:         m.Counter("fit.nnls.iters"),
		knnProbes:     m.Counter("fit.coarse.knn_probes"),
		shortlisted:   m.Counter("fit.coarse.shortlist"),
		exactAvoided:  m.Counter("fit.coarse.exact_avoided"),
		robustPasses:  m.Counter("fit.robust.passes"),
		robustApplied: m.Counter("fit.robust.applied"),
		robustFlagged: m.Counter("fit.robust.flagged"),
	}
}

// WorkTotals returns the cumulative NNLS solve and active-set iteration
// counts across every worker scratch this Searcher has created. The SMC
// tracker reads it before and after a round's searches to attribute NNLS
// effort to the round's trace span; totals are worker-count-invariant
// because each composition is solved exactly once no matter the sharding.
func (s *Searcher) WorkTotals() (solves, iters uint64) {
	for _, sc := range s.scratch {
		solves += sc.ws.Solves
		iters += sc.ws.Iters
	}
	return solves, iters
}

// recordWork flushes the NNLS work performed since the given baseline into
// the bound counters. No-op when metrics are unbound.
func (s *Searcher) recordWork(solves0, iters0 uint64) {
	if s.met.m == nil {
		return
	}
	solves1, iters1 := s.WorkTotals()
	s.met.solves.Add(0, solves1-solves0)
	s.met.iters.Add(0, iters1-iters0)
}

// growFloats resizes *buf to length n, reusing its capacity when possible.
func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// Evaluate is Problem.Evaluate running in the Searcher's reusable buffers:
// after warm-up only the returned Eval allocates. The SMC tracker uses it
// for the incumbent-position fits that gate its active-set selection.
func (s *Searcher) Evaluate(p *Problem, positions []geom.Point) (Eval, error) {
	return s.EvaluateWorkers(p, positions, 1)
}

// EvaluateWorkers is Evaluate with the per-position kernel columns computed
// on up to workers goroutines (each column is a pure function of its
// position, written into an index-disjoint arena slot, so the result is
// worker-count-invariant). The SMC tracker's incumbent fit runs here with
// one column per tracked user — in the §5.C many-user regime that is the
// widest loop of an idle round.
func (s *Searcher) EvaluateWorkers(p *Problem, positions []geom.Point, workers int) (Eval, error) {
	if len(positions) == 0 {
		return Eval{}, errors.New("fit: no candidate positions")
	}
	n, k := len(p.points), len(positions)
	var solves0, iters0 uint64
	if s.met.m != nil {
		s.met.calls.Inc(0)
		s.met.columns.Add(0, uint64(k))
		solves0, iters0 = s.WorkTotals()
	}
	if cap(s.oneArena) < k*n {
		s.oneArena = make([]float64, k*n)
	}
	if cap(s.oneShot) < k {
		s.oneShot = make([]candCol, k)
	}
	cc := s.oneShot[:k]
	if err := parallelFor(k, workers, func(_, j int) error {
		cc[j].wcol = s.oneArena[j*n : (j+1)*n : (j+1)*n]
		p.fillCandCol(positions[j], &cc[j])
		return nil
	}); err != nil {
		return Eval{}, err
	}
	sc := s.scratchSet(1, n, k)[0]
	sc.setK(k)
	for j := range cc {
		sc.setCol(j, &cc[j])
	}
	obj := sc.solve(p)
	s.recordWork(solves0, iters0)
	return makeEval(positions, sc.x[:k], obj), nil
}

// Search ranks compositions built from explicit per-user candidate lists,
// exactly like the package-level SearchCandidates but reusing the
// Searcher's arenas across calls.
func (s *Searcher) Search(p *Problem, candidates [][]geom.Point, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if len(candidates) == 0 {
		return Result{}, errors.New("fit: no users")
	}
	for j, c := range candidates {
		if len(c) == 0 {
			return Result{}, fmt.Errorf("fit: user %d has no candidates", j)
		}
	}
	if opts.Metrics != nil {
		s.SetMetrics(opts.Metrics)
	}
	var solves0, iters0 uint64
	if s.met.m != nil {
		s.met.calls.Inc(0)
		solves0, iters0 = s.WorkTotals()
		defer func() { s.recordWork(solves0, iters0) }()
	}
	if opts.Robust.Enabled() {
		return s.searchRobust(p, candidates, opts)
	}
	if opts.Coarse != nil {
		return s.searchCoarse(p, candidates, opts)
	}
	if err := s.prepare(p, candidates, opts.Workers); err != nil {
		return Result{}, err
	}
	return s.searchBody(p, candidates, opts)
}

// searchBody picks and runs the exact search strategy over prepared
// candidate lists: exhaustive enumeration when the composition count fits
// under MaxExhaustive, the iterated conditional approximation otherwise.
// The caller must have run prepare on exactly these candidate lists.
func (s *Searcher) searchBody(p *Problem, candidates [][]geom.Point, opts Options) (Result, error) {
	total := 1
	overflow := false
	for _, cs := range candidates {
		if total > opts.MaxExhaustive/len(cs) {
			overflow = true
		} else {
			total *= len(cs)
		}
	}
	if !overflow && total <= opts.MaxExhaustive {
		return s.searchExhaustive(p, candidates, total, opts)
	}
	return s.searchConditional(p, candidates, opts)
}

// prepare (re)builds the per-candidate caches. At the paper's 10,000
// samples per user this loop dominates instant localization, and each
// column is a pure function of its candidate, so it shards cleanly across
// workers with results written into index-disjoint slots: contiguous
// candidate chunks go through the batched fluxmodel.KernelMatrixInto and a
// finishing pass applies the weights and Gram scalars. All weighted columns
// live in one arena that survives across searches.
func (s *Searcher) prepare(p *Problem, candidates [][]geom.Point, workers int) error {
	n := len(p.points)
	total := 0
	for _, cs := range candidates {
		total += len(cs)
	}
	if s.met.m != nil {
		s.met.columns.Add(0, uint64(total))
	}
	if cap(s.colArena) < total*n {
		s.colArena = make([]float64, total*n)
	}
	arena := s.colArena[:total*n]
	if cap(s.cands) < len(candidates) {
		old := s.cands
		s.cands = make([][]candCol, len(candidates))
		copy(s.cands, old)
	}
	s.cands = s.cands[:len(candidates)]
	off := 0
	const prepChunk = 16
	for j, cs := range candidates {
		cs := cs
		if cap(s.cands[j]) < len(cs) {
			s.cands[j] = make([]candCol, len(cs))
		}
		s.cands[j] = s.cands[j][:len(cs)]
		colj := s.cands[j]
		base := off
		for i := range colj {
			colj[i].wcol = arena[off : off+n : off+n]
			off += n
		}
		chunks := (len(cs) + prepChunk - 1) / prepChunk
		if err := parallelFor(chunks, workers, func(_, ci int) error {
			lo := ci * prepChunk
			hi := min(lo+prepChunk, len(cs))
			p.model.KernelMatrixInto(cs[lo:hi], p.points, arena[base+lo*n:base+hi*n])
			for i := lo; i < hi; i++ {
				p.finishCandCol(&colj[i])
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// scratchSet returns nw worker scratches sized for (n, kMax), growing the
// pool as needed. Every returned scratch has its composition cache
// invalidated: the candidate pool may have been rewritten in place since
// the last search, so cached *candCol pointers must not be trusted across
// prepare calls.
func (s *Searcher) scratchSet(nw, n, kMax int) []*evalScratch {
	for len(s.scratch) < nw {
		s.scratch = append(s.scratch, &evalScratch{})
	}
	set := s.scratch[:nw]
	for _, sc := range set {
		sc.ensure(n, kMax)
	}
	return set
}

// searchExhaustive evaluates every composition — the literal filtering step
// of Algorithm 4.1. Compositions are enumerated by linear index (decoded
// mixed-radix) and sharded across workers; each worker keeps local top-M
// and per-user bests that merge deterministically afterwards. The last user
// varies fastest in the decode, so consecutive evaluations reuse all but
// one cached Gram row.
//
// Per-user bests live in flat per-worker (objective, stretch) arrays in the
// Searcher's arena, not in maps of materialized Evals: every candidate's
// best composition improves many times over the scan, and map inserts plus
// an Eval allocation per improvement used to make the exhaustive path
// allocate O(total candidates) per call. Now only compositions entering the
// global top-M materialize, which is what keeps a steady-state tracker Step
// allocation-flat in N.
func (s *Searcher) searchExhaustive(p *Problem, candidates [][]geom.Point, total int, opts Options) (Result, error) {
	k := len(candidates)
	workers := resolveWorkers(total, opts.Workers)
	scratches := s.scratchSet(workers, len(p.points), k)

	nCands := 0
	for _, cs := range candidates {
		nCands += len(cs)
	}
	// Two floats per (worker, candidate): best objective and the user's
	// fitted stretch in that composition, +Inf objective meaning unseen.
	if cap(s.bestArena) < 2*workers*nCands {
		s.bestArena = make([]float64, 2*workers*nCands)
	}
	arena := s.bestArena[:2*workers*nCands]
	workerObjs := func(w, j int) ([]float64, []float64) {
		off := w * 2 * nCands
		for o := 0; o < j; o++ {
			off += 2 * len(candidates[o])
		}
		nc := len(candidates[j])
		return arena[off : off+nc : off+nc], arena[off+nc : off+2*nc : off+2*nc]
	}

	type partial struct {
		best []Eval
	}
	partials := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pt := &partials[w]
			objsByUser := make([][]float64, k)
			strsByUser := make([][]float64, k)
			for j := range objsByUser {
				objs, strs := workerObjs(w, j)
				for i := range objs {
					objs[i] = math.Inf(1)
				}
				objsByUser[j], strsByUser[j] = objs, strs
			}
			sc := scratches[w]
			sc.setK(k)
			idx := make([]int, k)
			positions := make([]geom.Point, k)
			lo := total * w / workers
			hi := total * (w + 1) / workers
			for lin := lo; lin < hi; lin++ {
				// Decode the linear index into per-user candidate indices.
				rem := lin
				for j := k - 1; j >= 0; j-- {
					idx[j] = rem % len(candidates[j])
					rem /= len(candidates[j])
				}
				for j, i := range idx {
					sc.setCol(j, &s.cands[j][i])
				}
				obj := sc.solve(p)

				// Materialize an Eval only when this composition enters the
				// top-M: the steady-state path allocates nothing.
				if len(pt.best) < opts.TopM || obj < pt.best[len(pt.best)-1].Objective {
					for j, i := range idx {
						positions[j] = candidates[j][i]
					}
					pt.best = insertTopM(pt.best, makeEval(positions, sc.x[:k], obj), opts.TopM)
				}
				for j, i := range idx {
					if obj < objsByUser[j][i] {
						objsByUser[j][i] = obj
						strsByUser[j][i] = sc.x[j]
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var best []Eval
	for w := range partials {
		for _, ev := range partials[w].best {
			best = insertTopM(best, ev, opts.TopM)
		}
	}
	// Merge worker bests into worker 0's arrays, ascending worker order with
	// strict improvement — ties keep the lowest worker, i.e. the lowest
	// linear index, exactly as the sequential scan would.
	for w := 1; w < workers; w++ {
		for j := 0; j < k; j++ {
			objs0, strs0 := workerObjs(0, j)
			objsW, strsW := workerObjs(w, j)
			for i := range objs0 {
				if objsW[i] < objs0[i] {
					objs0[i] = objsW[i]
					strs0[i] = strsW[i]
				}
			}
		}
	}

	res := Result{Best: best, Exhaustive: true, PerUser: make([][]RankedPosition, k)}
	for j := 0; j < k; j++ {
		objs, strs := workerObjs(0, j)
		res.PerUser[j] = s.rankFromSlices(candidates[j], objs, strs, opts.TopM)
	}
	return res, nil
}

// rankFromSlices builds a user's top-M ranking from the per-candidate best
// objective and stretch arrays, ordering by (objective, index) like the
// conditional scan does. Unseen candidates (+Inf) cannot occur after a full
// exhaustive scan but are sorted last defensively.
func (s *Searcher) rankFromSlices(cands []geom.Point, objs, strs []float64, topM int) []RankedPosition {
	nc := len(cands)
	if cap(s.order) < nc {
		s.order = make([]int, nc)
	}
	ord := s.order[:nc]
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool {
		if objs[ord[a]] != objs[ord[b]] {
			return objs[ord[a]] < objs[ord[b]]
		}
		return ord[a] < ord[b]
	})
	if topM > nc {
		topM = nc
	}
	ranked := make([]RankedPosition, topM)
	for t := range ranked {
		i := ord[t]
		ranked[t] = RankedPosition{
			Pos:       cands[i],
			Index:     i,
			Stretch:   strs[i],
			Objective: objs[i],
		}
	}
	return ranked
}

// searchConditional approximates the exhaustive ranking: users are
// initialized greedily one at a time (mirroring the recursive briefing of
// §3.C) and then refined by coordinate sweeps, re-ranking each user's
// candidates while the other users sit at their incumbent best positions.
// Multiple restarts with permuted initialization order guard against the
// local minima of this coordinate descent; the restart with the lowest
// final objective wins.
func (s *Searcher) searchConditional(p *Problem, candidates [][]geom.Point, opts Options) (Result, error) {
	k := len(candidates)
	restarts := opts.Restarts
	if k == 1 {
		restarts = 1 // a single sweep already ranks every candidate exactly
	}
	src := rng.New(opts.Seed ^ 0xf1a7)

	var best Result
	bestObj := math.Inf(1)
	for attempt := 0; attempt < restarts; attempt++ {
		order := src.Perm(k)
		res, err := s.runConditional(p, candidates, order, opts)
		if err != nil {
			return Result{}, err
		}
		if len(res.Best) > 0 && res.Best[0].Objective < bestObj {
			best, bestObj = res, res.Best[0].Objective
		}
	}
	return best, nil
}

// runConditional performs one greedy initialization (in the given user
// order) followed by refinement sweeps. Rankings are materialized only on
// the final sweep; earlier passes just move the incumbents.
func (s *Searcher) runConditional(p *Problem, candidates [][]geom.Point, order []int, opts Options) (Result, error) {
	k := len(candidates)
	bestIdx := make([]int, k)
	assigned := make([]bool, k)

	// Greedy initialization: place users one at a time, each minimizing the
	// joint objective with the already-placed ones.
	for _, j := range order {
		if _, _, err := s.scanUser(p, candidates, bestIdx, assigned, j, opts, false); err != nil {
			return Result{}, err
		}
		assigned[j] = true
	}

	// Refinement sweeps with full per-user rankings on the final sweep.
	var res Result
	res.PerUser = make([][]RankedPosition, k)
	for sweep := 0; sweep < opts.Sweeps; sweep++ {
		final := sweep == opts.Sweeps-1
		for j := 0; j < k; j++ {
			ranked, bestEval, err := s.scanUser(p, candidates, bestIdx, assigned, j, opts, final)
			if err != nil {
				return Result{}, err
			}
			if final {
				res.PerUser[j] = ranked
				res.Best = insertTopM(res.Best, bestEval, opts.TopM)
			}
		}
	}
	return res, nil
}

// scanUser ranks user j's candidates with every other assigned user fixed
// at its incumbent position, updating bestIdx[j] to the winner. The fixed
// users occupy the leading scratch slots and user j's candidate the last
// one, so per candidate only one Gram row is recomputed. When wantRanked is
// set it returns the topM ranking; when every other user is assigned it
// also re-evaluates the incumbent composition in user order (so Positions
// and Stretches align user-by-user for the caller) and returns it.
func (s *Searcher) scanUser(p *Problem, candidates [][]geom.Point, bestIdx []int, assigned []bool,
	j int, opts Options, wantRanked bool) ([]RankedPosition, Eval, error) {
	k := len(candidates)
	fixed := 0
	for o := 0; o < k; o++ {
		if o != j && assigned[o] {
			fixed++
		}
	}
	kk := fixed + 1
	nc := len(candidates[j])
	objs := growFloats(&s.objs, nc)
	strJ := growFloats(&s.stretch, nc)
	workers := resolveWorkers(nc, opts.Workers)
	scratches := s.scratchSet(workers, len(p.points), kk)
	err := parallelFor(nc, opts.Workers, func(w, i int) error {
		sc := scratches[w]
		sc.setK(kk)
		slot := 0
		for o := 0; o < k; o++ {
			if o == j || !assigned[o] {
				continue
			}
			sc.setCol(slot, &s.cands[o][bestIdx[o]]) // no-op after the first candidate
			slot++
		}
		sc.setCol(kk-1, &s.cands[j][i])
		objs[i] = sc.solve(p)
		strJ[i] = sc.x[kk-1]
		return nil
	})
	if err != nil {
		return nil, Eval{}, err
	}

	bestI := bestIdx[j]
	bestObj := math.Inf(1)
	for i := 0; i < nc; i++ {
		if objs[i] < bestObj {
			bestObj, bestI = objs[i], i
		}
	}
	bestIdx[j] = bestI

	var ranked []RankedPosition
	if wantRanked {
		if cap(s.order) < nc {
			s.order = make([]int, nc)
		}
		ord := s.order[:nc]
		for i := range ord {
			ord[i] = i
		}
		sort.Slice(ord, func(a, b int) bool {
			if objs[ord[a]] != objs[ord[b]] {
				return objs[ord[a]] < objs[ord[b]]
			}
			return ord[a] < ord[b]
		})
		topM := opts.TopM
		if topM > nc {
			topM = nc
		}
		ranked = make([]RankedPosition, topM)
		for t := range ranked {
			i := ord[t]
			ranked[t] = RankedPosition{
				Pos:       candidates[j][i],
				Index:     i,
				Stretch:   strJ[i],
				Objective: objs[i],
			}
		}
	}

	var bestEval Eval
	allAssigned := true
	for o := 0; o < k; o++ {
		if o != j && !assigned[o] {
			allAssigned = false
			break
		}
	}
	if allAssigned {
		sc := scratches[0]
		sc.setK(k)
		for o := 0; o < k; o++ {
			sc.setCol(o, &s.cands[o][bestIdx[o]])
		}
		obj := sc.solve(p)
		positions := make([]geom.Point, k)
		for o := range positions {
			positions[o] = candidates[o][bestIdx[o]]
		}
		bestEval = makeEval(positions, sc.x[:k], obj)
	}
	return ranked, bestEval, nil
}
