// Package fit implements the paper's NLS parameter fitting (§4.A): given
// flux measurements F′ at a sparse set of sniffed nodes and the theoretical
// flux model, find the mobile-user positions and integrated stretch factors
// c_j = s_j/r that minimize ‖F − F′‖₂.
//
// The estimated flux is linear in the stretch factors once positions are
// fixed, so every position evaluation reduces to a non-negative least
// squares solve; the outer, genuinely non-convex search over positions uses
// candidate ranking — exhaustively over all Nᴷ compositions when feasible
// (exactly the filtering step of Algorithm 4.1), and by iterated conditional
// ranking otherwise.
package fit

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mat"
	"fluxtrack/internal/rng"
)

// Problem is one fingerprinting instance: what the adversary knows.
type Problem struct {
	model    *fluxmodel.Model
	points   []geom.Point // positions of the sniffed nodes
	measured []float64    // flux readings F′ at those nodes
	weights  []float64    // per-sample weights applied inside the objective
}

// NewProblem builds a Problem with unit weights (the plain ‖F − F′‖₂
// objective of Equation 4.1). The sample points and measurements must align
// and be non-empty.
func NewProblem(model *fluxmodel.Model, points []geom.Point, measured []float64) (*Problem, error) {
	return NewProblemWeighted(model, points, measured, nil)
}

// NewProblemWeighted builds a Problem whose objective is the weighted norm
// ‖W(F − F′)‖₂ with W = diag(weights). The flux model fits poorly within a
// couple of hops of a sink (§3.B), and under sparse sampling a single
// near-sink reading can otherwise dominate the objective, so relative
// weights (e.g. 1/(F′_i + q)) make the fit behave like the paper's
// error-rate metric. Pass nil weights for the unweighted objective; weights
// must otherwise align with points and be positive.
func NewProblemWeighted(model *fluxmodel.Model, points []geom.Point, measured, weights []float64) (*Problem, error) {
	if model == nil {
		return nil, errors.New("fit: nil model")
	}
	if len(points) == 0 {
		return nil, errors.New("fit: no sampling points")
	}
	if len(points) != len(measured) {
		return nil, fmt.Errorf("fit: %d points but %d measurements", len(points), len(measured))
	}
	if weights != nil {
		if len(weights) != len(points) {
			return nil, fmt.Errorf("fit: %d points but %d weights", len(points), len(weights))
		}
		for i, w := range weights {
			if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("fit: weight[%d] = %v must be positive and finite", i, w)
			}
		}
		weights = append([]float64(nil), weights...)
	}
	return &Problem{
		model:    model,
		points:   append([]geom.Point(nil), points...),
		measured: append([]float64(nil), measured...),
		weights:  weights,
	}, nil
}

// RelativeWeights returns the weighting scheme used throughout the
// evaluation: w_i = 1/(F′_i + q) with q = 0.2·mean(F′) + 1, which turns the
// objective into (approximately) a relative-error fit and keeps near-sink
// readings from dominating. Use with NewProblemWeighted.
func RelativeWeights(measured []float64) []float64 {
	var mean float64
	for _, f := range measured {
		mean += f
	}
	if len(measured) > 0 {
		mean /= float64(len(measured))
	}
	q := 0.2*mean + 1
	ws := make([]float64, len(measured))
	for i, f := range measured {
		ws[i] = 1 / (math.Max(f, 0) + q)
	}
	return ws
}

// Model returns the flux model of the problem.
func (p *Problem) Model() *fluxmodel.Model { return p.model }

// NumSamples returns the number of sniffed nodes.
func (p *Problem) NumSamples() int { return len(p.points) }

// Measured returns a copy of the measurement vector F′.
func (p *Problem) Measured() []float64 { return append([]float64(nil), p.measured...) }

// KernelColumn returns the kernel vector g(sink, p_i) over the sample
// points. Candidate search precomputes these columns once per candidate.
func (p *Problem) KernelColumn(sink geom.Point) []float64 {
	return p.model.KernelVector(sink, p.points)
}

// Eval is the outcome of evaluating one composition of user positions.
type Eval struct {
	Positions []geom.Point // one position per user
	Stretches []float64    // fitted integrated stretch factors c_j = s_j/r
	Objective float64      // ‖F − F′‖₂ at the optimum over stretches
}

// Evaluate fits the stretch factors for the given candidate positions and
// returns the minimized objective (Equation 4.1 with c solved in closed
// form by NNLS).
func (p *Problem) Evaluate(positions []geom.Point) (Eval, error) {
	cols := make([][]float64, len(positions))
	for j, pos := range positions {
		cols[j] = p.KernelColumn(pos)
	}
	return p.evaluateColumns(positions, cols)
}

// evaluateColumns is Evaluate with precomputed kernel columns.
func (p *Problem) evaluateColumns(positions []geom.Point, cols [][]float64) (Eval, error) {
	if len(positions) == 0 {
		return Eval{}, errors.New("fit: no candidate positions")
	}
	n, k := len(p.points), len(positions)
	a := mat.NewDense(n, k)
	b := p.measured
	if p.weights != nil {
		b = make([]float64, n)
		for i, w := range p.weights {
			b[i] = w * p.measured[i]
		}
	}
	for j, col := range cols {
		for i, v := range col {
			if p.weights != nil {
				v *= p.weights[i]
			}
			a.Set(i, j, v)
		}
	}
	cs, err := mat.NNLS(a, b)
	if err != nil {
		return Eval{}, fmt.Errorf("fit: stretch fit: %w", err)
	}
	pred, err := a.MulVec(cs)
	if err != nil {
		return Eval{}, err
	}
	return Eval{
		Positions: append([]geom.Point(nil), positions...),
		Stretches: cs,
		Objective: mat.Norm2(mat.Sub(pred, b)),
	}, nil
}

// Options configures the candidate search.
type Options struct {
	// Samples is the number of candidate positions drawn per user when the
	// caller does not supply explicit candidates (default 2000; the paper's
	// instant-localization experiment uses 10000).
	Samples int
	// TopM is how many best compositions / per-user positions to keep
	// (default 10, as in the paper).
	TopM int
	// MaxExhaustive caps the composition count for exhaustive enumeration;
	// above it the iterated conditional search runs instead (default 2e5).
	MaxExhaustive int
	// Sweeps is the number of refinement sweeps of the iterated conditional
	// search (default 3).
	Sweeps int
	// Restarts is how many independent greedy initializations the iterated
	// conditional search tries, keeping the run with the lowest objective
	// (default 3; only one run happens with a single user). Coordinate
	// descent over user positions has local minima — e.g. two estimates
	// collapsing onto one strong user — and restarts with permuted user
	// order escape most of them.
	Restarts int
	// Seed randomizes the restart permutations; runs with equal seeds and
	// inputs are identical.
	Seed uint64
	// Workers bounds the goroutines evaluating candidates concurrently.
	// Candidate evaluations are independent, so parallel and serial runs
	// produce identical results. Zero means GOMAXPROCS; 1 forces serial.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Samples <= 0 {
		o.Samples = 2000
	}
	if o.TopM <= 0 {
		o.TopM = 10
	}
	if o.MaxExhaustive <= 0 {
		o.MaxExhaustive = 200000
	}
	if o.Sweeps <= 0 {
		o.Sweeps = 3
	}
	if o.Restarts <= 0 {
		o.Restarts = 3
	}
	return o
}

// Result is the outcome of a localization search.
type Result struct {
	// Best holds the TopM best compositions in ascending objective order.
	Best []Eval
	// PerUser[j] holds user j's TopM best candidate positions with the
	// objective each achieved in its best composition; the SMC filter
	// consumes exactly this ranking.
	PerUser [][]RankedPosition
	// Exhaustive reports whether every composition was enumerated (true) or
	// the iterated conditional approximation ran (false).
	Exhaustive bool
}

// RankedPosition is one candidate position with its best known objective.
type RankedPosition struct {
	Pos       geom.Point
	Index     int     // index of the position in the user's candidate list
	Stretch   float64 // fitted c for this user in that composition
	Objective float64
}

// Localize draws Samples random candidate positions per user inside the
// field and searches for the K-user composition best explaining the
// measurements. It is the paper's instant-localization procedure (§5.A).
func Localize(p *Problem, numUsers int, opts Options, src *rng.Source) (Result, error) {
	opts = opts.withDefaults()
	if numUsers <= 0 {
		return Result{}, fmt.Errorf("fit: numUsers must be positive, got %d", numUsers)
	}
	field := p.model.Field()
	cands := make([][]geom.Point, numUsers)
	for j := range cands {
		cands[j] = make([]geom.Point, opts.Samples)
		for i := range cands[j] {
			cands[j][i] = src.InRect(field)
		}
	}
	return SearchCandidates(p, cands, opts)
}

// SearchCandidates ranks compositions built from explicit per-user candidate
// lists. The SMC tracker calls it with the predicted sample sets.
func SearchCandidates(p *Problem, candidates [][]geom.Point, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if len(candidates) == 0 {
		return Result{}, errors.New("fit: no users")
	}
	for j, c := range candidates {
		if len(c) == 0 {
			return Result{}, fmt.Errorf("fit: user %d has no candidates", j)
		}
	}
	// Precompute kernel columns per candidate. At the paper's 10,000 samples
	// per user this loop dominates instant localization, and each column is
	// a pure function of its candidate, so it shards cleanly across workers
	// with results written into index-disjoint slots.
	cols := make([][][]float64, len(candidates))
	total := 1
	overflow := false
	for j, cs := range candidates {
		cs := cs
		colj := make([][]float64, len(cs))
		if err := parallelFor(len(cs), opts.Workers, func(i int) error {
			colj[i] = p.KernelColumn(cs[i])
			return nil
		}); err != nil {
			return Result{}, err
		}
		cols[j] = colj
		if total > opts.MaxExhaustive/len(cs) {
			overflow = true
		} else {
			total *= len(cs)
		}
	}
	if !overflow && total <= opts.MaxExhaustive {
		return searchExhaustive(p, candidates, cols, opts)
	}
	return searchConditional(p, candidates, cols, opts)
}

// searchExhaustive evaluates every composition — the literal filtering step
// of Algorithm 4.1. Compositions are enumerated by linear index (decoded
// mixed-radix) and sharded across workers; each worker keeps local top-M
// and per-user bests that merge deterministically afterwards.
func searchExhaustive(p *Problem, candidates [][]geom.Point, cols [][][]float64, opts Options) (Result, error) {
	k := len(candidates)
	total := 1
	for _, cs := range candidates {
		total *= len(cs)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}

	type partial struct {
		best        []Eval
		perUserBest []map[int]Eval
		err         error
	}
	partials := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pt := &partials[w]
			pt.perUserBest = make([]map[int]Eval, k)
			for j := range pt.perUserBest {
				pt.perUserBest[j] = make(map[int]Eval)
			}
			idx := make([]int, k)
			positions := make([]geom.Point, k)
			curCols := make([][]float64, k)
			lo := total * w / workers
			hi := total * (w + 1) / workers
			for lin := lo; lin < hi; lin++ {
				// Decode the linear index into per-user candidate indices.
				rem := lin
				for j := k - 1; j >= 0; j-- {
					idx[j] = rem % len(candidates[j])
					rem /= len(candidates[j])
				}
				for j := range idx {
					positions[j] = candidates[j][idx[j]]
					curCols[j] = cols[j][idx[j]]
				}
				ev, err := p.evaluateColumns(positions, curCols)
				if err != nil {
					pt.err = err
					return
				}
				pt.best = insertTopM(pt.best, ev, opts.TopM)
				for j := range idx {
					if cur, ok := pt.perUserBest[j][idx[j]]; !ok || ev.Objective < cur.Objective {
						pt.perUserBest[j][idx[j]] = ev
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var best []Eval
	perUserBest := make([]map[int]Eval, k)
	for j := range perUserBest {
		perUserBest[j] = make(map[int]Eval)
	}
	for w := range partials {
		if err := partials[w].err; err != nil {
			return Result{}, err
		}
		for _, ev := range partials[w].best {
			best = insertTopM(best, ev, opts.TopM)
		}
		for j, m := range partials[w].perUserBest {
			for i, ev := range m {
				if cur, ok := perUserBest[j][i]; !ok || ev.Objective < cur.Objective {
					perUserBest[j][i] = ev
				}
			}
		}
	}

	res := Result{Best: best, Exhaustive: true, PerUser: make([][]RankedPosition, k)}
	for j := range perUserBest {
		res.PerUser[j] = rankFromMap(candidates[j], perUserBest[j], j, opts.TopM)
	}
	return res, nil
}

// parallelFor runs fn(i) for every i in [0, n) on up to workers goroutines
// (GOMAXPROCS when workers <= 0). The first error wins; fn invocations must
// be independent.
func parallelFor(n, workers int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := n * w / workers
			hi := n * (w + 1) / workers
			for i := lo; i < hi; i++ {
				if err := fn(i); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// searchConditional approximates the exhaustive ranking: users are
// initialized greedily one at a time (mirroring the recursive briefing of
// §3.C) and then refined by coordinate sweeps, re-ranking each user's
// candidates while the other users sit at their incumbent best positions.
// Multiple restarts with permuted initialization order guard against the
// local minima of this coordinate descent; the restart with the lowest
// final objective wins.
func searchConditional(p *Problem, candidates [][]geom.Point, cols [][][]float64, opts Options) (Result, error) {
	k := len(candidates)
	restarts := opts.Restarts
	if k == 1 {
		restarts = 1 // a single sweep already ranks every candidate exactly
	}
	src := rng.New(opts.Seed ^ 0xf1a7)

	var best Result
	bestObj := math.Inf(1)
	for attempt := 0; attempt < restarts; attempt++ {
		order := src.Perm(k)
		res, err := runConditional(p, candidates, cols, order, opts)
		if err != nil {
			return Result{}, err
		}
		if len(res.Best) > 0 && res.Best[0].Objective < bestObj {
			best, bestObj = res, res.Best[0].Objective
		}
	}
	return best, nil
}

// runConditional performs one greedy initialization (in the given user
// order) followed by refinement sweeps.
func runConditional(p *Problem, candidates [][]geom.Point, cols [][][]float64, order []int, opts Options) (Result, error) {
	k := len(candidates)
	bestIdx := make([]int, k)
	assigned := make([]bool, k)

	// Greedy initialization: place users one at a time, each minimizing the
	// joint objective with the already-placed ones.
	for _, j := range order {
		if _, _, err := rankUserConditional(p, candidates, cols, bestIdx, assigned, j, 1, opts.Workers); err != nil {
			return Result{}, err
		}
		assigned[j] = true
	}

	// Refinement sweeps with full per-user rankings on the final sweep.
	var res Result
	res.PerUser = make([][]RankedPosition, k)
	for sweep := 0; sweep < opts.Sweeps; sweep++ {
		final := sweep == opts.Sweeps-1
		for j := 0; j < k; j++ {
			ranked, bestEval, err := rankUserConditional(p, candidates, cols, bestIdx, assigned, j, opts.TopM, opts.Workers)
			if err != nil {
				return Result{}, err
			}
			if final {
				res.PerUser[j] = ranked
				res.Best = insertTopM(res.Best, bestEval, opts.TopM)
			}
		}
	}
	return res, nil
}

// rankUserConditional ranks user j's candidates with every other assigned
// user fixed at its incumbent position. It updates bestIdx[j] to the winner
// and returns the topM ranking plus the winning evaluation.
func rankUserConditional(p *Problem, candidates [][]geom.Point, cols [][][]float64,
	bestIdx []int, assigned []bool, j, topM, workers int) ([]RankedPosition, Eval, error) {
	k := len(candidates)
	// Fixed context: assigned users other than j.
	var fixedPos []geom.Point
	var fixedCols [][]float64
	for o := 0; o < k; o++ {
		if o == j || !assigned[o] {
			continue
		}
		fixedPos = append(fixedPos, candidates[o][bestIdx[o]])
		fixedCols = append(fixedCols, cols[o][bestIdx[o]])
	}

	ranked := make([]RankedPosition, len(candidates[j]))
	evals := make([]Eval, len(candidates[j]))
	err := parallelFor(len(candidates[j]), workers, func(i int) error {
		// Per-goroutine copies of the composition scratch space.
		pos := make([]geom.Point, len(fixedPos)+1)
		cc := make([][]float64, len(fixedCols)+1)
		copy(pos, fixedPos)
		copy(cc, fixedCols)
		pos[len(fixedPos)] = candidates[j][i]
		cc[len(fixedCols)] = cols[j][i]
		ev, err := p.evaluateColumns(pos, cc)
		if err != nil {
			return err
		}
		evals[i] = ev
		ranked[i] = RankedPosition{
			Pos:       candidates[j][i],
			Index:     i,
			Stretch:   ev.Stretches[len(fixedPos)],
			Objective: ev.Objective,
		}
		return nil
	})
	if err != nil {
		return nil, Eval{}, err
	}
	var bestEval Eval
	bestEval.Objective = math.Inf(1)
	bestI := bestIdx[j]
	for i := range evals {
		if evals[i].Objective < bestEval.Objective {
			bestEval = evals[i]
			bestI = i
		}
	}
	bestIdx[j] = bestI
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].Objective != ranked[b].Objective {
			return ranked[a].Objective < ranked[b].Objective
		}
		return ranked[a].Index < ranked[b].Index
	})
	if len(ranked) > topM {
		ranked = ranked[:topM]
	}
	// bestEval's slices are ordered [fixed users..., user j], not by user
	// index. Re-evaluate the full composition in user order so Positions
	// and Stretches align user-by-user for the caller; this needs every
	// user assigned, so the greedy-initialization phase (where it is not
	// consumed) skips it.
	allAssigned := true
	for o := 0; o < k; o++ {
		if o != j && !assigned[o] {
			allAssigned = false
			break
		}
	}
	if allAssigned {
		full := make([]geom.Point, k)
		fullCols := make([][]float64, k)
		for o := 0; o < k; o++ {
			full[o] = candidates[o][bestIdx[o]]
			fullCols[o] = cols[o][bestIdx[o]]
		}
		ev, err := p.evaluateColumns(full, fullCols)
		if err != nil {
			return nil, Eval{}, err
		}
		bestEval = ev
	}
	return ranked, bestEval, nil
}

// insertTopM inserts ev into the ascending-by-objective slice best, keeping
// at most m entries.
func insertTopM(best []Eval, ev Eval, m int) []Eval {
	pos := sort.Search(len(best), func(i int) bool { return best[i].Objective > ev.Objective })
	if pos >= m {
		return best
	}
	best = append(best, Eval{})
	copy(best[pos+1:], best[pos:])
	best[pos] = ev
	if len(best) > m {
		best = best[:m]
	}
	return best
}

func rankFromMap(cands []geom.Point, m map[int]Eval, user, topM int) []RankedPosition {
	ranked := make([]RankedPosition, 0, len(m))
	for i, ev := range m {
		ranked = append(ranked, RankedPosition{
			Pos:       cands[i],
			Index:     i,
			Stretch:   ev.Stretches[user],
			Objective: ev.Objective,
		})
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].Objective != ranked[b].Objective {
			return ranked[a].Objective < ranked[b].Objective
		}
		return ranked[a].Index < ranked[b].Index
	})
	if len(ranked) > topM {
		ranked = ranked[:topM]
	}
	return ranked
}

// MeanPosition returns the average of the ranked positions, the "report of
// the majority" the paper uses to aggregate the top-M predictions.
func MeanPosition(ranked []RankedPosition) (geom.Point, bool) {
	if len(ranked) == 0 {
		return geom.Point{}, false
	}
	var x, y float64
	for _, r := range ranked {
		x += r.Pos.X
		y += r.Pos.Y
	}
	n := float64(len(ranked))
	return geom.Pt(x/n, y/n), true
}
