// Package fit implements the paper's NLS parameter fitting (§4.A): given
// flux measurements F′ at a sparse set of sniffed nodes and the theoretical
// flux model, find the mobile-user positions and integrated stretch factors
// c_j = s_j/r that minimize ‖F − F′‖₂.
//
// The estimated flux is linear in the stretch factors once positions are
// fixed, so every position evaluation reduces to a non-negative least
// squares solve; the outer, genuinely non-convex search over positions uses
// candidate ranking — exhaustively over all Nᴷ compositions when feasible
// (exactly the filtering step of Algorithm 4.1), and by iterated conditional
// ranking otherwise. The inner solve runs on cached normal-equation
// quantities in per-worker scratch arenas (see gram.go), so steady-state
// composition evaluation is allocation-free.
package fit

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/obs"
	"fluxtrack/internal/par"
	"fluxtrack/internal/rng"
)

// Problem is one fingerprinting instance: what the adversary knows.
type Problem struct {
	model    *fluxmodel.Model
	points   []geom.Point // positions of the sniffed nodes
	measured []float64    // flux readings F′ at those nodes
	weights  []float64    // per-sample weights applied inside the objective
	wb       []float64    // weighted measurement W·F′ (aliases measured when unweighted)

	// origIdx maps each (possibly compacted) sample back to its index in
	// the full sensor layout; nil means the identity. NewProblemMasked sets
	// it so the coarse prestage can align a masked problem with a
	// fingerprint database built over all sample points.
	origIdx []int
	// fullSamples is the sample count of the unmasked layout (len(points)
	// for unmasked problems, len(present) for masked ones); the coarse
	// prestage requires its fingerprint database to match it.
	fullSamples int
}

// NewProblem builds a Problem with unit weights (the plain ‖F − F′‖₂
// objective of Equation 4.1). The sample points and measurements must align
// and be non-empty.
func NewProblem(model *fluxmodel.Model, points []geom.Point, measured []float64) (*Problem, error) {
	return NewProblemWeighted(model, points, measured, nil)
}

// NewProblemWeighted builds a Problem whose objective is the weighted norm
// ‖W(F − F′)‖₂ with W = diag(weights). The flux model fits poorly within a
// couple of hops of a sink (§3.B), and under sparse sampling a single
// near-sink reading can otherwise dominate the objective, so relative
// weights (e.g. 1/(F′_i + q)) make the fit behave like the paper's
// error-rate metric. Pass nil weights for the unweighted objective; weights
// must otherwise align with points and be positive.
func NewProblemWeighted(model *fluxmodel.Model, points []geom.Point, measured, weights []float64) (*Problem, error) {
	if model == nil {
		return nil, errors.New("fit: nil model")
	}
	if len(points) == 0 {
		return nil, errors.New("fit: no sampling points")
	}
	if len(points) != len(measured) {
		return nil, fmt.Errorf("fit: %d points but %d measurements", len(points), len(measured))
	}
	if weights != nil {
		if len(weights) != len(points) {
			return nil, fmt.Errorf("fit: %d points but %d weights", len(points), len(weights))
		}
		for i, w := range weights {
			if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("fit: weight[%d] = %v must be positive and finite", i, w)
			}
		}
		weights = append([]float64(nil), weights...)
	}
	p := &Problem{
		model:       model,
		points:      append([]geom.Point(nil), points...),
		measured:    append([]float64(nil), measured...),
		weights:     weights,
		fullSamples: len(points),
	}
	// Cache the weighted measurement once: every composition evaluation
	// needs it for projections and residuals.
	if weights == nil {
		p.wb = p.measured
	} else {
		p.wb = make([]float64, len(p.measured))
		for i, w := range weights {
			p.wb[i] = w * p.measured[i]
		}
	}
	return p, nil
}

// RelativeWeights returns the weighting scheme used throughout the
// evaluation: w_i = 1/(F′_i + q) with q = 0.2·mean(F′) + 1, which turns the
// objective into (approximately) a relative-error fit and keeps near-sink
// readings from dominating. Use with NewProblemWeighted.
func RelativeWeights(measured []float64) []float64 {
	var mean float64
	for _, f := range measured {
		mean += f
	}
	if len(measured) > 0 {
		mean /= float64(len(measured))
	}
	q := 0.2*mean + 1
	ws := make([]float64, len(measured))
	for i, f := range measured {
		ws[i] = 1 / (math.Max(f, 0) + q)
	}
	return ws
}

// Model returns the flux model of the problem.
func (p *Problem) Model() *fluxmodel.Model { return p.model }

// NumSamples returns the number of sniffed nodes.
func (p *Problem) NumSamples() int { return len(p.points) }

// Measured returns a copy of the measurement vector F′.
func (p *Problem) Measured() []float64 { return append([]float64(nil), p.measured...) }

// KernelColumn returns the kernel vector g(sink, p_i) over the sample
// points. Candidate search precomputes these columns once per candidate.
func (p *Problem) KernelColumn(sink geom.Point) []float64 {
	return p.model.KernelVector(sink, p.points)
}

// Eval is the outcome of evaluating one composition of user positions.
type Eval struct {
	Positions []geom.Point // one position per user
	Stretches []float64    // fitted integrated stretch factors c_j = s_j/r
	Objective float64      // ‖F − F′‖₂ at the optimum over stretches
}

// Evaluate fits the stretch factors for the given candidate positions and
// returns the minimized objective (Equation 4.1 with c solved in closed
// form by NNLS). Callers evaluating repeatedly should hold a Searcher and
// use its Evaluate method, which reuses the evaluation buffers.
func (p *Problem) Evaluate(positions []geom.Point) (Eval, error) {
	var s Searcher
	return s.Evaluate(p, positions)
}

// Options configures the candidate search.
type Options struct {
	// Samples is the number of candidate positions drawn per user when the
	// caller does not supply explicit candidates (default 2000; the paper's
	// instant-localization experiment uses 10000).
	Samples int
	// TopM is how many best compositions / per-user positions to keep
	// (default 10, as in the paper).
	TopM int
	// MaxExhaustive caps the composition count for exhaustive enumeration;
	// above it the iterated conditional search runs instead (default 2e5).
	MaxExhaustive int
	// Sweeps is the number of refinement sweeps of the iterated conditional
	// search (default 3).
	Sweeps int
	// Restarts is how many independent greedy initializations the iterated
	// conditional search tries, keeping the run with the lowest objective
	// (default 3; only one run happens with a single user). Coordinate
	// descent over user positions has local minima — e.g. two estimates
	// collapsing onto one strong user — and restarts with permuted user
	// order escape most of them.
	Restarts int
	// Seed randomizes the restart permutations; runs with equal seeds and
	// inputs are identical.
	Seed uint64
	// Workers bounds the goroutines evaluating candidates concurrently.
	// Candidate evaluations are independent, so parallel and serial runs
	// produce identical results. Zero means GOMAXPROCS; 1 forces serial.
	Workers int
	// Metrics, when non-nil, receives the search's work counters
	// (fit.search.calls, fit.search.columns, fit.nnls.solves,
	// fit.nnls.iters, and — with the coarse prestage on — fit.coarse.*).
	// Metrics are write-only: enabling them never changes search results,
	// and the counter totals are themselves worker-count-invariant because
	// every counted unit of work is. Nil disables instrumentation at the
	// cost of one branch per search.
	Metrics *obs.Metrics
	// Coarse, when non-nil, enables the coarse-to-fine prestage: candidates
	// are shortlisted to Coarse.TopK per user by fingerprint-cell score
	// before the exact Gram/NNLS ranking runs (see coarse.go and
	// internal/fingerprint). Nil runs the exact search over all candidates.
	Coarse *Coarse
	// Robust, when its Mode is set, arms the robust-fitting defense against
	// lying sensors (see robust.go): the search runs twice, deriving
	// per-sensor trust multipliers from the first pass's residuals (Huber
	// IRLS weights, leave-one-sensor-out flags, or both) and re-ranking on
	// the reweighted problem. The zero value keeps the plain single-pass
	// search. Robust searches remain deterministic and worker-count
	// invariant — the reweighting is a serial, pure function of the pass-1
	// result.
	Robust RobustConfig
}

func (o Options) withDefaults() Options {
	if o.Samples <= 0 {
		o.Samples = 2000
	}
	if o.TopM <= 0 {
		o.TopM = 10
	}
	if o.MaxExhaustive <= 0 {
		o.MaxExhaustive = 200000
	}
	if o.Sweeps <= 0 {
		o.Sweeps = 3
	}
	if o.Restarts <= 0 {
		o.Restarts = 3
	}
	return o
}

// Result is the outcome of a localization search.
type Result struct {
	// Best holds the TopM best compositions in ascending objective order.
	Best []Eval
	// PerUser[j] holds user j's TopM best candidate positions with the
	// objective each achieved in its best composition; the SMC filter
	// consumes exactly this ranking.
	PerUser [][]RankedPosition
	// Exhaustive reports whether every composition was enumerated (true) or
	// the iterated conditional approximation ran (false).
	Exhaustive bool
}

// RankedPosition is one candidate position with its best known objective.
type RankedPosition struct {
	Pos       geom.Point
	Index     int     // index of the position in the user's candidate list
	Stretch   float64 // fitted c for this user in that composition
	Objective float64
}

// Localize draws Samples random candidate positions per user inside the
// field and searches for the K-user composition best explaining the
// measurements. It is the paper's instant-localization procedure (§5.A).
func Localize(p *Problem, numUsers int, opts Options, src *rng.Source) (Result, error) {
	opts = opts.withDefaults()
	if numUsers <= 0 {
		return Result{}, fmt.Errorf("fit: numUsers must be positive, got %d", numUsers)
	}
	field := p.model.Field()
	cands := make([][]geom.Point, numUsers)
	for j := range cands {
		cands[j] = make([]geom.Point, opts.Samples)
		for i := range cands[j] {
			cands[j][i] = src.InRect(field)
		}
	}
	return SearchCandidates(p, cands, opts)
}

// SearchCandidates ranks compositions built from explicit per-user candidate
// lists. The SMC tracker calls the equivalent Searcher.Search with a
// long-lived Searcher so the arenas survive across rounds.
func SearchCandidates(p *Problem, candidates [][]geom.Point, opts Options) (Result, error) {
	return NewSearcher().Search(p, candidates, opts)
}

// resolveWorkers and parallelFor delegate to the shared fork-join helper in
// internal/par; the SMC tracker's per-user phases run on the same machinery.
func resolveWorkers(n, workers int) int { return par.Resolve(n, workers) }

func parallelFor(n, workers int, fn func(w, i int) error) error {
	return par.For(n, workers, fn)
}

// insertTopM inserts ev into the ascending-by-objective slice best, keeping
// at most m entries.
func insertTopM(best []Eval, ev Eval, m int) []Eval {
	pos := sort.Search(len(best), func(i int) bool { return best[i].Objective > ev.Objective })
	if pos >= m {
		return best
	}
	best = append(best, Eval{})
	copy(best[pos+1:], best[pos:])
	best[pos] = ev
	if len(best) > m {
		best = best[:m]
	}
	return best
}

// MeanPosition returns the average of the ranked positions, the "report of
// the majority" the paper uses to aggregate the top-M predictions.
func MeanPosition(ranked []RankedPosition) (geom.Point, bool) {
	if len(ranked) == 0 {
		return geom.Point{}, false
	}
	var x, y float64
	for _, r := range ranked {
		x += r.Pos.X
		y += r.Pos.Y
	}
	n := float64(len(ranked))
	return geom.Pt(x/n, y/n), true
}
