package fit

import (
	"math"
	"testing"

	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

func TestNewProblemWeightedValidation(t *testing.T) {
	m, err := fluxmodel.New(geom.Square(30), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	pts := []geom.Point{geom.Pt(5, 5), geom.Pt(10, 10)}
	meas := []float64{1, 2}
	if _, err := NewProblemWeighted(m, pts, meas, []float64{1}); err == nil {
		t.Error("weight length mismatch must error")
	}
	if _, err := NewProblemWeighted(m, pts, meas, []float64{1, 0}); err == nil {
		t.Error("zero weight must error")
	}
	if _, err := NewProblemWeighted(m, pts, meas, []float64{1, -1}); err == nil {
		t.Error("negative weight must error")
	}
	if _, err := NewProblemWeighted(m, pts, meas, []float64{1, math.NaN()}); err == nil {
		t.Error("NaN weight must error")
	}
	if _, err := NewProblemWeighted(m, pts, meas, []float64{1, 2}); err != nil {
		t.Errorf("valid weights rejected: %v", err)
	}
}

func TestWeightedObjectiveScalesResiduals(t *testing.T) {
	truth := geom.Pt(15, 15)
	p, pts := modelProblem(t, []geom.Point{truth}, []float64{2}, 40, 21)

	// Same data with all weights = 2 must double the objective of any
	// (non-optimal) composition.
	weights := make([]float64, len(pts))
	for i := range weights {
		weights[i] = 2
	}
	pw, err := NewProblemWeighted(p.Model(), pts, p.Measured(), weights)
	if err != nil {
		t.Fatal(err)
	}
	wrong := []geom.Point{geom.Pt(5, 25)}
	evA, err := p.Evaluate(wrong)
	if err != nil {
		t.Fatal(err)
	}
	evB, err := pw.Evaluate(wrong)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(evB.Objective-2*evA.Objective) > 1e-6*evA.Objective {
		t.Errorf("uniform 2x weights: objective %v, want %v", evB.Objective, 2*evA.Objective)
	}
	// Fitted stretches are invariant under uniform weighting.
	if math.Abs(evA.Stretches[0]-evB.Stretches[0]) > 1e-9 {
		t.Errorf("stretch changed under uniform weighting: %v vs %v",
			evA.Stretches[0], evB.Stretches[0])
	}
}

func TestRelativeWeights(t *testing.T) {
	meas := []float64{0, 10, 1000}
	ws := RelativeWeights(meas)
	if len(ws) != 3 {
		t.Fatalf("got %d weights", len(ws))
	}
	// Weights are positive and strictly decreasing in the measurement.
	for i, w := range ws {
		if w <= 0 {
			t.Errorf("weight[%d] = %v not positive", i, w)
		}
	}
	if !(ws[0] > ws[1] && ws[1] > ws[2]) {
		t.Errorf("weights not decreasing with flux: %v", ws)
	}
	if got := RelativeWeights(nil); len(got) != 0 {
		t.Errorf("RelativeWeights(nil) = %v", got)
	}
}

func TestWeightedLocalizeStillRecovers(t *testing.T) {
	truth := geom.Pt(12, 18)
	p, pts := modelProblem(t, []geom.Point{truth}, []float64{2}, 90, 22)
	pw, err := NewProblemWeighted(p.Model(), pts, p.Measured(), RelativeWeights(p.Measured()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Localize(pw, 1, Options{Samples: 2000, TopM: 10}, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Best[0].Positions[0].Dist(truth); d > 1.5 {
		t.Errorf("weighted localization error %.2f, want <= 1.5", d)
	}
}
