package fit

import (
	"reflect"
	"testing"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

// TestLocalizeWorkerInvariance checks that the sharded candidate search
// returns the exact same Result (ranking, objectives, stretches — not just
// the top position) at any worker count. The exp-layer golden tests assert
// this end-to-end; this pins the property at the fit layer directly.
func TestLocalizeWorkerInvariance(t *testing.T) {
	truths := []geom.Point{geom.Pt(8, 9), geom.Pt(23, 21)}
	p, _ := modelProblem(t, truths, []float64{1.5, 2.5}, 90, 5)
	base := Options{Samples: 600, TopM: 10}

	run := func(workers int) Result {
		opts := base
		opts.Workers = workers
		// Candidate generation consumes the source, so each run gets a
		// fresh stream from the same seed.
		res, err := Localize(p, 2, opts, rng.New(6))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}

	seq := run(1)
	for _, workers := range []int{2, 3, 8} {
		if par := run(workers); !reflect.DeepEqual(par, seq) {
			t.Errorf("Localize result differs between Workers=1 and Workers=%d", workers)
		}
	}
}

// TestSearchCandidatesWorkerInvariance pins the same property on the
// exhaustive composition search used by the tracker and the A1 ablation.
func TestSearchCandidatesWorkerInvariance(t *testing.T) {
	truths := []geom.Point{geom.Pt(10, 10), geom.Pt(22, 18)}
	p, _ := modelProblem(t, truths, []float64{1.5, 2.5}, 90, 7)
	src := rng.New(8)
	candidates := make([][]geom.Point, 2)
	for j := range candidates {
		candidates[j] = make([]geom.Point, 40)
		for i := range candidates[j] {
			candidates[j][i] = src.InRect(p.Model().Field())
		}
	}

	run := func(workers int) Result {
		res, err := SearchCandidates(p, candidates, Options{TopM: 10, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}

	seq := run(1)
	for _, workers := range []int{2, 4} {
		if par := run(workers); !reflect.DeepEqual(par, seq) {
			t.Errorf("SearchCandidates result differs between Workers=1 and Workers=%d", workers)
		}
	}
}
