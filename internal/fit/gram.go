// Gram-cached composition evaluation.
//
// The candidate search ranks up to MaxExhaustive compositions per call, and
// every composition evaluation is a tiny non-negative least-squares solve
// min ‖W(Ac − F′)‖₂ whose columns are drawn from a fixed per-candidate
// pool. Rather than rebuilding the weighted n×k matrix per composition (the
// pre-PR-2 path: one Dense, one weighted copy of F′, and a general QR-based
// Lawson–Hanson solve, all allocating), the evaluator caches per candidate
//
//	wcol  = W·g(sink)        the weighted kernel column,
//	norm2 = ⟨wcol, wcol⟩     its squared norm (the Gram diagonal),
//	proj  = ⟨wcol, W·F′⟩     its projection onto the weighted measurement,
//
// so a composition only needs the k(k−1)/2 cross-terms ⟨wcolᵢ, wcolⱼ⟩ plus
// a k×k NNLS solved in a preallocated workspace (mat.NNLSGramInto). The
// fitted objective is then recovered from the explicit weighted residual —
// not from the normal-equation identity ‖r‖² = ‖b‖² − 2xᵀd + xᵀGx, which
// cancels catastrophically for good fits — so objectives keep full relative
// precision.
//
// Every Gram entry is a pure function of its candidate pair (the dot
// product runs in ascending index order regardless of which slot changed),
// so evaluations are bit-identical no matter how compositions are sharded
// across workers or in which order slots were filled: the determinism
// contract of internal/exp survives unchanged.
package fit

import (
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mat"
)

// candCol is the per-candidate cache of the Gram evaluator. Pointer
// identity doubles as the cache key inside evalScratch: candCols live in
// stable slices owned by a Searcher for the duration of one search.
type candCol struct {
	wcol  []float64 // weighted kernel column W·g(sink) over the sample points
	norm2 float64   // ⟨wcol, wcol⟩
	proj  float64   // ⟨wcol, wb⟩ with wb the weighted measurement W·F′
}

// fillCandCol computes the candidate cache for one sink position into c,
// whose wcol must already be sized to the sample count. It performs no
// allocations.
func (p *Problem) fillCandCol(sink geom.Point, c *candCol) {
	p.model.KernelVectorInto(sink, p.points, c.wcol)
	p.finishCandCol(c)
}

// finishCandCol weights a raw kernel column in place and computes its Gram
// diagonal and measurement projection. The column must already hold
// g(sink, p_i) over the sample points — either from fillCandCol's
// single-column path or from a batched KernelMatrixInto fill in prepare.
func (p *Problem) finishCandCol(c *candCol) {
	wcol := c.wcol
	if p.weights != nil {
		for i, w := range p.weights {
			wcol[i] *= w
		}
	}
	var norm2, proj float64
	for i, v := range wcol {
		norm2 += v * v
		proj += v * p.wb[i]
	}
	c.norm2, c.proj = norm2, proj
}

// evalScratch is one worker's reusable state for evaluating compositions:
// the current composition's Gram matrix and projections, the NNLS solution
// and workspace, and a residual buffer. After ensure has sized it, the
// evaluate path (setK/setCol/solve) performs zero heap allocations.
//
// The scratch caches the composition incrementally: setCol is a no-op when
// the slot already holds the same candidate, so enumeration orders that
// vary one user at a time (the mixed-radix exhaustive scan, the
// one-user-at-a-time conditional scan) only pay for the Gram row that
// actually changed — a rank-1 row update instead of a full k×k recompute.
type evalScratch struct {
	n, k  int
	cur   []*candCol // current composition, slot-indexed; nil = unset
	gram  []float64  // k×k row-major Gram matrix of the current composition
	d     []float64  // per-slot projections ⟨wcol, wb⟩
	x     []float64  // NNLS solution (fitted stretches), valid after solve
	resid []float64  // length-n weighted residual buffer
	ws    mat.NNLSWorkspace
}

// ensure sizes the scratch for problems with n samples and compositions of
// up to kMax users, and invalidates any cached composition (the caller may
// have rewritten the candidate pool backing the cached pointers).
func (sc *evalScratch) ensure(n, kMax int) {
	if cap(sc.cur) < kMax {
		sc.cur = make([]*candCol, kMax)
		sc.gram = make([]float64, kMax*kMax)
		sc.d = make([]float64, kMax)
		sc.x = make([]float64, kMax)
	}
	if cap(sc.resid) < n {
		sc.resid = make([]float64, n)
	}
	sc.resid = sc.resid[:n]
	sc.n = n
	sc.k = 0 // forces the next setK to clear the slot cache
}

// setK sets the active composition size. Changing the size relayouts the
// Gram matrix, so the slot cache is cleared.
func (sc *evalScratch) setK(k int) {
	if sc.k == k {
		return
	}
	sc.k = k
	cur := sc.cur[:k]
	for j := range cur {
		cur[j] = nil
	}
}

// setCol installs candidate c in slot j, refreshing row and column j of the
// Gram matrix against the other occupied slots. Unchanged slots (pointer
// equality) cost nothing.
func (sc *evalScratch) setCol(j int, c *candCol) {
	if sc.cur[j] == c {
		return
	}
	sc.cur[j] = c
	k := sc.k
	sc.d[j] = c.proj
	sc.gram[j*k+j] = c.norm2
	for o := 0; o < k; o++ {
		oc := sc.cur[o]
		if o == j || oc == nil {
			continue
		}
		v := mat.Dot(c.wcol, oc.wcol)
		sc.gram[j*k+o] = v
		sc.gram[o*k+j] = v
	}
}

// solve fits the stretch factors of the current composition and returns the
// minimized weighted objective ‖W(Ac − F′)‖₂. The fitted stretches are left
// in sc.x[:sc.k], slot-aligned. Steady state performs no heap allocations.
func (sc *evalScratch) solve(p *Problem) float64 {
	k := sc.k
	mat.NNLSGramInto(sc.gram[:k*k], sc.d[:k], sc.x[:k], &sc.ws)
	resid := sc.resid
	copy(resid, p.wb)
	for j := 0; j < k; j++ {
		xj := sc.x[j]
		if xj == 0 {
			continue
		}
		for i, v := range sc.cur[j].wcol {
			resid[i] -= xj * v
		}
	}
	return mat.Norm2(resid)
}

// makeEval materializes an Eval from slot-aligned positions and stretches.
// The search paths call it only for compositions that actually enter a
// top-M list or improve a per-user best, so steady-state evaluations — the
// overwhelming majority — allocate nothing.
func makeEval(positions []geom.Point, stretches []float64, obj float64) Eval {
	return Eval{
		Positions: append([]geom.Point(nil), positions...),
		Stretches: append([]float64(nil), stretches...),
		Objective: obj,
	}
}
