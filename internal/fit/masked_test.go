package fit

import (
	"errors"
	"math"
	"testing"

	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

func maskedTestModel(t *testing.T) *fluxmodel.Model {
	t.Helper()
	m, err := fluxmodel.New(geom.Square(30), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestNewProblemMaskedMatchesHandCompaction: the masked constructor must be
// exactly equivalent to building the problem from hand-compacted slices —
// same objective for any composition.
func TestNewProblemMaskedMatchesHandCompaction(t *testing.T) {
	m := maskedTestModel(t)
	src := rng.New(31)
	pts := make([]geom.Point, 40)
	meas := make([]float64, 40)
	ws := make([]float64, 40)
	present := make([]bool, 40)
	for i := range pts {
		pts[i] = src.InRect(m.Field())
		meas[i] = src.Uniform(0, 50)
		ws[i] = src.Uniform(0.1, 2)
		present[i] = src.Float64() < 0.6
	}
	present[3] = true // at least one survivor

	var cp []geom.Point
	var cm, cw []float64
	for i, ok := range present {
		if ok {
			cp = append(cp, pts[i])
			cm = append(cm, meas[i])
			cw = append(cw, ws[i])
		}
	}
	for _, weighted := range []bool{false, true} {
		var w, cwUse []float64
		if weighted {
			w, cwUse = ws, cw
		}
		masked, err := NewProblemMasked(m, pts, meas, w, present)
		if err != nil {
			t.Fatal(err)
		}
		manual, err := NewProblemWeighted(m, cp, cm, cwUse)
		if err != nil {
			t.Fatal(err)
		}
		if masked.NumSamples() != len(cp) {
			t.Fatalf("masked problem has %d samples, want %d", masked.NumSamples(), len(cp))
		}
		positions := []geom.Point{src.InRect(m.Field()), src.InRect(m.Field())}
		em, err := masked.Evaluate(positions)
		if err != nil {
			t.Fatal(err)
		}
		eh, err := manual.Evaluate(positions)
		if err != nil {
			t.Fatal(err)
		}
		if em.Objective != eh.Objective {
			t.Errorf("weighted=%v: masked objective %v, hand-compacted %v", weighted, em.Objective, eh.Objective)
		}
		for j := range em.Stretches {
			if em.Stretches[j] != eh.Stretches[j] {
				t.Errorf("weighted=%v: stretch[%d] %v vs %v", weighted, j, em.Stretches[j], eh.Stretches[j])
			}
		}
	}
}

// TestNewProblemMaskedNilPresent: a nil mask is the full problem.
func TestNewProblemMaskedNilPresent(t *testing.T) {
	m := maskedTestModel(t)
	pts := []geom.Point{geom.Pt(5, 5), geom.Pt(20, 10)}
	meas := []float64{3, 7}
	p, err := NewProblemMasked(m, pts, meas, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSamples() != 2 {
		t.Errorf("nil mask kept %d samples, want 2", p.NumSamples())
	}
}

// TestNewProblemMaskedAllMasked: an all-false mask is the typed error.
func TestNewProblemMaskedAllMasked(t *testing.T) {
	m := maskedTestModel(t)
	pts := []geom.Point{geom.Pt(5, 5), geom.Pt(20, 10)}
	meas := []float64{3, 7}
	_, err := NewProblemMasked(m, pts, meas, nil, []bool{false, false})
	if !errors.Is(err, ErrAllMasked) {
		t.Fatalf("all-masked error = %v, want ErrAllMasked", err)
	}
}

// TestNewProblemMaskedValidation: misaligned vectors are rejected.
func TestNewProblemMaskedValidation(t *testing.T) {
	m := maskedTestModel(t)
	pts := []geom.Point{geom.Pt(5, 5), geom.Pt(20, 10)}
	if _, err := NewProblemMasked(m, pts, []float64{1, 2}, nil, []bool{true}); err == nil {
		t.Error("short mask accepted")
	}
	if _, err := NewProblemMasked(m, pts, []float64{1}, nil, []bool{true, true}); err == nil {
		t.Error("short measurement accepted")
	}
	if _, err := NewProblemMasked(m, pts, []float64{1, 2}, []float64{1}, []bool{true, true}); err == nil {
		t.Error("short weights accepted")
	}
}

// TestRelativeWeightsMasked: present-only statistics must match
// RelativeWeights computed on the compacted vector, and a nil mask must be
// the plain RelativeWeights.
func TestRelativeWeightsMasked(t *testing.T) {
	meas := []float64{10, 200, 0, 35, 7}
	present := []bool{true, false, true, true, false}
	got := RelativeWeightsMasked(meas, present)
	if len(got) != len(meas) {
		t.Fatalf("weight length %d, want %d", len(got), len(meas))
	}
	var compact []float64
	for i, f := range meas {
		if present[i] {
			compact = append(compact, f)
		}
	}
	want := RelativeWeights(compact)
	wi := 0
	for i := range meas {
		if !present[i] {
			if got[i] != 1 {
				t.Errorf("masked slot %d weight %v, want placeholder 1", i, got[i])
			}
			continue
		}
		if math.Abs(got[i]-want[wi]) > 1e-15 {
			t.Errorf("slot %d weight %v, want %v", i, got[i], want[wi])
		}
		wi++
	}

	if nilGot := RelativeWeightsMasked(meas, nil); len(nilGot) != len(meas) {
		t.Fatal("nil mask length mismatch")
	} else {
		plain := RelativeWeights(meas)
		for i := range plain {
			if nilGot[i] != plain[i] {
				t.Errorf("nil mask slot %d: %v, want %v", i, nilGot[i], plain[i])
			}
		}
	}
}
