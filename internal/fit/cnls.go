package fit

import (
	"fmt"
	"math"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/mat"
	"fluxtrack/internal/rng"
)

// CNLSTracker is the constrained nonlinear least-squares tracker the
// paper's related work pairs with the EKF for remote tracking ([9], [23]):
// at each observation it solves the NLS position fit for a single user,
// with the motion model imposed as a soft constraint pulling the solution
// into the disc of radius vmax·Δt around the previous estimate. Like every
// linearized local method on the flux objective, it needs the previous
// estimate to be good; the A6 experiment quantifies that against the SMC
// tracker.
type CNLSTracker struct {
	model    modelIface
	points   []geom.Point
	vmax     float64
	prev     geom.Point
	prevTime float64
	hasPrev  bool
	restarts int
}

// modelIface is the slice of fluxmodel.Model the tracker needs; it keeps
// the tracker testable with stub models.
type modelIface interface {
	Field() geom.Rect
	PredictFlux(sinks []geom.Point, cs []float64, pts []geom.Point) ([]float64, error)
}

// NewCNLSTracker builds a CNLS tracker over the sniffed points. vmax bounds
// the user's speed; restarts controls the LM multistart count per step
// (default 5).
func NewCNLSTracker(model modelIface, points []geom.Point, vmax float64, restarts int) (*CNLSTracker, error) {
	if model == nil {
		return nil, fmt.Errorf("fit: nil model")
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("fit: no sampling points")
	}
	if vmax <= 0 {
		return nil, fmt.Errorf("fit: vmax must be positive, got %v", vmax)
	}
	if restarts <= 0 {
		restarts = 5
	}
	return &CNLSTracker{
		model:    model,
		points:   append([]geom.Point(nil), points...),
		vmax:     vmax,
		restarts: restarts,
	}, nil
}

// Seed initializes the previous-position estimate (e.g. from an oracle or a
// one-shot localization) so the motion constraint can anchor the first step.
func (c *CNLSTracker) Seed(pos geom.Point, t float64) {
	c.prev = c.model.Field().Clamp(pos)
	c.prevTime = t
	c.hasPrev = true
}

// Position returns the current estimate (the field center before any
// update).
func (c *CNLSTracker) Position() geom.Point {
	if !c.hasPrev {
		return c.model.Field().Center()
	}
	return c.prev
}

// Step consumes the flux observation at time t and returns the new position
// estimate.
func (c *CNLSTracker) Step(t float64, measured []float64, src *rng.Source) (geom.Point, error) {
	if len(measured) != len(c.points) {
		return geom.Point{}, fmt.Errorf("fit: observation length %d, want %d", len(measured), len(c.points))
	}
	field := c.model.Field()
	radius := field.Diameter() // unconstrained before the first estimate
	anchor := field.Center()
	if c.hasPrev {
		anchor = c.prev
		radius = c.vmax * math.Max(t-c.prevTime, 0)
	}

	// Penalty weight scales with the observation magnitude so the motion
	// constraint competes with the data term.
	var obsNorm float64
	for _, f := range measured {
		obsNorm += f * f
	}
	penalty := math.Sqrt(obsNorm)/float64(len(measured)) + 1

	residuals := func(x []float64) []float64 {
		pos := field.Clamp(geom.Pt(x[0], x[1]))
		cs := []float64{math.Max(0, x[2])}
		pred, err := c.model.PredictFlux([]geom.Point{pos}, cs, c.points)
		if err != nil {
			pred = make([]float64, len(c.points))
		}
		out := make([]float64, len(c.points)+1)
		for i := range pred {
			out[i] = pred[i] - measured[i]
		}
		// Soft motion constraint: zero inside the disc, growing outside.
		if c.hasPrev {
			if d := pos.Dist(anchor); d > radius {
				out[len(pred)] = penalty * (d - radius)
			}
		}
		return out
	}

	best := geom.Point{}
	bestObj := math.Inf(1)
	for attempt := 0; attempt < c.restarts; attempt++ {
		var start geom.Point
		if attempt == 0 {
			start = anchor
		} else {
			start = src.InDiscClamped(anchor, math.Max(radius, 1), field)
		}
		x0 := []float64{start.X, start.Y, 1}
		res, err := mat.LevenbergMarquardt(residuals, x0, mat.NLSOptions{MaxIter: 120})
		if err != nil && res.X == nil {
			continue
		}
		if res.Objective < bestObj {
			bestObj = res.Objective
			best = field.Clamp(geom.Pt(res.X[0], res.X[1]))
		}
	}
	if math.IsInf(bestObj, 1) {
		return geom.Point{}, fmt.Errorf("fit: all CNLS restarts failed")
	}
	// Enforce the hard constraint on the accepted step.
	if c.hasPrev {
		if d := best.Dist(anchor); d > radius && d > 0 {
			v := best.Sub(anchor).Scale(radius / d)
			best = field.Clamp(anchor.Add(v))
		}
	}
	c.prev = best
	c.prevTime = t
	c.hasPrev = true
	return best, nil
}
