package fit

import (
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
	"math"
	"testing"
)

func TestParseRobustMode(t *testing.T) {
	cases := map[string]RobustMode{
		"": RobustOff, "off": RobustOff, "none": RobustOff,
		"huber": RobustHuber, "loso": RobustLOSO, "both": RobustBoth,
	}
	for s, want := range cases {
		got, err := ParseRobustMode(s)
		if err != nil || got != want {
			t.Errorf("ParseRobustMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseRobustMode("hubr"); err == nil {
		t.Error("unknown mode accepted")
	}
	for _, m := range []RobustMode{RobustOff, RobustHuber, RobustLOSO, RobustBoth} {
		back, err := ParseRobustMode(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v -> %q -> %v, %v", m, m.String(), back, err)
		}
	}
}

// poisonedProblem builds a model-exact problem, then multiplies the readings
// of `liars` sensors by factor. Liars are picked in index order (so they
// scatter across the field) among sensors whose clean reading is material —
// at least 30% of the mean magnitude — because a lie on a sensor below the
// robust tests' noise floor q is both undetectable in principle and harmless
// to the fit. Because the clean measurements fit the model exactly, every
// nonzero residual at the true composition is the liars' doing. Returns the
// liar index set alongside the problem.
func poisonedProblem(t testing.TB, sinks []geom.Point, cs []float64, nSamples, liars int, factor float64, seed uint64) (*Problem, map[int]bool) {
	t.Helper()
	p, pts := modelProblem(t, sinks, cs, nSamples, seed)
	measured := p.Measured()
	var mean float64
	for _, v := range measured {
		mean += math.Abs(v)
	}
	mean /= float64(len(measured))
	liarSet := make(map[int]bool, liars)
	for i := range measured {
		if len(liarSet) == liars {
			break
		}
		if math.Abs(measured[i]) < 0.3*mean {
			continue
		}
		measured[i] *= factor
		liarSet[i] = true
	}
	if len(liarSet) < liars {
		t.Fatalf("only %d of %d requested liars have material readings", len(liarSet), liars)
	}
	p2, err := NewProblem(p.Model(), pts, measured)
	if err != nil {
		t.Fatal(err)
	}
	return p2, liarSet
}

// TestRobustMultipliersCleanData: on a model-exact problem the residuals at
// the true composition vanish, so no mode may adjust anything.
func TestRobustMultipliersCleanData(t *testing.T) {
	sinks := []geom.Point{geom.Pt(10, 10), geom.Pt(22, 18)}
	p, _ := modelProblem(t, sinks, []float64{1.5, 2.5}, 90, 1)
	ev, err := p.Evaluate(sinks)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher()
	for _, mode := range []RobustMode{RobustHuber, RobustLOSO, RobustBoth} {
		mult, rep, err := s.RobustMultipliers(p, ev, RobustConfig{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if rep.Adjusted {
			t.Errorf("%v: clean data reported Adjusted", mode)
		}
		for i, m := range mult {
			if m != 1 {
				t.Fatalf("%v: clean data multiplier[%d] = %v", mode, i, m)
			}
		}
	}
}

// TestRobustMultipliersFlagPoisonedSensors: every mode must single out the
// inflated sensors — minimum multiplier among the liars, LOSO flags exactly
// within the liar set — and keep all multipliers in [multFloor, 1].
func TestRobustMultipliersFlagPoisonedSensors(t *testing.T) {
	sinks := []geom.Point{geom.Pt(10, 10), geom.Pt(22, 18)}
	liars := 9 // 10% of 90
	p, liarSet := poisonedProblem(t, sinks, []float64{1.5, 2.5}, 90, liars, 5, 1)
	ev, err := p.Evaluate(sinks)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher()
	for _, mode := range []RobustMode{RobustHuber, RobustLOSO, RobustBoth} {
		mult, rep, err := s.RobustMultipliers(p, ev, RobustConfig{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !rep.Adjusted {
			t.Fatalf("%v: poisoned data not adjusted", mode)
		}
		var liarMax, honestMin float64 = 0, 1
		for i, m := range mult {
			if m < multFloor || m > 1 {
				t.Fatalf("%v: multiplier[%d] = %v outside [%v, 1]", mode, i, m, multFloor)
			}
			if liarSet[i] {
				liarMax = math.Max(liarMax, m)
			} else {
				honestMin = math.Min(honestMin, m)
			}
		}
		if liarMax >= honestMin {
			t.Errorf("%v: worst liar multiplier %v not below best honest %v", mode, liarMax, honestMin)
		}
		// LOSO's graded ramp leaves a just-past-threshold liar most of its
		// weight by design; only the Huber-bearing modes promise deep cuts.
		if mode != RobustLOSO && liarMax > 0.5 {
			t.Errorf("%v: liars kept multiplier %v, want < 0.5", mode, liarMax)
		}
		if mode == RobustLOSO || mode == RobustBoth {
			if len(rep.Flagged) == 0 {
				t.Errorf("%v: LOSO flagged nothing", mode)
			}
			for _, i := range rep.Flagged {
				if !liarSet[i] {
					t.Errorf("%v: LOSO flagged honest sensor %d", mode, i)
				}
			}
		}
	}
}

// TestRobustMultipliersDeterminism: multipliers are a pure function of
// (problem, eval, config) — two searchers, same inputs, bit-identical output.
func TestRobustMultipliersDeterminism(t *testing.T) {
	sinks := []geom.Point{geom.Pt(8, 20), geom.Pt(24, 9)}
	p, _ := poisonedProblem(t, sinks, []float64{2, 1.2}, 120, 12, 4, 3)
	ev, err := p.Evaluate(sinks)
	if err != nil {
		t.Fatal(err)
	}
	rc := RobustConfig{Mode: RobustBoth}
	m1, rep1, err := NewSearcher().RobustMultipliers(p, ev, rc)
	if err != nil {
		t.Fatal(err)
	}
	m2, rep2, err := NewSearcher().RobustMultipliers(p, ev, rc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("multiplier[%d] differs: %v vs %v", i, m1[i], m2[i])
		}
	}
	if len(rep1.Flagged) != len(rep2.Flagged) || rep1.Scale != rep2.Scale {
		t.Fatalf("reports differ: %+v vs %+v", rep1, rep2)
	}
}

// TestRobustSearchCleanIdentity: over clean data a robust search must return
// the plain search's result untouched (the Adjusted short-circuit).
func TestRobustSearchCleanIdentity(t *testing.T) {
	sinks := []geom.Point{geom.Pt(10, 10), geom.Pt(22, 18)}
	p, _ := modelProblem(t, sinks, []float64{1.5, 2.5}, 90, 1)
	src := rng.New(9)
	cands := make([][]geom.Point, 2)
	for j := range cands {
		cands[j] = make([]geom.Point, 80)
		for i := range cands[j] {
			cands[j][i] = src.InRect(p.Model().Field())
		}
		cands[j][0] = sinks[j] // make sure a good composition exists
	}
	plain, err := SearchCandidates(p, cands, Options{TopM: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []RobustMode{RobustHuber, RobustLOSO, RobustBoth} {
		rob, err := SearchCandidates(p, cands, Options{TopM: 5, Robust: RobustConfig{Mode: mode}})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if rob.Best[0].Objective != plain.Best[0].Objective {
			t.Errorf("%v: clean-data robust objective %v != plain %v",
				mode, rob.Best[0].Objective, plain.Best[0].Objective)
		}
		for j, pos := range rob.Best[0].Positions {
			if pos != plain.Best[0].Positions[j] {
				t.Errorf("%v: clean-data robust position %d differs: %v vs %v",
					mode, j, pos, plain.Best[0].Positions[j])
			}
		}
	}
}

// TestRobustSearchWorkerInvariance: the two-pass robust search must return
// bit-identical results at any worker count — the contract that lets
// internal/exp thread Robust through its golden suite unchanged.
func TestRobustSearchWorkerInvariance(t *testing.T) {
	sinks := []geom.Point{geom.Pt(10, 10), geom.Pt(22, 18)}
	p, _ := poisonedProblem(t, sinks, []float64{1.5, 2.5}, 90, 9, 5, 1)
	src := rng.New(4)
	cands := make([][]geom.Point, 2)
	for j := range cands {
		cands[j] = make([]geom.Point, 120)
		for i := range cands[j] {
			cands[j][i] = src.InRect(p.Model().Field())
		}
	}
	opts := Options{TopM: 5, Robust: RobustConfig{Mode: RobustBoth}}
	var ref Result
	for _, workers := range []int{1, 4, 8} {
		o := opts
		o.Workers = workers
		res, err := SearchCandidates(p, cands, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if workers == 1 {
			ref = res
			continue
		}
		if res.Best[0].Objective != ref.Best[0].Objective {
			t.Errorf("workers=%d: objective %v != sequential %v",
				workers, res.Best[0].Objective, ref.Best[0].Objective)
		}
		for j, pos := range res.Best[0].Positions {
			if pos != ref.Best[0].Positions[j] {
				t.Errorf("workers=%d: position %d = %v != sequential %v",
					workers, j, pos, ref.Best[0].Positions[j])
			}
		}
	}
}

// TestRobustLocalizeRecoversFromLiars: with 10% of sensors inflating 5x, the
// defended localization must land closer to the true sinks than the plain
// one on the same problem and candidate draws. Everything is deterministic,
// so the margin is pinned, not statistical.
func TestRobustLocalizeRecoversFromLiars(t *testing.T) {
	sinks := []geom.Point{geom.Pt(10, 10), geom.Pt(22, 18)}
	meanErr := func(res Result) float64 {
		sum := 0.0
		for _, est := range res.Best[0].Positions {
			d := math.Inf(1)
			for _, s := range sinks {
				d = math.Min(d, est.Dist(s))
			}
			sum += d
		}
		return sum / float64(len(res.Best[0].Positions))
	}
	var plainTotal, robustTotal float64
	for seed := uint64(1); seed <= 3; seed++ {
		p, _ := poisonedProblem(t, sinks, []float64{1.5, 2.5}, 90, 9, 5, seed)
		plain, err := Localize(p, 2, Options{Samples: 400, TopM: 5, Seed: seed}, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		rob, err := Localize(p, 2, Options{Samples: 400, TopM: 5, Seed: seed,
			Robust: RobustConfig{Mode: RobustBoth}}, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		plainTotal += meanErr(plain)
		robustTotal += meanErr(rob)
	}
	if robustTotal >= plainTotal {
		t.Errorf("robust fit error %.3f did not beat plain %.3f under 10%% liars", robustTotal, plainTotal)
	}
}
