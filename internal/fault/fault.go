// Package fault is a deterministic fault-injection layer for degraded
// sensing: it perturbs the observation stream between the traffic
// simulator (or an obslog replay) and the SMC tracker, modeling the ways a
// real deployment fails to deliver the clean, synchronous flux reports the
// paper's attack assumes (§4.E already concedes reports arrive late or not
// at all):
//
//   - hard failure: a sensor dies permanently at some round and never
//     reports again (battery exhaustion, physical destruction);
//   - intermittent loss: a report is dropped this round with a per-round
//     Bernoulli probability (collisions, fading, congested sniffing);
//   - delayed delivery: a report arrives k rounds late, exercising the
//     asynchronous-update path — the consumer sees it with a staleness age
//     so it can inflate the report's uncertainty instead of fitting it as
//     fresh;
//   - stuck readings: a sensor keeps reporting its first observed value
//     forever (saturated counter, frozen firmware) — present but lying.
//
// Beyond benign degradation, the package also models malice: the Adversary
// (adversary.go) compromises a deterministic subset of sensors with
// Byzantine behaviors — readings inflated or deflated by a factor, replays
// of the sensor's own earlier truth, and colluding coalitions that bias a
// whole region coherently. Tampering composes with the Injector (tamper
// first, then degrade), and the defense side lives in internal/fit's robust
// fitting options.
//
// Every draw comes from a dedicated splitmix64-finalizer substream keyed by
// (seed, round, sensor, fault kind), never from a shared sequential stream:
// which faults fire is a pure function of the injector seed and the round
// index, so trials that own their injector stay byte-identical at any
// worker count (the determinism contract of internal/exp §6).
package fault

import (
	"fmt"
	"math"

	"fluxtrack/internal/obs"
)

// Config selects which faults an Injector applies and how hard. The zero
// value disables everything (Apply becomes a lossless pass-through with all
// reports present and fresh).
type Config struct {
	// DropoutFrac is the expected fraction of sensors that fail
	// permanently: each sensor is independently marked failed with this
	// probability at injector construction.
	DropoutFrac float64
	// FailWindow spreads hard failures over time: a failed sensor's last
	// round alive is drawn uniformly from {0, ..., FailWindow-1} (the
	// sensor is absent from every round >= that draw). Zero means 1 —
	// failed sensors are dead from the first round.
	FailWindow int
	// LossProb is the per-round, per-sensor probability that a report is
	// lost outright (it never arrives, not even late).
	LossProb float64
	// DelayProb is the per-round, per-sensor probability that a surviving
	// report is delayed rather than delivered immediately.
	DelayProb float64
	// DelayRounds is how many rounds late a delayed report arrives; the
	// consumer sees it with Age == DelayRounds. Zero means 2 when
	// DelayProb > 0.
	DelayRounds int
	// StuckFrac is the expected fraction of sensors whose reading freezes
	// at its first delivered value: each sensor is independently marked
	// stuck at construction.
	StuckFrac float64
	// Seed salts the injector's substream on top of the per-trial seed, so
	// two fault configurations in one trial can draw independently.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.FailWindow <= 0 {
		c.FailWindow = 1
	}
	if c.DelayRounds <= 0 && c.DelayProb > 0 {
		c.DelayRounds = 2
	}
	return c
}

// Enabled reports whether the configuration perturbs anything at all.
func (c Config) Enabled() bool {
	return c.DropoutFrac > 0 || c.LossProb > 0 || c.DelayProb > 0 || c.StuckFrac > 0
}

// Validate rejects probabilities outside [0, 1] and non-finite values.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"DropoutFrac", c.DropoutFrac},
		{"LossProb", c.LossProb},
		{"DelayProb", c.DelayProb},
		{"StuckFrac", c.StuckFrac},
	} {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s = %v outside [0, 1]", p.name, p.v)
		}
	}
	if c.FailWindow < 0 {
		return fmt.Errorf("fault: FailWindow = %d negative", c.FailWindow)
	}
	if c.DelayRounds < 0 {
		return fmt.Errorf("fault: DelayRounds = %d negative", c.DelayRounds)
	}
	return nil
}

// Observation is one round's degraded view of the sensor readings.
type Observation struct {
	// Readings holds the delivered values, aligned with the true readings;
	// entries where Present is false are zero and meaningless.
	Readings []float64
	// Present marks which sensors delivered a report this round.
	Present []bool
	// Age is each delivered report's staleness in rounds: 0 means the
	// report was measured this round, k > 0 means it was measured k rounds
	// ago and only arrived now (delayed delivery). Meaningless where
	// Present is false.
	Age []int
}

// Delivered returns how many reports are present.
func (o Observation) Delivered() int {
	n := 0
	for _, p := range o.Present {
		if p {
			n++
		}
	}
	return n
}

// pendingReport is a delayed report in flight: measured at round origin,
// scheduled to arrive at round arrive.
type pendingReport struct {
	origin, arrive int
	value          float64
}

// Injector applies one Config to a sequential stream of observation rounds
// for a fixed set of sensors. It is stateful (delayed reports in flight,
// frozen stuck values) and must be used by one goroutine for one trial;
// construct one injector per trial, seeded from the trial seed, and output
// is byte-identical regardless of how trials shard over workers.
type Injector struct {
	cfg  Config
	seed uint64
	n    int

	// lastAlive[i] is the last round sensor i reports (math.MaxInt when the
	// sensor never fails).
	lastAlive []int
	stuck     []bool
	stuckVal  []float64
	stuckSet  []bool
	// pending[i] holds sensor i's delayed reports, in origin order.
	pending [][]pendingReport
	round   int

	// met holds the bound fault.* counter handles; the zero value is the
	// disabled instrument set.
	met injectorMetrics
}

// injectorMetrics caches the injector's counter handles. Every counter is a
// deterministic count — which faults fire is a pure function of the injector
// seed and the round index — so totals are identical at any worker count.
type injectorMetrics struct {
	m              *obs.Metrics
	shard          int
	rounds         *obs.Counter // fault.rounds
	deliveredFresh *obs.Counter // fault.delivered_fresh
	deliveredStale *obs.Counter // fault.delivered_stale
	dead           *obs.Counter // fault.dead: reports swallowed by hard failure
	lost           *obs.Counter // fault.lost: reports dropped outright
	delayed        *obs.Counter // fault.delayed: reports put in flight
	stuck          *obs.Counter // fault.stuck: readings frozen at a stale value
}

// SetMetrics binds (or, with nil, unbinds) the observability registry the
// injector reports its fault.* counters to. Metrics are write-only and never
// change which faults fire. Bind once, before the first Apply.
func (in *Injector) SetMetrics(m *obs.Metrics) {
	if m == nil {
		in.met = injectorMetrics{}
		return
	}
	in.met = injectorMetrics{
		m:              m,
		shard:          int(in.seed),
		rounds:         m.Counter("fault.rounds"),
		deliveredFresh: m.Counter("fault.delivered_fresh"),
		deliveredStale: m.Counter("fault.delivered_stale"),
		dead:           m.Counter("fault.dead"),
		lost:           m.Counter("fault.lost"),
		delayed:        m.Counter("fault.delayed"),
		stuck:          m.Counter("fault.stuck"),
	}
}

// mix64 is the splitmix64 finalizer, the same bijection the SMC tracker
// uses to derive per-user substreams.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Salt constants separating the draw domains: a dropout draw and a loss
// draw for the same (round, sensor) must be independent.
const (
	saltFail = iota + 1
	saltFailRound
	saltLoss
	saltDelay
	saltStuck
)

// draw returns a uniform value in [0, 1) keyed by (seed, round, sensor,
// salt). It is a pure function of its arguments — no sequential state — so
// the faults that fire at round r do not depend on how many draws earlier
// rounds consumed.
func (in *Injector) draw(round, sensor, salt int) float64 {
	z := in.seed
	z = mix64(z + uint64(salt)*0x9e3779b97f4a7c15)
	z = mix64(z + uint64(round+1)*0xbf58476d1ce4e5b9)
	z = mix64(z + uint64(sensor+1)*0x94d049bb133111eb)
	return float64(z>>11) / (1 << 53)
}

// NewInjector builds an Injector over numSensors sensors. The per-trial
// seed combines with cfg.Seed; construction performs all of the per-sensor
// lifetime draws (hard failures, stuck marks), so they are fixed before the
// first round.
func NewInjector(cfg Config, numSensors int, seed uint64) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numSensors <= 0 {
		return nil, fmt.Errorf("fault: numSensors must be positive, got %d", numSensors)
	}
	cfg = cfg.withDefaults()
	in := &Injector{
		cfg:       cfg,
		seed:      mix64(seed ^ mix64(cfg.Seed+0x9e3779b97f4a7c15)),
		n:         numSensors,
		lastAlive: make([]int, numSensors),
		stuck:     make([]bool, numSensors),
		stuckVal:  make([]float64, numSensors),
		stuckSet:  make([]bool, numSensors),
		pending:   make([][]pendingReport, numSensors),
	}
	for i := 0; i < numSensors; i++ {
		in.lastAlive[i] = math.MaxInt
		if cfg.DropoutFrac > 0 && in.draw(0, i, saltFail) < cfg.DropoutFrac {
			// Last round alive in {-1, ..., FailWindow-2}: with the default
			// FailWindow of 1 the sensor never reports at all.
			in.lastAlive[i] = int(in.draw(0, i, saltFailRound)*float64(cfg.FailWindow)) - 1
		}
		if cfg.StuckFrac > 0 {
			in.stuck[i] = in.draw(0, i, saltStuck) < cfg.StuckFrac
		}
	}
	return in, nil
}

// NumSensors returns the number of sensors the injector was built for.
func (in *Injector) NumSensors() int { return in.n }

// Rounds returns how many observation rounds the injector has consumed.
func (in *Injector) Rounds() int { return in.round }

// Apply consumes the true readings for the next observation round and
// returns the degraded view. Rounds are implicit and sequential: the i-th
// Apply call is round i. The returned slices are freshly allocated and
// safe to retain.
func (in *Injector) Apply(readings []float64) (Observation, error) {
	if len(readings) != in.n {
		return Observation{}, fmt.Errorf("fault: %d readings, injector built for %d sensors", len(readings), in.n)
	}
	r := in.round
	in.round++
	out := Observation{
		Readings: make([]float64, in.n),
		Present:  make([]bool, in.n),
		Age:      make([]int, in.n),
	}
	// Per-kind tallies accumulate in locals and flush into the counters once
	// per Apply, so the hot loop pays no atomics when metrics are bound and
	// nothing at all when they are not.
	var nFresh, nStale, nDead, nLost, nDelayed, nStuck uint64
	for i, v := range readings {
		// Stuck sensors freeze at the first value they would have reported.
		if in.stuck[i] {
			if !in.stuckSet[i] {
				in.stuckVal[i], in.stuckSet[i] = v, true
			} else {
				nStuck++
			}
			v = in.stuckVal[i]
		}

		// Hard failure gates everything, including queued deliveries: a
		// dead sensor's radio is gone.
		if r > in.lastAlive[i] {
			in.pending[i] = in.pending[i][:0]
			nDead++
			continue
		}

		fresh := true
		if in.cfg.LossProb > 0 && in.draw(r, i, saltLoss) < in.cfg.LossProb {
			fresh = false // lost outright, never delivered
			nLost++
		} else if in.cfg.DelayProb > 0 && in.draw(r, i, saltDelay) < in.cfg.DelayProb {
			fresh = false
			nDelayed++
			in.pending[i] = append(in.pending[i], pendingReport{
				origin: r, arrive: r + in.cfg.DelayRounds, value: v,
			})
		}

		if fresh {
			// A fresh report supersedes anything still in flight: the
			// consumer would discard older data for this sensor anyway.
			out.Readings[i], out.Present[i], out.Age[i] = v, true, 0
			in.pending[i] = in.pending[i][:0]
			nFresh++
			continue
		}
		// No fresh report: deliver the newest matured delayed report, if
		// any, and keep the not-yet-matured ones in flight.
		q := in.pending[i][:0]
		bestOrigin := -1
		var bestVal float64
		for _, p := range in.pending[i] {
			if p.arrive <= r {
				if p.origin > bestOrigin {
					bestOrigin, bestVal = p.origin, p.value
				}
				continue
			}
			q = append(q, p)
		}
		in.pending[i] = q
		if bestOrigin >= 0 {
			out.Readings[i], out.Present[i], out.Age[i] = bestVal, true, r-bestOrigin
			nStale++
		}
	}
	if in.met.m != nil {
		w := in.met.shard
		in.met.rounds.Inc(w)
		in.met.deliveredFresh.Add(w, nFresh)
		in.met.deliveredStale.Add(w, nStale)
		in.met.dead.Add(w, nDead)
		in.met.lost.Add(w, nLost)
		in.met.delayed.Add(w, nDelayed)
		in.met.stuck.Add(w, nStuck)
	}
	return out, nil
}
