package fault

import (
	"math"
	"testing"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

// gridPositions lays sensors on a small grid inside the unit-30 field, the
// geometry the coalition tests carve regions out of.
func gridPositions(n int) []geom.Point {
	side := 1
	for side*side < n {
		side++
	}
	pts := make([]geom.Point, 0, n)
	for i := 0; len(pts) < n; i++ {
		x := float64(i%side) * 30 / float64(side)
		y := float64(i/side) * 30 / float64(side)
		pts = append(pts, geom.Pt(x, y))
	}
	return pts
}

func TestAdversaryValidate(t *testing.T) {
	bad := []AdversaryConfig{
		{InflateFrac: -0.1},
		{DeflateFrac: 1.5},
		{ReplayFrac: math.NaN()},
		{InflateFrac: 0.6, DeflateFrac: 0.6},
		{LieProb: 2},
		{InflateFrac: 0.1, InflateFactor: math.Inf(1)},
		{DeflateFrac: 0.1, DeflateFactor: math.NaN()},
		{CoalitionFactor: -2},
		{ReplayFrac: 0.1, ReplayLag: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid config", cfg)
		}
	}
	ok := AdversaryConfig{InflateFrac: 0.3, DeflateFrac: 0.3, ReplayFrac: 0.4, LieProb: 0.5}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestAdversaryEnabled(t *testing.T) {
	if (AdversaryConfig{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	// A coalition with factor 1 (identity) or an empty region must not arm.
	if (AdversaryConfig{CoalitionFactor: 1, CoalitionRegion: geom.Square(10)}).Enabled() {
		t.Error("identity coalition factor reports enabled")
	}
	if (AdversaryConfig{CoalitionFactor: 3}).Enabled() {
		t.Error("zero-area coalition region reports enabled")
	}
	for _, cfg := range []AdversaryConfig{
		{InflateFrac: 0.1}, {DeflateFrac: 0.1}, {ReplayFrac: 0.1},
		{CoalitionFactor: 3, CoalitionRegion: geom.Square(10)},
	} {
		if !cfg.Enabled() {
			t.Errorf("%+v reports disabled", cfg)
		}
	}
}

func TestNewAdversaryValidation(t *testing.T) {
	if _, err := NewAdversary(AdversaryConfig{}, nil, 1); err == nil {
		t.Error("zero sensors accepted")
	}
	if _, err := NewAdversary(AdversaryConfig{InflateFrac: 7}, gridPositions(4), 1); err == nil {
		t.Error("invalid config accepted")
	}
	a, err := NewAdversary(AdversaryConfig{}, gridPositions(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Apply(make([]float64, 3)); err == nil {
		t.Error("mismatched reading length accepted")
	}
}

// TestAdversaryHonestPassThrough: the zero config copies readings through
// untouched, into a fresh slice.
func TestAdversaryHonestPassThrough(t *testing.T) {
	a, err := NewAdversary(AdversaryConfig{}, gridPositions(8), 3)
	if err != nil {
		t.Fatal(err)
	}
	in := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	out, err := a.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("honest pass-through altered reading %d: %v -> %v", i, in[i], out[i])
		}
	}
	out[0] = -1
	if in[0] == -1 {
		t.Error("Apply returned the caller's backing array")
	}
	if a.NumCompromised() != 0 {
		t.Errorf("zero config compromised %d sensors", a.NumCompromised())
	}
}

// TestAdversaryDeterminism: two adversaries from the same (config, positions,
// seed) must tamper identically round for round, and a different seed must
// compromise a different sensor set.
func TestAdversaryDeterminism(t *testing.T) {
	cfg := AdversaryConfig{InflateFrac: 0.15, DeflateFrac: 0.1, ReplayFrac: 0.1, LieProb: 0.7}
	pos := gridPositions(120)
	a1, err := NewAdversary(cfg, pos, 99)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewAdversary(cfg, pos, 99)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := a1.Behaviors(), a2.Behaviors()
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatalf("behavior assignment differs at sensor %d: %v vs %v", i, b1[i], b2[i])
		}
	}
	src := rng.New(5)
	for r := 0; r < 8; r++ {
		in := make([]float64, len(pos))
		for i := range in {
			in[i] = src.Uniform(0, 50)
		}
		o1, err := a1.Apply(in)
		if err != nil {
			t.Fatal(err)
		}
		o2, err := a2.Apply(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("round %d sensor %d: %v vs %v", r, i, o1[i], o2[i])
			}
		}
	}

	a3, err := NewAdversary(cfg, pos, 100)
	if err != nil {
		t.Fatal(err)
	}
	b3 := a3.Behaviors()
	same := 0
	for i := range b1 {
		if b1[i] == b3[i] {
			same++
		}
	}
	if same == len(b1) {
		t.Error("different seeds produced identical behavior assignments")
	}
}

// TestAdversaryFractions: over many sensors the banded draw must land each
// behavior near its configured fraction, and the total equals the sum.
func TestAdversaryFractions(t *testing.T) {
	cfg := AdversaryConfig{InflateFrac: 0.10, DeflateFrac: 0.15, ReplayFrac: 0.05}
	n := 20000
	a, err := NewAdversary(cfg, gridPositions(n), 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Behavior]int{}
	for _, b := range a.Behaviors() {
		counts[b]++
	}
	check := func(b Behavior, want float64) {
		got := float64(counts[b]) / float64(n)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%v fraction = %.3f, want ~%.2f", b, got, want)
		}
	}
	check(Inflate, 0.10)
	check(Deflate, 0.15)
	check(Replay, 0.05)
	if got, want := a.NumCompromised(), counts[Inflate]+counts[Deflate]+counts[Replay]; got != want {
		t.Errorf("NumCompromised = %d, want %d", got, want)
	}
}

// TestAdversaryInflateDeflate pins the multiplicative behaviors against the
// ground-truth behavior assignment.
func TestAdversaryInflateDeflate(t *testing.T) {
	cfg := AdversaryConfig{InflateFrac: 0.3, DeflateFrac: 0.3, InflateFactor: 4, DeflateFactor: 0.25}
	a, err := NewAdversary(cfg, gridPositions(200), 11)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 200)
	for i := range in {
		in[i] = float64(i + 1)
	}
	out, err := a.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range a.Behaviors() {
		want := in[i]
		switch b {
		case Inflate:
			want = in[i] * 4
		case Deflate:
			want = in[i] * 0.25
		}
		if out[i] != want {
			t.Fatalf("sensor %d (%v): got %v, want %v", i, b, out[i], want)
		}
	}
}

// TestAdversaryReplay drives every sensor through the replay behavior with
// distinct per-round readings and checks the exact lag semantics: truth at
// round 0, the round-0 snapshot while the ring is young, then the reading
// from exactly ReplayLag rounds ago.
func TestAdversaryReplay(t *testing.T) {
	lag := 3
	cfg := AdversaryConfig{ReplayFrac: 1, ReplayLag: lag}
	n := 10
	a, err := NewAdversary(cfg, gridPositions(n), 21)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumCompromised() != n {
		t.Fatalf("ReplayFrac=1 compromised %d of %d", a.NumCompromised(), n)
	}
	reading := func(r, i int) float64 { return float64(1000*r + i) }
	for r := 0; r < 10; r++ {
		in := make([]float64, n)
		for i := range in {
			in[i] = reading(r, i)
		}
		out, err := a.Apply(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range out {
			var want float64
			switch {
			case r == 0:
				want = reading(0, i) // nothing to replay yet
			case r < lag:
				want = reading(0, i) // young ring: first snapshot
			default:
				want = reading(r-lag, i)
			}
			if out[i] != want {
				t.Fatalf("round %d sensor %d: got %v, want %v", r, i, out[i], want)
			}
		}
	}
	if a.Rounds() != 10 {
		t.Errorf("Rounds = %d, want 10", a.Rounds())
	}
}

// TestAdversaryCoalition: sensors inside the colluding region apply the
// coalition factor regardless of the fraction draws; sensors outside stay
// honest when no fractions are set.
func TestAdversaryCoalition(t *testing.T) {
	region := geom.NewRect(geom.Pt(0, 0), geom.Pt(12, 12))
	cfg := AdversaryConfig{CoalitionRegion: region, CoalitionFactor: 3}
	pos := gridPositions(100)
	a, err := NewAdversary(cfg, pos, 31)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, len(pos))
	for i := range in {
		in[i] = 2
	}
	out, err := a.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	coalition := 0
	for i, p := range pos {
		if region.Contains(p) {
			coalition++
			if out[i] != 6 {
				t.Fatalf("coalition sensor %d at %v: got %v, want 6", i, p, out[i])
			}
		} else if out[i] != 2 {
			t.Fatalf("outside sensor %d at %v tampered: %v", i, p, out[i])
		}
	}
	if coalition == 0 {
		t.Fatal("test region contains no sensors")
	}
	if a.NumCompromised() != coalition {
		t.Errorf("NumCompromised = %d, want %d coalition members", a.NumCompromised(), coalition)
	}
}

// TestAdversaryLieProb: an intermittent liar must tamper on roughly LieProb
// of its rounds, honestly pass the rest, and do so reproducibly.
func TestAdversaryLieProb(t *testing.T) {
	cfg := AdversaryConfig{InflateFrac: 1, InflateFactor: 2, LieProb: 0.5}
	n, rounds := 50, 200
	a, err := NewAdversary(cfg, gridPositions(n), 41)
	if err != nil {
		t.Fatal(err)
	}
	lies, total := 0, 0
	for r := 0; r < rounds; r++ {
		in := make([]float64, n)
		for i := range in {
			in[i] = 1
		}
		out, err := a.Apply(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range out {
			total++
			switch out[i] {
			case 2:
				lies++
			case 1:
			default:
				t.Fatalf("round %d sensor %d: unexpected reading %v", r, i, out[i])
			}
		}
	}
	frac := float64(lies) / float64(total)
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("lie fraction = %.3f, want ~0.50", frac)
	}
}

// FuzzAdversaryApply: the adversary report transform must never panic and
// must preserve its structural contract — correct length, honest sensors
// copied through bit-for-bit — for any reading values (including NaN/Inf)
// and any byte-derived configuration.
func FuzzAdversaryApply(f *testing.F) {
	f.Add(uint64(1), uint8(25), uint8(25), uint8(25), uint8(200), int64(2), float64(8), float64(1e300))
	f.Add(uint64(7), uint8(0), uint8(0), uint8(255), uint8(10), int64(9), math.Inf(1), math.NaN())
	f.Add(uint64(0), uint8(255), uint8(0), uint8(0), uint8(0), int64(0), -5.0, 0.0)
	f.Fuzz(func(t *testing.T, seed uint64, infl, defl, repl, lie uint8, lag int64, r0, r1 float64) {
		// Bytes map to [0, 1] fractions; clamp the sum into validity so the
		// fuzzer exercises Apply, not just Validate.
		fi := float64(infl) / 255
		fd := float64(defl) / 255
		fr := float64(repl) / 255
		if sum := fi + fd + fr; sum > 1 {
			fi, fd, fr = fi/sum, fd/sum, fr/sum
		}
		cfg := AdversaryConfig{
			InflateFrac: fi, DeflateFrac: fd, ReplayFrac: fr,
			LieProb:   float64(lie) / 255,
			ReplayLag: int(lag % 7),
		}
		if cfg.ReplayLag < 0 {
			cfg.ReplayLag = -cfg.ReplayLag
		}
		pos := gridPositions(24)
		a, err := NewAdversary(cfg, pos, seed)
		if err != nil {
			t.Fatalf("valid config rejected: %v", err)
		}
		behaviors := a.Behaviors()
		for round := 0; round < 5; round++ {
			in := make([]float64, len(pos))
			for i := range in {
				// Mix the two fuzzed values across sensors and rounds,
				// including whatever non-finite garbage the fuzzer found.
				if (i+round)%2 == 0 {
					in[i] = r0 + float64(i)
				} else {
					in[i] = r1 * float64(round+1)
				}
			}
			out, err := a.Apply(in)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if len(out) != len(in) {
				t.Fatalf("round %d: %d readings out, %d in", round, len(out), len(in))
			}
			for i, b := range behaviors {
				if b == Honest && !equalBits(out[i], in[i]) {
					t.Fatalf("round %d: honest sensor %d altered: %v -> %v", round, i, in[i], out[i])
				}
			}
		}
	})
}

// equalBits compares float64s including NaN (bit-pattern identity is not
// required, NaN just has to stay NaN).
func equalBits(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}
