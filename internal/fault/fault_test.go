package fault

import (
	"math"
	"reflect"
	"testing"
)

// applyAll runs n rounds of constant readings through a fresh injector and
// returns the per-round observations.
func applyAll(t *testing.T, cfg Config, sensors, rounds int, seed uint64) []Observation {
	t.Helper()
	in, err := NewInjector(cfg, sensors, seed)
	if err != nil {
		t.Fatal(err)
	}
	readings := make([]float64, sensors)
	out := make([]Observation, rounds)
	for r := 0; r < rounds; r++ {
		for i := range readings {
			readings[i] = float64(100*r + i) // distinct per (round, sensor)
		}
		obs, err := in.Apply(readings)
		if err != nil {
			t.Fatal(err)
		}
		out[r] = obs
	}
	return out
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{DropoutFrac: -0.1},
		{DropoutFrac: 1.5},
		{LossProb: math.NaN()},
		{DelayProb: 2},
		{StuckFrac: -1},
		{FailWindow: -3},
		{DelayRounds: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid config", cfg)
		}
	}
	if err := (Config{DropoutFrac: 0.3, LossProb: 1, DelayProb: 0.5, StuckFrac: 0}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNewInjectorValidation(t *testing.T) {
	if _, err := NewInjector(Config{}, 0, 1); err == nil {
		t.Error("zero sensors accepted")
	}
	if _, err := NewInjector(Config{LossProb: 7}, 10, 1); err == nil {
		t.Error("invalid config accepted")
	}
	in, err := NewInjector(Config{}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Apply(make([]float64, 9)); err == nil {
		t.Error("mismatched reading length accepted")
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	for _, cfg := range []Config{
		{DropoutFrac: 0.1}, {LossProb: 0.1}, {DelayProb: 0.1}, {StuckFrac: 0.1},
	} {
		if !cfg.Enabled() {
			t.Errorf("%+v reports disabled", cfg)
		}
	}
}

// TestZeroConfigPassThrough: a disabled injector must deliver every reading
// fresh and untouched.
func TestZeroConfigPassThrough(t *testing.T) {
	obs := applyAll(t, Config{}, 20, 5, 42)
	for r, o := range obs {
		for i := range o.Present {
			if !o.Present[i] || o.Age[i] != 0 {
				t.Fatalf("round %d sensor %d: present=%v age=%d, want fresh", r, i, o.Present[i], o.Age[i])
			}
			if want := float64(100*r + i); o.Readings[i] != want {
				t.Fatalf("round %d sensor %d: reading %v, want %v", r, i, o.Readings[i], want)
			}
		}
	}
}

// TestDeterminism: equal (config, seed) gives byte-identical observation
// streams; a different seed gives a different one.
func TestDeterminism(t *testing.T) {
	cfg := Config{DropoutFrac: 0.2, LossProb: 0.3, DelayProb: 0.3, DelayRounds: 2, StuckFrac: 0.1}
	a := applyAll(t, cfg, 50, 12, 7)
	b := applyAll(t, cfg, 50, 12, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	c := applyAll(t, cfg, 50, 12, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestDropoutPermanent: every sensor marked failed stays absent from its
// failure round onward, and DropoutFrac=1 with the default FailWindow kills
// every sensor from round zero.
func TestDropoutPermanent(t *testing.T) {
	obs := applyAll(t, Config{DropoutFrac: 1}, 30, 4, 3)
	for r, o := range obs {
		if n := o.Delivered(); n != 0 {
			t.Fatalf("round %d: %d reports from a fully failed network", r, n)
		}
	}

	// Partial dropout with a failure window: once absent, absent forever.
	cfg := Config{DropoutFrac: 0.5, FailWindow: 4}
	seq := applyAll(t, cfg, 80, 10, 11)
	for i := 0; i < 80; i++ {
		dead := false
		for r := range seq {
			if dead && seq[r].Present[i] {
				t.Fatalf("sensor %d reported at round %d after dying", i, r)
			}
			if !seq[r].Present[i] {
				dead = true
			}
		}
	}
	// And roughly half the sensors should survive the whole run.
	alive := 0
	last := seq[len(seq)-1]
	for i := range last.Present {
		if last.Present[i] {
			alive++
		}
	}
	if alive < 20 || alive > 60 {
		t.Errorf("50%% dropout left %d/80 sensors alive", alive)
	}
}

// TestLossBernoulli: LossProb=1 silences everything; LossProb=0.5 loses
// roughly half the reports each round.
func TestLossBernoulli(t *testing.T) {
	for _, o := range applyAll(t, Config{LossProb: 1}, 40, 3, 5) {
		if o.Delivered() != 0 {
			t.Fatal("LossProb=1 delivered a report")
		}
	}
	total, delivered := 0, 0
	for _, o := range applyAll(t, Config{LossProb: 0.5}, 100, 10, 5) {
		total += len(o.Present)
		delivered += o.Delivered()
	}
	frac := float64(delivered) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("LossProb=0.5 delivered fraction %.3f, want ~0.5", frac)
	}
}

// TestDelayedDelivery: with DelayProb=1 and DelayRounds=2, the first two
// rounds are silent and every later round delivers the reading measured two
// rounds earlier with Age=2.
func TestDelayedDelivery(t *testing.T) {
	obs := applyAll(t, Config{DelayProb: 1, DelayRounds: 2}, 10, 8, 9)
	for r, o := range obs {
		for i := range o.Present {
			if r < 2 {
				if o.Present[i] {
					t.Fatalf("round %d sensor %d: delayed report arrived early", r, i)
				}
				continue
			}
			if !o.Present[i] {
				t.Fatalf("round %d sensor %d: matured delayed report missing", r, i)
			}
			if o.Age[i] != 2 {
				t.Fatalf("round %d sensor %d: age %d, want 2", r, i, o.Age[i])
			}
			if want := float64(100*(r-2) + i); o.Readings[i] != want {
				t.Fatalf("round %d sensor %d: reading %v, want origin-round value %v", r, i, o.Readings[i], want)
			}
		}
	}
}

// TestFreshSupersedesDelayed: a fresh report clears the in-flight queue, so
// a stale report never arrives after a newer fresh one.
func TestFreshSupersedesDelayed(t *testing.T) {
	cfg := Config{DelayProb: 0.5, DelayRounds: 3}
	seq := applyAll(t, cfg, 60, 15, 21)
	// Reconstruct per-sensor origin rounds: the reading encodes its origin
	// (value = 100*origin + sensor), so delivered origins must be strictly
	// increasing per sensor.
	for i := 0; i < 60; i++ {
		lastOrigin := -1
		for r, o := range seq {
			if !o.Present[i] {
				continue
			}
			origin := r - o.Age[i]
			if got := float64(100*origin + i); o.Readings[i] != got {
				t.Fatalf("sensor %d round %d: reading %v inconsistent with age %d", i, r, o.Readings[i], o.Age[i])
			}
			if origin <= lastOrigin {
				t.Fatalf("sensor %d round %d: origin %d not newer than previous %d", i, r, origin, lastOrigin)
			}
			lastOrigin = origin
		}
	}
}

// TestStuckReadings: a stuck sensor reports its first value forever,
// present and fresh.
func TestStuckReadings(t *testing.T) {
	obs := applyAll(t, Config{StuckFrac: 1}, 25, 6, 13)
	for r, o := range obs {
		for i := range o.Present {
			if !o.Present[i] || o.Age[i] != 0 {
				t.Fatalf("round %d sensor %d: stuck sensor should report fresh", r, i)
			}
			if want := float64(i); o.Readings[i] != want {
				t.Fatalf("round %d sensor %d: reading %v, want frozen first value %v", r, i, o.Readings[i], want)
			}
		}
	}
}

// TestRoundsCounter tracks the implicit round sequence.
func TestRoundsCounter(t *testing.T) {
	in, err := NewInjector(Config{}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.Rounds() != 0 || in.NumSensors() != 4 {
		t.Fatalf("fresh injector: rounds %d, sensors %d", in.Rounds(), in.NumSensors())
	}
	for r := 0; r < 3; r++ {
		if _, err := in.Apply(make([]float64, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if in.Rounds() != 3 {
		t.Fatalf("rounds %d after 3 applies", in.Rounds())
	}
}
