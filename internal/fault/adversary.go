// Byzantine adversary layer: sensors that lie, not just fail.
//
// The Injector in fault.go models benign degradation — reports that die,
// drop, or arrive late. The Adversary models malice: compromised sensors
// that stay present and fresh but report wrong values, chosen to poison the
// NLS fit and the SMC tracker downstream. The two compose: tamper first
// (the compromised sensor's radio still works), then degrade, so a liar's
// report can also be lost or delayed like anyone else's.
//
// Determinism follows the injector's contract exactly: every draw is a pure
// splitmix64-finalizer hash of (seed, round, sensor, kind), never a shared
// sequential stream, so which sensors lie — and when — is a pure function
// of the adversary seed. Trials that own their adversary stay byte-identical
// at any worker count (the contract pinned by internal/exp's golden tests).

package fault

import (
	"fmt"
	"math"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/obs"
)

// Behavior is the per-sensor Byzantine role fixed at adversary construction.
type Behavior uint8

const (
	// Honest sensors report their true reading untouched.
	Honest Behavior = iota
	// Inflate multiplies the true reading by AdversaryConfig.InflateFactor,
	// fabricating phantom flux mass near the sensor.
	Inflate
	// Deflate multiplies the true reading by AdversaryConfig.DeflateFactor,
	// hiding real flux (cloaking the users the sensor overhears).
	Deflate
	// Replay reports the sensor's own true reading from
	// AdversaryConfig.ReplayLag rounds ago: plausible values, stale truth.
	Replay
	// Coalition marks a sensor inside the colluding region: all coalition
	// members apply the same CoalitionFactor bias, fabricating a coherent
	// phantom hotspot (factor > 1) or a coherent blind spot (factor < 1)
	// that single-sensor consistency checks cannot separate from a real user.
	Coalition
)

// String returns the behavior's short name.
func (b Behavior) String() string {
	switch b {
	case Honest:
		return "honest"
	case Inflate:
		return "inflate"
	case Deflate:
		return "deflate"
	case Replay:
		return "replay"
	case Coalition:
		return "coalition"
	}
	return fmt.Sprintf("Behavior(%d)", uint8(b))
}

// AdversaryConfig selects which Byzantine behaviors an Adversary applies and
// how hard. The zero value compromises nothing (Apply becomes a copying
// pass-through).
type AdversaryConfig struct {
	// InflateFrac, DeflateFrac, and ReplayFrac are the expected fractions of
	// sensors compromised with each behavior. One uniform draw per sensor at
	// construction is banded across the three fractions, so the total
	// compromised fraction is exactly their sum (which must stay <= 1).
	InflateFrac float64
	DeflateFrac float64
	ReplayFrac  float64
	// InflateFactor is the multiplier inflating sensors apply (zero means 4).
	InflateFactor float64
	// DeflateFactor is the multiplier deflating sensors apply (zero means
	// 0.25). Values in (0, 1) shrink the reading; the default quarters it.
	DeflateFactor float64
	// ReplayLag is how many rounds old a replaying sensor's reading is (zero
	// means 3 when ReplayFrac > 0). Before ReplayLag rounds have elapsed the
	// sensor replays the first round it ever saw.
	ReplayLag int
	// LieProb is the per-round probability that a compromised sensor
	// actually tampers this round (zero means 1 — always lie). Intermittent
	// lying evades defenses that flag persistently inconsistent sensors.
	LieProb float64
	// CoalitionRegion and CoalitionFactor arm a colluding coalition: every
	// sensor whose position falls inside the region applies the factor to
	// its readings, regardless of the per-sensor fraction draws. A zero-area
	// region or a factor of 0 or 1 disables the coalition.
	CoalitionRegion geom.Rect
	CoalitionFactor float64
	// Seed salts the adversary's substream on top of the per-trial seed, so
	// an adversary and a fault injector in one trial draw independently even
	// from related seeds.
	Seed uint64
}

func (c AdversaryConfig) withDefaults() AdversaryConfig {
	if c.InflateFactor <= 0 {
		c.InflateFactor = 4
	}
	if c.DeflateFactor <= 0 {
		c.DeflateFactor = 0.25
	}
	if c.ReplayLag <= 0 && c.ReplayFrac > 0 {
		c.ReplayLag = 3
	}
	if c.LieProb <= 0 {
		c.LieProb = 1
	}
	return c
}

// coalitionArmed reports whether the coalition parameters name a non-trivial
// colluding region.
func (c AdversaryConfig) coalitionArmed() bool {
	return c.CoalitionFactor > 0 && c.CoalitionFactor != 1 &&
		c.CoalitionRegion.Width() > 0 && c.CoalitionRegion.Height() > 0
}

// Enabled reports whether the configuration compromises anything at all.
func (c AdversaryConfig) Enabled() bool {
	return c.InflateFrac > 0 || c.DeflateFrac > 0 || c.ReplayFrac > 0 || c.coalitionArmed()
}

// Validate rejects fractions outside [0, 1] (or summing past 1), non-finite
// factors, and negative lags.
func (c AdversaryConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"InflateFrac", c.InflateFrac},
		{"DeflateFrac", c.DeflateFrac},
		{"ReplayFrac", c.ReplayFrac},
		{"LieProb", c.LieProb},
	} {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s = %v outside [0, 1]", p.name, p.v)
		}
	}
	if sum := c.InflateFrac + c.DeflateFrac + c.ReplayFrac; sum > 1 {
		return fmt.Errorf("fault: behavior fractions sum to %v > 1", sum)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"InflateFactor", c.InflateFactor},
		{"DeflateFactor", c.DeflateFactor},
		{"CoalitionFactor", c.CoalitionFactor},
	} {
		if math.IsNaN(p.v) || math.IsInf(p.v, 0) || p.v < 0 {
			return fmt.Errorf("fault: %s = %v must be finite and non-negative", p.name, p.v)
		}
	}
	if c.ReplayLag < 0 {
		return fmt.Errorf("fault: ReplayLag = %d negative", c.ReplayLag)
	}
	return nil
}

// Salt constants for the adversary's draw domains, disjoint from the
// injector's salts (saltFail..saltStuck occupy 1..5) so an adversary and an
// injector built from the same seed never share a draw.
const (
	saltAdvKind = 16 + iota // construction-time behavior assignment
	saltAdvLie              // per-round lie gate (LieProb < 1)
)

// Adversary applies one AdversaryConfig to a sequential stream of true
// readings for a fixed set of sensors, producing the tampered readings the
// sniffer actually reports. It is stateful (the replay history ring) and
// must be used by one goroutine for one trial; construct one adversary per
// trial, seeded from the trial seed, and output is byte-identical regardless
// of how trials shard over workers.
type Adversary struct {
	cfg  AdversaryConfig
	seed uint64
	n    int

	behavior []Behavior
	// ring holds the last ReplayLag+1 rounds of true readings (only
	// allocated when some sensor replays); first is the round-0 snapshot a
	// young replay falls back to.
	ring  [][]float64
	first []float64
	round int

	met adversaryMetrics
}

// adversaryMetrics caches the adversary's counter handles. Every counter is
// deterministic — which sensors lie at round r is a pure function of the
// adversary seed — so totals are identical at any worker count.
type adversaryMetrics struct {
	m        *obs.Metrics
	shard    int
	rounds   *obs.Counter // fault.adv.rounds
	tampered *obs.Counter // fault.adv.tampered: readings altered this run
	inflated *obs.Counter // fault.adv.inflated
	deflated *obs.Counter // fault.adv.deflated
	replayed *obs.Counter // fault.adv.replayed
	colluded *obs.Counter // fault.adv.coalition
}

// SetMetrics binds (or, with nil, unbinds) the observability registry the
// adversary reports its fault.adv.* counters to. Metrics are write-only and
// never change which sensors lie. Bind once, before the first Apply.
func (a *Adversary) SetMetrics(m *obs.Metrics) {
	if m == nil {
		a.met = adversaryMetrics{}
		return
	}
	a.met = adversaryMetrics{
		m:        m,
		shard:    int(a.seed),
		rounds:   m.Counter("fault.adv.rounds"),
		tampered: m.Counter("fault.adv.tampered"),
		inflated: m.Counter("fault.adv.inflated"),
		deflated: m.Counter("fault.adv.deflated"),
		replayed: m.Counter("fault.adv.replayed"),
		colluded: m.Counter("fault.adv.coalition"),
	}
}

// draw returns a uniform value in [0, 1) keyed by (seed, round, sensor,
// salt) — the injector's hash construction verbatim, on the adversary's own
// seed and salt domain.
func (a *Adversary) draw(round, sensor, salt int) float64 {
	z := a.seed
	z = mix64(z + uint64(salt)*0x9e3779b97f4a7c15)
	z = mix64(z + uint64(round+1)*0xbf58476d1ce4e5b9)
	z = mix64(z + uint64(sensor+1)*0x94d049bb133111eb)
	return float64(z>>11) / (1 << 53)
}

// NewAdversary builds an Adversary over the sensors at the given positions
// (the coalition needs geometry; the other behaviors only need the count).
// The per-trial seed combines with cfg.Seed; construction performs all of
// the per-sensor behavior assignments, so the compromised set is fixed
// before the first round.
func NewAdversary(cfg AdversaryConfig, positions []geom.Point, seed uint64) (*Adversary, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(positions) == 0 {
		return nil, fmt.Errorf("fault: adversary needs at least one sensor position")
	}
	cfg = cfg.withDefaults()
	a := &Adversary{
		cfg:      cfg,
		seed:     mix64(seed ^ mix64(cfg.Seed+0x9e3779b97f4a7c15)),
		n:        len(positions),
		behavior: make([]Behavior, len(positions)),
	}
	coalition := cfg.coalitionArmed()
	replays := false
	for i, pos := range positions {
		if coalition && cfg.CoalitionRegion.Contains(pos) {
			a.behavior[i] = Coalition
			continue
		}
		// One banded draw splits the kinds, so the total compromised
		// fraction is exactly InflateFrac+DeflateFrac+ReplayFrac.
		u := a.draw(0, i, saltAdvKind)
		switch {
		case u < cfg.InflateFrac:
			a.behavior[i] = Inflate
		case u < cfg.InflateFrac+cfg.DeflateFrac:
			a.behavior[i] = Deflate
		case u < cfg.InflateFrac+cfg.DeflateFrac+cfg.ReplayFrac:
			a.behavior[i] = Replay
			replays = true
		}
	}
	if replays {
		a.ring = make([][]float64, cfg.ReplayLag+1)
		for i := range a.ring {
			a.ring[i] = make([]float64, a.n)
		}
		a.first = make([]float64, a.n)
	}
	return a, nil
}

// NumSensors returns the number of sensors the adversary was built for.
func (a *Adversary) NumSensors() int { return a.n }

// Rounds returns how many observation rounds the adversary has consumed.
func (a *Adversary) Rounds() int { return a.round }

// Behaviors returns a copy of the per-sensor behavior assignment — the
// ground truth a defense evaluation scores its flagged sensors against.
func (a *Adversary) Behaviors() []Behavior {
	return append([]Behavior(nil), a.behavior...)
}

// Compromised returns the per-sensor liar mask: true for every sensor whose
// behavior is not Honest.
func (a *Adversary) Compromised() []bool {
	out := make([]bool, a.n)
	for i, b := range a.behavior {
		out[i] = b != Honest
	}
	return out
}

// NumCompromised returns how many sensors are compromised.
func (a *Adversary) NumCompromised() int {
	k := 0
	for _, b := range a.behavior {
		if b != Honest {
			k++
		}
	}
	return k
}

// Apply consumes the true readings for the next observation round and
// returns the tampered view. Rounds are implicit and sequential: the i-th
// Apply call is round i. The returned slice is freshly allocated and safe
// to retain; honest sensors' entries are copied through untouched (including
// non-finite values — the adversary transform never sanitizes its input, the
// downstream fit path owns rejecting garbage).
func (a *Adversary) Apply(readings []float64) ([]float64, error) {
	if len(readings) != a.n {
		return nil, fmt.Errorf("fault: %d readings, adversary built for %d sensors", len(readings), a.n)
	}
	r := a.round
	a.round++
	out := make([]float64, a.n)
	copy(out, readings)
	var nTampered, nInflated, nDeflated, nReplayed, nColluded uint64
	for i, v := range readings {
		b := a.behavior[i]
		if b == Honest {
			continue
		}
		if a.cfg.LieProb < 1 && a.draw(r, i, saltAdvLie) >= a.cfg.LieProb {
			continue // honest round for an intermittent liar
		}
		switch b {
		case Inflate:
			out[i] = v * a.cfg.InflateFactor
			nInflated++
		case Deflate:
			out[i] = v * a.cfg.DeflateFactor
			nDeflated++
		case Replay:
			if r < a.cfg.ReplayLag {
				out[i] = a.first[i]
				if r == 0 {
					out[i] = v // nothing to replay yet: the truth, this once
				}
			} else {
				out[i] = a.ring[(r-a.cfg.ReplayLag)%len(a.ring)][i]
			}
			nReplayed++
		case Coalition:
			out[i] = v * a.cfg.CoalitionFactor
			nColluded++
		}
		nTampered++
	}
	if a.ring != nil {
		copy(a.ring[r%len(a.ring)], readings)
		if r == 0 {
			copy(a.first, readings)
		}
	}
	if a.met.m != nil {
		w := a.met.shard
		a.met.rounds.Inc(w)
		a.met.tampered.Add(w, nTampered)
		a.met.inflated.Add(w, nInflated)
		a.met.deflated.Add(w, nDeflated)
		a.met.replayed.Add(w, nReplayed)
		a.met.colluded.Add(w, nColluded)
	}
	return out, nil
}
