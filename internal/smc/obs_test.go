package smc

import (
	"reflect"
	"testing"

	"fluxtrack/internal/fit"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/obs"
)

// trackScenarioObserved is trackScenario with a metrics registry and trace
// ring bound; it returns the step results plus the instruments for
// inspection.
func trackScenarioObserved(t testing.TB, workers, rounds int) ([]StepResult, *obs.Metrics, *obs.Trace) {
	t.Helper()
	met := obs.New(4)
	trace := obs.NewTrace(64)
	m, pts := testModel(t, 30)
	tr, err := New(Config{
		Model: m, SamplePoints: pts, NumUsers: 3,
		N: 200, M: 8, VMax: 3,
		Search:  fit.Options{Seed: 99},
		Workers: workers,
		Metrics: met,
		Trace:   trace,
	}, 31)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]StepResult, 0, rounds)
	for step := 1; step <= rounds; step++ {
		truths := []geom.Point{
			geom.Pt(5+1.5*float64(step), 8),
			geom.Pt(25-1.5*float64(step), 22),
			geom.Pt(15, 5+2*float64(step)),
		}
		obsv := observe(t, m, pts, truths, []float64{1.5, 2.0, 1.0})
		res, err := tr.Step(float64(step), obsv)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
	}
	return out, met, trace
}

// TestMetricsDoNotPerturbSteps is the tracker-level half of the
// observability determinism contract: binding a metrics registry and a
// trace ring must leave every StepResult byte-identical to the
// uninstrumented run — the instruments are write-only.
func TestMetricsDoNotPerturbSteps(t *testing.T) {
	plain := trackScenario(t, 1, 6)
	observed, met, trace := trackScenarioObserved(t, 1, 6)
	if !reflect.DeepEqual(plain, observed) {
		t.Fatal("enabling metrics+trace changed tracker output")
	}
	snap := met.Snapshot()
	if snap.Empty() {
		t.Fatal("observed run produced an empty snapshot")
	}
	if got := trace.Total(); got != 6 {
		t.Fatalf("trace recorded %d spans, want 6", got)
	}
	for i, s := range trace.Snapshot() {
		if s.Step != i || s.Users != 3 || s.Searched != 3 || s.Candidates != 3*200 {
			t.Fatalf("span %d has wrong counts: %+v", i, s)
		}
		if s.NNLSSolves == 0 || s.WallNs <= 0 {
			t.Fatalf("span %d missing work/timing: %+v", i, s)
		}
	}
}

// TestMetricsWorkerInvariantCounters pins the second half of the contract:
// counter totals (unlike wall-clock histograms) count deterministic work, so
// they must be identical at any worker count.
func TestMetricsWorkerInvariantCounters(t *testing.T) {
	_, met1, _ := trackScenarioObserved(t, 1, 6)
	_, met4, _ := trackScenarioObserved(t, 4, 6)
	c1, c4 := met1.Snapshot().Counters, met4.Snapshot().Counters
	if !reflect.DeepEqual(c1, c4) {
		t.Fatalf("counter totals differ across worker counts:\nworkers=1: %+v\nworkers=4: %+v", c1, c4)
	}
}

// BenchmarkTrackerStepObserved measures one tracking round with the
// observability layer disabled (nil registry: every instrument call is one
// nil branch) and fully enabled (counters, histogram, trace ring). The
// disabled column is the ≤2% end-to-end overhead claim of the obs package
// doc; compare against BenchmarkTrackerStep in parallel_test.go, which
// predates the instrumentation entirely.
func BenchmarkTrackerStepObserved(b *testing.B) {
	for _, bc := range []struct {
		name string
		met  func() (*obs.Metrics, *obs.Trace)
	}{
		{"disabled", func() (*obs.Metrics, *obs.Trace) { return nil, nil }},
		{"enabled", func() (*obs.Metrics, *obs.Trace) { return obs.New(0), obs.NewTrace(4096) }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			met, trace := bc.met()
			m, pts := testModel(b, 38)
			tr, err := New(Config{
				Model: m, SamplePoints: pts, NumUsers: 3,
				N: 400, M: 10, VMax: 3,
				Workers: 1,
				Metrics: met,
				Trace:   trace,
			}, 39)
			if err != nil {
				b.Fatal(err)
			}
			obsv := observe(b, m, pts,
				[]geom.Point{geom.Pt(8, 8), geom.Pt(22, 10), geom.Pt(15, 24)},
				[]float64{1.5, 2, 1})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Step(float64(i+1), obsv); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
