package smc

import (
	"math"
	"testing"

	"fluxtrack/internal/fit"
	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

// testModel returns a model plus 90 random sample points on a 30x30 field.
func testModel(t testing.TB, seed uint64) (*fluxmodel.Model, []geom.Point) {
	t.Helper()
	m, err := fluxmodel.New(geom.Square(30), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(seed)
	pts := make([]geom.Point, 90)
	for i := range pts {
		pts[i] = src.InRect(m.Field())
	}
	return m, pts
}

// observe synthesizes a model-exact observation for the given sinks and
// stretch factors.
func observe(t testing.TB, m *fluxmodel.Model, pts []geom.Point, sinks []geom.Point, cs []float64) []float64 {
	t.Helper()
	f, err := m.PredictFlux(sinks, cs, pts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	m, pts := testModel(t, 1)
	tests := []struct {
		name string
		cfg  Config
	}{
		{"nil model", Config{SamplePoints: pts, NumUsers: 1}},
		{"no points", Config{Model: m, NumUsers: 1}},
		{"zero users", Config{Model: m, SamplePoints: pts}},
		{"M > N", Config{Model: m, SamplePoints: pts, NumUsers: 1, N: 5, M: 10}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg, 1); err == nil {
				t.Error("New accepted invalid config")
			}
		})
	}
}

func TestStepValidation(t *testing.T) {
	m, pts := testModel(t, 2)
	tr, err := New(Config{Model: m, SamplePoints: pts, NumUsers: 1, N: 50, M: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(1, []float64{1, 2}); err == nil {
		t.Error("mismatched observation length must error")
	}
}

func TestTrackStationaryUserConverges(t *testing.T) {
	m, pts := testModel(t, 4)
	truth := geom.Pt(12, 18)
	tr, err := New(Config{
		Model: m, SamplePoints: pts, NumUsers: 1,
		N: 400, M: 10, VMax: 5,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	obs := observe(t, m, pts, []geom.Point{truth}, []float64{1.5})
	var last Estimate
	for step := 1; step <= 5; step++ {
		res, err := tr.Step(float64(step), obs)
		if err != nil {
			t.Fatal(err)
		}
		last = res.Estimates[0]
		if !last.Active {
			t.Fatalf("step %d: user judged idle with strong traffic", step)
		}
	}
	if d := last.Mean.Dist(truth); d > 1.0 {
		t.Errorf("after 5 rounds mean estimate %v is %.2f from truth, want <= 1.0", last.Mean, d)
	}
	if tr.Steps() != 5 {
		t.Errorf("Steps = %d, want 5", tr.Steps())
	}
}

func TestTrackMovingUser(t *testing.T) {
	m, pts := testModel(t, 6)
	tr, err := New(Config{
		Model: m, SamplePoints: pts, NumUsers: 1,
		N: 400, M: 10, VMax: 3,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	// User moves east at speed 2 per round, within VMax = 3.
	var errs []float64
	for step := 1; step <= 8; step++ {
		truth := geom.Pt(5+2*float64(step), 15)
		obs := observe(t, m, pts, []geom.Point{truth}, []float64{2})
		res, err := tr.Step(float64(step), obs)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, res.Estimates[0].Mean.Dist(truth))
	}
	// Later rounds must track within 2 units (paper Fig 7a: below 2).
	for i := 4; i < len(errs); i++ {
		if errs[i] > 2.0 {
			t.Errorf("round %d tracking error %.2f, want <= 2.0 (all: %v)", i+1, errs[i], errs)
			break
		}
	}
}

func TestTrackTwoUsers(t *testing.T) {
	m, pts := testModel(t, 8)
	tr, err := New(Config{
		Model: m, SamplePoints: pts, NumUsers: 2,
		N: 300, M: 10, VMax: 3,
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	var finalErr []float64
	for step := 1; step <= 8; step++ {
		truths := []geom.Point{
			geom.Pt(4+2*float64(step), 8),
			geom.Pt(26-2*float64(step), 24),
		}
		obs := observe(t, m, pts, truths, []float64{1.5, 2.5})
		res, err := tr.Step(float64(step), obs)
		if err != nil {
			t.Fatal(err)
		}
		if step == 8 {
			for j, est := range res.Estimates {
				// Identities may swap; measure against the nearer truth.
				d := math.Min(est.Mean.Dist(truths[0]), est.Mean.Dist(truths[1]))
				finalErr = append(finalErr, d)
				_ = j
			}
		}
	}
	for j, d := range finalErr {
		if d > 2.5 {
			t.Errorf("user %d final tracking error %.2f, want <= 2.5", j, d)
		}
	}
}

func TestAsynchronousIdleUserNotUpdated(t *testing.T) {
	m, pts := testModel(t, 10)
	tr, err := New(Config{
		Model: m, SamplePoints: pts, NumUsers: 2,
		N: 300, M: 10, VMax: 3,
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	active := geom.Pt(10, 10)
	idleTruth := geom.Pt(22, 22)

	// Round 1: both users collect, establishing both sample sets. Tracker
	// identities are exchangeable (the paper notes the same), so determine
	// by proximity which tracker slot latched onto which physical user.
	obs := observe(t, m, pts, []geom.Point{active, idleTruth}, []float64{2, 2})
	res1, err := tr.Step(1, obs)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Estimates[0].Active || !res1.Estimates[1].Active {
		t.Fatal("both users must be active in round 1")
	}
	idleSlot := 0
	if res1.Estimates[1].Mean.Dist(idleTruth) < res1.Estimates[0].Mean.Dist(idleTruth) {
		idleSlot = 1
	}
	activeSlot := 1 - idleSlot
	if res1.Estimates[idleSlot].Mean.Dist(idleTruth) > 2.5 {
		t.Fatalf("round 1 did not localize the second user: estimates %v / %v, truths %v / %v",
			res1.Estimates[0].Mean, res1.Estimates[1].Mean, active, idleTruth)
	}
	est1 := res1.Estimates[idleSlot].Mean

	// Rounds 2-3: only the first physical user collects; the other slot's
	// fitted stretch collapses and its samples freeze.
	obs = observe(t, m, pts, []geom.Point{active}, []float64{2})
	var res StepResult
	for step := 2; step <= 3; step++ {
		res, err = tr.Step(float64(step), obs)
		if err != nil {
			t.Fatal(err)
		}
	}
	if res.Estimates[idleSlot].Active {
		t.Error("idle user reported active")
	}
	if got := res.Estimates[idleSlot].Mean; got.Dist(est1) > 1e-9 {
		t.Errorf("idle user's estimate moved from %v to %v", est1, got)
	}
	if res.Estimates[activeSlot].Mean.Dist(active) > 1.5 {
		t.Errorf("active user estimate %v too far from %v", res.Estimates[activeSlot].Mean, active)
	}
}

func TestIdleDeltaTGrowsPredictionRadius(t *testing.T) {
	// After idling for several rounds, the user's prediction discs must use
	// the accumulated Δt: a user that reappears far away (but within
	// VMax·Δt_total) is still caught.
	m, pts := testModel(t, 12)
	tr, err := New(Config{
		Model: m, SamplePoints: pts, NumUsers: 1,
		N: 600, M: 10, VMax: 2,
	}, 13)
	if err != nil {
		t.Fatal(err)
	}
	start := geom.Pt(10, 15)
	obs := observe(t, m, pts, []geom.Point{start}, []float64{2})
	if _, err := tr.Step(1, obs); err != nil {
		t.Fatal(err)
	}
	// Idle for rounds 2-5 (zero flux everywhere).
	zero := make([]float64, len(pts))
	for step := 2; step <= 5; step++ {
		if _, err := tr.Step(float64(step), zero); err != nil {
			t.Fatal(err)
		}
	}
	// Round 6: reappears 8 units away; VMax*Δt = 2*5 = 10 >= 8.
	moved := geom.Pt(18, 15)
	res, err := tr.Step(6, observe(t, m, pts, []geom.Point{moved}, []float64{2}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Estimates[0].Active {
		t.Fatal("reappearing user not detected as active")
	}
	if d := res.Estimates[0].Mean.Dist(moved); d > 2.5 {
		t.Errorf("reappearance estimate %v is %.2f away, want <= 2.5", res.Estimates[0].Mean, d)
	}
}

func TestEstimateWeightsNormalized(t *testing.T) {
	m, pts := testModel(t, 14)
	tr, err := New(Config{
		Model: m, SamplePoints: pts, NumUsers: 1, N: 200, M: 10, VMax: 5,
	}, 15)
	if err != nil {
		t.Fatal(err)
	}
	obs := observe(t, m, pts, []geom.Point{geom.Pt(15, 15)}, []float64{2})
	res, err := tr.Step(1, obs)
	if err != nil {
		t.Fatal(err)
	}
	est := res.Estimates[0]
	if len(est.Samples) != len(est.Weights) {
		t.Fatalf("samples/weights misaligned: %d vs %d", len(est.Samples), len(est.Weights))
	}
	var sum float64
	for _, w := range est.Weights {
		if w < 0 {
			t.Errorf("negative weight %v", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v, want 1", sum)
	}
	// Samples stay inside the field.
	for _, s := range est.Samples {
		if !m.Field().Contains(s) {
			t.Errorf("sample %v outside field", s)
		}
	}
}

func TestDeterministicAcrossSeeds(t *testing.T) {
	m, pts := testModel(t, 16)
	run := func() geom.Point {
		tr, err := New(Config{
			Model: m, SamplePoints: pts, NumUsers: 1, N: 200, M: 5, VMax: 5,
			Search: fit.Options{Seed: 99},
		}, 17)
		if err != nil {
			t.Fatal(err)
		}
		obs := observe(t, m, pts, []geom.Point{geom.Pt(20, 10)}, []float64{1})
		res, err := tr.Step(1, obs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Estimates[0].Mean
	}
	if a, b := run(), run(); a != b {
		t.Errorf("tracker not deterministic: %v vs %v", a, b)
	}
}

func BenchmarkStepOneUser(b *testing.B) {
	m, pts := testModel(b, 18)
	tr, err := New(Config{
		Model: m, SamplePoints: pts, NumUsers: 1, N: 200, M: 10, VMax: 5,
	}, 19)
	if err != nil {
		b.Fatal(err)
	}
	obs := observe(b, m, pts, []geom.Point{geom.Pt(15, 15)}, []float64{2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(float64(i+1), obs); err != nil {
			b.Fatal(err)
		}
	}
}
