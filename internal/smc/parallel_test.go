package smc

import (
	"reflect"
	"testing"

	"fluxtrack/internal/fit"
	"fluxtrack/internal/geom"
)

// trackScenario runs a three-user tracking scenario for rounds steps with
// the given worker count and returns every StepResult. Everything except
// Workers is held fixed, so any divergence between worker counts is a
// determinism bug in the intra-step parallelism.
func trackScenario(t testing.TB, workers, rounds int) []StepResult {
	t.Helper()
	m, pts := testModel(t, 30)
	tr, err := New(Config{
		Model: m, SamplePoints: pts, NumUsers: 3,
		N: 200, M: 8, VMax: 3,
		Search:  fit.Options{Seed: 99},
		Workers: workers,
	}, 31)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]StepResult, 0, rounds)
	for step := 1; step <= rounds; step++ {
		truths := []geom.Point{
			geom.Pt(5+1.5*float64(step), 8),
			geom.Pt(25-1.5*float64(step), 22),
			geom.Pt(15, 5+2*float64(step)),
		}
		obs := observe(t, m, pts, truths, []float64{1.5, 2.0, 1.0})
		res, err := tr.Step(float64(step), obs)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
	}
	return out
}

// TestStepWorkerInvariance demands byte-identical tracker output at every
// worker count: the per-user RNG substreams are derived from (seed, user)
// only, candidate scoring merges are worker-order independent, and the
// update/estimate shards touch disjoint state, so Workers must be a pure
// throughput knob.
func TestStepWorkerInvariance(t *testing.T) {
	serial := trackScenario(t, 1, 6)
	for _, workers := range []int{2, 4, 8, 0} {
		got := trackScenario(t, workers, 6)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("Workers=%d diverges from serial output", workers)
		}
	}
}

// TestStepParallelRace exercises the parallel prediction, search, and
// update paths with more users than workers so shards carry several users
// each; run under -race it proves the per-user sharding is data-race free.
func TestStepParallelRace(t *testing.T) {
	m, pts := testModel(t, 32)
	tr, err := New(Config{
		Model: m, SamplePoints: pts, NumUsers: 5,
		N: 150, M: 6, VMax: 4,
		Workers: 4,
	}, 33)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 4; step++ {
		truths := make([]geom.Point, 5)
		cs := make([]float64, 5)
		for j := range truths {
			truths[j] = geom.Pt(4+5*float64(j), 6+3*float64(step))
			cs[j] = 1 + 0.3*float64(j)
		}
		obs := observe(t, m, pts, truths, cs)
		if _, err := tr.Step(float64(step), obs); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStepActiveSetWorkerInvariance covers the ActiveSetLimit path, whose
// incumbent fit also shards kernel columns across workers.
func TestStepActiveSetWorkerInvariance(t *testing.T) {
	run := func(workers int) []StepResult {
		m, pts := testModel(t, 34)
		tr, err := New(Config{
			Model: m, SamplePoints: pts, NumUsers: 6,
			N: 120, M: 6, VMax: 3,
			ActiveSetLimit: 3,
			Search:         fit.Options{Seed: 7},
			Workers:        workers,
		}, 35)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]StepResult, 0, 5)
		for step := 1; step <= 5; step++ {
			truths := []geom.Point{
				geom.Pt(6, 6), geom.Pt(24, 6), geom.Pt(6, 24),
			}
			obs := observe(t, m, pts, truths, []float64{2, 1.5, 1})
			res, err := tr.Step(float64(step), obs)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
		return out
	}
	serial := run(1)
	if got := run(4); !reflect.DeepEqual(serial, got) {
		t.Fatal("ActiveSetLimit path diverges between Workers=1 and Workers=4")
	}
}

// stepAllocs reports the steady-state allocations of one serial Step at the
// given per-user sample count N, after warmup rounds have grown the
// tracker's prediction arenas and the searcher's candidate-column arenas to
// their steady-state size.
func stepAllocs(t *testing.T, n int) float64 {
	t.Helper()
	m, pts := testModel(t, 36)
	tr, err := New(Config{
		Model: m, SamplePoints: pts, NumUsers: 2,
		N: n, M: 8, VMax: 3,
		Workers: 1,
	}, 37)
	if err != nil {
		t.Fatal(err)
	}
	obs := observe(t, m, pts, []geom.Point{geom.Pt(10, 12), geom.Pt(22, 20)}, []float64{1.5, 2})
	step := 0
	doStep := func() {
		step++
		if _, err := tr.Step(float64(step), obs); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		doStep()
	}
	return testing.AllocsPerRun(10, doStep)
}

// TestStepAllocationFlat guards the allocation profile of the steady-state
// serial Step: its allocation count must not scale with N. Quadrupling N
// quadruples the candidate evaluations per round, so any per-candidate or
// per-sample allocation on the hot path multiplies the count and trips this
// test; the small slack absorbs incidental variation (map growth, result
// materialization) without letting an O(N) term through.
func TestStepAllocationFlat(t *testing.T) {
	small := stepAllocs(t, 150)
	large := stepAllocs(t, 600)
	if large > small+16 {
		t.Errorf("Step allocations scale with N: %0.f allocs at N=150, %0.f at N=600", small, large)
	}
}

// BenchmarkTrackerStep measures one tracking round at tracking-experiment
// scale (three users, N=400) for serial and parallel worker counts. On a
// multi-core machine the parallel variants shard prediction, candidate
// scoring, and update across cores; on one core they fall back to near-serial
// cost, and the worker invariance test guarantees identical output either way.
func BenchmarkTrackerStep(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=2", 2},
		{"workers=4", 4},
		{"workers=8", 8},
	} {
		b.Run(bc.name, func(b *testing.B) {
			m, pts := testModel(b, 38)
			tr, err := New(Config{
				Model: m, SamplePoints: pts, NumUsers: 3,
				N: 400, M: 10, VMax: 3,
				Workers: bc.workers,
			}, 39)
			if err != nil {
				b.Fatal(err)
			}
			obs := observe(b, m, pts,
				[]geom.Point{geom.Pt(8, 8), geom.Pt(22, 10), geom.Pt(15, 24)},
				[]float64{1.5, 2, 1})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Step(float64(i+1), obs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
