package smc

import (
	"reflect"
	"testing"

	"fluxtrack/internal/fingerprint"
	"fluxtrack/internal/fit"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

// Tracker-level coverage of the coarse-to-fine prestage: full-K degradation
// to the exact path, worker invariance at realistic K (clean, masked, and
// stale rounds), and the index-ordered tie-breaks of the active-set
// selection.

// coarseScenario runs a three-user tracking scenario with the given worker
// count and coarse config, returning every StepResult. Rounds 3 and 4 run
// through StepMasked with a deterministic partial mask and one stale
// sensor, so the compacted (origIdx) alignment of the prestage is exercised
// alongside the clean path.
func coarseScenario(t testing.TB, workers, rounds int, coarse fingerprint.CoarseConfig) []StepResult {
	t.Helper()
	m, pts := testModel(t, 30)
	tr, err := New(Config{
		Model: m, SamplePoints: pts, NumUsers: 3,
		N: 200, M: 8, VMax: 3,
		Search:  fit.Options{Seed: 99},
		Workers: workers,
		Coarse:  coarse,
	}, 31)
	if err != nil {
		t.Fatal(err)
	}
	msrc := rng.New(555)
	present := make([]bool, len(pts))
	age := make([]int, len(pts))
	out := make([]StepResult, 0, rounds)
	for step := 1; step <= rounds; step++ {
		truths := []geom.Point{
			geom.Pt(5+1.5*float64(step), 8),
			geom.Pt(25-1.5*float64(step), 22),
			geom.Pt(15, 5+2*float64(step)),
		}
		obs := observe(t, m, pts, truths, []float64{1.5, 2.0, 1.0})
		var res StepResult
		if step == 3 || step == 4 {
			kept := 0
			for i := range present {
				present[i] = msrc.Float64() < 0.8
				if present[i] {
					kept++
				}
				age[i] = 0
			}
			if kept == 0 {
				present[0] = true
			}
			age[0] = 1 // one stale sensor: the deflated-weight path
			res, err = tr.StepMasked(float64(step), obs, present, age)
		} else {
			res, err = tr.Step(float64(step), obs)
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
	}
	return out
}

// TestStepCoarseFullKMatchesExact is the tracker-level differential test:
// with TopK at (or above) the per-user candidate count N, the coarse
// tracker's output — across clean, masked, and stale rounds — must be
// byte-identical to a tracker with no prestage at all.
func TestStepCoarseFullKMatchesExact(t *testing.T) {
	exact := coarseScenario(t, 1, 6, fingerprint.CoarseConfig{})
	full := coarseScenario(t, 1, 6, fingerprint.CoarseConfig{Enabled: true, TopK: 200})
	if !reflect.DeepEqual(exact, full) {
		t.Fatal("coarse tracker with TopK=N diverges from the exact tracker")
	}
	over := coarseScenario(t, 1, 6, fingerprint.CoarseConfig{Enabled: true, TopK: 1000, GridRes: 16})
	if !reflect.DeepEqual(exact, over) {
		t.Fatal("coarse tracker with TopK>N diverges from the exact tracker")
	}
}

// TestStepWorkerInvarianceCoarse demands byte-identical coarse-tracker
// output at every worker count, at a realistic (lossy) shortlist size and
// including the masked/stale rounds: the prestage's cell scores, quadtree
// probes, and shortlist selection must all be pure functions of the round.
func TestStepWorkerInvarianceCoarse(t *testing.T) {
	coarse := fingerprint.CoarseConfig{Enabled: true, TopK: 48}
	serial := coarseScenario(t, 1, 6, coarse)
	for _, workers := range []int{2, 4, 8, 0} {
		got := coarseScenario(t, workers, 6, coarse)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("Workers=%d diverges from serial coarse output", workers)
		}
	}
}

// TestStepCoarseActiveSetWorkerInvariance covers the prestage composed with
// the ActiveSetLimit path: subset searches shortlist only the searched
// users, and the incumbent fits stay exact.
func TestStepCoarseActiveSetWorkerInvariance(t *testing.T) {
	run := func(workers int) []StepResult {
		m, pts := testModel(t, 34)
		tr, err := New(Config{
			Model: m, SamplePoints: pts, NumUsers: 6,
			N: 120, M: 6, VMax: 3,
			ActiveSetLimit: 3,
			Search:         fit.Options{Seed: 7},
			Workers:        workers,
			Coarse:         fingerprint.CoarseConfig{Enabled: true, TopK: 40, GridRes: 16},
		}, 35)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]StepResult, 0, 5)
		for step := 1; step <= 5; step++ {
			truths := []geom.Point{geom.Pt(6, 6), geom.Pt(24, 6), geom.Pt(6, 24)}
			obs := observe(t, m, pts, truths, []float64{2, 1.5, 1})
			res, err := tr.Step(float64(step), obs)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
		return out
	}
	serial := run(1)
	if got := run(4); !reflect.DeepEqual(serial, got) {
		t.Fatal("coarse ActiveSetLimit path diverges between Workers=1 and Workers=4")
	}
}

// TestSelectActiveTieBreaks pins the index-ordered tie-breaks of the
// active-set selection: with fully symmetric users (identical incumbent
// positions, equal lastUpdate), repeated selections must return the same
// subset, and the subset must prefer the lowest user indices.
func TestSelectActiveTieBreaks(t *testing.T) {
	m, pts := testModel(t, 40)
	const users = 8
	tr, err := New(Config{
		Model: m, SamplePoints: pts, NumUsers: users,
		N: 50, M: 5, VMax: 3,
		ActiveSetLimit: 3,
	}, 41)
	if err != nil {
		t.Fatal(err)
	}
	// Pin every user at the same far-corner incumbent with equal
	// lastUpdate: stretches tie (identical kernel columns) and staleness
	// ties, so every ordering decision rides on the index tie-breaks.
	for j := 0; j < users; j++ {
		u := tr.ensure(j)
		u.initialized = true
		u.samples = []geom.Point{geom.Pt(28, 28)}
		u.weights = []float64{1}
		u.lastUpdate = 1
	}
	// True flux comes from the opposite corner, so the incumbent fit is
	// poor and the stale fill path runs too.
	obs := observe(t, m, pts, []geom.Point{geom.Pt(4, 4)}, []float64{2})
	prob, err := fit.NewProblem(m, pts, obs)
	if err != nil {
		t.Fatal(err)
	}
	base, err := tr.selectActive(prob, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// selectActive returns tracker-owned scratch; copy before re-selecting.
	base = append([]int(nil), base...)
	if len(base) != 3 {
		t.Fatalf("subset size %d, want ActiveSetLimit=3", len(base))
	}
	for i := 1; i < len(base); i++ {
		if base[i] <= base[i-1] {
			t.Fatalf("subset %v not in ascending order", base)
		}
	}
	// Symmetric ties must resolve downward: nothing distinguishes the
	// users, so only the lowest indices may be selected.
	if !reflect.DeepEqual(base, []int{0, 1, 2}) {
		t.Fatalf("symmetric tie selection = %v, want [0 1 2]", base)
	}
	for trial := 0; trial < 10; trial++ {
		got, err := tr.selectActive(prob, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("selectActive not deterministic: %v then %v", base, got)
		}
	}
	// Zero observation: every stretch fits 0, the active and stale paths
	// both decline, and the fallback must still pick the lowest index.
	zero, err := fit.NewProblem(m, pts, make([]float64, len(pts)))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := tr.selectActive(zero, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sub, []int{0}) {
		t.Fatalf("zero-observation fallback = %v, want [0]", sub)
	}
}
