package smc

import (
	"reflect"
	"testing"

	"fluxtrack/internal/geom"
)

// subsetWorld builds a 3-user tracker pair plus a model-exact observation
// stream for the subset/snapshot tests.
func subsetWorld(t *testing.T, cfg Config) (*Tracker, *Tracker, [][]float64) {
	t.Helper()
	m, pts := testModel(t, 8)
	cfg.Model, cfg.SamplePoints, cfg.NumUsers = m, pts, 3
	a, err := New(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	sinks := [][]geom.Point{
		{geom.Pt(6, 6), geom.Pt(24, 8), geom.Pt(10, 25)},
		{geom.Pt(7, 7), geom.Pt(23, 9), geom.Pt(11, 24)},
		{geom.Pt(8, 8), geom.Pt(22, 10), geom.Pt(12, 23)},
		{geom.Pt(9, 9), geom.Pt(21, 11), geom.Pt(13, 22)},
	}
	var stream [][]float64
	for _, s := range sinks {
		stream = append(stream, observe(t, m, pts, s, []float64{2, 1.5, 1.8}))
	}
	return a, b, stream
}

// TestStepUsersFullSubsetIsStep: a subset naming every user must take the
// full-round path, byte for byte — with and without the active-set cap.
func TestStepUsersFullSubsetIsStep(t *testing.T) {
	for _, cfg := range []Config{
		{N: 100, M: 5},
		{N: 100, M: 5, ActiveSetLimit: 1},
	} {
		a, b, stream := subsetWorld(t, cfg)
		for r, o := range stream {
			tm := float64(r + 1)
			want, err1 := a.Step(tm, o)
			got, err2 := b.StepUsers(tm, o, []int{0, 1, 2})
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("round %d: full subset diverged from Step (limit %d)", r, cfg.ActiveSetLimit)
			}
		}
	}
}

// TestStepUsersPartialSubset: only the listed users are searched/updated;
// the rest keep their state (idle estimates), exactly like an active-set
// round treats unselected users.
func TestStepUsersPartialSubset(t *testing.T) {
	a, _, stream := subsetWorld(t, Config{N: 100, M: 5})
	if _, err := a.Step(1, stream[0]); err != nil {
		t.Fatal(err)
	}
	before2, err := a.ExportUser(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.StepUsers(2, stream[1], []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimates[2].Active {
		t.Fatal("unlisted user reported active")
	}
	after2, err := a.ExportUser(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before2, after2) {
		t.Fatal("unlisted user's state changed")
	}
	// Subset contract violations.
	for _, bad := range [][]int{{}, {1, 0}, {0, 0}, {-1}, {0, 7}} {
		if _, err := a.StepUsers(3, stream[2], bad); err == nil {
			t.Errorf("subset %v accepted", bad)
		}
	}
}

// TestSnapshotRoundTrip: export → import moves a user's full state between
// trackers, deep-copied, and the two trackers then predict from identical
// sample sets.
func TestSnapshotRoundTrip(t *testing.T) {
	a, b, stream := subsetWorld(t, Config{N: 100, M: 5})
	for r, o := range stream[:2] {
		if _, err := a.Step(float64(r+1), o); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := a.ExportUser(1)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Initialized || len(snap.Samples) == 0 {
		t.Fatalf("tracked user exported as %+v", snap)
	}
	if err := b.ImportUser(1, snap); err != nil {
		t.Fatal(err)
	}
	back, err := b.ExportUser(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatal("import/export round trip changed the snapshot")
	}
	// Deep copy: mutating the snapshot must not touch the tracker.
	snap.Samples[0] = geom.Pt(-99, -99)
	back2, _ := b.ExportUser(1)
	if back2.Samples[0] == snap.Samples[0] {
		t.Fatal("ImportUser aliased the snapshot slices")
	}

	// Reset clears back to bootstrap.
	if err := a.ResetUser(1); err != nil {
		t.Fatal(err)
	}
	cleared, _ := a.ExportUser(1)
	if cleared.Initialized || len(cleared.Samples) != 0 {
		t.Fatalf("reset user still carries state: %+v", cleared)
	}

	// Validation.
	if _, err := a.ExportUser(9); err == nil {
		t.Error("out-of-range export accepted")
	}
	if err := a.ImportUser(0, UserSnapshot{Initialized: true}); err == nil {
		t.Error("initialized snapshot without samples accepted")
	}
	if err := a.ImportUser(0, UserSnapshot{Initialized: true,
		Samples: []geom.Point{{}}, Weights: []float64{1, 2}}); err == nil {
		t.Error("misaligned snapshot accepted")
	}
}

// TestBoundsRestrictsTracker: a tracker bounded to a sub-rectangle draws
// its bootstrap candidates inside the bounds and reports the bounds center
// while uninitialized.
func TestBoundsRestrictsTracker(t *testing.T) {
	m, pts := testModel(t, 9)
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(15, 15))
	tr, err := New(Config{Model: m, SamplePoints: pts, NumUsers: 1, N: 200, M: 5,
		Bounds: bounds}, 4)
	if err != nil {
		t.Fatal(err)
	}
	est := tr.estimate(0, false, 0)
	if est.Mean != bounds.Center() {
		t.Fatalf("uninitialized estimate %v, want bounds center %v", est.Mean, bounds.Center())
	}
	o := observe(t, m, pts, []geom.Point{geom.Pt(7, 7)}, []float64{2})
	res, err := tr.Step(1, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Estimates[0].Samples {
		if !bounds.Contains(s) {
			t.Fatalf("kept sample %v outside bounds %v", s, bounds)
		}
	}
}
