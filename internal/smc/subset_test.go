package smc

import (
	"reflect"
	"testing"

	"fluxtrack/internal/geom"
)

// subsetWorld builds a 3-user tracker pair plus a model-exact observation
// stream for the subset/snapshot tests.
func subsetWorld(t *testing.T, cfg Config) (*Tracker, *Tracker, [][]float64) {
	t.Helper()
	m, pts := testModel(t, 8)
	cfg.Model, cfg.SamplePoints, cfg.NumUsers = m, pts, 3
	a, err := New(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	sinks := [][]geom.Point{
		{geom.Pt(6, 6), geom.Pt(24, 8), geom.Pt(10, 25)},
		{geom.Pt(7, 7), geom.Pt(23, 9), geom.Pt(11, 24)},
		{geom.Pt(8, 8), geom.Pt(22, 10), geom.Pt(12, 23)},
		{geom.Pt(9, 9), geom.Pt(21, 11), geom.Pt(13, 22)},
	}
	var stream [][]float64
	for _, s := range sinks {
		stream = append(stream, observe(t, m, pts, s, []float64{2, 1.5, 1.8}))
	}
	return a, b, stream
}

// TestStepUsersFullSubsetIsStep: a subset naming every user must take the
// full-round path, byte for byte — with and without the active-set cap.
func TestStepUsersFullSubsetIsStep(t *testing.T) {
	for _, cfg := range []Config{
		{N: 100, M: 5},
		{N: 100, M: 5, ActiveSetLimit: 1},
	} {
		a, b, stream := subsetWorld(t, cfg)
		for r, o := range stream {
			tm := float64(r + 1)
			want, err1 := a.Step(tm, o)
			got, err2 := b.StepUsers(tm, o, []int{0, 1, 2})
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("round %d: full subset diverged from Step (limit %d)", r, cfg.ActiveSetLimit)
			}
		}
	}
}

// TestStepUsersPartialSubset: only the listed users are searched/updated;
// the rest keep their state (idle estimates), exactly like an active-set
// round treats unselected users.
func TestStepUsersPartialSubset(t *testing.T) {
	a, _, stream := subsetWorld(t, Config{N: 100, M: 5})
	if _, err := a.Step(1, stream[0]); err != nil {
		t.Fatal(err)
	}
	before2, err := a.ExportUser(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.StepUsers(2, stream[1], []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimates[2].Active {
		t.Fatal("unlisted user reported active")
	}
	after2, err := a.ExportUser(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before2, after2) {
		t.Fatal("unlisted user's state changed")
	}
	// Subset contract violations.
	for _, bad := range [][]int{{}, {1, 0}, {0, 0}, {-1}, {0, 7}} {
		if _, err := a.StepUsers(3, stream[2], bad); err == nil {
			t.Errorf("subset %v accepted", bad)
		}
	}
}

// TestStepUsersSparseMatchesDense: the sparse-output step must produce, for
// each requested user, exactly the estimate the dense step produces in that
// user's slot — same search, same updates, same objective — with the
// caller's estimate buffer reused across rounds.
func TestStepUsersSparseMatchesDense(t *testing.T) {
	for _, cfg := range []Config{
		{N: 100, M: 5},
		{N: 100, M: 5, ActiveSetLimit: 1},
	} {
		a, b, stream := subsetWorld(t, cfg)
		subset := []int{0, 2}
		var buf []Estimate
		for r, o := range stream {
			tm := float64(r + 1)
			want, err1 := a.StepUsers(tm, o, subset)
			got, err2 := b.StepUsersSparse(tm, o, subset, buf)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if len(got.Estimates) != len(subset) {
				t.Fatalf("round %d: %d sparse estimates, want %d", r, len(got.Estimates), len(subset))
			}
			if got.Objective != want.Objective || got.Time != want.Time {
				t.Fatalf("round %d: objective/time diverged", r)
			}
			for i, j := range subset {
				if !reflect.DeepEqual(got.Estimates[i], want.Estimates[j]) {
					t.Fatalf("round %d user %d: sparse estimate diverged from dense", r, j)
				}
			}
			buf = got.Estimates // reuse the buffer: contents must be rewritten
		}
	}
}

// TestStepUsersSparseFullSubsetIsStep: a sparse step over every user runs
// the full-round semantics (active-set selection included) and aligns
// estimates identically with the dense Step.
func TestStepUsersSparseFullSubsetIsStep(t *testing.T) {
	for _, cfg := range []Config{
		{N: 100, M: 5},
		{N: 100, M: 5, ActiveSetLimit: 1},
	} {
		a, b, stream := subsetWorld(t, cfg)
		for r, o := range stream {
			tm := float64(r + 1)
			want, err1 := a.Step(tm, o)
			got, err2 := b.StepUsersSparse(tm, o, []int{0, 1, 2}, nil)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !reflect.DeepEqual(want.Estimates, got.Estimates) ||
				want.Objective != got.Objective {
				t.Fatalf("round %d: sparse full subset diverged from Step (limit %d)",
					r, cfg.ActiveSetLimit)
			}
		}
	}
}

// TestActiveSetWithinExplicitSubset: an explicit subset larger than
// ActiveSetLimit runs the selection restricted to the subset — users outside
// the subset are never searched, and at most ActiveSetLimit inside it are.
func TestActiveSetWithinExplicitSubset(t *testing.T) {
	a, _, stream := subsetWorld(t, Config{N: 100, M: 5, ActiveSetLimit: 2})
	subset := []int{0, 1, 2}
	res, err := a.StepUsers(1, stream[0], subset)
	if err != nil {
		t.Fatal(err)
	}
	searched := 0
	for j, est := range res.Estimates {
		snap, _ := a.ExportUser(j)
		if snap.Initialized {
			searched++
		}
		_ = est
	}
	if searched == 0 || searched > 2 {
		t.Fatalf("%d users searched, want 1..2 (ActiveSetLimit)", searched)
	}
}

// TestMoveUserToMatchesSnapshotPath: the pooled migration must leave both
// trackers in exactly the state the export/import/reset path produces, and
// the subsequent rounds must be byte-identical.
func TestMoveUserToMatchesSnapshotPath(t *testing.T) {
	mkPair := func() (*Tracker, *Tracker, [][]float64) {
		return subsetWorld(t, Config{N: 100, M: 5})
	}
	a1, b1, stream := mkPair()
	a2, b2, _ := mkPair()
	for r, o := range stream[:2] {
		tm := float64(r + 1)
		if _, err := a1.Step(tm, o); err != nil {
			t.Fatal(err)
		}
		if _, err := a2.Step(tm, o); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot path on pair 1.
	snap, err := a1.ExportUser(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b1.ImportUser(1, snap); err != nil {
		t.Fatal(err)
	}
	if err := a1.ResetUser(1); err != nil {
		t.Fatal(err)
	}
	// Pooled path on pair 2.
	if err := a2.MoveUserTo(b2, 1); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		s1, _ := a1.ExportUser(j)
		s2, _ := a2.ExportUser(j)
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("source user %d diverged after move", j)
		}
		d1, _ := b1.ExportUser(j)
		d2, _ := b2.ExportUser(j)
		if !reflect.DeepEqual(d1, d2) {
			t.Fatalf("destination user %d diverged after move", j)
		}
	}
	// The moved trackers must keep producing identical rounds.
	r1, err1 := b1.StepUsers(3, stream[2], []int{1})
	r2, err2 := b2.StepUsers(3, stream[2], []int{1})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("post-move rounds diverged")
	}
	// Moving a never-touched user clears the destination slot, matching
	// export-of-uninitialized + import + reset.
	fresh, _, _ := mkPair()
	if err := fresh.MoveUserTo(b1, 1); err != nil {
		t.Fatal(err)
	}
	if cleared, _ := b1.ExportUser(1); cleared.Initialized || len(cleared.Samples) != 0 {
		t.Fatalf("move of untouched user left state behind: %+v", cleared)
	}
	// Validation.
	if err := a1.MoveUserTo(b1, 9); err == nil {
		t.Error("out-of-range move accepted")
	}
}

// TestSnapshotRoundTrip: export → import moves a user's full state between
// trackers, deep-copied, and the two trackers then predict from identical
// sample sets.
func TestSnapshotRoundTrip(t *testing.T) {
	a, b, stream := subsetWorld(t, Config{N: 100, M: 5})
	for r, o := range stream[:2] {
		if _, err := a.Step(float64(r+1), o); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := a.ExportUser(1)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Initialized || len(snap.Samples) == 0 {
		t.Fatalf("tracked user exported as %+v", snap)
	}
	if err := b.ImportUser(1, snap); err != nil {
		t.Fatal(err)
	}
	back, err := b.ExportUser(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatal("import/export round trip changed the snapshot")
	}
	// Deep copy: mutating the snapshot must not touch the tracker.
	snap.Samples[0] = geom.Pt(-99, -99)
	back2, _ := b.ExportUser(1)
	if back2.Samples[0] == snap.Samples[0] {
		t.Fatal("ImportUser aliased the snapshot slices")
	}

	// Reset clears back to bootstrap.
	if err := a.ResetUser(1); err != nil {
		t.Fatal(err)
	}
	cleared, _ := a.ExportUser(1)
	if cleared.Initialized || len(cleared.Samples) != 0 {
		t.Fatalf("reset user still carries state: %+v", cleared)
	}

	// Validation.
	if _, err := a.ExportUser(9); err == nil {
		t.Error("out-of-range export accepted")
	}
	if err := a.ImportUser(0, UserSnapshot{Initialized: true}); err == nil {
		t.Error("initialized snapshot without samples accepted")
	}
	if err := a.ImportUser(0, UserSnapshot{Initialized: true,
		Samples: []geom.Point{{}}, Weights: []float64{1, 2}}); err == nil {
		t.Error("misaligned snapshot accepted")
	}
}

// TestBoundsRestrictsTracker: a tracker bounded to a sub-rectangle draws
// its bootstrap candidates inside the bounds and reports the bounds center
// while uninitialized.
func TestBoundsRestrictsTracker(t *testing.T) {
	m, pts := testModel(t, 9)
	bounds := geom.NewRect(geom.Pt(0, 0), geom.Pt(15, 15))
	tr, err := New(Config{Model: m, SamplePoints: pts, NumUsers: 1, N: 200, M: 5,
		Bounds: bounds}, 4)
	if err != nil {
		t.Fatal(err)
	}
	est := tr.estimate(0, false, 0)
	if est.Mean != bounds.Center() {
		t.Fatalf("uninitialized estimate %v, want bounds center %v", est.Mean, bounds.Center())
	}
	o := observe(t, m, pts, []geom.Point{geom.Pt(7, 7)}, []float64{2})
	res, err := tr.Step(1, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Estimates[0].Samples {
		if !bounds.Contains(s) {
			t.Fatalf("kept sample %v outside bounds %v", s, bounds)
		}
	}
}
