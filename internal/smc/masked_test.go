package smc

import (
	"errors"
	"math"
	"testing"

	"fluxtrack/internal/geom"
)

// maskedTracker builds a one-user tracker over the standard test model.
func maskedTracker(t *testing.T, seed uint64) (*Tracker, []geom.Point, []float64) {
	t.Helper()
	m, pts := testModel(t, 41)
	tr, err := New(Config{
		Model: m, SamplePoints: pts, NumUsers: 1,
		N: 300, M: 10, VMax: 5,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	obs := observe(t, m, pts, []geom.Point{geom.Pt(11, 19)}, []float64{1.5})
	return tr, pts, obs
}

// TestStepMaskedAllMasked is the regression test for the typed-error
// contract: a round whose observation vector is entirely masked must return
// ErrAllMasked (not panic, not NaN estimates) and leave the tracker state
// untouched so tracking resumes on the next delivered round.
func TestStepMaskedAllMasked(t *testing.T) {
	tr, pts, obs := maskedTracker(t, 9)

	// Warm the tracker with one clean round.
	if _, err := tr.Step(1, obs); err != nil {
		t.Fatal(err)
	}
	before, err := tr.Step(2, obs)
	if err != nil {
		t.Fatal(err)
	}

	allMasked := make([]bool, len(pts))
	_, err = tr.StepMasked(3, obs, allMasked, nil)
	if !errors.Is(err, ErrAllMasked) {
		t.Fatalf("fully masked round returned %v, want ErrAllMasked", err)
	}
	if tr.Steps() != 2 {
		t.Fatalf("failed round advanced Steps to %d, want 2", tr.Steps())
	}

	// The tracker must still function, and its Δt keeps growing across the
	// skipped round (asynchronous updating): the next clean step works and
	// produces finite estimates close to where it was.
	after, err := tr.Step(4, obs)
	if err != nil {
		t.Fatalf("step after masked round: %v", err)
	}
	est := after.Estimates[0]
	if math.IsNaN(est.Mean.X) || math.IsNaN(est.Mean.Y) {
		t.Fatal("estimate went NaN after a masked round")
	}
	if d := est.Mean.Dist(before.Estimates[0].Mean); d > 10 {
		t.Errorf("estimate jumped %.2f after one skipped round", d)
	}
}

// TestStepMaskedEquivalentWhenAllPresent: an all-true mask with zero ages
// must be byte-identical to the unmasked Step on a twin tracker with the
// same seed.
func TestStepMaskedEquivalentWhenAllPresent(t *testing.T) {
	trA, pts, obs := maskedTracker(t, 17)
	trB, _, _ := maskedTracker(t, 17)

	present := make([]bool, len(pts))
	for i := range present {
		present[i] = true
	}
	ages := make([]int, len(pts))
	for step := 1; step <= 3; step++ {
		ra, err := trA.Step(float64(step), obs)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := trB.StepMasked(float64(step), obs, present, ages)
		if err != nil {
			t.Fatal(err)
		}
		ea, eb := ra.Estimates[0], rb.Estimates[0]
		if ea.Mean != eb.Mean || ea.Best != eb.Best || ea.Stretch != eb.Stretch {
			t.Fatalf("step %d: masked all-present diverged from Step: %+v vs %+v", step, ea, eb)
		}
		if ra.Objective != rb.Objective {
			t.Fatalf("step %d: objective %v vs %v", step, ra.Objective, rb.Objective)
		}
	}
}

// TestStepMaskedDegradesGracefully: with 40% of the sensors masked every
// round the tracker must keep producing finite, in-field estimates and
// still roughly find a stationary user.
func TestStepMaskedDegradesGracefully(t *testing.T) {
	tr, pts, obs := maskedTracker(t, 23)
	present := make([]bool, len(pts))
	for i := range present {
		present[i] = i%5 >= 2 // deterministic 40% mask
	}
	var last Estimate
	for step := 1; step <= 5; step++ {
		res, err := tr.StepMasked(float64(step), obs, present, nil)
		if err != nil {
			t.Fatal(err)
		}
		last = res.Estimates[0]
		if math.IsNaN(last.Mean.X) || math.IsNaN(last.Mean.Y) ||
			math.IsInf(last.Mean.X, 0) || math.IsInf(last.Mean.Y, 0) {
			t.Fatalf("step %d: non-finite estimate %v", step, last.Mean)
		}
	}
	if d := last.Mean.Dist(geom.Pt(11, 19)); d > 3 {
		t.Errorf("masked tracking error %.2f after 5 rounds, want <= 3", d)
	}
}

// TestStepMaskedStaleWeightsMatter: deflating stale reports must actually
// change the fit — a round where half the reports are 3 rounds old produces
// a different estimate than the same round treated as all-fresh, and a
// negative StaleAttenuation (deflation disabled) reproduces the all-fresh
// result exactly.
func TestStepMaskedStaleWeightsMatter(t *testing.T) {
	m, pts := testModel(t, 41)
	mkTracker := func(att float64) *Tracker {
		tr, err := New(Config{
			Model: m, SamplePoints: pts, NumUsers: 1,
			N: 300, M: 10, VMax: 5, StaleAttenuation: att,
		}, 29)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	// Stale readings carry a *different* (older) flux value, so weighting
	// matters: sensors with age > 0 report the flux of a past position.
	old := observe(t, m, pts, []geom.Point{geom.Pt(6, 10)}, []float64{1.5})
	now := observe(t, m, pts, []geom.Point{geom.Pt(14, 22)}, []float64{1.5})
	mixed := make([]float64, len(pts))
	ages := make([]int, len(pts))
	for i := range mixed {
		if i%2 == 0 {
			mixed[i], ages[i] = old[i], 3
		} else {
			mixed[i] = now[i]
		}
	}

	run := func(tr *Tracker, useAges bool) Estimate {
		a := ages
		if !useAges {
			a = nil
		}
		res, err := tr.StepMasked(1, mixed, nil, a)
		if err != nil {
			t.Fatal(err)
		}
		return res.Estimates[0]
	}
	deflated := run(mkTracker(0.5), true)
	fresh := run(mkTracker(0.5), false)
	if deflated.Mean == fresh.Mean {
		t.Error("stale-age deflation had no effect on the estimate")
	}
	disabled := run(mkTracker(-1), true)
	if disabled.Mean != fresh.Mean {
		t.Errorf("StaleAttenuation<0 should ignore ages: got %v, want %v", disabled.Mean, fresh.Mean)
	}
}

// TestStepMaskedValidation: malformed masks, age vectors, and non-finite
// delivered readings are rejected with errors, not panics.
func TestStepMaskedValidation(t *testing.T) {
	tr, pts, obs := maskedTracker(t, 31)
	if _, err := tr.StepMasked(1, obs, make([]bool, 3), nil); err == nil {
		t.Error("short mask accepted")
	}
	if _, err := tr.StepMasked(1, obs, nil, make([]int, 3)); err == nil {
		t.Error("short age vector accepted")
	}
	bad := append([]float64(nil), obs...)
	bad[7] = math.NaN()
	if _, err := tr.StepMasked(1, bad, nil, nil); err == nil {
		t.Error("NaN reading accepted")
	}
	bad[7] = math.Inf(1)
	if _, err := tr.StepMasked(1, bad, nil, nil); err == nil {
		t.Error("Inf reading accepted")
	}
	// A NaN hidden behind the mask is fine: the sensor never delivered.
	present := make([]bool, len(pts))
	for i := range present {
		present[i] = i != 7
	}
	if _, err := tr.StepMasked(1, bad, present, nil); err != nil {
		t.Errorf("masked NaN rejected: %v", err)
	}
}
