package smc

import (
	"reflect"
	"testing"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

// stateWorld precomputes a deterministic two-user observation stream.
func stateWorld(t *testing.T, rounds int) (cfg Config, obs [][]float64) {
	t.Helper()
	m, pts := testModel(t, 11)
	cfg = Config{Model: m, SamplePoints: pts, NumUsers: 2, N: 150, M: 6, VMax: 5}
	for r := 0; r < rounds; r++ {
		ft := float64(r + 1)
		sinks := []geom.Point{geom.Pt(8+ft, 9), geom.Pt(21, 20-ft)}
		obs = append(obs, observe(t, m, pts, sinks, []float64{1.4, 2.1}))
	}
	return cfg, obs
}

// TestExportRestoreResumesByteIdentically is the tracker-level resume
// contract: running N rounds straight through equals running k rounds,
// exporting, restoring into a fresh tracker, and finishing there — estimate
// for estimate, bit for bit. Exporting must also leave the source tracker
// untouched.
func TestExportRestoreResumesByteIdentically(t *testing.T) {
	const rounds, k, seed = 6, 3, 21
	cfg, obs := stateWorld(t, rounds)

	run := func(tr *Tracker, from int) []StepResult {
		var out []StepResult
		for r := from; r < rounds; r++ {
			res, err := tr.Step(float64(r+1), obs[r])
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, res)
		}
		return out
	}

	base, err := New(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	want := run(base, 0)

	orig, err := New(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	head := run1toK(t, orig, obs, k)
	st := orig.ExportState()
	// The export must not perturb the exporting tracker.
	origTail := run(orig, k)
	if !reflect.DeepEqual(origTail, want[k:]) {
		t.Fatal("ExportState perturbed the exporting tracker's subsequent rounds")
	}

	fresh, err := New(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if got := fresh.Steps(); got != k {
		t.Fatalf("restored Steps() = %d, want %d", got, k)
	}
	tail := run(fresh, k)
	if !reflect.DeepEqual(append(head, tail...), want) {
		t.Fatal("restored tracker diverged from the uninterrupted run")
	}
}

func run1toK(t *testing.T, tr *Tracker, obs [][]float64, k int) []StepResult {
	t.Helper()
	var out []StepResult
	for r := 0; r < k; r++ {
		res, err := tr.Step(float64(r+1), obs[r])
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res)
	}
	return out
}

// TestRestoreValidation pins the mismatch rejections: wrong seed, wrong
// population, malformed user lists.
func TestRestoreValidation(t *testing.T) {
	cfg, obs := stateWorld(t, 1)
	tr, err := New(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(1, obs[0]); err != nil {
		t.Fatal(err)
	}
	st := tr.ExportState()

	other, err := New(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.RestoreState(st); err == nil {
		t.Error("restore across seeds accepted")
	}

	small := cfg
	small.NumUsers = 1
	narrow, err := New(small, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := narrow.RestoreState(st); err == nil {
		t.Error("restore across population sizes accepted")
	}

	fresh, err := New(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	bad := st
	bad.Users = append([]UserCheckpoint(nil), st.Users...)
	if len(bad.Users) >= 2 {
		bad.Users[0], bad.Users[1] = bad.Users[1], bad.Users[0]
		if err := fresh.RestoreState(bad); err == nil {
			t.Error("out-of-order user list accepted")
		}
	}
	bad = st
	bad.Users = []UserCheckpoint{{User: 0, Snapshot: UserSnapshot{Initialized: true}, RNG: rng.State{}}}
	if err := fresh.RestoreState(bad); err == nil {
		t.Error("initialized user with no samples accepted")
	}
	bad = st
	bad.Steps = -1
	if err := fresh.RestoreState(bad); err == nil {
		t.Error("negative step count accepted")
	}
}

// TestExportAscendingAndSparse pins the export shape: users in strictly
// ascending order, and only materialized slots present.
func TestExportAscendingAndSparse(t *testing.T) {
	cfg, obs := stateWorld(t, 1)
	cfg.NumUsers = 5
	tr, err := New(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Step only users {1, 3}: slots 0, 2, 4 must stay unmaterialized.
	if _, err := tr.StepUsers(1, obs[0], []int{1, 3}); err != nil {
		t.Fatal(err)
	}
	st := tr.ExportState()
	if len(st.Users) != 2 || st.Users[0].User != 1 || st.Users[1].User != 3 {
		t.Fatalf("export carries users %+v, want exactly slots 1 and 3", st.Users)
	}
}
