// Package smc implements the Sequential Monte Carlo Estimation of
// Algorithm 4.1 (§4.B–E): per-user weighted sample sets approximate the
// posterior position distribution P(p_t | o_1, ..., o_t); each observation
// round runs prediction (uniform discs of radius v_max·Δt, Eq 4.2),
// filtering (keep the top-M positions by NLS objective), importance-weight
// updates (Eq 4.3 with P(o|P(i)) ≈ 1/‖F−F′‖), and asynchronous updating
// (users whose best-fit stretch collapses to zero are left untouched and
// their Δt keeps growing).
package smc

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"fluxtrack/internal/fingerprint"
	"fluxtrack/internal/fit"
	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mat"
	"fluxtrack/internal/obs"
	"fluxtrack/internal/par"
	"fluxtrack/internal/rng"
)

// Config configures a Tracker.
type Config struct {
	Model        *fluxmodel.Model
	SamplePoints []geom.Point // positions of the sniffed nodes (fixed)
	NumUsers     int          // K: number of mobile users to track

	// Bounds restricts where the tracker believes its users can be: the
	// uniform bootstrap draws of an uninitialized user, the clamping of
	// prediction discs, the field-center fallback estimate, and the
	// fingerprint grid of the coarse prestage all use Bounds instead of the
	// model's full field. The zero rectangle means the model field — the
	// paper's single-field tracker — which keeps existing output
	// byte-identical. A sharded field (internal/shard) sets Bounds to each
	// tile's halo-inflated rectangle so a tile only hypothesizes positions
	// on its own ground.
	Bounds geom.Rect

	// N is the number of predicted samples per user per round (paper: 1000).
	N int
	// M is the number of kept representatives per user (paper: 10).
	M int
	// VMax is the maximum user speed per unit of observation time; the
	// prediction disc radius is VMax times the per-user elapsed time
	// (paper: 5 per detection interval).
	VMax float64
	// IdleStretchFrac: a user whose fitted stretch factor falls below this
	// fraction of the round's largest fitted stretch is considered idle
	// (no data collection this window) and is not updated. Default 0.05.
	IdleStretchFrac float64
	// Search tunes the inner candidate-ranking search. Setting
	// Search.Robust.Mode arms the robust-fitting defense against Byzantine
	// sensors in every Step/StepMasked round: the round's search runs twice,
	// down-weighting sensors whose residuals fail the Huber or
	// leave-one-sensor-out consistency checks (see fit.RobustConfig). The
	// reweighting is a serial pure function of the first pass, so robust
	// rounds keep the tracker's byte-identical worker-invariance contract.
	Search fit.Options
	// Coarse enables the coarse-to-fine prestage of the inner search: New
	// precomputes a fingerprint database over SamplePoints and every round's
	// candidate search shortlists Coarse.TopK candidates per user by
	// fingerprint-cell score before the exact Gram/NNLS ranking (see
	// internal/fingerprint and fit.Coarse). TopK at or above N degrades to
	// the exact search with byte-identical output. Ignored when
	// Search.Coarse is already set explicitly.
	Coarse fingerprint.CoarseConfig
	// DBCache, when non-nil, memoizes the fingerprint database build of the
	// coarse prestage: trackers sharing a cache and asking for the same
	// (model, bounds, sample layout, grid resolution) share one immutable
	// database instead of each paying the build (see fingerprint.Cache). A
	// database is a pure function of that key, so caching never changes
	// tracker output. Nil builds directly, as before.
	DBCache *fingerprint.Cache
	// UseRelativeWeights applies fit.RelativeWeights to each observation.
	UseRelativeWeights bool
	// UniformWeights disables the importance weighting of §4.D: kept
	// samples are treated equally in the next prediction phase (the paper's
	// pre-importance-sampling variant). Exists for the ablation study.
	UniformWeights bool
	// ActiveSetLimit caps how many users join the per-round candidate
	// search when tracking many users (the trace-driven setting of §5.C,
	// 20 coexisting users). Zero disables the cap: every round searches
	// every user jointly. When enabled, the round first fits stretches
	// with all initialized users pinned at their incumbent positions, then
	// searches only the users that appear active (stretch above the idle
	// threshold), filling spare slots with uninitialized users and, when
	// the incumbent fit explains the observation poorly, the stalest users.
	// The cap also applies inside an explicit StepUsers subset larger than
	// the limit — a sharded tile owning thousands of users selects its
	// active set among the owned users the same way.
	ActiveSetLimit int
	// IncumbentFitLimit bounds the joint incumbent fit of the active-set
	// selection: when more than this many initialized users would be
	// pinned, the selection skips the O(k²) Gram fit and falls back to a
	// deterministic staleness ordering (uninitialized users first in
	// ascending index order, then initialized users by ascending
	// lastUpdate with index tie-breaks). Zero means 512; negative disables
	// the bound (always run the joint fit, the pre-scale behavior).
	IncumbentFitLimit int
	// HeadingPrediction enables the mobility-model refinement the paper
	// sketches in §4.C: instead of discs centered on the previous samples,
	// prediction discs are centered on the dead-reckoned position
	// (previous sample plus the estimated per-user velocity times Δt),
	// with the disc radius halved — the heading carries the information
	// the larger blind disc would otherwise have to cover.
	HeadingPrediction bool
	// StaleAttenuation tunes how much a delayed report's influence decays
	// in the masked fit of StepMasked: a report that is a rounds old gets
	// its objective weight divided by 1 + StaleAttenuation·a, so stale
	// flux constrains the fit more loosely than fresh flux instead of
	// being trusted verbatim (the §4.E asynchronous regime under the
	// delayed-delivery fault of internal/fault). Zero means 0.5; negative
	// disables the deflation (stale reports weigh like fresh ones).
	StaleAttenuation float64
	// Workers bounds the goroutines running one tracker round: the per-user
	// prediction draws, the incumbent-fit kernel columns of the active-set
	// selection, the candidate-scoring loops of the inner search, and the
	// per-user update/estimate bookkeeping. Every user owns an independent
	// RNG substream (derived from the tracker seed and the user index), so
	// tracker output is byte-identical at any worker count. Zero means one
	// worker per CPU (GOMAXPROCS); 1 forces the sequential path. When
	// Search.Workers is unset it inherits this value.
	Workers int
	// Metrics, when non-nil, receives the tracker's per-round work counters
	// (smc.step.*) and the smc.step.wall_ms latency histogram, and is
	// inherited by Search.Metrics when that is unset (threading the
	// fit.search.* and fit.nnls.* counters of the inner search too).
	// Metrics are write-only: enabling them never changes tracker output,
	// and every smc.step.* counter is worker-count-invariant. Nil disables
	// instrumentation at the cost of one branch per Step.
	Metrics *obs.Metrics
	// Trace, when non-nil, receives one structured obs.Span per successful
	// Step: phase wall times (predict/filter/update), candidate and
	// active-set counts, masked/stale sensor counts, and the NNLS effort
	// the round burned. Nil disables span collection.
	Trace *obs.Trace
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 1000
	}
	if c.M <= 0 {
		c.M = 10
	}
	if c.VMax <= 0 {
		c.VMax = 5
	}
	if c.IdleStretchFrac <= 0 {
		c.IdleStretchFrac = 0.05
	}
	if c.Search.TopM < c.M {
		c.Search.TopM = c.M
	}
	if c.Search.MaxExhaustive <= 0 {
		// Tracking evaluates N candidates per user every round; full Nᴷ
		// enumeration is overkill once the sample sets have concentrated,
		// so default to the iterated conditional search much earlier than
		// the localization default.
		c.Search.MaxExhaustive = 20000
	}
	if c.Search.Workers == 0 {
		c.Search.Workers = c.Workers
	}
	if c.Search.Metrics == nil {
		c.Search.Metrics = c.Metrics
	}
	if c.StaleAttenuation == 0 {
		c.StaleAttenuation = 0.5
	}
	if c.IncumbentFitLimit == 0 {
		c.IncumbentFitLimit = 512
	}
	if c.StaleAttenuation < 0 {
		c.StaleAttenuation = 0
	}
	if c.Coarse.Enabled {
		c.Coarse = c.Coarse.WithDefaults()
	}
	return c
}

// userState is the weighted sample set <P(i), w(i)> of one user.
type userState struct {
	samples     []geom.Point
	weights     []float64
	lastUpdate  float64
	initialized bool
	// src is this user's private RNG substream: all of the user's Monte
	// Carlo draws come from it, so prediction for different users can run
	// on different workers without perturbing each other's streams.
	src *rng.Source
	// velocity is the estimated displacement per unit time between the two
	// most recent updates; used only when HeadingPrediction is on.
	velocity    geom.Vec
	hasVelocity bool
	prevMean    geom.Point
	hasPrevMean bool
	// spareSamples/spareWeights are the update double-buffer: each update
	// writes the next kept set into the spares and swaps, so the
	// steady-state filtering step recycles two fixed M-slot buffers per
	// user instead of allocating fresh ones every round. They never leak:
	// estimate and ExportUser copy, so no caller holds either buffer.
	spareSamples []geom.Point
	spareWeights []float64
}

// Tracker runs Algorithm 4.1 over a stream of flux observations. It is not
// safe for concurrent use by multiple goroutines, but it parallelizes each
// round internally (see Config.Workers): every user owns a deterministic
// RNG substream, so per-user prediction and update shard cleanly, and the
// reusable fit.Searcher — whose candidate-column arenas and per-worker
// scratches are shared by every round's incumbent fits and composition
// searches — keeps the steady-state filtering step allocation-flat in N.
type Tracker struct {
	cfg Config
	// users holds per-user SMC state sparsely: a slot materializes (with
	// its lazily created RNG substream) the first time the user is stepped
	// or imported, so a tracker responsible for a slice of a much larger
	// user population — one tile of a sharded field over 10⁵–10⁶ users —
	// pays memory only for the users it has actually seen. Lazy substream
	// creation is invisible to determinism: a stream is a pure function of
	// (seed, user index) and its draw count, regardless of when the Source
	// object was built. Entries are created only between rounds or in the
	// serial prologue of a round (ensure), so the parallel phases do
	// concurrent map reads with no writes.
	users    map[int]*userState
	steps    int
	searcher *fit.Searcher
	seed     uint64

	// met holds the bound observability counter handles; the zero value is
	// the disabled instrument set (every call one nil branch).
	met trackerMetrics

	// Per-round prediction buffers, reused across Steps: candidate and
	// origin slots for up to NumUsers×N draws.
	candArena []geom.Point
	origArena []int
	candBuf   [][]geom.Point
	origBuf   [][]int

	// Per-round scratch reused across Steps so steady-state rounds stay
	// allocation-flat: the identity subset of the full path, the
	// active-set selection's worklists, and the sensor-weight buffer.
	identBuf   []int
	weightsBuf []float64
	sel        activeScratch
}

// activeScratch pools the working storage of selectActive across rounds.
type activeScratch struct {
	initialized   []int
	uninitialized []int
	positions     []geom.Point
	byStretch     []userStretch
	stale         []int
	subset        []int
	in            map[int]bool
}

// userStretch pairs a user with its incumbent-fit stretch for the
// activity-ordered sort of selectActive.
type userStretch struct {
	user int
	c    float64
}

// trackerMetrics caches the tracker's counter handles (bound once in New)
// so Step never pays a registry lookup. All counters are deterministic work
// counts; only the wall histogram is wall-clock.
type trackerMetrics struct {
	m             *obs.Metrics
	shard         int            // seed-derived counter shard, decorrelating parallel trials
	steps         *obs.Counter   // smc.step.count
	candidates    *obs.Counter   // smc.step.candidates: predicted positions drawn
	searchedUsers *obs.Counter   // smc.step.searched_users: active-set sizes
	activeUsers   *obs.Counter   // smc.step.active_users: users actually updated
	maskedSensors *obs.Counter   // smc.step.masked_sensors
	staleSensors  *obs.Counter   // smc.step.stale_sensors
	skipped       *obs.Counter   // smc.step.skipped_all_masked
	wall          *obs.Histogram // smc.step.wall_ms
}

func (tm *trackerMetrics) bind(m *obs.Metrics, seed uint64) {
	if m == nil {
		return
	}
	*tm = trackerMetrics{
		m:             m,
		shard:         int(seed),
		steps:         m.Counter("smc.step.count"),
		candidates:    m.Counter("smc.step.candidates"),
		searchedUsers: m.Counter("smc.step.searched_users"),
		activeUsers:   m.Counter("smc.step.active_users"),
		maskedSensors: m.Counter("smc.step.masked_sensors"),
		staleSensors:  m.Counter("smc.step.stale_sensors"),
		skipped:       m.Counter("smc.step.skipped_all_masked"),
		wall:          m.Histogram("smc.step.wall_ms", obs.DurationBucketsMs),
	}
}

// Estimate is one user's per-round output.
type Estimate struct {
	// Mean is the importance-weighted mean of the kept samples — the
	// tracker's position estimate.
	Mean geom.Point
	// Best is the kept sample with the lowest objective this round.
	Best geom.Point
	// Samples and Weights expose the kept representatives (aligned).
	Samples []geom.Point
	Weights []float64
	// Active reports whether this user was updated this round; inactive
	// users were judged idle by the stretch-collapse test of §4.E.
	Active bool
	// Stretch is the fitted integrated stretch factor c = s/r this round.
	Stretch float64
}

// StepResult is the tracker output for one observation round.
type StepResult struct {
	Time      float64
	Estimates []Estimate
	Objective float64 // objective of the best composition this round
}

// userStreamSeed derives user j's RNG substream seed from the tracker seed:
// a splitmix64 finalizer over seed + (j+1)·golden-ratio, so neighboring
// users land in statistically independent stream regions. The derivation
// depends only on (seed, j) — never on the worker count or on how many
// draws other users made — which is what makes tracker output byte-identical
// at any Config.Workers value.
func userStreamSeed(seed uint64, j int) uint64 {
	z := seed + uint64(j+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Tracker. SamplePoints and the model must be consistent;
// seed fixes all Monte Carlo draws.
func New(cfg Config, seed uint64) (*Tracker, error) {
	cfg = cfg.withDefaults()
	if cfg.Model == nil {
		return nil, errors.New("smc: nil model")
	}
	if len(cfg.SamplePoints) == 0 {
		return nil, errors.New("smc: no sampling points")
	}
	if cfg.NumUsers <= 0 {
		return nil, fmt.Errorf("smc: NumUsers must be positive, got %d", cfg.NumUsers)
	}
	if cfg.M > cfg.N {
		return nil, fmt.Errorf("smc: M (%d) must not exceed N (%d)", cfg.M, cfg.N)
	}
	if cfg.Bounds.Width() <= 0 || cfg.Bounds.Height() <= 0 {
		cfg.Bounds = cfg.Model.Field()
	}
	tr := &Tracker{
		cfg:      cfg,
		users:    make(map[int]*userState),
		searcher: fit.NewSearcher(),
		seed:     seed,
	}
	if cfg.Coarse.Enabled && tr.cfg.Search.Coarse == nil {
		// Precompute the fingerprint database once for the tracker's
		// lifetime: the sample layout is fixed, so every round's search
		// shares the same grid signatures. The grid covers Bounds — the
		// whole field for a plain tracker, the tile for a sharded one — and
		// a shared DBCache turns repeated builds over the same key into one.
		db, err := cfg.DBCache.Get(cfg.Model, cfg.Bounds, cfg.SamplePoints, cfg.Coarse, cfg.Workers, cfg.Metrics)
		if err != nil {
			return nil, fmt.Errorf("smc: fingerprint database: %w", err)
		}
		tr.cfg.Search.Coarse = &fit.Coarse{DB: db, TopK: tr.cfg.Coarse.TopK}
	}
	// Bind the observability handles once; the searcher needs an explicit
	// bind because the incumbent fits of the active-set selection go
	// through EvaluateWorkers, which takes no Options.
	tr.met.bind(cfg.Metrics, seed)
	tr.searcher.SetMetrics(cfg.Search.Metrics)
	return tr, nil
}

// ensure materializes user j's state slot (and its RNG substream) if this
// tracker has never touched the user before. Must only be called from serial
// code — the constructor path, a round's prologue, or the migration helpers —
// because it writes the user map.
func (tr *Tracker) ensure(j int) *userState {
	u := tr.users[j]
	if u == nil {
		u = &userState{src: rng.New(userStreamSeed(tr.seed, j))}
		tr.users[j] = u
	}
	return u
}

// Steps returns how many observation rounds the tracker has consumed.
func (tr *Tracker) Steps() int { return tr.steps }

// ErrAllMasked is returned by Step and StepMasked when a round's
// observation vector is entirely masked — every sensor failed, lost its
// report, or has nothing delivered — so there is no flux to fit against.
// The tracker's state is left untouched: the round is skipped, the per-user
// Δt keeps growing (the §4.E asynchronous regime), and the next delivered
// observation resumes tracking. Test with errors.Is.
var ErrAllMasked = errors.New("smc: observation entirely masked")

// Step consumes the flux observation taken at time t (readings aligned with
// cfg.SamplePoints) and returns the per-user estimates. Observation times
// must be strictly increasing.
func (tr *Tracker) Step(t float64, measured []float64) (StepResult, error) {
	return tr.step(t, measured, nil, nil, nil)
}

// StepUsers is Step restricted to an explicit user subset: only the listed
// users join the candidate search and are updated; everyone else keeps
// their state and reports an idle estimate, exactly as an active-set round
// treats unselected users. The subset must be strictly ascending and within
// range. A subset naming every user is identical to Step — including the
// ActiveSetLimit selection, which only an explicit partial subset bypasses
// (the caller has already decided who is searched). A sharded field uses
// this to step one tile's owned users against the tile's observation.
func (tr *Tracker) StepUsers(t float64, measured []float64, users []int) (StepResult, error) {
	return tr.step(t, measured, nil, nil, users)
}

// StepUsersMasked is StepMasked restricted to an explicit user subset; see
// StepUsers for the subset contract.
func (tr *Tracker) StepUsersMasked(t float64, measured []float64, present []bool, age []int, users []int) (StepResult, error) {
	return tr.step(t, measured, present, age, users)
}

// StepUsersSparse is StepUsers with sparse output: the returned
// Estimates[i] belongs to users[i] rather than occupying a dense
// NumUsers-long array, so a caller responsible for a small slice of a huge
// user population — a tile of a sharded field — pays O(len(users)) per
// round instead of O(NumUsers). dst, when non-nil, is reused as the
// estimate buffer (its backing array is overwritten and returned inside the
// result); pass the previous round's buffer back to keep steady-state
// stepping allocation-flat. The estimates themselves still carry freshly
// copied Samples/Weights, so retaining an Estimate across rounds stays
// safe. Every user in the subset is searched and reported under the same
// semantics as StepUsers, including the ActiveSetLimit selection within the
// subset when it is larger than the limit.
func (tr *Tracker) StepUsersSparse(t float64, measured []float64, users []int, dst []Estimate) (StepResult, error) {
	return tr.stepAny(t, measured, nil, nil, users, dst, true)
}

// StepUsersMaskedSparse is StepUsersMasked with the sparse output contract
// of StepUsersSparse.
func (tr *Tracker) StepUsersMaskedSparse(t float64, measured []float64, present []bool, age []int, users []int, dst []Estimate) (StepResult, error) {
	return tr.stepAny(t, measured, present, age, users, dst, true)
}

// StepMasked is Step over a degraded observation: present marks which
// sensors delivered a report this round (nil means all), and age gives each
// delivered report's staleness in rounds (nil means all fresh; aligned with
// measured where non-nil). Masked sensors drop out of the NLS fit entirely
// — their columns never enter the objective — and stale reports keep their
// column but with deflated weight (see Config.StaleAttenuation), so the
// tracker degrades gracefully under sensor failure, report loss, and
// delayed delivery (internal/fault) instead of fitting garbage. A round
// with no delivered reports returns ErrAllMasked and leaves the tracker
// untouched; a delivered non-finite reading is rejected the same way a
// malformed observation length is.
func (tr *Tracker) StepMasked(t float64, measured []float64, present []bool, age []int) (StepResult, error) {
	return tr.step(t, measured, present, age, nil)
}

// step is the dense-output round entry behind Step, StepMasked, StepUsers,
// and StepUsersMasked.
func (tr *Tracker) step(t float64, measured []float64, present []bool, age []int, users []int) (StepResult, error) {
	return tr.stepAny(t, measured, present, age, users, nil, false)
}

// stepAny is the single round implementation behind every Step variant.
// users nil (or naming every user) runs the full round with active-set
// selection; an explicit subset larger than ActiveSetLimit runs the same
// selection restricted to the subset, and a smaller one is taken verbatim.
// With sparse set, Estimates aligns with users (reusing sparseDst);
// otherwise it is dense over NumUsers. The tracker borrows the users slice
// only for the duration of the call.
func (tr *Tracker) stepAny(t float64, measured []float64, present []bool, age []int, users []int, sparseDst []Estimate, sparse bool) (StepResult, error) {
	// Observation is write-only: the span and counters below never feed
	// back into the round, so enabling them cannot perturb tracker output.
	observed := tr.met.m != nil || tr.cfg.Trace != nil
	var t0 time.Time
	if observed {
		t0 = time.Now()
	}
	if sparse && users == nil {
		return StepResult{}, errors.New("smc: sparse step requires a user subset")
	}
	var report []int // sparse output alignment; nil = dense over NumUsers
	if users != nil {
		prev := -1
		for _, j := range users {
			if j <= prev || j >= tr.cfg.NumUsers {
				return StepResult{}, fmt.Errorf("smc: user subset %v is not strictly ascending within [0,%d)",
					users, tr.cfg.NumUsers)
			}
			prev = j
		}
		if len(users) == 0 {
			return StepResult{}, errors.New("smc: empty user subset")
		}
		if sparse {
			report = users
		}
		if len(users) == tr.cfg.NumUsers {
			// Strictly ascending and in range with NumUsers entries is the
			// identity: take the full-round path, active-set selection
			// included, so a total subset is byte-identical to Step. (In
			// sparse mode the output alignment is the identity too, so the
			// estimates match the dense round entry for entry.)
			users = nil
		}
	}
	n := len(tr.cfg.SamplePoints)
	if len(measured) != n {
		return StepResult{}, fmt.Errorf("smc: observation length %d, want %d", len(measured), n)
	}
	if present != nil && len(present) != n {
		return StepResult{}, fmt.Errorf("smc: present mask length %d, want %d", len(present), n)
	}
	if age != nil && len(age) != n {
		return StepResult{}, fmt.Errorf("smc: age vector length %d, want %d", len(age), n)
	}
	delivered := n
	if present != nil {
		delivered = 0
		for _, p := range present {
			if p {
				delivered++
			}
		}
		if delivered == 0 {
			tr.met.skipped.Inc(tr.met.shard)
			return StepResult{}, fmt.Errorf("smc: round at t=%v: %w", t, ErrAllMasked)
		}
		if delivered == n {
			present = nil // full delivery: take the exact unmasked path
		}
	}
	staleCount := 0
	if age != nil {
		for i, a := range age {
			if a > 0 && (present == nil || present[i]) {
				staleCount++
			}
		}
		if staleCount == 0 {
			age = nil
		}
	}
	anyStale := staleCount > 0
	for i, v := range measured {
		if present != nil && !present[i] {
			continue
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return StepResult{}, fmt.Errorf("smc: reading %d is not finite (%v)", i, v)
		}
	}
	var span obs.Span
	var spanPtr *obs.Span
	var solves0, iters0 uint64
	if observed {
		spanUsers := tr.cfg.NumUsers
		if report != nil {
			spanUsers = len(report)
		}
		span = obs.Span{
			Seed: tr.seed, Step: tr.steps, Time: t, Tile: -1,
			Users:         spanUsers,
			MaskedSensors: n - delivered,
			StaleSensors:  staleCount,
		}
		// NNLS work baseline before the active-set selection, so the
		// incumbent fit's solves are attributed to this round's span.
		solves0, iters0 = tr.searcher.WorkTotals()
		spanPtr = &span
	}

	var weights []float64
	if tr.cfg.UseRelativeWeights {
		weights = fit.RelativeWeightsMasked(measured, present)
	}
	if anyStale && tr.cfg.StaleAttenuation > 0 {
		if weights == nil {
			if cap(tr.weightsBuf) < n {
				tr.weightsBuf = make([]float64, n)
			}
			weights = tr.weightsBuf[:n]
			for i := range weights {
				weights[i] = 1
			}
		}
		for i, a := range age {
			if a > 0 {
				weights[i] /= 1 + tr.cfg.StaleAttenuation*float64(a)
			}
		}
	}
	prob, err := fit.NewProblemMasked(tr.cfg.Model, tr.cfg.SamplePoints, measured, weights, present)
	if err != nil {
		return StepResult{}, err
	}

	subset := users
	switch {
	case subset == nil && tr.cfg.ActiveSetLimit > 0 && tr.cfg.NumUsers > tr.cfg.ActiveSetLimit:
		subset, err = tr.selectActive(prob, t, nil)
	case subset == nil:
		subset = tr.identitySubset()
	case tr.cfg.ActiveSetLimit > 0 && len(subset) > tr.cfg.ActiveSetLimit:
		// An explicit subset beyond the cap runs the same selection,
		// restricted to the subset's users: a sharded tile owning thousands
		// of users searches only the ones that look active this round.
		subset, err = tr.selectActive(prob, t, subset)
	}
	if err != nil {
		return StepResult{}, err
	}
	out, err := tr.stepSubset(prob, t, subset, report, sparseDst, spanPtr)
	if err != nil {
		return out, err
	}
	if observed {
		solves1, iters1 := tr.searcher.WorkTotals()
		span.NNLSSolves = solves1 - solves0
		span.NNLSIters = iters1 - iters0
		span.WallNs = time.Since(t0).Nanoseconds()
		tr.recordStep(&span)
	}
	return out, nil
}

// recordStep flushes one completed round into the bound counters, the wall
// histogram, and the trace ring. Every counter carries a deterministic work
// count; only the wall histogram (and the span's *Ns fields) are wall-clock.
func (tr *Tracker) recordStep(span *obs.Span) {
	if tm := &tr.met; tm.m != nil {
		w := tm.shard
		tm.steps.Inc(w)
		tm.candidates.Add(w, uint64(span.Candidates))
		tm.searchedUsers.Add(w, uint64(span.Searched))
		tm.activeUsers.Add(w, uint64(span.Active))
		tm.maskedSensors.Add(w, uint64(span.MaskedSensors))
		tm.staleSensors.Add(w, uint64(span.StaleSensors))
		tm.wall.Observe(w, float64(span.WallNs)/1e6)
	}
	tr.cfg.Trace.Add(*span)
}

// identitySubset returns the pooled [0, NumUsers) subset of the full-round
// path.
func (tr *Tracker) identitySubset() []int {
	if cap(tr.identBuf) < tr.cfg.NumUsers {
		tr.identBuf = make([]int, tr.cfg.NumUsers)
		for j := range tr.identBuf {
			tr.identBuf[j] = j
		}
	}
	return tr.identBuf[:tr.cfg.NumUsers]
}

// selectActive picks the users that join this round's candidate search (at
// most ActiveSetLimit): users whose stretch in the incumbent-position fit is
// above the idle threshold, then uninitialized users needing bootstrap, then
// — when the incumbent fit explains the observation poorly — the users with
// the largest accumulated Δt (most positional uncertainty). candidates
// restricts the selection to an explicit user pool (strictly ascending); nil
// means every user. The returned subset aliases tracker-owned scratch valid
// until the next selection.
func (tr *Tracker) selectActive(prob *fit.Problem, t float64, candidates []int) ([]int, error) {
	limit := tr.cfg.ActiveSetLimit
	sc := &tr.sel

	sc.initialized = sc.initialized[:0]
	sc.uninitialized = sc.uninitialized[:0]
	classify := func(j int) {
		if u := tr.users[j]; u != nil && u.initialized {
			sc.initialized = append(sc.initialized, j)
		} else {
			sc.uninitialized = append(sc.uninitialized, j)
		}
	}
	if candidates == nil {
		for j := 0; j < tr.cfg.NumUsers; j++ {
			classify(j)
		}
	} else {
		for _, j := range candidates {
			classify(j)
		}
	}
	initialized, uninitialized := sc.initialized, sc.uninitialized
	if len(initialized) == 0 {
		if len(uninitialized) > limit {
			uninitialized = uninitialized[:limit]
		}
		return uninitialized, nil
	}

	subset := sc.subset[:0]
	if sc.in == nil {
		sc.in = make(map[int]bool, limit)
	} else {
		clear(sc.in)
	}
	add := func(j int) bool {
		if len(subset) >= limit || sc.in[j] {
			return false
		}
		subset = append(subset, j)
		sc.in[j] = true
		return true
	}

	if fl := tr.cfg.IncumbentFitLimit; fl > 0 && len(initialized) > fl {
		// Too many pinned users for the joint O(k²) Gram fit to pay off:
		// fall back to a deterministic ordering that needs no fit at all —
		// bootstrap the uninitialized first (ascending index), then refresh
		// the stalest initialized users. This trades per-round activity
		// detection for bounded cost; the stale rotation still visits every
		// user, just over more rounds.
		for _, j := range uninitialized {
			if !add(j) {
				break
			}
		}
		sc.stale = append(sc.stale[:0], initialized...)
		stale := sc.stale
		sort.Slice(stale, func(a, b int) bool {
			ua, ub := stale[a], stale[b]
			if tr.users[ua].lastUpdate != tr.users[ub].lastUpdate {
				return tr.users[ua].lastUpdate < tr.users[ub].lastUpdate
			}
			return ua < ub
		})
		for _, j := range stale {
			if len(subset) >= limit {
				break
			}
			add(j)
		}
		sort.Ints(subset)
		sc.subset = subset
		return subset, nil
	}

	// Incumbent fit: all initialized users pinned at their current best.
	// The per-user kernel columns shard across the tracker's workers.
	if cap(sc.positions) < len(initialized) {
		sc.positions = make([]geom.Point, len(initialized))
	}
	positions := sc.positions[:len(initialized)]
	for i, j := range initialized {
		positions[i] = tr.users[j].samples[0]
	}
	ev, err := tr.searcher.EvaluateWorkers(prob, positions, tr.cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("smc: incumbent fit: %w", err)
	}
	var maxStretch float64
	for _, c := range ev.Stretches {
		maxStretch = math.Max(maxStretch, c)
	}

	// 1. Apparently-active users, strongest first.
	if cap(sc.byStretch) < len(initialized) {
		sc.byStretch = make([]userStretch, len(initialized))
	}
	byStretch := sc.byStretch[:len(initialized)]
	for i, j := range initialized {
		byStretch[i] = userStretch{user: j, c: ev.Stretches[i]}
	}
	sort.Slice(byStretch, func(a, b int) bool {
		// Strongest first; exact stretch ties resolve to the lower user
		// index so the selected membership can never depend on sort
		// internals (sort.Slice is unstable).
		if byStretch[a].c != byStretch[b].c {
			return byStretch[a].c > byStretch[b].c
		}
		return byStretch[a].user < byStretch[b].user
	})
	for _, us := range byStretch {
		if maxStretch > 0 && us.c >= tr.cfg.IdleStretchFrac*maxStretch {
			add(us.user)
		}
	}
	// 2. Uninitialized users needing bootstrap.
	for _, j := range uninitialized {
		add(j)
	}
	// 3. Poor incumbent fit: stalest users first, since a user that moved
	// far from its incumbent position leaves unexplained flux behind.
	obsNorm := mat.Norm2(prob.Measured())
	if obsNorm > 0 && ev.Objective > 0.3*obsNorm {
		sc.stale = append(sc.stale[:0], initialized...)
		stale := sc.stale
		sort.Slice(stale, func(a, b int) bool {
			// Stalest first; users updated in the same round (equal
			// lastUpdate — the common case right after bootstrap) fill the
			// remaining slots in ascending index order, again keeping the
			// membership independent of sort internals.
			ua, ub := stale[a], stale[b]
			if tr.users[ua].lastUpdate != tr.users[ub].lastUpdate {
				return tr.users[ua].lastUpdate < tr.users[ub].lastUpdate
			}
			return ua < ub
		})
		for _, j := range stale {
			add(j)
		}
	}
	if len(subset) == 0 {
		// Nothing looked active: still search the single strongest user so
		// idle rounds cost one cheap ranking and the estimates stay fresh.
		subset = append(subset, byStretch[0].user)
	}
	sort.Ints(subset)
	sc.subset = subset
	return subset, nil
}

// predictBuffers returns k reusable candidate/origin buffers of length N
// each, carved out of the tracker-owned arenas so the steady-state
// prediction phase allocates nothing.
func (tr *Tracker) predictBuffers(k int) ([][]geom.Point, [][]int) {
	n := tr.cfg.N
	need := k * n
	if cap(tr.candArena) < need {
		tr.candArena = make([]geom.Point, need)
	}
	if cap(tr.origArena) < need {
		tr.origArena = make([]int, need)
	}
	if cap(tr.candBuf) < k {
		tr.candBuf = make([][]geom.Point, k)
		tr.origBuf = make([][]int, k)
	}
	cands := tr.candBuf[:k]
	origins := tr.origBuf[:k]
	for i := 0; i < k; i++ {
		cands[i] = tr.candArena[i*n : (i+1)*n : (i+1)*n]
		origins[i] = tr.origArena[i*n : (i+1)*n : (i+1)*n]
	}
	return cands, origins
}

// stepSubset runs one Algorithm 4.1 round with only the subset users in the
// candidate search; the remaining users are treated as idle this round.
// report selects the output shape: nil fills a dense NumUsers estimate
// array; otherwise Estimates[i] belongs to report[i], written into sparseDst
// when it has capacity. A non-nil span receives the round's phase timings
// and work counts; it never influences the round itself.
func (tr *Tracker) stepSubset(prob *fit.Problem, t float64, subset []int, report []int, sparseDst []Estimate, span *obs.Span) (StepResult, error) {
	if len(subset) == 0 {
		return StepResult{}, errors.New("smc: empty user subset")
	}
	// Materialize every searched user's state serially before fanning out:
	// the parallel phases below only read the user map (and mutate distinct
	// *userState values), so lazy slot creation never races.
	for _, j := range subset {
		tr.ensure(j)
	}
	var mark time.Time
	if span != nil {
		mark = time.Now()
	}
	// Prediction phase (Eq 4.2): candidate sets of size N per subset user,
	// drawn concurrently — each user's draws come from its own substream,
	// so any sharding yields the same candidates.
	candidates, origins := tr.predictBuffers(len(subset))
	_ = par.For(len(subset), tr.cfg.Workers, func(_, i int) error {
		tr.predictInto(subset[i], t, candidates[i], origins[i])
		return nil
	})
	if span != nil {
		now := time.Now()
		span.PredictNs = now.Sub(mark).Nanoseconds()
		mark = now
	}

	// Filtering phase: rank compositions by NLS objective.
	searchOpts := tr.cfg.Search
	searchOpts.TopM = max(tr.cfg.M, searchOpts.TopM)
	res, err := tr.searcher.Search(prob, candidates, searchOpts)
	if err != nil {
		return StepResult{}, err
	}
	if len(res.Best) == 0 {
		return StepResult{}, errors.New("smc: search returned no compositions")
	}
	best := res.Best[0]
	if span != nil {
		now := time.Now()
		span.SearchNs = now.Sub(mark).Nanoseconds()
		mark = now
		span.Searched = len(subset)
		span.Candidates = len(subset) * tr.cfg.N
		span.Objective = best.Objective
	}

	// Asynchronous updating (§4.E): the largest fitted stretch this round
	// sets the activity scale.
	var maxStretch float64
	for _, c := range best.Stretches {
		maxStretch = math.Max(maxStretch, c)
	}

	var ests []Estimate
	if report == nil {
		ests = make([]Estimate, tr.cfg.NumUsers)
	} else {
		// Sparse output: reuse the caller's buffer when it is big enough so
		// steady-state sparse stepping allocates no estimate array.
		if cap(sparseDst) < len(report) {
			sparseDst = make([]Estimate, len(report))
		}
		ests = sparseDst[:len(report)]
	}
	out := StepResult{Time: t, Objective: best.Objective, Estimates: ests}
	num := tr.cfg.NumUsers
	if report != nil {
		num = len(report)
	}
	// Update and estimate bookkeeping: independent per user (user j's state
	// and estimate slot are touched by exactly one worker). Subset
	// membership resolves by binary search — subset is strictly ascending —
	// so no per-round membership map is built.
	_ = par.For(num, tr.cfg.Workers, func(_, idx int) error {
		j := idx
		if report != nil {
			j = report[idx]
		}
		i := sort.SearchInts(subset, j)
		if i >= len(subset) || subset[i] != j {
			ests[idx] = tr.estimate(j, false, 0)
			return nil
		}
		stretch := best.Stretches[i]
		active := maxStretch > 0 && stretch >= tr.cfg.IdleStretchFrac*maxStretch
		if active {
			tr.update(j, t, res.PerUser[i], origins[i])
		}
		ests[idx] = tr.estimate(j, active, stretch)
		return nil
	})
	tr.steps++
	if span != nil {
		span.UpdateNs = time.Since(mark).Nanoseconds()
		for j := range out.Estimates {
			if out.Estimates[j].Active {
				span.Active++
			}
		}
	}
	return out, nil
}

// predictInto draws the N candidate positions for user j at time t into the
// provided buffers, per Eq 4.2: uniform in the disc of radius VMax·Δt around
// an origin sample chosen by importance weight. Uninitialized users draw
// uniformly over the tracker bounds (the field, unless Config.Bounds
// narrows it). All randomness comes from user j's substream.
func (tr *Tracker) predictInto(j int, t float64, cands []geom.Point, origins []int) {
	u := tr.users[j] // ensured by stepSubset's serial prologue
	field := tr.cfg.Bounds
	if !u.initialized {
		for i := range cands {
			cands[i] = u.src.InRect(field)
			origins[i] = -1
		}
		return
	}
	dt := math.Max(t-u.lastUpdate, 0)
	radius := tr.cfg.VMax * dt
	var drift geom.Vec
	if tr.cfg.HeadingPrediction && u.hasVelocity {
		// Dead-reckon by the estimated velocity and shrink the disc: the
		// heading supplies the direction the blind model had to cover.
		drift = u.velocity.Scale(dt)
		// Never reckon further than the speed bound allows.
		if n := drift.Norm(); n > radius {
			drift = drift.Scale(radius / math.Max(n, 1e-12))
		}
		radius /= 2
	}
	for i := range cands {
		o := u.src.Weighted(u.weights)
		if o < 0 {
			o = u.src.IntN(len(u.samples))
		}
		center := u.samples[o].Add(drift)
		cands[i] = u.src.InDiscClamped(field.Clamp(center), radius, field)
		origins[i] = o
	}
}

// update replaces user j's kept set with the top-M ranked positions and
// refreshes the importance weights per Eq 4.3:
// w_t(i) ∝ w_{t−1}(origin(i)) · P(o_t | P(i)) with P(o|P(i)) ≈ 1/objective.
// The new set is written into the user's spare double-buffer and swapped in,
// so steady-state updates recycle two M-slot buffers instead of allocating.
func (tr *Tracker) update(j int, t float64, ranked []fit.RankedPosition, origins []int) {
	u := tr.users[j] // ensured by stepSubset's serial prologue
	m := min(tr.cfg.M, len(ranked))
	newSamples := u.spareSamples
	if cap(newSamples) < m {
		newSamples = make([]geom.Point, m)
	}
	newSamples = newSamples[:m]
	newWeights := u.spareWeights
	if cap(newWeights) < m {
		newWeights = make([]float64, m)
	}
	newWeights = newWeights[:m]
	var total float64
	for i := 0; i < m; i++ {
		r := ranked[i]
		newSamples[i] = r.Pos
		w := 1.0
		if !tr.cfg.UniformWeights {
			prior := 1.0
			if u.initialized && origins[r.Index] >= 0 {
				prior = u.weights[origins[r.Index]]
			}
			w = prior / math.Max(r.Objective, 1e-12)
		}
		newWeights[i] = w
		total += w
	}
	if total <= 0 {
		for i := range newWeights {
			newWeights[i] = 1 / float64(m)
		}
	} else {
		for i := range newWeights {
			newWeights[i] /= total
		}
	}
	dt := t - u.lastUpdate
	u.spareSamples = u.samples[:0:cap(u.samples)]
	u.spareWeights = u.weights[:0:cap(u.weights)]
	u.samples = newSamples
	u.weights = newWeights
	u.lastUpdate = t
	u.initialized = true

	// Maintain the velocity estimate for heading-informed prediction.
	var mx, my float64
	for i, s := range newSamples {
		mx += newWeights[i] * s.X
		my += newWeights[i] * s.Y
	}
	mean := geom.Pt(mx, my)
	if u.hasPrevMean && dt > 0 {
		u.velocity = mean.Sub(u.prevMean).Scale(1 / dt)
		u.hasVelocity = true
	}
	u.prevMean = mean
	u.hasPrevMean = true
}

// estimate summarizes user j's current sample set. Reads only: a user with
// no materialized slot is simply uninitialized, so the estimate path never
// writes the user map and is safe to run concurrently per user.
func (tr *Tracker) estimate(j int, active bool, stretch float64) Estimate {
	u := tr.users[j]
	est := Estimate{Active: active, Stretch: stretch}
	if u == nil || !u.initialized {
		// Never updated: report the bounds center with zero confidence.
		est.Mean = tr.cfg.Bounds.Center()
		est.Best = est.Mean
		return est
	}
	est.Samples = append([]geom.Point(nil), u.samples...)
	est.Weights = append([]float64(nil), u.weights...)
	var x, y float64
	for i, s := range u.samples {
		x += u.weights[i] * s.X
		y += u.weights[i] * s.Y
	}
	est.Mean = geom.Pt(x, y)
	est.Best = u.samples[0] // ranked ascending by objective at update time
	return est
}

// UserSnapshot is a self-contained copy of one user's SMC state — the
// weighted sample set plus the asynchronous-update bookkeeping — portable
// between trackers. A sharded field (internal/shard) moves a user between
// neighboring tiles by exporting the snapshot from one tracker and
// importing it into another; the RNG substream is deliberately NOT part of
// the snapshot (it belongs to the (tracker, slot) pair, so each tile keeps
// drawing from its own deterministic stream regardless of migration
// history).
type UserSnapshot struct {
	Samples     []geom.Point
	Weights     []float64
	LastUpdate  float64
	Initialized bool
	Velocity    geom.Vec
	HasVelocity bool
	PrevMean    geom.Point
	HasPrevMean bool
}

// ExportUser returns a deep copy of user j's current state. Exporting an
// uninitialized user yields a snapshot with Initialized false.
func (tr *Tracker) ExportUser(j int) (UserSnapshot, error) {
	if j < 0 || j >= tr.cfg.NumUsers {
		return UserSnapshot{}, fmt.Errorf("smc: export user %d outside [0,%d)", j, tr.cfg.NumUsers)
	}
	u := tr.users[j]
	if u == nil {
		return UserSnapshot{}, nil // never touched: uninitialized
	}
	return UserSnapshot{
		Samples:     append([]geom.Point(nil), u.samples...),
		Weights:     append([]float64(nil), u.weights...),
		LastUpdate:  u.lastUpdate,
		Initialized: u.initialized,
		Velocity:    u.velocity,
		HasVelocity: u.hasVelocity,
		PrevMean:    u.prevMean,
		HasPrevMean: u.hasPrevMean,
	}, nil
}

// ImportUser replaces user j's state with a deep copy of the snapshot. An
// initialized snapshot must carry a non-empty sample set with aligned
// weights; samples are taken verbatim (the next prediction phase clamps its
// draws to the tracker bounds, so samples just outside a tile's ground —
// the normal case right after a seam crossing — resolve naturally).
func (tr *Tracker) ImportUser(j int, s UserSnapshot) error {
	if j < 0 || j >= tr.cfg.NumUsers {
		return fmt.Errorf("smc: import user %d outside [0,%d)", j, tr.cfg.NumUsers)
	}
	if s.Initialized {
		if len(s.Samples) == 0 {
			return errors.New("smc: initialized snapshot with no samples")
		}
		if len(s.Samples) != len(s.Weights) {
			return fmt.Errorf("smc: snapshot has %d samples but %d weights", len(s.Samples), len(s.Weights))
		}
	}
	u := tr.ensure(j)
	u.samples = append(u.samples[:0], s.Samples...)
	u.weights = append(u.weights[:0], s.Weights...)
	u.lastUpdate = s.LastUpdate
	u.initialized = s.Initialized
	u.velocity = s.Velocity
	u.hasVelocity = s.HasVelocity
	u.prevMean = s.PrevMean
	u.hasPrevMean = s.HasPrevMean
	return nil
}

// ResetUser clears user j back to the uninitialized bootstrap state (the
// source side of a migration). The slot keeps its RNG substream: a user
// migrating back later resumes the same deterministic stream, advanced by
// exactly the draws the slot has made. The slot's sample buffers are kept
// (emptied) for reuse, so a reset/re-import cycle allocates nothing.
func (tr *Tracker) ResetUser(j int) error {
	if j < 0 || j >= tr.cfg.NumUsers {
		return fmt.Errorf("smc: reset user %d outside [0,%d)", j, tr.cfg.NumUsers)
	}
	u := tr.users[j]
	if u == nil {
		return nil // never touched: already the bootstrap state
	}
	*u = userState{
		src:          u.src,
		samples:      u.samples[:0],
		weights:      u.weights[:0],
		spareSamples: u.spareSamples,
		spareWeights: u.spareWeights,
	}
	return nil
}

// MoveUserTo transfers user j's state from tr to dst — semantically
// ExportUser + ImportUser + ResetUser, but by handing the sample buffers
// over instead of deep-copying them, and recycling dst's previous buffers
// into the vacated source slot. Steady-state seam migration in a sharded
// field therefore allocates nothing. Both trackers keep their own RNG
// substreams for the slot, exactly as the snapshot path does.
func (tr *Tracker) MoveUserTo(dst *Tracker, j int) error {
	if j < 0 || j >= tr.cfg.NumUsers {
		return fmt.Errorf("smc: move user %d outside [0,%d)", j, tr.cfg.NumUsers)
	}
	if j >= dst.cfg.NumUsers {
		return fmt.Errorf("smc: move user %d outside destination [0,%d)", j, dst.cfg.NumUsers)
	}
	su := tr.users[j]
	if su == nil {
		// Nothing to move: the destination must still end up uninitialized,
		// matching import-of-empty-snapshot + reset semantics.
		return dst.ResetUser(j)
	}
	du := dst.ensure(j)
	oldSamples, oldWeights := du.samples, du.weights
	*du = userState{
		samples:      su.samples,
		weights:      su.weights,
		lastUpdate:   su.lastUpdate,
		initialized:  su.initialized,
		src:          du.src,
		velocity:     su.velocity,
		hasVelocity:  su.hasVelocity,
		prevMean:     su.prevMean,
		hasPrevMean:  su.hasPrevMean,
		spareSamples: du.spareSamples,
		spareWeights: du.spareWeights,
	}
	*su = userState{
		src:          su.src,
		samples:      oldSamples[:0],
		weights:      oldWeights[:0],
		spareSamples: su.spareSamples,
		spareWeights: su.spareWeights,
	}
	return nil
}

// WorkTotals reports the cumulative NNLS effort of the tracker's searcher —
// (solves, iterations) since construction. Both are deterministic work
// counts, identical at any worker count.
func (tr *Tracker) WorkTotals() (solves, iters uint64) {
	return tr.searcher.WorkTotals()
}
