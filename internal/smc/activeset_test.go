package smc

import (
	"testing"

	"fluxtrack/internal/geom"
)

// TestActiveSetManyUsers tracks 8 users of which only 2 collect each round,
// with the search capped at 4 users per round — the trace-driven regime of
// §5.C scaled down for test speed.
func TestActiveSetManyUsers(t *testing.T) {
	m, pts := testModel(t, 30)
	tr, err := New(Config{
		Model: m, SamplePoints: pts, NumUsers: 8,
		N: 250, M: 8, VMax: 4, ActiveSetLimit: 4,
	}, 31)
	if err != nil {
		t.Fatal(err)
	}
	// Two physical users alternate data collections at fixed positions.
	posA, posB := geom.Pt(8, 10), geom.Pt(22, 20)
	for step := 1; step <= 6; step++ {
		var obs []float64
		if step%2 == 1 {
			obs = observe(t, m, pts, []geom.Point{posA}, []float64{2})
		} else {
			obs = observe(t, m, pts, []geom.Point{posB}, []float64{2})
		}
		res, err := tr.Step(float64(step), obs)
		if err != nil {
			t.Fatal(err)
		}
		// At most ActiveSetLimit users may report active per round.
		activeCount := 0
		for _, est := range res.Estimates {
			if est.Active {
				activeCount++
			}
		}
		if activeCount > 4 {
			t.Fatalf("step %d: %d active users exceed the limit 4", step, activeCount)
		}
	}
	// Some tracker slot must sit near each physical position.
	nearA, nearB := false, false
	for j := 0; j < 8; j++ {
		est := tr.estimate(j, false, 0)
		if est.Mean.Dist(posA) < 2.5 {
			nearA = true
		}
		if est.Mean.Dist(posB) < 2.5 {
			nearB = true
		}
	}
	if !nearA || !nearB {
		t.Errorf("tracker slots missed a physical user: nearA=%v nearB=%v", nearA, nearB)
	}
}

// TestActiveSetIdleRoundCheap verifies an all-idle observation still steps
// without error and keeps every user inactive.
func TestActiveSetIdleRound(t *testing.T) {
	m, pts := testModel(t, 32)
	tr, err := New(Config{
		Model: m, SamplePoints: pts, NumUsers: 6,
		N: 200, M: 5, VMax: 4, ActiveSetLimit: 3,
	}, 33)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: one user collects so some slot initializes.
	obs := observe(t, m, pts, []geom.Point{geom.Pt(15, 15)}, []float64{2})
	if _, err := tr.Step(1, obs); err != nil {
		t.Fatal(err)
	}
	// Round 2: silence.
	zero := make([]float64, len(pts))
	res, err := tr.Step(2, zero)
	if err != nil {
		t.Fatal(err)
	}
	for j, est := range res.Estimates {
		if est.Active {
			t.Errorf("user %d active on a silent round", j)
		}
	}
}

// TestHeadingPredictionTracksStraightMover verifies the §4.C refinement
// stays locked on a constant-velocity user.
func TestHeadingPredictionTracksStraightMover(t *testing.T) {
	m, pts := testModel(t, 40)
	tr, err := New(Config{
		Model: m, SamplePoints: pts, NumUsers: 1,
		N: 300, M: 10, VMax: 4, HeadingPrediction: true,
	}, 41)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr float64
	for step := 1; step <= 8; step++ {
		truth := geom.Pt(4+2.5*float64(step), 12)
		obs := observe(t, m, pts, []geom.Point{truth}, []float64{2})
		res, err := tr.Step(float64(step), obs)
		if err != nil {
			t.Fatal(err)
		}
		lastErr = res.Estimates[0].Mean.Dist(truth)
	}
	if lastErr > 2.0 {
		t.Errorf("heading-informed tracking final error %.2f, want <= 2.0", lastErr)
	}
}

// TestUniformWeightsAblation checks the UniformWeights switch yields equal
// weights on every kept sample.
func TestUniformWeightsAblation(t *testing.T) {
	m, pts := testModel(t, 34)
	tr, err := New(Config{
		Model: m, SamplePoints: pts, NumUsers: 1,
		N: 200, M: 10, VMax: 5, UniformWeights: true,
	}, 35)
	if err != nil {
		t.Fatal(err)
	}
	obs := observe(t, m, pts, []geom.Point{geom.Pt(12, 12)}, []float64{2})
	res, err := tr.Step(1, obs)
	if err != nil {
		t.Fatal(err)
	}
	ws := res.Estimates[0].Weights
	for i := 1; i < len(ws); i++ {
		if ws[i] != ws[0] {
			t.Fatalf("weights not uniform: %v", ws)
		}
	}
}
