package smc

import (
	"fmt"
	"sort"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

// This file is the tracker's checkpoint surface: a complete, self-contained
// export of everything Algorithm 4.1 accumulates across rounds — the
// per-user weighted sample sets, the asynchronous-update bookkeeping, the
// round counter, and every materialized RNG substream cursor — so a tracker
// rebuilt in a fresh process from the same Config and seed resumes mid-track
// byte-identically (see internal/serve for the wire codec and the
// crash-restart determinism tests that pin the contract).

// UserCheckpoint is one user's full resumable state: the portable snapshot
// the migration path already uses plus the user's private RNG substream
// cursor. Unlike UserSnapshot — which deliberately leaves the substream with
// the (tracker, slot) pair so migration never replays another tile's draws —
// a checkpoint must carry the cursor: the restored tracker's slot has made
// zero draws, and resuming the stream from zero would replay history.
type UserCheckpoint struct {
	User     int
	Snapshot UserSnapshot
	RNG      rng.State
}

// TrackerState is the complete resumable state of a Tracker. Seed and
// NumUsers identify the configuration the state belongs to; RestoreState
// rejects a mismatch, because an unmaterialized user's substream is derived
// from (seed, index) at first touch and a different seed would silently
// diverge. Users holds only materialized slots, in ascending user order —
// a tracker responsible for a thin slice of a huge population checkpoints
// only the users it has actually seen.
type TrackerState struct {
	Seed     uint64
	NumUsers int
	Steps    int
	Users    []UserCheckpoint
}

// Seed returns the tracker's construction seed.
func (tr *Tracker) Seed() uint64 { return tr.seed }

// NumUsers returns the tracked population size (K).
func (tr *Tracker) NumUsers() int { return tr.cfg.NumUsers }

// ExportState deep-copies the tracker's complete resumable state. Exporting
// never mutates the tracker: a checkpointed tracker and its restored twin
// produce identical estimates from the next Step on, and the original may
// keep stepping as if nothing happened.
func (tr *Tracker) ExportState() TrackerState {
	st := TrackerState{
		Seed:     tr.seed,
		NumUsers: tr.cfg.NumUsers,
		Steps:    tr.steps,
		Users:    make([]UserCheckpoint, 0, len(tr.users)),
	}
	for j, u := range tr.users {
		st.Users = append(st.Users, UserCheckpoint{
			User: j,
			Snapshot: UserSnapshot{
				Samples:     append([]geom.Point(nil), u.samples...),
				Weights:     append([]float64(nil), u.weights...),
				LastUpdate:  u.lastUpdate,
				Initialized: u.initialized,
				Velocity:    u.velocity,
				HasVelocity: u.hasVelocity,
				PrevMean:    u.prevMean,
				HasPrevMean: u.hasPrevMean,
			},
			RNG: u.src.State(),
		})
	}
	sort.Slice(st.Users, func(a, b int) bool { return st.Users[a].User < st.Users[b].User })
	return st
}

// RestoreState replaces the tracker's state with a deep copy of st. The
// tracker must have been built from the same Config seed and population size
// the state was exported under; every other slot reverts to the untouched
// bootstrap state, exactly as in a fresh tracker. After RestoreState the
// tracker is the exporting tracker's process-equivalent twin: the same
// observation stream produces byte-identical estimates (the searcher's work
// counters restart at zero, but they only ever feed scheduling and
// observability, never output).
func (tr *Tracker) RestoreState(st TrackerState) error {
	if st.Seed != tr.seed {
		return fmt.Errorf("smc: restore seed %#x into tracker seeded %#x", st.Seed, tr.seed)
	}
	if st.NumUsers != tr.cfg.NumUsers {
		return fmt.Errorf("smc: restore of %d users into tracker of %d", st.NumUsers, tr.cfg.NumUsers)
	}
	if st.Steps < 0 {
		return fmt.Errorf("smc: restore with negative step count %d", st.Steps)
	}
	prev := -1
	for _, uc := range st.Users {
		if uc.User <= prev || uc.User >= tr.cfg.NumUsers {
			return fmt.Errorf("smc: restore user list not strictly ascending within [0,%d)", tr.cfg.NumUsers)
		}
		prev = uc.User
		if uc.Snapshot.Initialized {
			if len(uc.Snapshot.Samples) == 0 {
				return fmt.Errorf("smc: restore user %d initialized with no samples", uc.User)
			}
			if len(uc.Snapshot.Samples) != len(uc.Snapshot.Weights) {
				return fmt.Errorf("smc: restore user %d has %d samples but %d weights",
					uc.User, len(uc.Snapshot.Samples), len(uc.Snapshot.Weights))
			}
		}
	}
	// Validation passed: rebuild the user map wholesale. Dropping untouched
	// slots (rather than resetting them) matches a fresh process exactly —
	// their substreams re-derive from (seed, index) on first touch.
	clear(tr.users)
	for _, uc := range st.Users {
		u := tr.ensure(uc.User)
		if err := tr.ImportUser(uc.User, uc.Snapshot); err != nil {
			return err
		}
		u.src.Restore(uc.RNG)
	}
	tr.steps = st.Steps
	return nil
}
