// Package network models the sensor network as a unit-disk connectivity
// graph: two nodes communicate when their distance is at most the radio
// range R. It provides the hop-count machinery (BFS) that both the traffic
// simulator and the flux model calibration rely on, plus the neighborhood
// flux smoothing the paper suggests for mitigating routing-tree randomness.
//
// A Network is immutable once built: node positions come from
// internal/deploy, the adjacency lists are constructed once by grid-bucketed
// unit-disk range search, and all queries (Neighbors, HopsFrom, Nearest,
// SmoothOverNeighborhood) read shared state without locking, which is what
// lets the parallel layers above (candidate search, experiment trials)
// share one Network across goroutines. Hop counts are breadth-first-search
// distances, matching the paper's assumption that collection trees are
// shortest-path trees in hops.
package network

import (
	"fmt"
	"math"

	"fluxtrack/internal/geom"
)

// Network is an immutable unit-disk graph over sensor node positions.
type Network struct {
	field  geom.Rect
	radius float64
	pos    []geom.Point
	adj    [][]int32

	// cells buckets node indices on a grid of cell size radius for fast
	// neighbor-candidate lookup during construction and nearest queries.
	cells     map[cellKey][]int32
	avgDegree float64
}

type cellKey struct{ cx, cy int32 }

// New builds the unit-disk graph over the positions with radio range radius.
// Positions must be non-empty and lie inside field.
func New(field geom.Rect, positions []geom.Point, radius float64) (*Network, error) {
	if len(positions) == 0 {
		return nil, fmt.Errorf("network: no positions")
	}
	if radius <= 0 {
		return nil, fmt.Errorf("network: radius must be positive, got %v", radius)
	}
	for i, p := range positions {
		if !field.Contains(p) {
			return nil, fmt.Errorf("network: node %d at %v is outside field %v", i, p, field)
		}
	}
	n := &Network{
		field:  field,
		radius: radius,
		pos:    append([]geom.Point(nil), positions...),
		cells:  make(map[cellKey][]int32),
	}
	for i, p := range n.pos {
		k := n.cellOf(p)
		n.cells[k] = append(n.cells[k], int32(i))
	}
	n.buildAdjacency()
	return n, nil
}

func (n *Network) cellOf(p geom.Point) cellKey {
	return cellKey{
		cx: int32(math.Floor(p.X / n.radius)),
		cy: int32(math.Floor(p.Y / n.radius)),
	}
}

func (n *Network) buildAdjacency() {
	n.adj = make([][]int32, len(n.pos))
	r2 := n.radius * n.radius
	var totalEdges int
	for i, p := range n.pos {
		k := n.cellOf(p)
		for dx := int32(-1); dx <= 1; dx++ {
			for dy := int32(-1); dy <= 1; dy++ {
				for _, j := range n.cells[cellKey{k.cx + dx, k.cy + dy}] {
					if int(j) == i {
						continue
					}
					if p.Dist2(n.pos[j]) <= r2 {
						n.adj[i] = append(n.adj[i], j)
					}
				}
			}
		}
		totalEdges += len(n.adj[i])
	}
	n.avgDegree = float64(totalEdges) / float64(len(n.pos))
}

// Len returns the number of nodes.
func (n *Network) Len() int { return len(n.pos) }

// Field returns the deployment field rectangle.
func (n *Network) Field() geom.Rect { return n.field }

// Radius returns the radio range.
func (n *Network) Radius() float64 { return n.radius }

// Pos returns the position of node i.
func (n *Network) Pos(i int) geom.Point { return n.pos[i] }

// Positions returns a copy of all node positions.
func (n *Network) Positions() []geom.Point {
	return append([]geom.Point(nil), n.pos...)
}

// Neighbors returns the node indices adjacent to i. The returned slice is
// shared internal state and must not be modified.
func (n *Network) Neighbors(i int) []int32 { return n.adj[i] }

// Degree returns the degree of node i.
func (n *Network) Degree(i int) int { return len(n.adj[i]) }

// AvgDegree returns the average node degree of the network. The paper's
// instant-localization setup (900 nodes, 30x30 field, R = 2.4) yields an
// average degree around 18.
func (n *Network) AvgDegree() float64 { return n.avgDegree }

// Nearest returns the index of the node closest to p. Ties break toward the
// lower index, keeping sink attachment deterministic.
func (n *Network) Nearest(p geom.Point) int {
	best, bestD2 := 0, p.Dist2(n.pos[0])
	for i := 1; i < len(n.pos); i++ {
		if d2 := p.Dist2(n.pos[i]); d2 < bestD2 {
			best, bestD2 = i, d2
		}
	}
	return best
}

// HopsFrom returns the BFS hop distance from source to every node, with -1
// for unreachable nodes. This is the hop metric of the discrete flux model.
func (n *Network) HopsFrom(source int) []int {
	hops := make([]int, len(n.pos))
	for i := range hops {
		hops[i] = -1
	}
	hops[source] = 0
	queue := make([]int32, 0, len(n.pos))
	queue = append(queue, int32(source))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range n.adj[v] {
			if hops[w] < 0 {
				hops[w] = hops[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return hops
}

// LargestComponent returns the node indices of the largest connected
// component. Simulations attach users to this component so a disconnected
// random deployment cannot strand a sink.
func (n *Network) LargestComponent() []int {
	comp := make([]int, len(n.pos))
	for i := range comp {
		comp[i] = -1
	}
	bestID, bestSize := -1, 0
	sizes := []int{}
	for i := range n.pos {
		if comp[i] >= 0 {
			continue
		}
		id := len(sizes)
		size := 0
		queue := []int32{int32(i)}
		comp[i] = id
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			size++
			for _, w := range n.adj[v] {
				if comp[w] < 0 {
					comp[w] = id
					queue = append(queue, w)
				}
			}
		}
		sizes = append(sizes, size)
		if size > bestSize {
			bestID, bestSize = id, size
		}
	}
	out := make([]int, 0, bestSize)
	for i, id := range comp {
		if id == bestID {
			out = append(out, i)
		}
	}
	return out
}

// AvgHopDistance estimates the average Euclidean length of one hop, the
// model's r parameter, by averaging the distance between BFS-adjacent node
// pairs from the given source.
func (n *Network) AvgHopDistance(source int) float64 {
	hops := n.HopsFrom(source)
	var total float64
	var count int
	for i := range n.pos {
		if hops[i] <= 0 {
			continue
		}
		// Average distance to neighbors one hop closer.
		for _, j := range n.adj[i] {
			if hops[j] == hops[i]-1 {
				total += n.pos[i].Dist(n.pos[j])
				count++
			}
		}
	}
	if count == 0 {
		return n.radius
	}
	return total / float64(count)
}

// RadialHopProgress estimates the average Euclidean distance covered per hop
// as seen from source: the mean of dist(source, i)/hops(i) over nodes at
// least minHop hops away. This is the r parameter of the discrete flux model
// (d ≈ k·r for a k-hop node); it is slightly larger than the average
// parent-link length because multi-hop paths are nearly straight.
func (n *Network) RadialHopProgress(source, minHop int) float64 {
	if minHop < 1 {
		minHop = 1
	}
	hops := n.HopsFrom(source)
	var total float64
	var count int
	for i, h := range hops {
		if h < minHop {
			continue
		}
		total += n.pos[source].Dist(n.pos[i]) / float64(h)
		count++
	}
	if count == 0 {
		return n.radius
	}
	return total / float64(count)
}

// SmoothOverNeighborhood returns, for every node, the average of values over
// the node's closed neighborhood (itself plus adjacent nodes). The paper
// observes that averaging flux within a neighborhood yields a smoother flux
// map and better model accuracy by mitigating routing-tree randomness.
func (n *Network) SmoothOverNeighborhood(values []float64) ([]float64, error) {
	if len(values) != len(n.pos) {
		return nil, fmt.Errorf("network: smoothing needs %d values, got %d", len(n.pos), len(values))
	}
	out := make([]float64, len(values))
	for i := range values {
		sum := values[i]
		for _, j := range n.adj[i] {
			sum += values[j]
		}
		out[i] = sum / float64(1+len(n.adj[i]))
	}
	return out, nil
}
