package network

import (
	"math"
	"testing"

	"fluxtrack/internal/deploy"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

// lineNetwork builds a 5-node path 0-1-2-3-4 spaced 1 apart with radius 1.2.
func lineNetwork(t *testing.T) *Network {
	t.Helper()
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0), geom.Pt(4, 0),
	}
	n, err := New(geom.NewRect(geom.Pt(0, 0), geom.Pt(4, 1)), pts, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	field := geom.Square(10)
	if _, err := New(field, nil, 1); err == nil {
		t.Error("empty positions must error")
	}
	if _, err := New(field, []geom.Point{geom.Pt(1, 1)}, 0); err == nil {
		t.Error("zero radius must error")
	}
	if _, err := New(field, []geom.Point{geom.Pt(11, 1)}, 1); err == nil {
		t.Error("out-of-field node must error")
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	src := rng.New(1)
	pts, err := deploy.Generate(deploy.Config{
		Field: geom.Square(30), N: 400, Kind: deploy.UniformRandom,
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(geom.Square(30), pts, 2.4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n.Len(); i++ {
		for _, j := range n.Neighbors(i) {
			found := false
			for _, k := range n.Neighbors(int(j)) {
				if int(k) == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d->%d", i, j)
			}
		}
	}
}

func TestAdjacencyMatchesBruteForce(t *testing.T) {
	src := rng.New(7)
	pts, err := deploy.Generate(deploy.Config{
		Field: geom.Square(20), N: 150, Kind: deploy.UniformRandom,
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	const radius = 3.0
	n, err := New(geom.Square(20), pts, radius)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		want := map[int]bool{}
		for j := range pts {
			if i != j && pts[i].Dist(pts[j]) <= radius {
				want[j] = true
			}
		}
		got := map[int]bool{}
		for _, j := range n.Neighbors(i) {
			got[int(j)] = true
		}
		if len(got) != len(want) {
			t.Fatalf("node %d: %d neighbors, want %d", i, len(got), len(want))
		}
		for j := range want {
			if !got[j] {
				t.Fatalf("node %d missing neighbor %d", i, j)
			}
		}
	}
}

func TestLineHops(t *testing.T) {
	n := lineNetwork(t)
	hops := n.HopsFrom(0)
	want := []int{0, 1, 2, 3, 4}
	for i, w := range want {
		if hops[i] != w {
			t.Errorf("hops[%d] = %d, want %d", i, hops[i], w)
		}
	}
}

func TestHopsUnreachable(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 10)}
	n, err := New(geom.Square(10), pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	hops := n.HopsFrom(0)
	if hops[1] != -1 {
		t.Errorf("hops to isolated node = %d, want -1", hops[1])
	}
}

func TestNearest(t *testing.T) {
	n := lineNetwork(t)
	tests := []struct {
		p    geom.Point
		want int
	}{
		{geom.Pt(0.1, 0), 0},
		{geom.Pt(2.4, 0.5), 2},
		{geom.Pt(100, 100), 4},
		{geom.Pt(0.5, 0), 0}, // tie breaks to lower index
	}
	for _, tt := range tests {
		if got := n.Nearest(tt.p); got != tt.want {
			t.Errorf("Nearest(%v) = %d, want %d", tt.p, got, tt.want)
		}
	}
}

func TestLargestComponent(t *testing.T) {
	// Two clusters: {0,1,2} connected and {3,4} connected, far apart.
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0),
		geom.Pt(20, 20), geom.Pt(21, 20),
	}
	n, err := New(geom.Square(30), pts, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	comp := n.LargestComponent()
	if len(comp) != 3 {
		t.Fatalf("largest component size = %d, want 3", len(comp))
	}
	for i, want := range []int{0, 1, 2} {
		if comp[i] != want {
			t.Errorf("comp[%d] = %d, want %d", i, comp[i], want)
		}
	}
}

func TestAvgDegreePaperSetup(t *testing.T) {
	// Paper §5.A: 900 nodes on a 30x30 field, R = 2.4 gives average degree
	// around 18 (900 * pi * 2.4^2 / 900 = 18.1 in expectation).
	src := rng.New(2024)
	pts, err := deploy.Generate(deploy.Config{
		Field: geom.Square(30), N: 900, Kind: deploy.PerturbedGrid,
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(geom.Square(30), pts, 2.4)
	if err != nil {
		t.Fatal(err)
	}
	if d := n.AvgDegree(); d < 13 || d > 20 {
		t.Errorf("average degree = %v, want ~18 (boundary effects allow 13-20)", d)
	}
}

func TestAvgHopDistance(t *testing.T) {
	n := lineNetwork(t)
	// Along the path every hop is exactly 1.
	if got := n.AvgHopDistance(0); math.Abs(got-1) > 1e-9 {
		t.Errorf("AvgHopDistance = %v, want 1", got)
	}
}

func TestRadialHopProgress(t *testing.T) {
	n := lineNetwork(t)
	// Along the path, every node's dist/hops is exactly 1.
	if got := n.RadialHopProgress(0, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("RadialHopProgress = %v, want 1", got)
	}
	// minHop filtering: with minHop 3 only nodes 3 and 4 count; still 1.
	if got := n.RadialHopProgress(0, 3); math.Abs(got-1) > 1e-9 {
		t.Errorf("RadialHopProgress(minHop=3) = %v, want 1", got)
	}
	// minHop below 1 clamps to 1 rather than dividing by hop 0.
	if got := n.RadialHopProgress(0, 0); math.Abs(got-1) > 1e-9 {
		t.Errorf("RadialHopProgress(minHop=0) = %v, want 1", got)
	}
}

func TestRadialHopProgressIsolated(t *testing.T) {
	n, err := New(geom.Square(10), []geom.Point{geom.Pt(5, 5)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.RadialHopProgress(0, 1); got != 2 {
		t.Errorf("isolated RadialHopProgress = %v, want radius fallback 2", got)
	}
}

func TestRadialHopProgressBounds(t *testing.T) {
	// In a dense 2D network the radial progress per hop lies in
	// (radius/2, radius]: BFS paths are near-straight.
	n := paperNetworkHelper(t, 99)
	got := n.RadialHopProgress(n.Nearest(geom.Pt(15, 15)), 3)
	if got <= 1.2 || got > 2.4 {
		t.Errorf("RadialHopProgress = %v, want in (1.2, 2.4]", got)
	}
}

func paperNetworkHelper(t testing.TB, seed uint64) *Network {
	t.Helper()
	src := rng.New(seed)
	pts, err := deploy.Generate(deploy.Config{
		Field: geom.Square(30), N: 900, Kind: deploy.PerturbedGrid,
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(geom.Square(30), pts, 2.4)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestAvgHopDistanceIsolated(t *testing.T) {
	n, err := New(geom.Square(10), []geom.Point{geom.Pt(5, 5)}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.AvgHopDistance(0); got != 2 {
		t.Errorf("isolated AvgHopDistance = %v, want radius fallback 2", got)
	}
}

func TestSmoothOverNeighborhood(t *testing.T) {
	n := lineNetwork(t)
	vals := []float64{10, 0, 0, 0, 10}
	sm, err := n.SmoothOverNeighborhood(vals)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 has neighbors {1}: (10+0)/2 = 5.
	if math.Abs(sm[0]-5) > 1e-12 {
		t.Errorf("sm[0] = %v, want 5", sm[0])
	}
	// Node 2 has neighbors {1,3}: (0+0+0)/3 = 0.
	if sm[2] != 0 {
		t.Errorf("sm[2] = %v, want 0", sm[2])
	}
	if _, err := n.SmoothOverNeighborhood([]float64{1}); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestPositionsCopy(t *testing.T) {
	n := lineNetwork(t)
	ps := n.Positions()
	ps[0] = geom.Pt(99, 99)
	if n.Pos(0) == geom.Pt(99, 99) {
		t.Error("Positions returned aliasing storage")
	}
}

func BenchmarkNew900(b *testing.B) {
	src := rng.New(5)
	pts, err := deploy.Generate(deploy.Config{
		Field: geom.Square(30), N: 900, Kind: deploy.PerturbedGrid,
	}, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(geom.Square(30), pts, 2.4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHopsFrom(b *testing.B) {
	src := rng.New(5)
	pts, _ := deploy.Generate(deploy.Config{
		Field: geom.Square(30), N: 900, Kind: deploy.PerturbedGrid,
	}, src)
	n, err := New(geom.Square(30), pts, 2.4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.HopsFrom(i % n.Len())
	}
}
