// Package mobility provides the user-movement models of the paper's
// evaluation: straight-line trajectories for the instant tracking cases
// (Fig 7), speed-bounded random walks, and waypoint paths (the shape the
// campus traces reduce to).
//
// A model is any Trajectory: a function At(t) from observation time to a
// position inside the field. Linear, Waypoint, and Static are deterministic
// given their construction; RandomWalk draws turns from an explicit
// *rng.Source, so walks replay exactly under a fixed seed. The walk's speed
// bound is the same constant the SMC tracker's motion prior (internal/smc)
// assumes — experiments that sweep maximum speed (Fig 10b) vary both
// together. Trajectories produce geom.Point values clamped to the field
// rectangle by construction, never by the consumer.
package mobility

import (
	"errors"
	"fmt"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

// Trajectory yields a user's position as a function of time.
type Trajectory interface {
	// At returns the position at time t.
	At(t float64) geom.Point
}

// Linear is constant-velocity motion from Start at time T0.
type Linear struct {
	Start geom.Point
	V     geom.Vec // velocity per unit time
	T0    float64
}

var _ Trajectory = Linear{}

// At implements Trajectory. Positions before T0 clamp to Start.
func (l Linear) At(t float64) geom.Point {
	if t < l.T0 {
		return l.Start
	}
	return l.Start.Add(l.V.Scale(t - l.T0))
}

// Waypoint follows a polyline at constant speed, holding the final vertex
// after the path is exhausted.
type Waypoint struct {
	Points []geom.Point
	Speed  float64
	T0     float64
}

var _ Trajectory = Waypoint{}

// NewWaypoint validates and returns a waypoint trajectory.
func NewWaypoint(points []geom.Point, speed, t0 float64) (Waypoint, error) {
	if len(points) == 0 {
		return Waypoint{}, errors.New("mobility: waypoint path needs at least one point")
	}
	if speed <= 0 {
		return Waypoint{}, fmt.Errorf("mobility: speed must be positive, got %v", speed)
	}
	return Waypoint{Points: append([]geom.Point(nil), points...), Speed: speed, T0: t0}, nil
}

// At implements Trajectory.
func (w Waypoint) At(t float64) geom.Point {
	if t < w.T0 {
		return w.Points[0]
	}
	p, _ := geom.PointAlong(w.Points, w.Speed*(t-w.T0))
	return p
}

// Static is a stationary user.
type Static struct{ Pos geom.Point }

var _ Trajectory = Static{}

// At implements Trajectory.
func (s Static) At(float64) geom.Point { return s.Pos }

// RandomWalk is a speed-bounded random walk sampled on unit time steps; the
// position at fractional times interpolates linearly. It matches the weak
// mobility model of §4.C: the only assumption the tracker makes is a
// maximum speed.
type RandomWalk struct {
	steps []geom.Point
}

var _ Trajectory = (*RandomWalk)(nil)

// NewRandomWalk samples a walk of the given number of unit steps starting
// at start: each step moves a uniform distance in [0, maxSpeed] in a
// uniform direction, rejected (resampled) until it stays inside field.
func NewRandomWalk(field geom.Rect, start geom.Point, maxSpeed float64, steps int, src *rng.Source) (*RandomWalk, error) {
	if !field.Contains(start) {
		return nil, fmt.Errorf("mobility: start %v outside field %v", start, field)
	}
	if maxSpeed <= 0 {
		return nil, fmt.Errorf("mobility: maxSpeed must be positive, got %v", maxSpeed)
	}
	if steps < 0 {
		return nil, fmt.Errorf("mobility: steps must be non-negative, got %d", steps)
	}
	walk := make([]geom.Point, steps+1)
	walk[0] = start
	for i := 1; i <= steps; i++ {
		walk[i] = src.InDiscClamped(walk[i-1], maxSpeed, field)
	}
	return &RandomWalk{steps: walk}, nil
}

// At implements Trajectory; fractional times interpolate between steps.
func (r *RandomWalk) At(t float64) geom.Point {
	if t <= 0 {
		return r.steps[0]
	}
	last := float64(len(r.steps) - 1)
	if t >= last {
		return r.steps[len(r.steps)-1]
	}
	i := int(t)
	return geom.Lerp(r.steps[i], r.steps[i+1], t-float64(i))
}

// Steps returns a copy of the walk's sampled step positions.
func (r *RandomWalk) Steps() []geom.Point {
	return append([]geom.Point(nil), r.steps...)
}

// CrossingPair returns two linear trajectories that intersect midway through
// the window [t0, t0+duration] — the identity-confusion scenario of
// Fig 7(d): the tracker keeps both trajectories but may swap identities at
// the crossing point.
func CrossingPair(field geom.Rect, speed, t0, duration float64) (Linear, Linear, error) {
	if speed <= 0 || duration <= 0 {
		return Linear{}, Linear{}, fmt.Errorf("mobility: speed and duration must be positive (%v, %v)", speed, duration)
	}
	c := field.Center()
	half := speed * duration / 2
	// Diagonal approaches that meet at the center at t0 + duration/2.
	d1, ok1 := geom.Vec{DX: 1, DY: 1}.Unit()
	d2, ok2 := geom.Vec{DX: 1, DY: -1}.Unit()
	if !ok1 || !ok2 {
		return Linear{}, Linear{}, errors.New("mobility: internal direction error")
	}
	a := Linear{Start: field.Clamp(c.Add(d1.Scale(-half))), V: d1.Scale(speed), T0: t0}
	b := Linear{Start: field.Clamp(c.Add(d2.Scale(-half))), V: d2.Scale(speed), T0: t0}
	return a, b, nil
}

// MaxStepDistance returns the largest distance covered between consecutive
// integer sample times over [0, steps] — a diagnostic the tests use to
// verify speed bounds.
func MaxStepDistance(tr Trajectory, steps int) float64 {
	var m float64
	prev := tr.At(0)
	for i := 1; i <= steps; i++ {
		cur := tr.At(float64(i))
		if d := prev.Dist(cur); d > m {
			m = d
		}
		prev = cur
	}
	return m
}
