package mobility

import (
	"math"
	"testing"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

func TestLinearAt(t *testing.T) {
	l := Linear{Start: geom.Pt(1, 2), V: geom.Vec{DX: 2, DY: -1}, T0: 5}
	tests := []struct {
		t    float64
		want geom.Point
	}{
		{0, geom.Pt(1, 2)}, // before T0 clamps to start
		{5, geom.Pt(1, 2)}, // exactly T0
		{7, geom.Pt(5, 0)}, // two units of time later
		{10, geom.Pt(11, -3)},
	}
	for _, tt := range tests {
		if got := l.At(tt.t); got.Dist(tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestWaypointValidation(t *testing.T) {
	if _, err := NewWaypoint(nil, 1, 0); err == nil {
		t.Error("empty path must error")
	}
	if _, err := NewWaypoint([]geom.Point{{}}, 0, 0); err == nil {
		t.Error("zero speed must error")
	}
}

func TestWaypointAt(t *testing.T) {
	w, err := NewWaypoint([]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10)}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		t    float64
		want geom.Point
	}{
		{0, geom.Pt(0, 0)},   // before start
		{1, geom.Pt(0, 0)},   // at start
		{3.5, geom.Pt(5, 0)}, // 2.5 time units * speed 2 = 5 along
		{6, geom.Pt(10, 0)},  // at the corner
		{8.5, geom.Pt(10, 5)},
		{100, geom.Pt(10, 10)}, // holds final vertex
	}
	for _, tt := range tests {
		if got := w.At(tt.t); got.Dist(tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestWaypointCopiesPoints(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}
	w, err := NewWaypoint(pts, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	pts[0] = geom.Pt(99, 99)
	if w.At(0) != geom.Pt(0, 0) {
		t.Error("Waypoint aliased the caller's slice")
	}
}

func TestStatic(t *testing.T) {
	s := Static{Pos: geom.Pt(3, 4)}
	for _, tt := range []float64{0, 1, 100} {
		if got := s.At(tt); got != geom.Pt(3, 4) {
			t.Errorf("At(%v) = %v", tt, got)
		}
	}
}

func TestRandomWalkValidation(t *testing.T) {
	field := geom.Square(30)
	src := rng.New(1)
	if _, err := NewRandomWalk(field, geom.Pt(-1, 0), 5, 10, src); err == nil {
		t.Error("outside start must error")
	}
	if _, err := NewRandomWalk(field, geom.Pt(5, 5), 0, 10, src); err == nil {
		t.Error("zero speed must error")
	}
	if _, err := NewRandomWalk(field, geom.Pt(5, 5), 5, -1, src); err == nil {
		t.Error("negative steps must error")
	}
}

func TestRandomWalkBounds(t *testing.T) {
	field := geom.Square(30)
	walk, err := NewRandomWalk(field, geom.Pt(15, 15), 4, 50, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	steps := walk.Steps()
	if len(steps) != 51 {
		t.Fatalf("walk has %d positions, want 51", len(steps))
	}
	for i, p := range steps {
		if !field.Contains(p) {
			t.Errorf("step %d at %v escaped the field", i, p)
		}
		if i > 0 {
			if d := steps[i-1].Dist(p); d > 4+1e-9 {
				t.Errorf("step %d moved %v > max speed 4", i, d)
			}
		}
	}
	if m := MaxStepDistance(walk, 50); m > 4+1e-9 {
		t.Errorf("MaxStepDistance = %v, want <= 4", m)
	}
}

func TestRandomWalkInterpolation(t *testing.T) {
	field := geom.Square(30)
	walk, err := NewRandomWalk(field, geom.Pt(15, 15), 3, 10, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	steps := walk.Steps()
	mid := walk.At(2.5)
	want := geom.Lerp(steps[2], steps[3], 0.5)
	if mid.Dist(want) > 1e-12 {
		t.Errorf("At(2.5) = %v, want midpoint %v", mid, want)
	}
	if walk.At(-1) != steps[0] {
		t.Error("negative time must clamp to start")
	}
	if walk.At(1e9) != steps[len(steps)-1] {
		t.Error("time beyond walk must clamp to end")
	}
}

func TestCrossingPair(t *testing.T) {
	field := geom.Square(30)
	a, b, err := CrossingPair(field, 2, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The two trajectories must actually meet near the field center midway.
	mid := 5.0
	pa, pb := a.At(mid), b.At(mid)
	if pa.Dist(pb) > 1e-9 {
		t.Errorf("trajectories do not cross: %v vs %v at t=%v", pa, pb, mid)
	}
	if pa.Dist(field.Center()) > 1e-9 {
		t.Errorf("crossing point %v is not the field center", pa)
	}
	// Speeds equal the requested speed.
	if v := a.V.Norm(); math.Abs(v-2) > 1e-12 {
		t.Errorf("trajectory a speed = %v, want 2", v)
	}
	if _, _, err := CrossingPair(field, 0, 0, 10); err == nil {
		t.Error("zero speed must error")
	}
	if _, _, err := CrossingPair(field, 1, 0, 0); err == nil {
		t.Error("zero duration must error")
	}
}

func TestMaxStepDistanceLinear(t *testing.T) {
	l := Linear{Start: geom.Pt(0, 0), V: geom.Vec{DX: 3, DY: 4}}
	if got := MaxStepDistance(l, 5); math.Abs(got-5) > 1e-12 {
		t.Errorf("MaxStepDistance = %v, want 5", got)
	}
}
