package mat

import (
	"math"
	"testing"
)

// rosenbrockResiduals expresses the Rosenbrock function as a least-squares
// problem: r1 = 10(y - x^2), r2 = 1 - x. Minimum at (1, 1).
func rosenbrockResiduals(x []float64) []float64 {
	return []float64{10 * (x[1] - x[0]*x[0]), 1 - x[0]}
}

// expFitResiduals fits y = a*exp(b*t) to synthetic data with a=2, b=-0.5.
func expFitResiduals(x []float64) []float64 {
	ts := []float64{0, 0.5, 1, 1.5, 2, 3, 4}
	out := make([]float64, len(ts))
	for i, t := range ts {
		want := 2 * math.Exp(-0.5*t)
		out[i] = x[0]*math.Exp(x[1]*t) - want
	}
	return out
}

func TestLevenbergMarquardtRosenbrock(t *testing.T) {
	res, err := LevenbergMarquardt(rosenbrockResiduals, []float64{-1.2, 1}, NLSOptions{MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("LM did not converge on Rosenbrock")
	}
	if math.Abs(res.X[0]-1) > 1e-5 || math.Abs(res.X[1]-1) > 1e-5 {
		t.Errorf("LM solution = %v, want [1 1]", res.X)
	}
}

func TestLevenbergMarquardtExpFit(t *testing.T) {
	res, err := LevenbergMarquardt(expFitResiduals, []float64{1, -1}, NLSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-4 || math.Abs(res.X[1]+0.5) > 1e-4 {
		t.Errorf("LM exp fit = %v, want [2 -0.5]", res.X)
	}
	if res.Objective > 1e-10 {
		t.Errorf("LM exp fit objective = %v, want ~0", res.Objective)
	}
}

func TestGaussNewtonExpFit(t *testing.T) {
	res, err := GaussNewton(expFitResiduals, []float64{1.5, -0.8}, NLSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-4 || math.Abs(res.X[1]+0.5) > 1e-4 {
		t.Errorf("GN exp fit = %v, want [2 -0.5]", res.X)
	}
}

func TestGaussNewtonLinearOneStep(t *testing.T) {
	// On a purely linear residual GN converges in essentially one iteration.
	lin := func(x []float64) []float64 {
		return []float64{x[0] + 2*x[1] - 3, 3*x[0] - x[1] - 2}
	}
	res, err := GaussNewton(lin, []float64{10, -10}, NLSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective > 1e-12 {
		t.Errorf("GN linear objective = %v, want ~0", res.Objective)
	}
	if res.Iterations > 4 {
		t.Errorf("GN linear took %d iterations, want <= 4", res.Iterations)
	}
}

func TestNLSObjectiveMonotoneUnderLM(t *testing.T) {
	// LM accepts only improving steps, so the final objective can never
	// exceed the initial one.
	x0 := []float64{5, 5}
	r0 := rosenbrockResiduals(x0)
	f0 := 0.5 * Dot(r0, r0)
	res, err := LevenbergMarquardt(rosenbrockResiduals, x0, NLSOptions{MaxIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective > f0 {
		t.Errorf("objective increased: %v > %v", res.Objective, f0)
	}
}

func TestNLSOptionsDefaults(t *testing.T) {
	o := NLSOptions{}.withDefaults()
	if o.MaxIter != 100 || o.TolGrad != 1e-8 || o.TolStep != 1e-10 || o.FDStep != 1e-6 {
		t.Errorf("unexpected defaults: %+v", o)
	}
	custom := NLSOptions{MaxIter: 7}.withDefaults()
	if custom.MaxIter != 7 {
		t.Errorf("explicit MaxIter overridden: %+v", custom)
	}
}

func BenchmarkLevenbergMarquardt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := LevenbergMarquardt(expFitResiduals, []float64{1, -1}, NLSOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
