package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system is (numerically) singular.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// SolveLSQ solves the linear least-squares problem min ||A x - b||_2 using a
// Householder QR factorization. A must have at least as many rows as columns
// and full column rank; otherwise ErrSingular is returned.
func SolveLSQ(a *Dense, b []float64) ([]float64, error) {
	if a.rows != len(b) {
		return nil, fmt.Errorf("mat: SolveLSQ dimension mismatch %dx%d vs %d",
			a.rows, a.cols, len(b))
	}
	if a.rows < a.cols {
		return nil, fmt.Errorf("mat: SolveLSQ underdetermined %dx%d", a.rows, a.cols)
	}
	r := a.Clone()
	qtb := make([]float64, len(b))
	copy(qtb, b)

	m, n := r.rows, r.cols
	for k := 0; k < n; k++ {
		// Build the Householder reflector for column k below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, r.At(i, k))
		}
		if norm == 0 {
			return nil, ErrSingular
		}
		if r.At(k, k) > 0 {
			norm = -norm
		}
		// v = x - norm*e1 (stored in place), normalized so v[k] = 1.
		v := make([]float64, m-k)
		v[0] = r.At(k, k) - norm
		for i := k + 1; i < m; i++ {
			v[i-k] = r.At(i, k)
		}
		vk := v[0]
		if vk == 0 {
			return nil, ErrSingular
		}
		for i := range v {
			v[i] /= vk
		}
		beta := -vk / norm // = 2 / (v^T v) with this normalization

		// Apply the reflector to the remaining columns of R.
		for j := k; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += v[i-k] * r.At(i, j)
			}
			s *= beta
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)-s*v[i-k])
			}
		}
		// Apply the reflector to b.
		var s float64
		for i := k; i < m; i++ {
			s += v[i-k] * qtb[i]
		}
		s *= beta
		for i := k; i < m; i++ {
			qtb[i] -= s * v[i-k]
		}
	}

	// Back substitution on the upper-triangular R.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := qtb[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if math.Abs(d) < 1e-13*float64(m) {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// SolveCholesky solves the symmetric positive-definite system A x = b via a
// Cholesky factorization. It returns ErrSingular when A is not (numerically)
// positive definite.
func SolveCholesky(a *Dense, b []float64) ([]float64, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: SolveCholesky requires square matrix, got %dx%d", a.rows, a.cols)
	}
	if a.rows != len(b) {
		return nil, fmt.Errorf("mat: SolveCholesky dimension mismatch %dx%d vs %d", a.rows, a.cols, len(b))
	}
	n := a.rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, ErrSingular
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/ljj)
		}
	}
	// Forward substitution L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// NNLS solves the non-negative least-squares problem
//
//	min ||A x - b||_2  subject to  x >= 0
//
// using the Lawson-Hanson active-set algorithm. The flux NLS fit (Eq 4.1 of
// the paper) is linear in the integrated stretch factors s_j/r once candidate
// positions are fixed, and those factors are physically non-negative, so NNLS
// is the inner solver of every position evaluation.
func NNLS(a *Dense, b []float64) ([]float64, error) {
	if a.rows != len(b) {
		return nil, fmt.Errorf("mat: NNLS dimension mismatch %dx%d vs %d",
			a.rows, a.cols, len(b))
	}
	n := a.cols
	x := make([]float64, n)
	passive := make([]bool, n) // true when variable is in the passive (free) set

	residual := make([]float64, len(b))
	copy(residual, b)

	// Gradient w = A^T residual.
	grad := func() []float64 {
		w := make([]float64, n)
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < a.rows; i++ {
				s += a.At(i, j) * residual[i]
			}
			w[j] = s
		}
		return w
	}

	const tol = 1e-10
	maxOuter := 3 * n
	for outer := 0; outer < maxOuter; outer++ {
		w := grad()
		// Pick the most positive gradient among active (clamped) variables.
		best, bestVal := -1, tol
		for j := 0; j < n; j++ {
			if !passive[j] && w[j] > bestVal {
				best, bestVal = j, w[j]
			}
		}
		if best < 0 {
			break // KKT conditions satisfied
		}
		passive[best] = true

		// Inner loop: solve the unconstrained LSQ on the passive set and
		// move x toward it, clamping variables that would go negative.
		for inner := 0; inner < maxOuter; inner++ {
			idx := passiveIndices(passive)
			z, err := solveSubLSQ(a, b, idx)
			if err != nil {
				// Degenerate column set: drop the newest variable and stop.
				passive[best] = false
				break
			}
			if allPositive(z, tol) {
				for k, j := range idx {
					x[j] = z[k]
				}
				break
			}
			// Line search toward z: alpha = min over offending variables.
			alpha := math.Inf(1)
			for k, j := range idx {
				if z[k] <= tol {
					denom := x[j] - z[k]
					if denom > 0 {
						alpha = math.Min(alpha, x[j]/denom)
					}
				}
			}
			if math.IsInf(alpha, 1) {
				alpha = 0
			}
			for k, j := range idx {
				x[j] += alpha * (z[k] - x[j])
				if x[j] <= tol {
					x[j] = 0
					passive[j] = false
				}
			}
		}

		// Refresh the residual.
		ax, err := a.MulVec(x)
		if err != nil {
			return nil, err
		}
		residual = Sub(b, ax)
	}
	return x, nil
}

func passiveIndices(passive []bool) []int {
	idx := make([]int, 0, len(passive))
	for j, p := range passive {
		if p {
			idx = append(idx, j)
		}
	}
	return idx
}

func allPositive(v []float64, tol float64) bool {
	for _, x := range v {
		if x <= tol {
			return false
		}
	}
	return true
}

// solveSubLSQ solves min ||A[:, idx] z - b|| restricted to the given columns.
func solveSubLSQ(a *Dense, b []float64, idx []int) ([]float64, error) {
	if len(idx) == 0 {
		return nil, errors.New("mat: empty passive set")
	}
	sub := NewDense(a.rows, len(idx))
	for i := 0; i < a.rows; i++ {
		for k, j := range idx {
			sub.Set(i, k, a.At(i, j))
		}
	}
	return SolveLSQ(sub, b)
}
