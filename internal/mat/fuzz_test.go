package mat

// Native fuzz targets for the NNLS core: the workspace solvers and the
// Cholesky active-set kernel underneath them are the innermost numeric loop
// of every experiment (millions of calls per figure), so they must never
// emit NaN/Inf, never return a negative stretch, and never do worse than
// the zero vector — for any Gram system a randomized candidate pool can
// produce, including rank-deficient ones (duplicate candidate positions)
// and wildly scaled columns. Each target derives its random problem from
// the fuzzed seed through a splitmix64 stream, so every failing input is a
// compact, perfectly reproducible coordinate.
//
// CI runs these for a 20s smoke per target (see .github/workflows/ci.yml);
// `go test` without -fuzz still executes the seed corpus as regression
// tests.

import (
	"math"
	"testing"
)

// fuzzMix is a splitmix64 step used to expand one fuzz seed into a stream.
func fuzzMix(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func fuzzFloat(s *uint64) float64 { // uniform in [0, 1)
	return float64(fuzzMix(s)>>11) / (1 << 53)
}

// fuzzProblem builds a random m×k least-squares instance from a seed:
// columns uniform in [0, scale), an optional duplicated column pair (the
// degenerate two-users-at-one-position case), an optional zero column, and
// a right-hand side mixing signal and noise so the optimum is nontrivial.
func fuzzProblem(seed uint64, m, k int) (a *Dense, b []float64) {
	s := seed
	scale := math.Pow(10, fuzzFloat(&s)*6-3) // column scales from 1e-3 to 1e3
	a = NewDense(m, k)
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			a.Set(i, j, fuzzFloat(&s)*scale)
		}
	}
	if k >= 2 && fuzzMix(&s)%4 == 0 {
		// Duplicate a column: rank-deficient Gram matrix.
		for i := 0; i < m; i++ {
			a.Set(i, 1, a.At(i, 0))
		}
	}
	if k >= 2 && fuzzMix(&s)%5 == 0 {
		// Zero column: degenerate candidate outside the field.
		for i := 0; i < m; i++ {
			a.Set(i, k-1, 0)
		}
	}
	b = make([]float64, m)
	xTrue := make([]float64, k)
	for j := range xTrue {
		xTrue[j] = fuzzFloat(&s) * 3
	}
	for i := 0; i < m; i++ {
		v := 0.0
		for j := 0; j < k; j++ {
			v += a.At(i, j) * xTrue[j]
		}
		b[i] = v + (fuzzFloat(&s)-0.5)*scale // signal + noise, can go negative
	}
	return a, b
}

// gramOf forms G = AᵀA and d = Aᵀb densely.
func gramOf(a *Dense, b []float64) (g, d []float64) {
	k := a.Cols()
	g = make([]float64, k*k)
	d = make([]float64, k)
	for p := 0; p < k; p++ {
		cp := a.Col(p)
		d[p] = Dot(cp, b)
		for q := 0; q < k; q++ {
			g[p*k+q] = Dot(cp, a.Col(q))
		}
	}
	return g, d
}

// checkNNLSSolution asserts the universal NNLS contract on x: finite,
// non-negative, and a residual no worse than the zero vector's.
func checkNNLSSolution(t *testing.T, a *Dense, b, x []float64, label string) {
	t.Helper()
	for j, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s: x[%d] = %v not finite", label, j, v)
		}
		if v < 0 {
			t.Fatalf("%s: x[%d] = %v negative", label, j, v)
		}
	}
	ax, err := a.MulVec(x)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	resid := Norm2(Sub(ax, b))
	zero := Norm2(b)
	// The zero vector is always feasible, so the optimum can never beat it
	// by less than nothing; allow conditioning slack proportional to the
	// problem scale.
	if resid > zero*(1+1e-8)+1e-8 {
		t.Fatalf("%s: residual %v worse than zero-vector residual %v", label, resid, zero)
	}
}

// clampDims maps raw fuzz bytes to problem dimensions: k in [1, 6],
// m in [1, 12] — small enough to be fast, wide enough to cover k > m
// (underdetermined) and duplicate-column rank deficiency.
func clampDims(kRaw, mRaw uint8) (k, m int) {
	return int(kRaw%6) + 1, int(mRaw%12) + 1
}

// FuzzNNLSGramInto feeds randomized (possibly singular) Gram systems to the
// allocation-free Gram-space solver.
func FuzzNNLSGramInto(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(8))
	f.Add(uint64(42), uint8(1), uint8(1))
	f.Add(uint64(7), uint8(4), uint8(2))  // k > m: rank-deficient
	f.Add(uint64(99), uint8(2), uint8(6)) // duplicate-column candidates
	f.Fuzz(func(t *testing.T, seed uint64, kRaw, mRaw uint8) {
		k, m := clampDims(kRaw, mRaw)
		a, b := fuzzProblem(seed, m, k)
		g, d := gramOf(a, b)
		var ws NNLSWorkspace
		x := make([]float64, k)
		NNLSGramInto(g, d, x, &ws)
		checkNNLSSolution(t, a, b, x, "NNLSGramInto")
	})
}

// FuzzNNLSInto drives the column-space workspace solver (which forms the
// normal equations itself) and cross-checks it against the explicit
// Gram-space path: both must produce the same solution bit for bit, since
// NNLSInto delegates to NNLSGramInto after accumulating the same G and d in
// a different loop order — catching any asymmetry or aliasing bug in the
// accumulation.
func FuzzNNLSInto(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(8))
	f.Add(uint64(5), uint8(6), uint8(3))
	f.Add(uint64(11), uint8(2), uint8(12))
	f.Fuzz(func(t *testing.T, seed uint64, kRaw, mRaw uint8) {
		k, m := clampDims(kRaw, mRaw)
		a, b := fuzzProblem(seed, m, k)
		var ws NNLSWorkspace
		x := make([]float64, k)
		if err := NNLSInto(a, b, x, &ws); err != nil {
			t.Fatal(err)
		}
		checkNNLSSolution(t, a, b, x, "NNLSInto")

		g, d := gramOf(a, b)
		var ws2 NNLSWorkspace
		x2 := make([]float64, k)
		NNLSGramInto(g, d, x2, &ws2)
		checkNNLSSolution(t, a, b, x2, "NNLSGramInto(cross)")
		// The two accumulations round differently (upper-triangle loop vs
		// full dot products), so solutions agree to conditioning, not bits.
		ax1, _ := a.MulVec(x)
		ax2, _ := a.MulVec(x2)
		r1, r2 := Norm2(Sub(ax1, b)), Norm2(Sub(ax2, b))
		scale := math.Max(math.Max(r1, r2), 1e-12)
		if math.Abs(r1-r2) > 1e-6*scale+1e-9 {
			t.Fatalf("NNLSInto residual %v vs Gram-path residual %v", r1, r2)
		}
	})
}

// FuzzCholSolve targets the Cholesky kernel of the active-set iteration
// directly: for a strictly SPD Gram submatrix it must solve the passive-set
// normal equations accurately, and it must report false (not return
// garbage) on singular submatrices.
func FuzzCholSolve(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(6), false)
	f.Add(uint64(3), uint8(2), uint8(2), true)
	f.Add(uint64(8), uint8(6), uint8(10), false)
	f.Fuzz(func(t *testing.T, seed uint64, kRaw, mRaw uint8, makeSingular bool) {
		k, m := clampDims(kRaw, mRaw)
		if m < k {
			m = k // square-or-tall so the SPD branch is reachable
		}
		a, b := fuzzProblem(seed, m, k)
		if makeSingular && k >= 2 {
			for i := 0; i < m; i++ {
				a.Set(i, k-1, a.At(i, 0))
			}
		} else {
			// Ridge the diagonal so the matrix is strictly SPD even when
			// fuzzProblem duplicated or zeroed a column.
			s := seed ^ 0xabcdef
			for i := 0; i < m && i < k; i++ {
				a.Set(i, i, a.At(i, i)+1+fuzzFloat(&s))
			}
		}
		g, d := gramOf(a, b)

		// Random passive subset of the variables, always non-empty.
		s := seed ^ 0x5eed
		var idx []int
		for j := 0; j < k; j++ {
			if fuzzMix(&s)%2 == 0 {
				idx = append(idx, j)
			}
		}
		if len(idx) == 0 {
			idx = append(idx, int(fuzzMix(&s)%uint64(k)))
		}

		var ws NNLSWorkspace
		ws.ensure(k)
		ok := ws.cholSolve(g, d, k, idx)
		if !ok {
			return // reported singular: legitimate for these inputs
		}
		z := ws.z[:len(idx)]
		for t2, v := range z {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("cholSolve z[%d] = %v not finite", t2, v)
			}
		}
		// Verify G[idx,idx]·z ≈ d[idx] in a relative sense.
		var worst, scale float64
		for _, ji := range idx {
			sum := 0.0
			for tj, jj := range idx {
				sum += g[ji*k+jj] * z[tj]
			}
			worst = math.Max(worst, math.Abs(sum-d[ji]))
			scale = math.Max(scale, math.Abs(d[ji]))
			for tj := range idx {
				scale = math.Max(scale, math.Abs(g[ji*k+idx[tj]]*z[tj]))
			}
		}
		if worst > 1e-6*math.Max(scale, 1e-12) {
			t.Fatalf("cholSolve residual %v at scale %v (idx %v)", worst, scale, idx)
		}
	})
}

// TestNNLSPropertySweep runs the fuzz bodies over a deterministic seed
// sweep so plain `go test` exercises hundreds of random Gram systems even
// when fuzzing is off.
func TestNNLSPropertySweep(t *testing.T) {
	for seed := uint64(0); seed < 300; seed++ {
		k := int(seed%6) + 1
		m := int((seed/6)%12) + 1
		a, b := fuzzProblem(seed*2654435761, m, k)
		g, d := gramOf(a, b)
		var ws NNLSWorkspace
		x := make([]float64, k)
		NNLSGramInto(g, d, x, &ws)
		checkNNLSSolution(t, a, b, x, "sweep")
	}
}
