package mat

import (
	"errors"
	"math"
)

// Residualer evaluates the residual vector r(x) of a nonlinear least-squares
// problem min ||r(x)||^2 at the parameter vector x.
type Residualer func(x []float64) []float64

// NLSResult reports the outcome of a nonlinear least-squares solve.
type NLSResult struct {
	X          []float64 // final parameter estimate
	Objective  float64   // final 0.5*||r||^2
	Iterations int       // iterations performed
	Converged  bool      // whether a convergence criterion was met
}

// NLSOptions configures the Gauss-Newton and Levenberg-Marquardt solvers.
type NLSOptions struct {
	MaxIter int     // maximum iterations (default 100)
	TolGrad float64 // stop when ||J^T r||_inf below this (default 1e-8)
	TolStep float64 // stop when the step is this small relative to x (default 1e-10)
	FDStep  float64 // finite-difference step for the Jacobian (default 1e-6)
}

func (o NLSOptions) withDefaults() NLSOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.TolGrad <= 0 {
		o.TolGrad = 1e-8
	}
	if o.TolStep <= 0 {
		o.TolStep = 1e-10
	}
	if o.FDStep <= 0 {
		o.FDStep = 1e-6
	}
	return o
}

// ErrNoProgress is returned when an NLS solver cannot decrease the objective.
var ErrNoProgress = errors.New("mat: nonlinear solver made no progress")

// numJacobian estimates the Jacobian of r at x by forward differences.
func numJacobian(r Residualer, x, r0 []float64, h float64) *Dense {
	m, n := len(r0), len(x)
	jac := NewDense(m, n)
	xp := make([]float64, n)
	for j := 0; j < n; j++ {
		copy(xp, x)
		step := h * math.Max(1, math.Abs(x[j]))
		xp[j] += step
		rj := r(xp)
		for i := 0; i < m; i++ {
			jac.Set(i, j, (rj[i]-r0[i])/step)
		}
	}
	return jac
}

// GaussNewton minimizes 0.5*||r(x)||^2 starting from x0 using damped
// Gauss-Newton steps with simple backtracking. The paper notes that classic
// solvers like this require a differentiable objective and therefore fail on
// non-differentiable boundary geometry; this implementation exists as the
// paper's "traditional numerical technique" baseline.
func GaussNewton(r Residualer, x0 []float64, opts NLSOptions) (NLSResult, error) {
	opts = opts.withDefaults()
	x := append([]float64(nil), x0...)
	res := r(x)
	f := 0.5 * Dot(res, res)

	for iter := 1; iter <= opts.MaxIter; iter++ {
		jac := numJacobian(r, x, res, opts.FDStep)
		// Solve J dx = -r in the least-squares sense.
		neg := make([]float64, len(res))
		for i, v := range res {
			neg[i] = -v
		}
		dx, err := SolveLSQ(jac, neg)
		if err != nil {
			return NLSResult{X: x, Objective: f, Iterations: iter}, err
		}
		if gradInfNorm(jac, res) < opts.TolGrad {
			return NLSResult{X: x, Objective: f, Iterations: iter, Converged: true}, nil
		}
		// Backtracking line search.
		alpha := 1.0
		improved := false
		for k := 0; k < 30; k++ {
			xt := AddScaled(x, alpha, dx)
			rt := r(xt)
			ft := 0.5 * Dot(rt, rt)
			if ft < f {
				x, res, f = xt, rt, ft
				improved = true
				break
			}
			alpha /= 2
		}
		if !improved {
			return NLSResult{X: x, Objective: f, Iterations: iter}, ErrNoProgress
		}
		if alpha*Norm2(dx) < opts.TolStep*(Norm2(x)+opts.TolStep) {
			return NLSResult{X: x, Objective: f, Iterations: iter, Converged: true}, nil
		}
	}
	return NLSResult{X: x, Objective: f, Iterations: opts.MaxIter, Converged: false}, nil
}

// LevenbergMarquardt minimizes 0.5*||r(x)||^2 with the Madsen-Nielsen-
// Tingleff damping strategy (the reference the paper cites for NLS methods).
func LevenbergMarquardt(r Residualer, x0 []float64, opts NLSOptions) (NLSResult, error) {
	opts = opts.withDefaults()
	x := append([]float64(nil), x0...)
	res := r(x)
	f := 0.5 * Dot(res, res)

	jac := numJacobian(r, x, res, opts.FDStep)
	jtj, err := jac.T().Mul(jac)
	if err != nil {
		return NLSResult{}, err
	}
	g := jtRes(jac, res)

	// Initial damping proportional to the largest diagonal of J^T J.
	mu := 0.0
	for i := 0; i < jtj.Rows(); i++ {
		mu = math.Max(mu, jtj.At(i, i))
	}
	mu *= 1e-3
	if mu == 0 {
		mu = 1e-3
	}
	nu := 2.0

	for iter := 1; iter <= opts.MaxIter; iter++ {
		if infNorm(g) < opts.TolGrad {
			return NLSResult{X: x, Objective: f, Iterations: iter, Converged: true}, nil
		}
		// Solve (J^T J + mu I) dx = -g.
		damped := jtj.Clone()
		for i := 0; i < damped.Rows(); i++ {
			damped.Set(i, i, damped.At(i, i)+mu)
		}
		neg := make([]float64, len(g))
		for i, v := range g {
			neg[i] = -v
		}
		dx, err := SolveCholesky(damped, neg)
		if err != nil {
			mu *= nu
			nu *= 2
			continue
		}
		if Norm2(dx) < opts.TolStep*(Norm2(x)+opts.TolStep) {
			return NLSResult{X: x, Objective: f, Iterations: iter, Converged: true}, nil
		}
		xt := AddScaled(x, 1, dx)
		rt := r(xt)
		ft := 0.5 * Dot(rt, rt)

		// Gain ratio: actual vs predicted reduction.
		pred := 0.5 * Dot(dx, AddScaled(neg, mu, dx))
		rho := (f - ft) / math.Max(pred, 1e-300)
		if rho > 0 {
			x, res, f = xt, rt, ft
			jac = numJacobian(r, x, res, opts.FDStep)
			jtj, err = jac.T().Mul(jac)
			if err != nil {
				return NLSResult{}, err
			}
			g = jtRes(jac, res)
			mu *= math.Max(1.0/3.0, 1-math.Pow(2*rho-1, 3))
			nu = 2
		} else {
			mu *= nu
			nu *= 2
			if math.IsInf(mu, 1) {
				return NLSResult{X: x, Objective: f, Iterations: iter}, ErrNoProgress
			}
		}
	}
	return NLSResult{X: x, Objective: f, Iterations: opts.MaxIter, Converged: false}, nil
}

// jtRes computes J^T r.
func jtRes(jac *Dense, res []float64) []float64 {
	g := make([]float64, jac.Cols())
	for j := range g {
		var s float64
		for i := 0; i < jac.Rows(); i++ {
			s += jac.At(i, j) * res[i]
		}
		g[j] = s
	}
	return g
}

func gradInfNorm(jac *Dense, res []float64) float64 {
	return infNorm(jtRes(jac, res))
}

func infNorm(v []float64) float64 {
	var m float64
	for _, x := range v {
		m = math.Max(m, math.Abs(x))
	}
	return m
}
