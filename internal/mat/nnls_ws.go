package mat

import (
	"fmt"
	"math"
)

// NNLSWorkspace holds every scratch vector the workspace-taking NNLS
// solvers need. A zero value is ready to use; the first solve sizes it and
// subsequent solves of the same (or smaller) dimension perform no heap
// allocations. A workspace must not be shared between goroutines.
type NNLSWorkspace struct {
	passive []bool
	idx     []int
	z       []float64 // passive-set solution of the equality-constrained solve
	y       []float64 // forward-substitution intermediate
	chol    []float64 // dense lower-triangular Cholesky factor, m×m row-major
	gram    []float64 // k×k Gram buffer (NNLSInto only)
	proj    []float64 // k projection buffer (NNLSInto only)

	// Solves and Iters are cumulative work meters, maintained by every
	// solve through this workspace: Solves counts NNLSGramInto calls and
	// Iters the active-set (outer) iterations they burned; the k=1
	// closed-form path counts as a solve with zero iterations. They are
	// plain (non-atomic) fields — a workspace is single-goroutine by
	// contract — and exist so the observability layer (internal/obs via
	// fit.Searcher) can report NNLS effort without touching the solver's
	// hot loop. Callers that want per-call deltas read before and after.
	Solves uint64
	Iters  uint64
}

// ensure grows the workspace to dimension k.
func (ws *NNLSWorkspace) ensure(k int) {
	if cap(ws.passive) < k {
		ws.passive = make([]bool, k)
		ws.idx = make([]int, 0, k)
		ws.z = make([]float64, k)
		ws.y = make([]float64, k)
		ws.chol = make([]float64, k*k)
	}
	ws.passive = ws.passive[:k]
	for j := range ws.passive {
		ws.passive[j] = false
	}
}

// nnlsGramTol mirrors the gradient tolerance of the allocating NNLS: the
// gradient here is d − Gx = Aᵀ(b − Ax), exactly the quantity the
// Lawson-Hanson loop in NNLS thresholds.
const nnlsGramTol = 1e-10

// NNLSGramInto solves the non-negative least-squares problem
//
//	min ||A x − b||_2  subject to  x >= 0
//
// given only its normal-equation quantities: the Gram matrix g = AᵀA (k×k,
// row-major) and the projection d = Aᵀb. The solution is written into x
// (length k). It is the allocation-free inner kernel of the candidate
// search in internal/fit: once per-candidate columns, norms, and
// projections are cached, every composition evaluation reduces to this
// tiny k×k solve.
//
// The algorithm is the same active-set iteration as NNLS with the passive
// subproblems solved by Cholesky on the Gram submatrix instead of QR on
// the column submatrix: closed form for one passive variable, a direct
// dense factorization above. Rank-deficient passive sets are handled the
// same way as in NNLS — the newest variable is dropped and the iteration
// continues — so degenerate compositions (e.g. two users at the same
// position) stay well-defined.
func NNLSGramInto(g, d, x []float64, ws *NNLSWorkspace) {
	k := len(d)
	if len(g) != k*k || len(x) != k {
		panic(fmt.Sprintf("mat: NNLSGramInto dimension mismatch: gram %d, d %d, x %d", len(g), len(d), len(x)))
	}
	ws.Solves++
	if k == 1 {
		// Closed form: one variable enters iff its gradient at zero is
		// positive and its column is non-degenerate.
		if d[0] > nnlsGramTol && g[0] > 0 {
			x[0] = d[0] / g[0]
		} else {
			x[0] = 0
		}
		return
	}
	ws.ensure(k)
	for j := range x {
		x[j] = 0
	}

	maxOuter := 3 * k
	for outer := 0; outer < maxOuter; outer++ {
		ws.Iters++
		// Gradient w = d − G x over the active (clamped) variables; pick the
		// most positive one.
		best, bestVal := -1, float64(nnlsGramTol)
		for j := 0; j < k; j++ {
			if ws.passive[j] {
				continue
			}
			s := d[j]
			for o := 0; o < k; o++ {
				if x[o] != 0 {
					s -= g[j*k+o] * x[o]
				}
			}
			if s > bestVal {
				best, bestVal = j, s
			}
		}
		if best < 0 {
			break // KKT conditions satisfied
		}
		ws.passive[best] = true

		// Inner loop: solve the equality-constrained problem on the passive
		// set and move x toward it, clamping variables that would go negative.
		for inner := 0; inner < maxOuter; inner++ {
			idx := ws.idx[:0]
			for j := 0; j < k; j++ {
				if ws.passive[j] {
					idx = append(idx, j)
				}
			}
			if !ws.cholSolve(g, d, k, idx) {
				// Degenerate passive set: drop the newest variable and stop.
				ws.passive[best] = false
				break
			}
			z := ws.z[:len(idx)]
			allPos := true
			for _, v := range z {
				if v <= nnlsGramTol {
					allPos = false
					break
				}
			}
			if allPos {
				for t, j := range idx {
					x[j] = z[t]
				}
				break
			}
			// Line search toward z: alpha = min over offending variables.
			alpha := math.Inf(1)
			for t, j := range idx {
				if z[t] <= nnlsGramTol {
					denom := x[j] - z[t]
					if denom > 0 {
						alpha = math.Min(alpha, x[j]/denom)
					}
				}
			}
			if math.IsInf(alpha, 1) {
				alpha = 0
			}
			for t, j := range idx {
				x[j] += alpha * (z[t] - x[j])
				if x[j] <= nnlsGramTol {
					x[j] = 0
					ws.passive[j] = false
				}
			}
		}
	}
}

// cholSolve solves G[idx,idx] z = d[idx] by a dense Cholesky factorization
// into the workspace, writing the solution into ws.z[:len(idx)]. It reports
// false when the submatrix is not (numerically) positive definite.
func (ws *NNLSWorkspace) cholSolve(g, d []float64, k int, idx []int) bool {
	m := len(idx)
	if m == 0 {
		return false
	}
	if m == 1 {
		j := idx[0]
		gjj := g[j*k+j]
		if gjj <= 0 {
			return false
		}
		ws.z[0] = d[j] / gjj
		return true
	}
	l := ws.chol
	for a := 0; a < m; a++ {
		ja := idx[a]
		for b := 0; b <= a; b++ {
			s := g[ja*k+idx[b]]
			for t := 0; t < b; t++ {
				s -= l[a*m+t] * l[b*m+t]
			}
			if a == b {
				// Relative pivot threshold: a pivot this far below the
				// column's own squared norm means the column is numerically
				// dependent on the earlier passive columns.
				if s <= 0 || s <= 1e-13*g[ja*k+ja] {
					return false
				}
				l[a*m+a] = math.Sqrt(s)
			} else {
				l[a*m+b] = s / l[b*m+b]
			}
		}
	}
	y := ws.y
	for a := 0; a < m; a++ {
		s := d[idx[a]]
		for t := 0; t < a; t++ {
			s -= l[a*m+t] * y[t]
		}
		y[a] = s / l[a*m+a]
	}
	z := ws.z
	for a := m - 1; a >= 0; a-- {
		s := y[a]
		for t := a + 1; t < m; t++ {
			s -= l[t*m+a] * z[t]
		}
		z[a] = s / l[a*m+a]
	}
	return true
}

// NNLSInto is the workspace-taking form of NNLS: it solves
// min ||A x − b||_2 subject to x >= 0 and writes the solution into x
// (length A.Cols()), forming the normal equations in the workspace and
// delegating to NNLSGramInto. After the workspace has grown to the problem
// dimension, repeated solves allocate nothing.
func NNLSInto(a *Dense, b, x []float64, ws *NNLSWorkspace) error {
	if a.rows != len(b) {
		return fmt.Errorf("mat: NNLSInto dimension mismatch %dx%d vs %d", a.rows, a.cols, len(b))
	}
	k := a.cols
	if len(x) != k {
		return fmt.Errorf("mat: NNLSInto solution length %d, want %d", len(x), k)
	}
	if cap(ws.gram) < k*k {
		ws.gram = make([]float64, k*k)
		ws.proj = make([]float64, k)
	}
	g := ws.gram[:k*k]
	d := ws.proj[:k]
	for i := range g {
		g[i] = 0
	}
	for j := range d {
		d[j] = 0
	}
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		for p, vp := range row {
			if vp == 0 {
				continue
			}
			d[p] += vp * b[i]
			for q := p; q < k; q++ {
				g[p*k+q] += vp * row[q]
			}
		}
	}
	for p := 0; p < k; p++ {
		for q := p + 1; q < k; q++ {
			g[q*k+p] = g[p*k+q]
		}
	}
	NNLSGramInto(g, d, x, ws)
	return nil
}
