package mat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"fluxtrack/internal/rng"
)

func TestNewDensePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDense(0, 3) did not panic")
		}
	}()
	NewDense(0, 3)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("got %dx%d, want 3x2", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v, want 6", m.At(2, 1))
	}
	if _, err := FromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Error("ragged FromRows must error")
	}
	if _, err := FromRows(nil); err == nil {
		t.Error("empty FromRows must error")
	}
}

func TestRowColClone(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	row := m.Row(1)
	row[0] = 99 // must not alias
	if m.At(1, 0) != 4 {
		t.Error("Row returned an aliasing slice")
	}
	col := m.Col(2)
	if col[0] != 3 || col[1] != 6 {
		t.Errorf("Col(2) = %v, want [3 6]", col)
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with the original")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("T dims = %dx%d, want 3x2", mt.Rows(), mt.Cols())
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul at (%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewDense(3, 3)); err == nil {
		t.Error("dimension-mismatched Mul must error")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got, err := a.MulVec([]float64{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != -2 || got[1] != -2 {
		t.Errorf("MulVec = %v, want [-2 -2]", got)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Error("dimension-mismatched MulVec must error")
	}
}

func TestVectorHelpers(t *testing.T) {
	if got := Dot([]float64{1, 2}, []float64{3, 4}); got != 11 {
		t.Errorf("Dot = %v, want 11", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %v, want 0", got)
	}
	s := Sub([]float64{5, 5}, []float64{2, 3})
	if s[0] != 3 || s[1] != 2 {
		t.Errorf("Sub = %v", s)
	}
	a := AddScaled([]float64{1, 1}, 2, []float64{3, 4})
	if a[0] != 7 || a[1] != 9 {
		t.Errorf("AddScaled = %v", a)
	}
}

func TestNorm2OverflowResistance(t *testing.T) {
	v := []float64{1e200, 1e200}
	want := 1e200 * math.Sqrt2
	if got := Norm2(v); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Norm2 overflowed: %v, want %v", got, want)
	}
}

func TestSolveLSQExact(t *testing.T) {
	// Square nonsingular system: exact solve.
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveLSQ(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-10 || math.Abs(x[1]-3) > 1e-10 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveLSQOverdetermined(t *testing.T) {
	// Fit y = 2t + 1 through noisy-free samples: exact recovery expected.
	a, _ := FromRows([][]float64{{0, 1}, {1, 1}, {2, 1}, {3, 1}})
	b := []float64{1, 3, 5, 7}
	x, err := SolveLSQ(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-10 || math.Abs(x[1]-1) > 1e-10 {
		t.Errorf("x = %v, want [2 1]", x)
	}
}

func TestSolveLSQResidualOrthogonality(t *testing.T) {
	// Property: at the LSQ optimum, A^T (Ax - b) = 0.
	src := rng.New(99)
	for trial := 0; trial < 25; trial++ {
		m, n := 8, 3
		a := NewDense(m, n)
		b := make([]float64, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, src.Norm())
			}
			b[i] = src.Norm()
		}
		x, err := SolveLSQ(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ax, _ := a.MulVec(x)
		res := Sub(ax, b)
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < m; i++ {
				s += a.At(i, j) * res[i]
			}
			if math.Abs(s) > 1e-8 {
				t.Fatalf("trial %d: residual not orthogonal to column %d: %v", trial, j, s)
			}
		}
	}
}

func TestSolveLSQSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}}) // rank 1
	if _, err := SolveLSQ(a, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLSQShapeErrors(t *testing.T) {
	a := NewDense(2, 3)
	if _, err := SolveLSQ(a, []float64{1, 2}); err == nil {
		t.Error("underdetermined SolveLSQ must error")
	}
	if _, err := SolveLSQ(NewDense(3, 2), []float64{1, 2}); err == nil {
		t.Error("mismatched b length must error")
	}
}

func TestSolveCholesky(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 2}, {2, 3}})
	x, err := SolveCholesky(a, []float64{10, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Verify by substitution.
	ax, _ := a.MulVec(x)
	if math.Abs(ax[0]-10) > 1e-10 || math.Abs(ax[1]-8) > 1e-10 {
		t.Errorf("A x = %v, want [10 8]", ax)
	}
}

func TestSolveCholeskyNotPD(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // indefinite
	if _, err := SolveCholesky(a, []float64{1, 1}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestNNLSMatchesUnconstrainedWhenInterior(t *testing.T) {
	// If the unconstrained solution is strictly positive, NNLS must match it.
	a, _ := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	b := []float64{1, 2, 3.1}
	want, err := SolveLSQ(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Errorf("NNLS = %v, want %v", got, want)
			break
		}
	}
}

func TestNNLSClampsNegative(t *testing.T) {
	// Unconstrained optimum has a negative coefficient; NNLS clamps it to 0.
	a, _ := FromRows([][]float64{{1, 1}, {1, 1.0001}, {1, 0.9999}})
	b := []float64{-1, -1, -1} // best fit is x = (-1, 0), so NNLS should give 0s
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if v < 0 {
			t.Errorf("NNLS produced negative x[%d] = %v", i, v)
		}
		if v > 1e-8 {
			t.Errorf("NNLS x[%d] = %v, want 0", i, v)
		}
	}
}

func TestNNLSRecoverTrueNonNegative(t *testing.T) {
	// Property: for random A and x* >= 0 with b = A x*, NNLS recovers a
	// solution with residual (near) zero.
	src := rng.New(4242)
	for trial := 0; trial < 30; trial++ {
		m, n := 12, 4
		a := NewDense(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, math.Abs(src.Norm()))
			}
		}
		xTrue := make([]float64, n)
		for j := range xTrue {
			if src.Float64() < 0.5 {
				xTrue[j] = src.Uniform(0.1, 3)
			}
		}
		b, _ := a.MulVec(xTrue)
		x, err := NNLS(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ax, _ := a.MulVec(x)
		if resid := Norm2(Sub(ax, b)); resid > 1e-6*(1+Norm2(b)) {
			t.Fatalf("trial %d: NNLS residual %v too large (x=%v, true=%v)",
				trial, resid, x, xTrue)
		}
		for j, v := range x {
			if v < 0 {
				t.Fatalf("trial %d: negative coefficient x[%d]=%v", trial, j, v)
			}
		}
	}
}

func TestNNLSNonNegativityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		m, n := 6, 3
		a := NewDense(m, n)
		b := make([]float64, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, src.Norm())
			}
			b[i] = src.Norm()
		}
		x, err := NNLS(a, b)
		if err != nil {
			return true // singular sub-problems may legitimately error
		}
		for _, v := range x {
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolveLSQ(b *testing.B) {
	src := rng.New(1)
	m, n := 90, 8
	a := NewDense(m, n)
	vec := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, src.Norm())
		}
		vec[i] = src.Norm()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveLSQ(a, vec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNNLS(b *testing.B) {
	src := rng.New(1)
	m, n := 90, 4
	a := NewDense(m, n)
	vec := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, math.Abs(src.Norm()))
		}
		vec[i] = math.Abs(src.Norm())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NNLS(a, vec); err != nil {
			b.Fatal(err)
		}
	}
}
