// Package mat implements the dense linear-algebra kernels the
// fingerprinting pipeline needs: a small row-major matrix type, QR and
// Cholesky least-squares solvers, non-negative least squares
// (Lawson-Hanson), and the Gauss-Newton / Levenberg-Marquardt nonlinear
// least-squares solvers the paper cites ([15] Madsen, Nielsen, Tingleff).
//
// The package is self-contained (standard library only) because the Go
// scientific-computing ecosystem is intentionally not a dependency of this
// repository.
package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns an r x c zero matrix. It panics when r or c is
// non-positive, because a dimensionless matrix is always a programming error
// in this codebase.
func NewDense(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("mat: FromRows requires a non-empty ragged-free slice")
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("mat: row %d has length %d, want %d", i, len(row), c)
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := range out {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Mul returns the matrix product m * n.
func (m *Dense) Mul(n *Dense) (*Dense, error) {
	if m.cols != n.rows {
		return nil, fmt.Errorf("mat: dimension mismatch %dx%d * %dx%d",
			m.rows, m.cols, n.rows, n.cols)
	}
	out := NewDense(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*out.cols : (i+1)*out.cols]
		for k, mv := range mi {
			if mv == 0 {
				continue
			}
			nk := n.data[k*n.cols : (k+1)*n.cols]
			for j, nv := range nk {
				oi[j] += mv * nv
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m * x.
func (m *Dense) MulVec(x []float64) ([]float64, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("mat: MulVec dimension mismatch %dx%d * %d",
			m.rows, m.cols, len(x))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%9.4g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Dot returns the inner product of a and b. It panics on length mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	// Scaled accumulation for overflow resistance.
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Sub returns a - b elementwise. It panics on length mismatch.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("mat: Sub length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// AddScaled returns a + k*b elementwise. It panics on length mismatch.
func AddScaled(a []float64, k float64, b []float64) []float64 {
	if len(a) != len(b) {
		panic("mat: AddScaled length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + k*b[i]
	}
	return out
}
