package mat

import (
	"math"
	"testing"
)

// lcg is a tiny deterministic generator so the tests need no rng import.
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(*l>>11) / float64(1<<53)
}

func randProblem(l *lcg, m, k int) (*Dense, []float64) {
	a := NewDense(m, k)
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			a.Set(i, j, l.next()*2)
		}
	}
	b := make([]float64, m)
	for i := range b {
		b[i] = l.next()*4 - 1
	}
	return a, b
}

func residualNorm(a *Dense, x, b []float64) float64 {
	ax, _ := a.MulVec(x)
	return Norm2(Sub(ax, b))
}

// TestNNLSIntoMatchesNNLS: the workspace solver and the allocating QR-based
// solver reach the same constrained optimum across random problems. The two
// use different passive-set sub-solvers (Cholesky on the Gram matrix vs QR
// on the columns), so solutions agree to solver tolerance, not bit-for-bit;
// both must satisfy the KKT conditions of the same convex problem.
func TestNNLSIntoMatchesNNLS(t *testing.T) {
	l := lcg(7)
	var ws NNLSWorkspace
	for trial := 0; trial < 200; trial++ {
		m := 4 + int(l.next()*20)
		k := 1 + trial%4
		a, b := randProblem(&l, m, k)

		want, err := NNLS(a, b)
		if err != nil {
			t.Fatalf("trial %d: NNLS: %v", trial, err)
		}
		x := make([]float64, k)
		if err := NNLSInto(a, b, x, &ws); err != nil {
			t.Fatalf("trial %d: NNLSInto: %v", trial, err)
		}
		for j := 0; j < k; j++ {
			if x[j] < 0 || math.IsNaN(x[j]) {
				t.Fatalf("trial %d: x[%d] = %v, want non-negative", trial, j, x[j])
			}
		}
		rWant := residualNorm(a, want, b)
		rGot := residualNorm(a, x, b)
		if rGot > rWant+1e-8*(1+rWant) {
			t.Fatalf("trial %d (m=%d k=%d): workspace residual %v worse than QR residual %v\nx=%v want=%v",
				trial, m, k, rGot, rWant, x, want)
		}
		for j := 0; j < k; j++ {
			if d := math.Abs(x[j] - want[j]); d > 1e-6*(1+math.Abs(want[j])) {
				t.Errorf("trial %d (m=%d k=%d): x[%d] = %v, QR solver got %v (diff %v)",
					trial, m, k, j, x[j], want[j], d)
			}
		}
	}
}

// TestNNLSGramIntoKKT checks the optimality conditions directly on the Gram
// form: non-negativity, near-zero gradient on the support, non-positive
// gradient off it.
func TestNNLSGramIntoKKT(t *testing.T) {
	l := lcg(99)
	var ws NNLSWorkspace
	for trial := 0; trial < 200; trial++ {
		m := 6 + int(l.next()*16)
		k := 1 + trial%5
		a, b := randProblem(&l, m, k)

		g := make([]float64, k*k)
		d := make([]float64, k)
		for p := 0; p < k; p++ {
			d[p] = Dot(a.Col(p), b)
			for q := 0; q < k; q++ {
				g[p*k+q] = Dot(a.Col(p), a.Col(q))
			}
		}
		x := make([]float64, k)
		NNLSGramInto(g, d, x, &ws)

		scale := Norm2(b) + 1
		for j := 0; j < k; j++ {
			grad := d[j]
			for o := 0; o < k; o++ {
				grad -= g[j*k+o] * x[o]
			}
			if x[j] < 0 {
				t.Fatalf("trial %d: x[%d] = %v < 0", trial, j, x[j])
			}
			if x[j] > 0 && math.Abs(grad) > 1e-6*scale {
				t.Errorf("trial %d (k=%d): support gradient w[%d] = %v, want ~0", trial, k, j, grad)
			}
			if x[j] == 0 && grad > 1e-6*scale {
				t.Errorf("trial %d (k=%d): off-support gradient w[%d] = %v, want <= 0", trial, k, j, grad)
			}
		}
	}
}

// TestNNLSGramIntoDegenerate: duplicated columns (a singular Gram matrix)
// must yield a finite non-negative solution, matching how NNLS drops
// degenerate variables instead of failing.
func TestNNLSGramIntoDegenerate(t *testing.T) {
	l := lcg(3)
	var ws NNLSWorkspace
	a, b := randProblem(&l, 10, 3)
	for i := 0; i < 10; i++ {
		a.Set(i, 2, a.At(i, 1)) // column 2 duplicates column 1
	}
	x := make([]float64, 3)
	if err := NNLSInto(a, b, x, &ws); err != nil {
		t.Fatal(err)
	}
	for j, v := range x {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("degenerate solve: x[%d] = %v", j, v)
		}
	}
	want, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	rWant := residualNorm(a, want, b)
	rGot := residualNorm(a, x, b)
	if rGot > rWant+1e-8*(1+rWant) {
		t.Fatalf("degenerate solve: residual %v, QR solver reached %v", rGot, rWant)
	}
}

// TestNNLSGramIntoZero: an all-zero system has the all-zero solution.
func TestNNLSGramIntoZero(t *testing.T) {
	var ws NNLSWorkspace
	x := make([]float64, 2)
	x[0], x[1] = 5, 5
	NNLSGramInto(make([]float64, 4), make([]float64, 2), x, &ws)
	if x[0] != 0 || x[1] != 0 {
		t.Fatalf("zero system solved to %v, want zeros", x)
	}
}

// TestNNLSGramIntoNoAllocs: after the workspace has warmed up, solves are
// allocation-free — the property the fit evaluator's inner loop relies on.
func TestNNLSGramIntoNoAllocs(t *testing.T) {
	l := lcg(11)
	a, b := randProblem(&l, 12, 4)
	var ws NNLSWorkspace
	x := make([]float64, 4)
	if err := NNLSInto(a, b, x, &ws); err != nil { // warm up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := NNLSInto(a, b, x, &ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("NNLSInto steady state allocates %.1f times per solve, want 0", allocs)
	}
}
