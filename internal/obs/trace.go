package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Span is one structured step-trace record: the per-round vital signs of an
// SMC tracker Step. Counts are deterministic (pure functions of the run's
// seeds, identical at any worker count); the *Ns timing fields are
// wall-clock and intentionally not. A zero field simply means the phase did
// not apply (e.g. MaskedSensors on a clean round).
type Span struct {
	// Seed identifies which tracker emitted the span when several trackers
	// share one Trace (the experiment harness runs many trials at once).
	Seed uint64 `json:"seed"`
	// Step is the tracker's round index (0-based) and Time the observation
	// timestamp handed to Step.
	Step int     `json:"step"`
	Time float64 `json:"t"`

	// Tile is the shard tile index when the span was emitted by a sharded
	// field coordinator (internal/shard), and -1 for spans that are not
	// tile-scoped (a plain tracker Step). Filtering on Tile >= 0 selects the
	// per-tile coordinator records of a sharded run.
	Tile int `json:"tile"`
	// QueueNs is how long a tile's step waited between the round being
	// handed to the shard coordinator and this tile's tracker starting,
	// and Handoffs how many user sample sets migrated into or out of the
	// tile at the end of the round. Both are zero on non-tile spans.
	QueueNs  int64 `json:"queue_ns"`
	Handoffs int   `json:"handoffs"`

	Users      int    `json:"users"`       // tracked users (K)
	Searched   int    `json:"searched"`    // users in this round's candidate search (active set)
	Active     int    `json:"active"`      // users actually updated this round
	Candidates int    `json:"candidates"`  // predicted candidate positions drawn (Searched × N)
	NNLSSolves uint64 `json:"nnls_solves"` // compositions evaluated this Step
	NNLSIters  uint64 `json:"nnls_iters"`  // active-set NNLS iterations burned this Step

	MaskedSensors int `json:"masked_sensors"` // sensors absent from the fit (fault layer)
	StaleSensors  int `json:"stale_sensors"`  // delivered but aged reports (delayed delivery)

	Objective float64 `json:"objective"` // best composition objective this round

	PredictNs int64 `json:"predict_ns"` // prediction phase wall time
	SearchNs  int64 `json:"search_ns"`  // filtering/search phase wall time
	UpdateNs  int64 `json:"update_ns"`  // update + estimate phase wall time
	WallNs    int64 `json:"wall_ns"`    // whole Step wall time
}

// Trace is a bounded ring buffer of Spans. Writers append concurrently
// under a mutex; once the capacity is exceeded the oldest spans are
// overwritten (Dropped counts them). A nil *Trace is the disabled
// instrument: Add on it is a single branch.
type Trace struct {
	mu      sync.Mutex
	spans   []Span
	next    int
	wrapped bool
	total   uint64
}

// NewTrace returns a Trace holding at most capacity spans (<= 0 means a
// default of 4096).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Trace{spans: make([]Span, 0, capacity)}
}

// Add appends a span, overwriting the oldest when full. A nil receiver is
// a no-op.
func (t *Trace) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) < cap(t.spans) {
		t.spans = append(t.spans, s)
	} else {
		t.spans[t.next] = s
		t.next++
		if t.next == cap(t.spans) {
			t.next = 0
		}
		t.wrapped = true
	}
	t.total++
	t.mu.Unlock()
}

// Total returns how many spans were ever added (including overwritten ones).
func (t *Trace) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns the retained spans in insertion order.
func (t *Trace) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.spans))
	if t.wrapped {
		out = append(out, t.spans[t.next:]...)
		out = append(out, t.spans[:t.next]...)
	} else {
		out = append(out, t.spans...)
	}
	return out
}

// WriteJSONL writes spans as one JSON object per line — the `-trace
// out.jsonl` sink of cmd/fluxbench, greppable and jq-able.
func WriteJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}
