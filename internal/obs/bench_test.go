package obs

import "testing"

// The disabled/enabled benchmark pair quantifies the per-call cost of the
// instrument sites themselves: a nil handle must be one predictable branch,
// an enabled counter one sharded atomic add. The end-to-end ≤2% overhead
// claim is benchmarked where it matters, on the tracker hot path
// (BenchmarkTrackerStepObserved in internal/smc).

func BenchmarkCounterDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(i, 1)
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := New(8).Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(i, 1)
	}
}

func BenchmarkCounterEnabledParallel(b *testing.B) {
	c := New(0).Counter("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		w := 0
		for pb.Next() {
			c.Add(w, 1)
			w++
		}
	})
}

func BenchmarkHistogramDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(i, 1.5)
	}
}

func BenchmarkHistogramEnabled(b *testing.B) {
	h := New(8).Histogram("bench_ms", DurationBucketsMs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(i, 1.5)
	}
}

func BenchmarkTraceDisabled(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Add(Span{Step: i})
	}
}

func BenchmarkTraceEnabled(b *testing.B) {
	tr := NewTrace(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Add(Span{Step: i})
	}
}
