// Package obs is the pipeline's near-zero-overhead observability layer:
// sharded atomic counters, bounded histograms, and a structured step-trace
// ring buffer (trace.go), with pluggable sinks (JSON, human-readable table,
// expvar-style snapshot map).
//
// The design constraints, in order:
//
//  1. Observation must never perturb results. Instrumented code only
//     *writes* metrics; nothing in the pipeline ever reads one back, and no
//     instrumentation touches an RNG stream. Counters record deterministic
//     work counts (compositions evaluated, NNLS iterations, faults fired),
//     so after a deterministic run their merged totals are byte-identical
//     at any worker count — totals are sums over per-worker shards, and
//     addition is commutative, so scheduling cannot change them. Wall-time
//     measurements go to histograms only (suffix _ms or _ns), which are the
//     one intentionally non-deterministic domain. The golden test in
//     internal/exp (TestMetricsDoNotPerturbTables) enforces the contract:
//     experiment tables with metrics enabled are byte-identical to the
//     metrics-off run at every worker count, and every counter total is
//     worker-count-invariant.
//
//  2. Disabled must cost (almost) nothing. Every handle type (*Counter,
//     *Histogram, *Trace) tolerates a nil receiver: a nil Metrics registry
//     hands out nil handles, and Add/Observe on a nil handle is a single
//     predictable branch — no allocation, no atomic, no time.Now call.
//     Instrument sites obtain handles once at construction time and keep
//     them in struct fields, so the hot path never performs a map lookup.
//     TestDisabledPathAllocs pins testing.AllocsPerRun at zero for the
//     disabled path and the overhead benchmarks in bench_test.go compare
//     nil-sink against enabled steps.
//
//  3. Enabled must stay cheap under parallelism. Counters are sharded
//     across cache-line-padded atomic slots indexed by the caller's worker
//     index (the same w that internal/par hands every fork-join worker), so
//     concurrent workers do not bounce one hot cache line. Histograms use
//     atomic bucket counts per shard. Snapshot() merges shards in ascending
//     index order and sorts instruments by name, so rendered snapshots are
//     stable.
//
// Naming convention: instruments are dot-separated, lowest component first
// ("fit.nnls.iters", "smc.step.wall_ms"). Counters count things; histograms
// whose name ends in _ms or _ns hold durations and are excluded from the
// determinism contract.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// shard is one cache-line-padded atomic counter slot.
type shard struct {
	v atomic.Uint64
	_ [56]byte // pad to 64 bytes so neighboring shards never share a line
}

// Counter is a monotonically increasing sharded counter. The zero of a nil
// *Counter is the disabled instrument: Add on it is a no-op branch.
type Counter struct {
	name   string
	mask   uint32
	shards []shard
}

// Add adds v to the counter, attributing it to worker shard w (any
// non-negative index; it is reduced modulo the shard count). Safe for
// concurrent use; a nil receiver is a no-op.
func (c *Counter) Add(w int, v uint64) {
	if c == nil || v == 0 {
		return
	}
	c.shards[uint32(w)&c.mask].v.Add(v)
}

// Inc is Add(w, 1).
func (c *Counter) Inc(w int) { c.Add(w, 1) }

// Value merges the shards in ascending index order and returns the total.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Histogram is a bounded histogram with fixed upper bounds and an implicit
// overflow bucket. Observations are atomic bucket increments plus an atomic
// floating-point sum, sharded like Counter. A nil *Histogram is the
// disabled instrument.
type Histogram struct {
	name   string
	bounds []float64 // ascending upper bounds; bucket len(bounds) = overflow
	mask   uint32
	// Per shard: len(bounds)+1 bucket counts followed by one float64-bits
	// sum slot, laid out contiguously so one shard spans adjacent memory.
	cells  []atomic.Uint64
	stride int
}

// Observe records v in the bucket with the smallest upper bound >= v,
// attributing it to worker shard w. Safe for concurrent use; nil receivers
// and NaN values are no-ops.
func (h *Histogram) Observe(w int, v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	b := 0
	for b < len(h.bounds) && v > h.bounds[b] {
		b++
	}
	base := int(uint32(w)&h.mask) * h.stride
	h.cells[base+b].Add(1)
	// Atomic float add by CAS on the bit pattern of the shard's sum slot.
	slot := &h.cells[base+h.stride-1]
	for {
		old := slot.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if slot.CompareAndSwap(old, next) {
			return
		}
	}
}

// DurationBucketsMs is the default bucket layout for wall-time histograms,
// in milliseconds: roughly logarithmic from 50µs to 30s.
var DurationBucketsMs = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000,
}

// CountBuckets is the default bucket layout for small-integer distributions
// (queue depths, set sizes): powers of two up to 4096.
var CountBuckets = []float64{
	0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
}

// Metrics is a registry of named counters and histograms sharing one shard
// layout. A nil *Metrics is the disabled registry: Counter and Histogram
// return nil handles, which make every downstream call a no-op.
type Metrics struct {
	mu     sync.Mutex
	nshard int
	mask   uint32
	ctrs   map[string]*Counter
	hists  map[string]*Histogram
}

// New returns a Metrics registry with the given shard count (rounded up to
// a power of two; <= 0 means one shard per CPU).
func New(shards int) *Metrics {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	return &Metrics{
		nshard: n,
		mask:   uint32(n - 1),
		ctrs:   make(map[string]*Counter),
		hists:  make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Call it once at construction time and keep the handle; the hot path
// should never pay the lookup. Returns nil on a nil registry.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.ctrs[name]; ok {
		return c
	}
	c := &Counter{name: name, mask: m.mask, shards: make([]shard, m.nshard)}
	m.ctrs[name] = c
	return c
}

// Histogram returns the histogram registered under name with the given
// upper bounds, creating it on first use (bounds of an existing histogram
// are kept). Returns nil on a nil registry.
func (m *Metrics) Histogram(name string, bounds []float64) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.hists[name]; ok {
		return h
	}
	stride := len(bounds) + 2 // buckets + overflow + sum slot
	h := &Histogram{
		name:   name,
		bounds: append([]float64(nil), bounds...),
		mask:   m.mask,
		cells:  make([]atomic.Uint64, m.nshard*stride),
		stride: stride,
	}
	m.hists[name] = h
	return h
}

// CounterValue is one merged counter in a Snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// HistogramValue is one merged histogram in a Snapshot. Counts is aligned
// with Bounds plus one trailing overflow bucket.
type HistogramValue struct {
	Name   string    `json:"name"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

// Mean returns the average observed value (0 when empty).
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile returns the upper bound of the bucket containing the q-quantile
// (q in [0, 1]); observations in the overflow bucket report the last bound.
func (h HistogramValue) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b, n := range h.Counts {
		cum += n
		if cum >= target {
			if b < len(h.Bounds) {
				return h.Bounds[b]
			}
			return h.Bounds[len(h.Bounds)-1]
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a merged, name-sorted view of a Metrics registry — the
// expvar-style export all sinks render from.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot merges every instrument (shards in ascending index order) and
// returns the instruments sorted by name, so two snapshots of identical
// work render identically. A nil registry yields an empty snapshot.
func (m *Metrics) Snapshot() Snapshot {
	var s Snapshot
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, c := range m.ctrs {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	for name, h := range m.hists {
		hv := HistogramValue{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.bounds)+1),
		}
		for w := 0; w < m.nshard; w++ {
			base := w * h.stride
			for b := range hv.Counts {
				hv.Counts[b] += h.cells[base+b].Load()
			}
			hv.Sum += math.Float64frombits(h.cells[base+h.stride-1].Load())
		}
		for _, n := range hv.Counts {
			hv.Count += n
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Empty reports whether the snapshot holds no instruments at all.
func (s Snapshot) Empty() bool { return len(s.Counters) == 0 && len(s.Histograms) == 0 }

// Vars flattens the snapshot into an expvar-style map: counters map to
// their totals, histograms to {count, sum, mean, p50, p95}.
func (s Snapshot) Vars() map[string]any {
	out := make(map[string]any, len(s.Counters)+len(s.Histograms))
	for _, c := range s.Counters {
		out[c.Name] = c.Value
	}
	for _, h := range s.Histograms {
		out[h.Name] = map[string]any{
			"count": h.Count,
			"sum":   h.Sum,
			"mean":  h.Mean(),
			"p50":   h.Quantile(0.50),
			"p95":   h.Quantile(0.95),
		}
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(buf, '\n'))
	return err
}

// Format renders the snapshot as an aligned human-readable table: counters
// first, then histograms with count/mean/p50/p95 columns.
func (s Snapshot) Format() string {
	var b strings.Builder
	if len(s.Counters) > 0 {
		width := len("counter")
		for _, c := range s.Counters {
			if len(c.Name) > width {
				width = len(c.Name)
			}
		}
		fmt.Fprintf(&b, "%-*s %14s\n", width, "counter", "total")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "%-*s %14d\n", width, c.Name, c.Value)
		}
	}
	if len(s.Histograms) > 0 {
		if len(s.Counters) > 0 {
			b.WriteByte('\n')
		}
		width := len("histogram")
		for _, h := range s.Histograms {
			if len(h.Name) > width {
				width = len(h.Name)
			}
		}
		fmt.Fprintf(&b, "%-*s %10s %12s %10s %10s\n", width, "histogram", "count", "mean", "p50", "p95")
		for _, h := range s.Histograms {
			fmt.Fprintf(&b, "%-*s %10d %12.3f %10.3f %10.3f\n",
				width, h.Name, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.95))
		}
	}
	return b.String()
}
