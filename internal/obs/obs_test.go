package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterMerge(t *testing.T) {
	m := New(4)
	c := m.Counter("a.b")
	for w := 0; w < 16; w++ {
		c.Add(w, uint64(w+1))
	}
	want := uint64(16 * 17 / 2)
	if got := c.Value(); got != want {
		t.Fatalf("Value = %d, want %d", got, want)
	}
	snap := m.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Value != want {
		t.Fatalf("snapshot = %+v, want one counter of %d", snap.Counters, want)
	}
}

func TestCounterConcurrentTotal(t *testing.T) {
	m := New(8)
	c := m.Counter("conc")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(w)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
}

func TestCounterRegistryReturnsSameHandle(t *testing.T) {
	m := New(1)
	if m.Counter("x") != m.Counter("x") {
		t.Fatal("same name must return the same handle")
	}
	if m.Histogram("h", DurationBucketsMs) != m.Histogram("h", nil) {
		t.Fatal("same histogram name must return the same handle")
	}
}

func TestHistogram(t *testing.T) {
	m := New(2)
	h := m.Histogram("lat_ms", []float64{1, 10, 100})
	for w, v := range []float64{0.5, 0.7, 5, 50, 500} {
		h.Observe(w, v)
	}
	snap := m.Snapshot()
	hv := snap.Histograms[0]
	if hv.Count != 5 {
		t.Fatalf("Count = %d, want 5", hv.Count)
	}
	if want := 0.5 + 0.7 + 5 + 50 + 500; hv.Sum != want {
		t.Fatalf("Sum = %v, want %v", hv.Sum, want)
	}
	wantCounts := []uint64{2, 1, 1, 1}
	for i, n := range wantCounts {
		if hv.Counts[i] != n {
			t.Fatalf("Counts = %v, want %v", hv.Counts, wantCounts)
		}
	}
	if p50 := hv.Quantile(0.5); p50 != 10 {
		t.Fatalf("p50 = %v, want 10 (bucket upper bound)", p50)
	}
	if p95 := hv.Quantile(0.95); p95 != 100 {
		t.Fatalf("p95 = %v, want 100 (overflow reports last bound)", p95)
	}
}

// TestDisabledPathAllocs pins the disabled-path contract: a nil registry
// hands out nil handles and every operation on them performs zero heap
// allocations (and, by inspection, one branch each).
func TestDisabledPathAllocs(t *testing.T) {
	var m *Metrics
	c := m.Counter("never")
	h := m.Histogram("never", DurationBucketsMs)
	var tr *Trace
	if c != nil || h != nil {
		t.Fatal("nil registry must return nil handles")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(3, 7)
		c.Inc(0)
		h.Observe(1, 2.5)
		tr.Add(Span{Step: 1})
		_ = c.Value()
		_ = tr.Total()
		_ = tr.Snapshot()
		_ = m.Snapshot()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %v per run, want 0", allocs)
	}
}

// TestEnabledSteadyStateAllocs pins the enabled hot path: once handles are
// held, Add/Observe/Trace.Add allocate nothing.
func TestEnabledSteadyStateAllocs(t *testing.T) {
	m := New(4)
	c := m.Counter("c")
	h := m.Histogram("h", DurationBucketsMs)
	tr := NewTrace(8)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(2, 5)
		h.Observe(1, 3.5)
		tr.Add(Span{Step: 2})
	})
	if allocs != 0 {
		t.Fatalf("enabled steady state allocates %v per run, want 0", allocs)
	}
}

func TestTraceRing(t *testing.T) {
	tr := NewTrace(3)
	for i := 0; i < 5; i++ {
		tr.Add(Span{Step: i})
	}
	if tr.Total() != 5 {
		t.Fatalf("Total = %d, want 5", tr.Total())
	}
	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(spans))
	}
	for i, s := range spans {
		if s.Step != i+2 {
			t.Fatalf("spans = %v, want steps 2,3,4", spans)
		}
	}
}

func TestTraceSnapshotUnwrapped(t *testing.T) {
	tr := NewTrace(8)
	tr.Add(Span{Step: 0})
	tr.Add(Span{Step: 1})
	spans := tr.Snapshot()
	if len(spans) != 2 || spans[0].Step != 0 || spans[1].Step != 1 {
		t.Fatalf("spans = %v, want steps 0,1", spans)
	}
}

func TestWriteJSONLRoundTrip(t *testing.T) {
	spans := []Span{{Seed: 7, Step: 0, Time: 1, NNLSIters: 42}, {Seed: 7, Step: 1, Time: 2}}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, spans); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var got Span
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatal(err)
	}
	if got != spans[0] {
		t.Fatalf("round trip = %+v, want %+v", got, spans[0])
	}
}

func TestSnapshotSinks(t *testing.T) {
	m := New(2)
	m.Counter("b.two").Add(0, 2)
	m.Counter("a.one").Add(1, 1)
	m.Histogram("lat_ms", []float64{1, 10}).Observe(0, 5)
	snap := m.Snapshot()

	// Name-sorted merge order.
	if snap.Counters[0].Name != "a.one" || snap.Counters[1].Name != "b.two" {
		t.Fatalf("counters not name-sorted: %+v", snap.Counters)
	}
	// Table sink mentions every instrument.
	table := snap.Format()
	for _, want := range []string{"a.one", "b.two", "lat_ms", "counter", "histogram"} {
		if !strings.Contains(table, want) {
			t.Fatalf("Format() missing %q:\n%s", want, table)
		}
	}
	// JSON sink round-trips.
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Counters) != 2 || back.Counters[1].Value != 2 {
		t.Fatalf("JSON round trip = %+v", back)
	}
	// expvar-style map.
	vars := snap.Vars()
	if vars["a.one"] != uint64(1) {
		t.Fatalf("Vars[a.one] = %v", vars["a.one"])
	}
	if _, ok := vars["lat_ms"].(map[string]any); !ok {
		t.Fatalf("Vars[lat_ms] = %T, want map", vars["lat_ms"])
	}
	if snap.Empty() {
		t.Fatal("snapshot should not be empty")
	}
	var nilM *Metrics
	if !nilM.Snapshot().Empty() {
		t.Fatal("nil registry snapshot should be empty")
	}
}
