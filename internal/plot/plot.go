// Package plot renders small ASCII charts for the command-line tools:
// horizontal bar charts for error tables and line charts for CDFs and
// per-round error series. Pure text, no dependencies — meant for terminal
// inspection of experiment output, not publication graphics.
//
// Charts are pure functions from data to string: Bars lays out labeled
// horizontal bars scaled to the widest value; Line and Lines rasterize one
// or more float series onto a character grid. Rendering is
// deterministic (no timestamps, no locale formatting), so chart output can
// be asserted byte-for-byte in tests the same way experiment tables are.
// cmd/fluxbench and cmd/fluxsim are the only consumers.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Bars renders a horizontal bar chart. Labels and values must align; the
// chart scales to maxWidth characters for the largest value.
func Bars(labels []string, values []float64, maxWidth int) (string, error) {
	if len(labels) != len(values) {
		return "", fmt.Errorf("plot: %d labels but %d values", len(labels), len(values))
	}
	if len(values) == 0 {
		return "", nil
	}
	if maxWidth <= 0 {
		maxWidth = 40
	}
	labelW, maxV := 0, 0.0
	for i, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
		if v := values[i]; v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	for i, l := range labels {
		v := values[i]
		n := 0
		if maxV > 0 && v > 0 {
			n = int(math.Round(float64(maxWidth) * v / maxV))
			if n == 0 {
				n = 1
			}
		}
		fmt.Fprintf(&b, "%-*s | %s %.3g\n", labelW, l, strings.Repeat("#", n), v)
	}
	return b.String(), nil
}

// Line renders one series as an ASCII line chart of the given size. The x
// axis is the sample index; the y axis spans [min, max] of the series.
func Line(values []float64, width, height int) (string, error) {
	return Lines([][]float64{values}, width, height)
}

// Lines renders several series in one chart, each with its own glyph
// (1, 2, 3, ... then letters); later series overwrite earlier ones where
// they collide.
func Lines(series [][]float64, width, height int) (string, error) {
	if len(series) == 0 {
		return "", nil
	}
	if width <= 1 || height <= 1 {
		return "", fmt.Errorf("plot: chart size %dx%d too small", width, height)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range series {
		for _, v := range s {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	if maxLen == 0 {
		return "", nil
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", width))
	}
	glyphs := "123456789abcdef"
	for si, s := range series {
		if len(s) == 0 {
			continue
		}
		g := glyphs[si%len(glyphs)]
		for i, v := range s {
			x := 0
			if maxLen > 1 {
				x = i * (width - 1) / (maxLen - 1)
			}
			y := int(math.Round(float64(height-1) * (v - lo) / (hi - lo)))
			row := height - 1 - y
			grid[row][x] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%.3g\n", hi)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%.3g\n", lo)
	return b.String(), nil
}
