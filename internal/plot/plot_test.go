package plot

import (
	"strings"
	"testing"
)

func TestBarsBasic(t *testing.T) {
	out, err := Bars([]string{"a", "bb"}, []float64{1, 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	// The larger value gets the full width, the smaller about half.
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) {
		t.Errorf("max bar not full width: %q", lines[1])
	}
	if strings.Count(lines[0], "#") != 5 {
		t.Errorf("half bar = %d #s, want 5: %q", strings.Count(lines[0], "#"), lines[0])
	}
}

func TestBarsValidation(t *testing.T) {
	if _, err := Bars([]string{"a"}, []float64{1, 2}, 10); err == nil {
		t.Error("mismatched lengths must error")
	}
	out, err := Bars(nil, nil, 10)
	if err != nil || out != "" {
		t.Errorf("empty input: %q, %v", out, err)
	}
}

func TestBarsZeroValues(t *testing.T) {
	out, err := Bars([]string{"x", "y"}, []float64{0, 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "#") {
		t.Errorf("all-zero bars rendered marks: %q", out)
	}
}

func TestLineBasic(t *testing.T) {
	out, err := Line([]float64{0, 1, 2, 3}, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// hi label + 5 rows + lo label
	if len(lines) != 7 {
		t.Fatalf("got %d lines, want 7", len(lines))
	}
	if lines[0] != "3" || lines[6] != "0" {
		t.Errorf("axis labels = %q, %q; want 3, 0", lines[0], lines[6])
	}
	// Increasing series: first column mark in the bottom row, last in top.
	if lines[1][19] != '1' {
		t.Errorf("top-right mark missing: %q", lines[1])
	}
	if lines[5][0] != '1' {
		t.Errorf("bottom-left mark missing: %q", lines[5])
	}
}

func TestLinesMultipleSeries(t *testing.T) {
	out, err := Lines([][]float64{{0, 1}, {1, 0}}, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1") || !strings.Contains(out, "2") {
		t.Errorf("series glyphs missing: %q", out)
	}
}

func TestLinesDegenerate(t *testing.T) {
	if _, err := Lines([][]float64{{1}}, 1, 1); err == nil {
		t.Error("tiny chart must error")
	}
	out, err := Lines(nil, 10, 5)
	if err != nil || out != "" {
		t.Errorf("empty series: %q, %v", out, err)
	}
	out, err = Lines([][]float64{{}}, 10, 5)
	if err != nil || out != "" {
		t.Errorf("series of empty slices: %q, %v", out, err)
	}
	// Constant series must not divide by zero.
	if _, err := Line([]float64{5, 5, 5}, 10, 4); err != nil {
		t.Errorf("constant series errored: %v", err)
	}
}
