// Package traffic simulates the network flux observed by the adversary.
//
// Per §3.A of the paper: K mobile users move inside the field; each data
// collection builds a tree rooted at the user's sink; traffic flows of
// different users add up at intermediate nodes; the adversary measures the
// cumulated per-node flux F = sum_i F_i within each observation window, with
// no way to separate the per-user shares.
package traffic

import (
	"fmt"
	"sync"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/network"
	"fluxtrack/internal/obs"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/routing"
)

// User is a mobile user (mobile sink) collecting data from the network.
type User struct {
	Pos     geom.Point // current position in the field
	Stretch float64    // traffic stretch s: units of data collected per node
	Active  bool       // whether the user collects data this window
}

// Simulator computes ground-truth per-node flux for sets of users over a
// fixed network. It caches collection trees by sink node, since users that
// attach to the same nearest node induce identical tree shapes.
//
// A Simulator is safe for concurrent use: the tree cache is guarded by a
// mutex, and tree construction is deterministic, so whichever goroutine
// populates a sink's entry produces the same tree. The per-worker trial
// pattern in internal/exp gives each trial its own Simulator anyway, but
// sharing one across goroutines (e.g. to amortize tree building across
// trials on the same network) must not be a data race.
type Simulator struct {
	net *network.Network

	mu        sync.Mutex
	treeCache map[int]*routing.Tree
	met       simMetrics

	// routeJitter and routeSeed arm the route-randomization countermeasure:
	// when routeJitter > 0 every tree is built with routing.BuildRandomized
	// instead of routing.Build. See SetRouteJitter.
	routeJitter float64
	routeSeed   uint64
}

// simMetrics holds the simulator's bound counter handles; the zero value is
// the disabled instrument set. All four counters are deterministic work
// counts: how many flux rounds were computed, how many user contributions
// they summed, and how the tree cache split between builds and hits (builds
// equal the number of distinct sinks ever requested, regardless of which
// goroutine gets there first).
type simMetrics struct {
	m          *obs.Metrics
	fluxRounds *obs.Counter // traffic.flux.rounds
	fluxUsers  *obs.Counter // traffic.flux.users (active contributions summed)
	treeBuilds *obs.Counter // traffic.tree.builds
	treeHits   *obs.Counter // traffic.tree.hits
}

// NewSimulator returns a Simulator over the given network.
func NewSimulator(net *network.Network) *Simulator {
	return &Simulator{net: net, treeCache: make(map[int]*routing.Tree)}
}

// Network returns the underlying network.
func (s *Simulator) Network() *network.Network { return s.net }

// SetMetrics binds (or, with nil, unbinds) the observability registry the
// simulator reports its traffic.* work counters to. Metrics are write-only
// and never change the simulated flux. Not safe to call concurrently with
// Flux; bind once right after construction.
func (s *Simulator) SetMetrics(m *obs.Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m == nil {
		s.met = simMetrics{}
		return
	}
	s.met = simMetrics{
		m:          m,
		fluxRounds: m.Counter("traffic.flux.rounds"),
		fluxUsers:  m.Counter("traffic.flux.users"),
		treeBuilds: m.Counter("traffic.tree.builds"),
		treeHits:   m.Counter("traffic.tree.hits"),
	}
}

// SetRouteJitter arms (or, with jitter <= 0, disarms) the network's
// route-randomization countermeasure: subsequent trees are built with
// routing.BuildRandomized(sink, jitter, seed), so each node deviates from
// its nearest closer parent with probability jitter. The tree cache is
// cleared, since cached shapes were built under the previous policy.
// Randomized trees are still deterministic per (sink, jitter, seed), so the
// cache — and every table rendered above it — stays worker-count invariant.
// Not safe to call concurrently with Flux; configure right after
// construction, like SetMetrics.
func (s *Simulator) SetRouteJitter(jitter float64, seed uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if jitter < 0 {
		jitter = 0
	}
	s.routeJitter = jitter
	s.routeSeed = seed
	s.treeCache = make(map[int]*routing.Tree)
}

// tree returns the (cached) collection tree rooted at the given sink node.
// The lock is held across the build so concurrent callers asking for the
// same sink share one construction instead of racing on the map.
func (s *Simulator) tree(sink int) (*routing.Tree, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.treeCache[sink]; ok {
		s.met.treeHits.Inc(sink)
		return t, nil
	}
	t, err := routing.BuildRandomized(s.net, sink, s.routeJitter, s.routeSeed)
	if err != nil {
		return nil, err
	}
	s.treeCache[sink] = t
	s.met.treeBuilds.Inc(sink)
	return t, nil
}

// Flux returns the cumulated per-node flux induced by the users. Inactive
// users and users with non-positive stretch contribute nothing, mirroring a
// collection window in which they issue no request.
func (s *Simulator) Flux(users []User) ([]float64, error) {
	s.met.fluxRounds.Inc(0)
	active := 0
	total := make([]float64, s.net.Len())
	for i, u := range users {
		if !u.Active || u.Stretch <= 0 {
			continue
		}
		active++
		if !s.net.Field().Contains(u.Pos) {
			return nil, fmt.Errorf("traffic: user %d at %v is outside the field", i, u.Pos)
		}
		t, err := s.tree(s.net.Nearest(u.Pos))
		if err != nil {
			return nil, err
		}
		for j, size := range t.SubtreeSize {
			total[j] += u.Stretch * float64(size)
		}
	}
	s.met.fluxUsers.Add(0, uint64(active))
	return total, nil
}

// Measurement is what the adversary actually sniffs: flux readings at a
// sparse subset of node indices.
type Measurement struct {
	Nodes []int     // indices of the sniffed nodes
	Flux  []float64 // flux reading at each sniffed node, aligned with Nodes
}

// Sample extracts the readings at the given node indices from a full flux
// vector.
func Sample(flux []float64, nodes []int) (Measurement, error) {
	m := Measurement{Nodes: append([]int(nil), nodes...), Flux: make([]float64, len(nodes))}
	for k, i := range nodes {
		if i < 0 || i >= len(flux) {
			return Measurement{}, fmt.Errorf("traffic: sample index %d out of range [0, %d)", i, len(flux))
		}
		m.Flux[k] = flux[i]
	}
	return m, nil
}

// AddNoise perturbs each reading with multiplicative noise
// (1 + sigma*N(0,1)), clamped at zero, modeling imperfect sniffing windows.
// A sigma of zero leaves the measurement unchanged.
func (m Measurement) AddNoise(sigma float64, src *rng.Source) Measurement {
	out := Measurement{Nodes: append([]int(nil), m.Nodes...), Flux: make([]float64, len(m.Flux))}
	for i, f := range m.Flux {
		v := f
		if sigma > 0 {
			v *= 1 + sigma*src.Norm()
			if v < 0 {
				v = 0
			}
		}
		out.Flux[i] = v
	}
	return out
}

// PickSamplingNodes selects k distinct sniffing positions uniformly at
// random among all nodes, as in the paper's sparse-sampling evaluation
// ("we randomly select the percentage of sensor nodes from the network").
func PickSamplingNodes(net *network.Network, k int, src *rng.Source) ([]int, error) {
	if k <= 0 || k > net.Len() {
		return nil, fmt.Errorf("traffic: sampling count %d out of range (0, %d]", k, net.Len())
	}
	return src.SampleK(net.Len(), k), nil
}

// Reshape is a traffic-reshaping countermeasure (§6 future work): every node
// injects dummy flux drawn uniformly in [0, amplitude], flattening the flux
// fingerprint the adversary relies on. It returns a new flux vector.
func Reshape(flux []float64, amplitude float64, src *rng.Source) []float64 {
	out := make([]float64, len(flux))
	for i, f := range flux {
		out[i] = f + src.Uniform(0, amplitude)
	}
	return out
}

// PeakNode returns the index of the node carrying the maximum flux and that
// flux value. It is the primitive of the briefing baseline (§3.C): with a
// single user, the flux peak sits at the user's sink.
func PeakNode(flux []float64) (idx int, peak float64) {
	idx = -1
	for i, f := range flux {
		if idx < 0 || f > peak {
			idx, peak = i, f
		}
	}
	return idx, peak
}

// TotalEnergy returns the sum of squared flux values. The paper reports the
// fraction of "flux energy" preserved by node subsets; briefing progress is
// measured the same way.
func TotalEnergy(flux []float64) float64 {
	var s float64
	for _, f := range flux {
		s += f * f
	}
	return s
}

// RandomUsers places k active users uniformly in the field with stretches
// drawn uniformly from [stretchLo, stretchHi], the workload of §5.A
// ("traffic stretch of each user is randomly selected from 1 to 3").
func RandomUsers(field geom.Rect, k int, stretchLo, stretchHi float64, src *rng.Source) []User {
	users := make([]User, k)
	for i := range users {
		users[i] = User{
			Pos:     src.InRect(field),
			Stretch: src.Uniform(stretchLo, stretchHi),
			Active:  true,
		}
	}
	return users
}
