package traffic

import (
	"fmt"
	"math"
	"testing"

	"fluxtrack/internal/deploy"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/network"
	"fluxtrack/internal/rng"
)

func paperNetwork(t testing.TB, seed uint64) *network.Network {
	t.Helper()
	src := rng.New(seed)
	pts, err := deploy.Generate(deploy.Config{
		Field: geom.Square(30), N: 900, Kind: deploy.PerturbedGrid,
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := network.New(geom.Square(30), pts, 2.4)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestFluxSingleUserPeakAtSink(t *testing.T) {
	net := paperNetwork(t, 1)
	sim := NewSimulator(net)
	user := User{Pos: geom.Pt(15, 15), Stretch: 2, Active: true}
	flux, err := sim.Flux([]User{user})
	if err != nil {
		t.Fatal(err)
	}
	peakIdx, peak := PeakNode(flux)
	sink := net.Nearest(user.Pos)
	if peakIdx != sink {
		t.Errorf("flux peak at node %d, want sink %d", peakIdx, sink)
	}
	// The sink relays all reachable data: stretch * component size.
	comp := len(net.LargestComponent())
	if want := 2 * float64(comp); peak != want {
		t.Errorf("peak flux = %v, want %v", peak, want)
	}
}

func TestFluxAdditivity(t *testing.T) {
	net := paperNetwork(t, 2)
	sim := NewSimulator(net)
	u1 := User{Pos: geom.Pt(8, 8), Stretch: 1.5, Active: true}
	u2 := User{Pos: geom.Pt(22, 20), Stretch: 2.5, Active: true}
	f1, err := sim.Flux([]User{u1})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := sim.Flux([]User{u2})
	if err != nil {
		t.Fatal(err)
	}
	both, err := sim.Flux([]User{u1, u2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range both {
		if math.Abs(both[i]-(f1[i]+f2[i])) > 1e-9 {
			t.Fatalf("flux not additive at node %d: %v vs %v + %v", i, both[i], f1[i], f2[i])
		}
	}
}

func TestFluxInactiveAndZeroStretch(t *testing.T) {
	net := paperNetwork(t, 3)
	sim := NewSimulator(net)
	users := []User{
		{Pos: geom.Pt(5, 5), Stretch: 2, Active: false},
		{Pos: geom.Pt(25, 25), Stretch: 0, Active: true},
	}
	flux, err := sim.Flux(users)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range flux {
		if f != 0 {
			t.Fatalf("inactive/zero-stretch users produced flux %v at node %d", f, i)
		}
	}
}

func TestFluxScalesWithStretch(t *testing.T) {
	net := paperNetwork(t, 4)
	sim := NewSimulator(net)
	f1, err := sim.Flux([]User{{Pos: geom.Pt(12, 12), Stretch: 1, Active: true}})
	if err != nil {
		t.Fatal(err)
	}
	f3, err := sim.Flux([]User{{Pos: geom.Pt(12, 12), Stretch: 3, Active: true}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range f1 {
		if math.Abs(f3[i]-3*f1[i]) > 1e-9 {
			t.Fatalf("stretch scaling broken at node %d", i)
		}
	}
}

func TestFluxOutsideFieldErrors(t *testing.T) {
	net := paperNetwork(t, 5)
	sim := NewSimulator(net)
	if _, err := sim.Flux([]User{{Pos: geom.Pt(-5, 5), Stretch: 1, Active: true}}); err == nil {
		t.Error("user outside field must error")
	}
}

func TestTreeCacheReuse(t *testing.T) {
	net := paperNetwork(t, 6)
	sim := NewSimulator(net)
	// Two users whose positions snap to the same sink must hit the cache.
	sink := net.Pos(100)
	if _, err := sim.Flux([]User{{Pos: sink, Stretch: 1, Active: true}}); err != nil {
		t.Fatal(err)
	}
	if len(sim.treeCache) != 1 {
		t.Fatalf("cache size = %d, want 1", len(sim.treeCache))
	}
	if _, err := sim.Flux([]User{{Pos: sink, Stretch: 2, Active: true}}); err != nil {
		t.Fatal(err)
	}
	if len(sim.treeCache) != 1 {
		t.Fatalf("cache size after reuse = %d, want 1", len(sim.treeCache))
	}
}

func TestSample(t *testing.T) {
	flux := []float64{10, 20, 30, 40}
	m, err := Sample(flux, []int{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if m.Flux[0] != 40 || m.Flux[1] != 10 {
		t.Errorf("sampled flux = %v, want [40 10]", m.Flux)
	}
	if _, err := Sample(flux, []int{4}); err == nil {
		t.Error("out-of-range sample index must error")
	}
	if _, err := Sample(flux, []int{-1}); err == nil {
		t.Error("negative sample index must error")
	}
}

func TestAddNoise(t *testing.T) {
	m := Measurement{Nodes: []int{0, 1}, Flux: []float64{100, 200}}
	// Zero sigma is the identity.
	clean := m.AddNoise(0, rng.New(1))
	if clean.Flux[0] != 100 || clean.Flux[1] != 200 {
		t.Errorf("zero-sigma noise altered flux: %v", clean.Flux)
	}
	// Non-zero sigma perturbs but stays non-negative.
	src := rng.New(2)
	noisy := m.AddNoise(0.5, src)
	changed := false
	for i, f := range noisy.Flux {
		if f < 0 {
			t.Fatalf("noise produced negative flux %v", f)
		}
		if f != m.Flux[i] {
			changed = true
		}
	}
	if !changed {
		t.Error("noise with sigma 0.5 changed nothing")
	}
	// Original untouched.
	if m.Flux[0] != 100 {
		t.Error("AddNoise mutated the input measurement")
	}
}

func TestPickSamplingNodes(t *testing.T) {
	net := paperNetwork(t, 7)
	src := rng.New(8)
	nodes, err := PickSamplingNodes(net, 90, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 90 {
		t.Fatalf("got %d nodes, want 90", len(nodes))
	}
	seen := map[int]bool{}
	for _, i := range nodes {
		if i < 0 || i >= net.Len() || seen[i] {
			t.Fatalf("invalid or duplicate sampling node %d", i)
		}
		seen[i] = true
	}
	if _, err := PickSamplingNodes(net, 0, src); err == nil {
		t.Error("zero sampling count must error")
	}
	if _, err := PickSamplingNodes(net, net.Len()+1, src); err == nil {
		t.Error("oversized sampling count must error")
	}
}

func TestReshape(t *testing.T) {
	src := rng.New(9)
	flux := []float64{1, 2, 3}
	out := Reshape(flux, 10, src)
	for i := range out {
		if out[i] < flux[i] || out[i] > flux[i]+10 {
			t.Fatalf("reshaped flux %v out of [%v, %v]", out[i], flux[i], flux[i]+10)
		}
	}
	if flux[0] != 1 {
		t.Error("Reshape mutated the input")
	}
}

func TestPeakNode(t *testing.T) {
	idx, peak := PeakNode([]float64{3, 9, 1})
	if idx != 1 || peak != 9 {
		t.Errorf("PeakNode = (%d, %v), want (1, 9)", idx, peak)
	}
	idx, _ = PeakNode(nil)
	if idx != -1 {
		t.Errorf("PeakNode(nil) idx = %d, want -1", idx)
	}
}

func TestTotalEnergy(t *testing.T) {
	if got := TotalEnergy([]float64{3, 4}); got != 25 {
		t.Errorf("TotalEnergy = %v, want 25", got)
	}
	if got := TotalEnergy(nil); got != 0 {
		t.Errorf("TotalEnergy(nil) = %v, want 0", got)
	}
}

func TestRandomUsers(t *testing.T) {
	src := rng.New(10)
	field := geom.Square(30)
	users := RandomUsers(field, 4, 1, 3, src)
	if len(users) != 4 {
		t.Fatalf("got %d users, want 4", len(users))
	}
	for _, u := range users {
		if !field.Contains(u.Pos) {
			t.Errorf("user at %v outside field", u.Pos)
		}
		if u.Stretch < 1 || u.Stretch >= 3 {
			t.Errorf("stretch %v outside [1, 3)", u.Stretch)
		}
		if !u.Active {
			t.Error("RandomUsers must produce active users")
		}
	}
}

func BenchmarkFluxThreeUsers(b *testing.B) {
	net := paperNetwork(b, 11)
	sim := NewSimulator(net)
	users := RandomUsers(net.Field(), 3, 1, 3, rng.New(12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Flux(users); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSimulatorConcurrentFlux exercises the shared tree cache from many
// goroutines at once — the pattern a shared Simulator across trial workers
// produces. Run under -race (CI does) this is the regression guard for the
// treeCache map; every goroutine must also observe exactly the sequential
// flux vectors.
func TestSimulatorConcurrentFlux(t *testing.T) {
	net := paperNetwork(t, 5)
	src := rng.New(99)
	userSets := make([][]User, 8)
	for i := range userSets {
		userSets[i] = RandomUsers(net.Field(), 1+i%3, 1, 3, src)
	}
	// Sequential reference on a fresh simulator.
	ref := NewSimulator(net)
	want := make([][]float64, len(userSets))
	for i, us := range userSets {
		var err error
		if want[i], err = ref.Flux(us); err != nil {
			t.Fatal(err)
		}
	}

	shared := NewSimulator(net)
	const goroutines = 8
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for rep := 0; rep < 5; rep++ {
				for i, us := range userSets {
					got, err := shared.Flux(us)
					if err != nil {
						errs <- err
						return
					}
					for j := range got {
						if got[j] != want[i][j] {
							errs <- fmt.Errorf("goroutine %d: flux[%d][%d] = %v, want %v", g, i, j, got[j], want[i][j])
							return
						}
					}
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestSetRouteJitter: the traffic-shaping countermeasure must change the
// flux fingerprint (that mismatch with the attacker's calibrated model is
// the whole defense), conserve the total relayed flux (hop counts are
// untouched, so every report still travels the same distance), stay
// deterministic per seed, and switch off cleanly at jitter 0.
func TestSetRouteJitter(t *testing.T) {
	net := paperNetwork(t, 3)
	users := []User{{Pos: geom.Pt(12, 9), Stretch: 2, Active: true}}
	plainSim := NewSimulator(net)
	plain, err := plainSim.Flux(users)
	if err != nil {
		t.Fatal(err)
	}

	jit := NewSimulator(net)
	jit.SetRouteJitter(0.5, 7)
	shaped, err := jit.Flux(users)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range plain {
		if plain[i] != shaped[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("route jitter 0.5 left the flux fingerprint unchanged")
	}
	sum := func(f []float64) float64 {
		var s float64
		for _, v := range f {
			s += v
		}
		return s
	}
	if ps, ss := sum(plain), sum(shaped); math.Abs(ps-ss) > 1e-6*ps {
		t.Errorf("route jitter changed total relayed flux: %v -> %v", ps, ss)
	}

	// Same seed reproduces the shaped pattern bit for bit.
	jit2 := NewSimulator(net)
	jit2.SetRouteJitter(0.5, 7)
	shaped2, err := jit2.Flux(users)
	if err != nil {
		t.Fatal(err)
	}
	for i := range shaped {
		if shaped[i] != shaped2[i] {
			t.Fatalf("same-seed jittered flux differs at node %d", i)
		}
	}

	// Resetting jitter to 0 on a live simulator clears the cache and
	// restores the plain fingerprint.
	jit.SetRouteJitter(0, 0)
	restored, err := jit.Flux(users)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if restored[i] != plain[i] {
			t.Fatalf("jitter 0 flux differs from plain at node %d", i)
		}
	}
}
