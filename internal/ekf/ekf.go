// Package ekf implements an Extended Kalman Filter tracker over flux
// measurements — the classical remote-tracking technique the paper's
// related-work section cites (constrained NLS and EKF motion models, [9],
// [23]) and implicitly argues against: the flux observation function is
// only piecewise smooth on rectangular fields, so the linearization can
// diverge where the Sequential Monte Carlo tracker keeps converging. The
// package exists as the baseline for that comparison (experiment A6).
//
// State: a single user's [x, y, vx, vy] with a constant-velocity motion
// model. The measurement function is the flux model evaluated at the
// sniffed nodes with the stretch factor re-fitted (1-column NNLS) at each
// step; the Jacobian is numeric.
package ekf

import (
	"errors"
	"fmt"
	"math"

	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mat"
)

// Config configures a Tracker.
type Config struct {
	Model        *fluxmodel.Model
	SamplePoints []geom.Point
	// ProcessNoise is the standard deviation of the per-step velocity
	// disturbance (default 1).
	ProcessNoise float64
	// MeasurementNoise is the assumed relative standard deviation of each
	// flux reading: the per-reading variance is
	// (MeasurementNoise*(flux_i + q))² with a small floor q. Flux spans
	// orders of magnitude across the field, so a relative noise model is
	// the only way to keep the linearized gain bounded (default 0.3).
	MeasurementNoise float64
	// MaxStep caps the position correction of one measurement update — a
	// trust region guarding the linearization (default 3).
	MaxStep float64
	// InitPos seeds the position estimate; zero value means field center.
	InitPos geom.Point
	// InitUncertainty is the initial position standard deviation
	// (default: a quarter of the field diameter).
	InitUncertainty float64
}

// Tracker is a single-user EKF over flux observations.
type Tracker struct {
	cfg Config
	// state is [x, y, vx, vy]; cov its 4x4 covariance.
	state []float64
	cov   *mat.Dense
}

// New returns an EKF tracker.
func New(cfg Config) (*Tracker, error) {
	if cfg.Model == nil {
		return nil, errors.New("ekf: nil model")
	}
	if len(cfg.SamplePoints) == 0 {
		return nil, errors.New("ekf: no sampling points")
	}
	if cfg.ProcessNoise <= 0 {
		cfg.ProcessNoise = 1
	}
	if cfg.MeasurementNoise <= 0 {
		cfg.MeasurementNoise = 0.3
	}
	if cfg.MaxStep <= 0 {
		cfg.MaxStep = 3
	}
	field := cfg.Model.Field()
	if cfg.InitPos == (geom.Point{}) {
		cfg.InitPos = field.Center()
	}
	if cfg.InitUncertainty <= 0 {
		cfg.InitUncertainty = field.Diameter() / 4
	}
	tr := &Tracker{
		cfg:   cfg,
		state: []float64{cfg.InitPos.X, cfg.InitPos.Y, 0, 0},
		cov:   mat.NewDense(4, 4),
	}
	p0 := cfg.InitUncertainty * cfg.InitUncertainty
	tr.cov.Set(0, 0, p0)
	tr.cov.Set(1, 1, p0)
	tr.cov.Set(2, 2, 4) // generous initial velocity variance
	tr.cov.Set(3, 3, 4)
	return tr, nil
}

// Position returns the current position estimate.
func (tr *Tracker) Position() geom.Point {
	return tr.cfg.Model.Field().Clamp(geom.Pt(tr.state[0], tr.state[1]))
}

// Velocity returns the current velocity estimate.
func (tr *Tracker) Velocity() geom.Vec {
	return geom.Vec{DX: tr.state[2], DY: tr.state[3]}
}

// Step consumes one flux observation taken dt after the previous one and
// returns the updated position estimate.
func (tr *Tracker) Step(dt float64, measured []float64) (geom.Point, error) {
	if len(measured) != len(tr.cfg.SamplePoints) {
		return geom.Point{}, fmt.Errorf("ekf: observation length %d, want %d",
			len(measured), len(tr.cfg.SamplePoints))
	}
	if dt <= 0 {
		return geom.Point{}, fmt.Errorf("ekf: dt must be positive, got %v", dt)
	}
	tr.predict(dt)
	if err := tr.update(measured); err != nil {
		return geom.Point{}, err
	}
	return tr.Position(), nil
}

// predict advances the constant-velocity model: x += v*dt, with process
// noise injected on the velocity.
func (tr *Tracker) predict(dt float64) {
	f := mat.NewDense(4, 4)
	for i := 0; i < 4; i++ {
		f.Set(i, i, 1)
	}
	f.Set(0, 2, dt)
	f.Set(1, 3, dt)

	// state = F state
	tr.state[0] += dt * tr.state[2]
	tr.state[1] += dt * tr.state[3]

	// cov = F cov F^T + Q
	fc, _ := f.Mul(tr.cov)
	cov, _ := fc.Mul(f.T())
	q := tr.cfg.ProcessNoise * tr.cfg.ProcessNoise * dt
	cov.Set(2, 2, cov.At(2, 2)+q)
	cov.Set(3, 3, cov.At(3, 3)+q)
	// Position also receives a share so the filter never becomes overconfident.
	cov.Set(0, 0, cov.At(0, 0)+q*dt*dt/4)
	cov.Set(1, 1, cov.At(1, 1)+q*dt*dt/4)
	tr.cov = cov
}

// fitStretch returns the closed-form 1-column non-negative least squares
// stretch factor for position p against the observation.
func (tr *Tracker) fitStretch(p geom.Point, measured []float64) float64 {
	col := tr.cfg.Model.KernelVector(p, tr.cfg.SamplePoints)
	var num, den float64
	for i := range col {
		num += col[i] * measured[i]
		den += col[i] * col[i]
	}
	if den > 0 && num > 0 {
		return num / den
	}
	return 0
}

// measurementAt evaluates the expected flux vector at position p with the
// stretch factor c held fixed. Holding c fixed inside one update keeps the
// numeric Jacobian a pure position gradient; re-fitting c within the
// finite differences would fold dc/dx into it and destabilize the filter.
func (tr *Tracker) measurementAt(p geom.Point, c float64) []float64 {
	p = tr.cfg.Model.Field().Clamp(p)
	col := tr.cfg.Model.KernelVector(p, tr.cfg.SamplePoints)
	for i := range col {
		col[i] *= c
	}
	return col
}

// update performs the EKF measurement update with a numeric Jacobian of the
// flux observation with respect to (x, y).
func (tr *Tracker) update(measured []float64) error {
	n := len(measured)
	pos := tr.cfg.Model.Field().Clamp(geom.Pt(tr.state[0], tr.state[1]))
	c := tr.fitStretch(pos, measured)
	h0 := tr.measurementAt(pos, c)

	// Numeric Jacobian H (n x 4): flux depends on position only. A central
	// difference with a sizable step smooths over the piecewise kinks of
	// the boundary-distance term.
	const eps = 0.05
	hMat := mat.NewDense(n, 4)
	hxp := tr.measurementAt(geom.Pt(pos.X+eps, pos.Y), c)
	hxm := tr.measurementAt(geom.Pt(pos.X-eps, pos.Y), c)
	hyp := tr.measurementAt(geom.Pt(pos.X, pos.Y+eps), c)
	hym := tr.measurementAt(geom.Pt(pos.X, pos.Y-eps), c)
	for i := 0; i < n; i++ {
		hMat.Set(i, 0, (hxp[i]-hxm[i])/(2*eps))
		hMat.Set(i, 1, (hyp[i]-hym[i])/(2*eps))
	}

	// Innovation covariance S = H P H^T + R with relative per-reading
	// noise; q floors the variance on near-silent nodes.
	ph, _ := tr.cov.Mul(hMat.T())
	s, _ := hMat.Mul(ph)
	var meanFlux float64
	for _, f := range measured {
		meanFlux += f
	}
	meanFlux /= float64(n)
	q := 0.1*meanFlux + 1
	for i := 0; i < n; i++ {
		sd := tr.cfg.MeasurementNoise * (measured[i] + q)
		s.Set(i, i, s.At(i, i)+sd*sd)
	}

	// Kalman gain K = P H^T S^{-1}, computed column-wise by solving
	// S x = (H P)_col — S is symmetric positive definite.
	innovation := mat.Sub(measured, h0)
	// Solve S y = innovation once: K*innov = P H^T y.
	y, err := mat.SolveCholesky(s, innovation)
	if err != nil {
		// A singular innovation covariance means the measurement carries no
		// positional information at this linearization point; skip the
		// update rather than corrupt the state (this is precisely the
		// failure mode the paper predicts for linearized solvers).
		return nil
	}
	// dx = P H^T y (4-vector).
	hty, err := hMat.T().MulVec(y)
	if err != nil {
		return err
	}
	dx, err := tr.cov.MulVec(hty)
	if err != nil {
		return err
	}
	// Trust region: the flux model is strongly nonlinear near the sink, so
	// long linear extrapolations are meaningless. Scale the whole state
	// correction down when the position step exceeds MaxStep.
	if stepLen := math.Hypot(dx[0], dx[1]); stepLen > tr.cfg.MaxStep {
		scale := tr.cfg.MaxStep / stepLen
		for i := range dx {
			dx[i] *= scale
		}
	}
	for i := range tr.state {
		tr.state[i] += dx[i]
	}
	// Keep the state on the field: outside it the flux model is identically
	// zero, the Jacobian vanishes, and the filter would freeze.
	clamped := tr.cfg.Model.Field().Clamp(geom.Pt(tr.state[0], tr.state[1]))
	tr.state[0], tr.state[1] = clamped.X, clamped.Y

	// Covariance update (Joseph-free simple form): P = (I - K H) P with
	// K H approximated through the same solves. Compute KH = P H^T S^{-1} H.
	// To stay numerically safe with n >> 4, build K explicitly by solving S
	// against each column of (H P)^T — n is at most a few hundred here.
	k := mat.NewDense(4, len(measured))
	for row := 0; row < 4; row++ {
		// K(row, :) = (P H^T)(row, :) S^{-1}; S is symmetric, so solve
		// S z = (P H^T)(row, :)^T and take z^T. ph = P H^T is 4 x n.
		hpRow := make([]float64, n)
		for i := 0; i < n; i++ {
			hpRow[i] = ph.At(row, i)
		}
		z, err := mat.SolveCholesky(s, hpRow)
		if err != nil {
			return nil
		}
		for i := 0; i < n; i++ {
			k.Set(row, i, z[i])
		}
	}
	kh, err := k.Mul(hMat)
	if err != nil {
		return err
	}
	ikh := mat.NewDense(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			v := -kh.At(i, j)
			if i == j {
				v += 1
			}
			ikh.Set(i, j, v)
		}
	}
	cov, err := ikh.Mul(tr.cov)
	if err != nil {
		return err
	}
	// Symmetrize to fight round-off and floor the diagonal.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			v := (cov.At(i, j) + cov.At(j, i)) / 2
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
		cov.Set(i, i, math.Max(cov.At(i, i), 1e-6))
	}
	tr.cov = cov
	return nil
}
