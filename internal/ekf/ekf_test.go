package ekf

import (
	"testing"

	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

func testSetup(t testing.TB, seed uint64) (*fluxmodel.Model, []geom.Point) {
	t.Helper()
	m, err := fluxmodel.New(geom.Square(30), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(seed)
	pts := make([]geom.Point, 90)
	for i := range pts {
		pts[i] = src.InRect(m.Field())
	}
	return m, pts
}

func observe(t testing.TB, m *fluxmodel.Model, pts []geom.Point, sink geom.Point, c float64) []float64 {
	t.Helper()
	f, err := m.PredictFlux([]geom.Point{sink}, []float64{c}, pts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	m, pts := testSetup(t, 1)
	if _, err := New(Config{SamplePoints: pts}); err == nil {
		t.Error("nil model must error")
	}
	if _, err := New(Config{Model: m}); err == nil {
		t.Error("missing sample points must error")
	}
	tr, err := New(Config{Model: m, SamplePoints: pts})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Position(); got != m.Field().Center() {
		t.Errorf("initial position %v, want field center", got)
	}
}

func TestStepValidation(t *testing.T) {
	m, pts := testSetup(t, 2)
	tr, err := New(Config{Model: m, SamplePoints: pts})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Step(1, []float64{1}); err == nil {
		t.Error("observation length mismatch must error")
	}
	obs := make([]float64, len(pts))
	if _, err := tr.Step(0, obs); err == nil {
		t.Error("non-positive dt must error")
	}
}

func TestEKFConvergesNearTruthWithGoodInit(t *testing.T) {
	// Inside its linearization basin (about two units on this field) the
	// EKF must lock on tightly.
	m, pts := testSetup(t, 3)
	truth := geom.Pt(14, 16)
	tr, err := New(Config{
		Model: m, SamplePoints: pts,
		InitPos: geom.Pt(13, 15), InitUncertainty: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := observe(t, m, pts, truth, 1.5)
	var pos geom.Point
	for step := 0; step < 10; step++ {
		pos, err = tr.Step(1, obs)
		if err != nil {
			t.Fatal(err)
		}
	}
	if d := pos.Dist(truth); d > 0.5 {
		t.Errorf("EKF with good init ended %.2f from truth, want <= 0.5", d)
	}
}

// TestEKFDivergesFromFarInit documents the baseline's failure mode: outside
// the linearization basin the filter settles in a wrong local minimum of
// the piecewise-smooth flux objective — the paper's stated reason to prefer
// Sequential Monte Carlo estimation.
func TestEKFDivergesFromFarInit(t *testing.T) {
	m, pts := testSetup(t, 3)
	truth := geom.Pt(14, 16)
	tr, err := New(Config{
		Model: m, SamplePoints: pts,
		InitPos: geom.Pt(25, 5), InitUncertainty: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := observe(t, m, pts, truth, 1.5)
	var pos geom.Point
	for step := 0; step < 15; step++ {
		pos, err = tr.Step(1, obs)
		if err != nil {
			t.Fatal(err)
		}
	}
	if d := pos.Dist(truth); d < 1.0 {
		t.Logf("note: EKF escaped a far init this time (%.2f); basin shapes vary", d)
	}
	// Whatever happens, the state must stay finite and on the field.
	if !m.Field().Contains(pos) {
		t.Errorf("EKF position %v left the field", pos)
	}
}

func TestEKFTracksSlowMotionWithGoodInit(t *testing.T) {
	// Seed choice matters: some sampling geometries mislead the linearized
	// gradient mid-trajectory (the fragility the A6 ablation quantifies);
	// this test pins a geometry where the filter's happy path is exercised.
	m, pts := testSetup(t, 5)
	start := geom.Pt(8, 15)
	tr, err := New(Config{
		Model: m, SamplePoints: pts,
		InitPos: start, InitUncertainty: 1, ProcessNoise: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var lastErr float64
	for step := 1; step <= 12; step++ {
		truth := geom.Pt(8+float64(step), 15)
		pos, err := tr.Step(1, observe(t, m, pts, truth, 2))
		if err != nil {
			t.Fatal(err)
		}
		lastErr = pos.Dist(truth)
	}
	if lastErr > 1.0 {
		t.Errorf("EKF final tracking error %.2f, want <= 1.0", lastErr)
	}
	// The velocity estimate should point east at speed ~1.
	v := tr.Velocity()
	if v.DX < 0.5 || v.DX > 1.5 {
		t.Errorf("velocity estimate %v does not reflect eastward motion", v)
	}
}

func TestEKFStateStaysFinite(t *testing.T) {
	// Garbage observations must not blow up the filter.
	m, pts := testSetup(t, 5)
	tr, err := New(Config{Model: m, SamplePoints: pts})
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]float64, len(pts))
	for step := 1; step <= 5; step++ {
		pos, err := tr.Step(1, zero)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Field().Contains(pos) {
			t.Fatalf("EKF position %v escaped the field", pos)
		}
	}
}

func BenchmarkStep(b *testing.B) {
	m, pts := testSetup(b, 6)
	tr, err := New(Config{Model: m, SamplePoints: pts, InitPos: geom.Pt(10, 10)})
	if err != nil {
		b.Fatal(err)
	}
	obs := observe(b, m, pts, geom.Pt(12, 12), 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(1, obs); err != nil {
			b.Fatal(err)
		}
	}
}
