package fingerprint

import (
	"container/list"
	"math"
	"sync"

	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/obs"
)

// Cache memoizes fingerprint database builds behind a key that captures
// everything a build depends on: the model's kernel parameters (field rect
// and minimum approach distance), the grid bounds and resolution, and the
// sample-point layout. Two trackers asking for the same database — the four
// tiles of a sharded field sharing one vantage, repeated trials over one
// scenario, a latency benchmark rebuilding a tracker per repeat — get the
// same immutable *DB back instead of paying the cells×samples kernel build
// again.
//
// A Cache is safe for concurrent use; concurrent requests for the same key
// build once (singleflight) and share the result. A nil *Cache is the
// disabled cache: Get on it builds directly, so callers thread an optional
// cache through one code path.
//
// Determinism: a DB is a pure function of its key, so substituting a cached
// build for a fresh one can never change search output. The key hashes the
// sample points; a hit additionally verifies the stored points match
// elementwise (a hash collision falls back to an uncached direct build
// rather than returning a wrong database).
//
// The cache is bounded: when inserting a new key would exceed the capacity,
// the least-recently-used entry is evicted first. Eviction never invalidates
// a database a tracker still holds — a *DB is immutable and shared by
// pointer, so dropping it from the cache only means the next request for
// that key rebuilds. Recency is updated on every Get, so the eviction order
// is a pure function of the Get sequence (deterministic for any serial
// caller), and since every build is a pure function of its key, no eviction
// decision can ever change search output.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[cacheKey]*cacheEntry
	lru     list.List // front = most recent; values are cacheKey
}

// cacheKey identifies one database build. The points themselves live in the
// entry (keys must be comparable); the key carries their count and hash.
type cacheKey struct {
	field   geom.Rect // kernel geometry
	minDist float64   // kernel regularization
	bounds  geom.Rect // grid coverage
	res     int       // grid resolution per axis
	n       int       // sample-point count
	hash    uint64    // FNV-1a over the sample-point coordinates
}

type cacheEntry struct {
	once   sync.Once
	points []geom.Point // build-time layout, kept for collision verification
	db     *DB
	err    error
	elem   *list.Element // position in the recency list (guarded by Cache.mu)
}

// DefaultCacheCapacity bounds how many databases a Cache retains when
// NewCache is given no explicit capacity. A 32×32 shard sweep touches up to
// 1024 distinct tile databases; the bound keeps only the hot working set
// live and lets the rest be rebuilt on demand.
const DefaultCacheCapacity = 256

// NewCache returns an empty database cache holding at most capacity
// databases (<= 0 means DefaultCacheCapacity); beyond that the
// least-recently-used database is evicted.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	c := &Cache{cap: capacity, entries: make(map[cacheKey]*cacheEntry)}
	c.lru.Init()
	return c
}

// Len returns how many databases the cache currently holds.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Get returns the database for (model, bounds, points, cfg), building it on
// first use and memoizing it for later callers. workers and m apply only to
// a build this call performs (a hit ignores them — the database contents do
// not depend on either). A nil receiver builds directly without caching. A
// non-nil metrics registry receives fingerprint.cache.hits and
// fingerprint.cache.misses alongside the build's own counters.
func (c *Cache) Get(model *fluxmodel.Model, bounds geom.Rect, points []geom.Point,
	cfg CoarseConfig, workers int, m *obs.Metrics) (*DB, error) {
	if c == nil || model == nil {
		return NewDBOver(model, bounds, points, cfg, workers, m)
	}
	cfg = cfg.WithDefaults()
	key := cacheKey{
		field:   model.Field(),
		minDist: model.MinDist(),
		bounds:  bounds,
		res:     cfg.GridRes,
		n:       len(points),
		hash:    hashPoints(points),
	}

	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.lru.MoveToFront(e.elem)
	} else {
		evicted := 0
		for len(c.entries) >= c.cap {
			// Evict the least-recently-used database. Live trackers holding
			// the evicted *DB are unaffected; only a future request for that
			// key pays a rebuild.
			oldest := c.lru.Back()
			if oldest == nil {
				break
			}
			delete(c.entries, oldest.Value.(cacheKey))
			c.lru.Remove(oldest)
			evicted++
		}
		e = &cacheEntry{points: append([]geom.Point(nil), points...)}
		e.elem = c.lru.PushFront(key)
		c.entries[key] = e
		if m != nil && evicted > 0 {
			m.Counter("fingerprint.cache.evictions").Add(0, uint64(evicted))
		}
	}
	c.mu.Unlock()

	if m != nil {
		if ok {
			m.Counter("fingerprint.cache.hits").Inc(0)
		} else {
			m.Counter("fingerprint.cache.misses").Inc(0)
		}
	}
	e.once.Do(func() {
		e.db, e.err = NewDBOver(model, bounds, points, cfg, workers, m)
	})
	if e.err != nil {
		return nil, e.err
	}
	if ok && !samePoints(e.points, points) {
		// FNV collision between distinct layouts: serve a correct fresh
		// build instead of the colliding entry.
		return NewDBOver(model, bounds, points, cfg, workers, m)
	}
	return e.db, nil
}

// hashPoints is FNV-1a over the raw coordinate bits, order-sensitive: the
// column layout of a database follows the point order, so permuted layouts
// must key differently.
func hashPoints(points []geom.Point) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	for _, p := range points {
		mix(math.Float64bits(p.X))
		mix(math.Float64bits(p.Y))
	}
	return h
}

func samePoints(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
