package fingerprint

import (
	"reflect"
	"sync"
	"testing"

	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/obs"
)

func cacheTestModel(t *testing.T) *fluxmodel.Model {
	t.Helper()
	m, err := fluxmodel.New(geom.Square(30), 1.2)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func cacheTestPoints() []geom.Point {
	return []geom.Point{
		geom.Pt(3, 4), geom.Pt(10, 20), geom.Pt(25, 7), geom.Pt(14, 14), geom.Pt(28, 28),
	}
}

func TestCacheHitReturnsSameDB(t *testing.T) {
	model := cacheTestModel(t)
	pts := cacheTestPoints()
	cfg := CoarseConfig{Enabled: true, GridRes: 6}
	c := NewCache(0)
	db1, err := c.Get(model, model.Field(), pts, cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := c.Get(model, model.Field(), pts, cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if db1 != db2 {
		t.Fatal("same key built twice")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}

	// A cached database must be indistinguishable from a fresh build.
	fresh, err := NewDBOver(model, model.Field(), pts, cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dbView(db1), dbView(fresh)) {
		t.Fatal("cached database differs from a fresh build")
	}
}

// dbView flattens the comparable content of a DB.
func dbView(db *DB) any {
	type view struct {
		Bounds  geom.Rect
		Res     int
		N       int
		Cols    []float64
		Norms   []float64
		Centers []geom.Point
	}
	return view{
		Bounds: db.Bounds(), Res: db.Res(), N: db.NumSamples(),
		Cols: db.cols, Norms: db.norms, Centers: db.centers,
	}
}

func TestCacheKeyDiscrimination(t *testing.T) {
	model := cacheTestModel(t)
	pts := cacheTestPoints()
	c := NewCache(0)
	base, err := c.Get(model, model.Field(), pts, CoarseConfig{GridRes: 6}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Different grid resolution.
	other, err := c.Get(model, model.Field(), pts, CoarseConfig{GridRes: 8}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if other == base {
		t.Fatal("GridRes not in the key")
	}
	// Different bounds (a tile of the field).
	tile := geom.NewRect(geom.Pt(0, 0), geom.Pt(15, 15))
	other, err = c.Get(model, tile, pts, CoarseConfig{GridRes: 6}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if other == base || other.Bounds() != tile {
		t.Fatal("bounds not in the key")
	}
	// Different point layout.
	pts2 := append([]geom.Point(nil), pts...)
	pts2[0] = geom.Pt(1, 1)
	other, err = c.Get(model, model.Field(), pts2, CoarseConfig{GridRes: 6}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if other == base {
		t.Fatal("points not in the key")
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
}

func TestCacheNilReceiverBuildsDirect(t *testing.T) {
	model := cacheTestModel(t)
	var c *Cache
	db1, err := c.Get(model, model.Field(), cacheTestPoints(), CoarseConfig{GridRes: 6}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := c.Get(model, model.Field(), cacheTestPoints(), CoarseConfig{GridRes: 6}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if db1 == db2 {
		t.Fatal("nil cache memoized")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache Len != 0")
	}
}

func TestCacheCountersAndCapacity(t *testing.T) {
	model := cacheTestModel(t)
	pts := cacheTestPoints()
	m := obs.New(1)
	c := NewCache(1)
	if _, err := c.Get(model, model.Field(), pts, CoarseConfig{GridRes: 6}, 1, m); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(model, model.Field(), pts, CoarseConfig{GridRes: 6}, 1, m); err != nil {
		t.Fatal(err)
	}
	// Cache full: a new key evicts the LRU entry and takes its place.
	if _, err := c.Get(model, model.Field(), pts, CoarseConfig{GridRes: 8}, 1, m); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (capacity)", c.Len())
	}
	hits := m.Counter("fingerprint.cache.hits").Value()
	misses := m.Counter("fingerprint.cache.misses").Value()
	evictions := m.Counter("fingerprint.cache.evictions").Value()
	if hits != 1 || misses != 2 || evictions != 1 {
		t.Fatalf("hits=%d misses=%d evictions=%d, want 1/2/1", hits, misses, evictions)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	model := cacheTestModel(t)
	pts := cacheTestPoints()
	m := obs.New(1)
	c := NewCache(2)
	get := func(res int) *DB {
		t.Helper()
		db, err := c.Get(model, model.Field(), pts, CoarseConfig{GridRes: res}, 1, m)
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	a := get(4) // cache: [a]
	b := get(5) // cache: [b a]
	_ = b
	// Touch a so b becomes least recently used.
	if got := get(4); got != a {
		t.Fatal("touching a rebuilt it")
	}
	get(6) // evicts b; cache: [c a]
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	// a survived the eviction (it was most recently used) …
	if got := get(4); got != a {
		t.Fatal("a was evicted despite being most recently used")
	}
	// … and b was the one dropped: asking again rebuilds a distinct DB.
	if got := get(5); got == b {
		t.Fatal("b still cached after eviction")
	}
	if evictions := m.Counter("fingerprint.cache.evictions").Value(); evictions != 2 {
		t.Fatalf("evictions = %d, want 2 (b first, then the GridRes=6 entry)", evictions)
	}
	// Eviction order is deterministic: replaying the same Get sequence on a
	// fresh cache evicts the same keys (observable as identical hit/miss
	// behavior, i.e. the same Len and the same survivors).
	c2 := NewCache(2)
	seq := []int{4, 5, 4, 6, 4, 5}
	var last *DB
	for _, res := range seq {
		db, err := c2.Get(model, model.Field(), pts, CoarseConfig{GridRes: res}, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		last = db
	}
	if c2.Len() != 2 {
		t.Fatalf("replay Len = %d, want 2", c2.Len())
	}
	if db, _ := c2.Get(model, model.Field(), pts, CoarseConfig{GridRes: 5}, 1, nil); db != last {
		t.Fatal("replay: GridRes=5 should be the most recent entry")
	}
}

func TestCacheConcurrentSingleflight(t *testing.T) {
	model := cacheTestModel(t)
	pts := cacheTestPoints()
	c := NewCache(0)
	const goroutines = 8
	dbs := make([]*DB, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			db, err := c.Get(model, model.Field(), pts, CoarseConfig{GridRes: 6}, 1, nil)
			if err != nil {
				t.Error(err)
				return
			}
			dbs[g] = db
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if dbs[g] != dbs[0] {
			t.Fatal("concurrent gets returned distinct databases")
		}
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}
