package fingerprint

import (
	"testing"

	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/obs"
	"fluxtrack/internal/rng"
)

func testModel(t *testing.T) *fluxmodel.Model {
	t.Helper()
	m, err := fluxmodel.New(geom.Square(30), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testPoints(n int, seed uint64, field geom.Rect) []geom.Point {
	src := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = src.InRect(field)
	}
	return pts
}

// TestDBColumnsMatchKernelVector pins each database column bit-for-bit to
// the per-sink kernel path the exact evaluator uses: the coarse stage
// scores the very signatures the fine stage would compute.
func TestDBColumnsMatchKernelVector(t *testing.T) {
	model := testModel(t)
	pts := testPoints(37, 5, model.Field())
	db, err := NewDB(model, pts, CoarseConfig{GridRes: 9}, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if db.Cells() != 81 || db.Res() != 9 || db.NumSamples() != len(pts) {
		t.Fatalf("db shape: cells=%d res=%d n=%d", db.Cells(), db.Res(), db.NumSamples())
	}
	col := make([]float64, len(pts))
	for c := 0; c < db.Cells(); c++ {
		model.KernelVectorInto(db.Center(c), pts, col)
		got := db.Column(c)
		for i, want := range col {
			if got[i] != want {
				t.Fatalf("cell %d sample %d: db %v != kernel %v", c, i, got[i], want)
			}
		}
	}
}

// TestDBWorkerInvariance: the database is byte-identical at any build
// worker count.
func TestDBWorkerInvariance(t *testing.T) {
	model := testModel(t)
	pts := testPoints(20, 9, model.Field())
	base, err := NewDB(model, pts, CoarseConfig{GridRes: 16}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8, 0} {
		db, err := NewDB(model, pts, CoarseConfig{GridRes: 16}, w, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range db.cols {
			if v != base.cols[i] {
				t.Fatalf("workers=%d: column arena differs at %d", w, i)
			}
		}
	}
}

// TestCellOf checks interior points map to their geometric cell and that
// points on exact cell boundaries (equidistant centers) resolve to the
// lowest cell index, the quadtree tie-break the shortlist determinism
// rests on.
func TestCellOf(t *testing.T) {
	model := testModel(t)
	pts := testPoints(10, 3, model.Field())
	db, err := NewDB(model, pts, CoarseConfig{GridRes: 3}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 3x3 grid over [0,30]²: cells are 10 units, centers at 5, 15, 25.
	if got := db.CellOf(geom.Pt(1, 1)); got != 0 {
		t.Fatalf("corner cell: got %d, want 0", got)
	}
	if got := db.CellOf(geom.Pt(16, 22)); got != 7 {
		t.Fatalf("cell (1,2): got %d, want 7", got)
	}
	// (10, 5) is equidistant from centers 0 and 1 → lowest index wins.
	if got := db.CellOf(geom.Pt(10, 5)); got != 0 {
		t.Fatalf("edge tie: got %d, want 0", got)
	}
	// (15, 15) is equidistant from centers 4 and its three neighbors
	// 5, 7, 8 → lowest index wins.
	if got := db.CellOf(geom.Pt(20, 20)); got != 4 {
		t.Fatalf("center tie: got %d, want 4", got)
	}
	// Outside the field clamps to the nearest boundary cell.
	if got := db.CellOf(geom.Pt(-5, 40)); got != 6 {
		t.Fatalf("outside: got %d, want 6", got)
	}
}

// TestNewDBErrorsAndDefaults covers the constructor contract.
func TestNewDBErrorsAndDefaults(t *testing.T) {
	model := testModel(t)
	pts := testPoints(4, 1, model.Field())
	if _, err := NewDB(nil, pts, CoarseConfig{}, 1, nil); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := NewDB(model, nil, CoarseConfig{}, 1, nil); err == nil {
		t.Fatal("empty points accepted")
	}
	if _, err := NewDB(model, pts, CoarseConfig{GridRes: MaxGridRes + 1}, 1, nil); err == nil {
		t.Fatal("oversized grid accepted")
	}
	m := obs.New(1)
	db, err := NewDB(model, pts, CoarseConfig{}, 1, m)
	if err != nil {
		t.Fatal(err)
	}
	if db.Res() != DefaultGridRes || db.Cells() != DefaultGridRes*DefaultGridRes {
		t.Fatalf("defaults not applied: res=%d", db.Res())
	}
	if got := m.Counter("fingerprint.db.builds").Value(); got != 1 {
		t.Fatalf("builds counter = %d, want 1", got)
	}
	if got := m.Counter("fingerprint.db.cells").Value(); got != uint64(db.Cells()) {
		t.Fatalf("cells counter = %d, want %d", got, db.Cells())
	}
	cfg := CoarseConfig{}.WithDefaults()
	if cfg.GridRes != DefaultGridRes || cfg.TopK != DefaultTopK {
		t.Fatalf("WithDefaults = %+v", cfg)
	}
}
