// Package fingerprint precomputes the coarse stage of the coarse-to-fine
// candidate search: a database of kernel flux-signature columns over a
// regular grid of cells covering the deployment field. Each cell stores the
// theoretical signature a mobile sink at the cell center would leave on the
// sniffed nodes — exactly the kernel column g(center, p_i) the exact NLS
// evaluator (internal/fit) would compute for a candidate at that position.
// At search time the fit layer scores every cell against the observation
// with a matched filter and shortlists only the candidates whose cells
// score highest, running the expensive Gram/NNLS evaluation on the
// shortlist alone.
//
// The database is a pure function of (model, sample points, grid
// resolution): columns are filled by the batched fluxmodel.KernelMatrixInto
// into index-disjoint arena slots, so builds are worker-count-invariant,
// and cell lookup goes through a geom.Quadtree whose (distance, id)
// tie-break makes candidate-to-cell assignment deterministic even for
// positions equidistant from several centers (see DESIGN.md §6.5).
package fingerprint

import (
	"errors"
	"fmt"

	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/obs"
	"fluxtrack/internal/par"
)

// CoarseConfig configures the coarse-to-fine prestage. The zero value
// (Enabled false) leaves the exact search path untouched.
type CoarseConfig struct {
	// Enabled turns the prestage on. Off, no database is built and every
	// search runs the exact path over all candidates.
	Enabled bool
	// GridRes is the fingerprint grid resolution per axis: the field is
	// covered by GridRes×GridRes cells (default 24, i.e. 576 signature
	// columns on the paper's 30×30 field — cells of 1.25 units, well under
	// the communication radius).
	GridRes int
	// TopK is how many candidates per user survive the coarse shortlist
	// (default 64). TopK at or above the candidate count degrades to the
	// exact search: the shortlist is then the full candidate list and the
	// result is byte-identical to the un-prestaged search.
	TopK int
}

// Default grid parameters; see CoarseConfig.
const (
	DefaultGridRes = 24
	DefaultTopK    = 64
	// MaxGridRes bounds the database size: resolutions beyond this point
	// cost more to score than the exact evaluations they avoid.
	MaxGridRes = 512
)

// WithDefaults fills zero fields with the package defaults.
func (c CoarseConfig) WithDefaults() CoarseConfig {
	if c.GridRes <= 0 {
		c.GridRes = DefaultGridRes
	}
	if c.TopK <= 0 {
		c.TopK = DefaultTopK
	}
	return c
}

// DB is a fingerprint database: one kernel signature column per grid cell,
// plus a quadtree over the cell centers for nearest-cell lookup. A DB is
// immutable after NewDB and safe for concurrent readers.
type DB struct {
	field   geom.Rect
	res     int
	centers []geom.Point
	cols    []float64 // cells × numSamples, row-major per cell
	norms   []float64 // per-cell unweighted ‖column‖², cached at build time
	n       int       // samples per column
	qt      *geom.Quadtree
}

// NewDB builds the fingerprint database for the given model and sniffed
// sample points: GridRes×GridRes cell centers over the model's field, each
// with its kernel signature column over points. Build work shards across up
// to workers goroutines (0 means GOMAXPROCS) into index-disjoint column
// slots, so the database contents never depend on the worker count. A
// non-nil metrics registry receives the fingerprint.db.builds and
// fingerprint.db.cells work counters.
func NewDB(model *fluxmodel.Model, points []geom.Point, cfg CoarseConfig, workers int, m *obs.Metrics) (*DB, error) {
	if model == nil {
		return nil, errors.New("fingerprint: nil model")
	}
	return NewDBOver(model, model.Field(), points, cfg, workers, m)
}

// NewDBOver is NewDB with the cell grid laid over an explicit bounds
// rectangle instead of the model's whole field: GridRes×GridRes cells tile
// bounds, while the kernel itself still evaluates against the full field
// geometry. A sharded field (internal/shard) uses this to give each tile a
// database covering only the tile's own ground — same resolution, a quarter
// of the cells on a 2×2 grid. Bounds must lie inside the model field and
// have positive extent.
func NewDBOver(model *fluxmodel.Model, bounds geom.Rect, points []geom.Point, cfg CoarseConfig, workers int, m *obs.Metrics) (*DB, error) {
	cfg = cfg.WithDefaults()
	if model == nil {
		return nil, errors.New("fingerprint: nil model")
	}
	if len(points) == 0 {
		return nil, errors.New("fingerprint: no sample points")
	}
	if cfg.GridRes > MaxGridRes {
		return nil, fmt.Errorf("fingerprint: grid resolution %d exceeds %d", cfg.GridRes, MaxGridRes)
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		return nil, fmt.Errorf("fingerprint: degenerate bounds %v", bounds)
	}
	if f := model.Field(); !f.Contains(bounds.Min) || !f.Contains(bounds.Max) {
		return nil, fmt.Errorf("fingerprint: bounds %v outside model field %v", bounds, f)
	}
	field := bounds
	res := cfg.GridRes
	cells := res * res
	n := len(points)
	db := &DB{
		field:   field,
		res:     res,
		centers: make([]geom.Point, cells),
		cols:    make([]float64, cells*n),
		norms:   make([]float64, cells),
		n:       n,
		qt:      geom.NewQuadtree(field),
	}
	cw := field.Width() / float64(res)
	ch := field.Height() / float64(res)
	for c := range db.centers {
		ix, iy := c%res, c/res
		db.centers[c] = geom.Pt(
			field.Min.X+(float64(ix)+0.5)*cw,
			field.Min.Y+(float64(iy)+0.5)*ch,
		)
	}
	// Fill the columns in contiguous chunks through the batched kernel:
	// each chunk is a pure function of its cell range, written into
	// index-disjoint arena slots.
	const chunk = 32
	chunks := (cells + chunk - 1) / chunk
	if err := par.For(chunks, workers, func(_, ci int) error {
		lo := ci * chunk
		hi := min(lo+chunk, cells)
		model.KernelMatrixInto(db.centers[lo:hi], points, db.cols[lo*n:hi*n])
		for c := lo; c < hi; c++ {
			var norm2 float64
			for _, v := range db.cols[c*n : (c+1)*n] {
				norm2 += v * v
			}
			db.norms[c] = norm2
		}
		return nil
	}); err != nil {
		return nil, err
	}
	// The quadtree over cell centers resolves candidate positions to cells;
	// ids are the cell indices, so equidistant centers tie-break to the
	// lowest cell index.
	for c, p := range db.centers {
		db.qt.Insert(c, p)
	}
	if m != nil {
		m.Counter("fingerprint.db.builds").Inc(0)
		m.Counter("fingerprint.db.cells").Add(0, uint64(cells))
	}
	return db, nil
}

// Cells returns the number of grid cells (GridRes²).
func (db *DB) Cells() int { return len(db.centers) }

// Bounds returns the rectangle the cell grid tiles: the model field for a
// NewDB database, the explicit bounds for a NewDBOver one.
func (db *DB) Bounds() geom.Rect { return db.field }

// Res returns the per-axis grid resolution.
func (db *DB) Res() int { return db.res }

// NumSamples returns the number of sample points each column covers — the
// full (unmasked) sniffed-node count the database was built over.
func (db *DB) NumSamples() int { return db.n }

// Center returns the center position of cell c.
func (db *DB) Center(c int) geom.Point { return db.centers[c] }

// Column returns cell c's signature column: the kernel vector
// g(Center(c), p_i) over the build-time sample points. The returned slice
// aliases the database arena and must not be modified.
func (db *DB) Column(c int) []float64 {
	return db.cols[c*db.n : (c+1)*db.n : (c+1)*db.n]
}

// ColumnNorm2 returns the cached unweighted squared norm of cell c's
// column — the sequential sum of squares over the column, bit-identical to
// accumulating it inline during a scoring pass. Weighted or masked scoring
// cannot use the cache (the effective column changes per problem).
func (db *DB) ColumnNorm2(c int) float64 { return db.norms[c] }

// CellOf returns the cell whose center is nearest to p, resolved through
// the quadtree with its (distance, id) tie-break: positions equidistant
// from several centers — candidates on exact cell edges — always map to the
// lowest cell index, which keeps shortlists deterministic.
func (db *DB) CellOf(p geom.Point) int {
	nb, ok := db.qt.Nearest(p)
	if !ok {
		return 0 // unreachable: NewDB always inserts at least one cell
	}
	return nb.ID
}
