package routing

import (
	"testing"

	"fluxtrack/internal/deploy"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/network"
	"fluxtrack/internal/rng"
)

func lineNetwork(t *testing.T) *network.Network {
	t.Helper()
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0), geom.Pt(4, 0),
	}
	n, err := network.New(geom.NewRect(geom.Pt(0, 0), geom.Pt(4, 1)), pts, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func paperNetwork(t testing.TB, seed uint64) *network.Network {
	t.Helper()
	src := rng.New(seed)
	pts, err := deploy.Generate(deploy.Config{
		Field: geom.Square(30), N: 900, Kind: deploy.PerturbedGrid,
	}, src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := network.New(geom.Square(30), pts, 2.4)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuildValidation(t *testing.T) {
	n := lineNetwork(t)
	if _, err := Build(n, -1); err == nil {
		t.Error("negative root must error")
	}
	if _, err := Build(n, 5); err == nil {
		t.Error("out-of-range root must error")
	}
}

func TestLineTreeStructure(t *testing.T) {
	n := lineNetwork(t)
	tr, err := Build(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantParent := []int{-1, 0, 1, 2, 3}
	wantSize := []int{5, 4, 3, 2, 1}
	for i := range wantParent {
		if tr.Parent[i] != wantParent[i] {
			t.Errorf("Parent[%d] = %d, want %d", i, tr.Parent[i], wantParent[i])
		}
		if tr.SubtreeSize[i] != wantSize[i] {
			t.Errorf("SubtreeSize[%d] = %d, want %d", i, tr.SubtreeSize[i], wantSize[i])
		}
	}
	if tr.Reached() != 5 {
		t.Errorf("Reached = %d, want 5", tr.Reached())
	}
}

func TestLineTreeMiddleRoot(t *testing.T) {
	n := lineNetwork(t)
	tr, err := Build(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Root subtree covers everything; each arm decays 2, 1.
	if tr.SubtreeSize[2] != 5 {
		t.Errorf("root subtree = %d, want 5", tr.SubtreeSize[2])
	}
	if tr.SubtreeSize[1] != 2 || tr.SubtreeSize[3] != 2 {
		t.Errorf("arm subtrees = %d, %d, want 2, 2", tr.SubtreeSize[1], tr.SubtreeSize[3])
	}
	if tr.SubtreeSize[0] != 1 || tr.SubtreeSize[4] != 1 {
		t.Errorf("leaf subtrees = %d, %d, want 1, 1", tr.SubtreeSize[0], tr.SubtreeSize[4])
	}
}

func TestTreeInvariants(t *testing.T) {
	n := paperNetwork(t, 42)
	tr, err := Build(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Invariant 1: root subtree size equals reached count.
	if tr.SubtreeSize[tr.Root] != tr.Reached() {
		t.Errorf("root subtree %d != reached %d", tr.SubtreeSize[tr.Root], tr.Reached())
	}
	// Invariant 2: every non-root reached node has a parent one hop closer.
	for i := range tr.Parent {
		if i == tr.Root || tr.Hops[i] < 0 {
			continue
		}
		p := tr.Parent[i]
		if p < 0 {
			t.Fatalf("reached node %d has no parent", i)
		}
		if tr.Hops[p] != tr.Hops[i]-1 {
			t.Fatalf("node %d (hops %d) has parent %d (hops %d)", i, tr.Hops[i], p, tr.Hops[p])
		}
	}
	// Invariant 3: parent subtree is strictly larger than child subtree.
	for i, p := range tr.Parent {
		if p >= 0 && tr.SubtreeSize[p] <= tr.SubtreeSize[i] {
			t.Fatalf("subtree monotonicity violated at %d -> %d", i, p)
		}
	}
	// Invariant 4: sum of subtree sizes at each hop ring equals the number
	// of nodes at or beyond that ring (conservation of relayed data).
	maxHop := 0
	for _, h := range tr.Hops {
		if h > maxHop {
			maxHop = h
		}
	}
	for h := 1; h <= maxHop; h++ {
		ringSum, beyond := 0, 0
		for i, hi := range tr.Hops {
			if hi == h {
				ringSum += tr.SubtreeSize[i]
			}
			if hi >= h {
				beyond++
			}
		}
		if ringSum != beyond {
			t.Fatalf("hop %d: ring subtree sum %d != nodes beyond %d", h, ringSum, beyond)
		}
	}
}

func TestPathToRoot(t *testing.T) {
	n := lineNetwork(t)
	tr, err := Build(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := tr.PathToRoot(4)
	want := []int{4, 3, 2, 1, 0}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if got := tr.PathToRoot(-1); got != nil {
		t.Errorf("PathToRoot(-1) = %v, want nil", got)
	}
}

func TestPathToRootUnreached(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(9, 9)}
	n, err := network.New(geom.Square(10), pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Build(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.PathToRoot(1); got != nil {
		t.Errorf("PathToRoot(unreached) = %v, want nil", got)
	}
	if tr.SubtreeSize[1] != 0 {
		t.Errorf("unreached SubtreeSize = %d, want 0", tr.SubtreeSize[1])
	}
	if tr.Reached() != 1 {
		t.Errorf("Reached = %d, want 1", tr.Reached())
	}
}

func TestFlux(t *testing.T) {
	n := lineNetwork(t)
	tr, err := Build(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	flux := tr.Flux(2)
	want := []float64{10, 8, 6, 4, 2}
	for i := range want {
		if flux[i] != want[i] {
			t.Errorf("flux[%d] = %v, want %v", i, flux[i], want[i])
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	n := paperNetwork(t, 7)
	a, err := Build(n, 13)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(n, 13)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Parent {
		if a.Parent[i] != b.Parent[i] {
			t.Fatalf("non-deterministic parent at %d", i)
		}
	}
}

func BenchmarkBuild900(b *testing.B) {
	n := paperNetwork(b, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(n, i%n.Len()); err != nil {
			b.Fatal(err)
		}
	}
}

// treeInvariants asserts the structural contract every aggregation tree must
// satisfy regardless of how parents were chosen.
func treeInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	if tr.SubtreeSize[tr.Root] != tr.Reached() {
		t.Errorf("root subtree %d != reached %d", tr.SubtreeSize[tr.Root], tr.Reached())
	}
	for i := range tr.Parent {
		if i == tr.Root || tr.Hops[i] < 0 {
			continue
		}
		p := tr.Parent[i]
		if p < 0 {
			t.Fatalf("reached node %d has no parent", i)
		}
		if tr.Hops[p] != tr.Hops[i]-1 {
			t.Fatalf("node %d (hops %d) has parent %d (hops %d)", i, tr.Hops[i], p, tr.Hops[p])
		}
	}
	for i, p := range tr.Parent {
		if p >= 0 && tr.SubtreeSize[p] <= tr.SubtreeSize[i] {
			t.Fatalf("subtree monotonicity violated at %d -> %d", i, p)
		}
	}
}

// TestBuildRandomizedZeroJitter: jitter 0 must reproduce Build exactly — the
// countermeasure off-switch is the identity.
func TestBuildRandomizedZeroJitter(t *testing.T) {
	n := paperNetwork(t, 11)
	plain, err := Build(n, 5)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := BuildRandomized(n, 5, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Parent {
		if plain.Parent[i] != rnd.Parent[i] {
			t.Fatalf("jitter 0 parent[%d] = %d, want Build's %d", i, rnd.Parent[i], plain.Parent[i])
		}
	}
}

// TestBuildRandomizedInvariants: full route randomization still produces a
// valid shortest-path aggregation tree — only the choice among equal-hop
// parents changes, never the hop counts.
func TestBuildRandomizedInvariants(t *testing.T) {
	n := paperNetwork(t, 11)
	plain, err := Build(n, 5)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := BuildRandomized(n, 5, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	treeInvariants(t, rnd)
	diff := 0
	for i := range plain.Parent {
		if plain.Hops[i] != rnd.Hops[i] {
			t.Fatalf("node %d: hops %d != Build's %d (randomization must keep shortest paths)",
				i, rnd.Hops[i], plain.Hops[i])
		}
		if plain.Parent[i] != rnd.Parent[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("jitter 1 changed no parent choices on a 900-node network")
	}
}

// TestBuildRandomizedDeterminism: same seed, same tree; different seed,
// different tree. The draws are hashed per (seed, root, node), so this holds
// at any call order.
func TestBuildRandomizedDeterminism(t *testing.T) {
	n := paperNetwork(t, 11)
	a, err := BuildRandomized(n, 5, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildRandomized(n, 5, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	c, err := BuildRandomized(n, 5, 0.5, 43)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range a.Parent {
		if a.Parent[i] != b.Parent[i] {
			t.Fatalf("same-seed trees differ at node %d", i)
		}
		if a.Parent[i] != c.Parent[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("seeds 42 and 43 produced identical randomized trees")
	}
}
