// Package routing builds the data-collection trees the paper assumes
// (§3.A): when a mobile user initiates a collection, a tree rooted at its
// sink spans the network and every intermediate node relays the data of its
// whole subtree. The traffic flux at a node is therefore proportional to its
// subtree size.
//
// Trees are shortest-path collection trees: each node picks as parent its
// geometrically nearest neighbor one hop closer to the sink (ties toward
// the lower index), so construction is fully deterministic. SubtreeSize is
// accumulated bottom-up in one pass and Tree.Flux scales it by a per-user
// traffic stretch. The traffic layer (internal/traffic) caches one tree per
// sink node, and the observability layer counts those builds and cache hits
// (traffic.tree.builds / traffic.tree.hits).
package routing

import (
	"fmt"
	"sort"

	"fluxtrack/internal/network"
)

// Tree is a data-collection tree rooted at a sink node.
type Tree struct {
	Root   int   // index of the sink node
	Parent []int // Parent[i] is the tree parent of node i, -1 for root/unreached
	Hops   []int // Hops[i] is the hop distance from the root, -1 if unreached
	// SubtreeSize[i] counts the nodes in the subtree rooted at i (including
	// i itself); 0 for unreached nodes. With unit data generation per node,
	// the traffic flux relayed through node i is exactly SubtreeSize[i].
	SubtreeSize []int
}

// Build constructs a shortest-path collection tree rooted at root over the
// network. Among the neighbors one hop closer to the root, each node picks
// the geometrically nearest one as its parent (ties break toward the lower
// index), mirroring the greedy parent selection of practical collection
// protocols and keeping the construction deterministic.
func Build(n *network.Network, root int) (*Tree, error) {
	if root < 0 || root >= n.Len() {
		return nil, fmt.Errorf("routing: root %d out of range [0, %d)", root, n.Len())
	}
	hops := n.HopsFrom(root)
	parent := make([]int, n.Len())
	for i := range parent {
		parent[i] = -1
	}
	for i := 0; i < n.Len(); i++ {
		if i == root || hops[i] < 0 {
			continue
		}
		best := -1
		var bestDist float64
		for _, j := range n.Neighbors(i) {
			if hops[j] != hops[i]-1 {
				continue
			}
			d := n.Pos(i).Dist(n.Pos(int(j)))
			if best < 0 || d < bestDist || (d == bestDist && int(j) < best) {
				best, bestDist = int(j), d
			}
		}
		parent[i] = best
	}
	t := &Tree{Root: root, Parent: parent, Hops: hops}
	t.computeSubtreeSizes()
	return t, nil
}

// computeSubtreeSizes accumulates subtree sizes leaf-to-root by processing
// nodes in decreasing hop order.
func (t *Tree) computeSubtreeSizes() {
	n := len(t.Parent)
	t.SubtreeSize = make([]int, n)
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if t.Hops[i] >= 0 {
			order = append(order, i)
			t.SubtreeSize[i] = 1
		}
	}
	sort.Slice(order, func(a, b int) bool { return t.Hops[order[a]] > t.Hops[order[b]] })
	for _, i := range order {
		if p := t.Parent[i]; p >= 0 {
			t.SubtreeSize[p] += t.SubtreeSize[i]
		}
	}
}

// Reached returns the number of nodes covered by the tree (including the
// root itself).
func (t *Tree) Reached() int {
	count := 0
	for _, h := range t.Hops {
		if h >= 0 {
			count++
		}
	}
	return count
}

// PathToRoot returns the node indices from node up to (and including) the
// root. It returns nil when node is not covered by the tree.
func (t *Tree) PathToRoot(node int) []int {
	if node < 0 || node >= len(t.Hops) || t.Hops[node] < 0 {
		return nil
	}
	path := make([]int, 0, t.Hops[node]+1)
	for v := node; v >= 0; v = t.Parent[v] {
		path = append(path, v)
		if v == t.Root {
			break
		}
	}
	return path
}

// Flux returns the per-node traffic flux induced by this tree when every
// covered node generates stretch units of data: flux[i] = stretch *
// SubtreeSize[i]. Nodes outside the tree carry zero flux.
func (t *Tree) Flux(stretch float64) []float64 {
	out := make([]float64, len(t.SubtreeSize))
	for i, s := range t.SubtreeSize {
		out[i] = stretch * float64(s)
	}
	return out
}
