// Package routing builds the data-collection trees the paper assumes
// (§3.A): when a mobile user initiates a collection, a tree rooted at its
// sink spans the network and every intermediate node relays the data of its
// whole subtree. The traffic flux at a node is therefore proportional to its
// subtree size.
//
// Trees are shortest-path collection trees: each node picks as parent its
// geometrically nearest neighbor one hop closer to the sink (ties toward
// the lower index), so construction is fully deterministic. SubtreeSize is
// accumulated bottom-up in one pass and Tree.Flux scales it by a per-user
// traffic stretch. The traffic layer (internal/traffic) caches one tree per
// sink node, and the observability layer counts those builds and cache hits
// (traffic.tree.builds / traffic.tree.hits).
package routing

import (
	"fmt"
	"sort"

	"fluxtrack/internal/network"
)

// Tree is a data-collection tree rooted at a sink node.
type Tree struct {
	Root   int   // index of the sink node
	Parent []int // Parent[i] is the tree parent of node i, -1 for root/unreached
	Hops   []int // Hops[i] is the hop distance from the root, -1 if unreached
	// SubtreeSize[i] counts the nodes in the subtree rooted at i (including
	// i itself); 0 for unreached nodes. With unit data generation per node,
	// the traffic flux relayed through node i is exactly SubtreeSize[i].
	SubtreeSize []int
}

// Build constructs a shortest-path collection tree rooted at root over the
// network. Among the neighbors one hop closer to the root, each node picks
// the geometrically nearest one as its parent (ties break toward the lower
// index), mirroring the greedy parent selection of practical collection
// protocols and keeping the construction deterministic.
func Build(n *network.Network, root int) (*Tree, error) {
	if root < 0 || root >= n.Len() {
		return nil, fmt.Errorf("routing: root %d out of range [0, %d)", root, n.Len())
	}
	hops := n.HopsFrom(root)
	parent := make([]int, n.Len())
	for i := range parent {
		parent[i] = -1
	}
	for i := 0; i < n.Len(); i++ {
		if i == root || hops[i] < 0 {
			continue
		}
		best := -1
		var bestDist float64
		for _, j := range n.Neighbors(i) {
			if hops[j] != hops[i]-1 {
				continue
			}
			d := n.Pos(i).Dist(n.Pos(int(j)))
			if best < 0 || d < bestDist || (d == bestDist && int(j) < best) {
				best, bestDist = int(j), d
			}
		}
		parent[i] = best
	}
	t := &Tree{Root: root, Parent: parent, Hops: hops}
	t.computeSubtreeSizes()
	return t, nil
}

// BuildRandomized constructs a collection tree like Build, but each node,
// with probability jitter, picks its parent uniformly among all neighbors
// one hop closer to the root instead of the geometrically nearest one. This
// is the route-randomization countermeasure of the paper's §6 future work:
// the tree stays shortest-path (hop counts are unchanged, so latency is
// preserved), but subtree sizes — and with them the flux fingerprint the
// adversary's model is calibrated against — deviate from the nearest-parent
// shape the attacker assumes.
//
// Every choice is a pure hash of (seed, root, node), never a shared stream,
// so a given (network, root, jitter, seed) always yields the same tree
// regardless of build order or worker count. jitter <= 0 reduces exactly to
// Build; jitter >= 1 randomizes every parent choice.
func BuildRandomized(n *network.Network, root int, jitter float64, seed uint64) (*Tree, error) {
	if jitter <= 0 {
		return Build(n, root)
	}
	if root < 0 || root >= n.Len() {
		return nil, fmt.Errorf("routing: root %d out of range [0, %d)", root, n.Len())
	}
	hops := n.HopsFrom(root)
	parent := make([]int, n.Len())
	for i := range parent {
		parent[i] = -1
	}
	var closer []int
	for i := 0; i < n.Len(); i++ {
		if i == root || hops[i] < 0 {
			continue
		}
		closer = closer[:0]
		best := -1
		var bestDist float64
		for _, j := range n.Neighbors(i) {
			if hops[j] != hops[i]-1 {
				continue
			}
			closer = append(closer, int(j))
			d := n.Pos(i).Dist(n.Pos(int(j)))
			if best < 0 || d < bestDist || (d == bestDist && int(j) < best) {
				best, bestDist = int(j), d
			}
		}
		if len(closer) > 1 && routeDraw(seed, root, i, 0) < jitter {
			sort.Ints(closer)
			best = closer[int(routeDraw(seed, root, i, 1)*float64(len(closer)))]
		}
		parent[i] = best
	}
	t := &Tree{Root: root, Parent: parent, Hops: hops}
	t.computeSubtreeSizes()
	return t, nil
}

// routeMix is the splitmix64 finalizer used for the randomized parent
// choices (the same hash discipline as internal/fault's deterministic
// draws: position-keyed, stream-free).
func routeMix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// routeDraw returns a uniform [0, 1) draw keyed purely by
// (seed, root, node, salt).
func routeDraw(seed uint64, root, node, salt int) float64 {
	z := routeMix(seed ^ routeMix(uint64(root)+0x51ed27) ^ routeMix(uint64(node)<<8|uint64(salt)))
	return float64(z>>11) / (1 << 53)
}

// computeSubtreeSizes accumulates subtree sizes leaf-to-root by processing
// nodes in decreasing hop order.
func (t *Tree) computeSubtreeSizes() {
	n := len(t.Parent)
	t.SubtreeSize = make([]int, n)
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if t.Hops[i] >= 0 {
			order = append(order, i)
			t.SubtreeSize[i] = 1
		}
	}
	sort.Slice(order, func(a, b int) bool { return t.Hops[order[a]] > t.Hops[order[b]] })
	for _, i := range order {
		if p := t.Parent[i]; p >= 0 {
			t.SubtreeSize[p] += t.SubtreeSize[i]
		}
	}
}

// Reached returns the number of nodes covered by the tree (including the
// root itself).
func (t *Tree) Reached() int {
	count := 0
	for _, h := range t.Hops {
		if h >= 0 {
			count++
		}
	}
	return count
}

// PathToRoot returns the node indices from node up to (and including) the
// root. It returns nil when node is not covered by the tree.
func (t *Tree) PathToRoot(node int) []int {
	if node < 0 || node >= len(t.Hops) || t.Hops[node] < 0 {
		return nil
	}
	path := make([]int, 0, t.Hops[node]+1)
	for v := node; v >= 0; v = t.Parent[v] {
		path = append(path, v)
		if v == t.Root {
			break
		}
	}
	return path
}

// Flux returns the per-node traffic flux induced by this tree when every
// covered node generates stretch units of data: flux[i] = stretch *
// SubtreeSize[i]. Nodes outside the tree carry zero flux.
func (t *Tree) Flux(stretch float64) []float64 {
	out := make([]float64, len(t.SubtreeSize))
	for i, s := range t.SubtreeSize {
		out[i] = stretch * float64(s)
	}
	return out
}
