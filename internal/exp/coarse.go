package exp

import (
	"fmt"

	"fluxtrack/internal/fit"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/stats"
)

// FigCoarse quantifies the accuracy cost of the coarse-to-fine candidate
// search (internal/fingerprint, fit.Coarse) as the shortlist size TopK
// shrinks. It is an extension figure — the paper always searches every
// candidate — and doubles as the registry-level differential harness for the
// prestage: each trial runs instant localization twice on identical
// candidate draws, once exact and once shortlisted, and compares the top-1
// composition position for position. The final row runs with TopK at the
// full candidate count, where the shortlist is the identity and agreement
// must be exactly 100% — anything else is a determinism bug, not noise.
//
// Columns: per-user shortlist size, mean coarse localization error (2 users,
// 90 sampling nodes), the fraction of (trial, user) top-1 positions that
// match the exact search bit for bit, and the final-round tracking error of
// a coarse tracker on the standard two-user random-walk scenario.
func FigCoarse(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "figCoarse",
		Title:   "Coarse-to-fine search: accuracy vs shortlist size (2 users, 90 nodes)",
		Paper:   "extension: the paper searches all candidates; full-K row must agree 100%",
		Columns: []string{"topK", "loc_err", "top1_agree", "track_err"},
	}
	topKs := []int{16, 32, 64, 128, 0} // 0 means full (TopK = candidate count)
	cells := make([]int, len(topKs))
	for i, k := range topKs {
		cells[i] = k
	}

	type coarseTrial struct {
		locErr   float64
		agree    float64
		trackErr float64
	}
	res, err := runCells(cfg, "figCoarse", cells, func(ci, trial int, seed uint64) (coarseTrial, error) {
		topK := topKs[ci]
		sc := cfg.scenario(defaultScenarioCfg(), seed)
		src := rng.New(seed + 17)
		sniffer, err := sc.NewSnifferCount(90, src)
		if err != nil {
			return coarseTrial{}, err
		}
		truths := []geom.Point{src.InRect(sc.Field()), src.InRect(sc.Field())}
		stretches := []float64{src.Uniform(1, 3), src.Uniform(1, 3)}
		if _, err := sniffer.Observe(activeUsers(truths, stretches), 0, src); err != nil {
			return coarseTrial{}, err
		}
		db, err := sniffer.NewFingerprintDB(cfg.Coarse, cfg.Workers, cfg.Metrics)
		if err != nil {
			return coarseTrial{}, err
		}

		// Exact and coarse localization consume candidate draws from twin
		// sources seeded identically, so both searches rank the same
		// candidate sets and their top-1 positions are directly comparable.
		candSeed := seed + 99
		opts := cfg.searchOpts(cfg.Samples, seed+1)
		exact, err := sniffer.Localize(2, opts, rng.New(candSeed))
		if err != nil {
			return coarseTrial{}, err
		}
		kk := topK
		if kk <= 0 {
			kk = cfg.Samples
		}
		opts.Coarse = &fit.Coarse{DB: db, TopK: kk}
		coarse, err := sniffer.Localize(2, opts, rng.New(candSeed))
		if err != nil {
			return coarseTrial{}, err
		}
		out := coarseTrial{
			locErr: stats.Mean(matchErrors(coarse.Best[0].Positions, truths)),
		}
		for j, pos := range exact.Best[0].Positions {
			if coarse.Best[0].Positions[j] == pos {
				out.agree++
			}
		}
		out.agree /= float64(len(exact.Best[0].Positions))

		// Tracking with the same shortlist size: the tracker builds its own
		// database (core.TrackerConfig.Coarse) since its candidates are the
		// SMC prediction samples, TrackN per user per round.
		tcfg := cfg
		tcfg.Coarse = cfg.Coarse
		tcfg.Coarse.Enabled = true
		tcfg.Coarse.TopK = topK
		if topK <= 0 {
			tcfg.Coarse.TopK = cfg.TrackN
		}
		trajs, err := randomWalks(sc, 2, 4, cfg.Rounds, src)
		if err != nil {
			return coarseTrial{}, err
		}
		perRound, err := trackTrial(tcfg, sc, trajs, 90, 5, false, src)
		if err != nil {
			return coarseTrial{}, err
		}
		out.trackErr = perRound[len(perRound)-1]
		return out, nil
	})
	if err != nil {
		return Table{}, err
	}

	for ci, topK := range topKs {
		label := "full"
		if topK > 0 {
			label = fmt.Sprintf("%d", topK)
		}
		var loc, agree, track []float64
		for _, tr := range res[ci] {
			loc = append(loc, tr.locErr)
			agree = append(agree, tr.agree)
			track = append(track, tr.trackErr)
		}
		t.Rows = append(t.Rows, []string{
			label,
			f2(stats.Mean(loc)),
			fmt.Sprintf("%.1f%%", 100*stats.Mean(agree)),
			f2(stats.Mean(track)),
		})
	}
	return t, nil
}
