package exp

import (
	"strconv"
	"strings"
	"testing"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/mobility"
	"fluxtrack/internal/rng"
)

func TestTableRender(t *testing.T) {
	tbl := Table{
		ID:      "demo",
		Title:   "demo table",
		Paper:   "paper shape",
		Columns: []string{"a", "long_column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tbl.Render()
	for _, want := range []string{"demo", "paper shape", "long_column", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	d := DefaultConfig()
	if c.Trials != d.Trials || c.Samples != d.Samples || c.TrackN != d.TrackN {
		t.Errorf("withDefaults mismatch: %+v vs %+v", c, d)
	}
	q := QuickConfig()
	if q.Trials >= d.Trials || q.Samples >= d.Samples {
		t.Error("QuickConfig is not smaller than DefaultConfig")
	}
}

func TestTrialSeedDistinct(t *testing.T) {
	c := DefaultConfig()
	seen := map[uint64]string{}
	for _, exp := range []string{"a", "b"} {
		for cell := 0; cell < 3; cell++ {
			for trial := 0; trial < 3; trial++ {
				s := c.trialSeed(exp, cell, trial)
				key := exp + strconv.Itoa(cell) + strconv.Itoa(trial)
				if prev, ok := seen[s]; ok {
					t.Fatalf("seed collision between %s and %s", prev, key)
				}
				seen[s] = key
			}
		}
	}
}

func TestMatchErrors(t *testing.T) {
	estimates := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 10)}
	truths := []geom.Point{geom.Pt(9, 9), geom.Pt(1, 1)}
	errs := matchErrors(estimates, truths)
	if len(errs) != 2 {
		t.Fatalf("got %d errors, want 2", len(errs))
	}
	for _, e := range errs {
		if e > 1.5 {
			t.Errorf("greedy matching failed: error %v", e)
		}
	}
	// More estimates than truths: extra estimates are dropped.
	errs = matchErrors(
		[]geom.Point{geom.Pt(0, 0), geom.Pt(5, 5), geom.Pt(9, 9)},
		[]geom.Point{geom.Pt(1, 1)})
	if len(errs) != 1 {
		t.Errorf("got %d errors with 1 truth, want 1", len(errs))
	}
}

func TestRegistryAllAndByID(t *testing.T) {
	all := All()
	if len(all) != 24 {
		t.Fatalf("registry has %d experiments, want 24", len(all))
	}
	ids := map[string]bool{}
	for _, e := range all {
		if e.Run == nil {
			t.Errorf("experiment %s has nil Run", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%s) = %v, %v", e.ID, got.ID, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("ByID with unknown id must error")
	}
}

// TestQuickExperimentsSmoke runs a fast subset of experiments end-to-end
// with QuickConfig and sanity-checks the table shapes. The heavier tracking
// and trace experiments are exercised by TestQuickTrackingSmoke and the
// benchmarks.
func TestQuickExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	cfg := QuickConfig()
	cfg.Trials = 1
	for _, id := range []string{
		"fig3a", "fig3b", "fig4", "fig5",
		"ablation-search", "ablation-smoothing",
		"baseline-ekf", "ablation-heading",
		"ablation-packet", "aggregation", "noise", "countermeasure",
	} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if tbl.ID != id {
			t.Errorf("%s: table id %q", id, tbl.ID)
		}
		if len(tbl.Rows) == 0 || len(tbl.Columns) == 0 {
			t.Errorf("%s: empty table", id)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Columns) {
				t.Errorf("%s: row width %d != %d columns", id, len(row), len(tbl.Columns))
			}
		}
	}
}

// TestQuickTrackingSmoke exercises a tracking experiment cell end-to-end.
func TestQuickTrackingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("tracking smoke test skipped in -short mode")
	}
	cfg := QuickConfig()
	cfg.Trials = 1
	cfg.Rounds = 4
	tbl, err := AblationImportance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("ablation-importance has %d rows, want 2", len(tbl.Rows))
	}
}

// TestTrackingAccuracyNoiseBand pins the fig7/fig8 error metrics to a
// generous statistical band. The per-user RNG substreams shifted the exact
// golden values once (each user now draws from its own deterministic
// stream), so this checks what the goldens cannot: tracking accuracy itself
// stayed in the regime the paper reports. A fig7-style single user on a
// straight line must end well-converged, and a fig8-style random-walk pair
// at 10% sampling must stay inside the plausible error range.
func TestTrackingAccuracyNoiseBand(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy noise-band test skipped in -short mode")
	}
	cfg := QuickConfig()
	cfg.Trials = 1
	cfg.Rounds = 6
	seed := cfg.trialSeed("noiseband", 0, 0)

	// fig7(a) shape: one user, straight trajectory, full-network flux.
	sc := mustScenario(defaultScenarioCfg(), seed)
	src := rng.New(seed + 17)
	trajs := []mobility.Trajectory{
		mobility.Linear{Start: geom.Pt(4, 15), V: geom.Vec{DX: 2, DY: 0.5}},
	}
	perRound, err := trackTrial(cfg, sc, trajs, sc.Network().Len(), 5, false, src)
	if err != nil {
		t.Fatal(err)
	}
	final := perRound[len(perRound)-1]
	if final > 2.5 {
		t.Errorf("fig7-style single-user final error %.2f, want <= 2.5 (paper: < 2); all rounds: %v",
			final, perRound)
	}

	// fig8(a) shape: two random walkers at 10% sampling.
	sc2 := mustScenario(defaultScenarioCfg(), seed+1)
	src2 := rng.New(seed + 18)
	walks, err := randomWalks(sc2, 2, 4, cfg.Rounds, src2)
	if err != nil {
		t.Fatal(err)
	}
	perRound2, err := trackTrial(cfg, sc2, walks, sc2.Network().Len()/10, 5, false, src2)
	if err != nil {
		t.Fatal(err)
	}
	final2 := perRound2[len(perRound2)-1]
	if final2 < 0 || final2 > 12 {
		t.Errorf("fig8-style two-user final error %.2f outside plausible band [0, 12]; all rounds: %v",
			final2, perRound2)
	}
}

// TestQuickTraceSmoke exercises the trace-driven pipeline end-to-end.
func TestQuickTraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trace smoke test skipped in -short mode")
	}
	cfg := QuickConfig()
	cfg.Trials = 1
	cfg.Rounds = 4
	e, err := traceTrial(cfg, 1 /* perturbed grid */, 0.1, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if e < 0 || e > 45 {
		t.Errorf("trace trial error %v outside plausible range", e)
	}
}
