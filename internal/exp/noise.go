package exp

import (
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/stats"
	"fluxtrack/internal/traffic"
)

// NoiseRobustness sweeps multiplicative measurement noise on the sniffed
// flux readings (extension A5). The paper argues (§3.A) that bounded
// observation windows introduce only minor observation error compared with
// the intrinsic discretization error; this table quantifies how much noise
// the NLS fit actually tolerates.
func NoiseRobustness(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "noise",
		Title:   "Localization error vs measurement noise (2 users, 10% sampling)",
		Paper:   "§3.A: second-level observation windows add only minor error",
		Columns: []string{"noise_sigma", "mean_err", "median_err"},
	}
	sigmas := []float64{0, 0.05, 0.1, 0.2, 0.4}
	cells := make([]int, len(sigmas))
	for i, sigma := range sigmas {
		cells[i] = int(sigma * 100)
	}
	res, err := runCells(cfg, "noise", cells, func(ci, trial int, seed uint64) ([]float64, error) {
		sigma := sigmas[ci]
		sc := cfg.scenario(defaultScenarioCfg(), seed)
		src := rng.New(seed + 17)
		sniffer, err := sc.NewSnifferCount(90, src)
		if err != nil {
			return nil, err
		}
		users := traffic.RandomUsers(sc.Field(), 2, 1, 3, src)
		if _, err := sniffer.Observe(users, sigma, src); err != nil {
			return nil, err
		}
		r, err := sniffer.Localize(2, cfg.searchOpts(sparseSearchSamples(cfg), seed), src)
		if err != nil {
			return nil, err
		}
		truths := []geom.Point{users[0].Pos, users[1].Pos}
		return matchErrors(r.Best[0].Positions, truths), nil
	})
	if err != nil {
		return Table{}, err
	}
	for ci, sigma := range sigmas {
		var errs []float64
		for _, es := range res[ci] {
			errs = append(errs, es...)
		}
		t.Rows = append(t.Rows, []string{
			f2(sigma), f2(stats.Mean(errs)), f2(stats.Median(errs)),
		})
	}
	return t, nil
}
