package exp

import (
	"fmt"
	"testing"
)

// seedDomains lists every expID string the experiments actually feed into
// trialSeed (these differ from the registry IDs: per-setting suffixes such
// as "fig3degree=12" and short ablation codes are the real seed domains).
func seedDomains() []string {
	return []string{
		"fig3degree=12", "fig3degree=16", "fig3degree=27",
		"fig4", "fig5", "fig6a", "fig6b",
		"fig7one", "fig7two", "fig7three", "fig7crossing",
		"fig8a", "fig8b", "fig10a", "fig10b",
		"ablA1", "ablA2", "ablA6", "ablA7",
		"ablA8fluid", "ablA8pkt", "ablA9",
		"counter", "noise",
	}
}

// TestTrialSeedNoCollisions sweeps every seed domain over a 64x64
// (cell, trial) block — far beyond what any experiment uses — and demands
// all derived seeds be distinct. Two colliding coordinates would silently
// run the same randomness twice and bias a table.
func TestTrialSeedNoCollisions(t *testing.T) {
	cfg := DefaultConfig()
	seen := make(map[uint64]string, len(seedDomains())*64*64)
	for _, exp := range seedDomains() {
		for cell := 0; cell < 64; cell++ {
			for trial := 0; trial < 64; trial++ {
				s := cfg.trialSeed(exp, cell, trial)
				key := fmt.Sprintf("(%s,%d,%d)", exp, cell, trial)
				if prev, ok := seen[s]; ok {
					t.Fatalf("trialSeed collision: %s and %s both map to %d", prev, key, s)
				}
				seen[s] = key
			}
		}
	}
}

// TestTrialSeedBaseSeedSensitivity checks that changing the base seed moves
// every derived seed (otherwise -seed on the CLI would be a no-op for some
// coordinates).
func TestTrialSeedBaseSeedSensitivity(t *testing.T) {
	a := Config{Seed: 1}
	b := Config{Seed: 2}
	for _, exp := range seedDomains() {
		for cell := 0; cell < 8; cell++ {
			for trial := 0; trial < 8; trial++ {
				if a.trialSeed(exp, cell, trial) == b.trialSeed(exp, cell, trial) {
					t.Fatalf("base seeds 1 and 2 derive the same seed at (%s,%d,%d)", exp, cell, trial)
				}
			}
		}
	}
}

// FuzzTrialSeed checks two properties on arbitrary coordinates: the seed
// must not depend on anything except (exp, cell, trial) — so recomputing it
// must be stable — and neighboring coordinates must not collide (the
// loop-order hazard: a harness bug swapping cell and trial, or shifting one
// trial, must never be masked by the derivation mapping both to one seed).
func FuzzTrialSeed(f *testing.F) {
	for _, exp := range seedDomains() {
		f.Add(exp, uint(3), uint(5))
	}
	f.Add("", uint(0), uint(0))
	f.Fuzz(func(t *testing.T, exp string, cellU, trialU uint) {
		// Experiments use small non-negative coordinates; constrain the
		// fuzzed values to a realistic range.
		cell := int(cellU & 0xffff)
		trial := int(trialU & 0xffff)
		cfg := DefaultConfig()
		s := cfg.trialSeed(exp, cell, trial)
		if cfg.trialSeed(exp, cell, trial) != s {
			t.Fatalf("trialSeed(%q,%d,%d) is not stable", exp, cell, trial)
		}
		neighbors := [][2]int{
			{cell, trial + 1}, {cell + 1, trial},
			{cell + 1, trial + 1}, {trial, cell},
		}
		for _, nb := range neighbors {
			if nb[0] == cell && nb[1] == trial {
				continue // (trial, cell) swap is the identity on the diagonal
			}
			if cfg.trialSeed(exp, nb[0], nb[1]) == s {
				t.Fatalf("trialSeed(%q) collides between (%d,%d) and (%d,%d)",
					exp, cell, trial, nb[0], nb[1])
			}
		}
	})
}
