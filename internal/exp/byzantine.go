package exp

import (
	"fluxtrack/internal/fault"
	"fluxtrack/internal/fit"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/stats"
)

// LiarMix returns the standard Byzantine attack mix used by the figByzantine
// sweep and the fluxbench/fluxsim -liars flag: of the compromised fraction,
// half inflate their readings, a quarter deflate, and a quarter replay a
// stale round. frac is the total compromised fraction in [0, 1]; 0 returns
// the all-honest zero config.
func LiarMix(frac float64) fault.AdversaryConfig {
	if frac <= 0 {
		return fault.AdversaryConfig{}
	}
	return fault.AdversaryConfig{
		InflateFrac: frac / 2,
		DeflateFrac: frac / 4,
		ReplayFrac:  frac / 4,
	}
}

// FigByzantine crosses Byzantine attacker fractions with the fit-layer
// defenses: 0%, 10%, and 25% of sensors lying (the LiarMix blend of
// inflaters, deflaters, and replayers) against the undefended fit, Huber
// IRLS down-weighting, leave-one-sensor-out flagging, and both combined.
// Two users on random walks at 10% sampling, the Fig 8a working point.
// Every cell runs the same paired (expID, cell, trial) seeds — identical
// worlds, trajectories, liars — so rows differ only by the defense, and the
// defense's recovery is measurable at small trial counts. Not in the paper;
// it quantifies the attacker-vs-attacker arms race the threat model invites
// (the localizer is itself the adversary of the paper's users).
func FigByzantine(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "figByzantine",
		Title:   "Tracking under Byzantine sensors × robust defenses (2 users, 10% sampling)",
		Paper:   "not in the paper; measures how many lying sensors the fingerprint fit tolerates and what robust fitting buys back",
		Columns: []string{"liars", "defense", "mean_err", "final_err"},
	}
	fracs := []struct {
		name string
		frac float64
	}{
		{"0%", 0},
		{"10%", 0.10},
		{"25%", 0.25},
	}
	defenses := []struct {
		name string
		mode fit.RobustMode
	}{
		{"plain", fit.RobustOff},
		{"huber", fit.RobustHuber},
		{"loso", fit.RobustLOSO},
		{"both", fit.RobustBoth},
	}

	for _, fr := range fracs {
		for _, def := range defenses {
			fr, def := fr, def
			// Cell 0 for every combination: the paired-seed design of
			// figRobust. Identical worlds and liars across defenses, so the
			// defense column is the only moving part within a liar band.
			trials, err := runTrials(cfg, "figByzantine", 0, cfg.Trials,
				func(trial int, seed uint64) ([]float64, error) {
					sc := cfg.scenario(defaultScenarioCfg(), seed)
					src := rng.New(seed + 17)
					trajs, err := randomWalks(sc, 2, 4, cfg.Rounds, src)
					if err != nil {
						return nil, err
					}
					bcfg := cfg
					bcfg.Adversary = LiarMix(fr.frac)
					bcfg.Robust = fit.RobustConfig{Mode: def.mode}
					return trackTrial(bcfg, sc, trajs, 90, 5, false, src)
				})
			if err != nil {
				return Table{}, err
			}
			var all, finals []float64
			for _, perRound := range trials {
				all = append(all, perRound...)
				finals = append(finals, perRound[len(perRound)-1])
			}
			t.Rows = append(t.Rows, []string{
				fr.name, def.name, f2(stats.Mean(all)), f2(stats.Mean(finals)),
			})
		}
	}
	return t, nil
}
