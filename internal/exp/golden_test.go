package exp

import (
	"runtime"
	"testing"

	"fluxtrack/internal/fault"
)

// goldenConfig shrinks every effort knob to the smallest values at which
// the full registry still runs every code path (the trace pipeline needs
// Rounds >= 3 to produce measurable windows). The determinism contract is
// independent of effort, so small is fine — the full suite must be rendered
// several times per test below.
func goldenConfig() Config {
	return Config{Seed: 1, Trials: 1, Samples: 150, TrackN: 40, TrackM: 10, Rounds: 3}
}

// renderAt runs one experiment at the given worker count and seed and
// returns the rendered table.
func renderAt(t *testing.T, e Experiment, workers int, seed uint64) string {
	t.Helper()
	cfg := goldenConfig()
	cfg.Workers = workers
	cfg.Seed = seed
	tbl, err := e.Run(cfg)
	if err != nil {
		t.Fatalf("%s workers=%d seed=%d: %v", e.ID, workers, seed, err)
	}
	return tbl.Render()
}

// TestGoldenWorkerInvariance is the core determinism contract of the
// parallel harness: every registered experiment must render byte-identical
// tables at Workers=1 (the sequential legacy path), Workers=4, and
// Workers=GOMAXPROCS. Trials are pure functions of (experiment, cell,
// trial), so the worker count may only change scheduling, never results.
func TestGoldenWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("golden determinism suite skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			seq := renderAt(t, e, 1, 1)
			par := renderAt(t, e, 4, 1)
			if par != seq {
				t.Errorf("%s: Workers=4 differs from Workers=1:\n--- sequential\n%s--- parallel\n%s", e.ID, seq, par)
			}
			if gmp := runtime.GOMAXPROCS(0); gmp != 1 && gmp != 4 {
				if got := renderAt(t, e, gmp, 1); got != seq {
					t.Errorf("%s: Workers=%d differs from Workers=1:\n--- sequential\n%s--- parallel\n%s", e.ID, gmp, seq, got)
				}
			}
		})
	}
}

// TestGoldenFaultInjection extends the worker-invariance contract to
// degraded sensing: tracking experiments run with a nonzero FaultConfig must
// still render byte-identical tables at Workers=1 and Workers=8. This is the
// regression guard for the fault layer's hash-based draws — a sequential
// shared fault stream would pass the clean golden suite and fail here.
func TestGoldenFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("golden determinism suite skipped in -short mode")
	}
	faultCfg := fault.Config{DropoutFrac: 0.15, LossProb: 0.10, DelayProb: 0.20, DelayRounds: 1, StuckFrac: 0.05}
	for _, id := range []string{"fig7", "fig8a", "figRobust"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			render := func(workers int) string {
				cfg := goldenConfig()
				cfg.Workers = workers
				cfg.Fault = faultCfg
				tbl, err := e.Run(cfg)
				if err != nil {
					t.Fatalf("%s workers=%d: %v", id, workers, err)
				}
				return tbl.Render()
			}
			seq := render(1)
			par := render(8)
			if par != seq {
				t.Errorf("%s with faults: Workers=8 differs from Workers=1:\n--- sequential\n%s--- parallel\n%s", id, seq, par)
			}
		})
	}
}

// TestGoldenRerunIdentity reruns a cross-section of the pipelines in the
// same process and demands identical output. This is the regression guard
// for hidden shared state: the trace pipeline once paired users with
// stretch draws in map-iteration order, which made fig10a/fig10b disagree
// with themselves run-to-run (fixed by sorting users in buildTraceRun).
func TestGoldenRerunIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("golden determinism suite skipped in -short mode")
	}
	for _, id := range []string{"fig10a", "fig7", "noise", "ablation-search"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			first := renderAt(t, e, 4, 1)
			second := renderAt(t, e, 4, 1)
			if first != second {
				t.Errorf("%s: same-seed rerun differs:\n--- first\n%s--- second\n%s", id, first, second)
			}
		})
	}
}

// TestGoldenCoarseFullAgreement pins the registry-level differential
// contract of the coarse-to-fine prestage: figCoarse's full-K row must
// report exactly 100.0% top-1 agreement with the exact search. At TopK =
// candidate count the shortlist is the identity and the coarse pipeline is
// byte-identical to the exact one, so any disagreement on that row is a
// determinism bug — never statistical noise.
func TestGoldenCoarseFullAgreement(t *testing.T) {
	cfg := goldenConfig()
	for _, seed := range []uint64{1, 2} {
		cfg.Seed = seed
		tbl, err := FigCoarse(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		last := tbl.Rows[len(tbl.Rows)-1]
		if last[0] != "full" {
			t.Fatalf("seed %d: final row is %q, want the full-K row", seed, last[0])
		}
		if last[2] != "100.0%" {
			t.Errorf("seed %d: full-K top-1 agreement = %s, want exactly 100.0%%\n%s",
				seed, last[2], tbl.Render())
		}
	}
}

// TestGoldenSeedSensitivity checks the other half of reproducibility: a
// different base seed must actually change the tables (all four pipelines
// here have continuous outputs, so collisions at 2-decimal rounding across
// a whole table would indicate the seed is being ignored).
func TestGoldenSeedSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("golden determinism suite skipped in -short mode")
	}
	for _, id := range []string{"fig5", "fig4", "noise", "fig7"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			s1 := renderAt(t, e, 1, 1)
			s2 := renderAt(t, e, 1, 2)
			if s1 == s2 {
				t.Errorf("%s: seed 1 and seed 2 render identical tables:\n%s", id, s1)
			}
		})
	}
}
