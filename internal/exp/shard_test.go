package exp

import (
	"testing"

	"fluxtrack/internal/fault"
	"fluxtrack/internal/fingerprint"
	"fluxtrack/internal/shard"
)

// TestShardOneByOneMatchesUnsharded pins the experiment-level half of the
// 1×1 identity contract: a tracking experiment run through the sharded
// coordinator on a 1×1 grid must render the exact table of the plain
// tracker, clean and under fault injection (the masked step path). The
// tracker-level half lives in internal/shard.
func TestShardOneByOneMatchesUnsharded(t *testing.T) {
	faults := fault.Config{DropoutFrac: 0.15, LossProb: 0.10, DelayProb: 0.20, DelayRounds: 1}
	for _, tc := range []struct {
		name  string
		fault fault.Config
	}{
		{"clean", fault.Config{}},
		{"degraded", faults},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := goldenConfig()
			cfg.Fault = tc.fault
			plain, err := Fig7(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Shards = shard.Grid{Rows: 1, Cols: 1}
			tiled, err := Fig7(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if plain.Render() != tiled.Render() {
				t.Errorf("1x1 sharded fig7 differs from unsharded:\n--- plain\n%s--- 1x1\n%s",
					plain.Render(), tiled.Render())
			}
		})
	}
}

// TestShardDBCacheInvariance: sharing a fingerprint cache across trials and
// tiles must never change a rendered table — caching removes rebuilds, not
// bytes. Runs coarse (the only mode that builds databases) over a sharded
// grid so tiles of one trial share the cache too.
func TestShardDBCacheInvariance(t *testing.T) {
	cfg := goldenConfig()
	cfg.Coarse = fingerprint.CoarseConfig{Enabled: true, TopK: 24, GridRes: 10}
	cfg.Shards = shard.Grid{Rows: 2, Cols: 2, Halo: 2}
	uncached, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DBCache = fingerprint.NewCache(0)
	cached, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if uncached.Render() != cached.Render() {
		t.Errorf("DB cache changed fig7:\n--- uncached\n%s--- cached\n%s",
			uncached.Render(), cached.Render())
	}
}
