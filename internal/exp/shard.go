package exp

import (
	"fmt"

	"fluxtrack/internal/core"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mobility"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/shard"
	"fluxtrack/internal/stats"
)

// shardScenarioCfg is the figShard deployment: the paper's node density
// (1 node per unit area) scaled to a 60×60 field — 3600 nodes, radius 2.4 —
// sniffed at 360 nodes (10%). A 2×2 grid over this field puts seams at
// x = 30 and y = 30.
func shardScenarioCfg() core.ScenarioConfig {
	return core.ScenarioConfig{Field: geom.Square(60), Nodes: 3600}
}

// shardTrajectories returns the six fixed figShard users. Users 0–3 stay in
// the interior of their starting tile for the whole run ("away" users, one
// per tile); user 4 rides northward along the x = 30 seam; user 5 starts in
// the center region and crosses the vertical seam mid-run. The fixed layout
// makes the away/seam split meaningful at every grid and halo.
func shardTrajectories() []mobility.Trajectory {
	return []mobility.Trajectory{
		mobility.Linear{Start: geom.Pt(8, 8), V: geom.Vec{DX: 1.2, DY: 0.8}},
		mobility.Linear{Start: geom.Pt(52, 10), V: geom.Vec{DX: -1.5, DY: 0.9}},
		mobility.Linear{Start: geom.Pt(10, 50), V: geom.Vec{DX: 1.4, DY: -1.1}},
		mobility.Linear{Start: geom.Pt(50, 52), V: geom.Vec{DX: -1.2, DY: -1.3}},
		mobility.Linear{Start: geom.Pt(30.5, 8), V: geom.Vec{DX: -0.1, DY: 2.2}},
		mobility.Linear{Start: geom.Pt(22, 28), V: geom.Vec{DX: 1.8, DY: 0.4}},
	}
}

// shardSeamUser marks which figShard users exercise a seam (true) versus
// staying in their tile's interior (false).
var shardSeamUser = [6]bool{4: true, 5: true}

// matchErrorsByTruth greedily pairs each estimate with its nearest unmatched
// true position, like matchErrors, but returns the pairing distances indexed
// by truth. figShard needs per-user groups (seam riders vs interior users)
// to stay attributable even when the tracker swaps identities.
func matchErrorsByTruth(estimates, truths []geom.Point) []float64 {
	out := make([]float64, len(truths))
	used := make([]bool, len(truths))
	for _, est := range estimates {
		best, bestD := -1, 0.0
		for j, tr := range truths {
			if used[j] {
				continue
			}
			d := est.Dist(tr)
			if best < 0 || d < bestD {
				best, bestD = j, d
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		out[best] = bestD
	}
	return out
}

// FigShard quantifies the accuracy cost and work reduction of field sharding
// (internal/shard). It is an extension figure — the paper tracks one
// monolithic field — comparing the unsharded 1×1 reference against a 2×2
// tile grid at increasing halo widths on a 60×60 deployment with six users:
// four interior users (one per tile, never near a seam), one user riding the
// vertical seam, and one crossing it mid-run.
//
// Columns: the tile grid, its halo width, mean tracking error over the
// interior users, mean error over the two seam users, cross-tile handoffs
// per trial, and cumulative NNLS solves. Sharding is an approximation: a
// tile explains its sensors' flux using only the users it owns, so a
// neighbor tile's user contributes unmodeled signal. The halo is the
// resulting trade — widening it gives seam riders cross-seam evidence
// (err_seam improves) while admitting more foreign flux into the interior
// fit (err_away degrades) — and this table prices both sides against the
// 1×1 reference. The solve count stays comparable across grids — the
// candidate volume is fixed — which is the point: sharding's work reduction
// lives inside each solve, whose Gram build runs over ~1/tiles of the
// sensors against a smaller joint user set. Wall-clock throughput for the
// same split is measured by cmd/fluxbench -shardbench, which feeds
// BENCH_pr7.json; this table keeps only worker-count-invariant columns so
// it can sit under the golden tests.
func FigShard(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "figShard",
		Title:   "Field sharding: seam accuracy and per-tile work vs halo (60×60, 6 users)",
		Paper:   "extension: sharding trades accuracy for per-tile work; halo trades seam fit vs interior fit",
		Columns: []string{"grid", "halo", "err_away", "err_seam", "handoffs", "nnls_solves"},
	}
	grids := []shard.Grid{
		{Rows: 1, Cols: 1},
		{Rows: 2, Cols: 2, Halo: 0},
		{Rows: 2, Cols: 2, Halo: 2},
		{Rows: 2, Cols: 2, Halo: 4},
	}
	cells := make([]int, len(grids))
	for i, g := range grids {
		cells[i] = g.Rows*1000 + g.Cols*100 + int(g.Halo)
	}

	type shardTrial struct {
		errAway  float64
		errSeam  float64
		handoffs float64
		solves   float64
	}
	res, err := runCells(cfg, "figShard", cells, func(ci, trial int, seed uint64) (shardTrial, error) {
		g := grids[ci]
		sc := cfg.scenario(shardScenarioCfg(), seed)
		src := rng.New(seed + 17)
		sniffer, err := sc.NewSnifferCount(360, src)
		if err != nil {
			return shardTrial{}, err
		}
		trajs := shardTrajectories()
		k := len(trajs)
		stretches := make([]float64, k)
		for i := range stretches {
			stretches[i] = src.Uniform(1, 3)
		}
		starts := make([]geom.Point, k)
		for i, tr := range trajs {
			starts[i] = sc.Field().Clamp(tr.At(0))
		}
		// Always the sharded constructor — a 1×1 field reproduces the plain
		// tracker byte for byte and exposes the same handoff/work meters.
		field, err := sniffer.NewShardedTracker(k, core.TrackerConfig{
			N: cfg.TrackN, M: cfg.TrackM, VMax: 5,
			Search: cfg.trackerSearch(), Coarse: cfg.Coarse, DBCache: cfg.DBCache,
			Shards: g, InitialPositions: starts,
			Workers: cfg.Workers, Metrics: cfg.Metrics, Trace: cfg.Trace,
		}, src.Uint64())
		if err != nil {
			return shardTrial{}, err
		}
		var away, seam []float64
		for round := 1; round <= cfg.Rounds; round++ {
			tm := float64(round)
			truths := make([]geom.Point, k)
			for i, tr := range trajs {
				truths[i] = sc.Field().Clamp(tr.At(tm))
			}
			o, err := sniffer.Observe(activeUsers(truths, stretches), 0, src)
			if err != nil {
				return shardTrial{}, err
			}
			step, err := field.Step(tm, o)
			if err != nil {
				return shardTrial{}, err
			}
			ests := make([]geom.Point, k)
			for i, e := range step.Estimates {
				ests[i] = e.Mean
			}
			for i, d := range matchErrorsByTruth(ests, truths) {
				if shardSeamUser[i] {
					seam = append(seam, d)
				} else {
					away = append(away, d)
				}
			}
		}
		solves, _ := field.WorkTotals()
		return shardTrial{
			errAway:  stats.Mean(away),
			errSeam:  stats.Mean(seam),
			handoffs: float64(field.Handoffs()),
			solves:   float64(solves),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}

	for ci, g := range grids {
		var away, seam, hand, solves []float64
		for _, tr := range res[ci] {
			away = append(away, tr.errAway)
			seam = append(seam, tr.errSeam)
			hand = append(hand, tr.handoffs)
			solves = append(solves, tr.solves)
		}
		t.Rows = append(t.Rows, []string{
			g.String(),
			fmt.Sprintf("%g", g.Halo),
			f2(stats.Mean(away)),
			f2(stats.Mean(seam)),
			f2(stats.Mean(hand)),
			fmt.Sprintf("%.0f", stats.Mean(solves)),
		})
	}
	return t, nil
}
