package exp

import (
	"fmt"

	"fluxtrack/internal/brief"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/stats"
	"fluxtrack/internal/traffic"
)

// Fig4 regenerates Figure 4 (with the Figure 1 workload): three mobile
// users collect data simultaneously; the recursive briefing method peels
// one user per round off the full network flux map. Rows report each
// round's detection, its match error against the true users, and the
// residual flux energy.
func Fig4(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "fig4",
		Title:   "Recursive briefing of the network flux (3 users, full map)",
		Paper:   "each round identifies one dominating user; residual flux shrinks; positions match the true distribution",
		Columns: []string{"round", "match_err(mean)", "stretch(mean)", "residual_energy_frac(mean)"},
	}

	type roundAgg struct {
		matchErr, stretch, resFrac []float64
	}
	rounds := make([]roundAgg, 3)

	// One trial's per-round detections; hasMatch/hasResFrac mirror the
	// conditional appends of the sequential reduction.
	type roundResult struct {
		matchErr   float64
		hasMatch   bool
		stretch    float64
		resFrac    float64
		hasResFrac bool
	}
	trials, err := runTrials(cfg, "fig4", 0, cfg.Trials,
		func(trial int, seed uint64) ([]roundResult, error) {
			src := rng.New(seed)
			sc := cfg.scenario(defaultScenarioCfg(), seed)
			users := traffic.RandomUsers(sc.Field(), 3, 1, 3, src)
			flux, err := sc.GroundFlux(users)
			if err != nil {
				return nil, err
			}
			initial := traffic.TotalEnergy(flux)
			dets, err := brief.Brief(sc.Network(), sc.Model(), flux, 3, brief.Options{})
			if err != nil {
				return nil, err
			}
			matched := make([]bool, len(users))
			out := make([]roundResult, len(dets))
			for r, d := range dets {
				// Match this detection to the nearest unmatched true user.
				best, bestD := -1, 0.0
				for j, u := range users {
					if matched[j] {
						continue
					}
					dd := d.Pos.Dist(u.Pos)
					if best < 0 || dd < bestD {
						best, bestD = j, dd
					}
				}
				if best >= 0 {
					matched[best] = true
					out[r].matchErr, out[r].hasMatch = bestD, true
				}
				out[r].stretch = d.Stretch
				if initial > 0 {
					out[r].resFrac, out[r].hasResFrac = d.ResidualEnergy/initial, true
				}
			}
			return out, nil
		})
	if err != nil {
		return Table{}, err
	}
	for _, dets := range trials {
		for r, d := range dets {
			if r >= len(rounds) {
				break
			}
			if d.hasMatch {
				rounds[r].matchErr = append(rounds[r].matchErr, d.matchErr)
			}
			rounds[r].stretch = append(rounds[r].stretch, d.stretch)
			if d.hasResFrac {
				rounds[r].resFrac = append(rounds[r].resFrac, d.resFrac)
			}
		}
	}

	for r := range rounds {
		if len(rounds[r].stretch) == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r+1),
			f2(stats.Mean(rounds[r].matchErr)),
			f2(stats.Mean(rounds[r].stretch)),
			f3(stats.Mean(rounds[r].resFrac)),
		})
	}
	return t, nil
}
