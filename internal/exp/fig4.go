package exp

import (
	"fmt"

	"fluxtrack/internal/brief"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/stats"
	"fluxtrack/internal/traffic"
)

// Fig4 regenerates Figure 4 (with the Figure 1 workload): three mobile
// users collect data simultaneously; the recursive briefing method peels
// one user per round off the full network flux map. Rows report each
// round's detection, its match error against the true users, and the
// residual flux energy.
func Fig4(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "fig4",
		Title:   "Recursive briefing of the network flux (3 users, full map)",
		Paper:   "each round identifies one dominating user; residual flux shrinks; positions match the true distribution",
		Columns: []string{"round", "match_err(mean)", "stretch(mean)", "residual_energy_frac(mean)"},
	}

	type roundAgg struct {
		matchErr, stretch, resFrac []float64
	}
	rounds := make([]roundAgg, 3)

	for trial := 0; trial < cfg.Trials; trial++ {
		seed := cfg.trialSeed("fig4", 0, trial)
		src := rng.New(seed)
		sc := mustScenario(defaultScenarioCfg(), seed)
		users := traffic.RandomUsers(sc.Field(), 3, 1, 3, src)
		flux, err := sc.GroundFlux(users)
		if err != nil {
			return Table{}, err
		}
		initial := traffic.TotalEnergy(flux)
		dets, err := brief.Brief(sc.Network(), sc.Model(), flux, 3, brief.Options{})
		if err != nil {
			return Table{}, err
		}
		matched := make([]bool, len(users))
		for r, d := range dets {
			// Match this detection to the nearest unmatched true user.
			best, bestD := -1, 0.0
			for j, u := range users {
				if matched[j] {
					continue
				}
				dd := d.Pos.Dist(u.Pos)
				if best < 0 || dd < bestD {
					best, bestD = j, dd
				}
			}
			if best >= 0 {
				matched[best] = true
				rounds[r].matchErr = append(rounds[r].matchErr, bestD)
			}
			rounds[r].stretch = append(rounds[r].stretch, d.Stretch)
			if initial > 0 {
				rounds[r].resFrac = append(rounds[r].resFrac, d.ResidualEnergy/initial)
			}
		}
	}

	for r := range rounds {
		if len(rounds[r].stretch) == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r+1),
			f2(stats.Mean(rounds[r].matchErr)),
			f2(stats.Mean(rounds[r].stretch)),
			f3(stats.Mean(rounds[r].resFrac)),
		})
	}
	return t, nil
}
