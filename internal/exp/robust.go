package exp

import (
	"fluxtrack/internal/fault"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/stats"
)

// FigRobust sweeps the tracker through degraded-sensing regimes: permanent
// sensor dropout at increasing fractions, per-round report loss, delayed
// delivery (the paper's §4.E asynchronous updating, exercised for real), and
// stuck readings — plus a combined worst-case. Two users on random walks at
// 10% sampling, the Fig 8a working point. This experiment is not in the
// paper; it quantifies how gracefully the attack degrades when the network
// itself misbehaves.
func FigRobust(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "figRobust",
		Title:   "Tracking under degraded sensing (2 users, 10% sampling)",
		Paper:   "not in the paper; §4.E concedes asynchronous/lossy reports — this sweep measures the cost",
		Columns: []string{"regime", "mean_err", "final_err"},
	}
	regimes := []struct {
		name string
		f    fault.Config
	}{
		{"none", fault.Config{}},
		{"drop10", fault.Config{DropoutFrac: 0.10}},
		{"drop20", fault.Config{DropoutFrac: 0.20}},
		{"drop30", fault.Config{DropoutFrac: 0.30}},
		{"loss10", fault.Config{LossProb: 0.10}},
		{"loss30", fault.Config{LossProb: 0.30}},
		{"delay30x2", fault.Config{DelayProb: 0.30, DelayRounds: 2}},
		{"stuck10", fault.Config{StuckFrac: 0.10}},
		{"combined", fault.Config{DropoutFrac: 0.10, LossProb: 0.10, DelayProb: 0.20, DelayRounds: 2, StuckFrac: 0.05}},
	}

	for _, regime := range regimes {
		regime := regime
		// Every regime runs the same (expID, cell, trial) seeds: identical
		// worlds, trajectories, and trackers, so rows differ only by the
		// faults — the paired design that makes the sweep's deltas meaningful
		// at small trial counts.
		trials, err := runTrials(cfg, "figRobust", 0, cfg.Trials,
			func(trial int, seed uint64) ([]float64, error) {
				sc := cfg.scenario(defaultScenarioCfg(), seed)
				src := rng.New(seed + 17)
				trajs, err := randomWalks(sc, 2, 4, cfg.Rounds, src)
				if err != nil {
					return nil, err
				}
				fcfg := cfg
				fcfg.Fault = regime.f
				return trackTrial(fcfg, sc, trajs, 90, 5, false, src)
			})
		if err != nil {
			return Table{}, err
		}
		var all, finals []float64
		for _, perRound := range trials {
			all = append(all, perRound...)
			finals = append(finals, perRound[len(perRound)-1])
		}
		t.Rows = append(t.Rows, []string{regime.name, f2(stats.Mean(all)), f2(stats.Mean(finals))})
	}
	return t, nil
}
