package exp

import (
	"reflect"
	"testing"

	"fluxtrack/internal/fault"
	"fluxtrack/internal/obs"
)

// renderObserved runs one experiment with a metrics registry and trace ring
// bound and returns the rendered table plus the merged counter values.
func renderObserved(t *testing.T, e Experiment, workers int, fc fault.Config) (string, []obs.CounterValue) {
	t.Helper()
	cfg := goldenConfig()
	cfg.Workers = workers
	cfg.Fault = fc
	cfg.Metrics = obs.New(0)
	cfg.Trace = obs.NewTrace(256)
	tbl, err := e.Run(cfg)
	if err != nil {
		t.Fatalf("%s workers=%d observed: %v", e.ID, workers, err)
	}
	return tbl.Render(), cfg.Metrics.Snapshot().Counters
}

// TestMetricsDoNotPerturbTables is the harness-level observability contract
// (referenced by the internal/obs package doc): enabling metrics and step
// tracing must leave every rendered table byte-identical to the
// uninstrumented run at any worker count, and the counter totals themselves
// must be worker-count-invariant — only wall-clock histograms may vary.
// A representative slice of the registry keeps the test fast while covering
// localization (fig5), tracking (fig7), and the active-set/trace pipeline
// (fig10a).
func TestMetricsDoNotPerturbTables(t *testing.T) {
	if testing.Short() {
		t.Skip("golden determinism suite skipped in -short mode")
	}
	for _, id := range []string{"fig5", "fig7", "fig10a"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			plain := renderAt(t, e, 1, 1)
			seq, seqCtrs := renderObserved(t, e, 1, fault.Config{})
			if seq != plain {
				t.Errorf("%s: metrics+trace changed the Workers=1 table:\n--- plain\n%s--- observed\n%s", id, plain, seq)
			}
			par, parCtrs := renderObserved(t, e, 4, fault.Config{})
			if par != plain {
				t.Errorf("%s: metrics+trace changed the Workers=4 table:\n--- plain\n%s--- observed\n%s", id, plain, par)
			}
			if len(seqCtrs) == 0 {
				t.Fatalf("%s: observed run produced no counters", id)
			}
			if !reflect.DeepEqual(seqCtrs, parCtrs) {
				t.Errorf("%s: counter totals differ across worker counts:\nworkers=1: %+v\nworkers=4: %+v", id, seqCtrs, parCtrs)
			}
		})
	}
}

// TestMetricsFaultCounters extends the contract to degraded sensing: with
// faults on, the fault.* counters must appear, count real events, and stay
// worker-count-invariant alongside byte-identical tables.
func TestMetricsFaultCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("golden determinism suite skipped in -short mode")
	}
	fc := fault.Config{DropoutFrac: 0.15, LossProb: 0.10, DelayProb: 0.20, DelayRounds: 1, StuckFrac: 0.05}
	e, err := ByID("fig7")
	if err != nil {
		t.Fatal(err)
	}
	seq, seqCtrs := renderObserved(t, e, 1, fc)
	par, parCtrs := renderObserved(t, e, 8, fc)
	if seq != par {
		t.Errorf("fig7 with faults: observed tables differ across worker counts:\n--- workers=1\n%s--- workers=8\n%s", seq, par)
	}
	if !reflect.DeepEqual(seqCtrs, parCtrs) {
		t.Errorf("fault counter totals differ across worker counts:\nworkers=1: %+v\nworkers=8: %+v", seqCtrs, parCtrs)
	}
	byName := make(map[string]uint64, len(seqCtrs))
	for _, c := range seqCtrs {
		byName[c.Name] = c.Value
	}
	if byName["fault.rounds"] == 0 {
		t.Error("fault.rounds counter never incremented under an enabled fault config")
	}
	if byName["fault.lost"]+byName["fault.dead"]+byName["fault.delayed"] == 0 {
		t.Error("no fault events counted under an enabled fault config")
	}
}
