package exp

import (
	"strconv"
	"strings"
	"testing"

	"fluxtrack/internal/fit"
)

// TestGoldenByzantine extends the worker-invariance contract to adversarial
// sensing: tracking experiments run with a Byzantine liar mix and the robust
// defense armed must still render byte-identical tables at Workers=1 and
// Workers=8. This is the regression guard for the adversary's hash-based
// draws and for the two-pass robust search — a sequential shared adversary
// stream, or a racy reweighting pass, would pass the clean golden suite and
// fail here.
func TestGoldenByzantine(t *testing.T) {
	if testing.Short() {
		t.Skip("golden determinism suite skipped in -short mode")
	}
	for _, id := range []string{"fig7", "fig8a"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			render := func(workers int) string {
				cfg := goldenConfig()
				cfg.Workers = workers
				cfg.Adversary = LiarMix(0.2)
				cfg.Robust = fit.RobustConfig{Mode: fit.RobustBoth}
				tbl, err := e.Run(cfg)
				if err != nil {
					t.Fatalf("%s workers=%d: %v", id, workers, err)
				}
				return tbl.Render()
			}
			seq := render(1)
			par := render(8)
			if par != seq {
				t.Errorf("%s with byzantine sensors: Workers=8 differs from Workers=1:\n--- sequential\n%s--- parallel\n%s", id, seq, par)
			}
		})
	}
}

// byzCell extracts the (mean_err, final_err) pair of the figByzantine row
// with the given liars and defense labels.
func byzCell(t *testing.T, tbl Table, liars, defense string) (float64, float64) {
	t.Helper()
	for _, row := range tbl.Rows {
		if row[0] == liars && row[1] == defense {
			mean, err := strconv.ParseFloat(strings.TrimSpace(row[2]), 64)
			if err != nil {
				t.Fatalf("row %v: bad mean_err: %v", row, err)
			}
			final, err := strconv.ParseFloat(strings.TrimSpace(row[3]), 64)
			if err != nil {
				t.Fatalf("row %v: bad final_err: %v", row, err)
			}
			return mean, final
		}
	}
	t.Fatalf("figByzantine has no row (%s, %s):\n%s", liars, defense, tbl.Render())
	return 0, 0
}

// TestDefenseRecoversAccuracy pins the headline claim of the robust-fitting
// defense: at 10% Byzantine sensors the defended tracker recovers most of
// the accuracy the plain fit loses. Every trial is deterministic and the
// liars/defense regimes share paired seeds, so the margins below are exact
// reproductions, not statistical bounds — they fail only if the adversary,
// the defense, or the seed plumbing changes behavior.
func TestDefenseRecoversAccuracy(t *testing.T) {
	tbl, err := FigByzantine(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	plainMean, plainFinal := byzCell(t, tbl, "10%", "plain")
	for _, defense := range []string{"huber", "both"} {
		defMean, defFinal := byzCell(t, tbl, "10%", defense)
		if defMean > plainMean-2 {
			t.Errorf("%s mean_err %.2f does not recover ≥2 units from plain %.2f at 10%% liars",
				defense, defMean, plainMean)
		}
		if defFinal > plainFinal-2 {
			t.Errorf("%s final_err %.2f does not recover ≥2 units from plain %.2f at 10%% liars",
				defense, defFinal, plainFinal)
		}
	}
	// LOSO alone is gentler (graded down-weights); require it not to lose
	// ground against the undefended fit.
	losoMean, losoFinal := byzCell(t, tbl, "10%", "loso")
	if losoMean >= plainMean || losoFinal >= plainFinal {
		t.Errorf("loso (%.2f, %.2f) worse than plain (%.2f, %.2f) at 10%% liars",
			losoMean, losoFinal, plainMean, plainFinal)
	}
}
