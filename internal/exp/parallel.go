package exp

// This file implements deterministic parallel trial execution.
//
// Every experiment in this package is embarrassingly parallel across its
// (cell, trial) grid: each trial derives all of its randomness from
// Config.trialSeed(expID, cell, trial), so trials are pure functions of
// their coordinate. runTrials and runCells exploit that by fanning the
// units out over a bounded worker pool while writing each result into a
// pre-sized slice slot indexed by its coordinate. Reductions then walk the
// slices in index order, which makes every rendered Table byte-identical
// regardless of the worker count — the concurrency contract the golden
// tests in golden_test.go enforce for the whole registry.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fluxtrack/internal/obs"
)

// workerCount resolves the Workers knob: values above 1 bound the pool,
// 1 forces the exact sequential legacy path, and 0 (or negative) means one
// worker per available CPU.
func (c Config) workerCount() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEachUnit runs fn(i) for every i in [0, n) on up to workers goroutines.
// fn must write its outputs into index-disjoint slots; the pool guarantees
// nothing about execution order. With workers == 1 the units run
// sequentially in index order and the first error aborts the remaining
// units — the exact legacy loop. With more workers every unit runs and the
// error of the lowest-index failing unit is returned, so the error a caller
// sees never depends on goroutine scheduling.
func forEachUnit(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// poolObs holds the harness-level instruments bound from Config.Metrics:
// how many (cell, trial) units ran, each unit's wall clock, and the pool
// queue depth at unit dispatch. The units counter is a deterministic work
// count; the histograms record wall time and dispatch-order depth (units are
// handed out in index order, so even the depth distribution is
// worker-count-invariant). The zero value is the disabled instrument set.
type poolObs struct {
	units *obs.Counter   // exp.pool.units
	wall  *obs.Histogram // exp.trial.wall_ms
	depth *obs.Histogram // exp.pool.queue_depth
}

func (c Config) poolObs() poolObs {
	if c.Metrics == nil {
		return poolObs{}
	}
	return poolObs{
		units: c.Metrics.Counter("exp.pool.units"),
		wall:  c.Metrics.Histogram("exp.trial.wall_ms", obs.DurationBucketsMs),
		depth: c.Metrics.Histogram("exp.pool.queue_depth", obs.CountBuckets),
	}
}

// start stamps a unit's dispatch time; the zero time when disabled.
func (p poolObs) start() time.Time {
	if p.units == nil {
		return time.Time{}
	}
	return time.Now()
}

// observe flushes one finished unit, sharding by its index.
func (p poolObs) observe(unit, total int, t0 time.Time) {
	if p.units == nil {
		return
	}
	p.units.Inc(unit)
	p.wall.Observe(unit, float64(time.Since(t0).Nanoseconds())/1e6)
	p.depth.Observe(unit, float64(total-1-unit))
}

// runTrials runs the n trials of one experiment cell on the worker pool and
// returns the per-trial results indexed by trial number. Each trial
// receives its own seed from Config.trialSeed, so the randomness a trial
// sees is a pure function of (expID, cell, trial) no matter which worker
// executes it, and reducing the returned slice in index order reproduces
// the sequential reduction byte for byte.
func runTrials[T any](cfg Config, expID string, cell, n int, fn func(trial int, seed uint64) (T, error)) ([]T, error) {
	pool := cfg.poolObs()
	out := make([]T, n)
	err := forEachUnit(cfg.workerCount(), n, func(trial int) error {
		t0 := pool.start()
		v, err := fn(trial, cfg.trialSeed(expID, cell, trial))
		pool.observe(trial, n, t0)
		if err != nil {
			return err
		}
		out[trial] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runCells fans an experiment's full (cell, trial) grid out over one shared
// worker pool: every cell in cells runs cfg.Trials trials and the results
// come back as out[cellIdx][trial]. cells holds the integer cell
// coordinates fed to trialSeed, so seeds match the sequential loops
// exactly. With Workers == 1 the units execute in the legacy order — cells
// outer, trials inner.
func runCells[T any](cfg Config, expID string, cells []int, fn func(cellIdx, trial int, seed uint64) (T, error)) ([][]T, error) {
	n := cfg.Trials
	out := make([][]T, len(cells))
	for i := range out {
		out[i] = make([]T, n)
	}
	pool := cfg.poolObs()
	err := forEachUnit(cfg.workerCount(), len(cells)*n, func(u int) error {
		ci, trial := u/n, u%n
		t0 := pool.start()
		v, err := fn(ci, trial, cfg.trialSeed(expID, cells[ci], trial))
		pool.observe(u, len(cells)*n, t0)
		if err != nil {
			return err
		}
		out[ci][trial] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
