package exp

import (
	"math"
	"strconv"
	"testing"

	"fluxtrack/internal/fault"
	"fluxtrack/internal/rng"
)

// robustConfig is the effort level for the degraded-sensing tests: small
// enough for CI, large enough that the dropout sweep's error ordering is not
// pure noise (paired seeds across regimes do most of the variance
// reduction — see FigRobust).
func robustConfig() Config {
	return Config{Seed: 5, Trials: 2, Samples: 150, TrackN: 60, TrackM: 10, Rounds: 4}
}

// TestFigRobustWorkerInvariance is the acceptance criterion for the fault
// layer's determinism: the figRobust table must render byte-identical at
// Workers=1 and Workers=8. Fault draws are keyed by (injector seed, round,
// sensor, kind), never by a shared sequential stream, so worker scheduling
// cannot reorder them.
func TestFigRobustWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("robustness suite skipped in -short mode")
	}
	cfg := robustConfig()
	cfg.Workers = 1
	seq, err := FigRobust(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	par, err := FigRobust(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Render() != par.Render() {
		t.Errorf("figRobust differs across worker counts:\n--- Workers=1\n%s--- Workers=8\n%s",
			seq.Render(), par.Render())
	}
}

// TestDropoutDegradesGracefully is the acceptance criterion for graceful
// degradation: up to 30% permanent sensor dropout the tracker must keep
// producing finite errors — no NaN, no panic, no failed trial — and the
// mean error must not collapse or explode. Monotonicity in expectation is
// checked loosely: the clean regime must not be clearly worse than heavy
// dropout.
func TestDropoutDegradesGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("robustness suite skipped in -short mode")
	}
	cfg := robustConfig()
	fracs := []float64{0, 0.15, 0.30}
	means := make([]float64, len(fracs))
	for fi, frac := range fracs {
		// Same trial seeds for every fraction (paired design): the worlds
		// match, only the dropout differs.
		trials, err := runTrials(cfg, "dropoutSweep", 0, cfg.Trials,
			func(trial int, seed uint64) ([]float64, error) {
				sc := mustScenario(defaultScenarioCfg(), seed)
				src := rng.New(seed + 17)
				trajs, err := randomWalks(sc, 2, 4, cfg.Rounds, src)
				if err != nil {
					return nil, err
				}
				fcfg := cfg
				fcfg.Fault = fault.Config{DropoutFrac: frac}
				return trackTrial(fcfg, sc, trajs, 90, 5, false, src)
			})
		if err != nil {
			t.Fatalf("dropout %.2f: %v", frac, err)
		}
		var sum float64
		var n int
		for _, perRound := range trials {
			for _, e := range perRound {
				if math.IsNaN(e) || math.IsInf(e, 0) {
					t.Fatalf("dropout %.2f: non-finite round error %v", frac, e)
				}
				sum += e
				n++
			}
		}
		means[fi] = sum / float64(n)
	}
	diameter := mustScenario(defaultScenarioCfg(), 1).Field().Diameter()
	for fi, m := range means {
		if m >= diameter {
			t.Errorf("dropout %.2f: mean error %.2f not better than guessing", fracs[fi], m)
		}
	}
	// Degradation should be roughly monotone; tolerate sampling noise but
	// fail if heavy dropout somehow *beats* the clean stream decisively.
	if means[len(means)-1] < means[0]-1.0 {
		t.Errorf("30%% dropout (%.2f) decisively beat the clean stream (%.2f)", means[len(means)-1], means[0])
	}
	t.Logf("mean error by dropout: 0%%=%.2f 15%%=%.2f 30%%=%.2f", means[0], means[1], means[2])
}

// TestFigRobustErrorsOrdered sanity-checks the rendered sweep itself: every
// cell parses as a finite number and the clean regime's mean error is the
// best or near-best row (within slack), i.e. faults cost accuracy, they
// don't mysteriously add it.
func TestFigRobustErrorsOrdered(t *testing.T) {
	if testing.Short() {
		t.Skip("robustness suite skipped in -short mode")
	}
	tbl, err := FigRobust(robustConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Fatalf("figRobust has %d rows, want 9 regimes", len(tbl.Rows))
	}
	var clean float64
	var worst float64
	for _, row := range tbl.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("regime %s: unparsable cell %q", row[0], cell)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("regime %s: non-finite cell %v", row[0], v)
			}
		}
		mean, _ := strconv.ParseFloat(row[1], 64)
		if row[0] == "none" {
			clean = mean
		}
		if mean > worst {
			worst = mean
		}
	}
	if clean > worst+0.5 {
		t.Errorf("clean regime (%.2f) worse than every degraded regime (worst %.2f)", clean, worst)
	}
}

// TestConcurrentFaultTrialsRaceClean drives fault-injected trials through
// the PR1 worker pool at high concurrency. Its real assertion is the -race
// detector in CI: injectors are per-trial state, so no two workers may ever
// share one.
func TestConcurrentFaultTrialsRaceClean(t *testing.T) {
	cfg := Config{Seed: 3, Trials: 8, Samples: 100, TrackN: 30, TrackM: 5, Rounds: 3, Workers: 8}
	cfg.Fault = fault.Config{DropoutFrac: 0.2, LossProb: 0.2, DelayProb: 0.3, DelayRounds: 1, StuckFrac: 0.1}
	trials, err := runTrials(cfg, "raceFault", 0, cfg.Trials,
		func(trial int, seed uint64) ([]float64, error) {
			sc := mustScenario(defaultScenarioCfg(), seed)
			src := rng.New(seed + 17)
			trajs, err := randomWalks(sc, 1, 4, cfg.Rounds, src)
			if err != nil {
				return nil, err
			}
			return trackTrial(cfg, sc, trajs, 90, 5, false, src)
		})
	if err != nil {
		t.Fatal(err)
	}
	for ti, perRound := range trials {
		if len(perRound) != cfg.Rounds {
			t.Errorf("trial %d produced %d rounds, want %d", ti, len(perRound), cfg.Rounds)
		}
		for _, e := range perRound {
			if math.IsNaN(e) || math.IsInf(e, 0) {
				t.Errorf("trial %d: non-finite error %v", ti, e)
			}
		}
	}
}
