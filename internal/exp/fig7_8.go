package exp

import (
	"errors"
	"fmt"

	"fluxtrack/internal/core"
	"fluxtrack/internal/fault"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mobility"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/smc"
	"fluxtrack/internal/stats"
)

// trackTrial runs one tracking trial: k users following the given
// trajectories, observed over cfg.Rounds windows at unit intervals through
// a sniffer of sampleCount nodes. It returns the identity-agnostic matched
// error per round (averaged over users).
//
// When cfg.Fault is enabled the observation stream passes through a fault
// injector seeded from the trial's own stream, and rounds run through the
// masked tracker step: absent sensors drop out of the fit, delayed reports
// are deflated by their staleness, and a round where nothing is delivered
// (smc.ErrAllMasked) carries the previous estimates forward — degraded, not
// broken.
//
// When cfg.Adversary is enabled a deterministic subset of sensors lies
// before the injector runs (inflate, deflate, replay, coalition — see
// fault.Adversary), and cfg.Robust arms the fit-layer defense against them.
func trackTrial(cfg Config, sc *core.Scenario, trajectories []mobility.Trajectory,
	sampleCount int, vmax float64, uniformWeights bool, src *rng.Source) ([]float64, error) {
	sniffer, err := sc.NewSnifferCount(sampleCount, src)
	if err != nil {
		return nil, err
	}
	k := len(trajectories)
	stretches := make([]float64, k)
	for i := range stretches {
		stretches[i] = src.Uniform(1, 3)
	}
	tcfg := core.TrackerConfig{
		N: cfg.TrackN, M: cfg.TrackM, VMax: vmax, UniformWeights: uniformWeights,
		Search: cfg.trackerSearch(), Coarse: cfg.Coarse, DBCache: cfg.DBCache,
		Shards: cfg.Shards, Workers: cfg.Workers,
		Metrics: cfg.Metrics, Trace: cfg.Trace,
	}
	if cfg.Shards.Tiles() > 0 {
		// Seed each user's owning tile from its trajectory start so the
		// first rounds route observations to the right shard.
		starts := make([]geom.Point, k)
		for i, tr := range trajectories {
			starts[i] = sc.Field().Clamp(tr.At(0))
		}
		tcfg.InitialPositions = starts
	}
	// NewStepTracker returns the sharded coordinator when cfg.Shards names a
	// grid and the plain tracker otherwise; both step identically below.
	tracker, err := sniffer.NewStepTracker(k, tcfg, src.Uint64())
	if err != nil {
		return nil, err
	}
	// The injector seed is drawn only when faults are on, so fault-free
	// trials consume exactly the seed stream they always did.
	var inj *fault.Injector
	if cfg.Fault.Enabled() {
		inj, err = sniffer.NewFaultInjector(cfg.Fault, src.Uint64())
		if err != nil {
			return nil, err
		}
		inj.SetMetrics(cfg.Metrics)
	}
	// Same gating for the adversary seed: honest trials keep their streams.
	var adv *fault.Adversary
	if cfg.Adversary.Enabled() {
		adv, err = sniffer.NewAdversary(cfg.Adversary, src.Uint64())
		if err != nil {
			return nil, err
		}
		adv.SetMetrics(cfg.Metrics)
	}
	// Estimates persist across rounds so a fully masked round scores the
	// previous round's belief; before any round succeeds, the best
	// uninformed guess is the field center.
	estimates := make([]geom.Point, k)
	for i := range estimates {
		estimates[i] = sc.Field().Center()
	}
	perRound := make([]float64, 0, cfg.Rounds)
	for round := 1; round <= cfg.Rounds; round++ {
		t := float64(round)
		truths := make([]geom.Point, k)
		for i, tr := range trajectories {
			truths[i] = sc.Field().Clamp(tr.At(t))
		}
		obs, err := sniffer.Observe(activeUsers(truths, stretches), 0, src)
		if err != nil {
			return nil, err
		}
		// Byzantine sensors tamper before any benign degradation: a liar's
		// report can still be dropped or delayed by the injector downstream.
		if adv != nil {
			obs, err = adv.Apply(obs)
			if err != nil {
				return nil, err
			}
		}
		var res smc.StepResult
		if inj == nil {
			res, err = tracker.Step(t, obs)
		} else {
			var deg fault.Observation
			deg, err = inj.Apply(obs)
			if err != nil {
				return nil, err
			}
			res, err = tracker.StepMasked(t, deg.Readings, deg.Present, deg.Age)
		}
		switch {
		case errors.Is(err, smc.ErrAllMasked):
			// Nothing delivered this round: keep the previous estimates.
		case err != nil:
			return nil, err
		default:
			for i, est := range res.Estimates {
				estimates[i] = est.Mean
			}
		}
		perRound = append(perRound, stats.Mean(matchErrors(estimates, truths)))
	}
	return perRound, nil
}

// randomWalks builds k independent speed-bounded walks.
func randomWalks(sc *core.Scenario, k int, maxSpeed float64, rounds int, src *rng.Source) ([]mobility.Trajectory, error) {
	out := make([]mobility.Trajectory, k)
	for i := range out {
		w, err := mobility.NewRandomWalk(sc.Field(), src.InRect(sc.Field()), maxSpeed, rounds+1, src)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

// Fig7 regenerates Figure 7: per-round tracking error for the four instant
// cases — one, two, and three users on straight trajectories, plus the
// crossing pair of Fig 7(d) — with full-network flux, N and M at the
// paper's values, and max speed below 5 per interval.
func Fig7(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "fig7",
		Title:   "Per-round tracking error (full-network flux)",
		Paper:   "estimates converge to trajectories; 1-user error < 2 by the final rounds; crossing users keep trajectories but may swap identities",
		Columns: []string{"round", "1 user", "2 users", "3 users", "2 users crossing"},
	}

	cases := []struct {
		name string
		traj func(sc *core.Scenario, src *rng.Source) ([]mobility.Trajectory, error)
	}{
		{"one", func(sc *core.Scenario, src *rng.Source) ([]mobility.Trajectory, error) {
			return []mobility.Trajectory{
				mobility.Linear{Start: geom.Pt(4, 15), V: geom.Vec{DX: 2, DY: 0.5}},
			}, nil
		}},
		{"two", func(sc *core.Scenario, src *rng.Source) ([]mobility.Trajectory, error) {
			return []mobility.Trajectory{
				mobility.Linear{Start: geom.Pt(4, 6), V: geom.Vec{DX: 2, DY: 1}},
				mobility.Linear{Start: geom.Pt(26, 24), V: geom.Vec{DX: -2, DY: -0.5}},
			}, nil
		}},
		{"three", func(sc *core.Scenario, src *rng.Source) ([]mobility.Trajectory, error) {
			return []mobility.Trajectory{
				mobility.Linear{Start: geom.Pt(4, 4), V: geom.Vec{DX: 2, DY: 1.5}},
				mobility.Linear{Start: geom.Pt(26, 6), V: geom.Vec{DX: -2, DY: 1}},
				mobility.Linear{Start: geom.Pt(15, 26), V: geom.Vec{DX: 0.5, DY: -2}},
			}, nil
		}},
		{"crossing", func(sc *core.Scenario, src *rng.Source) ([]mobility.Trajectory, error) {
			a, b, err := mobility.CrossingPair(sc.Field(), 2.5, 0, float64(cfg.Rounds))
			if err != nil {
				return nil, err
			}
			return []mobility.Trajectory{a, b}, nil
		}},
	}

	perCase := make([][]float64, len(cases)) // [case][round] mean error
	for ci, cs := range cases {
		cs := cs
		trials, err := runTrials(cfg, "fig7"+cs.name, ci, cfg.Trials,
			func(trial int, seed uint64) ([]float64, error) {
				sc := cfg.scenario(defaultScenarioCfg(), seed)
				src := rng.New(seed + 17)
				trajs, err := cs.traj(sc, src)
				if err != nil {
					return nil, err
				}
				return trackTrial(cfg, sc, trajs, sc.Network().Len(), 5, false, src)
			})
		if err != nil {
			return Table{}, err
		}
		sums := make([]float64, cfg.Rounds)
		for _, perRound := range trials {
			for r, e := range perRound {
				sums[r] += e
			}
		}
		for r := range sums {
			sums[r] /= float64(cfg.Trials)
		}
		perCase[ci] = sums
	}

	for r := 0; r < cfg.Rounds; r++ {
		row := []string{fmt.Sprintf("%d", r+1)}
		for ci := range cases {
			row = append(row, f2(perCase[ci][r]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig8a regenerates Figure 8(a): final-round tracking error vs the
// percentage of sampling nodes for 1-4 users on random walks.
func Fig8a(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "fig8a",
		Title:   "Tracking error vs percentage of sampling nodes",
		Paper:   "accuracy stable until sampling drops below 5%; 10% of nodes already acceptable",
		Columns: []string{"pct", "1 user", "2 users", "3 users", "4 users"},
	}
	pcts := []int{40, 20, 10, 5}
	ks := []int{1, 2, 3, 4}
	type spec struct{ pct, k int }
	var cells []int
	var specs []spec
	for _, pct := range pcts {
		for _, k := range ks {
			cells = append(cells, pct*10+k)
			specs = append(specs, spec{pct, k})
		}
	}
	res, err := runCells(cfg, "fig8a", cells, func(ci, trial int, seed uint64) (float64, error) {
		sc := cfg.scenario(defaultScenarioCfg(), seed)
		src := rng.New(seed + 17)
		trajs, err := randomWalks(sc, specs[ci].k, 4, cfg.Rounds, src)
		if err != nil {
			return 0, err
		}
		count := sc.Network().Len() * specs[ci].pct / 100
		perRound, err := trackTrial(cfg, sc, trajs, count, 5, false, src)
		if err != nil {
			return 0, err
		}
		return perRound[len(perRound)-1], nil
	})
	if err != nil {
		return Table{}, err
	}
	for pi, pct := range pcts {
		row := []string{fmt.Sprintf("%d%%", pct)}
		for kj := range ks {
			row = append(row, f2(stats.Mean(res[pi*len(ks)+kj])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig8b regenerates Figure 8(b): final-round tracking error vs node count
// with the report count fixed at 90.
func Fig8b(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "fig8b",
		Title:   "Tracking error vs node count (90 reports fixed)",
		Paper:   "network density does not significantly affect tracking accuracy",
		Columns: []string{"nodes", "1 user", "2 users", "3 users", "4 users"},
	}
	nodeCounts := []int{900, 1200, 1500, 1800}
	ks := []int{1, 2, 3, 4}
	type spec struct{ nodes, k int }
	var cells []int
	var specs []spec
	for _, nodes := range nodeCounts {
		for _, k := range ks {
			cells = append(cells, nodes+k)
			specs = append(specs, spec{nodes, k})
		}
	}
	res, err := runCells(cfg, "fig8b", cells, func(ci, trial int, seed uint64) (float64, error) {
		scc := defaultScenarioCfg()
		scc.Nodes = specs[ci].nodes
		sc := cfg.scenario(scc, seed)
		src := rng.New(seed + 17)
		trajs, err := randomWalks(sc, specs[ci].k, 4, cfg.Rounds, src)
		if err != nil {
			return 0, err
		}
		perRound, err := trackTrial(cfg, sc, trajs, 90, 5, false, src)
		if err != nil {
			return 0, err
		}
		return perRound[len(perRound)-1], nil
	})
	if err != nil {
		return Table{}, err
	}
	for ni, nodes := range nodeCounts {
		row := []string{fmt.Sprintf("%d", nodes)}
		for kj := range ks {
			row = append(row, f2(stats.Mean(res[ni*len(ks)+kj])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationImportance compares importance-weighted resampling (§4.D) with
// the uniform-weight variant (design choice A2): final-round tracking error
// for two users at 10% sampling.
func AblationImportance(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "ablation-importance",
		Title:   "Importance sampling on/off (2 users, 10% sampling)",
		Paper:   "the paper adopts importance sampling for faster, more accurate convergence",
		Columns: []string{"weighting", "final_err_mean", "final_err_p90"},
	}
	cells := []int{boolCell(false), boolCell(true)}
	res, err := runCells(cfg, "ablA2", cells, func(ci, trial int, seed uint64) (float64, error) {
		uniform := cells[ci] == 1
		sc := cfg.scenario(defaultScenarioCfg(), seed)
		src := rng.New(seed + 17)
		trajs, err := randomWalks(sc, 2, 4, cfg.Rounds, src)
		if err != nil {
			return 0, err
		}
		perRound, err := trackTrial(cfg, sc, trajs, 90, 5, uniform, src)
		if err != nil {
			return 0, err
		}
		return perRound[len(perRound)-1], nil
	})
	if err != nil {
		return Table{}, err
	}
	for ci := range cells {
		label := "importance"
		if cells[ci] == 1 {
			label = "uniform"
		}
		t.Rows = append(t.Rows, []string{
			label, f2(stats.Mean(res[ci])), f2(stats.Percentile(res[ci], 90)),
		})
	}
	return t, nil
}

func boolCell(b bool) int {
	if b {
		return 1
	}
	return 0
}
