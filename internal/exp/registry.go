package exp

import "fmt"

// Experiment is one named, runnable experiment.
type Experiment struct {
	ID   string
	Run  func(Config) (Table, error)
	Note string
}

// All returns every experiment in presentation order: the paper's figures
// first, then the ablations and extensions.
func All() []Experiment {
	return []Experiment{
		{ID: "fig3a", Run: Fig3a, Note: "model error-rate CDF vs density"},
		{ID: "fig3b", Run: Fig3b, Note: "measured vs model flux by hop"},
		{ID: "fig4", Run: Fig4, Note: "recursive flux briefing, 3 users"},
		{ID: "fig5", Run: Fig5, Note: "instant localization, full flux"},
		{ID: "fig6a", Run: Fig6a, Note: "localization vs sampling %"},
		{ID: "fig6b", Run: Fig6b, Note: "localization vs density"},
		{ID: "fig7", Run: Fig7, Note: "tracking cases incl. crossing"},
		{ID: "fig8a", Run: Fig8a, Note: "tracking vs sampling %"},
		{ID: "fig8b", Run: Fig8b, Note: "tracking vs density"},
		{ID: "fig10a", Run: Fig10a, Note: "trace-driven vs sampling %"},
		{ID: "fig10b", Run: Fig10b, Note: "trace-driven vs max speed"},
		{ID: "ablation-search", Run: AblationSearch, Note: "exhaustive vs conditional search"},
		{ID: "ablation-importance", Run: AblationImportance, Note: "importance sampling on/off"},
		{ID: "ablation-smoothing", Run: AblationSmoothing, Note: "flux smoothing passes"},
		{ID: "countermeasure", Run: Countermeasure, Note: "traffic reshaping defense"},
		{ID: "noise", Run: NoiseRobustness, Note: "measurement-noise robustness"},
		{ID: "baseline-ekf", Run: BaselineEKF, Note: "SMC vs EKF baseline tracker"},
		{ID: "ablation-heading", Run: AblationHeading, Note: "heading-informed prediction"},
		{ID: "ablation-packet", Run: AblationPacketLevel, Note: "fluid vs packet-level sniffing"},
		{ID: "aggregation", Run: AggregationDefense, Note: "TAG aggregation defense"},
		{ID: "figRobust", Run: FigRobust, Note: "tracking under degraded sensing"},
		{ID: "figCoarse", Run: FigCoarse, Note: "coarse shortlist size vs accuracy"},
		{ID: "figShard", Run: FigShard, Note: "field sharding: seams, halos, work"},
		{ID: "figByzantine", Run: FigByzantine, Note: "Byzantine sensors × robust defenses"},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}
