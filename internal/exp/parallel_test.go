package exp

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachUnitCoversEveryIndex checks that every index in [0, n) runs
// exactly once at a spread of worker counts, including workers > n.
func TestForEachUnitCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 7, 16, 100} {
		for _, n := range []int{0, 1, 2, 5, 17, 64} {
			var counts sync.Map
			err := forEachUnit(workers, n, func(i int) error {
				v, _ := counts.LoadOrStore(i, new(atomic.Int64))
				v.(*atomic.Int64).Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			seen := 0
			counts.Range(func(k, v any) bool {
				i := k.(int)
				if i < 0 || i >= n {
					t.Errorf("workers=%d n=%d: out-of-range index %d", workers, n, i)
				}
				if c := v.(*atomic.Int64).Load(); c != 1 {
					t.Errorf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
				seen++
				return true
			})
			if seen != n {
				t.Errorf("workers=%d n=%d: %d distinct indices ran", workers, n, seen)
			}
		}
	}
}

// TestForEachUnitSequentialOrder checks that the workers=1 path preserves
// the exact legacy iteration order and aborts at the first error.
func TestForEachUnitSequentialOrder(t *testing.T) {
	var order []int
	if err := forEachUnit(1, 5, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Errorf("sequential order = %v", order)
	}

	order = order[:0]
	boom := fmt.Errorf("boom")
	err := forEachUnit(1, 5, func(i int) error {
		order = append(order, i)
		if i == 2 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Errorf("error = %v, want boom", err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2}) {
		t.Errorf("sequential path did not abort at first error: ran %v", order)
	}
}

// TestForEachUnitLowestIndexErrorWins checks that when several units fail
// concurrently, the reported error is always the lowest-indexed one — the
// same error the sequential path would have returned — regardless of
// scheduling.
func TestForEachUnitLowestIndexErrorWins(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		err := forEachUnit(workers, 16, func(i int) error {
			if i%3 == 2 { // units 2, 5, 8, 11, 14 fail
				return fmt.Errorf("unit %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "unit 2 failed" {
			t.Errorf("workers=%d: error = %v, want unit 2 failed", workers, err)
		}
	}
}

// TestRunTrialsSeedsAndIndexing checks that runTrials hands each trial the
// seed trialSeed(exp, cell, trial) and stores its result at index trial.
func TestRunTrialsSeedsAndIndexing(t *testing.T) {
	cfg := Config{Seed: 7, Trials: 6, Workers: 3}
	got, err := runTrials(cfg, "unit", 4, 6, func(trial int, seed uint64) (uint64, error) {
		return seed, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for trial, seed := range got {
		if want := cfg.trialSeed("unit", 4, trial); seed != want {
			t.Errorf("trial %d: seed %d, want %d", trial, seed, want)
		}
	}
}

// TestRunCellsSeedsAndIndexing checks the (cell, trial) result layout and
// seed derivation, using the cell VALUES (which key the seed) rather than
// their slice positions.
func TestRunCellsSeedsAndIndexing(t *testing.T) {
	cfg := Config{Seed: 3, Trials: 4, Workers: 2}
	cells := []int{30, 10, 20}
	got, err := runCells(cfg, "unit", cells, func(ci, trial int, seed uint64) ([2]uint64, error) {
		return [2]uint64{uint64(ci), seed}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cells) {
		t.Fatalf("got %d cells, want %d", len(got), len(cells))
	}
	for ci, cellVal := range cells {
		if len(got[ci]) != cfg.Trials {
			t.Fatalf("cell %d: %d trials, want %d", ci, len(got[ci]), cfg.Trials)
		}
		for trial, v := range got[ci] {
			if v[0] != uint64(ci) {
				t.Errorf("cell %d trial %d: stored at wrong cell %d", ci, trial, v[0])
			}
			if want := cfg.trialSeed("unit", cellVal, trial); v[1] != want {
				t.Errorf("cell %d trial %d: seed %d, want %d", ci, trial, v[1], want)
			}
		}
	}
}

// TestRunCellsSequentialLegacyOrder checks that Workers=1 visits units
// exactly as the pre-parallel loops did: cells outer, trials inner.
func TestRunCellsSequentialLegacyOrder(t *testing.T) {
	cfg := Config{Seed: 1, Trials: 3, Workers: 1}
	var order [][2]int
	if _, err := runCells(cfg, "unit", []int{5, 9}, func(ci, trial int, seed uint64) (int, error) {
		order = append(order, [2]int{ci, trial})
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("sequential unit order = %v, want %v", order, want)
	}
}

// TestRunTrialsOrderInsensitive forces trials to COMPLETE in reverse order
// (later indices sleep less) and checks the result slice is still indexed
// by trial, not by completion time.
func TestRunTrialsOrderInsensitive(t *testing.T) {
	cfg := Config{Seed: 1, Trials: 8, Workers: 8}
	const n = 8
	got, err := runTrials(cfg, "unit", 0, n, func(trial int, seed uint64) (int, error) {
		time.Sleep(time.Duration(n-trial) * 2 * time.Millisecond)
		return trial * trial, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for trial, v := range got {
		if v != trial*trial {
			t.Errorf("trial %d: got %d, want %d", trial, v, trial*trial)
		}
	}
}

// TestWorkerCount checks the Workers knob's resolution rules.
func TestWorkerCount(t *testing.T) {
	if got := (Config{Workers: 3}).workerCount(); got != 3 {
		t.Errorf("Workers=3 resolved to %d", got)
	}
	if got := (Config{}).workerCount(); got < 1 {
		t.Errorf("Workers=0 resolved to %d, want >= 1", got)
	}
}
