// Package exp reproduces every figure of the paper's evaluation section
// (§3.B statistics and §5), plus the ablation studies listed in DESIGN.md.
// Each experiment returns a Table whose rows regenerate the corresponding
// figure's data series; cmd/fluxbench prints them and bench_test.go wraps
// them in testing.B benchmarks.
//
// Experiments are registered by id (fig3a … fig10b, abl*, figRobust) in
// registry.go and share one Config: seeds, trial counts, effort knobs
// (Samples, TrackN, TrackM, Rounds), a fault.Config for degraded-sensing
// runs, a Workers count, and optional obs instruments. Trials fan out over
// the deterministic worker pool in parallel.go and merge in index order, so
// every rendered table is byte-identical at any worker count — a property
// pinned by the golden tests in this package. Binding Config.Metrics and
// Config.Trace threads counters and step spans through every layer of a run
// without changing any of those bytes (see TestMetricsDoNotPerturbTables).
package exp

import (
	"fmt"
	"strings"

	"fluxtrack/internal/core"
	"fluxtrack/internal/fault"
	"fluxtrack/internal/fingerprint"
	"fluxtrack/internal/fit"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/obs"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/shard"
	"fluxtrack/internal/traffic"
)

// Table is one experiment's regenerated data.
type Table struct {
	ID      string     // experiment id, e.g. "fig6a"
	Title   string     // what the table shows
	Paper   string     // the shape the paper reports, for side-by-side reading
	Columns []string   // column headers
	Rows    [][]string // data rows
}

// Render returns the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(&b, "   paper: %s\n", t.Paper)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Config scales experiment effort. DefaultConfig matches the paper's
// settings; QuickConfig shrinks everything so the full suite runs in
// seconds (used by benchmarks and smoke tests).
type Config struct {
	Seed    uint64 // base seed; experiments derive per-trial seeds from it
	Trials  int    // repetitions per configuration cell
	Samples int    // candidate positions per user in localization searches
	TrackN  int    // SMC prediction samples per user per round
	TrackM  int    // SMC kept representatives
	Rounds  int    // tracking rounds per trial
	// Workers bounds the goroutines running (cell, trial) units, the inner
	// candidate-scoring loops of the NLS search, and every intra-step phase
	// of the SMC tracker (prediction, filtering, update — see
	// smc.Config.Workers). 0 means one worker per CPU (GOMAXPROCS); 1
	// forces the exact sequential legacy path. Every value produces
	// byte-identical tables — see parallel.go.
	Workers int
	// Fault degrades the observation stream every tracking trial sees:
	// permanent sensor dropout, per-round report loss, delayed delivery, and
	// stuck readings (see internal/fault). The zero value is the clean,
	// lossless stream of the paper's evaluation. Each trial gets its own
	// injector seeded from the trial seed, so fault patterns are byte-stable
	// at any worker count like everything else in this package.
	Fault fault.Config
	// Adversary compromises a deterministic subset of each tracking trial's
	// sensors with Byzantine behaviors — inflated, deflated, or replayed
	// readings and colluding coalitions (see fault.AdversaryConfig).
	// Tampering happens upstream of the Fault injector, so a liar's report
	// can still be lost or delayed. The zero value keeps every sensor
	// honest. Each trial gets its own adversary seeded from the trial seed,
	// so the compromised set is byte-stable at any worker count.
	Adversary fault.AdversaryConfig
	// Robust arms the robust-fitting defense in every localization and
	// tracker search (fit.Options.Robust): per-sensor trust multipliers
	// derived from Huber or leave-one-sensor-out residual checks, re-ranking
	// on the reweighted problem. The zero value keeps the undefended fit.
	Robust fit.RobustConfig
	// Coarse, when Enabled, switches every tracking trial to the
	// coarse-to-fine candidate search: each trial's tracker precomputes a
	// fingerprint database over its sniffer's nodes and shortlists TopK
	// candidates per user per round before the exact evaluator runs (see
	// core.TrackerConfig.Coarse). The zero value keeps the exact search of
	// the paper's evaluation. Shortlisting changes which candidates are
	// ranked, so tables rendered with Coarse enabled are not byte-comparable
	// to exact tables unless TopK >= TrackN; the figCoarse experiment
	// quantifies the accuracy cost across shortlist sizes.
	Coarse fingerprint.CoarseConfig
	// Shards, when it names a grid (Tiles() > 0), runs every tracking trial
	// through the tiled multi-shard coordinator (internal/shard) instead of
	// the single tracker: the field splits into Rows×Cols tiles, each owning
	// its sensors and an independent SMC tracker, and users hand off between
	// tiles as their estimates cross seams. Each user's owning tile is seeded
	// from its trajectory start. A 1×1 grid reproduces the unsharded tables
	// byte for byte (pinned by TestShardOneByOneMatchesUnsharded); larger
	// grids trade seam accuracy for per-tile work reduction, quantified by
	// the figShard experiment. The zero Grid keeps the plain tracker.
	Shards shard.Grid
	// DBCache, when non-nil, memoizes coarse fingerprint-database builds
	// across every tracker constructed by the experiments sharing it — the
	// trials of a cell, the tiles of a sharded field — keyed by (model,
	// bounds, sensor layout, grid resolution); see fingerprint.Cache. Caching
	// never changes a rendered Table (databases are deterministic), it only
	// removes redundant builds. Nil builds each database from scratch.
	DBCache *fingerprint.Cache
	// Metrics, when non-nil, receives work counters and latency histograms
	// from every layer the experiments touch: the harness pool (exp.pool.*,
	// exp.trial.wall_ms), the SMC tracker (smc.step.*), the inner NLS search
	// (fit.search.*, fit.nnls.*), the traffic simulator (traffic.*), and the
	// fault injector (fault.*). Metrics are write-only — enabling them never
	// changes a rendered Table, and every counter total is worker-count
	// invariant (TestMetricsDoNotPerturbTables pins both properties). Nil
	// disables all instrumentation.
	Metrics *obs.Metrics
	// Trace, when non-nil, receives one obs.Span per tracker round across
	// all tracking trials (spans carry the trial seed, so a shared ring
	// disentangles). Nil disables span collection.
	Trace *obs.Trace
}

// DefaultConfig returns the paper-faithful settings (§5): 10,000 samples
// per user for instant localization, N=1000/M=10 for tracking, 10 rounds.
func DefaultConfig() Config {
	return Config{Seed: 1, Trials: 10, Samples: 10000, TrackN: 1000, TrackM: 10, Rounds: 10}
}

// QuickConfig returns a configuration small enough for benchmarks while
// preserving every code path.
func QuickConfig() Config {
	return Config{Seed: 1, Trials: 2, Samples: 800, TrackN: 200, TrackM: 10, Rounds: 6}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Trials <= 0 {
		c.Trials = d.Trials
	}
	if c.Samples <= 0 {
		c.Samples = d.Samples
	}
	if c.TrackN <= 0 {
		c.TrackN = d.TrackN
	}
	if c.TrackM <= 0 {
		c.TrackM = d.TrackM
	}
	if c.Rounds <= 0 {
		c.Rounds = d.Rounds
	}
	return c
}

// searchOpts builds the fit options used by the localization call sites,
// carrying the Workers knob into the inner candidate-scoring loops (the
// hottest loop of instant localization at the paper's Samples=10000).
func (c Config) searchOpts(samples int, seed uint64) fit.Options {
	return fit.Options{Samples: samples, TopM: 10, Seed: seed, Workers: c.Workers, Metrics: c.Metrics, Robust: c.Robust}
}

// trackerSearch builds the inner-search options for the SMC tracker,
// bounded by the same Workers knob as the trial pool and carrying the
// robust-defense mode into every tracker round.
func (c Config) trackerSearch() fit.Options {
	return fit.Options{Workers: c.Workers, Metrics: c.Metrics, Robust: c.Robust}
}

// trialSeed derives a deterministic seed for one (experiment, cell, trial)
// coordinate.
func (c Config) trialSeed(exp string, cell, trial int) uint64 {
	h := c.Seed
	for _, ch := range exp {
		h = h*1099511628211 + uint64(ch)
	}
	h = h*1099511628211 + uint64(cell)*2654435761
	h = h*1099511628211 + uint64(trial)*40503
	return h
}

// matchErrors greedily pairs each estimate with its nearest unmatched true
// user position and returns the pairing distances. Tracker and localization
// identities are exchangeable, so evaluation always matches by proximity
// (the paper measures errors the same way after identity mixups).
func matchErrors(estimates, truths []geom.Point) []float64 {
	used := make([]bool, len(truths))
	out := make([]float64, 0, len(estimates))
	for _, est := range estimates {
		best, bestD := -1, 0.0
		for j, tr := range truths {
			if used[j] {
				continue
			}
			d := est.Dist(tr)
			if best < 0 || d < bestD {
				best, bestD = j, d
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		out = append(out, bestD)
	}
	return out
}

// activeUsers converts positions and stretches into active traffic users.
func activeUsers(positions []geom.Point, stretches []float64) []traffic.User {
	users := make([]traffic.User, len(positions))
	for i := range positions {
		users[i] = traffic.User{Pos: positions[i], Stretch: stretches[i], Active: true}
	}
	return users
}

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f3 formats a float with three decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// scenarioOrDie builds a scenario and panics on configuration errors, which
// in the experiment harness are always programming errors in the experiment
// definitions themselves.
// defaultScenarioCfg is the paper's standard deployment (§5.A): 900 nodes,
// perturbed grids, 30x30 field, radius 2.4.
func defaultScenarioCfg() core.ScenarioConfig { return core.ScenarioConfig{} }

func mustScenario(cfg core.ScenarioConfig, seed uint64) *core.Scenario {
	sc, err := core.NewScenario(cfg, rng.New(seed))
	if err != nil {
		panic(fmt.Sprintf("exp: scenario: %v", err))
	}
	return sc
}

// scenario builds one trial's world and binds the harness metrics registry
// to its traffic simulator, so the traffic.* counters cover localization and
// tracking trials alike. Each trial owns its scenario, so the bind is
// race-free by construction.
func (c Config) scenario(scc core.ScenarioConfig, seed uint64) *core.Scenario {
	sc := mustScenario(scc, seed)
	sc.SetMetrics(c.Metrics)
	return sc
}
