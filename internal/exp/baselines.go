package exp

import (
	"math"

	"fluxtrack/internal/core"
	"fluxtrack/internal/ekf"
	"fluxtrack/internal/fit"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mobility"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/stats"
	"fluxtrack/internal/traffic"
)

// BaselineEKF compares the Sequential Monte Carlo tracker against the two
// classical techniques the paper's related work cites for remote tracking
// (ablation A6): the Extended Kalman Filter and constrained NLS (CNLS).
// Both are linearized local methods; on the piecewise-smooth flux objective
// they only work from a good initialization, while the SMC tracker
// self-bootstraps.
func BaselineEKF(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "baseline-ekf",
		Title:   "SMC tracker vs EKF/CNLS baselines (1 user, 10% sampling, random walk)",
		Paper:   "§2/§4.A: linearized solvers need differentiability and good starts; SMC does not",
		Columns: []string{"tracker", "final_err_mean", "final_err_p90", "lost_frac(err>5)"},
	}

	type cell struct {
		errs []float64
		lost int
	}
	var smcCell, ekfBlind, ekfOracle, cnlsBlind, cnlsOracle cell

	for trial := 0; trial < cfg.Trials; trial++ {
		seed := cfg.trialSeed("ablA6", 0, trial)
		sc := mustScenario(defaultScenarioCfg(), seed)
		src := rng.New(seed + 17)
		walk, err := mobility.NewRandomWalk(sc.Field(), src.InRect(sc.Field()), 3, cfg.Rounds+1, src)
		if err != nil {
			return Table{}, err
		}
		sniffer, err := sc.NewSnifferCount(90, src)
		if err != nil {
			return Table{}, err
		}
		stretch := src.Uniform(1, 3)

		// SMC tracker (blind initialization, as always).
		tracker, err := sniffer.NewTracker(1, core.TrackerConfig{
			N: cfg.TrackN, M: cfg.TrackM, VMax: 5,
		}, seed+1)
		if err != nil {
			return Table{}, err
		}
		// EKF blind (field-center initialization) and EKF oracle (started
		// at the walk's true origin — the only regime where it is fair).
		blind, err := ekf.New(ekf.Config{
			Model: sc.Model(), SamplePoints: sniffer.Points(),
		})
		if err != nil {
			return Table{}, err
		}
		oracle, err := ekf.New(ekf.Config{
			Model: sc.Model(), SamplePoints: sniffer.Points(),
			InitPos: walk.At(0), InitUncertainty: 2,
		})
		if err != nil {
			return Table{}, err
		}
		// CNLS, blind and seeded at the true origin.
		cnlsB, err := fit.NewCNLSTracker(sc.Model(), sniffer.Points(), 5, 5)
		if err != nil {
			return Table{}, err
		}
		cnlsO, err := fit.NewCNLSTracker(sc.Model(), sniffer.Points(), 5, 5)
		if err != nil {
			return Table{}, err
		}
		cnlsO.Seed(walk.At(0), 0)

		var smcErr, blindErr, oracleErr, cnlsBErr, cnlsOErr float64
		for round := 1; round <= cfg.Rounds; round++ {
			tm := float64(round)
			truth := walk.At(tm)
			obs, err := sniffer.Observe([]traffic.User{
				{Pos: truth, Stretch: stretch, Active: true},
			}, 0, src)
			if err != nil {
				return Table{}, err
			}
			res, err := tracker.Step(tm, obs)
			if err != nil {
				return Table{}, err
			}
			smcErr = res.Estimates[0].Mean.Dist(truth)
			bp, err := blind.Step(1, obs)
			if err != nil {
				return Table{}, err
			}
			blindErr = bp.Dist(truth)
			op, err := oracle.Step(1, obs)
			if err != nil {
				return Table{}, err
			}
			oracleErr = op.Dist(truth)
			cb, err := cnlsB.Step(tm, obs, src)
			if err != nil {
				return Table{}, err
			}
			cnlsBErr = cb.Dist(truth)
			co, err := cnlsO.Step(tm, obs, src)
			if err != nil {
				return Table{}, err
			}
			cnlsOErr = co.Dist(truth)
		}
		record := func(c *cell, e float64) {
			c.errs = append(c.errs, e)
			if e > 5 {
				c.lost++
			}
		}
		record(&smcCell, smcErr)
		record(&ekfBlind, blindErr)
		record(&ekfOracle, oracleErr)
		record(&cnlsBlind, cnlsBErr)
		record(&cnlsOracle, cnlsOErr)
	}

	addRow := func(name string, c cell) {
		t.Rows = append(t.Rows, []string{
			name,
			f2(stats.Mean(c.errs)),
			f2(stats.Percentile(c.errs, 90)),
			f3(float64(c.lost) / float64(len(c.errs))),
		})
	}
	addRow("smc (blind)", smcCell)
	addRow("ekf (blind)", ekfBlind)
	addRow("ekf (oracle init)", ekfOracle)
	addRow("cnls (blind)", cnlsBlind)
	addRow("cnls (oracle init)", cnlsOracle)
	return t, nil
}

// AblationHeading evaluates the §4.C mobility-model refinement: prediction
// discs dead-reckoned along the estimated heading with half the radius,
// versus the paper's blind uniform-disc model (ablation A7). Straight-line
// movers benefit; the blind model is the safe default.
func AblationHeading(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "ablation-heading",
		Title:   "Heading-informed vs blind prediction (1 user, 10% sampling, straight mover)",
		Paper:   "§4.C: the mobility model can be refined given the user's heading",
		Columns: []string{"prediction", "final_err_mean", "mean_err_all_rounds"},
	}
	for _, heading := range []bool{false, true} {
		var finals, all []float64
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := cfg.trialSeed("ablA7", boolCell(heading), trial)
			sc := mustScenario(defaultScenarioCfg(), seed)
			src := rng.New(seed + 17)
			sniffer, err := sc.NewSnifferCount(90, src)
			if err != nil {
				return Table{}, err
			}
			tracker, err := sniffer.NewTracker(1, core.TrackerConfig{
				N: cfg.TrackN, M: cfg.TrackM, VMax: 5,
			}, seed+1)
			if err != nil {
				return Table{}, err
			}
			if heading {
				tracker, err = sniffer.NewTracker(1, core.TrackerConfig{
					N: cfg.TrackN, M: cfg.TrackM, VMax: 5, HeadingPrediction: true,
				}, seed+1)
				if err != nil {
					return Table{}, err
				}
			}
			traj := mobility.Linear{Start: src.InRect(sc.Field()),
				V: randomHeading(src, 2.5)}
			stretch := src.Uniform(1, 3)
			var last float64
			for round := 1; round <= cfg.Rounds; round++ {
				tm := float64(round)
				truth := sc.Field().Clamp(traj.At(tm))
				obs, err := sniffer.Observe([]traffic.User{
					{Pos: truth, Stretch: stretch, Active: true},
				}, 0, src)
				if err != nil {
					return Table{}, err
				}
				res, err := tracker.Step(tm, obs)
				if err != nil {
					return Table{}, err
				}
				last = res.Estimates[0].Mean.Dist(truth)
				all = append(all, last)
			}
			finals = append(finals, last)
		}
		label := "blind disc"
		if heading {
			label = "heading"
		}
		t.Rows = append(t.Rows, []string{label, f2(stats.Mean(finals)), f2(stats.Mean(all))})
	}
	return t, nil
}

// randomHeading returns a velocity with the given speed in a random
// direction.
func randomHeading(src *rng.Source, speed float64) geom.Vec {
	theta := src.Uniform(0, 2*math.Pi)
	return geom.Vec{DX: speed * math.Cos(theta), DY: speed * math.Sin(theta)}
}
