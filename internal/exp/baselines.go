package exp

import (
	"math"

	"fluxtrack/internal/core"
	"fluxtrack/internal/ekf"
	"fluxtrack/internal/fit"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mobility"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/stats"
	"fluxtrack/internal/traffic"
)

// BaselineEKF compares the Sequential Monte Carlo tracker against the two
// classical techniques the paper's related work cites for remote tracking
// (ablation A6): the Extended Kalman Filter and constrained NLS (CNLS).
// Both are linearized local methods; on the piecewise-smooth flux objective
// they only work from a good initialization, while the SMC tracker
// self-bootstraps.
func BaselineEKF(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "baseline-ekf",
		Title:   "SMC tracker vs EKF/CNLS baselines (1 user, 10% sampling, random walk)",
		Paper:   "§2/§4.A: linearized solvers need differentiability and good starts; SMC does not",
		Columns: []string{"tracker", "final_err_mean", "final_err_p90", "lost_frac(err>5)"},
	}

	type cell struct {
		errs []float64
		lost int
	}
	var smcCell, ekfBlind, ekfOracle, cnlsBlind, cnlsOracle cell

	// One trial's final-round error per tracker variant.
	type trialErrs struct {
		smc, ekfB, ekfO, cnlsB, cnlsO float64
	}
	trials, err := runTrials(cfg, "ablA6", 0, cfg.Trials, func(trial int, seed uint64) (trialErrs, error) {
		sc := cfg.scenario(defaultScenarioCfg(), seed)
		src := rng.New(seed + 17)
		walk, err := mobility.NewRandomWalk(sc.Field(), src.InRect(sc.Field()), 3, cfg.Rounds+1, src)
		if err != nil {
			return trialErrs{}, err
		}
		sniffer, err := sc.NewSnifferCount(90, src)
		if err != nil {
			return trialErrs{}, err
		}
		stretch := src.Uniform(1, 3)

		// SMC tracker (blind initialization, as always).
		tracker, err := sniffer.NewTracker(1, core.TrackerConfig{
			N: cfg.TrackN, M: cfg.TrackM, VMax: 5, Search: cfg.trackerSearch(),
			Coarse: cfg.Coarse, Workers: cfg.Workers,
			Metrics: cfg.Metrics, Trace: cfg.Trace,
		}, seed+1)
		if err != nil {
			return trialErrs{}, err
		}
		// EKF blind (field-center initialization) and EKF oracle (started
		// at the walk's true origin — the only regime where it is fair).
		blind, err := ekf.New(ekf.Config{
			Model: sc.Model(), SamplePoints: sniffer.Points(),
		})
		if err != nil {
			return trialErrs{}, err
		}
		oracle, err := ekf.New(ekf.Config{
			Model: sc.Model(), SamplePoints: sniffer.Points(),
			InitPos: walk.At(0), InitUncertainty: 2,
		})
		if err != nil {
			return trialErrs{}, err
		}
		// CNLS, blind and seeded at the true origin.
		cnlsB, err := fit.NewCNLSTracker(sc.Model(), sniffer.Points(), 5, 5)
		if err != nil {
			return trialErrs{}, err
		}
		cnlsO, err := fit.NewCNLSTracker(sc.Model(), sniffer.Points(), 5, 5)
		if err != nil {
			return trialErrs{}, err
		}
		cnlsO.Seed(walk.At(0), 0)

		var smcErr, blindErr, oracleErr, cnlsBErr, cnlsOErr float64
		for round := 1; round <= cfg.Rounds; round++ {
			tm := float64(round)
			truth := walk.At(tm)
			obs, err := sniffer.Observe([]traffic.User{
				{Pos: truth, Stretch: stretch, Active: true},
			}, 0, src)
			if err != nil {
				return trialErrs{}, err
			}
			res, err := tracker.Step(tm, obs)
			if err != nil {
				return trialErrs{}, err
			}
			smcErr = res.Estimates[0].Mean.Dist(truth)
			bp, err := blind.Step(1, obs)
			if err != nil {
				return trialErrs{}, err
			}
			blindErr = bp.Dist(truth)
			op, err := oracle.Step(1, obs)
			if err != nil {
				return trialErrs{}, err
			}
			oracleErr = op.Dist(truth)
			cb, err := cnlsB.Step(tm, obs, src)
			if err != nil {
				return trialErrs{}, err
			}
			cnlsBErr = cb.Dist(truth)
			co, err := cnlsO.Step(tm, obs, src)
			if err != nil {
				return trialErrs{}, err
			}
			cnlsOErr = co.Dist(truth)
		}
		return trialErrs{smc: smcErr, ekfB: blindErr, ekfO: oracleErr, cnlsB: cnlsBErr, cnlsO: cnlsOErr}, nil
	})
	if err != nil {
		return Table{}, err
	}
	record := func(c *cell, e float64) {
		c.errs = append(c.errs, e)
		if e > 5 {
			c.lost++
		}
	}
	for _, tr := range trials {
		record(&smcCell, tr.smc)
		record(&ekfBlind, tr.ekfB)
		record(&ekfOracle, tr.ekfO)
		record(&cnlsBlind, tr.cnlsB)
		record(&cnlsOracle, tr.cnlsO)
	}

	addRow := func(name string, c cell) {
		t.Rows = append(t.Rows, []string{
			name,
			f2(stats.Mean(c.errs)),
			f2(stats.Percentile(c.errs, 90)),
			f3(float64(c.lost) / float64(len(c.errs))),
		})
	}
	addRow("smc (blind)", smcCell)
	addRow("ekf (blind)", ekfBlind)
	addRow("ekf (oracle init)", ekfOracle)
	addRow("cnls (blind)", cnlsBlind)
	addRow("cnls (oracle init)", cnlsOracle)
	return t, nil
}

// AblationHeading evaluates the §4.C mobility-model refinement: prediction
// discs dead-reckoned along the estimated heading with half the radius,
// versus the paper's blind uniform-disc model (ablation A7). Straight-line
// movers benefit; the blind model is the safe default.
func AblationHeading(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "ablation-heading",
		Title:   "Heading-informed vs blind prediction (1 user, 10% sampling, straight mover)",
		Paper:   "§4.C: the mobility model can be refined given the user's heading",
		Columns: []string{"prediction", "final_err_mean", "mean_err_all_rounds"},
	}
	// One trial's final-round error plus its per-round errors in order.
	type headingTrial struct {
		final  float64
		rounds []float64
	}
	cells := []int{boolCell(false), boolCell(true)}
	res, err := runCells(cfg, "ablA7", cells, func(ci, trial int, seed uint64) (headingTrial, error) {
		heading := cells[ci] == 1
		sc := cfg.scenario(defaultScenarioCfg(), seed)
		src := rng.New(seed + 17)
		sniffer, err := sc.NewSnifferCount(90, src)
		if err != nil {
			return headingTrial{}, err
		}
		tracker, err := sniffer.NewTracker(1, core.TrackerConfig{
			N: cfg.TrackN, M: cfg.TrackM, VMax: 5, HeadingPrediction: heading,
			Search: cfg.trackerSearch(), Coarse: cfg.Coarse, Workers: cfg.Workers,
			Metrics: cfg.Metrics, Trace: cfg.Trace,
		}, seed+1)
		if err != nil {
			return headingTrial{}, err
		}
		traj := mobility.Linear{Start: src.InRect(sc.Field()),
			V: randomHeading(src, 2.5)}
		stretch := src.Uniform(1, 3)
		out := headingTrial{rounds: make([]float64, 0, cfg.Rounds)}
		for round := 1; round <= cfg.Rounds; round++ {
			tm := float64(round)
			truth := sc.Field().Clamp(traj.At(tm))
			obs, err := sniffer.Observe([]traffic.User{
				{Pos: truth, Stretch: stretch, Active: true},
			}, 0, src)
			if err != nil {
				return headingTrial{}, err
			}
			r, err := tracker.Step(tm, obs)
			if err != nil {
				return headingTrial{}, err
			}
			out.final = r.Estimates[0].Mean.Dist(truth)
			out.rounds = append(out.rounds, out.final)
		}
		return out, nil
	})
	if err != nil {
		return Table{}, err
	}
	for ci := range cells {
		var finals, all []float64
		for _, tr := range res[ci] {
			finals = append(finals, tr.final)
			all = append(all, tr.rounds...)
		}
		label := "blind disc"
		if cells[ci] == 1 {
			label = "heading"
		}
		t.Rows = append(t.Rows, []string{label, f2(stats.Mean(finals)), f2(stats.Mean(all))})
	}
	return t, nil
}

// randomHeading returns a velocity with the given speed in a random
// direction.
func randomHeading(src *rng.Source, speed float64) geom.Vec {
	theta := src.Uniform(0, 2*math.Pi)
	return geom.Vec{DX: speed * math.Cos(theta), DY: speed * math.Sin(theta)}
}
