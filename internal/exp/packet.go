package exp

import (
	"fluxtrack/internal/fit"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/sim"
	"fluxtrack/internal/stats"
	"fluxtrack/internal/traffic"
)

// packetTrial runs one instant localization against packet-level sniffing:
// users collect at t=0, sniffers physically count overheard packets across
// the wave, and the NLS fit runs on those counts. aggregated switches on
// TAG-style in-network aggregation.
func packetTrial(cfg Config, k int, aggregated bool, seed uint64) ([]float64, error) {
	sc := cfg.scenario(defaultScenarioCfg(), seed)
	src := rng.New(seed + 17)
	users := traffic.RandomUsers(sc.Field(), k, 1, 3, src)

	pktSim, err := sim.New(sim.Config{Net: sc.Network(), Aggregated: aggregated})
	if err != nil {
		return nil, err
	}
	for _, u := range users {
		if err := pktSim.Collect(u.Pos, u.Stretch, 0, src); err != nil {
			return nil, err
		}
	}

	nodes, err := traffic.PickSamplingNodes(sc.Network(), 90, src)
	if err != nil {
		return nil, err
	}
	points := make([]geom.Point, len(nodes))
	for i, n := range nodes {
		points[i] = sc.Network().Pos(n)
	}
	obs := pktSim.Sniff(points, 0, pktSim.WaveDuration()+1)

	prob, err := fit.NewProblem(sc.Model(), points, obs)
	if err != nil {
		return nil, err
	}
	res, err := fit.Localize(prob, k, cfg.searchOpts(sparseSearchSamples(cfg), seed), src)
	if err != nil {
		return nil, err
	}
	truths := make([]geom.Point, k)
	for i, u := range users {
		truths[i] = u.Pos
	}
	return matchErrors(res.Best[0].Positions, truths), nil
}

// AblationPacketLevel compares the fluid flux measurement against
// physically counted packet sniffing (ablation A8): the localization
// accuracy should be equivalent, validating the fluid shortcut used by the
// bulk experiments.
func AblationPacketLevel(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "ablation-packet",
		Title:   "Fluid flux vs packet-level sniffing (2 users, 10% sampling)",
		Paper:   "n/a (measurement-realism ablation: sniffed packet counts are the physical observable)",
		Columns: []string{"measurement", "mean_err", "median_err"},
	}
	// Fluid path: identical workload through the standard sniffer.
	fluidTrials, err := runTrials(cfg, "ablA8fluid", 0, cfg.Trials,
		func(trial int, seed uint64) ([]float64, error) {
			sc := cfg.scenario(defaultScenarioCfg(), seed)
			src := rng.New(seed + 17)
			return localizeTrial(cfg, sc, 2, 90, sparseSearchSamples(cfg), src)
		})
	if err != nil {
		return Table{}, err
	}
	var fluid []float64
	for _, es := range fluidTrials {
		fluid = append(fluid, es...)
	}
	t.Rows = append(t.Rows, []string{"fluid flux", f2(stats.Mean(fluid)), f2(stats.Median(fluid))})

	packetTrials, err := runTrials(cfg, "ablA8pkt", 0, cfg.Trials,
		func(trial int, seed uint64) ([]float64, error) {
			return packetTrial(cfg, 2, false, seed)
		})
	if err != nil {
		return Table{}, err
	}
	var packet []float64
	for _, es := range packetTrials {
		packet = append(packet, es...)
	}
	t.Rows = append(t.Rows, []string{"packet sniffing", f2(stats.Mean(packet)), f2(stats.Median(packet))})
	return t, nil
}

// AggregationDefense evaluates TAG-style in-network aggregation as a
// countermeasure (ablation A9): when every node forwards one aggregate
// packet, the flux fingerprint flattens and the attack collapses to random
// guessing — a structural defense the paper's future work hints at.
func AggregationDefense(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "aggregation",
		Title:   "Raw collection vs TAG aggregation (2 users, 10% sampling, packet-level)",
		Paper:   "n/a (defense extension: aggregation removes the traffic concentration the attack needs)",
		Columns: []string{"routing", "mean_err", "median_err"},
	}
	cells := []int{boolCell(false), boolCell(true)}
	res, err := runCells(cfg, "ablA9", cells, func(ci, trial int, seed uint64) ([]float64, error) {
		return packetTrial(cfg, 2, cells[ci] == 1, seed)
	})
	if err != nil {
		return Table{}, err
	}
	for ci := range cells {
		var errs []float64
		for _, es := range res[ci] {
			errs = append(errs, es...)
		}
		label := "raw collection"
		if cells[ci] == 1 {
			label = "TAG aggregation"
		}
		t.Rows = append(t.Rows, []string{label, f2(stats.Mean(errs)), f2(stats.Median(errs))})
	}
	return t, nil
}
