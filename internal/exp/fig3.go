package exp

import (
	"fmt"

	"fluxtrack/internal/core"
	"fluxtrack/internal/deploy"
	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/stats"
	"fluxtrack/internal/traffic"
)

// fig3Setting describes one network-density cell of Figure 3.
type fig3Setting struct {
	label  string
	nodes  int
	radius float64
}

// fig3Settings reproduces the degrees the paper examines: uniform random
// 2500-node networks with average degree 12, 16, and 27 on a square field.
func fig3Settings() []fig3Setting {
	return []fig3Setting{
		{"degree=12", 2500, 1.2},
		{"degree=16", 2500, 1.4},
		{"degree=27", 2500, 1.8},
	}
}

// fig3Accuracy computes the model accuracy statistics for one setting with
// the given number of smoothing passes applied to the measured flux. The
// seed comes from the trial pool (expID "fig3"+label, cell = passes).
func fig3Accuracy(set fig3Setting, smoothPasses int, seed uint64) (fluxmodel.AccuracyStats, error) {
	src := rng.New(seed)
	sc, err := core.NewScenario(core.ScenarioConfig{
		Nodes:        set.nodes,
		Radius:       set.radius,
		Deployment:   deploy.UniformRandom,
		SmoothPasses: smoothPassArg(smoothPasses),
	}, src)
	if err != nil {
		return fluxmodel.AccuracyStats{}, err
	}
	user := traffic.User{Pos: src.InRect(sc.Field()), Stretch: 2, Active: true}
	measured, err := sc.GroundFlux([]traffic.User{user})
	if err != nil {
		return fluxmodel.AccuracyStats{}, err
	}
	return fluxmodel.Accuracy(sc.Network(), sc.Model(), user.Pos, measured,
		user.Stretch, sc.Calibration().HopLength, 1)
}

// smoothPassArg converts an experiment's pass count into the ScenarioConfig
// encoding (0 means "default 1", -1 disables).
func smoothPassArg(passes int) int {
	if passes == 0 {
		return -1
	}
	return passes
}

// Fig3a regenerates Figure 3(a): the CDF of the model approximation error
// rate under three network densities. Rows are error-rate thresholds; one
// column per density reports the fraction of nodes at or below it.
func Fig3a(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	settings := fig3Settings()
	thresholds := []float64{0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0, 1.5, 2.0}

	perSetting := make([][]float64, len(settings))
	for si, set := range settings {
		set := set
		accs, err := runTrials(cfg, "fig3"+set.label, 1, cfg.Trials,
			func(trial int, seed uint64) (fluxmodel.AccuracyStats, error) {
				return fig3Accuracy(set, 1, seed)
			})
		if err != nil {
			return Table{}, err
		}
		var all []float64
		for _, acc := range accs {
			all = append(all, acc.ErrRates...)
		}
		perSetting[si] = all
	}

	t := Table{
		ID:    "fig3a",
		Title: "CDF of flux-model approximation error rate vs network density",
		Paper: "80%+ of nodes below 0.4 error rate; denser networks fit better",
		Columns: []string{"err_rate<=",
			settings[0].label, settings[1].label, settings[2].label},
	}
	for _, th := range thresholds {
		row := []string{f2(th)}
		for si := range settings {
			row = append(row, f3(stats.CDFAt(perSetting[si], th)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig3b regenerates Figure 3(b): measured vs model-approximated flux by hop
// distance from the sink in the degree-12 network, plus the share of the
// network flux carried by nodes three or more hops out.
func Fig3b(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	set := fig3Settings()[0] // degree 12, as the paper plots

	type hopAgg struct {
		n                   int
		measured, predicted float64
	}
	agg := map[int]*hopAgg{}
	var energyShare []float64
	accs, err := runTrials(cfg, "fig3"+set.label, 1, cfg.Trials,
		func(trial int, seed uint64) (fluxmodel.AccuracyStats, error) {
			return fig3Accuracy(set, 1, seed)
		})
	if err != nil {
		return Table{}, err
	}
	for _, acc := range accs {
		for _, b := range acc.ByHop {
			if b.N == 0 {
				continue
			}
			a := agg[b.Hop]
			if a == nil {
				a = &hopAgg{}
				agg[b.Hop] = a
			}
			a.n += b.N
			a.measured += b.Measured * float64(b.N)
			a.predicted += b.Predicted * float64(b.N)
		}
		energyShare = append(energyShare, acc.EnergyPreserved3Plus)
	}

	t := Table{
		ID:      "fig3b",
		Title:   "Measured vs model flux by hop distance (degree 12)",
		Paper:   "approximation error decreases with hops; 3+ hop nodes keep 70%+ flux energy",
		Columns: []string{"hop", "nodes", "measured", "model", "rel_err"},
	}
	maxHop := 0
	for h := range agg {
		if h > maxHop {
			maxHop = h
		}
	}
	for h := 1; h <= maxHop && h <= 16; h++ {
		a := agg[h]
		if a == nil || a.n == 0 {
			continue
		}
		meas := a.measured / float64(a.n)
		pred := a.predicted / float64(a.n)
		rel := 0.0
		if meas > 0 {
			rel = abs(meas-pred) / meas
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", h), fmt.Sprintf("%d", a.n), f2(meas), f2(pred), f3(rel),
		})
	}
	t.Rows = append(t.Rows, []string{
		"3+ hop flux share", "", f3(stats.Mean(energyShare)), "", "",
	})
	return t, nil
}

// AblationSmoothing quantifies how the sniffer's neighborhood-aggregation
// passes affect model fit quality (design choice A3 in DESIGN.md): the
// fraction of nodes under 0.4 error rate with 0, 1, and 2 passes.
func AblationSmoothing(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	set := fig3Settings()[1] // degree 16
	t := Table{
		ID:      "ablation-smoothing",
		Title:   "Model fit quality vs flux smoothing passes (degree 16)",
		Paper:   "the paper recommends neighborhood averaging for a smoother flux map",
		Columns: []string{"smooth_passes", "frac_err<=0.4", "median_err"},
	}
	passesList := []int{0, 1, 2}
	res, err := runCells(cfg, "fig3"+set.label, passesList,
		func(ci, trial int, seed uint64) (fluxmodel.AccuracyStats, error) {
			return fig3Accuracy(set, passesList[ci], seed)
		})
	if err != nil {
		return Table{}, err
	}
	for ci, passes := range passesList {
		var all []float64
		for _, acc := range res[ci] {
			all = append(all, acc.ErrRates...)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", passes),
			f3(stats.CDFAt(all, 0.4)),
			f3(stats.Median(all)),
		})
	}
	return t, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
