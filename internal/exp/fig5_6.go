package exp

import (
	"fmt"

	"fluxtrack/internal/core"
	"fluxtrack/internal/fit"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/stats"
	"fluxtrack/internal/traffic"
)

// localizeTrial runs one instant-localization trial: k users with random
// stretches in [1, 3), a sniffer covering sampleCount nodes, NLS fitting,
// and greedy error matching. It returns the per-user errors.
func localizeTrial(cfg Config, sc *core.Scenario, k, sampleCount, samples int, src *rng.Source) ([]float64, error) {
	sniffer, err := sc.NewSnifferCount(sampleCount, src)
	if err != nil {
		return nil, err
	}
	users := traffic.RandomUsers(sc.Field(), k, 1, 3, src)
	if _, err := sniffer.Observe(users, 0, src); err != nil {
		return nil, err
	}
	res, err := sniffer.Localize(k, cfg.searchOpts(samples, src.Uint64()), src)
	if err != nil {
		return nil, err
	}
	truths := make([]geom.Point, k)
	for i, u := range users {
		truths[i] = u.Pos
	}
	return matchErrors(res.Best[0].Positions, truths), nil
}

// Fig5 regenerates Figure 5: instant localization with the flux of the
// whole network (every node reports), for 1, 2, and 3 simultaneous users.
// The paper's average errors are 0.97, 1.27, and 1.63 with maxima 1.78 and
// 2.06 for the multi-user cases.
func Fig5(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "fig5",
		Title:   "Instant localization accuracy, full-network flux",
		Paper:   "avg err 0.97 / 1.27 / 1.63 for 1 / 2 / 3 users; more users -> lower accuracy",
		Columns: []string{"users", "mean_err", "median_err", "max_err"},
	}
	ks := []int{1, 2, 3}
	res, err := runCells(cfg, "fig5", ks, func(ci, trial int, seed uint64) ([]float64, error) {
		sc := cfg.scenario(defaultScenarioCfg(), seed)
		src := rng.New(seed + 17)
		return localizeTrial(cfg, sc, ks[ci], sc.Network().Len(), cfg.Samples, src)
	})
	if err != nil {
		return Table{}, err
	}
	for ci, k := range ks {
		var errs []float64
		for _, es := range res[ci] {
			errs = append(errs, es...)
		}
		s := stats.Summarize(errs)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k), f2(s.Mean), f2(s.Median), f2(s.Max),
		})
	}
	return t, nil
}

// sparseSearchSamples caps the candidate count for the sweep experiments so
// the full grid stays tractable; the paper's 10,000-sample setting is kept
// for the three-cell Figure 5.
func sparseSearchSamples(cfg Config) int {
	if cfg.Samples > 2500 {
		return 2500
	}
	return cfg.Samples
}

// Fig6a regenerates Figure 6(a): localization error vs the percentage of
// sampling nodes, for 1-4 simultaneous users.
func Fig6a(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "fig6a",
		Title:   "Localization error vs percentage of sampling nodes",
		Paper:   "error stays low down to 10% sampling (1.23/1.52/1.84/2.01 for 1-4 users), jumps below 5%",
		Columns: []string{"pct", "1 user", "2 users", "3 users", "4 users"},
	}
	pcts := []int{40, 20, 10, 5}
	ks := []int{1, 2, 3, 4}
	type spec struct{ pct, k int }
	var cells []int
	var specs []spec
	for _, pct := range pcts {
		for _, k := range ks {
			cells = append(cells, pct*10+k)
			specs = append(specs, spec{pct, k})
		}
	}
	res, err := runCells(cfg, "fig6a", cells, func(ci, trial int, seed uint64) ([]float64, error) {
		sc := cfg.scenario(defaultScenarioCfg(), seed)
		src := rng.New(seed + 17)
		count := sc.Network().Len() * specs[ci].pct / 100
		return localizeTrial(cfg, sc, specs[ci].k, count, sparseSearchSamples(cfg), src)
	})
	if err != nil {
		return Table{}, err
	}
	for pi, pct := range pcts {
		row := []string{fmt.Sprintf("%d%%", pct)}
		for kj := range ks {
			var errs []float64
			for _, es := range res[pi*len(ks)+kj] {
				errs = append(errs, es...)
			}
			row = append(row, f2(stats.Mean(errs)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig6b regenerates Figure 6(b): localization error vs network density
// (900-1800 nodes) with the report count fixed at 90 nodes.
func Fig6b(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "fig6b",
		Title:   "Localization error vs node count (90 reports fixed)",
		Paper:   "error decreases mildly with density; impact fairly limited",
		Columns: []string{"nodes", "1 user", "2 users", "3 users", "4 users"},
	}
	nodeCounts := []int{900, 1200, 1500, 1800}
	ks := []int{1, 2, 3, 4}
	type spec struct{ nodes, k int }
	var cells []int
	var specs []spec
	for _, nodes := range nodeCounts {
		for _, k := range ks {
			cells = append(cells, nodes+k)
			specs = append(specs, spec{nodes, k})
		}
	}
	res, err := runCells(cfg, "fig6b", cells, func(ci, trial int, seed uint64) ([]float64, error) {
		scc := defaultScenarioCfg()
		scc.Nodes = specs[ci].nodes
		sc := cfg.scenario(scc, seed)
		src := rng.New(seed + 17)
		return localizeTrial(cfg, sc, specs[ci].k, 90, sparseSearchSamples(cfg), src)
	})
	if err != nil {
		return Table{}, err
	}
	for ni, nodes := range nodeCounts {
		row := []string{fmt.Sprintf("%d", nodes)}
		for kj := range ks {
			var errs []float64
			for _, es := range res[ni*len(ks)+kj] {
				errs = append(errs, es...)
			}
			row = append(row, f2(stats.Mean(errs)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// AblationSearch compares the exhaustive composition ranking (the literal
// Algorithm 4.1 filter) with the iterated conditional approximation on
// instances small enough to enumerate (design choice A1).
func AblationSearch(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "ablation-search",
		Title:   "Exhaustive vs iterated-conditional composition search (2 users, 60 candidates each)",
		Paper:   "n/a (implementation ablation; the paper's N^K filter is intractable at N=10^4)",
		Columns: []string{"search", "mean_obj", "mean_err", "found_same_best_frac"},
	}
	type searchTrial struct {
		exhObj, exhErr, condObj, condErr float64
		same                             bool
	}
	trials, err := runTrials(cfg, "ablA1", 0, cfg.Trials, func(trial int, seed uint64) (searchTrial, error) {
		sc := cfg.scenario(defaultScenarioCfg(), seed)
		src := rng.New(seed + 17)
		sniffer, err := sc.NewSnifferCount(90, src)
		if err != nil {
			return searchTrial{}, err
		}
		users := traffic.RandomUsers(sc.Field(), 2, 1, 3, src)
		obs, err := sniffer.Observe(users, 0, src)
		if err != nil {
			return searchTrial{}, err
		}
		prob, err := sniffer.Problem(obs)
		if err != nil {
			return searchTrial{}, err
		}
		cands := make([][]geom.Point, 2)
		for j := range cands {
			cands[j] = make([]geom.Point, 60)
			for i := range cands[j] {
				cands[j][i] = src.InRect(sc.Field())
			}
		}
		truths := []geom.Point{users[0].Pos, users[1].Pos}

		exh, err := fit.SearchCandidates(prob, cands, fit.Options{
			TopM: 5, MaxExhaustive: 10000, Workers: cfg.Workers,
		})
		if err != nil {
			return searchTrial{}, err
		}
		cond, err := fit.SearchCandidates(prob, cands, fit.Options{
			TopM: 5, MaxExhaustive: 10, Seed: seed, Workers: cfg.Workers,
		})
		if err != nil {
			return searchTrial{}, err
		}
		return searchTrial{
			exhObj:  exh.Best[0].Objective,
			condObj: cond.Best[0].Objective,
			exhErr:  stats.Mean(matchErrors(exh.Best[0].Positions, truths)),
			condErr: stats.Mean(matchErrors(cond.Best[0].Positions, truths)),
			same:    abs(exh.Best[0].Objective-cond.Best[0].Objective) < 1e-9,
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	var exhObj, exhErr, condObj, condErr []float64
	same := 0
	for _, tr := range trials {
		exhObj = append(exhObj, tr.exhObj)
		condObj = append(condObj, tr.condObj)
		exhErr = append(exhErr, tr.exhErr)
		condErr = append(condErr, tr.condErr)
		if tr.same {
			same++
		}
	}
	t.Rows = append(t.Rows, []string{
		"exhaustive", f2(stats.Mean(exhObj)), f2(stats.Mean(exhErr)), "1.000",
	})
	t.Rows = append(t.Rows, []string{
		"conditional", f2(stats.Mean(condObj)), f2(stats.Mean(condErr)),
		f3(float64(same) / float64(cfg.Trials)),
	})
	return t, nil
}

// Countermeasure evaluates the traffic-shaping defenses sketched in the
// paper's future work (§6) against the fingerprint attack, from the
// network's point of view (the attacker is the adversary here). Two knobs:
// dummy-traffic injection — every node adds uniform dummy flux up to a
// multiple of the network's mean per-node flux (traffic.Reshape) — and
// route randomization — nodes deviate from the nearest closer parent with
// probability p (routing.BuildRandomized via Simulator.SetRouteJitter), so
// the flux fingerprint no longer matches the shortest-path shape the
// attacker's model was calibrated on. The table reports attacker
// localization error per defense, including a combined cell; higher error
// means a better defense at that cost point.
func Countermeasure(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "countermeasure",
		Title:   "Attacker localization error vs traffic-shaping defense (2 users, 10% sampling)",
		Paper:   "n/a (future-work extension: reshaping should defeat the fingerprint)",
		Columns: []string{"defense", "mean_err", "median_err"},
	}
	specs := []struct {
		label       string
		amp, jitter float64
	}{
		{"none", 0, 0},
		{"dummy x0.5", 0.5, 0},
		{"dummy x1.0", 1, 0},
		{"dummy x2.0", 2, 0},
		{"dummy x4.0", 4, 0},
		{"route p=0.25", 0, 0.25},
		{"route p=0.50", 0, 0.5},
		{"route p=1.00", 0, 1},
		{"dummy x1.0 + route p=0.50", 1, 0.5},
	}
	cells := make([]int, len(specs))
	for i, sp := range specs {
		// Dummy-only cells keep the ids of the original amplitude sweep so
		// their trial seeds (and rows) are unchanged; route cells extend the
		// id space without collisions.
		cells[i] = int(sp.amp*10) + int(sp.jitter*1000)
	}
	res, err := runCells(cfg, "counter", cells, func(ci, trial int, seed uint64) ([]float64, error) {
		amp, jitter := specs[ci].amp, specs[ci].jitter
		sc := cfg.scenario(defaultScenarioCfg(), seed)
		src := rng.New(seed + 17)
		users := traffic.RandomUsers(sc.Field(), 2, 1, 3, src)
		if jitter > 0 {
			// The defense re-routes the real network; the attacker's model
			// (calibrated on nearest-parent trees) is left untouched — the
			// mismatch IS the countermeasure.
			sc.Simulator().SetRouteJitter(jitter, seed^0x5eed5eed)
		}
		flux, err := sc.GroundFlux(users)
		if err != nil {
			return nil, err
		}
		var mean float64
		for _, f := range flux {
			mean += f
		}
		mean /= float64(len(flux))
		if amp > 0 {
			flux = traffic.Reshape(flux, amp*mean, src)
		}
		nodes, err := traffic.PickSamplingNodes(sc.Network(), 90, src)
		if err != nil {
			return nil, err
		}
		meas, err := traffic.Sample(flux, nodes)
		if err != nil {
			return nil, err
		}
		pts := make([]geom.Point, len(nodes))
		for i, n := range nodes {
			pts[i] = sc.Network().Pos(n)
		}
		prob, err := fit.NewProblem(sc.Model(), pts, meas.Flux)
		if err != nil {
			return nil, err
		}
		res, err := fit.Localize(prob, 2, cfg.searchOpts(sparseSearchSamples(cfg), seed), src)
		if err != nil {
			return nil, err
		}
		truths := []geom.Point{users[0].Pos, users[1].Pos}
		return matchErrors(res.Best[0].Positions, truths), nil
	})
	if err != nil {
		return Table{}, err
	}
	for ci, sp := range specs {
		var errs []float64
		for _, es := range res[ci] {
			errs = append(errs, es...)
		}
		t.Rows = append(t.Rows, []string{
			sp.label, f2(stats.Mean(errs)), f2(stats.Median(errs)),
		})
	}
	return t, nil
}
