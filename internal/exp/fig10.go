package exp

import (
	"fmt"
	"sort"

	"fluxtrack/internal/core"
	"fluxtrack/internal/deploy"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/stats"
	"fluxtrack/internal/trace"
	"fluxtrack/internal/traffic"
)

// traceRun holds one trace-driven run: the asynchronous collection schedule
// of 20 campus users mapped onto the sensor field.
type traceRun struct {
	paths     []trace.TimedPath // mapped onto the 30x30 field
	stretches []float64
	rounds    int
}

// buildTraceRun synthesizes a campus, generates 20 user traces, compresses
// the timeline by 100 (as the paper does with the Dartmouth set), windows a
// segment, and maps the 50-landmark region onto the sensor field.
func buildTraceRun(cfg Config, seed uint64) (traceRun, error) {
	src := rng.New(seed)
	campusArea := geom.Square(1000)
	campus, err := trace.GenerateCampus(campusArea, 500, src)
	if err != nil {
		return traceRun{}, err
	}
	region := geom.NewRect(geom.Pt(250, 250), geom.Pt(750, 750))
	landmarks := campus.Landmarks(region, 50)
	if len(landmarks) < 10 {
		return traceRun{}, fmt.Errorf("exp: only %d landmark APs in region", len(landmarks))
	}

	const numUsers = 20
	records, err := trace.Generate(trace.Campus{Area: region, APs: landmarks}, trace.GenConfig{
		NumUsers: numUsers,
		Duration: 400000, // ~4.6 days of campus activity
		MinDwell: 300,    // long dwells: few users collect per window (§5.C)
	}, src)
	if err != nil {
		return traceRun{}, err
	}
	records, err = trace.Compress(records, 100)
	if err != nil {
		return traceRun{}, err
	}
	rounds := cfg.Rounds * 3 // asynchronous schedules need a longer window
	// Window a mid-trace segment so users are already roaming.
	records = trace.Window(records, 1000, 1000+float64(rounds))

	paths := trace.Paths(records, landmarks)
	// Iterate users in sorted order: map iteration order is randomized per
	// run, and the stretch draws below consume src sequentially, so an
	// unsorted walk would pair users with different stretches on every run.
	users := make([]string, 0, len(paths))
	for user := range paths {
		users = append(users, user)
	}
	sort.Strings(users)
	run := traceRun{rounds: rounds}
	for _, user := range users {
		run.paths = append(run.paths, paths[user].MapRect(region, geom.Square(30)))
		run.stretches = append(run.stretches, src.Uniform(1, 3))
	}
	if len(run.paths) == 0 {
		return traceRun{}, fmt.Errorf("exp: trace window contains no users")
	}
	return run, nil
}

// activeInWindow returns the users with a data collection in (t-1, t].
func (r traceRun) activeInWindow(t float64) []int {
	var out []int
	for i, tp := range r.paths {
		for _, ct := range tp.Times {
			if ct > t-1 && ct <= t {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// traceTrial replays one run through the tracker and returns the mean
// tracking error over the second half of the window (errors measured only
// on rounds where a user actually collects, against the nearest active
// tracker estimate — identities are anonymous to the adversary).
func traceTrial(cfg Config, kind deploy.Kind, sampleFrac float64, vmax float64, seed uint64) (float64, error) {
	run, err := buildTraceRun(cfg, seed)
	if err != nil {
		return 0, err
	}
	scc := defaultScenarioCfg()
	scc.Deployment = kind
	sc := cfg.scenario(scc, seed+1)
	src := rng.New(seed + 2)
	sniffer, err := sc.NewSniffer(sampleFrac, src)
	if err != nil {
		return 0, err
	}
	tracker, err := sniffer.NewTracker(len(run.paths), core.TrackerConfig{
		N: cfg.TrackN, M: cfg.TrackM, VMax: vmax, ActiveSetLimit: 4,
		Search: cfg.trackerSearch(), Coarse: cfg.Coarse, Workers: cfg.Workers,
		Metrics: cfg.Metrics, Trace: cfg.Trace,
	}, seed+3)
	if err != nil {
		return 0, err
	}

	var errs []float64
	for round := 1; round <= run.rounds; round++ {
		t := float64(round)
		activeIdx := run.activeInWindow(t)
		users := make([]traffic.User, 0, len(activeIdx))
		truths := make([]geom.Point, 0, len(activeIdx))
		for _, i := range activeIdx {
			pos := sc.Field().Clamp(run.paths[i].At(t))
			users = append(users, traffic.User{Pos: pos, Stretch: run.stretches[i], Active: true})
			truths = append(truths, pos)
		}
		obs, err := sniffer.Observe(users, 0, src)
		if err != nil {
			return 0, err
		}
		res, err := tracker.Step(t, obs)
		if err != nil {
			return 0, err
		}
		if round <= run.rounds/2 || len(truths) == 0 {
			continue
		}
		var activeEst []geom.Point
		for _, est := range res.Estimates {
			if est.Active {
				activeEst = append(activeEst, est.Mean)
			}
		}
		if len(activeEst) == 0 {
			continue
		}
		// Each true collection is matched against the nearest active
		// estimate; estimates may be reused when the tracker under-counts.
		for _, truth := range truths {
			best := -1.0
			for _, est := range activeEst {
				if d := est.Dist(truth); best < 0 || d < best {
					best = d
				}
			}
			errs = append(errs, best)
		}
	}
	if len(errs) == 0 {
		return 0, fmt.Errorf("exp: trace trial produced no measurable rounds")
	}
	return stats.Mean(errs), nil
}

// Fig10a regenerates Figure 10(a): trace-driven tracking error vs the
// percentage of sampling nodes, for perturbed-grid and purely random
// deployments.
func Fig10a(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "fig10a",
		Title:   "Trace-driven tracking error vs percentage of sampling nodes",
		Paper:   "error below 3 at 10%+ reports with perturbed grids; random deployment ~1.5x worse",
		Columns: []string{"pct", "perturbed-grid", "random"},
	}
	pcts := []int{40, 20, 10, 5}
	kinds := []deploy.Kind{deploy.PerturbedGrid, deploy.UniformRandom}
	type spec struct {
		pct  int
		kind deploy.Kind
	}
	var cells []int
	var specs []spec
	for _, pct := range pcts {
		for _, kind := range kinds {
			cells = append(cells, pct*10+int(kind))
			specs = append(specs, spec{pct, kind})
		}
	}
	res, err := runCells(cfg, "fig10a", cells, func(ci, trial int, seed uint64) (float64, error) {
		return traceTrial(cfg, specs[ci].kind, float64(specs[ci].pct)/100, 5, seed)
	})
	if err != nil {
		return Table{}, err
	}
	for pi, pct := range pcts {
		row := []string{fmt.Sprintf("%d%%", pct)}
		for kj := range kinds {
			row = append(row, f2(stats.Mean(res[pi*len(kinds)+kj])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig10b regenerates Figure 10(b): trace-driven tracking error vs the
// resampling radius (the tracker's assumed maximum user speed), at 10%
// sampling.
func Fig10b(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "fig10b",
		Title:   "Trace-driven tracking error vs resampling radius (10% sampling)",
		Paper:   "robust to the enlarged prediction disc: error grows only slightly with the radius",
		Columns: []string{"radius", "perturbed-grid", "random"},
	}
	radii := []float64{4, 6, 8, 10, 12}
	kinds := []deploy.Kind{deploy.PerturbedGrid, deploy.UniformRandom}
	type spec struct {
		radius float64
		kind   deploy.Kind
	}
	var cells []int
	var specs []spec
	for _, radius := range radii {
		for _, kind := range kinds {
			cells = append(cells, int(radius)*10+int(kind))
			specs = append(specs, spec{radius, kind})
		}
	}
	res, err := runCells(cfg, "fig10b", cells, func(ci, trial int, seed uint64) (float64, error) {
		return traceTrial(cfg, specs[ci].kind, 0.1, specs[ci].radius, seed)
	})
	if err != nil {
		return Table{}, err
	}
	for ri, radius := range radii {
		row := []string{f2(radius)}
		for kj := range kinds {
			row = append(row, f2(stats.Mean(res[ri*len(kinds)+kj])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
