package rng

import (
	"math"
	"testing"
	"testing/quick"

	"fluxtrack/internal/geom"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 coincide on %d/100 outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child stream must be deterministic given the parent seed.
	parent2 := New(7)
	child2 := parent2.Split()
	for i := 0; i < 100; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestIntNRangeAndCoverage(t *testing.T) {
	s := New(11)
	const n = 10
	seen := make([]int, n)
	for i := 0; i < 10000; i++ {
		v := s.IntN(n)
		if v < 0 || v >= n {
			t.Fatalf("IntN out of range: %v", v)
		}
		seen[v]++
	}
	for i, c := range seen {
		if c == 0 {
			t.Errorf("value %d never produced", i)
		}
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("IntN(0) did not panic")
		}
	}()
	New(1).IntN(0)
}

func TestNormMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestExpMean(t *testing.T) {
	s := New(17)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exp(3)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Errorf("Exp mean = %v, want ~3", mean)
	}
}

func TestParetoBounds(t *testing.T) {
	s := New(19)
	for i := 0; i < 10000; i++ {
		v := s.Pareto(1, 100, 1.2)
		if v < 1-1e-9 || v > 100+1e-9 {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
	}
	if got := s.Pareto(5, 5, 1); got != 5 {
		t.Errorf("degenerate Pareto = %v, want 5", got)
	}
}

func TestInRect(t *testing.T) {
	s := New(23)
	r := geom.NewRect(geom.Pt(-2, 3), geom.Pt(4, 9))
	for i := 0; i < 10000; i++ {
		p := s.InRect(r)
		if !r.Contains(p) {
			t.Fatalf("InRect produced %v outside %v", p, r)
		}
	}
}

func TestInDiscRadiusAndUniformity(t *testing.T) {
	s := New(29)
	c := geom.Pt(10, 10)
	const radius = 5.0
	const n = 100000
	inner := 0 // count within radius/sqrt(2): should be ~half by area
	for i := 0; i < n; i++ {
		p := s.InDisc(c, radius)
		d := c.Dist(p)
		if d > radius+1e-9 {
			t.Fatalf("InDisc produced point at distance %v > %v", d, radius)
		}
		if d <= radius/math.Sqrt2 {
			inner++
		}
	}
	frac := float64(inner) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("inner-disc fraction = %v, want ~0.5 (area uniformity)", frac)
	}
}

func TestInDiscClampedStaysInField(t *testing.T) {
	s := New(31)
	field := geom.Square(30)
	// Center near a corner so much of the disc is outside.
	c := geom.Pt(0.5, 0.5)
	for i := 0; i < 5000; i++ {
		p := s.InDiscClamped(c, 5, field)
		if !field.Contains(p) {
			t.Fatalf("InDiscClamped produced %v outside field", p)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%64) + 1
		p := New(seed).Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleKDistinct(t *testing.T) {
	s := New(37)
	idx := s.SampleK(100, 30)
	if len(idx) != 30 {
		t.Fatalf("SampleK returned %d indices, want 30", len(idx))
	}
	seen := map[int]bool{}
	for _, v := range idx {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("SampleK produced invalid or duplicate index %d", v)
		}
		seen[v] = true
	}
}

func TestSampleKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SampleK(2, 3) did not panic")
		}
	}()
	New(1).SampleK(2, 3)
}

func TestWeighted(t *testing.T) {
	s := New(41)
	weights := []float64{0, 1, 3, 0}
	counts := make([]int, len(weights))
	const n = 100000
	for i := 0; i < n; i++ {
		k := s.Weighted(weights)
		if k < 0 || k >= len(weights) {
			t.Fatalf("Weighted returned invalid index %d", k)
		}
		counts[k]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Errorf("zero-weight indices sampled: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.15 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedDegenerate(t *testing.T) {
	s := New(43)
	if got := s.Weighted(nil); got != -1 {
		t.Errorf("Weighted(nil) = %d, want -1", got)
	}
	if got := s.Weighted([]float64{0, 0}); got != -1 {
		t.Errorf("Weighted(zeros) = %d, want -1", got)
	}
	if got := s.Weighted([]float64{0, 0, 5}); got != 2 {
		t.Errorf("Weighted(single positive) = %d, want 2", got)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkInDisc(b *testing.B) {
	s := New(1)
	c := geom.Pt(5, 5)
	for i := 0; i < b.N; i++ {
		_ = s.InDisc(c, 5)
	}
}
