// Package rng provides a small, deterministic pseudo-random number generator
// and the geometric samplers the fingerprinting pipeline needs (uniform
// points in rectangles and discs, permutations, subset sampling).
//
// Experiments in this repository must be reproducible run-to-run, so every
// stochastic component takes an explicit *rng.Source seeded by the caller
// instead of reaching for a global generator.
package rng

import (
	"math"
	"math/bits"

	"fluxtrack/internal/geom"
)

// Source is a deterministic pseudo-random source based on splitmix64. It is
// compact, fast, and passes standard statistical batteries, which is more
// than sufficient for Monte Carlo position sampling.
//
// Source is not safe for concurrent use; give each goroutine its own Source
// (see Split).
type Source struct {
	state uint64
	// spare caches the second output of the Box-Muller transform.
	spare    float64
	hasSpare bool
}

// New returns a Source seeded with seed. Two Sources with equal seeds produce
// identical streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives an independent child source from s. It advances s, so the
// parent stream after Split differs from the stream without it, but the
// derived child is deterministic given the parent seed and call order.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// IntN returns a uniform integer in [0, n). It panics if n <= 0, matching
// the contract of math/rand.
func (s *Source) IntN(n int) int {
	if n <= 0 {
		panic("rng: IntN called with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(s.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Norm returns a standard normal variate via the Box-Muller transform.
func (s *Source) Norm() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	var u, v, r2 float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		r2 = u*u + v*v
		if r2 > 0 && r2 < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(r2) / r2)
	s.spare = v * f
	s.hasSpare = true
	return u * f
}

// Exp returns an exponential variate with the given mean.
func (s *Source) Exp(mean float64) float64 {
	// 1-Float64() is in (0, 1], avoiding log(0).
	return -mean * math.Log(1-s.Float64())
}

// Pareto returns a bounded Pareto variate on [lo, hi] with shape alpha > 0.
// Heavy-tailed dwell times in the synthetic campus traces use this.
func (s *Source) Pareto(lo, hi, alpha float64) float64 {
	if lo >= hi {
		return lo
	}
	u := s.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// InRect returns a uniform point inside r.
func (s *Source) InRect(r geom.Rect) geom.Point {
	return geom.Pt(s.Uniform(r.Min.X, r.Max.X), s.Uniform(r.Min.Y, r.Max.Y))
}

// InDisc returns a uniform point in the disc of the given radius centered at
// c. This is the prediction-phase sampler of Algorithm 4.1: the next position
// is uniform in a disc of radius v_max * dt around the previous sample.
func (s *Source) InDisc(c geom.Point, radius float64) geom.Point {
	// Inverse-CDF sampling: radius must be sqrt-distributed for area
	// uniformity.
	r := radius * math.Sqrt(s.Float64())
	theta := s.Uniform(0, 2*math.Pi)
	return geom.Pt(c.X+r*math.Cos(theta), c.Y+r*math.Sin(theta))
}

// InDiscClamped returns a uniform point in the disc around c intersected with
// the field rectangle, by rejection with a clamping fallback. The tracker
// uses it so predicted positions never leave the field.
func (s *Source) InDiscClamped(c geom.Point, radius float64, field geom.Rect) geom.Point {
	for i := 0; i < 16; i++ {
		p := s.InDisc(c, radius)
		if field.Contains(p) {
			return p
		}
	}
	return field.Clamp(s.InDisc(c, radius))
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.IntN(i+1))
	}
}

// SampleK returns k distinct indices drawn uniformly from [0, n), in
// selection order. It panics when k > n or k < 0. The fingerprinting attack
// uses it to pick the sparse set of sniffed nodes.
func (s *Source) SampleK(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleK requires 0 <= k <= n")
	}
	p := s.Perm(n)
	return p[:k]
}

// Weighted returns an index in [0, len(weights)) sampled proportionally to
// the non-negative weights. If all weights are zero or the slice is empty it
// returns -1. The importance-sampling resampler uses it.
func (s *Source) Weighted(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	x := s.Uniform(0, total)
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	// Floating point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}

// State is the complete serializable state of a Source: the splitmix64
// stream cursor plus the Box-Muller spare cache. A Source restored from a
// State continues its stream exactly where the exporting Source stood —
// draw for draw, bit for bit — which is what makes tracker checkpoints
// (internal/serve) resume byte-identically.
type State struct {
	Cursor   uint64
	Spare    float64
	HasSpare bool
}

// State exports the source's current stream position.
func (s *Source) State() State {
	return State{Cursor: s.state, Spare: s.spare, HasSpare: s.hasSpare}
}

// Restore rewinds (or fast-forwards) the source to a previously exported
// stream position. The next draw after Restore(st) equals the next draw the
// exporting source would have made after State() returned st.
func (s *Source) Restore(st State) {
	s.state = st.Cursor
	s.spare = st.Spare
	s.hasSpare = st.HasSpare
}
