// Package shard scales the SMC tracker past a single field: the deployment
// is split into an R×C grid of tiles, each tile owning its own sensor
// subset, collection sink, fingerprint database, and smc.Tracker with a
// deterministic splitmix64 RNG substream derived from (seed, tile index). A
// Field coordinator steps all tiles concurrently over internal/par, routes
// each round's flux observation to the owning tiles (plus a configurable
// halo so users near seams are seen by both neighbors), and migrates a
// user's SMC sample set to the neighboring tile when its estimate crosses a
// tile boundary.
//
// The scaling argument is work reduction, not just parallelism: a tile
// searches only its owned users (≈K/tiles of them) against only its own
// sensors (≈n/tiles of them), so the per-round candidate-evaluation work —
// kernel columns, Gram updates, NNLS solves whose cost grows with the joint
// user count k — drops superlinearly with the tile count even on one core.
//
// Determinism contract (DESIGN.md §6.6): tiles step concurrently but write
// only index-disjoint state; results merge serially in ascending tile
// order; the handoff pass runs serially in (round, tile, user) order after
// every tile has finished, so no tile's step observes a same-round
// migration. Every Monte Carlo draw comes from a (tile, user) substream
// fixed at construction. Output is therefore byte-identical at any
// Config.Workers value, and a 1×1 grid — whose single tile keeps the
// coordinator seed, the full sensor set in original order, and bounds equal
// to the field — reproduces the unsharded tracker byte for byte.
package shard

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"fluxtrack/internal/fingerprint"
	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/obs"
	"fluxtrack/internal/par"
	"fluxtrack/internal/smc"
)

// Grid describes how a field is tiled: Rows×Cols tiles, each inflated by
// Halo on every interior side when sensing. The zero value (0×0) is the
// "unsharded" marker used by config plumbing; a usable grid has Rows and
// Cols at least 1 and a non-negative finite Halo.
type Grid struct {
	Rows, Cols int
	// Halo inflates each tile's sensing/hypothesis bounds (not its owned
	// ground) by this distance on every side, clipped to the field: sensors
	// within the halo of a seam report to both neighbors, and a tile may
	// hypothesize positions slightly past its seam, which softens the
	// accuracy penalty for users walking the seam at the cost of
	// proportionally more sensors per tile.
	Halo float64
}

// Tiles returns Rows×Cols, or 0 when either dimension is unset — the
// unsharded marker.
func (g Grid) Tiles() int {
	if g.Rows <= 0 || g.Cols <= 0 {
		return 0
	}
	return g.Rows * g.Cols
}

// String formats the grid as "RxC".
func (g Grid) String() string {
	return fmt.Sprintf("%dx%d", g.Rows, g.Cols)
}

// ParseGrid parses "RxC" (e.g. "2x2", "1x4") into a Grid with zero halo.
func ParseGrid(s string) (Grid, error) {
	lo, hi, ok := strings.Cut(strings.TrimSpace(s), "x")
	if !ok {
		return Grid{}, fmt.Errorf("shard: grid %q is not RxC", s)
	}
	r, err1 := strconv.Atoi(lo)
	c, err2 := strconv.Atoi(hi)
	if err1 != nil || err2 != nil || r < 1 || c < 1 {
		return Grid{}, fmt.Errorf("shard: grid %q is not RxC with positive dimensions", s)
	}
	return Grid{Rows: r, Cols: c}, nil
}

// TileOf maps a position to the tile owning it under the plain (halo-free)
// rect partition of field. The mapping is a pure function: positions
// exactly on an interior seam belong to the tile on the seam's upper/right
// side, positions on the field's outer max edges clamp into the last
// row/column, and corner points — equidistant from four tiles — resolve by
// the same two rules. Out-of-field positions clamp to the nearest tile.
func (g Grid) TileOf(field geom.Rect, p geom.Point) int {
	ix := tileCoord(p.X, field.Min.X, field.Width(), g.Cols)
	iy := tileCoord(p.Y, field.Min.Y, field.Height(), g.Rows)
	return iy*g.Cols + ix
}

func tileCoord(v, lo, extent float64, n int) int {
	i := int(math.Floor((v - lo) / extent * float64(n)))
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// tileSeed derives tile i's RNG substream seed with the same splitmix64
// finalizer the tracker uses for per-user substreams, so neighboring tiles
// land in independent stream regions. The degenerate single-tile grid IS
// the unsharded tracker, so it keeps the coordinator seed unchanged — that
// passthrough is one link in the 1×1 byte-identity chain.
func tileSeed(seed uint64, i, tiles int) uint64 {
	if tiles == 1 {
		return seed
	}
	z := seed + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Config configures a sharded tracking Field.
type Config struct {
	Model        *fluxmodel.Model
	SamplePoints []geom.Point // global sniffed-node positions
	NumUsers     int          // K: users tracked across the whole field
	Grid         Grid

	// Tracker is the per-tile tracker template: N, M, VMax, Search, Coarse,
	// and the rest are copied into every tile's smc.Config. New overrides
	// Model, SamplePoints, NumUsers, Bounds, and DBCache per tile, rejects a
	// template with Search.Coarse preset (tiles must not share one
	// misaligned database), and fills the template's Metrics/Trace from the
	// Field's when unset. The template's Workers bounds goroutines inside
	// one tile's step; Config.Workers bounds how many tiles step at once.
	Tracker smc.Config

	// InitialPositions, when non-nil (length NumUsers), seeds each user's
	// owning tile from their starting position; nil assigns users to tiles
	// round-robin and lets bootstrap plus handoff sort them out.
	InitialPositions []geom.Point

	// Workers bounds how many tiles step concurrently (0 = GOMAXPROCS,
	// 1 = serial). Output is byte-identical at any value.
	Workers int

	// Metrics receives the coordinator's shard.* counters/histograms and is
	// inherited by tile trackers whose template Metrics is unset; Trace
	// receives one tile-scoped span (Span.Tile >= 0) per stepped tile per
	// round alongside the tile trackers' own spans. Both are write-only.
	Metrics *obs.Metrics
	Trace   *obs.Trace

	// Cache memoizes fingerprint database builds across tiles (and across
	// Fields sharing the cache). Nil creates a private cache when the
	// template enables the coarse prestage.
	Cache *fingerprint.Cache
}

// tile is one shard: its ground, sensors, and tracker, plus the per-round
// scratch the coordinator reuses.
type tile struct {
	index   int
	rect    geom.Rect // owned ground (plain partition)
	bounds  geom.Rect // rect + halo, clipped to the field
	sensors []int     // ascending global sensor indices within bounds
	sink    int       // global index of the tile's collection sensor
	seed    uint64
	tracker *smc.Tracker

	owned    []int // users owned this round, ascending
	readings []float64
	present  []bool
	age      []int

	// Per-round results, written by this tile's worker only.
	res     smc.StepResult
	err     error
	stepped bool
	queueNs int64
	wallNs  int64
}

// TileInfo is the read-only description of one tile.
type TileInfo struct {
	Index   int
	Rect    geom.Rect // owned ground
	Bounds  geom.Rect // halo-inflated sensing/hypothesis ground
	Sensors int       // sensors reporting to this tile
	Sink    int       // global sensor index of the tile's collection point
	Seed    uint64    // the tile's RNG substream seed
}

// fieldMetrics caches the coordinator's observability handles.
type fieldMetrics struct {
	m            *obs.Metrics
	shard        int
	steps        *obs.Counter   // shard.step.count
	handoffs     *obs.Counter   // shard.step.handoffs
	tilesStepped *obs.Counter   // shard.step.tiles_stepped
	queue        *obs.Histogram // shard.tile.queue_ms
	wall         *obs.Histogram // shard.tile.step_ms
}

func (fm *fieldMetrics) bind(m *obs.Metrics, seed uint64) {
	if m == nil {
		return
	}
	*fm = fieldMetrics{
		m:            m,
		shard:        int(seed),
		steps:        m.Counter("shard.step.count"),
		handoffs:     m.Counter("shard.step.handoffs"),
		tilesStepped: m.Counter("shard.step.tiles_stepped"),
		queue:        m.Histogram("shard.tile.queue_ms", obs.DurationBucketsMs),
		wall:         m.Histogram("shard.tile.step_ms", obs.DurationBucketsMs),
	}
}

// Field coordinates the tiles of a sharded deployment. Like smc.Tracker it
// is not safe for concurrent use by multiple goroutines, but each round
// fans the tiles out over Config.Workers internally.
type Field struct {
	cfg      Config
	field    geom.Rect
	tiles    []*tile
	owner    []int // user -> owning tile
	lastEst  []smc.Estimate
	steps    int
	handoffs int
	met      fieldMetrics

	handIn  []int // per-tile migrations in, reused across rounds
	handOut []int // per-tile migrations out
}

// New builds a sharded Field over cfg's deployment; seed fixes every tile's
// (and thereby every user's) RNG substream.
func New(cfg Config, seed uint64) (*Field, error) {
	if cfg.Model == nil {
		return nil, errors.New("shard: nil model")
	}
	if len(cfg.SamplePoints) == 0 {
		return nil, errors.New("shard: no sampling points")
	}
	if cfg.NumUsers <= 0 {
		return nil, fmt.Errorf("shard: NumUsers must be positive, got %d", cfg.NumUsers)
	}
	tiles := cfg.Grid.Tiles()
	if tiles < 1 {
		return nil, fmt.Errorf("shard: grid %s has no tiles", cfg.Grid)
	}
	if cfg.Grid.Halo < 0 || math.IsNaN(cfg.Grid.Halo) || math.IsInf(cfg.Grid.Halo, 0) {
		return nil, fmt.Errorf("shard: halo %v must be finite and non-negative", cfg.Grid.Halo)
	}
	if cfg.Tracker.Search.Coarse != nil {
		return nil, errors.New("shard: tracker template must not preset Search.Coarse; tiles build their own databases")
	}
	if cfg.InitialPositions != nil && len(cfg.InitialPositions) != cfg.NumUsers {
		return nil, fmt.Errorf("shard: %d initial positions for %d users", len(cfg.InitialPositions), cfg.NumUsers)
	}
	cache := cfg.Cache
	if cache == nil && cfg.Tracker.Coarse.Enabled {
		cache = fingerprint.NewCache(0)
	}

	field := cfg.Model.Field()
	f := &Field{
		cfg:     cfg,
		field:   field,
		tiles:   make([]*tile, tiles),
		owner:   make([]int, cfg.NumUsers),
		lastEst: make([]smc.Estimate, cfg.NumUsers),
		handIn:  make([]int, tiles),
		handOut: make([]int, tiles),
	}
	for i := range f.tiles {
		tl, err := f.newTile(i, cache, seed)
		if err != nil {
			return nil, err
		}
		f.tiles[i] = tl
	}
	for j := range f.owner {
		if cfg.InitialPositions != nil {
			f.owner[j] = cfg.Grid.TileOf(field, cfg.InitialPositions[j])
		} else {
			f.owner[j] = j % tiles
		}
		// Until a user's tile first steps, report what its tracker would:
		// the tile bounds center with zero confidence.
		c := f.tiles[f.owner[j]].bounds.Center()
		f.lastEst[j] = smc.Estimate{Mean: c, Best: c}
	}
	f.met.bind(cfg.Metrics, seed)
	return f, nil
}

// newTile carves tile i out of the field and builds its tracker.
func (f *Field) newTile(i int, cache *fingerprint.Cache, seed uint64) (*tile, error) {
	g := f.cfg.Grid
	r, c := i/g.Cols, i%g.Cols
	rect := geom.Rect{
		Min: geom.Pt(tileEdge(f.field.Min.X, f.field.Max.X, c, g.Cols),
			tileEdge(f.field.Min.Y, f.field.Max.Y, r, g.Rows)),
		Max: geom.Pt(tileEdge(f.field.Min.X, f.field.Max.X, c+1, g.Cols),
			tileEdge(f.field.Min.Y, f.field.Max.Y, r+1, g.Rows)),
	}
	bounds := geom.Rect{
		Min: geom.Pt(math.Max(rect.Min.X-g.Halo, f.field.Min.X),
			math.Max(rect.Min.Y-g.Halo, f.field.Min.Y)),
		Max: geom.Pt(math.Min(rect.Max.X+g.Halo, f.field.Max.X),
			math.Min(rect.Max.Y+g.Halo, f.field.Max.Y)),
	}
	tl := &tile{index: i, rect: rect, bounds: bounds, seed: tileSeed(seed, i, g.Tiles())}
	var points []geom.Point
	for si, p := range f.cfg.SamplePoints {
		if bounds.Contains(p) {
			tl.sensors = append(tl.sensors, si)
			points = append(points, p)
		}
	}
	if len(tl.sensors) == 0 {
		return nil, fmt.Errorf("shard: tile %d (%v) covers no sensors; use fewer tiles, a wider halo, or a denser vantage", i, bounds)
	}
	// The tile's sink: the covered sensor nearest the tile center, ties to
	// the lower global index — the deterministic collection point per-tile
	// routing would drain to.
	center := rect.Center()
	bestD := math.Inf(1)
	for k, si := range tl.sensors {
		if d := points[k].Sub(center).Norm(); d < bestD {
			bestD, tl.sink = d, si
		}
	}

	tcfg := f.cfg.Tracker
	tcfg.Model = f.cfg.Model
	tcfg.SamplePoints = points
	tcfg.NumUsers = f.cfg.NumUsers
	tcfg.Bounds = bounds
	tcfg.DBCache = cache
	if tcfg.Metrics == nil {
		tcfg.Metrics = f.cfg.Metrics
	}
	if tcfg.Trace == nil {
		tcfg.Trace = f.cfg.Trace
	}
	tr, err := smc.New(tcfg, tl.seed)
	if err != nil {
		return nil, fmt.Errorf("shard: tile %d tracker: %w", i, err)
	}
	tl.tracker = tr
	tl.readings = make([]float64, len(tl.sensors))
	return tl, nil
}

// tileEdge returns the x (or y) coordinate of grid line k of n, pinning the
// outer lines to the exact field edges so the partition tiles the field
// without floating-point slack.
func tileEdge(lo, hi float64, k, n int) float64 {
	switch k {
	case 0:
		return lo
	case n:
		return hi
	}
	return lo + (hi-lo)*float64(k)/float64(n)
}

// NumTiles returns the tile count.
func (f *Field) NumTiles() int { return len(f.tiles) }

// Tile describes tile i.
func (f *Field) Tile(i int) TileInfo {
	tl := f.tiles[i]
	return TileInfo{
		Index: tl.index, Rect: tl.rect, Bounds: tl.bounds,
		Sensors: len(tl.sensors), Sink: tl.sink, Seed: tl.seed,
	}
}

// Owner returns the tile currently owning user j.
func (f *Field) Owner(j int) int { return f.owner[j] }

// Steps returns how many observation rounds advanced at least one tile.
func (f *Field) Steps() int { return f.steps }

// Handoffs returns the cumulative number of cross-tile user migrations — a
// deterministic count, identical at any worker count.
func (f *Field) Handoffs() int { return f.handoffs }

// WorkTotals sums the cumulative NNLS (solves, iterations) over all tile
// trackers: the deterministic work measure behind the sharding speedup.
func (f *Field) WorkTotals() (solves, iters uint64) {
	for _, tl := range f.tiles {
		s, it := tl.tracker.WorkTotals()
		solves += s
		iters += it
	}
	return solves, iters
}

// Step routes the global flux observation taken at time t (aligned with
// Config.SamplePoints) to the tiles, steps them concurrently, and merges
// the per-tile results; see StepMasked for the degraded-observation form.
func (f *Field) Step(t float64, measured []float64) (smc.StepResult, error) {
	return f.StepMasked(t, measured, nil, nil)
}

// StepMasked is Step over a degraded observation (present/age as in
// smc.Tracker.StepMasked, aligned with the global sample points). Each tile
// sees only its own sensors' slice of the round: a tile whose delivered
// sensor set is empty skips the round — its users keep their previous
// estimates, reported with Active false — while the remaining tiles step
// normally. Only when every owning tile skips does StepMasked return
// ErrAllMasked (wrapped) with the Field untouched, matching the unsharded
// contract. After the merge, the handoff pass migrates every initialized
// user whose new estimate left its tile's ground, in ascending (tile, user)
// order.
func (f *Field) StepMasked(t float64, measured []float64, present []bool, age []int) (smc.StepResult, error) {
	n := len(f.cfg.SamplePoints)
	if len(measured) != n {
		return smc.StepResult{}, fmt.Errorf("shard: observation length %d, want %d", len(measured), n)
	}
	if present != nil && len(present) != n {
		return smc.StepResult{}, fmt.Errorf("shard: present mask length %d, want %d", len(present), n)
	}
	if age != nil && len(age) != n {
		return smc.StepResult{}, fmt.Errorf("shard: age vector length %d, want %d", len(age), n)
	}
	observed := f.met.m != nil || f.cfg.Trace != nil
	var roundStart time.Time
	if observed {
		roundStart = time.Now()
	}

	for _, tl := range f.tiles {
		tl.owned = tl.owned[:0]
		tl.stepped = false
		tl.err = nil
	}
	for j, o := range f.owner { // ascending j: owned lists stay sorted
		f.tiles[o].owned = append(f.tiles[o].owned, j)
	}

	// Fan the tiles out. Each worker touches only its tile's state, so the
	// round is race-free by construction; determinism comes from the serial
	// merge below, not from scheduling.
	_ = par.For(len(f.tiles), f.cfg.Workers, func(_, i int) error {
		tl := f.tiles[i]
		if len(tl.owned) == 0 {
			return nil
		}
		var t0 time.Time
		if observed {
			tl.queueNs = time.Since(roundStart).Nanoseconds()
			t0 = time.Now()
		}
		m, p, a, users := tl.gather(measured, present, age)
		res, err := tl.tracker.StepUsersMasked(t, m, p, a, users)
		if observed {
			tl.wallNs = time.Since(t0).Nanoseconds()
		}
		if err != nil {
			tl.err = err
			return nil
		}
		tl.res = res
		tl.stepped = true
		return nil
	})

	// Error scan before any state merges, in ascending tile order: the
	// first hard error (by tile index) rejects the round with the Field
	// untouched; all-masked tiles merely degrade. A round where every
	// owning tile was all-masked returns the lowest tile's error verbatim —
	// for a 1×1 grid that IS the unsharded error.
	var maskErr error
	anyStepped := false
	for _, tl := range f.tiles {
		switch {
		case tl.err == nil:
			anyStepped = anyStepped || tl.stepped
		case errors.Is(tl.err, smc.ErrAllMasked):
			if maskErr == nil {
				maskErr = tl.err
			}
		default:
			return smc.StepResult{}, fmt.Errorf("shard: tile %d: %w", tl.index, tl.err)
		}
	}
	if !anyStepped {
		if maskErr != nil {
			return smc.StepResult{}, maskErr
		}
		return smc.StepResult{}, errors.New("shard: no tile stepped")
	}

	// Serial merge in ascending tile order.
	out := smc.StepResult{Time: t, Estimates: make([]smc.Estimate, f.cfg.NumUsers)}
	for _, tl := range f.tiles {
		if !tl.stepped {
			continue
		}
		out.Objective += tl.res.Objective
		for _, j := range tl.owned {
			f.lastEst[j] = tl.res.Estimates[j]
		}
	}
	for j := range out.Estimates {
		e := f.lastEst[j]
		if !f.tiles[f.owner[j]].stepped {
			// Carried forward from a skipped tile: stale, not active.
			e.Active = false
			e.Stretch = 0
		}
		out.Estimates[j] = e
	}
	f.steps++

	// Handoff pass: serial, ascending (tile, user). A user migrates when
	// initialized (its estimate is evidence-backed) and its posterior mean
	// left the owning tile's ground; the sample set moves wholesale and the
	// source slot resets. Running after the barrier means no tile's step
	// this round saw a migration decided this round.
	migrations := 0
	for i := range f.handIn {
		f.handIn[i], f.handOut[i] = 0, 0
	}
	for _, tl := range f.tiles {
		if !tl.stepped {
			continue
		}
		for _, j := range tl.owned {
			est := tl.res.Estimates[j]
			if len(est.Samples) == 0 { // uninitialized: nothing to move
				continue
			}
			dst := f.cfg.Grid.TileOf(f.field, est.Mean)
			if dst == tl.index {
				continue
			}
			snap, err := tl.tracker.ExportUser(j)
			if err == nil {
				err = f.tiles[dst].tracker.ImportUser(j, snap)
			}
			if err == nil {
				err = tl.tracker.ResetUser(j)
			}
			if err != nil {
				return smc.StepResult{}, fmt.Errorf("shard: handoff of user %d, tile %d->%d: %w", j, tl.index, dst, err)
			}
			f.owner[j] = dst
			f.handOut[tl.index]++
			f.handIn[dst]++
			migrations++
		}
	}
	f.handoffs += migrations

	if observed {
		f.record(t, migrations)
	}
	return out, nil
}

// gather copies the tile's slice of the global observation into the tile's
// reusable buffers, returning nil masks when the round carries none.
func (tl *tile) gather(measured []float64, present []bool, age []int) (m []float64, p []bool, a []int, users []int) {
	for k, si := range tl.sensors {
		tl.readings[k] = measured[si]
	}
	if present != nil {
		if tl.present == nil {
			tl.present = make([]bool, len(tl.sensors))
		}
		for k, si := range tl.sensors {
			tl.present[k] = present[si]
		}
		p = tl.present
	}
	if age != nil {
		if tl.age == nil {
			tl.age = make([]int, len(tl.sensors))
		}
		for k, si := range tl.sensors {
			tl.age[k] = age[si]
		}
		a = tl.age
	}
	return tl.readings, p, a, tl.owned
}

// record flushes the round's coordinator observability: shard.* counters,
// queue/step histograms, and one tile-scoped span per stepped tile. All
// counters are deterministic; only the histograms and span timings are
// wall-clock.
func (f *Field) record(t float64, migrations int) {
	stepped := 0
	for _, tl := range f.tiles {
		if tl.stepped {
			stepped++
		}
	}
	if fm := &f.met; fm.m != nil {
		w := fm.shard
		fm.steps.Inc(w)
		fm.handoffs.Add(w, uint64(migrations))
		fm.tilesStepped.Add(w, uint64(stepped))
		for _, tl := range f.tiles {
			if tl.stepped {
				fm.queue.Observe(w, float64(tl.queueNs)/1e6)
				fm.wall.Observe(w, float64(tl.wallNs)/1e6)
			}
		}
	}
	if f.cfg.Trace != nil {
		for _, tl := range f.tiles {
			if !tl.stepped {
				continue
			}
			f.cfg.Trace.Add(obs.Span{
				Seed: tl.seed, Step: f.steps - 1, Time: t, Tile: tl.index,
				Users:     len(tl.owned),
				Searched:  len(tl.owned),
				Objective: tl.res.Objective,
				QueueNs:   tl.queueNs,
				WallNs:    tl.wallNs,
				Handoffs:  f.handIn[tl.index] + f.handOut[tl.index],
			})
		}
	}
}
