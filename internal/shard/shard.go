// Package shard scales the SMC tracker past a single field: the deployment
// is split into an R×C grid of tiles, each tile owning its own sensor
// subset, collection sink, fingerprint database, and smc.Tracker with a
// deterministic splitmix64 RNG substream derived from (seed, tile index). A
// Field coordinator steps all tiles concurrently over internal/par, routes
// each round's flux observation to the owning tiles (plus a configurable
// halo so users near seams are seen by both neighbors), and migrates a
// user's SMC sample set to the neighboring tile when its estimate crosses a
// tile boundary.
//
// The scaling argument is work reduction, not just parallelism: a tile
// searches only its owned users (≈K/tiles of them) against only its own
// sensors (≈n/tiles of them), so the per-round candidate-evaluation work —
// kernel columns, Gram updates, NNLS solves whose cost grows with the joint
// user count k — drops superlinearly with the tile count even on one core.
//
// Determinism contract (DESIGN.md §6.6): tiles step concurrently but write
// only index-disjoint state; results merge serially in ascending tile
// order; the handoff pass runs serially in (round, tile, user) order after
// every tile has finished, so no tile's step observes a same-round
// migration. Every Monte Carlo draw comes from a (tile, user) substream
// fixed at construction. Output is therefore byte-identical at any
// Config.Workers value, and a 1×1 grid — whose single tile keeps the
// coordinator seed, the full sensor set in original order, and bounds equal
// to the field — reproduces the unsharded tracker byte for byte.
package shard

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"fluxtrack/internal/fingerprint"
	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/obs"
	"fluxtrack/internal/par"
	"fluxtrack/internal/smc"
)

// Grid describes how a field is tiled: Rows×Cols tiles, each inflated by
// Halo on every interior side when sensing. The zero value (0×0) is the
// "unsharded" marker used by config plumbing; a usable grid has Rows and
// Cols at least 1 and a non-negative finite Halo.
type Grid struct {
	Rows, Cols int
	// Halo inflates each tile's sensing/hypothesis bounds (not its owned
	// ground) by this distance on every side, clipped to the field: sensors
	// within the halo of a seam report to both neighbors, and a tile may
	// hypothesize positions slightly past its seam, which softens the
	// accuracy penalty for users walking the seam at the cost of
	// proportionally more sensors per tile.
	Halo float64
}

// Tiles returns Rows×Cols, or 0 when either dimension is unset — the
// unsharded marker.
func (g Grid) Tiles() int {
	if g.Rows <= 0 || g.Cols <= 0 {
		return 0
	}
	return g.Rows * g.Cols
}

// String formats the grid as "RxC".
func (g Grid) String() string {
	return fmt.Sprintf("%dx%d", g.Rows, g.Cols)
}

// ParseGrid parses "RxC" (e.g. "2x2", "1x4") into a Grid with zero halo.
func ParseGrid(s string) (Grid, error) {
	lo, hi, ok := strings.Cut(strings.TrimSpace(s), "x")
	if !ok {
		return Grid{}, fmt.Errorf("shard: grid %q is not RxC", s)
	}
	r, err1 := strconv.Atoi(lo)
	c, err2 := strconv.Atoi(hi)
	if err1 != nil || err2 != nil || r < 1 || c < 1 {
		return Grid{}, fmt.Errorf("shard: grid %q is not RxC with positive dimensions", s)
	}
	return Grid{Rows: r, Cols: c}, nil
}

// TileOf maps a position to the tile owning it under the plain (halo-free)
// rect partition of field. The mapping is a pure function: positions
// exactly on an interior seam belong to the tile on the seam's upper/right
// side, positions on the field's outer max edges clamp into the last
// row/column, and corner points — equidistant from four tiles — resolve by
// the same two rules. Out-of-field positions clamp to the nearest tile.
func (g Grid) TileOf(field geom.Rect, p geom.Point) int {
	ix := tileCoord(p.X, field.Min.X, field.Width(), g.Cols)
	iy := tileCoord(p.Y, field.Min.Y, field.Height(), g.Rows)
	return iy*g.Cols + ix
}

func tileCoord(v, lo, extent float64, n int) int {
	i := int(math.Floor((v - lo) / extent * float64(n)))
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// tileSeed derives tile i's RNG substream seed with the same splitmix64
// finalizer the tracker uses for per-user substreams, so neighboring tiles
// land in independent stream regions. The degenerate single-tile grid IS
// the unsharded tracker, so it keeps the coordinator seed unchanged — that
// passthrough is one link in the 1×1 byte-identity chain.
func tileSeed(seed uint64, i, tiles int) uint64 {
	if tiles == 1 {
		return seed
	}
	z := seed + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Config configures a sharded tracking Field.
type Config struct {
	Model        *fluxmodel.Model
	SamplePoints []geom.Point // global sniffed-node positions
	NumUsers     int          // K: users tracked across the whole field
	Grid         Grid

	// Tracker is the per-tile tracker template: N, M, VMax, Search, Coarse,
	// and the rest are copied into every tile's smc.Config. New overrides
	// Model, SamplePoints, NumUsers, Bounds, and DBCache per tile, rejects a
	// template with Search.Coarse preset (tiles must not share one
	// misaligned database), and fills the template's Metrics/Trace from the
	// Field's when unset. The template's Workers bounds goroutines inside
	// one tile's step; Config.Workers bounds how many tiles step at once.
	Tracker smc.Config

	// InitialPositions, when non-nil (length NumUsers), seeds each user's
	// owning tile from their starting position; nil assigns users to tiles
	// round-robin and lets bootstrap plus handoff sort them out.
	InitialPositions []geom.Point

	// Workers bounds how many tiles step concurrently (0 = GOMAXPROCS,
	// 1 = serial). Output is byte-identical at any value.
	Workers int

	// Sched selects how tiles are assigned to the round's workers. The
	// default, SchedLPT, weighs each tile by a deterministic cost estimate
	// (its owned-user count plus the NNLS work its tracker burned last
	// round) and packs tiles onto workers longest-processing-time first, so
	// one hot tile under a skewed user distribution no longer serializes
	// the whole round behind a contiguous shard. SchedStatic keeps the
	// plain contiguous split (the pre-scale behavior, and the baseline the
	// scheduler benchmark compares against). Scheduling never affects
	// output — tiles write index-disjoint state and merge serially — so
	// both schedulers are byte-identical; they differ only in wall clock.
	Sched Scheduler

	// TileCapacity caps how many users one tile may own (0 = unlimited).
	// When a migration would overflow the destination, the user is
	// admitted instead by the first tile — in the destination's
	// deterministic neighbor order (ascending center distance, index
	// tie-break) — that has room and whose halo bounds contain the user's
	// estimate; if none qualifies the user stays on its source tile and
	// the round counts a spill (shard.balance.spills). Initial assignment
	// applies the same admission. NumUsers must not exceed
	// TileCapacity×tiles.
	TileCapacity int

	// DenseResults restores the legacy per-tile result shape: every tile
	// allocates a NumUsers-long estimate array per round instead of the
	// sparse owned-aligned buffer. Output is byte-identical either way;
	// the flag exists as the differential-testing reference and the
	// honest baseline for the scale benchmark.
	DenseResults bool

	// PerTileMetrics registers per-tile instruments on top of the
	// aggregated shard.* set: shard.tile.NNN.users (owned-user count per
	// round, a deterministic queue-depth gauge) and shard.tile.NNN.step_ms
	// (that tile's step-latency histogram). Off by default — a 32×32 grid
	// would register 2048 extra instruments.
	PerTileMetrics bool

	// Metrics receives the coordinator's shard.* counters/histograms and is
	// inherited by tile trackers whose template Metrics is unset; Trace
	// receives one tile-scoped span (Span.Tile >= 0) per stepped tile per
	// round alongside the tile trackers' own spans. Both are write-only.
	Metrics *obs.Metrics
	Trace   *obs.Trace

	// Cache memoizes fingerprint database builds across tiles (and across
	// Fields sharing the cache). Nil creates a private cache when the
	// template enables the coarse prestage.
	Cache *fingerprint.Cache
}

// Scheduler selects the tile-to-worker assignment policy of a round.
type Scheduler int

const (
	// SchedLPT (the default) schedules tiles longest-processing-time first
	// by deterministic per-tile cost estimates; see Config.Sched.
	SchedLPT Scheduler = iota
	// SchedStatic splits tiles into contiguous index ranges, one per
	// worker — the pre-scale behavior.
	SchedStatic
)

// tile is one shard: its ground, sensors, and tracker, plus the per-round
// scratch the coordinator reuses.
type tile struct {
	index   int
	rect    geom.Rect // owned ground (plain partition)
	bounds  geom.Rect // rect + halo, clipped to the field
	sensors []int     // ascending global sensor indices within bounds
	sink    int       // global index of the tile's collection sensor
	seed    uint64
	tracker *smc.Tracker

	owned    []int // users owned this round, ascending (route-arena backed)
	readings []float64
	present  []bool
	age      []int

	// estBuf is the tile's reusable sparse estimate buffer: the sparse
	// step writes this round's owned-aligned estimates into it, so
	// steady-state rounds allocate no estimate arrays.
	estBuf []smc.Estimate

	// prevSolves/prevIters checkpoint the tile tracker's cumulative NNLS
	// work so the coordinator can charge each round's delta into the
	// tile's next cost estimate. Both are deterministic work counts.
	prevSolves, prevIters uint64

	// Per-round results, written by this tile's worker only. In sparse
	// mode (the default) res.Estimates[i] belongs to owned[i]; with
	// Config.DenseResults it is the legacy dense NumUsers array.
	res     smc.StepResult
	err     error
	stepped bool
	queueNs int64
	wallNs  int64

	// Per-tile instruments, bound only when Config.PerTileMetrics is set.
	usersGauge *obs.Counter
	stepHist   *obs.Histogram
}

// estOf returns owned[k]'s estimate from the tile's last result,
// independent of the result shape (sparse owned-aligned vs legacy dense).
func (tl *tile) estOf(k int, dense bool) smc.Estimate {
	if dense {
		return tl.res.Estimates[tl.owned[k]]
	}
	return tl.res.Estimates[k]
}

// TileInfo is the read-only description of one tile.
type TileInfo struct {
	Index   int
	Rect    geom.Rect // owned ground
	Bounds  geom.Rect // halo-inflated sensing/hypothesis ground
	Sensors int       // sensors reporting to this tile
	Sink    int       // global sensor index of the tile's collection point
	Seed    uint64    // the tile's RNG substream seed
}

// fieldMetrics caches the coordinator's observability handles.
type fieldMetrics struct {
	m            *obs.Metrics
	shard        int
	steps        *obs.Counter   // shard.step.count
	handoffs     *obs.Counter   // shard.step.handoffs
	tilesStepped *obs.Counter   // shard.step.tiles_stepped
	spills       *obs.Counter   // shard.balance.spills
	maxTile      *obs.Counter   // shard.balance.max_tile_users
	queue        *obs.Histogram // shard.tile.queue_ms
	wall         *obs.Histogram // shard.tile.step_ms
	tileUsers    *obs.Histogram // shard.tile.users (per-round owned counts)
}

func (fm *fieldMetrics) bind(m *obs.Metrics, seed uint64) {
	if m == nil {
		return
	}
	*fm = fieldMetrics{
		m:            m,
		shard:        int(seed),
		steps:        m.Counter("shard.step.count"),
		handoffs:     m.Counter("shard.step.handoffs"),
		tilesStepped: m.Counter("shard.step.tiles_stepped"),
		spills:       m.Counter("shard.balance.spills"),
		maxTile:      m.Counter("shard.balance.max_tile_users"),
		queue:        m.Histogram("shard.tile.queue_ms", obs.DurationBucketsMs),
		wall:         m.Histogram("shard.tile.step_ms", obs.DurationBucketsMs),
		tileUsers:    m.Histogram("shard.tile.users", obs.CountBuckets),
	}
}

// Field coordinates the tiles of a sharded deployment. Like smc.Tracker it
// is not safe for concurrent use by multiple goroutines, but each round
// fans the tiles out over Config.Workers internally.
type Field struct {
	cfg      Config
	field    geom.Rect
	seed     uint64
	tiles    []*tile
	owner    []int // user -> owning tile
	lastEst  []smc.Estimate
	steps    int
	handoffs int
	spills   int
	met      fieldMetrics

	handIn  []int // per-tile migrations in, reused across rounds
	handOut []int // per-tile migrations out

	// Counting-sort routing state: one pass over owner fills routeArena
	// with every tile's owned users in ascending order, and each tile's
	// owned slice aliases its contiguous segment — zero steady-state
	// allocations regardless of how users migrate between rounds.
	routeNext  []int
	routeArena []int
	load       []int // users currently owned per tile (capacity accounting)

	// LPT scheduling state: per-tile cost estimates and the reusable
	// worker plan (see Config.Sched).
	costs []float64
	plan  [][]int

	// neighbors[d] lists every other tile in ascending distance from tile
	// d's center (index tie-break) — the deterministic admission scan
	// order when d is full. Built only when TileCapacity > 0.
	neighbors [][]int

	// lastMax/lastMean capture the tile-load imbalance of the most recent
	// round's routing (see Imbalance).
	lastMax  int
	lastMean float64
}

// New builds a sharded Field over cfg's deployment; seed fixes every tile's
// (and thereby every user's) RNG substream.
func New(cfg Config, seed uint64) (*Field, error) {
	if cfg.Model == nil {
		return nil, errors.New("shard: nil model")
	}
	if len(cfg.SamplePoints) == 0 {
		return nil, errors.New("shard: no sampling points")
	}
	if cfg.NumUsers <= 0 {
		return nil, fmt.Errorf("shard: NumUsers must be positive, got %d", cfg.NumUsers)
	}
	tiles := cfg.Grid.Tiles()
	if tiles < 1 {
		return nil, fmt.Errorf("shard: grid %s has no tiles", cfg.Grid)
	}
	if cfg.Grid.Halo < 0 || math.IsNaN(cfg.Grid.Halo) || math.IsInf(cfg.Grid.Halo, 0) {
		return nil, fmt.Errorf("shard: halo %v must be finite and non-negative", cfg.Grid.Halo)
	}
	if cfg.Tracker.Search.Coarse != nil {
		return nil, errors.New("shard: tracker template must not preset Search.Coarse; tiles build their own databases")
	}
	if cfg.InitialPositions != nil && len(cfg.InitialPositions) != cfg.NumUsers {
		return nil, fmt.Errorf("shard: %d initial positions for %d users", len(cfg.InitialPositions), cfg.NumUsers)
	}
	if cfg.TileCapacity < 0 {
		return nil, fmt.Errorf("shard: TileCapacity %d must be non-negative", cfg.TileCapacity)
	}
	if cfg.TileCapacity > 0 && cfg.NumUsers > cfg.TileCapacity*tiles {
		return nil, fmt.Errorf("shard: %d users exceed TileCapacity %d × %d tiles",
			cfg.NumUsers, cfg.TileCapacity, tiles)
	}
	cache := cfg.Cache
	if cache == nil && cfg.Tracker.Coarse.Enabled {
		cache = fingerprint.NewCache(0)
	}

	field := cfg.Model.Field()
	f := &Field{
		cfg:        cfg,
		field:      field,
		seed:       seed,
		tiles:      make([]*tile, tiles),
		owner:      make([]int, cfg.NumUsers),
		lastEst:    make([]smc.Estimate, cfg.NumUsers),
		handIn:     make([]int, tiles),
		handOut:    make([]int, tiles),
		routeNext:  make([]int, tiles),
		routeArena: make([]int, cfg.NumUsers),
		load:       make([]int, tiles),
		costs:      make([]float64, tiles),
	}
	for i := range f.tiles {
		tl, err := f.newTile(i, cache, seed)
		if err != nil {
			return nil, err
		}
		f.tiles[i] = tl
	}
	if cfg.TileCapacity > 0 {
		f.buildNeighborOrder()
	}
	for j := range f.owner {
		want := j % tiles
		if cfg.InitialPositions != nil {
			want = cfg.Grid.TileOf(field, cfg.InitialPositions[j])
		}
		f.owner[j] = f.admit(want)
		f.load[f.owner[j]]++
		// Until a user's tile first steps, report what its tracker would:
		// the tile bounds center with zero confidence.
		c := f.tiles[f.owner[j]].bounds.Center()
		f.lastEst[j] = smc.Estimate{Mean: c, Best: c}
	}
	f.met.bind(cfg.Metrics, seed)
	if cfg.PerTileMetrics && cfg.Metrics != nil {
		for _, tl := range f.tiles {
			tl.usersGauge = cfg.Metrics.Counter(fmt.Sprintf("shard.tile.%03d.users", tl.index))
			tl.stepHist = cfg.Metrics.Histogram(fmt.Sprintf("shard.tile.%03d.step_ms", tl.index), obs.DurationBucketsMs)
		}
	}
	return f, nil
}

// buildNeighborOrder precomputes, for every tile d, the other tiles sorted
// by ascending distance between tile centers with index tie-breaks — the
// deterministic scan order of the capacity admission.
func (f *Field) buildNeighborOrder() {
	tiles := len(f.tiles)
	f.neighbors = make([][]int, tiles)
	for d := range f.tiles {
		order := make([]int, 0, tiles-1)
		for i := range f.tiles {
			if i != d {
				order = append(order, i)
			}
		}
		cd := f.tiles[d].rect.Center()
		sort.Slice(order, func(a, b int) bool {
			da := f.tiles[order[a]].rect.Center().Sub(cd).Norm()
			db := f.tiles[order[b]].rect.Center().Sub(cd).Norm()
			if da != db {
				return da < db
			}
			return order[a] < order[b]
		})
		f.neighbors[d] = order
	}
}

// admit places a new user wanting tile `want` under the capacity rule: the
// desired tile if it has room, else the nearest tile (in want's neighbor
// order) with room. Only called from New, where global capacity is already
// validated, so a slot always exists.
func (f *Field) admit(want int) int {
	capacity := f.cfg.TileCapacity
	if capacity <= 0 || f.load[want] < capacity {
		return want
	}
	for _, nb := range f.neighbors[want] {
		if f.load[nb] < capacity {
			return nb
		}
	}
	return want // unreachable: capacity×tiles ≥ NumUsers
}

// newTile carves tile i out of the field and builds its tracker.
func (f *Field) newTile(i int, cache *fingerprint.Cache, seed uint64) (*tile, error) {
	g := f.cfg.Grid
	r, c := i/g.Cols, i%g.Cols
	rect := geom.Rect{
		Min: geom.Pt(tileEdge(f.field.Min.X, f.field.Max.X, c, g.Cols),
			tileEdge(f.field.Min.Y, f.field.Max.Y, r, g.Rows)),
		Max: geom.Pt(tileEdge(f.field.Min.X, f.field.Max.X, c+1, g.Cols),
			tileEdge(f.field.Min.Y, f.field.Max.Y, r+1, g.Rows)),
	}
	bounds := geom.Rect{
		Min: geom.Pt(math.Max(rect.Min.X-g.Halo, f.field.Min.X),
			math.Max(rect.Min.Y-g.Halo, f.field.Min.Y)),
		Max: geom.Pt(math.Min(rect.Max.X+g.Halo, f.field.Max.X),
			math.Min(rect.Max.Y+g.Halo, f.field.Max.Y)),
	}
	tl := &tile{index: i, rect: rect, bounds: bounds, seed: tileSeed(seed, i, g.Tiles())}
	var points []geom.Point
	for si, p := range f.cfg.SamplePoints {
		if bounds.Contains(p) {
			tl.sensors = append(tl.sensors, si)
			points = append(points, p)
		}
	}
	if len(tl.sensors) == 0 {
		return nil, fmt.Errorf("shard: tile %d (%v) covers no sensors; use fewer tiles, a wider halo, or a denser vantage", i, bounds)
	}
	// The tile's sink: the covered sensor nearest the tile center, ties to
	// the lower global index — the deterministic collection point per-tile
	// routing would drain to.
	center := rect.Center()
	bestD := math.Inf(1)
	for k, si := range tl.sensors {
		if d := points[k].Sub(center).Norm(); d < bestD {
			bestD, tl.sink = d, si
		}
	}

	tcfg := f.cfg.Tracker
	tcfg.Model = f.cfg.Model
	tcfg.SamplePoints = points
	tcfg.NumUsers = f.cfg.NumUsers
	tcfg.Bounds = bounds
	tcfg.DBCache = cache
	if tcfg.Metrics == nil {
		tcfg.Metrics = f.cfg.Metrics
	}
	if tcfg.Trace == nil {
		tcfg.Trace = f.cfg.Trace
	}
	tr, err := smc.New(tcfg, tl.seed)
	if err != nil {
		return nil, fmt.Errorf("shard: tile %d tracker: %w", i, err)
	}
	tl.tracker = tr
	tl.readings = make([]float64, len(tl.sensors))
	return tl, nil
}

// tileEdge returns the x (or y) coordinate of grid line k of n, pinning the
// outer lines to the exact field edges so the partition tiles the field
// without floating-point slack.
func tileEdge(lo, hi float64, k, n int) float64 {
	switch k {
	case 0:
		return lo
	case n:
		return hi
	}
	return lo + (hi-lo)*float64(k)/float64(n)
}

// NumTiles returns the tile count.
func (f *Field) NumTiles() int { return len(f.tiles) }

// Tile describes tile i.
func (f *Field) Tile(i int) TileInfo {
	tl := f.tiles[i]
	return TileInfo{
		Index: tl.index, Rect: tl.rect, Bounds: tl.bounds,
		Sensors: len(tl.sensors), Sink: tl.sink, Seed: tl.seed,
	}
}

// Owner returns the tile currently owning user j.
func (f *Field) Owner(j int) int { return f.owner[j] }

// Steps returns how many observation rounds advanced at least one tile.
func (f *Field) Steps() int { return f.steps }

// Handoffs returns the cumulative number of cross-tile user migrations — a
// deterministic count, identical at any worker count.
func (f *Field) Handoffs() int { return f.handoffs }

// Spills returns the cumulative number of migrations blocked by
// Config.TileCapacity with no admissible neighbor — users who stayed on an
// out-of-ground tile for a round. Deterministic, like Handoffs.
func (f *Field) Spills() int { return f.spills }

// Imbalance reports the tile-load shape of the most recent round's routing:
// the largest per-tile owned-user count and the mean (NumUsers/tiles). A
// max/mean ratio near 1 is a balanced field; large ratios are the skewed
// distributions the LPT scheduler exists for. Deterministic.
func (f *Field) Imbalance() (maxUsers int, meanUsers float64) {
	return f.lastMax, f.lastMean
}

// WorkTotals sums the cumulative NNLS (solves, iterations) over all tile
// trackers: the deterministic work measure behind the sharding speedup.
func (f *Field) WorkTotals() (solves, iters uint64) {
	for _, tl := range f.tiles {
		s, it := tl.tracker.WorkTotals()
		solves += s
		iters += it
	}
	return solves, iters
}

// Step routes the global flux observation taken at time t (aligned with
// Config.SamplePoints) to the tiles, steps them concurrently, and merges
// the per-tile results; see StepMasked for the degraded-observation form.
func (f *Field) Step(t float64, measured []float64) (smc.StepResult, error) {
	return f.StepMasked(t, measured, nil, nil)
}

// StepMasked is Step over a degraded observation (present/age as in
// smc.Tracker.StepMasked, aligned with the global sample points). Each tile
// sees only its own sensors' slice of the round: a tile whose delivered
// sensor set is empty skips the round — its users keep their previous
// estimates, reported with Active false — while the remaining tiles step
// normally. Only when every owning tile skips does StepMasked return
// ErrAllMasked (wrapped) with the Field untouched, matching the unsharded
// contract. After the merge, the handoff pass migrates every initialized
// user whose new estimate left its tile's ground, in ascending (tile, user)
// order.
func (f *Field) StepMasked(t float64, measured []float64, present []bool, age []int) (smc.StepResult, error) {
	n := len(f.cfg.SamplePoints)
	if len(measured) != n {
		return smc.StepResult{}, fmt.Errorf("shard: observation length %d, want %d", len(measured), n)
	}
	if present != nil && len(present) != n {
		return smc.StepResult{}, fmt.Errorf("shard: present mask length %d, want %d", len(present), n)
	}
	if age != nil && len(age) != n {
		return smc.StepResult{}, fmt.Errorf("shard: age vector length %d, want %d", len(age), n)
	}
	observed := f.met.m != nil || f.cfg.Trace != nil
	var roundStart time.Time
	if observed {
		roundStart = time.Now()
	}

	f.route()

	// Fan the tiles out under the configured scheduler. Each worker touches
	// only its tile's state, so the round is race-free by construction;
	// determinism comes from the serial merge below, not from scheduling —
	// the LPT plan only decides which worker runs a tile, never what the
	// tile computes.
	stepTile := func(w, i int) error {
		tl := f.tiles[i]
		if len(tl.owned) == 0 {
			return nil
		}
		var t0 time.Time
		if observed {
			tl.queueNs = time.Since(roundStart).Nanoseconds()
			t0 = time.Now()
		}
		m, p, a, users := tl.gather(measured, present, age)
		var res smc.StepResult
		var err error
		if f.cfg.DenseResults {
			res, err = tl.tracker.StepUsersMasked(t, m, p, a, users)
		} else {
			res, err = tl.tracker.StepUsersMaskedSparse(t, m, p, a, users, tl.estBuf)
			if err == nil {
				tl.estBuf = res.Estimates // reuse the owned-aligned buffer next round
			}
		}
		if observed {
			tl.wallNs = time.Since(t0).Nanoseconds()
		}
		if err != nil {
			tl.err = err
			return nil
		}
		tl.res = res
		tl.stepped = true
		return nil
	}
	if f.cfg.Sched == SchedStatic {
		_ = par.For(len(f.tiles), f.cfg.Workers, stepTile)
	} else {
		// Cost-weighted LPT: weigh each tile by its owned-user count plus
		// the NNLS work it burned last round. Every input is a
		// deterministic work counter, so the plan — like the output — is a
		// pure function of the run, reproducible at any worker count.
		for i, tl := range f.tiles {
			f.costs[i] = float64(1 + len(tl.owned))
			solves, iters := tl.tracker.WorkTotals()
			f.costs[i] += float64(solves - tl.prevSolves + (iters-tl.prevIters)/4)
		}
		f.plan = par.LPTAssign(f.costs, f.cfg.Workers, f.plan)
		_ = par.ForPlan(f.plan, stepTile)
	}
	for _, tl := range f.tiles {
		if tl.stepped {
			tl.prevSolves, tl.prevIters = tl.tracker.WorkTotals()
		}
	}

	// Error scan before any state merges, in ascending tile order: the
	// first hard error (by tile index) rejects the round with the Field
	// untouched; all-masked tiles merely degrade. A round where every
	// owning tile was all-masked returns the lowest tile's error verbatim —
	// for a 1×1 grid that IS the unsharded error.
	var maskErr error
	anyStepped := false
	for _, tl := range f.tiles {
		switch {
		case tl.err == nil:
			anyStepped = anyStepped || tl.stepped
		case errors.Is(tl.err, smc.ErrAllMasked):
			if maskErr == nil {
				maskErr = tl.err
			}
		default:
			return smc.StepResult{}, fmt.Errorf("shard: tile %d: %w", tl.index, tl.err)
		}
	}
	if !anyStepped {
		if maskErr != nil {
			return smc.StepResult{}, maskErr
		}
		return smc.StepResult{}, errors.New("shard: no tile stepped")
	}

	// Serial merge in ascending tile order.
	dense := f.cfg.DenseResults
	out := smc.StepResult{Time: t, Estimates: make([]smc.Estimate, f.cfg.NumUsers)}
	for _, tl := range f.tiles {
		if !tl.stepped {
			continue
		}
		out.Objective += tl.res.Objective
		for k, j := range tl.owned {
			f.lastEst[j] = tl.estOf(k, dense)
		}
	}
	for j := range out.Estimates {
		e := f.lastEst[j]
		if !f.tiles[f.owner[j]].stepped {
			// Carried forward from a skipped tile: stale, not active.
			e.Active = false
			e.Stretch = 0
		}
		out.Estimates[j] = e
	}
	f.steps++

	// Handoff pass: serial, ascending (tile, user). A user migrates when
	// initialized (its estimate is evidence-backed) and its posterior mean
	// left the owning tile's ground; the sample buffers move wholesale (a
	// pooled transfer, no per-migration allocation) and the source slot
	// resets. Running after the barrier means no tile's step this round saw
	// a migration decided this round. Under TileCapacity a full destination
	// redirects the user through its deterministic neighbor order, or the
	// user stays put and the round counts a spill — all decided in the same
	// serial order, so capacity pressure never costs worker invariance.
	migrations, spills := 0, 0
	for i := range f.handIn {
		f.handIn[i], f.handOut[i] = 0, 0
	}
	capacity := f.cfg.TileCapacity
	for _, tl := range f.tiles {
		if !tl.stepped {
			continue
		}
		for k, j := range tl.owned {
			est := tl.estOf(k, dense)
			if len(est.Samples) == 0 { // uninitialized: nothing to move
				continue
			}
			dst := f.cfg.Grid.TileOf(f.field, est.Mean)
			if dst == tl.index {
				continue
			}
			if capacity > 0 && f.load[dst] >= capacity {
				redirect := -1
				for _, nb := range f.neighbors[dst] {
					if f.load[nb] < capacity && f.tiles[nb].bounds.Contains(est.Mean) {
						redirect = nb
						break
					}
				}
				switch redirect {
				case -1: // nowhere admissible: stay on the source tile
					spills++
					continue
				case tl.index: // nearest admissible tile is home already
					continue
				}
				dst = redirect
			}
			if err := tl.tracker.MoveUserTo(f.tiles[dst].tracker, j); err != nil {
				return smc.StepResult{}, fmt.Errorf("shard: handoff of user %d, tile %d->%d: %w", j, tl.index, dst, err)
			}
			f.owner[j] = dst
			f.load[tl.index]--
			f.load[dst]++
			f.handOut[tl.index]++
			f.handIn[dst]++
			migrations++
		}
	}
	f.handoffs += migrations
	f.spills += spills

	if observed {
		f.record(t, migrations, spills)
	}
	return out, nil
}

// route runs the counting-sort observation-routing pass: one count over the
// owner table sizes each tile's contiguous segment of routeArena, and a
// second pass over ascending user indices fills the segments — so every
// tile's owned slice is ascending, aliases the arena, and the pass allocates
// nothing in steady state no matter how users migrate between rounds. route
// also resets the tiles' per-round scratch and captures the round's tile-load
// imbalance (see Imbalance).
func (f *Field) route() {
	clear(f.routeNext)
	for _, o := range f.owner {
		f.routeNext[o]++
	}
	start, maxLoad := 0, 0
	for i, tl := range f.tiles {
		n := f.routeNext[i]
		f.load[i] = n
		if n > maxLoad {
			maxLoad = n
		}
		tl.owned = f.routeArena[start : start+n]
		f.routeNext[i] = start // becomes the segment's write cursor
		start += n
		tl.stepped = false
		tl.err = nil
	}
	for j, o := range f.owner { // ascending j keeps every segment sorted
		f.routeArena[f.routeNext[o]] = j
		f.routeNext[o]++
	}
	f.lastMax = maxLoad
	f.lastMean = float64(len(f.owner)) / float64(len(f.tiles))
}

// gather copies the tile's slice of the global observation into the tile's
// reusable buffers, returning nil masks when the round carries none.
func (tl *tile) gather(measured []float64, present []bool, age []int) (m []float64, p []bool, a []int, users []int) {
	for k, si := range tl.sensors {
		tl.readings[k] = measured[si]
	}
	if present != nil {
		if tl.present == nil {
			tl.present = make([]bool, len(tl.sensors))
		}
		for k, si := range tl.sensors {
			tl.present[k] = present[si]
		}
		p = tl.present
	}
	if age != nil {
		if tl.age == nil {
			tl.age = make([]int, len(tl.sensors))
		}
		for k, si := range tl.sensors {
			tl.age[k] = age[si]
		}
		a = tl.age
	}
	return tl.readings, p, a, tl.owned
}

// record flushes the round's coordinator observability: shard.* counters,
// queue/step histograms, the balance gauges, and one tile-scoped span per
// stepped tile. All counters are deterministic; only the histograms and span
// timings are wall-clock. shard.balance.max_tile_users accumulates each
// round's max tile load, so value/shard.step.count is the mean per-round
// peak; the full per-round load distribution lands in shard.tile.users.
func (f *Field) record(t float64, migrations, spills int) {
	stepped := 0
	for _, tl := range f.tiles {
		if tl.stepped {
			stepped++
		}
	}
	if fm := &f.met; fm.m != nil {
		w := fm.shard
		fm.steps.Inc(w)
		fm.handoffs.Add(w, uint64(migrations))
		fm.tilesStepped.Add(w, uint64(stepped))
		fm.spills.Add(w, uint64(spills))
		fm.maxTile.Add(w, uint64(f.lastMax))
		for _, tl := range f.tiles {
			fm.tileUsers.Observe(w, float64(len(tl.owned)))
			if tl.usersGauge != nil {
				tl.usersGauge.Add(w, uint64(len(tl.owned)))
			}
			if tl.stepped {
				fm.queue.Observe(w, float64(tl.queueNs)/1e6)
				fm.wall.Observe(w, float64(tl.wallNs)/1e6)
				if tl.stepHist != nil {
					tl.stepHist.Observe(w, float64(tl.wallNs)/1e6)
				}
			}
		}
	}
	if f.cfg.Trace != nil {
		for _, tl := range f.tiles {
			if !tl.stepped {
				continue
			}
			f.cfg.Trace.Add(obs.Span{
				Seed: tl.seed, Step: f.steps - 1, Time: t, Tile: tl.index,
				Users:     len(tl.owned),
				Searched:  len(tl.owned),
				Objective: tl.res.Objective,
				QueueNs:   tl.queueNs,
				WallNs:    tl.wallNs,
				Handoffs:  f.handIn[tl.index] + f.handOut[tl.index],
			})
		}
	}
}
