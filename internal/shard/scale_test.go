package shard_test

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"
	"os"
	"reflect"
	"strconv"
	"testing"

	"fluxtrack/internal/fault"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mobility"
	"fluxtrack/internal/shard"
	"fluxtrack/internal/smc"
)

// Scale-out coverage: the determinism contract under heavily skewed user
// distributions, capacity admission and spills, and the population-scale
// smoke digest the CI scale job runs with -race.

// skewTrajectories builds the two pathological distributions of the scale
// work: "one-tile" parks the whole population inside tile 0 of every grid
// under test (the cluster fits in [0.4, 3.4]², inside tile 0 even at 8×8 on
// the 30-unit field), and "hot-corner" clusters everyone at the far corner
// drifting together toward the field center, so the hot tile moves and the
// whole block crosses seams round after round.
func skewTrajectories(kind string, users int) []mobility.Trajectory {
	trajs := make([]mobility.Trajectory, users)
	for i := range trajs {
		fi := float64(i)
		switch kind {
		case "one-tile":
			trajs[i] = mobility.Static{Pos: geom.Pt(0.4+0.3*fi, 3.1-0.27*fi)}
		case "hot-corner":
			trajs[i] = mobility.Linear{
				Start: geom.Pt(26.5+0.25*fi, 28.2-0.3*fi),
				V:     geom.Vec{DX: -1.6, DY: -1.4},
			}
		default:
			panic("unknown skew kind " + kind)
		}
	}
	return trajs
}

// degrade precomputes a fault-injected view of the world's observation
// stream. One injector, applied once, shared by every run: all runs replay
// the identical degraded rounds, so any divergence between them is the
// field's fault, not the fault layer's.
func degrade(t *testing.T, w *world, cfg fault.Config, seed uint64) []fault.Observation {
	t.Helper()
	inj, err := fault.NewInjector(cfg, len(w.points), seed)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]fault.Observation, 0, len(w.obs))
	for _, o := range w.obs {
		d, err := inj.Apply(o)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}

// skewOutcome captures everything a skewed run may legally vary nothing of.
type skewOutcome struct {
	results       []smc.StepResult
	handoffs      int
	spills        int
	firstMax      int     // tile-load max of the first routed round
	firstMean     float64 // and its mean
	lastMax       int
	finalOwners   []int
	skippedRounds int
}

// TestSkewedWorkerInvariance pins the determinism contract where it is
// hardest: heavily skewed distributions (everyone in one tile; a hot corner
// drifting across seams) on 4×4 and 8×8 grids, under fault injection, across
// worker counts, both schedulers, and both result shapes. SchedStatic with
// DenseResults is exactly the pre-scale code path, so this doubles as the
// differential test that the scale-out machinery — LPT plans, counting-sort
// routing, pooled sparse buffers, pooled migration — changed the wall clock
// and nothing else.
func TestSkewedWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("skew determinism suite skipped in -short mode")
	}
	const users, rounds = 10, 8
	faultCfg := fault.Config{
		DropoutFrac: 0.10, LossProb: 0.10, DelayProb: 0.15, DelayRounds: 2, StuckFrac: 0.05,
	}
	for _, kind := range []string{"one-tile", "hot-corner"} {
		w := buildWorldSensors(t, 101, users, rounds, 420, skewTrajectories(kind, users))
		deg := degrade(t, w, faultCfg, 909)
		for _, grid := range []shard.Grid{
			{Rows: 4, Cols: 4, Halo: 2.5},
			{Rows: 8, Cols: 8, Halo: 2.5},
		} {
			kind, grid := kind, grid
			t.Run(kind+"/"+grid.String(), func(t *testing.T) {
				t.Parallel()
				run := func(workers int, sched shard.Scheduler, dense bool) skewOutcome {
					f, err := shard.New(shard.Config{
						Model:        w.sc.Model(),
						SamplePoints: w.points,
						NumUsers:     users,
						Grid:         grid,
						Tracker:      smc.Config{N: 120, M: 6, Workers: 2},
						Workers:      workers,
						Sched:        sched,
						DenseResults: dense,
						// Seed ownership from the true starting cluster so the
						// skew exists from round one, not only after handoffs
						// herd the users together.
						InitialPositions: w.truths[0],
					}, 33)
					if err != nil {
						t.Fatal(err)
					}
					var oc skewOutcome
					for r := range w.obs {
						d := deg[r]
						res, err := f.StepMasked(float64(r+1), d.Readings, d.Present, d.Age)
						if err != nil {
							if errors.Is(err, smc.ErrAllMasked) {
								oc.skippedRounds++
								continue
							}
							t.Fatalf("round %d: %v", r, err)
						}
						oc.results = append(oc.results, res)
						if r == 0 {
							oc.firstMax, oc.firstMean = f.Imbalance()
						}
					}
					oc.handoffs, oc.spills = f.Handoffs(), f.Spills()
					oc.lastMax, _ = f.Imbalance()
					for j := 0; j < users; j++ {
						oc.finalOwners = append(oc.finalOwners, f.Owner(j))
					}
					return oc
				}
				ref := run(1, shard.SchedLPT, false)
				// The imbalance metric must see the skew: round one routes the
				// population exactly where the true cluster sits.
				wantMax := 0
				counts := make([]int, grid.Tiles())
				for _, p := range w.truths[0] {
					i := grid.TileOf(w.sc.Field(), p)
					counts[i]++
					if counts[i] > wantMax {
						wantMax = counts[i]
					}
				}
				if ref.firstMax != wantMax {
					t.Errorf("first-round max tile load = %d, want %d (the true cluster)", ref.firstMax, wantMax)
				}
				if want := float64(users) / float64(grid.Tiles()); ref.firstMean != want {
					t.Errorf("first-round mean tile load = %v, want %v", ref.firstMean, want)
				}
				if ref.spills != 0 {
					t.Errorf("spills = %d without TileCapacity", ref.spills)
				}
				for _, workers := range []int{3, 8, 0} {
					if got := run(workers, shard.SchedLPT, false); !reflect.DeepEqual(got, ref) {
						t.Errorf("Workers=%d diverges from serial run", workers)
					}
				}
				// Scheduler and result shape are performance knobs, never
				// output knobs.
				if got := run(4, shard.SchedStatic, false); !reflect.DeepEqual(got, ref) {
					t.Error("SchedStatic diverges from SchedLPT")
				}
				if got := run(4, shard.SchedStatic, true); !reflect.DeepEqual(got, ref) {
					t.Error("legacy path (SchedStatic+DenseResults) diverges from the scale path")
				}
				if got := run(4, shard.SchedLPT, true); !reflect.DeepEqual(got, ref) {
					t.Error("DenseResults diverges from sparse results")
				}
			})
		}
	}
}

// TestTileCapacityAdmissionAndSpill drives six users as one block from tile
// 0's interior diagonally into tile 3 of a 2×2 grid with TileCapacity 3:
// initial admission must overflow deterministically into the nearest tile
// with room (index tie-break picks tile 1 over tile 2), migrations into the
// full tile 3 must redirect or spill, no tile may ever own more than the
// cap, and the whole trace must replay byte-identically.
func TestTileCapacityAdmissionAndSpill(t *testing.T) {
	const users, rounds = 6, 10
	trajs := make([]mobility.Trajectory, users)
	starts := make([]geom.Point, users)
	for i := range trajs {
		fi := float64(i)
		starts[i] = geom.Pt(9+0.3*fi, 9.7-0.3*fi)
		trajs[i] = mobility.Linear{Start: starts[i], V: geom.Vec{DX: 1.5, DY: 1.5}}
	}
	w := buildWorld(t, 81, users, rounds, trajs)
	type trace struct {
		owners   [][]int
		handoffs int
		spills   int
	}
	run := func() trace {
		f, err := shard.New(shard.Config{
			Model:            w.sc.Model(),
			SamplePoints:     w.points,
			NumUsers:         users,
			Grid:             shard.Grid{Rows: 2, Cols: 2, Halo: 2},
			Tracker:          smc.Config{N: 250, M: 8},
			TileCapacity:     3,
			InitialPositions: starts,
		}, 19)
		if err != nil {
			t.Fatal(err)
		}
		// All six want tile 0; capacity admits three and redirects the rest
		// to tile 1 — tiles 1 and 2 tie on center distance, so the index
		// tie-break decides.
		wantInit := []int{0, 0, 0, 1, 1, 1}
		for j, want := range wantInit {
			if got := f.Owner(j); got != want {
				t.Fatalf("initial owner of user %d = %d, want %d", j, got, want)
			}
		}
		var tr trace
		for r, o := range w.obs {
			if _, err := f.Step(float64(r+1), o); err != nil {
				t.Fatalf("round %d: %v", r, err)
			}
			loads := make([]int, 4)
			owners := make([]int, users)
			for j := 0; j < users; j++ {
				owners[j] = f.Owner(j)
				loads[owners[j]]++
			}
			for i, l := range loads {
				if l > 3 {
					t.Fatalf("round %d: tile %d owns %d users, capacity 3", r, i, l)
				}
			}
			tr.owners = append(tr.owners, owners)
		}
		tr.handoffs, tr.spills = f.Handoffs(), f.Spills()
		return tr
	}
	first := run()
	final := first.owners[len(first.owners)-1]
	inT3 := 0
	for _, o := range final {
		if o == 3 {
			inT3++
		}
	}
	if inT3 != 3 {
		t.Errorf("final round: tile 3 owns %d users, want exactly its capacity 3 (owners %v)", inT3, final)
	}
	if first.handoffs < 3 {
		t.Errorf("handoffs = %d, want >= 3 (the block crossed into tile 3)", first.handoffs)
	}
	if first.spills < 1 {
		t.Errorf("spills = %d, want >= 1 (the overflow users are stuck outside a full tile)", first.spills)
	}
	if second := run(); !reflect.DeepEqual(first, second) {
		t.Fatal("capacity admission trace is not reproducible")
	}
}

// TestTileCapacityValidation pins the construction-time capacity contract.
func TestTileCapacityValidation(t *testing.T) {
	w := buildWorld(t, 91, 1, 1, nil)
	base := shard.Config{
		Model: w.sc.Model(), SamplePoints: w.points, NumUsers: 9,
		Grid: shard.Grid{Rows: 2, Cols: 2, Halo: 2}, Tracker: smc.Config{N: 50, M: 5},
	}
	over := base
	over.TileCapacity = 2 // 9 users > 2×4 slots
	if _, err := shard.New(over, 1); err == nil {
		t.Error("NumUsers over TileCapacity×tiles accepted")
	}
	neg := base
	neg.TileCapacity = -1
	if _, err := shard.New(neg, 1); err == nil {
		t.Error("negative TileCapacity accepted")
	}
	exact := base
	exact.TileCapacity = 3 // 9 users == 3×3, but over 4 tiles: 9 <= 12 fits
	if _, err := shard.New(exact, 1); err != nil {
		t.Errorf("TileCapacity with room rejected: %v", err)
	}
}

// scaleSmokeUsers is the population of the scale smoke: 2000 by default so
// plain `go test ./...` stays quick, overridden by FLUXTRACK_SCALE_USERS in
// the CI scale job (10⁵ on an 8×8 grid under -race).
func scaleSmokeUsers(t *testing.T) int {
	if s := os.Getenv("FLUXTRACK_SCALE_USERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("FLUXTRACK_SCALE_USERS=%q is not a positive integer", s)
		}
		return n
	}
	return 2000
}

// digestEstimates folds a round's estimates into a running fnv-1a digest:
// the positions, activity, and stretch of every user, bit-exact.
func digestEstimates(h interface{ Write([]byte) (int, error) }, ests []smc.Estimate) {
	var buf [8]byte
	word := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	for _, e := range ests {
		word(e.Mean.X)
		word(e.Mean.Y)
		word(e.Best.X)
		word(e.Best.Y)
		word(e.Stretch)
		if e.Active {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
}

// TestScaleSmokeDigest is the population-scale smoke behind the CI scale
// job: an 8×8 field tracking a large population must complete its rounds and
// produce a bit-identical estimate digest (and owner table, and handoff
// count) at different worker counts. The digest keeps memory flat — two full
// result histories at 10⁵ users would not fit the race detector's budget.
func TestScaleSmokeDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke skipped in -short mode")
	}
	users := scaleSmokeUsers(t)
	const rounds = 3
	w := buildWorldSensors(t, 7, users, rounds, 160, nil)
	// Capacity at twice the even per-tile share: loose enough that a random
	// population routes mostly unimpeded, tight enough that the capacity
	// admission path runs at scale and its spill count joins the digest.
	capacity := (2*users + 63) / 64
	digest := func(workers int) uint64 {
		f, err := shard.New(shard.Config{
			Model:        w.sc.Model(),
			SamplePoints: w.points,
			NumUsers:     users,
			Grid:         shard.Grid{Rows: 8, Cols: 8, Halo: 3},
			Tracker:      smc.Config{N: 60, M: 5, ActiveSetLimit: 6, Workers: 2},
			Workers:      workers,
			TileCapacity: capacity,
		}, 77)
		if err != nil {
			t.Fatal(err)
		}
		h := fnv.New64a()
		for r, o := range w.obs {
			res, err := f.Step(float64(r+1), o)
			if err != nil {
				t.Fatalf("round %d: %v", r, err)
			}
			digestEstimates(h, res.Estimates)
		}
		var buf [8]byte
		for j := 0; j < users; j++ {
			binary.LittleEndian.PutUint64(buf[:], uint64(f.Owner(j)))
			h.Write(buf[:])
		}
		binary.LittleEndian.PutUint64(buf[:], uint64(f.Handoffs()))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(f.Spills()))
		h.Write(buf[:])
		maxLoad, _ := f.Imbalance()
		binary.LittleEndian.PutUint64(buf[:], uint64(maxLoad))
		h.Write(buf[:])
		return h.Sum64()
	}
	serialish := digest(2)
	if wide := digest(0); wide != serialish {
		t.Fatalf("scale digest diverges across worker counts: %#x vs %#x", serialish, wide)
	}
}

// TestSpillGoldenHotCorner pins the exact spill count of the hardest
// capacity scenario — the whole population clustered in one corner tile
// (capacity 3) drifting across seams toward the center — as a seed-pinned
// golden. The count is a pure function of (world seed, field seed, config):
// any change to routing order, admission tie-breaks, or handoff sequencing
// shows up here as a changed constant, which a PR must then justify.
func TestSpillGoldenHotCorner(t *testing.T) {
	const users, rounds = 10, 8
	const wantSpills = 6 // seed-pinned: (world 13, field 29, 4×4 halo 2.5, cap 3)
	trajs := skewTrajectories("hot-corner", users)
	w := buildWorld(t, 13, users, rounds, trajs)
	starts := make([]geom.Point, users)
	for i, tr := range trajs {
		starts[i] = w.sc.Field().Clamp(tr.At(1))
	}
	run := func() (int, int) {
		f, err := shard.New(shard.Config{
			Model:            w.sc.Model(),
			SamplePoints:     w.points,
			NumUsers:         users,
			Grid:             shard.Grid{Rows: 4, Cols: 4, Halo: 2.5},
			Tracker:          smc.Config{N: 120, M: 6},
			TileCapacity:     3,
			InitialPositions: starts,
		}, 29)
		if err != nil {
			t.Fatal(err)
		}
		for r, o := range w.obs {
			if _, err := f.Step(float64(r+1), o); err != nil {
				t.Fatalf("round %d: %v", r, err)
			}
		}
		return f.Spills(), f.Handoffs()
	}
	spills, handoffs := run()
	if spills != wantSpills {
		t.Errorf("hot-corner spills = %d, want pinned golden %d", spills, wantSpills)
	}
	if spills < 1 {
		t.Errorf("spills = %d: the hot corner over capacity 3 must spill", spills)
	}
	if handoffs < 1 {
		t.Errorf("handoffs = %d: the drifting cluster must cross seams", handoffs)
	}
	if again, _ := run(); again != spills {
		t.Fatalf("spill count not reproducible: %d then %d", spills, again)
	}
}
