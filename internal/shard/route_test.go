package shard

import (
	"testing"

	"fluxtrack/internal/fluxmodel"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/smc"
)

// routeTestField builds a small 2×2 field with a deterministic sensor grid —
// no core.Scenario machinery, so the white-box tests stay cheap.
func routeTestField(t *testing.T, users int) *Field {
	t.Helper()
	m, err := fluxmodel.New(geom.Square(30), 1.2)
	if err != nil {
		t.Fatal(err)
	}
	var pts []geom.Point
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			pts = append(pts, geom.Pt(2.5+5*float64(i), 2.5+5*float64(j)))
		}
	}
	f, err := New(Config{
		Model: m, SamplePoints: pts, NumUsers: users,
		Grid:    Grid{Rows: 2, Cols: 2, Halo: 2},
		Tracker: smc.Config{N: 40, M: 4},
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestRouteZeroSteadyStateAllocs is the batched-routing acceptance bar: once
// the Field exists, the per-round observation-routing pass must not allocate
// at all, no matter how the owner table is shuffled by migrations.
func TestRouteZeroSteadyStateAllocs(t *testing.T) {
	f := routeTestField(t, 50)
	// Scatter ownership so every tile's segment is non-trivial and
	// interleaved — the worst case for an append-based router, a no-op for
	// the counting sort.
	for j := range f.owner {
		f.owner[j] = (j * 7) % len(f.tiles)
	}
	if avg := testing.AllocsPerRun(200, func() { f.route() }); avg != 0 {
		t.Fatalf("route allocates %.1f times per round, want 0", avg)
	}
}

// TestRoutePartition pins the counting sort's semantics: the owned lists
// partition the user set exactly, each in ascending order, each aliasing its
// contiguous segment of the shared arena.
func TestRoutePartition(t *testing.T) {
	f := routeTestField(t, 23)
	for j := range f.owner {
		f.owner[j] = (j * 5) % len(f.tiles)
	}
	f.route()
	seen := make([]bool, 23)
	total := 0
	for i, tl := range f.tiles {
		if len(tl.owned) != f.load[i] {
			t.Fatalf("tile %d: %d owned vs load %d", i, len(tl.owned), f.load[i])
		}
		for k, j := range tl.owned {
			if f.owner[j] != i {
				t.Fatalf("tile %d lists user %d owned by %d", i, j, f.owner[j])
			}
			if seen[j] {
				t.Fatalf("user %d routed twice", j)
			}
			seen[j] = true
			if k > 0 && tl.owned[k-1] >= j {
				t.Fatalf("tile %d owned list not ascending: %v", i, tl.owned)
			}
			if &tl.owned[k] != &f.routeArena[total] {
				t.Fatalf("tile %d owned[%d] does not alias the route arena", i, k)
			}
			total++
		}
	}
	if total != 23 {
		t.Fatalf("routed %d users, want 23", total)
	}
	maxLoad, mean := f.lastMax, f.lastMean
	wantMax := 0
	for _, l := range f.load {
		if l > wantMax {
			wantMax = l
		}
	}
	if maxLoad != wantMax || mean != 23.0/4 {
		t.Fatalf("imbalance = (%d, %v), want (%d, %v)", maxLoad, mean, wantMax, 23.0/4)
	}
}
