package shard

import (
	"fmt"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/smc"
)

// This file is the sharded field's checkpoint surface, mirroring
// smc.TrackerState one level up: the owner table, the carried-forward
// estimate cache, the coordinator's cumulative counters, and every tile
// tracker's complete state. A Field rebuilt in a fresh process from the same
// Config and seed restores this state and resumes mid-track byte-identically
// (see internal/serve and DESIGN.md §6.8 for the resume-determinism
// argument).

// FieldState is the complete resumable state of a sharded Field. Seed,
// NumUsers, and the tile count identify the configuration; RestoreState
// rejects a mismatch. The per-tile NNLS-work checkpoints that feed the LPT
// scheduler's cost model are deliberately NOT part of the state: a restored
// field re-baselines them against its fresh searchers, which can only change
// which worker runs a tile — never what the tile computes.
type FieldState struct {
	Seed     uint64
	NumUsers int
	Tiles    int
	Steps    int
	Handoffs int
	Spills   int
	LastMax  int
	LastMean float64
	// Owner is the user → owning-tile table.
	Owner []int
	// LastEst caches each user's most recent estimate — the value a skipped
	// (all-masked) tile's users keep reporting, so resume must carry it.
	LastEst []smc.Estimate
	// Trackers holds each tile tracker's state, in ascending tile order.
	Trackers []smc.TrackerState
}

// Seed returns the field's construction seed.
func (f *Field) Seed() uint64 { return f.seed }

// NumUsers returns the tracked population size (K).
func (f *Field) NumUsers() int { return f.cfg.NumUsers }

// ExportState deep-copies the field's complete resumable state without
// mutating it; the exporting field may keep stepping as if nothing happened.
func (f *Field) ExportState() FieldState {
	st := FieldState{
		Seed:     f.seed,
		NumUsers: f.cfg.NumUsers,
		Tiles:    len(f.tiles),
		Steps:    f.steps,
		Handoffs: f.handoffs,
		Spills:   f.spills,
		LastMax:  f.lastMax,
		LastMean: f.lastMean,
		Owner:    append([]int(nil), f.owner...),
		LastEst:  make([]smc.Estimate, len(f.lastEst)),
		Trackers: make([]smc.TrackerState, len(f.tiles)),
	}
	for j, e := range f.lastEst {
		st.LastEst[j] = cloneEstimate(e)
	}
	for i, tl := range f.tiles {
		st.Trackers[i] = tl.tracker.ExportState()
	}
	return st
}

// RestoreState replaces the field's state with a deep copy of st. The field
// must have been built from the same Config seed, population size, and grid
// the state was exported under. After RestoreState the field is the
// exporting field's process-equivalent twin: the same observation stream
// produces byte-identical estimates, owner tables, handoff and spill counts.
func (f *Field) RestoreState(st FieldState) error {
	if st.Seed != f.seed {
		return fmt.Errorf("shard: restore seed %#x into field seeded %#x", st.Seed, f.seed)
	}
	if st.NumUsers != f.cfg.NumUsers {
		return fmt.Errorf("shard: restore of %d users into field of %d", st.NumUsers, f.cfg.NumUsers)
	}
	if st.Tiles != len(f.tiles) {
		return fmt.Errorf("shard: restore of %d tiles into %s grid (%d tiles)", st.Tiles, f.cfg.Grid, len(f.tiles))
	}
	if len(st.Owner) != f.cfg.NumUsers || len(st.LastEst) != f.cfg.NumUsers {
		return fmt.Errorf("shard: restore tables sized %d/%d, want %d",
			len(st.Owner), len(st.LastEst), f.cfg.NumUsers)
	}
	if len(st.Trackers) != len(f.tiles) {
		return fmt.Errorf("shard: restore carries %d tracker states for %d tiles", len(st.Trackers), len(f.tiles))
	}
	if st.Steps < 0 || st.Handoffs < 0 || st.Spills < 0 {
		return fmt.Errorf("shard: restore with negative counters (steps %d, handoffs %d, spills %d)",
			st.Steps, st.Handoffs, st.Spills)
	}
	load := make([]int, len(f.tiles))
	for j, o := range st.Owner {
		if o < 0 || o >= len(f.tiles) {
			return fmt.Errorf("shard: restore owner[%d] = %d outside [0,%d)", j, o, len(f.tiles))
		}
		load[o]++
	}
	if c := f.cfg.TileCapacity; c > 0 {
		for i, l := range load {
			if l > c {
				return fmt.Errorf("shard: restore loads tile %d with %d users over capacity %d", i, l, c)
			}
		}
	}
	// Restore the tile trackers first: a seed/shape mismatch surfaces there
	// before any coordinator state is touched. Tracker restore validates its
	// own state, and tile seeds are pure functions of (field seed, tile), so
	// a state exported under this exact configuration always passes.
	for i, tl := range f.tiles {
		if err := tl.tracker.RestoreState(st.Trackers[i]); err != nil {
			return fmt.Errorf("shard: tile %d: %w", i, err)
		}
		// Re-baseline the LPT cost checkpoints against the restored
		// searcher's counters (scheduling-only; see FieldState).
		tl.prevSolves, tl.prevIters = tl.tracker.WorkTotals()
	}
	copy(f.owner, st.Owner)
	copy(f.load, load)
	for j := range f.lastEst {
		f.lastEst[j] = cloneEstimate(st.LastEst[j])
	}
	f.steps = st.Steps
	f.handoffs = st.Handoffs
	f.spills = st.Spills
	f.lastMax = st.LastMax
	f.lastMean = st.LastMean
	return nil
}

// cloneEstimate deep-copies one estimate (its sample/weight slices are the
// only reference fields). Zero-length slices stay nil, so an export/restore
// round trip reproduces the original estimate bit for bit under DeepEqual.
func cloneEstimate(e smc.Estimate) smc.Estimate {
	out := e
	out.Samples, out.Weights = nil, nil
	if len(e.Samples) > 0 {
		out.Samples = append([]geom.Point(nil), e.Samples...)
	}
	if len(e.Weights) > 0 {
		out.Weights = append([]float64(nil), e.Weights...)
	}
	return out
}
