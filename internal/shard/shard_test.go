package shard_test

import (
	"errors"
	"reflect"
	"testing"

	"fluxtrack/internal/core"
	"fluxtrack/internal/fingerprint"
	"fluxtrack/internal/fit"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mobility"
	"fluxtrack/internal/rng"
	"fluxtrack/internal/shard"
	"fluxtrack/internal/smc"
	"fluxtrack/internal/traffic"
)

func TestParseGrid(t *testing.T) {
	g, err := shard.ParseGrid("2x3")
	if err != nil || g.Rows != 2 || g.Cols != 3 {
		t.Fatalf("ParseGrid(2x3) = %v, %v", g, err)
	}
	if g.String() != "2x3" {
		t.Fatalf("String() = %q", g.String())
	}
	for _, bad := range []string{"", "2", "2x", "x2", "0x2", "2x-1", "2y2", "axb"} {
		if _, err := shard.ParseGrid(bad); err == nil {
			t.Errorf("ParseGrid(%q) accepted", bad)
		}
	}
}

// TestTileOfBoundaries pins the deterministic ownership rules of the plain
// rect partition: seam points go to the upper/right tile, the exact field
// corner clamps into the last tile, and the four-tile corner point resolves
// by the same two rules.
func TestTileOfBoundaries(t *testing.T) {
	field := geom.Square(30)
	g := shard.Grid{Rows: 2, Cols: 2}
	cases := []struct {
		p    geom.Point
		want int
	}{
		{geom.Pt(7, 7), 0},
		{geom.Pt(20, 7), 1},
		{geom.Pt(7, 20), 2},
		{geom.Pt(20, 20), 3},
		{geom.Pt(15, 7), 1},  // exactly on the vertical seam: right tile
		{geom.Pt(7, 15), 2},  // exactly on the horizontal seam: upper tile
		{geom.Pt(15, 15), 3}, // the four-tile corner: upper-right tile
		{geom.Pt(0, 0), 0},   // field min corner
		{geom.Pt(30, 30), 3}, // field max corner clamps into the last tile
		{geom.Pt(30, 0), 1},  // max-x edge
		{geom.Pt(-5, 40), 2}, // out of field: clamps
		{geom.Pt(29.999, 15), 3},
	}
	for _, c := range cases {
		if got := g.TileOf(field, c.p); got != c.want {
			t.Errorf("TileOf(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	// A 3x1 grid: rows split the y axis only.
	g31 := shard.Grid{Rows: 3, Cols: 1}
	if got := g31.TileOf(field, geom.Pt(15, 10)); got != 1 {
		t.Errorf("3x1 TileOf(15,10) = %d, want 1", got)
	}
	if got := g31.TileOf(field, geom.Pt(15, 9.999)); got != 0 {
		t.Errorf("3x1 TileOf(15,9.999) = %d, want 0", got)
	}
}

// world is a small deterministic test scenario with a precomputed
// observation stream.
type world struct {
	sc      *core.Scenario
	sniffer *core.Sniffer
	points  []geom.Point
	obs     [][]float64
	truths  [][]geom.Point
}

func buildWorld(t *testing.T, seed uint64, users, rounds int, trajs []mobility.Trajectory) *world {
	return buildWorldSensors(t, seed, users, rounds, 90, trajs)
}

func buildWorldSensors(t *testing.T, seed uint64, users, rounds, sensors int, trajs []mobility.Trajectory) *world {
	t.Helper()
	src := rng.New(seed)
	sc, err := core.NewScenario(core.ScenarioConfig{}, src)
	if err != nil {
		t.Fatal(err)
	}
	sniffer, err := sc.NewSnifferCount(sensors, src)
	if err != nil {
		t.Fatal(err)
	}
	if trajs == nil {
		trajs = make([]mobility.Trajectory, users)
		for i := range trajs {
			w, err := mobility.NewRandomWalk(sc.Field(), src.InRect(sc.Field()), 3, rounds+1, src)
			if err != nil {
				t.Fatal(err)
			}
			trajs[i] = w
		}
	}
	stretches := make([]float64, users)
	for i := range stretches {
		stretches[i] = src.Uniform(1, 3)
	}
	w := &world{sc: sc, sniffer: sniffer, points: sniffer.Points()}
	for r := 0; r < rounds; r++ {
		tm := float64(r + 1)
		us := make([]traffic.User, users)
		truth := make([]geom.Point, users)
		for i := range us {
			truth[i] = sc.Field().Clamp(trajs[i].At(tm))
			us[i] = traffic.User{Pos: truth[i], Stretch: stretches[i], Active: true}
		}
		o, err := sniffer.Observe(us, 0, src)
		if err != nil {
			t.Fatal(err)
		}
		w.obs = append(w.obs, o)
		w.truths = append(w.truths, truth)
	}
	return w
}

// maskAlternate drops every second sensor.
func maskAlternate(n int) []bool {
	p := make([]bool, n)
	for i := range p {
		p[i] = i%2 == 0
	}
	return p
}

// TestOneByOneReproducesUnsharded is the core acceptance contract: a 1×1
// grid is the unsharded tracker, byte for byte — clean rounds, partially
// masked rounds, fully masked rounds, with and without the coarse prestage
// and the active-set cap.
func TestOneByOneReproducesUnsharded(t *testing.T) {
	cases := []struct {
		name string
		cfg  core.TrackerConfig
		tmpl smc.Config
	}{
		{
			name: "plain",
			cfg:  core.TrackerConfig{N: 150, M: 8},
			tmpl: smc.Config{N: 150, M: 8},
		},
		{
			name: "coarse",
			cfg: core.TrackerConfig{N: 150, M: 8,
				Coarse: fingerprint.CoarseConfig{Enabled: true, TopK: 24, GridRes: 10}},
			tmpl: smc.Config{N: 150, M: 8,
				Coarse: fingerprint.CoarseConfig{Enabled: true, TopK: 24, GridRes: 10}},
		},
		{
			name: "activeset",
			cfg:  core.TrackerConfig{N: 120, M: 6, ActiveSetLimit: 2},
			tmpl: smc.Config{N: 120, M: 6, ActiveSetLimit: 2},
		},
	}
	const users, rounds = 3, 6
	w := buildWorld(t, 11, users, rounds, nil)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plain, err := w.sniffer.NewTracker(users, tc.cfg, 77)
			if err != nil {
				t.Fatal(err)
			}
			f, err := shard.New(shard.Config{
				Model:        w.sc.Model(),
				SamplePoints: w.points,
				NumUsers:     users,
				Grid:         shard.Grid{Rows: 1, Cols: 1},
				Tracker:      tc.tmpl,
			}, 77)
			if err != nil {
				t.Fatal(err)
			}
			if f.NumTiles() != 1 {
				t.Fatalf("NumTiles = %d", f.NumTiles())
			}
			if ti := f.Tile(0); ti.Seed != 77 || ti.Sensors != len(w.points) {
				t.Fatalf("1x1 tile = %+v: want seed passthrough and the full sensor set", ti)
			}
			for r, o := range w.obs {
				tm := float64(r + 1)
				var present []bool
				switch r {
				case 3:
					present = maskAlternate(len(o))
				case 4:
					present = make([]bool, len(o)) // fully masked round
				}
				want, wantErr := plain.StepMasked(tm, o, present, nil)
				got, gotErr := f.StepMasked(tm, o, present, nil)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("round %d: err %v vs %v", r, wantErr, gotErr)
				}
				if wantErr != nil {
					if wantErr.Error() != gotErr.Error() {
						t.Fatalf("round %d: error %q vs %q", r, wantErr, gotErr)
					}
					if !errors.Is(gotErr, smc.ErrAllMasked) {
						t.Fatalf("round %d: sharded error does not wrap ErrAllMasked: %v", r, gotErr)
					}
					continue
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("round %d: sharded result diverged\nunsharded: %+v\n  sharded: %+v", r, want, got)
				}
			}
			if f.Handoffs() != 0 {
				t.Fatalf("1x1 grid recorded %d handoffs", f.Handoffs())
			}
			if f.Steps() != plain.Steps() {
				t.Fatalf("Steps: %d vs %d", f.Steps(), plain.Steps())
			}
		})
	}
}

func newTestField(t *testing.T, w *world, users, workers, trackerWorkers int, halo float64, seed uint64) *shard.Field {
	t.Helper()
	f, err := shard.New(shard.Config{
		Model:        w.sc.Model(),
		SamplePoints: w.points,
		NumUsers:     users,
		Grid:         shard.Grid{Rows: 2, Cols: 2, Halo: halo},
		Tracker:      smc.Config{N: 150, M: 8, Workers: trackerWorkers},
		Workers:      workers,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestWorkerInvariance pins the determinism contract: a 2×2 field produces
// byte-identical results and handoff counts at any combination of tile-level
// and tracker-level worker counts.
func TestWorkerInvariance(t *testing.T) {
	const users, rounds = 4, 6
	w := buildWorld(t, 5, users, rounds, nil)
	type outcome struct {
		results []smc.StepResult
		hand    int
	}
	run := func(workers, trackerWorkers int) outcome {
		f := newTestField(t, w, users, workers, trackerWorkers, 1.5, 9)
		var oc outcome
		for r, o := range w.obs {
			res, err := f.Step(float64(r+1), o)
			if err != nil {
				t.Fatal(err)
			}
			oc.results = append(oc.results, res)
		}
		oc.hand = f.Handoffs()
		return oc
	}
	ref := run(1, 1)
	for _, combo := range [][2]int{{4, 1}, {1, 2}, {4, 2}, {0, 0}} {
		got := run(combo[0], combo[1])
		if got.hand != ref.hand {
			t.Fatalf("workers=%v: %d handoffs, want %d", combo, got.hand, ref.hand)
		}
		if !reflect.DeepEqual(got.results, ref.results) {
			t.Fatalf("workers=%v diverged from serial run", combo)
		}
	}
}

// TestSeamHandoff drives one user straight across the vertical seam and
// checks the sample set migrates: ownership flips to the right tile, the
// handoff is counted, and a second identical run reproduces the same
// estimates and the same ownership trace.
func TestSeamHandoff(t *testing.T) {
	const rounds = 10
	traj := []mobility.Trajectory{
		mobility.Linear{Start: geom.Pt(9, 8), V: geom.Vec{DX: 1.8, DY: 0}},
	}
	w := buildWorld(t, 21, 1, rounds, traj)
	run := func() ([]geom.Point, []int, int) {
		f, err := shard.New(shard.Config{
			Model:            w.sc.Model(),
			SamplePoints:     w.points,
			NumUsers:         1,
			Grid:             shard.Grid{Rows: 2, Cols: 2, Halo: 2},
			Tracker:          smc.Config{N: 300, M: 10},
			InitialPositions: []geom.Point{traj[0].At(1)},
		}, 3)
		if err != nil {
			t.Fatal(err)
		}
		if f.Owner(0) != 0 {
			t.Fatalf("initial owner = %d, want 0", f.Owner(0))
		}
		var means []geom.Point
		var owners []int
		for r, o := range w.obs {
			res, err := f.Step(float64(r+1), o)
			if err != nil {
				t.Fatal(err)
			}
			means = append(means, res.Estimates[0].Mean)
			owners = append(owners, f.Owner(0))
		}
		return means, owners, f.Handoffs()
	}
	means, owners, hand := run()
	if owners[len(owners)-1] != 1 {
		t.Fatalf("user never handed off to tile 1: owners = %v (final means %v)", owners, means[len(means)-1])
	}
	if hand < 1 {
		t.Fatalf("handoffs = %d, want >= 1", hand)
	}
	// The estimate must keep tracking through the migration: the final
	// truth is deep inside tile 1.
	finalErr := means[len(means)-1].Sub(w.truths[rounds-1][0]).Norm()
	if finalErr > 6 {
		t.Fatalf("post-handoff error %.2f too large (mean %v, truth %v)",
			finalErr, means[len(means)-1], w.truths[rounds-1][0])
	}
	means2, owners2, hand2 := run()
	if !reflect.DeepEqual(means, means2) || !reflect.DeepEqual(owners, owners2) || hand != hand2 {
		t.Fatal("seam-handoff run is not reproducible")
	}
}

// TestCornerCrossing drives a user diagonally through the exact center
// corner where all four tiles meet; ownership must end in tile 3 through a
// deterministic, reproducible ownership trace.
func TestCornerCrossing(t *testing.T) {
	const rounds = 10
	traj := []mobility.Trajectory{
		mobility.Linear{Start: geom.Pt(10.5, 10.5), V: geom.Vec{DX: 1.5, DY: 1.5}},
	}
	w := buildWorld(t, 31, 1, rounds, traj)
	run := func() ([]int, int) {
		f, err := shard.New(shard.Config{
			Model:            w.sc.Model(),
			SamplePoints:     w.points,
			NumUsers:         1,
			Grid:             shard.Grid{Rows: 2, Cols: 2, Halo: 2},
			Tracker:          smc.Config{N: 300, M: 10},
			InitialPositions: []geom.Point{traj[0].At(1)},
		}, 13)
		if err != nil {
			t.Fatal(err)
		}
		var owners []int
		for r, o := range w.obs {
			if _, err := f.Step(float64(r+1), o); err != nil {
				t.Fatal(err)
			}
			owners = append(owners, f.Owner(0))
		}
		return owners, f.Handoffs()
	}
	owners, hand := run()
	if owners[len(owners)-1] != 3 {
		t.Fatalf("corner crossing ended in tile %d, want 3 (trace %v)", owners[len(owners)-1], owners)
	}
	if hand < 1 {
		t.Fatalf("handoffs = %d, want >= 1", hand)
	}
	owners2, hand2 := run()
	if !reflect.DeepEqual(owners, owners2) || hand != hand2 {
		t.Fatal("corner-crossing run is not reproducible")
	}
}

// TestExactBoundaryAssignment pins "user landing exactly on a tile
// boundary": initial positions on the seam and the four-corner point take
// the deterministic upper/right rule.
func TestExactBoundaryAssignment(t *testing.T) {
	w := buildWorld(t, 41, 3, 1, []mobility.Trajectory{
		mobility.Static{Pos: geom.Pt(15, 7)},
		mobility.Static{Pos: geom.Pt(7, 15)},
		mobility.Static{Pos: geom.Pt(15, 15)},
	})
	f, err := shard.New(shard.Config{
		Model:        w.sc.Model(),
		SamplePoints: w.points,
		NumUsers:     3,
		Grid:         shard.Grid{Rows: 2, Cols: 2},
		Tracker:      smc.Config{N: 100, M: 5},
		InitialPositions: []geom.Point{
			geom.Pt(15, 7), geom.Pt(7, 15), geom.Pt(15, 15),
		},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range []int{1, 2, 3} {
		if got := f.Owner(j); got != want {
			t.Errorf("owner of boundary user %d = %d, want %d", j, got, want)
		}
	}
	if _, err := f.Step(1, w.obs[0]); err != nil {
		t.Fatal(err)
	}
}

// TestMaskedRoundsDuringMigration injects masked rounds — including rounds
// that fully mask the migrating user's tile — around a seam crossing: the
// round must degrade (estimates carried, Active false) rather than fail,
// the handoff must still happen once the tile sees flux again, and two runs
// must agree byte for byte.
func TestMaskedRoundsDuringMigration(t *testing.T) {
	const rounds = 12
	traj := []mobility.Trajectory{
		mobility.Linear{Start: geom.Pt(9, 8), V: geom.Vec{DX: 1.6, DY: 0.3}},
	}
	w := buildWorld(t, 51, 1, rounds, traj)

	// Sensor indices of tile 0 under halo 2 — masked entirely on round 5 to
	// starve the owning tile mid-crossing.
	f0, err := shard.New(shard.Config{
		Model: w.sc.Model(), SamplePoints: w.points, NumUsers: 1,
		Grid: shard.Grid{Rows: 2, Cols: 2, Halo: 2}, Tracker: smc.Config{N: 200, M: 8},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	tile0 := f0.Tile(0)
	inTile0 := func(p geom.Point) bool { return tile0.Bounds.Contains(p) }

	present := func(r, n int) []bool {
		switch r {
		case 4: // drop every third sensor
			p := make([]bool, n)
			for i := range p {
				p[i] = i%3 != 0
			}
			return p
		case 5: // fully starve tile 0
			p := make([]bool, n)
			for i := range p {
				p[i] = !inTile0(w.points[i])
			}
			return p
		default:
			return nil
		}
	}

	run := func() ([]smc.StepResult, []int, int) {
		f, err := shard.New(shard.Config{
			Model: w.sc.Model(), SamplePoints: w.points, NumUsers: 1,
			Grid:             shard.Grid{Rows: 2, Cols: 2, Halo: 2},
			Tracker:          smc.Config{N: 200, M: 8},
			InitialPositions: []geom.Point{traj[0].At(1)},
		}, 7)
		if err != nil {
			t.Fatal(err)
		}
		var results []smc.StepResult
		var owners []int
		for r, o := range w.obs {
			res, err := f.StepMasked(float64(r+1), o, present(r, len(o)), nil)
			if err != nil {
				// Only a fully-starved owning tile may skip, and only while
				// the user still sits in tile 0.
				if !errors.Is(err, smc.ErrAllMasked) {
					t.Fatalf("round %d: %v", r, err)
				}
				continue
			}
			results = append(results, res)
			owners = append(owners, f.Owner(0))
		}
		return results, owners, f.Handoffs()
	}
	res1, own1, hand1 := run()
	if own1[len(own1)-1] != 1 {
		t.Fatalf("user never migrated: owners %v", own1)
	}
	if hand1 < 1 {
		t.Fatal("no handoff recorded")
	}
	res2, own2, hand2 := run()
	if !reflect.DeepEqual(res1, res2) || !reflect.DeepEqual(own1, own2) || hand1 != hand2 {
		t.Fatal("masked-migration run is not reproducible")
	}
}

// TestConcurrentShardStepRace exercises the concurrent tile fan-out under
// the race detector: tile-level and tracker-level workers both above one,
// several rounds, with masked rounds mixed in.
func TestConcurrentShardStepRace(t *testing.T) {
	const users, rounds = 6, 5
	w := buildWorld(t, 61, users, rounds, nil)
	f := newTestField(t, w, users, 4, 2, 1, 17)
	for r, o := range w.obs {
		var present []bool
		if r == 2 {
			present = maskAlternate(len(o))
		}
		if _, err := f.StepMasked(float64(r+1), o, present, nil); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
}

// TestTemplateRejectsPresetCoarse pins the misuse guard: tiles must build
// their own databases.
func TestTemplateRejectsPresetCoarse(t *testing.T) {
	w := buildWorld(t, 71, 1, 1, nil)
	db, err := fingerprint.NewDB(w.sc.Model(), w.points, fingerprint.CoarseConfig{Enabled: true, GridRes: 8}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := smc.Config{N: 50, M: 5}
	tmpl.Search.Coarse = &fit.Coarse{DB: db}
	_, err = shard.New(shard.Config{
		Model: w.sc.Model(), SamplePoints: w.points, NumUsers: 1,
		Grid: shard.Grid{Rows: 1, Cols: 1}, Tracker: tmpl,
	}, 1)
	if err == nil {
		t.Fatal("preset Search.Coarse accepted")
	}
}
