package shard_test

import (
	"reflect"
	"testing"

	"fluxtrack/internal/fault"
	"fluxtrack/internal/geom"
	"fluxtrack/internal/mobility"
	"fluxtrack/internal/shard"
	"fluxtrack/internal/smc"
)

// crossingTrajectories drives users across the 2x2 seams so the resumed
// field must reproduce handoffs, not just estimates.
func crossingTrajectories(users int) []mobility.Trajectory {
	trajs := make([]mobility.Trajectory, users)
	for i := range trajs {
		fi := float64(i)
		trajs[i] = mobility.Linear{
			Start: geom.Pt(10+0.4*fi, 11-0.4*fi),
			V:     geom.Vec{DX: 1.2, DY: 1.1},
		}
	}
	return trajs
}

// fieldOutcome is everything a resumed field must reproduce.
type fieldOutcome struct {
	results  []smc.StepResult
	owners   []int
	handoffs int
	spills   int
	steps    int
}

func outcomeOf(f *shard.Field, results []smc.StepResult, users int) fieldOutcome {
	oc := fieldOutcome{results: results, handoffs: f.Handoffs(), spills: f.Spills(), steps: f.Steps()}
	for j := 0; j < users; j++ {
		oc.owners = append(oc.owners, f.Owner(j))
	}
	return oc
}

// TestFieldExportRestoreResumesByteIdentically is the sharded resume
// contract under the hardest available conditions: seam crossings and
// masked (fault-degraded) rounds, where the restored field must carry the
// owner table, the carried-forward estimate cache, and every tile tracker's
// sample sets and RNG cursors. Checkpoint lands mid-stream, right where
// handoffs are in flight.
func TestFieldExportRestoreResumesByteIdentically(t *testing.T) {
	const users, rounds, k, seed = 4, 8, 4, 27
	trajs := crossingTrajectories(users)
	w := buildWorld(t, 55, users, rounds, trajs)
	deg := degrade(t, w, fault.Config{LossProb: 0.2, DelayProb: 0.2, DelayRounds: 2}, 808)

	build := func() *shard.Field {
		f, err := shard.New(shard.Config{
			Model:            w.sc.Model(),
			SamplePoints:     w.points,
			NumUsers:         users,
			Grid:             shard.Grid{Rows: 2, Cols: 2, Halo: 2},
			Tracker:          smc.Config{N: 150, M: 6},
			InitialPositions: w.truths[0],
		}, seed)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	step := func(f *shard.Field, from, to int) []smc.StepResult {
		var out []smc.StepResult
		for r := from; r < to; r++ {
			d := deg[r]
			res, err := f.StepMasked(float64(r+1), d.Readings, d.Present, d.Age)
			if err != nil {
				t.Fatalf("round %d: %v", r, err)
			}
			out = append(out, res)
		}
		return out
	}

	base := build()
	want := outcomeOf(base, step(base, 0, rounds), users)

	orig := build()
	head := step(orig, 0, k)
	st := orig.ExportState()
	// Export must leave the source field untouched.
	origOut := outcomeOf(orig, append(head, step(orig, k, rounds)...), users)
	if !reflect.DeepEqual(origOut, want) {
		t.Fatal("ExportState perturbed the exporting field")
	}

	fresh := build()
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	got := outcomeOf(fresh, append(append([]smc.StepResult(nil), head...), step(fresh, k, rounds)...), users)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("restored field diverged from the uninterrupted run")
	}
}

// TestFieldRestoreValidation pins the coordinator-level mismatch rejections.
func TestFieldRestoreValidation(t *testing.T) {
	const users = 3
	w := buildWorld(t, 61, users, 2, nil)
	build := func(grid shard.Grid, seed uint64) *shard.Field {
		f, err := shard.New(shard.Config{
			Model: w.sc.Model(), SamplePoints: w.points, NumUsers: users,
			Grid: grid, Tracker: smc.Config{N: 60, M: 5},
		}, seed)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	f := build(shard.Grid{Rows: 2, Cols: 2, Halo: 2}, 7)
	if _, err := f.Step(1, w.obs[0]); err != nil {
		t.Fatal(err)
	}
	st := f.ExportState()

	if err := build(shard.Grid{Rows: 2, Cols: 2, Halo: 2}, 8).RestoreState(st); err == nil {
		t.Error("restore across seeds accepted")
	}
	if err := build(shard.Grid{Rows: 1, Cols: 2, Halo: 2}, 7).RestoreState(st); err == nil {
		t.Error("restore across grids accepted")
	}
	bad := st
	bad.Owner = append([]int(nil), st.Owner...)
	bad.Owner[0] = 99
	if err := build(shard.Grid{Rows: 2, Cols: 2, Halo: 2}, 7).RestoreState(bad); err == nil {
		t.Error("out-of-range owner accepted")
	}
	bad = st
	bad.Spills = -1
	if err := build(shard.Grid{Rows: 2, Cols: 2, Halo: 2}, 7).RestoreState(bad); err == nil {
		t.Error("negative spill counter accepted")
	}
}
