package fluxmodel

import (
	"math"
	"testing"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

// fusedTol is the agreement demanded between the fused closed-form kernel
// and the generic Kernel reference. The two compute the same real quantity
// through different roundings (Hypot + normalized RayExit vs sqrt + slab
// parameter), so equality holds to floating-point conditioning, not bitwise.
const fusedTol = 1e-9

// relClose reports |a−b| <= tol·max(|a|, |b|, 1).
func relClose(a, b, tol float64) bool {
	scale := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return math.Abs(a-b) <= tol*scale
}

// TestFusedKernelMatchesGeneric sweeps random sinks and sample points,
// including near-sink points inside the MinDist clamp, and demands the
// vectorized (fused) kernel agree with the scalar generic reference.
func TestFusedKernelMatchesGeneric(t *testing.T) {
	m, err := New(geom.Square(30), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(71)
	for trial := 0; trial < 200; trial++ {
		sink := src.InRect(m.Field())
		pts := make([]geom.Point, 60)
		for i := range pts {
			switch i % 3 {
			case 0: // anywhere in the field
				pts[i] = src.InRect(m.Field())
			case 1: // inside the MinDist clamp region around the sink
				pts[i] = m.Field().Clamp(src.InDisc(sink, m.MinDist()))
			default: // just outside the clamp
				pts[i] = m.Field().Clamp(src.InDisc(sink, 3*m.MinDist()))
			}
		}
		got := m.KernelVector(sink, pts)
		for i, p := range pts {
			want := m.Kernel(sink, p)
			if !relClose(got[i], want, fusedTol) {
				t.Fatalf("sink %v point %v: fused %v, generic %v", sink, p, got[i], want)
			}
			if got[i] < 0 {
				t.Fatalf("sink %v point %v: fused kernel negative: %v", sink, p, got[i])
			}
		}
	}
}

// TestFusedKernelEdgeCases pins the degenerate branches: point == sink
// (fallback direction), sink on the boundary, points outside the field, and
// a sink outside the field.
func TestFusedKernelEdgeCases(t *testing.T) {
	m, err := New(geom.Square(30), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		sink, p geom.Point
	}{
		{"point equals sink", geom.Pt(12, 7), geom.Pt(12, 7)},
		{"sink on corner", geom.Pt(0, 0), geom.Pt(5, 5)},
		{"sink on edge, ray along edge", geom.Pt(30, 15), geom.Pt(30, 20)},
		{"sink on edge, ray inward", geom.Pt(30, 15), geom.Pt(10, 15)},
		{"point on boundary", geom.Pt(15, 15), geom.Pt(30, 30)},
		{"axis-aligned ray", geom.Pt(10, 10), geom.Pt(25, 10)},
		{"vertical ray", geom.Pt(10, 10), geom.Pt(10, 25)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := m.KernelVector(tc.sink, []geom.Point{tc.p})[0]
			want := m.Kernel(tc.sink, tc.p)
			if !relClose(got, want, fusedTol) {
				t.Errorf("fused %v, generic %v", got, want)
			}
		})
	}

	if got := m.KernelVector(geom.Pt(15, 15), []geom.Point{geom.Pt(31, 15)})[0]; got != 0 {
		t.Errorf("point outside field: fused kernel %v, want 0", got)
	}
	if got := m.KernelVector(geom.Pt(-1, 15), []geom.Point{geom.Pt(15, 15)})[0]; got != 0 {
		t.Errorf("sink outside field: fused kernel %v, want 0", got)
	}
}

// TestFusedPredictFluxMatchesScalar checks the multi-sink prediction path
// agrees with per-point FluxAt sums (which go through the generic Kernel).
func TestFusedPredictFluxMatchesScalar(t *testing.T) {
	m, err := New(geom.Square(30), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(72)
	sinks := []geom.Point{src.InRect(m.Field()), src.InRect(m.Field()), src.InRect(m.Field())}
	cs := []float64{1.5, 0.7, 2.2}
	pts := make([]geom.Point, 40)
	for i := range pts {
		pts[i] = src.InRect(m.Field())
	}
	got, err := m.PredictFlux(sinks, cs, pts)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		var want float64
		for j, s := range sinks {
			want += m.FluxAt(s, p, cs[j])
		}
		if !relClose(got[i], want, fusedTol) {
			t.Errorf("point %v: fused sum %v, scalar sum %v", p, got[i], want)
		}
	}
}

// BenchmarkKernelVectorFused measures the fused column kernel on the
// tracking-shaped workload: one sink, 90 sample points, reused destination.
func BenchmarkKernelVectorFused(b *testing.B) {
	m, err := New(geom.Square(30), 0.8)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(73)
	pts := make([]geom.Point, 90)
	for i := range pts {
		pts[i] = src.InRect(m.Field())
	}
	dst := make([]float64, len(pts))
	sink := geom.Pt(11.3, 22.8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.KernelVectorInto(sink, pts, dst)
	}
}

// BenchmarkKernelVectorGeneric is the same workload through the scalar
// generic reference, for before/after comparison of the fusion.
func BenchmarkKernelVectorGeneric(b *testing.B) {
	m, err := New(geom.Square(30), 0.8)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(73)
	pts := make([]geom.Point, 90)
	for i := range pts {
		pts[i] = src.InRect(m.Field())
	}
	dst := make([]float64, len(pts))
	sink := geom.Pt(11.3, 22.8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, p := range pts {
			dst[j] = m.Kernel(sink, p)
		}
	}
}
