package fluxmodel

// Metamorphic and fuzz properties of the flux kernel. The fused closed-form
// column kernel (kernelFused, one sqrt + slab parameter) and the generic
// reference (Kernel, Hypot + normalized RayExit) compute the same real
// quantity through different roundings; the deterministic suite in
// fused_test.go pins them on the standard 30×30 field, and this file widens
// the net two ways:
//
//   - a native fuzz target over randomized *rectangles* as well as sinks and
//     points, with dedicated boundary-grazing and corner-ray constructions —
//     the branchy part of both paths is exactly the boundary geometry;
//   - metamorphic identities that need no reference value at all: translating
//     the whole scene leaves g unchanged, uniformly scaling the scene scales
//     g linearly, and g is invariant under the field's mirror symmetries.

import (
	"math"
	"testing"

	"fluxtrack/internal/geom"
	"fluxtrack/internal/rng"
)

// fuzzKernelTol is looser than fused_test.go's fusedTol: the fuzz domain
// includes extreme aspect-ratio rectangles and boundary-grazing rays where
// the two formulations legitimately diverge by more conditioning error than
// the calibrated-field suite allows.
const fuzzKernelTol = 1e-6

// fuzzRect derives a non-degenerate rectangle from three raw floats:
// an offset (possibly far from the origin, possibly negative) and two
// side lengths spanning 1e-2 .. 1e3.
func fuzzRect(offX, offY, shape float64) geom.Rect {
	wrap := func(v float64) float64 { // map any finite float into [0, 1)
		v = math.Abs(v)
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return 0.5
		}
		return v - math.Floor(v)
	}
	ox := (wrap(offX) - 0.5) * 2000
	oy := (wrap(offY) - 0.5) * 2000
	w := math.Pow(10, wrap(shape)*5-2)       // 1e-2 .. 1e3
	h := math.Pow(10, wrap(shape*2.718)*5-2) // decorrelated from w
	return geom.NewRect(geom.Pt(ox, oy), geom.Pt(ox+w, oy+h))
}

// lerpRect maps unit coordinates (u, v) into the rectangle.
func lerpRect(r geom.Rect, u, v float64) geom.Point {
	return geom.Pt(r.Min.X+u*r.Width(), r.Min.Y+v*r.Height())
}

// checkFusedAgainstGeneric compares the fused and generic kernels for one
// (field, sink, point) triple and asserts the shared invariants: agreement
// within tol, non-negativity, finiteness.
func checkFusedAgainstGeneric(t *testing.T, m *Model, sink, p geom.Point) {
	t.Helper()
	generic := m.Kernel(sink, p)
	fused := m.KernelVector(sink, []geom.Point{p})[0]
	if math.IsNaN(fused) || math.IsInf(fused, 0) || math.IsNaN(generic) || math.IsInf(generic, 0) {
		t.Fatalf("field %v sink %v point %v: non-finite kernel (fused %v, generic %v)",
			m.Field(), sink, p, fused, generic)
	}
	if fused < 0 || generic < 0 {
		t.Fatalf("field %v sink %v point %v: negative kernel (fused %v, generic %v)",
			m.Field(), sink, p, fused, generic)
	}
	if !relClose(fused, generic, fuzzKernelTol) {
		t.Fatalf("field %v sink %v point %v: fused %v, generic %v",
			m.Field(), sink, p, fused, generic)
	}
}

// FuzzFusedKernel drives kernelFused vs the generic RayExit path on
// randomized rectangles, sinks, and points. The unit-square parameterization
// guarantees every fuzzed sink lies in the field; the point set per input
// covers the general position, the boundary-grazing ray (point pushed onto
// an edge so the ray exits exactly through it), the corner ray (point at a
// corner, where both slabs bind simultaneously), and the near-sink clamp.
func FuzzFusedKernel(f *testing.F) {
	f.Add(0.1, 0.2, 0.3, 0.5, 0.5, 0.25, 0.75)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0)    // sink on a corner, point on the far corner
	f.Add(0.9, 0.1, 0.99, 0.5, 1.0, 0.5, 0.0)   // sink on an edge, point on the opposite edge
	f.Add(0.3, 0.7, 0.42, 0.5, 0.5, 0.5, 0.5)   // point == sink
	f.Add(0.5, 0.5, 0.123, 1e-9, 0.5, 1.0, 0.5) // boundary-grazing horizontal ray
	f.Fuzz(func(t *testing.T, offX, offY, shape, su, sv, pu, pv float64) {
		for _, raw := range []float64{su, sv, pu, pv} {
			if math.IsNaN(raw) || math.IsInf(raw, 0) {
				t.Skip("non-finite unit coordinate")
			}
		}
		clamp01 := func(v float64) float64 { return math.Min(1, math.Max(0, v)) }
		r := fuzzRect(offX, offY, shape)
		m, err := New(r, math.Min(r.Width(), r.Height())/40)
		if err != nil {
			t.Fatal(err)
		}
		sink := lerpRect(r, clamp01(su), clamp01(sv))
		p := lerpRect(r, clamp01(pu), clamp01(pv))

		cases := []geom.Point{
			p,                     // general position
			geom.Pt(p.X, r.Max.Y), // boundary-grazing: point on the top edge
			geom.Pt(r.Max.X, p.Y), // boundary-grazing: point on the right edge
			r.Max,                 // corner ray
			r.Min,                 // corner ray through the opposite corner
			r.Clamp(geom.Pt(sink.X+m.MinDist()/3, sink.Y)), // inside the clamp
			geom.Pt(r.Max.X+r.Width(), p.Y),                // outside the field: both must give 0
		}
		for _, q := range cases {
			checkFusedAgainstGeneric(t, m, sink, q)
		}
	})
}

// TestKernelTranslationInvariance: g depends only on the scene geometry, so
// translating field, sink, and point by the same vector must preserve it to
// roundoff. Checked through the public KernelVector (fused) path.
func TestKernelTranslationInvariance(t *testing.T) {
	src := rng.New(101)
	base := geom.NewRect(geom.Pt(0, 0), geom.Pt(24, 13))
	m0, err := New(base, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		sink := src.InRect(base)
		p := src.InRect(base)
		d := geom.Vec{DX: src.Uniform(-500, 500), DY: src.Uniform(-500, 500)}
		shifted := geom.NewRect(base.Min.Add(d), base.Max.Add(d))
		m1, err := New(shifted, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		g0 := m0.KernelVector(sink, []geom.Point{p})[0]
		g1 := m1.KernelVector(sink.Add(d), []geom.Point{p.Add(d)})[0]
		// Translation subtracts out before any nonlinearity, but the absolute
		// coordinates round differently, so demand agreement to conditioning.
		if !relClose(g0, g1, 1e-9) {
			t.Fatalf("trial %d: g=%v at origin but %v translated by %v", trial, g0, g1, d)
		}
	}
}

// TestKernelScaleLinearity: scaling the whole scene by k scales every length
// in g = (l² − d²)/(2d) by k, so g itself scales by k (with MinDist scaled
// alongside so the clamp region maps onto itself).
func TestKernelScaleLinearity(t *testing.T) {
	src := rng.New(103)
	base := geom.NewRect(geom.Pt(0, 0), geom.Pt(24, 13))
	m0, err := New(base, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []float64{0.125, 2, 7.5, 64} {
		scaled := geom.NewRect(
			geom.Pt(base.Min.X*k, base.Min.Y*k),
			geom.Pt(base.Max.X*k, base.Max.Y*k),
		)
		m1, err := New(scaled, 0.5*k)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 100; trial++ {
			sink := src.InRect(base)
			p := src.InRect(base)
			g0 := m0.KernelVector(sink, []geom.Point{p})[0]
			g1 := m1.KernelVector(geom.Pt(sink.X*k, sink.Y*k), []geom.Point{geom.Pt(p.X*k, p.Y*k)})[0]
			if !relClose(g1, k*g0, 1e-9) {
				t.Fatalf("scale %v trial %d: g=%v, want k·g0=%v", k, trial, g1, k*g0)
			}
		}
	}
}

// TestKernelMirrorSymmetry: reflecting sink and point across the field's
// vertical or horizontal midline is a scene isometry, so g is unchanged —
// and, unlike translation/scaling, reflection exercises the slab selection
// logic (the binding boundary flips side).
func TestKernelMirrorSymmetry(t *testing.T) {
	src := rng.New(107)
	r := geom.NewRect(geom.Pt(0, 0), geom.Pt(24, 13))
	m, err := New(r, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mirrorX := func(p geom.Point) geom.Point { return geom.Pt(r.Min.X+r.Max.X-p.X, p.Y) }
	mirrorY := func(p geom.Point) geom.Point { return geom.Pt(p.X, r.Min.Y+r.Max.Y-p.Y) }
	for trial := 0; trial < 200; trial++ {
		sink := src.InRect(r)
		p := src.InRect(r)
		g := m.KernelVector(sink, []geom.Point{p})[0]
		gx := m.KernelVector(mirrorX(sink), []geom.Point{mirrorX(p)})[0]
		gy := m.KernelVector(mirrorY(sink), []geom.Point{mirrorY(p)})[0]
		if !relClose(g, gx, 1e-9) || !relClose(g, gy, 1e-9) {
			t.Fatalf("trial %d: g=%v, mirrored-x %v, mirrored-y %v", trial, g, gx, gy)
		}
	}
}

// TestKernelMonotoneAlongRay: along a fixed ray from the sink, g strictly
// decreases with distance (outside the clamp region): the same boundary exit
// l serves every point on the ray while d grows, and ∂g/∂d < 0. This is a
// reference-free sanity property of both kernel paths.
func TestKernelMonotoneAlongRay(t *testing.T) {
	m, err := New(geom.Square(30), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(109)
	for trial := 0; trial < 100; trial++ {
		sink := src.InRect(m.Field())
		dir := geom.Vec{DX: src.Uniform(-1, 1), DY: src.Uniform(-1, 1)}
		u, ok := dir.Unit()
		if !ok {
			continue
		}
		exit, ok := m.Field().RayExit(sink, u)
		if !ok || exit <= 2*m.MinDist() {
			continue
		}
		prev := math.Inf(1)
		for step := 1; step <= 8; step++ {
			d := m.MinDist() + (exit-m.MinDist())*float64(step)/9
			p := sink.Add(u.Scale(d))
			g := m.KernelVector(sink, []geom.Point{p})[0]
			if g > prev*(1+1e-12) {
				t.Fatalf("trial %d: kernel increased along ray: %v then %v at d=%v", trial, prev, g, d)
			}
			prev = g
		}
	}
}
